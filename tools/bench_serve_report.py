#!/usr/bin/env python3
"""Distills bench_serve JSON runs into BENCH_serve.json and gates them.

Reads one or more JSON files produced by bench/bench_serve --json, merges
their rows into a {policy x arrival-rate x epoch-length} matrix, writes a
compact BENCH_serve.json, and enforces two floors on the guard cell
(GUARD_POLICY at GUARD_RATE arrivals/s, GUARD_EPOCH_S epochs, on the
150-rack fabric):

  * sustained throughput: modeled coflow-arrivals/s — admitted arrivals
    divided by (main-thread CPU + shard critical path seconds) — must
    clear MIN_MODELED_ARRIVALS_PER_S. The modeled clock is what an
    unloaded host with >= shards cores would take, so the floor holds on
    single-core CI runners too.
  * scheduling latency: the virtual-time p99 of enqueue -> allocation
    must stay within P99_EPOCH_FACTOR x the epoch length. Batched
    admission bounds it by one epoch plus histogram-bucket quantization;
    a p99 beyond that means admissions are slipping epochs.

Usage: tools/bench_serve_report.py <run.json> [<run.json> ...] [-o out.json]
Exits non-zero when any floor is missed or the guard cell is absent.
"""
import json
import sys

MIN_MODELED_ARRIVALS_PER_S = 100000.0
P99_EPOCH_FACTOR = 1.5
GUARD_POLICY = "drf@4"
GUARD_RATE = 250000
GUARD_EPOCH_S = 0.02

REQUIRED_FIELDS = (
    "policy",
    "arrival_rate_per_s",
    "epoch_s",
    "coflows",
    "admitted",
    "sched_p50_s",
    "sched_p95_s",
    "sched_p99_s",
    "wall_seconds",
    "main_cpu_seconds",
    "shard_critical_seconds",
)


def load_rows(paths):
    rows = []
    for path in paths:
        with open(path) as f:
            report = json.load(f)
        if report.get("benchmark") != "bench_serve":
            raise ValueError(f"{path}: not a bench_serve JSON report")
        for row in report.get("rows", []):
            missing = [k for k in REQUIRED_FIELDS if k not in row]
            if missing:
                raise ValueError(f"{path}: row missing fields {missing}")
            rows.append(row)
    return rows


def main(argv):
    args = argv[1:]
    out_path = "BENCH_serve.json"
    if "-o" in args:
        i = args.index("-o")
        if i + 1 >= len(args):
            print(__doc__.strip(), file=sys.stderr)
            return 2
        out_path = args[i + 1]
        del args[i : i + 2]
    if not args:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    try:
        rows = load_rows(args)
    except (OSError, ValueError, json.JSONDecodeError) as err:
        print(f"::error::{err}")
        return 1

    matrix = {}
    for row in rows:
        modeled = row["main_cpu_seconds"] + row["shard_critical_seconds"]
        cell = {
            "coflows": row["coflows"],
            "admitted": row["admitted"],
            "sched_p50_s": row["sched_p50_s"],
            "sched_p95_s": row["sched_p95_s"],
            "sched_p99_s": row["sched_p99_s"],
            "wall_arrivals_per_s": (
                row["admitted"] / row["wall_seconds"]
                if row["wall_seconds"] > 0
                else 0.0
            ),
            "modeled_seconds": modeled,
            "modeled_arrivals_per_s": (
                row["admitted"] / modeled if modeled > 0 else 0.0
            ),
        }
        for extra in ("machines", "clients", "allocations", "rate_pushes",
                      "admit_p99_s", "rejected"):
            if extra in row:
                cell[extra] = row[extra]
        matrix.setdefault(row["policy"], {}).setdefault(
            str(int(row["arrival_rate_per_s"])), {}
        )[repr(row["epoch_s"])] = cell

    for policy, by_rate in sorted(matrix.items()):
        for rate, by_epoch in sorted(
            by_rate.items(), key=lambda kv: int(kv[0])
        ):
            for epoch, cell in sorted(
                by_epoch.items(), key=lambda kv: float(kv[0])
            ):
                print(
                    f"{policy:>8} @{int(rate):>7}/s, "
                    f"epoch {1e3 * float(epoch):5.1f} ms: "
                    f"sched p99 {1e3 * cell['sched_p99_s']:7.3f} ms, "
                    f"modeled {cell['modeled_arrivals_per_s']:9.1f} "
                    "arrivals/s"
                )

    failures = []
    guard_cell = (
        matrix.get(GUARD_POLICY, {})
        .get(str(GUARD_RATE), {})
        .get(repr(GUARD_EPOCH_S))
    )
    if guard_cell is None:
        failures.append(
            f"guard cell {GUARD_POLICY}@{GUARD_RATE}/s epoch "
            f"{GUARD_EPOCH_S}s missing from the report"
        )
    else:
        sustained = guard_cell["modeled_arrivals_per_s"]
        if sustained < MIN_MODELED_ARRIVALS_PER_S:
            failures.append(
                f"{GUARD_POLICY}@{GUARD_RATE}/s: sustained modeled "
                f"throughput {sustained:.0f} arrivals/s below floor "
                f"{MIN_MODELED_ARRIVALS_PER_S:.0f}"
            )
        p99_bound = P99_EPOCH_FACTOR * GUARD_EPOCH_S
        if guard_cell["sched_p99_s"] > p99_bound:
            failures.append(
                f"{GUARD_POLICY}@{GUARD_RATE}/s: sched p99 "
                f"{guard_cell['sched_p99_s'] * 1e3:.3f} ms exceeds "
                f"{P99_EPOCH_FACTOR} x epoch ({p99_bound * 1e3:.1f} ms)"
            )

    out = {
        "description": (
            "Serving front-end throughput and latency per {policy, "
            "arrival rate, epoch length}: virtual-time scheduling-latency "
            "percentiles (enqueue -> allocation) plus sustained "
            "coflow-arrivals/s on the wall and modeled clocks (modeled = "
            "admitted / (main-thread CPU + shard critical path))"
        ),
        "source": "bench/bench_serve.cc",
        "guard": {
            "policy": GUARD_POLICY,
            "arrival_rate_per_s": GUARD_RATE,
            "epoch_s": GUARD_EPOCH_S,
            "min_modeled_arrivals_per_s": MIN_MODELED_ARRIVALS_PER_S,
            "max_sched_p99_epochs": P99_EPOCH_FACTOR,
        },
        "matrix": matrix,
    }
    with open(out_path, "w") as f:
        json.dump(out, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {out_path}")

    if failures:
        for failure in failures:
            print(f"::error::{failure}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
