// obs_top: terminal view of a live Timeseries snapshot stream.
//
// Tails the append-only NDJSON file that obs::SnapshotStream (or
// bench_serve --trace-dir) writes, parses the *last complete* window
// line — a writer mid-line never corrupts the view — and renders the
// window as aligned tables: the per-client serving plane first
// (serve.client.N.* instruments pivoted into one row per client), then
// every other counter / gauge / histogram.
//
//   obs_top FILE                one-shot render of the newest window
//   obs_top --follow FILE       re-render every interval until killed
//   obs_top --interval=0.5 ...  follow-mode refresh period (seconds)
//
// Exits 1 when the file cannot be read or holds no complete window yet
// (one-shot mode); follow mode keeps waiting for the first window.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/table.h"
#include "obs/json_lint.h"

namespace {

using ncdrf::AsciiTable;
using ncdrf::obs::SnapshotRow;

// The last '\n'-terminated line of the file ("" when none is complete).
std::string last_complete_line(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  const std::size_t end = text.rfind('\n');
  if (end == std::string::npos) return "";
  const std::size_t begin = text.rfind('\n', end == 0 ? 0 : end - 1);
  return text.substr(begin == std::string::npos ? 0 : begin + 1,
                     end - (begin == std::string::npos ? 0 : begin + 1));
}

// Splits "serve.client.3.backlog" into (3, "backlog"); false otherwise.
bool client_metric(const std::string& name, int& client, std::string& field) {
  static const std::string kPrefix = "serve.client.";
  if (name.rfind(kPrefix, 0) != 0) return false;
  const std::size_t dot = name.find('.', kPrefix.size());
  if (dot == std::string::npos || dot == kPrefix.size()) return false;
  for (std::size_t i = kPrefix.size(); i < dot; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
  }
  client = std::stoi(name.substr(kPrefix.size(), dot - kPrefix.size()));
  field = name.substr(dot + 1);
  return true;
}

void render(const SnapshotRow& row, std::ostream& out) {
  out << "window " << static_cast<long long>(row.window) << "  ["
      << AsciiTable::fmt(row.t0, 3) << "s, " << AsciiTable::fmt(row.t1, 3)
      << "s)  span " << AsciiTable::fmt(row.t1 - row.t0, 3) << "s\n\n";

  // Pivot the per-client instruments into one row per client: backlog is
  // a gauge, accepted/rejected/shed are counters (rate column).
  struct ClientRow {
    double backlog = 0.0;
    double accepted_rate = 0.0;
    double rejected_rate = 0.0;
    double shed_rate = 0.0;
  };
  std::map<int, ClientRow> clients;
  int client = -1;
  std::string field;
  for (const auto& [name, value] : row.gauges) {
    if (client_metric(name, client, field) && field == "backlog") {
      clients[client].backlog = value;
    }
  }
  for (const auto& [name, values] : row.counters) {
    if (!client_metric(name, client, field)) continue;
    const double rate = values[2];  // {total, delta, rate_per_s}
    if (field == "accepted") clients[client].accepted_rate = rate;
    if (field == "rejected") clients[client].rejected_rate = rate;
    if (field == "shed") clients[client].shed_rate = rate;
  }
  if (!clients.empty()) {
    AsciiTable table({"client", "backlog", "accepted/s", "rejected/s",
                      "shed/s"});
    for (const auto& [id, c] : clients) {
      table.add_row({std::to_string(id), AsciiTable::fmt(c.backlog, 0),
                     AsciiTable::fmt(c.accepted_rate, 1),
                     AsciiTable::fmt(c.rejected_rate, 1),
                     AsciiTable::fmt(c.shed_rate, 1)});
    }
    out << table.render() << '\n';
  }

  AsciiTable counters({"counter", "total", "delta", "rate/s"});
  bool any_counter = false;
  for (const auto& [name, values] : row.counters) {
    if (client_metric(name, client, field)) continue;
    counters.add_row({name, AsciiTable::fmt(values[0], 0),
                      AsciiTable::fmt(values[1], 0),
                      AsciiTable::fmt(values[2], 1)});
    any_counter = true;
  }
  if (any_counter) out << counters.render() << '\n';

  AsciiTable gauges({"gauge", "value"});
  bool any_gauge = false;
  for (const auto& [name, value] : row.gauges) {
    if (client_metric(name, client, field)) continue;
    gauges.add_row({name, AsciiTable::fmt(value, 2)});
    any_gauge = true;
  }
  if (any_gauge) out << gauges.render() << '\n';

  if (!row.histograms.empty()) {
    AsciiTable hists({"histogram", "count", "p50", "p95", "p99"});
    for (const auto& [name, values] : row.histograms) {
      // values = {count, sum, p50, p95, p99}
      hists.add_row({name, AsciiTable::fmt(values[0], 0),
                     AsciiTable::fmt(values[2], 6),
                     AsciiTable::fmt(values[3], 6),
                     AsciiTable::fmt(values[4], 6)});
    }
    out << hists.render();
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool follow = false;
  double interval_s = 1.0;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--follow") {
      follow = true;
    } else if (arg.rfind("--interval=", 0) == 0) {
      interval_s = std::stod(arg.substr(11));
      if (interval_s <= 0.0) {
        std::cerr << "obs_top: interval must be positive\n";
        return 2;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "usage: obs_top [--follow] [--interval=SECONDS] FILE\n";
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::cerr << "obs_top: exactly one FILE\n";
      return 2;
    }
  }
  if (path.empty()) {
    std::cerr << "usage: obs_top [--follow] [--interval=SECONDS] FILE\n";
    return 2;
  }

  double last_window = -1.0;
  while (true) {
    const std::string line = last_complete_line(path);
    if (line.empty()) {
      if (!follow) {
        std::cerr << "obs_top: no complete snapshot line in " << path << '\n';
        return 1;
      }
    } else {
      SnapshotRow row;
      const std::string error =
          ncdrf::obs::parse_timeseries_line(line, &row);
      if (!error.empty()) {
        std::cerr << "obs_top: " << path << ": " << error << '\n';
        return 1;
      }
      if (row.window != last_window) {
        last_window = row.window;
        std::ostringstream frame;
        render(row, frame);
        if (follow) std::cout << "\033[2J\033[H";  // clear + home
        std::cout << frame.str() << std::flush;
      }
    }
    if (!follow) break;
    std::this_thread::sleep_for(std::chrono::duration<double>(interval_s));
  }
  return 0;
}
