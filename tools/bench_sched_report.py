#!/usr/bin/env python3
"""Distills the scheduler-scalability benchmark JSON into BENCH_sched.json.

Reads the google-benchmark JSON produced by bench_sched_scalability
(--benchmark_out), extracts the per-policy kernel-vs-legacy EventReplay
events/sec matrix, writes a compact BENCH_sched.json, and enforces the
allocation-kernel speedup floor: for the guarded policies the kernel path
must move at least MIN_SPEEDUP x the legacy events/sec at 500 concurrent
coflows. Kernel and legacy run in the same process on the same instance,
so the ratio is robust to machine speed.

Usage: tools/bench_sched_report.py <benchmark.json> [<out.json>]
Exits non-zero when a guarded ratio falls below the floor.
"""
import json
import re
import sys

MIN_SPEEDUP = 2.0
GUARD_COFLOWS = "500"
# Registry names: tcp is the per-flow fairness baseline ("perflow" in the
# paper's terms); psp/psp-live are HUG's PS-P with stale/live counting.
GUARDED_POLICIES = ("drf", "hug", "psp", "tcp")

NAME_RE = re.compile(r"^BM_EventReplay(Kernel|Legacy)_(\w+)/(\d+)$")

# Benchmark tag -> registry policy name.
TAGS = {
    "Tcp": "tcp",
    "Persource": "persource",
    "Perpair": "perpair",
    "Psp": "psp",
    "PspLive": "psp-live",
    "Drf": "drf",
    "Hug": "hug",
    "Aalo": "aalo",
    "Varys": "varys",
    "Baraat": "baraat",
    "Fifo": "fifo",
}


def main(argv):
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    bench_path = argv[1]
    out_path = argv[2] if len(argv) == 3 else "BENCH_sched.json"

    with open(bench_path) as f:
        report = json.load(f)

    matrix = {}
    for bench in report.get("benchmarks", []):
        match = NAME_RE.match(bench.get("name", ""))
        if match is None or "items_per_second" not in bench:
            continue
        mode, tag, coflows = match.groups()
        policy = TAGS.get(tag)
        if policy is None:
            print(f"::error::unknown benchmark tag {tag!r} in {bench['name']}")
            return 1
        cell = matrix.setdefault(policy, {}).setdefault(coflows, {})
        cell[mode.lower() + "_events_per_s"] = bench["items_per_second"]

    failures = []
    for policy, by_coflows in sorted(matrix.items()):
        for coflows, cell in sorted(by_coflows.items(), key=lambda kv: int(kv[0])):
            kernel = cell.get("kernel_events_per_s")
            legacy = cell.get("legacy_events_per_s")
            if kernel is None or legacy is None:
                failures.append(
                    f"{policy}@{coflows}: missing "
                    f"{'kernel' if kernel is None else 'legacy'} run"
                )
                continue
            cell["speedup"] = kernel / legacy
            guarded = policy in GUARDED_POLICIES and coflows == GUARD_COFLOWS
            line = (
                f"{policy:>10} @{coflows:>5} coflows: "
                f"kernel {kernel:12.0f} ev/s, legacy {legacy:12.0f} ev/s, "
                f"speedup {cell['speedup']:5.2f}x"
            )
            if guarded:
                line += f"  [guard >= {MIN_SPEEDUP}x]"
                if cell["speedup"] < MIN_SPEEDUP:
                    failures.append(
                        f"{policy}@{coflows}: kernel speedup "
                        f"{cell['speedup']:.2f}x below floor {MIN_SPEEDUP}x"
                    )
            print(line)

    for policy in GUARDED_POLICIES:
        if GUARD_COFLOWS not in matrix.get(policy, {}):
            failures.append(f"{policy}@{GUARD_COFLOWS}: no benchmark data")

    out = {
        "description": (
            "EventReplay events/sec per policy: allocation-kernel scheduler "
            "vs frozen pre-refactor implementation, same process and "
            "instance; speedup = kernel/legacy"
        ),
        "source": "bench/bench_sched_scalability.cc",
        "guard": {
            "min_speedup": MIN_SPEEDUP,
            "coflows": int(GUARD_COFLOWS),
            "policies": list(GUARDED_POLICIES),
        },
        "matrix": matrix,
    }
    with open(out_path, "w") as f:
        json.dump(out, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {out_path}")

    if failures:
        for failure in failures:
            print(f"::error::{failure}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
