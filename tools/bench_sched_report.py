#!/usr/bin/env python3
"""Distills the scheduler-scalability benchmark JSON into BENCH_sched.json.

Reads the google-benchmark JSON produced by bench_sched_scalability
(--benchmark_out), extracts the per-policy kernel-vs-legacy EventReplay
events/sec matrix, writes a compact BENCH_sched.json, and enforces the
ratcheted allocation-kernel speedup floors: for each guarded (policy,
coflows) pair in POLICY_FLOORS the kernel path must move at least that
many times the legacy events/sec. Kernel and legacy run in the same
process on the same instance, so the ratio is robust to machine speed.

When the benchmark ran with --benchmark_repetitions, entries sharing a
name are folded with max(): best-of-N events/sec per mode is the standard
noise-robust estimator (a transient CPU steal can only slow a run down),
so the guarded ratio compares the two paths' unloaded speeds instead of
whichever repetition the noise happened to hit.

Floors are ratcheted to measured-minus-margin, never aspirational: each
value sits comfortably below the best-of-reps speedup the current tree
reproduces on CI-class hardware (tcp ~20x, hug ~4.5x-5x, drf ~3.5x/~2x,
psp ~2.15x/~2.1x at 500/1000 coflows), so a regression below a floor
means a real perf loss on the kernel hot path, not machine noise.

Usage: tools/bench_sched_report.py <benchmark.json> [<out.json>]
Exits non-zero when a guarded ratio falls below its floor.
"""
import json
import re
import sys

# Per-(coflows, policy) kernel/legacy speedup floors. The 500-coflow block
# is the original >=2x refactor guard ratcheted per policy after the SoA
# scratch + indexed-heap waterfill landed; the 1000-coflow block guards the
# larger instances where cache effects dominate.
POLICY_FLOORS = {
    "500": {"tcp": 12.0, "hug": 3.5, "drf": 3.0, "psp": 2.05},
    "1000": {"tcp": 12.0, "hug": 3.5, "drf": 1.8, "psp": 1.8},
}

NAME_RE = re.compile(r"^BM_EventReplay(Kernel|Legacy)_(\w+)/(\d+)$")

# Benchmark tag -> registry policy name. tcp is the per-flow fairness
# baseline ("perflow" in the paper's terms); psp/psp-live are HUG's PS-P
# with stale/live counting.
TAGS = {
    "Tcp": "tcp",
    "Persource": "persource",
    "Perpair": "perpair",
    "Psp": "psp",
    "PspLive": "psp-live",
    "Drf": "drf",
    "Hug": "hug",
    "Aalo": "aalo",
    "Varys": "varys",
    "Baraat": "baraat",
    "Fifo": "fifo",
}


def main(argv):
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    bench_path = argv[1]
    out_path = argv[2] if len(argv) == 3 else "BENCH_sched.json"

    with open(bench_path) as f:
        report = json.load(f)

    matrix = {}
    for bench in report.get("benchmarks", []):
        match = NAME_RE.match(bench.get("name", ""))
        if match is None or "items_per_second" not in bench:
            continue
        mode, tag, coflows = match.groups()
        policy = TAGS.get(tag)
        if policy is None:
            print(f"::error::unknown benchmark tag {tag!r} in {bench['name']}")
            return 1
        cell = matrix.setdefault(policy, {}).setdefault(coflows, {})
        key = mode.lower() + "_events_per_s"
        cell[key] = max(cell.get(key, 0.0), bench["items_per_second"])

    failures = []
    for policy, by_coflows in sorted(matrix.items()):
        for coflows, cell in sorted(by_coflows.items(), key=lambda kv: int(kv[0])):
            kernel = cell.get("kernel_events_per_s")
            legacy = cell.get("legacy_events_per_s")
            if kernel is None or legacy is None:
                failures.append(
                    f"{policy}@{coflows}: missing "
                    f"{'kernel' if kernel is None else 'legacy'} run"
                )
                continue
            cell["speedup"] = kernel / legacy
            floor = POLICY_FLOORS.get(coflows, {}).get(policy)
            line = (
                f"{policy:>10} @{coflows:>5} coflows: "
                f"kernel {kernel:12.0f} ev/s, legacy {legacy:12.0f} ev/s, "
                f"speedup {cell['speedup']:5.2f}x"
            )
            if floor is not None:
                line += f"  [guard >= {floor}x]"
                if cell["speedup"] < floor:
                    failures.append(
                        f"{policy}@{coflows}: kernel speedup "
                        f"{cell['speedup']:.2f}x below floor {floor}x"
                    )
            print(line)

    for coflows, floors in POLICY_FLOORS.items():
        for policy in floors:
            if coflows not in matrix.get(policy, {}):
                failures.append(f"{policy}@{coflows}: no benchmark data")

    out = {
        "description": (
            "EventReplay events/sec per policy: allocation-kernel scheduler "
            "vs frozen pre-refactor implementation, same process and "
            "instance; speedup = kernel/legacy"
        ),
        "source": "bench/bench_sched_scalability.cc",
        "guard": {
            "policy_floors": {
                coflows: dict(sorted(floors.items()))
                for coflows, floors in sorted(
                    POLICY_FLOORS.items(), key=lambda kv: int(kv[0])
                )
            },
        },
        "matrix": matrix,
    }
    with open(out_path, "w") as f:
        json.dump(out, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {out_path}")

    if failures:
        for failure in failures:
            print(f"::error::{failure}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
