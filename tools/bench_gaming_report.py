#!/usr/bin/env python3
"""Distills bench_gaming JSON runs into BENCH_gaming.json and gates them.

Reads one or more JSON files produced by bench/bench_gaming --json, merges
their rows into a {policy x strategy x honest-fraction} matrix, writes a
compact BENCH_gaming.json, and enforces the incentive floor on the guard
cell:

  * karma's flow-splitter attacker gain must stay <= MAX_KARMA_SPLIT_GAIN
    (1.05x): per-tenant weighted max-min plus credits makes splitting a
    coflow into k siblings share-invariant, so a gain above the floor
    means the credit accounting regressed;
  * NC-DRF's flow-splitter gain is recorded alongside in the artifact
    (not gated — it is the *motivating* gap the karma baseline closes),
    and the report fails if karma does not beat NC-DRF on that cell.

Usage: tools/bench_gaming_report.py <run.json> [...] [-o out.json]
Exits non-zero when any floor is missed or a guard cell is absent.
"""
import json
import sys

MAX_KARMA_SPLIT_GAIN = 1.05
GUARD_STRATEGY = "flow-splitter"
GUARD_FRACTION = 0.75

REQUIRED_FIELDS = (
    "policy",
    "strategy",
    "honest_fraction",
    "clients",
    "machines",
    "attackers",
    "coflows",
    "utilization",
    "jain_coflow",
    "jain_tenant",
    "log_welfare",
    "attacker_gain",
    "victim_slowdown",
    "makespan_s",
)


def load_rows(paths):
    rows = []
    for path in paths:
        with open(path) as f:
            report = json.load(f)
        if report.get("benchmark") != "bench_gaming":
            raise ValueError(f"{path}: not a bench_gaming JSON report")
        for row in report.get("rows", []):
            missing = [k for k in REQUIRED_FIELDS if k not in row]
            if missing:
                raise ValueError(f"{path}: row missing fields {missing}")
            rows.append(row)
    return rows


def main(argv):
    args = argv[1:]
    out_path = "BENCH_gaming.json"
    if "-o" in args:
        i = args.index("-o")
        if i + 1 >= len(args):
            print(__doc__.strip(), file=sys.stderr)
            return 2
        out_path = args[i + 1]
        del args[i : i + 2]
    if not args:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    try:
        rows = load_rows(args)
    except (OSError, ValueError, json.JSONDecodeError) as err:
        print(f"::error::{err}")
        return 1

    matrix = {}
    for row in rows:
        cell = {k: row[k] for k in REQUIRED_FIELDS if k not in
                ("policy", "strategy", "honest_fraction")}
        matrix.setdefault(row["policy"], {}).setdefault(
            row["strategy"], {}
        )[repr(row["honest_fraction"])] = cell

    for policy, by_strategy in sorted(matrix.items()):
        for strategy, by_fraction in sorted(by_strategy.items()):
            for fraction, cell in sorted(by_fraction.items()):
                print(
                    f"{policy:>10} x {strategy:<16} honest {fraction}: "
                    f"gain {cell['attacker_gain']:.3f}x, "
                    f"victim {cell['victim_slowdown']:.3f}x, "
                    f"Jain(tenant) {cell['jain_tenant']:.3f}"
                )

    failures = []

    def guard_cell(policy):
        cell = (
            matrix.get(policy, {})
            .get(GUARD_STRATEGY, {})
            .get(repr(GUARD_FRACTION))
        )
        if cell is None:
            failures.append(
                f"guard cell {policy} x {GUARD_STRATEGY} @ honest "
                f"{GUARD_FRACTION} missing from the report"
            )
        return cell

    karma = guard_cell("karma")
    ncdrf = guard_cell("ncdrf")
    if karma is not None:
        gain = karma["attacker_gain"]
        if gain > MAX_KARMA_SPLIT_GAIN:
            failures.append(
                f"karma x {GUARD_STRATEGY}: attacker gain {gain:.3f}x "
                f"exceeds the {MAX_KARMA_SPLIT_GAIN}x floor"
            )
    if karma is not None and ncdrf is not None:
        if karma["attacker_gain"] >= ncdrf["attacker_gain"]:
            failures.append(
                f"karma gain {karma['attacker_gain']:.3f}x does not beat "
                f"ncdrf's {ncdrf['attacker_gain']:.3f}x on the "
                f"{GUARD_STRATEGY} cell"
            )

    out = {
        "description": (
            "Tenant-gaming incentives per {policy, strategy, honest "
            "fraction}: attacker gain (honest-case mean CCT of the "
            "attacker's honest submissions / strategic-case, > 1 = the "
            "manipulation paid off), victim slowdown, utilization, Jain "
            "short/long-term fairness and log-welfare of the strategic run"
        ),
        "source": "bench/bench_gaming.cc",
        "guard": {
            "strategy": GUARD_STRATEGY,
            "honest_fraction": GUARD_FRACTION,
            "max_karma_attacker_gain": MAX_KARMA_SPLIT_GAIN,
            "ncdrf_attacker_gain": (
                ncdrf["attacker_gain"] if ncdrf is not None else None
            ),
            "karma_attacker_gain": (
                karma["attacker_gain"] if karma is not None else None
            ),
        },
        "matrix": matrix,
    }
    with open(out_path, "w") as f:
        json.dump(out, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {out_path}")

    if failures:
        for failure in failures:
            print(f"::error::{failure}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
