// CI gate for observability artifacts: validates trace / metrics JSON
// files against the schemas in obs/json_lint.h.
//
//   obs_validate --trace FILE...       Chrome trace-event JSON
//   obs_validate --metrics FILE...     MetricsRegistry JSON
//   obs_validate --ndjson FILE...      one JSON object per line
//   obs_validate --timeseries FILE...  Timeseries snapshot NDJSON
//   obs_validate --flight FILE...      flight-recorder bundle JSON
//   obs_validate --gaming FILE...      bench_gaming --json report
//   obs_validate --json FILE...        any JSON document (syntax only)
//
// Modes may be mixed on one command line; each flag applies to the files
// after it. Exits 0 when every file validates, 1 otherwise (first error
// per file printed to stderr).
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/json_lint.h"

namespace {

std::string read_file(const std::string& path, bool& ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ok = false;
    return "";
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  ok = true;
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  using Validator = std::string (*)(const std::string&);
  Validator validate = ncdrf::obs::validate_json;
  const char* mode = "--json";
  int checked = 0;
  int failures = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace") {
      validate = ncdrf::obs::validate_chrome_trace_json;
      mode = "--trace";
      continue;
    }
    if (arg == "--metrics") {
      validate = ncdrf::obs::validate_metrics_json;
      mode = "--metrics";
      continue;
    }
    if (arg == "--ndjson") {
      validate = ncdrf::obs::validate_ndjson;
      mode = "--ndjson";
      continue;
    }
    if (arg == "--timeseries") {
      validate = ncdrf::obs::validate_timeseries_ndjson;
      mode = "--timeseries";
      continue;
    }
    if (arg == "--flight") {
      validate = ncdrf::obs::validate_flight_bundle_json;
      mode = "--flight";
      continue;
    }
    if (arg == "--gaming") {
      validate = ncdrf::obs::validate_gaming_json;
      mode = "--gaming";
      continue;
    }
    if (arg == "--json") {
      validate = ncdrf::obs::validate_json;
      mode = "--json";
      continue;
    }
    bool ok = false;
    const std::string text = read_file(arg, ok);
    if (!ok) {
      std::cerr << "obs_validate: cannot read " << arg << '\n';
      ++failures;
      continue;
    }
    ++checked;
    if (const std::string error = validate(text); !error.empty()) {
      std::cerr << "obs_validate: " << arg << " (" << mode
                << "): " << error << '\n';
      ++failures;
    } else {
      std::cout << "obs_validate: " << arg << " OK (" << mode << ")\n";
    }
  }

  if (checked == 0 && failures == 0) {
    std::cerr << "usage: obs_validate [--trace|--metrics|--ndjson|"
                 "--timeseries|--flight|--gaming|--json] FILE...\n";
    return 2;
  }
  return failures == 0 ? 0 : 1;
}
