#!/usr/bin/env python3
"""Distills bench_scale JSON runs into BENCH_scale.json and gates them.

Reads one or more JSON files produced by bench/bench_scale --json, merges
their rows into a {policy x shard-count x coflow-count} matrix, writes a
compact BENCH_scale.json, and enforces two floors:

  * modeled speedup: for each guarded policy, modeled events/s at
    GUARD_SHARDS shards must be at least MIN_SPEEDUP x the 1-shard value
    at GUARD_COFLOWS coflows. The modeled time is main-thread CPU plus
    the shard critical path (max per-shard CPU per parallel region), so
    the ratio holds on any host - including single-core CI runners where
    wall clock cannot show parallel speedup.
  * absolute throughput: the 1-shard wall events/s at GUARD_COFLOWS must
    clear MIN_SERIAL_EVENTS_PER_S for every guarded policy, so a broad
    serial regression cannot hide inside a still-healthy ratio.

Usage: tools/bench_scale_report.py <run.json> [<run.json> ...] [-o out.json]
Exits non-zero when any floor is missed or guard data is absent.
"""
import json
import sys

MIN_SPEEDUP = 1.8
MIN_SERIAL_EVENTS_PER_S = 2.0
GUARD_COFLOWS = 10000
GUARD_SHARDS = 4
# drf exercises the parallel demand-refresh/progress path; varys is the
# fill-based representative (sorted fill + sharded waterfill backfill).
GUARDED_POLICIES = ("drf", "varys")

REQUIRED_FIELDS = (
    "policy",
    "shards",
    "coflows",
    "events",
    "wall_seconds",
    "main_cpu_seconds",
    "shard_critical_seconds",
)


def load_rows(paths):
    rows = []
    for path in paths:
        with open(path) as f:
            report = json.load(f)
        if report.get("benchmark") != "bench_scale":
            raise ValueError(f"{path}: not a bench_scale JSON report")
        for row in report.get("rows", []):
            missing = [k for k in REQUIRED_FIELDS if k not in row]
            if missing:
                raise ValueError(f"{path}: row missing fields {missing}")
            rows.append(row)
    return rows


def main(argv):
    args = argv[1:]
    out_path = "BENCH_scale.json"
    if "-o" in args:
        i = args.index("-o")
        if i + 1 >= len(args):
            print(__doc__.strip(), file=sys.stderr)
            return 2
        out_path = args[i + 1]
        del args[i : i + 2]
    if not args:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    try:
        rows = load_rows(args)
    except (OSError, ValueError, json.JSONDecodeError) as err:
        print(f"::error::{err}")
        return 1

    matrix = {}
    for row in rows:
        modeled = row["main_cpu_seconds"] + row["shard_critical_seconds"]
        cell = {
            "events": row["events"],
            "wall_events_per_s": (
                row["events"] / row["wall_seconds"]
                if row["wall_seconds"] > 0
                else 0.0
            ),
            "modeled_seconds": modeled,
            "modeled_events_per_s": (
                row["events"] / modeled if modeled > 0 else 0.0
            ),
        }
        for extra in ("locality", "fp_iters", "fp_tol", "racks"):
            if extra in row:
                cell[extra] = row[extra]
        matrix.setdefault(row["policy"], {}).setdefault(
            str(row["coflows"]), {}
        )[str(row["shards"])] = cell

    failures = []
    for policy, by_coflows in sorted(matrix.items()):
        for coflows, by_shards in sorted(
            by_coflows.items(), key=lambda kv: int(kv[0])
        ):
            base = by_shards.get("1")
            for shards, cell in sorted(
                by_shards.items(), key=lambda kv: int(kv[0])
            ):
                speedup = None
                if base is not None and base["modeled_events_per_s"] > 0:
                    speedup = (
                        cell["modeled_events_per_s"]
                        / base["modeled_events_per_s"]
                    )
                    cell["modeled_speedup_vs_1shard"] = speedup
                print(
                    f"{policy:>8} @{int(coflows):>6} coflows, "
                    f"{int(shards)} shard(s): "
                    f"wall {cell['wall_events_per_s']:8.1f} ev/s, "
                    f"modeled {cell['modeled_events_per_s']:8.1f} ev/s"
                    + (f", speedup {speedup:5.2f}x" if speedup else "")
                )

    for policy in GUARDED_POLICIES:
        by_shards = matrix.get(policy, {}).get(str(GUARD_COFLOWS), {})
        base = by_shards.get("1")
        target = by_shards.get(str(GUARD_SHARDS))
        if base is None or target is None:
            failures.append(
                f"{policy}@{GUARD_COFLOWS}: missing "
                f"{'1-shard' if base is None else f'{GUARD_SHARDS}-shard'} "
                "guard cell"
            )
            continue
        if base["wall_events_per_s"] < MIN_SERIAL_EVENTS_PER_S:
            failures.append(
                f"{policy}@{GUARD_COFLOWS}: serial wall throughput "
                f"{base['wall_events_per_s']:.1f} ev/s below floor "
                f"{MIN_SERIAL_EVENTS_PER_S} ev/s"
            )
        speedup = target.get("modeled_speedup_vs_1shard", 0.0)
        if speedup < MIN_SPEEDUP:
            failures.append(
                f"{policy}@{GUARD_COFLOWS}: modeled {GUARD_SHARDS}-shard "
                f"speedup {speedup:.2f}x below floor {MIN_SPEEDUP}x"
            )

    out = {
        "description": (
            "Event-replay throughput per {policy, shard count, coflow "
            "count}: wall events/s plus the modeled events/s (main-thread "
            "CPU + shard critical path) that the speedup guard uses; "
            "speedup = modeled events/s vs the same policy at 1 shard"
        ),
        "source": "bench/bench_scale.cc",
        "guard": {
            "min_modeled_speedup": MIN_SPEEDUP,
            "min_serial_wall_events_per_s": MIN_SERIAL_EVENTS_PER_S,
            "coflows": GUARD_COFLOWS,
            "shards": GUARD_SHARDS,
            "policies": list(GUARDED_POLICIES),
        },
        "matrix": matrix,
    }
    with open(out_path, "w") as f:
        json.dump(out, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {out_path}")

    if failures:
        for failure in failures:
            print(f"::error::{failure}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
