#!/usr/bin/env python3
"""Include-order lint for the C++ tree (no clang-format dependency).

Enforces the two include conventions the codebase follows (Google style):

1. Self-header first: a file src/<mod>/<name>.cc whose directory holds
   <name>.h must include "<mod>/<name>.h" as its very first include,
   separated from everything after it.
2. Sorted blocks: within every contiguous run of #include lines (a
   "block", delimited by blank lines, comments, or any other code),
   includes must be lexicographically sorted. Blocks themselves may be
   ordered freely (<system> before "project" is convention, not checked —
   the self-header rule pins the one ordering bugs were found in).

Preprocessor conditionals reset the current block, so platform-gated
includes are exempt from cross-#if ordering.

Usage: tools/check_include_order.py [root]
Exits non-zero listing every violation.
"""
import os
import re
import sys

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+(<[^>]+>|"[^"]+")')
SCAN_DIRS = ("src", "tests", "bench", "examples", "tools")


def include_blocks(lines):
    """Yields (start_line, [(line_no, include_target), ...]) blocks."""
    block = []
    for number, line in enumerate(lines, start=1):
        match = INCLUDE_RE.match(line)
        if match:
            block.append((number, match.group(1)))
            continue
        if block:
            yield block
            block = []
    if block:
        yield block


def check_file(path, repo_root):
    errors = []
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()

    blocks = list(include_blocks(lines))

    # Rule 1: self-header first, in a block of its own.
    if path.endswith(".cc"):
        stem = os.path.splitext(os.path.basename(path))[0]
        header = os.path.join(os.path.dirname(path), stem + ".h")
        if os.path.exists(header) and blocks:
            rel = os.path.relpath(header, os.path.join(repo_root, "src"))
            expected = '"' + rel.replace(os.sep, "/") + '"'
            first_line, first_include = blocks[0][0]
            if first_include != expected:
                errors.append(
                    f"{path}:{first_line}: first include is {first_include},"
                    f" expected self-header {expected}"
                )
            elif len(blocks[0]) > 1:
                errors.append(
                    f"{path}:{blocks[0][1][0]}: self-header must stand alone"
                    f" (blank line after {expected})"
                )

    # Rule 2: every block internally sorted.
    for block in blocks:
        targets = [t for _, t in block]
        if targets != sorted(targets):
            for (num_a, inc_a), (num_b, inc_b) in zip(block, block[1:]):
                if inc_b < inc_a:
                    errors.append(
                        f"{path}:{num_b}: {inc_b} sorts before {inc_a}"
                        f" (line {num_a}) — keep include blocks sorted"
                    )
    return errors


def main(argv):
    repo_root = os.path.abspath(argv[1] if len(argv) > 1 else ".")
    errors = []
    checked = 0
    for scan in SCAN_DIRS:
        base = os.path.join(repo_root, scan)
        for dirpath, _, files in os.walk(base):
            for name in sorted(files):
                if name.endswith((".cc", ".h")):
                    checked += 1
                    errors.extend(
                        check_file(os.path.join(dirpath, name), repo_root)
                    )
    for error in errors:
        print(error)
    print(f"checked {checked} files: "
          f"{'OK' if not errors else f'{len(errors)} violation(s)'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
