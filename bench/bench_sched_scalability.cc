// Scheduler scalability microbenchmark (google-benchmark): wall-clock cost
// of one allocate() call as the number of active coflows grows, for every
// policy. The paper's master recomputes the allocation on every coflow
// event, so allocation latency bounds how fast a cluster can churn
// coflows; NC-DRF's allocation is O(flows + coflows·links), no LP solves.
//
// The EventReplay benchmarks measure the online loop itself: a scripted
// stream of flow-finish / departure / arrival events at a steady number of
// concurrent coflows, with one allocate() per event. "Incremental" drives
// NC-DRF through its delta hooks (persistent per-coflow state, O(links
// touched) updates); "FromScratch" forces a full snapshot rescan per
// event. items_per_second in the JSON output is events/sec — the number
// the CI bench-smoke job archives as the perf trajectory.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <utility>

#include "alloc/legacy.h"
#include "common/rng.h"
#include "common/units.h"
#include "core/ncdrf.h"
#include "core/registry.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "sched/scheduler.h"
#include "sim/sim.h"
#include "trace/synthetic_fb.h"

namespace {

using namespace ncdrf;

// A reusable snapshot with `num_coflows` active coflows on 150 racks.
struct Workbench {
  Fabric fabric{150, gbps(1.0)};
  Trace trace;
  ScheduleInput input;
  std::vector<double> remaining;
  std::unique_ptr<ClairvoyantInfo> info;

  explicit Workbench(int num_coflows, int max_flows_per_coflow = 200) {
    SyntheticFbOptions options;
    options.num_coflows = num_coflows;
    options.duration_s = 1.0;  // everything concurrently active
    options.max_flows_per_coflow = max_flows_per_coflow;
    trace = generate_synthetic_fb(options);

    input.fabric = &fabric;
    remaining.assign(static_cast<std::size_t>(trace.total_flows), 0.0);
    for (const Coflow& coflow : trace.coflows) {
      ActiveCoflow view;
      view.id = coflow.id();
      view.arrival_time = coflow.arrival_time();
      for (const Flow& f : coflow.flows()) {
        view.flows.push_back(ActiveFlow{f.id, f.coflow, f.src, f.dst});
        remaining[static_cast<std::size_t>(f.id)] = f.size_bits;
      }
      input.coflows.push_back(std::move(view));
    }
    info = std::make_unique<ClairvoyantInfo>(&remaining);
  }
};

void run_allocate(benchmark::State& state, const std::string& name) {
  const auto coflows = static_cast<int>(state.range(0));
  Workbench bench(coflows);
  const auto scheduler = make_scheduler(name);
  bench.input.clairvoyant = scheduler->clairvoyant() ? bench.info.get()
                                                     : nullptr;
  int flows = 0;
  for (const ActiveCoflow& c : bench.input.coflows) {
    flows += static_cast<int>(c.flows.size());
  }
  for (auto _ : state) {
    Allocation alloc = scheduler->allocate(bench.input);
    benchmark::DoNotOptimize(alloc);
  }
  state.counters["coflows"] = coflows;
  state.counters["flows"] = flows;
}

// One replay step at coflow cursor k — three events, each followed by an
// allocate(), leaving the snapshot unchanged (modulo coflow order):
//   1. the last flow of coflow k finishes;
//   2. coflow k departs;
//   3. coflow k re-arrives in its original form.
// `pristine` holds the untouched view of k for the re-arrival.
template <typename OnEvent>
void replay_triple(ScheduleInput& input, std::size_t k,
                   const ActiveCoflow& pristine, OnEvent&& on_event) {
  ActiveCoflow& coflow = input.coflows[k];
  const ActiveFlow finished = coflow.flows.back();
  coflow.flows.pop_back();
  coflow.finished_flows.push_back(finished);
  on_event(/*finish=*/&finished, /*depart=*/static_cast<CoflowId>(-1),
           /*arrive=*/static_cast<const ActiveCoflow*>(nullptr));

  const CoflowId departed = coflow.id;
  if (k + 1 != input.coflows.size()) {
    input.coflows[k] = std::move(input.coflows.back());
  }
  input.coflows.pop_back();
  on_event(nullptr, departed, nullptr);

  input.coflows.push_back(pristine);
  on_event(nullptr, static_cast<CoflowId>(-1), &input.coflows.back());
}

void run_event_replay(benchmark::State& state, bool incremental) {
  const auto coflows = static_cast<int>(state.range(0));
  // Modest widths: the FB trace is narrow-heavy, and the event loop is the
  // subject here, not flow fan-out.
  Workbench bench(coflows, /*max_flows_per_coflow=*/64);
  const std::vector<ActiveCoflow> pristine = bench.input.coflows;

  NcDrfScheduler scheduler(NcDrfOptions{
      .incremental = incremental, .verify_incremental = false});
  if (incremental) {
    scheduler.on_reset(bench.fabric);
    for (const ActiveCoflow& c : bench.input.coflows) {
      scheduler.on_coflow_arrival(c);
    }
  }

  const auto on_event = [&](const ActiveFlow* finish, CoflowId depart,
                            const ActiveCoflow* arrive) {
    if (incremental) {
      if (finish != nullptr) scheduler.on_flow_finish(*finish);
      if (depart >= 0) scheduler.on_coflow_departure(depart);
      if (arrive != nullptr) scheduler.on_coflow_arrival(*arrive);
    }
    Allocation alloc = scheduler.allocate(bench.input);
    benchmark::DoNotOptimize(alloc);
  };

  // Cycle the cursor over coflows wide enough to never drain one (every
  // pristine coflow has ≥ 1 flow; the triple restores it immediately).
  std::size_t cursor = 0;
  for (auto _ : state) {
    // The departed slot moves under swap-pop, so locate the pristine view
    // by id rather than by position.
    const CoflowId id = bench.input.coflows[cursor].id;
    replay_triple(bench.input, cursor,
                  pristine[static_cast<std::size_t>(id)], on_event);
    cursor = (cursor + 1) % bench.input.coflows.size();
  }
  state.SetItemsProcessed(state.iterations() * 3);  // events/sec
  state.counters["coflows"] = coflows;
}

// Per-baseline event replay, kernel vs legacy: the same scripted
// finish/depart/arrive stream with one allocate() per event, driven either
// through the registry scheduler (allocation-kernel layer, delta hooks
// when the policy wants events) or through the frozen pre-refactor
// implementation in alloc/legacy.h. Both run in the same process on the
// same instance, so the kernel/legacy events-per-second ratio is
// machine-independent — that ratio is what the CI speedup guard checks
// and what BENCH_sched.json records.
void run_policy_event_replay(benchmark::State& state,
                             const std::string& name, bool kernel) {
  const auto coflows = static_cast<int>(state.range(0));
  Workbench bench(coflows, /*max_flows_per_coflow=*/64);
  const std::vector<ActiveCoflow> pristine = bench.input.coflows;
  // Clairvoyant info is always attached; non-clairvoyant policies ignore
  // it, and both modes see the identical snapshot.
  bench.input.clairvoyant = bench.info.get();

  std::unique_ptr<Scheduler> sched;
  Scheduler* hooks = nullptr;
  if (kernel) {
    sched = make_scheduler(name);
    if (sched->wants_events()) {
      hooks = sched.get();
      hooks->on_reset(bench.fabric);
      for (const ActiveCoflow& c : bench.input.coflows) {
        hooks->on_coflow_arrival(c);
      }
    }
  }

  int live = 0;
  for (const ActiveCoflow& c : bench.input.coflows) {
    live += static_cast<int>(c.flows.size());
  }

  // Flow count of the coflow the current triple cycles; set per iteration.
  int cursor_flows = 0;
  const auto on_event = [&](const ActiveFlow* finish, CoflowId depart,
                            const ActiveCoflow* arrive) {
    if (finish != nullptr) {
      live -= 1;
      if (hooks != nullptr) hooks->on_flow_finish(*finish);
    }
    if (depart >= 0) {
      live -= cursor_flows - 1;
      if (hooks != nullptr) hooks->on_coflow_departure(depart);
    }
    if (arrive != nullptr) {
      live += cursor_flows;
      if (hooks != nullptr) hooks->on_coflow_arrival(*arrive);
    }
    bench.input.total_live_flows = live;
    Allocation alloc = kernel ? sched->allocate(bench.input)
                              : legacy_allocate(name, bench.input);
    benchmark::DoNotOptimize(alloc);
  };

  std::size_t cursor = 0;
  for (auto _ : state) {
    const CoflowId id = bench.input.coflows[cursor].id;
    const ActiveCoflow& base = pristine[static_cast<std::size_t>(id)];
    cursor_flows = static_cast<int>(base.flows.size());
    replay_triple(bench.input, cursor, base, on_event);
    cursor = (cursor + 1) % bench.input.coflows.size();
  }
  state.SetItemsProcessed(state.iterations() * 3);  // events/sec
  state.counters["coflows"] = coflows;
}

// Full engine loop: replay a synthetic trace whose coflows are all
// concurrently active through the DynamicSimulator and report simulated
// events/sec — the number the engine hot-path work (incremental snapshot,
// completion heap) moves. Unlike the EventReplay benchmarks above, this
// includes the engine's own per-event cost, not just allocate().
void run_engine_replay(benchmark::State& state, const std::string& name,
                       bool traced = false) {
  const auto coflows = static_cast<int>(state.range(0));
  SyntheticFbOptions options;
  options.num_coflows = coflows;
  options.duration_s = 1.0;  // everything concurrently active
  options.max_flows_per_coflow = 64;
  const Trace trace = generate_synthetic_fb(options);
  const Fabric fabric(150, gbps(1.0));

  SimOptions sim_options;
  sim_options.record_intervals = false;
  // Traced variant: full tracer + metrics attached, sized so the ring
  // never drops (overflow handling is not what this measures). CI's
  // overhead guard compares this against the untraced run.
  obs::Tracer tracer(1 << 20);
  obs::MetricsRegistry metrics;
  if (traced) {
    sim_options.tracer = &tracer;
    sim_options.metrics = &metrics;
  }
  long long events = 0;
  for (auto _ : state) {
    tracer.clear();
    const auto scheduler = make_scheduler(name);
    const RunResult run = simulate(fabric, trace, *scheduler, sim_options);
    events += run.num_events;
    benchmark::DoNotOptimize(run.makespan);
  }
  state.SetItemsProcessed(events);  // events/sec
  state.counters["coflows"] = coflows;
  if (traced) state.counters["trace_events"] = tracer.size();
}

}  // namespace

#define NCDRF_SCALE_BENCH(tag, name)                       \
  void BM_##tag(benchmark::State& state) {                 \
    run_allocate(state, name);                             \
  }                                                        \
  BENCHMARK(BM_##tag)->Arg(10)->Arg(50)->Arg(200)->Unit(   \
      benchmark::kMillisecond)

NCDRF_SCALE_BENCH(NcDrf, "ncdrf");
NCDRF_SCALE_BENCH(Drf, "drf");
NCDRF_SCALE_BENCH(Hug, "hug");
NCDRF_SCALE_BENCH(Psp, "psp");
NCDRF_SCALE_BENCH(Tcp, "tcp");
NCDRF_SCALE_BENCH(Aalo, "aalo");
NCDRF_SCALE_BENCH(Varys, "varys");

// Kernel-vs-legacy matrix: every policy with a frozen legacy twin, at
// 100/500/1000 concurrent coflows. tools/bench_sched_report.py turns the
// JSON into BENCH_sched.json and enforces the ≥2× kernel speedup floor.
#define NCDRF_EVENT_REPLAY_BENCH(tag, name)                            \
  void BM_EventReplayKernel_##tag(benchmark::State& state) {           \
    run_policy_event_replay(state, name, /*kernel=*/true);             \
  }                                                                    \
  void BM_EventReplayLegacy_##tag(benchmark::State& state) {           \
    run_policy_event_replay(state, name, /*kernel=*/false);            \
  }                                                                    \
  BENCHMARK(BM_EventReplayKernel_##tag)                                \
      ->Arg(100)                                                       \
      ->Arg(500)                                                       \
      ->Arg(1000)                                                      \
      ->Unit(benchmark::kMillisecond);                                 \
  BENCHMARK(BM_EventReplayLegacy_##tag)                                \
      ->Arg(100)                                                       \
      ->Arg(500)                                                       \
      ->Arg(1000)                                                      \
      ->Unit(benchmark::kMillisecond)

NCDRF_EVENT_REPLAY_BENCH(Tcp, "tcp");
NCDRF_EVENT_REPLAY_BENCH(Persource, "persource");
NCDRF_EVENT_REPLAY_BENCH(Perpair, "perpair");
NCDRF_EVENT_REPLAY_BENCH(Psp, "psp");
NCDRF_EVENT_REPLAY_BENCH(PspLive, "psp-live");
NCDRF_EVENT_REPLAY_BENCH(Drf, "drf");
NCDRF_EVENT_REPLAY_BENCH(Hug, "hug");
NCDRF_EVENT_REPLAY_BENCH(Aalo, "aalo");
NCDRF_EVENT_REPLAY_BENCH(Varys, "varys");
NCDRF_EVENT_REPLAY_BENCH(Baraat, "baraat");
NCDRF_EVENT_REPLAY_BENCH(Fifo, "fifo");

void BM_NcDrfEventReplay_Incremental(benchmark::State& state) {
  run_event_replay(state, /*incremental=*/true);
}
void BM_NcDrfEventReplay_FromScratch(benchmark::State& state) {
  run_event_replay(state, /*incremental=*/false);
}
BENCHMARK(BM_NcDrfEventReplay_Incremental)
    ->Arg(100)
    ->Arg(500)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NcDrfEventReplay_FromScratch)
    ->Arg(100)
    ->Arg(500)
    ->Unit(benchmark::kMillisecond);

void BM_EngineReplay_NcDrf(benchmark::State& state) {
  run_engine_replay(state, "ncdrf");
}
BENCHMARK(BM_EngineReplay_NcDrf)
    ->Arg(100)
    ->Arg(500)
    ->Unit(benchmark::kMillisecond);

// Same loop with the observability layer attached (tracer + metrics):
// the delta against BM_EngineReplay_NcDrf is the total tracing overhead;
// CI guards it at ≤ 5% of events/sec.
void BM_EngineReplayTraced_NcDrf(benchmark::State& state) {
  run_engine_replay(state, "ncdrf", /*traced=*/true);
}
BENCHMARK(BM_EngineReplayTraced_NcDrf)
    ->Arg(100)
    ->Arg(500)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
