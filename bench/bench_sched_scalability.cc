// Scheduler scalability microbenchmark (google-benchmark): wall-clock cost
// of one allocate() call as the number of active coflows grows, for every
// policy. The paper's master recomputes the allocation on every coflow
// event, so allocation latency bounds how fast a cluster can churn
// coflows; NC-DRF's allocation is O(flows + coflows·links), no LP solves.
#include <benchmark/benchmark.h>

#include <memory>

#include "common/rng.h"
#include "common/units.h"
#include "core/registry.h"
#include "sched/scheduler.h"
#include "trace/synthetic_fb.h"

namespace {

using namespace ncdrf;

// A reusable snapshot with `num_coflows` active coflows on 150 racks.
struct Workbench {
  Fabric fabric{150, gbps(1.0)};
  Trace trace;
  ScheduleInput input;
  std::vector<double> remaining;
  std::unique_ptr<ClairvoyantInfo> info;

  explicit Workbench(int num_coflows) {
    SyntheticFbOptions options;
    options.num_coflows = num_coflows;
    options.duration_s = 1.0;  // everything concurrently active
    options.max_flows_per_coflow = 200;
    trace = generate_synthetic_fb(options);

    input.fabric = &fabric;
    remaining.assign(static_cast<std::size_t>(trace.total_flows), 0.0);
    for (const Coflow& coflow : trace.coflows) {
      ActiveCoflow view;
      view.id = coflow.id();
      view.arrival_time = coflow.arrival_time();
      for (const Flow& f : coflow.flows()) {
        view.flows.push_back(ActiveFlow{f.id, f.coflow, f.src, f.dst});
        remaining[static_cast<std::size_t>(f.id)] = f.size_bits;
      }
      input.coflows.push_back(std::move(view));
    }
    info = std::make_unique<ClairvoyantInfo>(&remaining);
  }
};

void run_allocate(benchmark::State& state, const std::string& name) {
  const auto coflows = static_cast<int>(state.range(0));
  Workbench bench(coflows);
  const auto scheduler = make_scheduler(name);
  bench.input.clairvoyant = scheduler->clairvoyant() ? bench.info.get()
                                                     : nullptr;
  int flows = 0;
  for (const ActiveCoflow& c : bench.input.coflows) {
    flows += static_cast<int>(c.flows.size());
  }
  for (auto _ : state) {
    Allocation alloc = scheduler->allocate(bench.input);
    benchmark::DoNotOptimize(alloc);
  }
  state.counters["coflows"] = coflows;
  state.counters["flows"] = flows;
}

}  // namespace

#define NCDRF_SCALE_BENCH(tag, name)                       \
  void BM_##tag(benchmark::State& state) {                 \
    run_allocate(state, name);                             \
  }                                                        \
  BENCHMARK(BM_##tag)->Arg(10)->Arg(50)->Arg(200)->Unit(   \
      benchmark::kMillisecond)

NCDRF_SCALE_BENCH(NcDrf, "ncdrf");
NCDRF_SCALE_BENCH(Drf, "drf");
NCDRF_SCALE_BENCH(Hug, "hug");
NCDRF_SCALE_BENCH(Psp, "psp");
NCDRF_SCALE_BENCH(Tcp, "tcp");
NCDRF_SCALE_BENCH(Aalo, "aalo");
NCDRF_SCALE_BENCH(Varys, "varys");

BENCHMARK_MAIN();
