// Theorem 1: long-term isolation guarantee — offline, under the paper's
// assumptions (R_k < M_k uplinks/downlinks; identical flow sizes from all
// uplinks into each downlink), NC-DRF completes every coflow within
// e_max × its DRF completion time, where e_max is the largest intra-coflow
// demand disparity (Eq. 4).
//
// This bench sweeps randomized theorem-satisfying instances across
// increasing size spreads and reports the worst measured CCT ratio against
// the proven e_max bound; the measured ratio must stay below the bound and
// typically sits far below it (the paper's remark 2: "coflows usually
// complete faster").
#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "common/rng.h"
#include "core/ncdrf.h"
#include "sched/drf.h"

namespace {

ncdrf::Trace theorem1_instance(std::uint64_t seed, int machines, int coflows,
                               double size_spread) {
  using namespace ncdrf;
  Rng rng(seed);
  TraceBuilder builder(machines);
  for (int c = 0; c < coflows; ++c) {
    builder.begin_coflow(0.0);
    const int m_k = static_cast<int>(rng.uniform_int(2, machines));
    const int r_k = static_cast<int>(rng.uniform_int(1, m_k - 1));
    const std::vector<int> ups =
        rng.sample_without_replacement(machines, m_k);
    const std::vector<int> downs =
        rng.sample_without_replacement(machines, r_k);
    const double base = rng.uniform(megabits(20.0), megabits(200.0));
    for (const int down : downs) {
      const double size = base * rng.uniform(1.0, size_spread);
      for (const int up : ups) builder.add_flow(up, down, size);
    }
  }
  return builder.build();
}

}  // namespace

int main() {
  using namespace ncdrf;
  bench::print_header(
      "Theorem 1 — long-term isolation bound F_k <= e_max * F_k^D",
      "worst-case guarantee; average delay far below the bound");

  const Fabric fabric(8, gbps(1.0));
  AsciiTable table({"Size spread", "e_max (bound)", "Worst F/F^D",
                    "Mean F/F^D", "Instances", "Bound holds"});

  for (const double spread : {1.0, 1.5, 2.0, 3.0, 5.0, 8.0}) {
    double worst_ratio = 0.0;
    double sum_ratio = 0.0;
    int count = 0;
    double e_max_max = 1.0;
    bool holds = true;
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
      const Trace trace = theorem1_instance(seed, 8, 10, spread);
      double e_max = 1.0;
      for (const Coflow& coflow : trace.coflows) {
        e_max = std::max(e_max, coflow.demand(fabric).disparity());
      }
      e_max_max = std::max(e_max_max, e_max);

      NcDrfScheduler ncdrf;
      DrfScheduler drf;
      SimOptions options;
      options.record_intervals = false;
      const RunResult run_nc = simulate(fabric, trace, ncdrf, options);
      const RunResult run_drf = simulate(fabric, trace, drf, options);
      for (std::size_t k = 0; k < trace.coflows.size(); ++k) {
        const double ratio = run_nc.coflows[k].cct / run_drf.coflows[k].cct;
        worst_ratio = std::max(worst_ratio, ratio);
        sum_ratio += ratio;
        ++count;
        holds = holds && ratio <= e_max * (1.0 + 1e-6);
      }
    }
    table.add_row({AsciiTable::fmt(spread, 1), AsciiTable::fmt(e_max_max, 2),
                   AsciiTable::fmt(worst_ratio, 2),
                   AsciiTable::fmt(sum_ratio / count, 2),
                   std::to_string(count), holds ? "yes" : "NO"});
  }
  std::cout << table.render();
  std::cout << "\n(spread 1.0 is the identical-flow-size extreme where"
               " NC-DRF == DRF exactly)\n";
  return 0;
}
