// Sweep-runner perf smoke: replays a {policy × seed} grid through
// runner/sweep.h once serially and once on a parallel pool, verifies the
// aggregated results are bit-identical, and emits newline-delimited JSON —
// per-cell events/sec for both configurations plus one parallel-speedup
// record. The CI bench-smoke job archives the output as the sweep perf
// trajectory.
//
// Usage: bench_sweep [threads] [coflows_per_seed]
//   threads   parallel pool size (default: hardware concurrency, min 2)
//   coflows   workload size per seed (default 60; CI keeps this small)
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/units.h"
#include "metrics/export.h"
#include "runner/sweep.h"
#include "trace/synthetic_fb.h"

namespace {

using namespace ncdrf;

// Bitwise equality of two run results — the determinism contract the
// parallel runner must keep (same cells, same doubles, no tolerance).
bool identical(const RunResult& a, const RunResult& b) {
  if (a.coflows.size() != b.coflows.size() ||
      a.num_events != b.num_events ||
      a.num_allocations != b.num_allocations ||
      a.makespan != b.makespan ||
      a.total_bits_delivered != b.total_bits_delivered ||
      a.progress.size() != b.progress.size() ||
      a.intervals.size() != b.intervals.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.coflows.size(); ++i) {
    if (a.coflows[i].cct != b.coflows[i].cct ||
        a.coflows[i].completion != b.coflows[i].completion) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int threads = std::max(2u, std::thread::hardware_concurrency());
  if (argc >= 2) threads = std::max(1, std::stoi(argv[1]));
  int coflows = 60;
  if (argc >= 3) coflows = std::stoi(argv[2]);

  // The acceptance grid: 4 policies × 8 seeds, every cell independent.
  SweepSpec spec;
  spec.fabric = Fabric(40, gbps(1.0));
  spec.policies = {"ncdrf", "psp", "drf", "tcp"};
  for (unsigned long long seed = 1; seed <= 8; ++seed) {
    SyntheticFbOptions options;
    options.seed = seed;
    options.num_coflows = coflows;
    options.num_racks = 40;
    options.duration_s = 60.0;
    spec.traces.push_back(
        SweepCase{"seed" + std::to_string(seed),
                  generate_synthetic_fb(options)});
  }
  spec.sim.record_intervals = false;

  spec.threads = 1;
  const SweepResult serial = run_sweep(spec);
  spec.threads = threads;
  const SweepResult parallel = run_sweep(spec);

  bool bit_identical = serial.cells.size() == parallel.cells.size();
  for (std::size_t i = 0; bit_identical && i < serial.cells.size(); ++i) {
    bit_identical = serial.cells[i].policy == parallel.cells[i].policy &&
                    serial.cells[i].trace_label ==
                        parallel.cells[i].trace_label &&
                    identical(serial.cells[i].run, parallel.cells[i].run);
  }

  write_sweep_json(std::cout, serial, "sweep-serial");
  write_sweep_json(std::cout, parallel, "sweep-parallel");
  std::cout << "{\"label\":\"sweep-speedup\",\"threads\":" << threads
            << ",\"cells\":" << serial.cells.size()
            << ",\"serial_wall_seconds\":" << serial.wall_seconds
            << ",\"parallel_wall_seconds\":" << parallel.wall_seconds
            << ",\"speedup\":"
            << (parallel.wall_seconds > 0.0
                    ? serial.wall_seconds / parallel.wall_seconds
                    : 0.0)
            << ",\"bit_identical\":" << (bit_identical ? "true" : "false")
            << "}\n";
  return bit_identical ? 0 : 1;
}
