// Extension experiment: job-level completion times for pipelined
// multi-stage jobs (the paper's motivating workload) across policies.
//
// 24 jobs — a mix of ring pipelines and diamond DAGs with randomized
// groups, sizes and arrivals — share a 40-machine fabric. Because each
// stage's coflow is released only when its parents finish, queueing delay
// compounds across stages: a policy that delays one coflow delays the
// whole job chain. Expectation from the paper's argument: job-level
// results mirror the coflow-level ones (isolation-optimal policies bound
// every job's slowdown; TCP lets aggressive jobs crowd out others).
#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "common/rng.h"
#include "job/job.h"
#include "trace/patterns.h"

namespace {

std::vector<ncdrf::JobSpec> make_job_mix(std::uint64_t seed, int machines) {
  using namespace ncdrf;
  Rng rng(seed);
  std::vector<JobSpec> jobs;
  for (int j = 0; j < 24; ++j) {
    const double arrival = rng.uniform(0.0, 20.0);
    const int group_size = static_cast<int>(rng.uniform_int(3, 8));
    const int first = static_cast<int>(
        rng.uniform_int(0, machines - group_size));
    if (rng.bernoulli(0.5)) {
      jobs.push_back(make_linear_pipeline(
          "pipe" + std::to_string(j), arrival,
          static_cast<int>(rng.uniform_int(2, 5)),
          machine_range(first, group_size),
          rng.uniform(megabits(100.0), megabits(800.0)),
          rng.uniform(0.0, 0.5)));
    } else {
      const int reducers = static_cast<int>(rng.uniform_int(2, 4));
      const int rfirst = static_cast<int>(
          rng.uniform_int(0, machines - reducers));
      jobs.push_back(make_diamond_job(
          "diamond" + std::to_string(j), arrival,
          machine_range(first, group_size), machine_range(rfirst, reducers),
          static_cast<MachineId>(rng.uniform_int(0, machines - 1)),
          rng.uniform(megabits(100.0), megabits(600.0))));
    }
  }
  return jobs;
}

}  // namespace

int main() {
  using namespace ncdrf;
  bench::print_header(
      "Extension — pipelined multi-stage job completion times",
      "job-level results mirror coflow-level isolation (not in the paper)");

  const Fabric fabric(40, gbps(1.0));
  const std::vector<JobSpec> jobs = make_job_mix(20180702, 40);
  std::cout << "# workload: 24 randomized pipeline/diamond jobs on 40"
               " machines (seed 20180702)\n";

  AsciiTable table(
      {"Policy", "Mean job (s)", "P95 job (s)", "Max job (s)",
       "Mean stage CCT (s)"});
  for (const std::string name :
       {"tcp", "psp", "ncdrf", "ncdrf-live", "drf", "aalo"}) {
    const auto scheduler = make_scheduler(name);
    std::cerr << "  running " << scheduler->name() << "...\n";
    const JobSetResult result = run_jobs(fabric, jobs, *scheduler);

    std::vector<double> durations;
    for (const JobResult& job : result.jobs) {
      durations.push_back(job.duration);
    }
    double stage_cct = 0.0;
    for (const StageResult& s : result.stages) stage_cct += s.coflow_cct;
    stage_cct /= static_cast<double>(result.stages.size());

    const Summary s = summarize(durations);
    table.add_row({scheduler->name() + (name == "ncdrf-live" ? " (live)"
                                                             : ""),
                   AsciiTable::fmt(s.mean, 2), AsciiTable::fmt(s.p95, 2),
                   AsciiTable::fmt(s.max, 2),
                   AsciiTable::fmt(stage_cct, 2)});
  }
  std::cout << table.render();
  return 0;
}
