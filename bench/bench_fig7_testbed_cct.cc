// Fig. 7: CCTs of the three Table III coflows on the (emulated) 60-machine
// testbed under TCP, PS-P, HUG, DRF and NC-DRF.
//
// Paper: NC-DRF consistently outperforms TCP and PS-P for all three
// coflows, and even beats the clairvoyant HUG/DRF on coflow-B.
#include <iostream>

#include "bench_util.h"
#include "cluster/deployment.h"
#include "trace/microbench.h"

int main() {
  using namespace ncdrf;
  bench::print_header(
      "Fig. 7 — CCT of three coflows in the 60-machine testbed emulation",
      "NC-DRF < TCP, PS-P on all coflows; NC-DRF beats DRF/HUG on coflow-B");

  const Trace trace = build_testbed_trace({});
  const Fabric fabric(60, mbps(200.0));

  std::cout << "Table III workload: A all-to-all 360 flows @0s; "
               "B pairwise 60 flows @10s; C pairwise 60 flows @20s;\n"
               "flow sizes U[30,100] MB, 200 Mbps port links\n\n";

  AsciiTable table({"Policy", "CCT A (s)", "CCT B (s)", "CCT C (s)"});
  for (const std::string name : {"tcp", "psp-live", "hug", "drf", "ncdrf-live"}) {
    const auto scheduler = make_scheduler(name);
    DeploymentOptions options;
    options.record_progress = false;
    std::cerr << "  deploying " << scheduler->name() << "...\n";
    const DeploymentResult result =
        run_deployment(fabric, trace, *scheduler, options);
    table.add_row({scheduler->name(),
                   AsciiTable::fmt(result.coflows[0].cct, 1),
                   AsciiTable::fmt(result.coflows[1].cct, 1),
                   AsciiTable::fmt(result.coflows[2].cct, 1)});
  }
  std::cout << table.render();
  return 0;
}
