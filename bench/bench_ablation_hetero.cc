// Extension experiment: heterogeneous link capacities.
//
// The paper normalizes all links to equal capacity (Sec. II-A, "without
// loss of generality"); this library generalizes Eq. 2/Eq. 5 to per-link
// capacities (P* = min_i C_i / Σ_k c_k^i). This bench checks the claim
// behind "without loss of generality": the NC-DRF-vs-baselines ordering is
// preserved when a fraction of links is upgraded to 10 Gbps and another
// fraction degraded to 500 Mbps — a realistic mixed-generation cluster.
#include <iostream>

#include "bench_util.h"
#include "common/rng.h"

namespace {

ncdrf::Fabric mixed_fabric(std::uint64_t seed, int machines) {
  using namespace ncdrf;
  Rng rng(seed);
  std::vector<double> capacities;
  capacities.reserve(static_cast<std::size_t>(2 * machines));
  // Per machine: 20% upgraded (10 Gbps), 20% degraded (500 Mbps),
  // 60% stock (1 Gbps); up/downlink upgraded together, as in practice.
  std::vector<double> machine_capacity(static_cast<std::size_t>(machines));
  for (double& c : machine_capacity) {
    const double roll = rng.uniform();
    c = roll < 0.2 ? gbps(10.0) : (roll < 0.4 ? mbps(500.0) : gbps(1.0));
  }
  for (int m = 0; m < machines; ++m) {
    capacities.push_back(machine_capacity[static_cast<std::size_t>(m)]);
  }
  for (int m = 0; m < machines; ++m) {
    capacities.push_back(machine_capacity[static_cast<std::size_t>(m)]);
  }
  return Fabric(std::move(capacities));
}

}  // namespace

int main() {
  using namespace ncdrf;
  bench::print_header(
      "Extension — heterogeneous link capacities (mixed-generation racks)",
      "policy ordering is capacity-profile invariant (not in the paper)");

  SyntheticFbOptions trace_options;
  trace_options.num_coflows = 200;
  trace_options.num_racks = 100;
  trace_options.duration_s = 1200.0;
  const Trace trace = generate_synthetic_fb(trace_options);
  std::cout << "# workload: synthetic, " << trace.coflows.size()
            << " coflows over " << trace.num_machines
            << " racks; 20% 10G / 60% 1G / 20% 500M machines\n";

  const Fabric fabric = mixed_fabric(11, trace.num_machines);

  SimOptions sim_options;
  sim_options.record_intervals = false;
  const auto drf = make_scheduler("drf");
  std::cerr << "  running DRF baseline...\n";
  const RunResult base = simulate(fabric, trace, *drf, sim_options);

  AsciiTable table({"Policy", "Avg norm. CCT", "P95 norm. CCT",
                    "Avg slowdown"});
  for (const std::string name : {"tcp", "psp", "ncdrf", "drf"}) {
    const auto scheduler = make_scheduler(name);
    std::cerr << "  running " << scheduler->name() << "...\n";
    const RunResult run =
        name == "drf" ? base : simulate(fabric, trace, *scheduler,
                                        sim_options);
    const Summary norm = summarize(normalized_ccts(run, base));
    const Summary slow = summarize(slowdowns(run));
    table.add_row({scheduler->name(), AsciiTable::fmt(norm.mean, 2),
                   AsciiTable::fmt(norm.p95, 2),
                   AsciiTable::fmt(slow.mean, 2)});
  }
  std::cout << table.render();
  std::cout << "\n(NC-DRF must keep its position — close to DRF, clearly\n"
               " ahead of PS-P and TCP — on the mixed-capacity fabric;\n"
               " the generalized P̂* = min_i C_i / Σ_k ĉ_k^i makes that\n"
               " work without any uniformity assumption)\n";
  return 0;
}
