// Fig. 5a: distribution of coflow progress disparity over time (the ratio
// of the maximum to the minimum coflow progress at each instant).
//
// Paper: NC-DRF's disparity is below 50 at 95% of time instants while
// PS-P's P95 exceeds 184; maximums are <55 vs >200 — NC-DRF outperforms
// PS-P by 3.7× on the maximum. DRF pins disparity at exactly 1. TCP and
// Aalo are excluded "due to their poor performance" (Aalo fully starves
// low-priority coflows, making the ratio unbounded).
#include <iostream>

#include "bench_util.h"

int main() {
  using namespace ncdrf;
  bench::print_header(
      "Fig. 5a — coflow progress disparity (time-weighted distribution)",
      "NC-DRF P95 < 50 vs PS-P P95 > 184; max <55 vs >200 (3.7x); DRF = 1");

  const Trace trace = bench::evaluation_trace();
  const Fabric fabric = bench::evaluation_fabric(trace);

  const auto runs = bench::run_policies({"ncdrf", "psp", "drf"}, fabric,
                                        trace, /*with_intervals=*/true);

  AsciiTable table({"Policy", "P50", "P90", "P95", "P99", "Max"});
  double max_ncdrf = 0.0;
  double max_psp = 0.0;
  for (const std::string name : {"ncdrf", "psp", "drf"}) {
    const RunResult& run = runs.at(name);
    const WeightedCdf cdf = disparity_cdf(run);
    table.add_row({make_scheduler(name)->name(),
                   AsciiTable::fmt(cdf.quantile(0.50), 1),
                   AsciiTable::fmt(cdf.quantile(0.90), 1),
                   AsciiTable::fmt(cdf.quantile(0.95), 1),
                   AsciiTable::fmt(cdf.quantile(0.99), 1),
                   AsciiTable::fmt(cdf.max(), 1)});
    if (name == "ncdrf") max_ncdrf = cdf.max();
    if (name == "psp") max_psp = cdf.max();
  }
  std::cout << table.render();
  std::cout << "\nPS-P / NC-DRF maximum disparity ratio: "
            << AsciiTable::fmt(max_psp / max_ncdrf, 2)
            << "x   (paper: 3.7x)\n";
  return 0;
}
