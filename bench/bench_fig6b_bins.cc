// Fig. 6b: average normalized CCT (vs DRF) of NC-DRF and PS-P in the four
// Table I coflow bins.
//
// Paper: NC-DRF consistently beats PS-P in every bin, by 1.7× on the
// overall average normalized CCT.
#include <iostream>

#include "bench_util.h"

int main() {
  using namespace ncdrf;
  bench::print_header(
      "Fig. 6b — average normalized CCT per coflow bin",
      "NC-DRF < PS-P in all four bins; 1.7x better on average");

  const Trace trace = bench::evaluation_trace();
  const Fabric fabric = bench::evaluation_fabric(trace);

  const auto runs = bench::run_policies({"drf", "ncdrf", "psp"}, fabric,
                                        trace, /*with_intervals=*/false);
  const RunResult& base = runs.at("drf");
  const RunResult& run_nc = runs.at("ncdrf");
  const RunResult& run_psp = runs.at("psp");

  const std::vector<double> norm_nc = normalized_ccts(run_nc, base);
  const std::vector<double> norm_psp = normalized_ccts(run_psp, base);

  const CoflowBin bins[] = {CoflowBin::kShortNarrow, CoflowBin::kLongNarrow,
                            CoflowBin::kShortWide, CoflowBin::kLongWide};
  AsciiTable table({"Bin", "NC-DRF", "PS-P", "PS-P / NC-DRF"});
  for (const CoflowBin bin : bins) {
    const double nc = mean_over_bin(base, norm_nc, bin);
    const double psp = mean_over_bin(base, norm_psp, bin);
    table.add_row({bin_name(bin), AsciiTable::fmt(nc, 2),
                   AsciiTable::fmt(psp, 2),
                   AsciiTable::fmt(psp / nc, 2) + "x"});
  }
  const double mean_nc = summarize(norm_nc).mean;
  const double mean_psp = summarize(norm_psp).mean;
  table.add_row({"ALL", AsciiTable::fmt(mean_nc, 2),
                 AsciiTable::fmt(mean_psp, 2),
                 AsciiTable::fmt(mean_psp / mean_nc, 2) + "x"});
  std::cout << table.render();
  std::cout << "\n(paper: overall PS-P / NC-DRF = 1.7x; NC-DRF vs DRF"
               " = 1.68)\n";
  return 0;
}
