// Extension experiment: strategy-proofness under the flow-splitting attack.
//
// Sec. III-B: "under TCP, a tenant could take an arbitrarily high share of
// network bandwidth by initiating more flows". This bench quantifies the
// attack across every non-clairvoyant policy in the design space: a
// selfish long-running contender splits each of its flows into k parallel
// sub-flows (same bytes) and we measure the honest victim coflow's CCT.
//
// Expected: per-flow fairness (TCP) and per-pair fairness reward splitting
// (~linearly). Per-source fairness also fails here — the victim shares a
// source machine with the attacker, so the attacker's sub-flows dilute the
// victim *within* the source's aggregate (source-level fairness is not
// tenant isolation). Coflow-aware policies (PS-P, NC-DRF, DRF) are
// unmoved — NC-DRF because a uniform k-way split scales n_k^i and n̄_k
// together, leaving ĉ_k intact.
#include <iostream>

#include "bench_util.h"

namespace {

ncdrf::Trace make_trace(int split) {
  using namespace ncdrf;
  TraceBuilder builder(4);
  builder.begin_coflow(0.0);  // honest victim: short 2-flow shuffle
  builder.add_flow(0, 3, megabytes(50.0));
  builder.add_flow(1, 3, megabytes(50.0));
  builder.begin_coflow(0.0);  // selfish contender, 20x the volume
  for (int s = 0; s < split; ++s) {
    builder.add_flow(0, 3, megabytes(1000.0 / split));
    builder.add_flow(2, 3, megabytes(1000.0 / split));
  }
  return builder.build();
}

}  // namespace

int main() {
  using namespace ncdrf;
  bench::print_header(
      "Extension — flow-splitting attack (strategy-proofness)",
      "TCP rewards splitting; NC-DRF's flow-count correlation is invariant");

  const Fabric fabric(4, gbps(1.0));
  std::cout << "victim: 100 MB, 2 flows into machine 3; contender: 2 GB\n"
               "into the same machine, split k ways per flow\n\n";

  AsciiTable table({"Policy", "k=1", "k=2", "k=4", "k=8", "k=16", "k=32",
                    "gain k=32/k=1"});
  for (const std::string name :
       {"tcp", "perpair", "persource", "psp", "ncdrf", "drf"}) {
    std::vector<std::string> row{make_scheduler(name)->name()};
    double first = 0.0;
    double last = 0.0;
    for (const int split : {1, 2, 4, 8, 16, 32}) {
      const Trace trace = make_trace(split);
      const auto scheduler = make_scheduler(name);
      const RunResult run = simulate(fabric, trace, *scheduler);
      const double victim_cct = run.coflows[0].cct;
      if (split == 1) first = victim_cct;
      last = victim_cct;
      row.push_back(AsciiTable::fmt(victim_cct, 2));
    }
    row.push_back(AsciiTable::fmt(last / first, 2) + "x");
    table.add_row(std::move(row));
  }
  std::cout << table.render();
  std::cout << "\n(cells are the honest victim's CCT in seconds; a growing\n"
               " row means the contender profits from splitting)\n";
  return 0;
}
