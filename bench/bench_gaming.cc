// Extension experiment: strategy-proofness of the fair-sharing design
// space, measured on the scenario spine as a {policy × tenant-strategy ×
// honest-fraction} grid.
//
// Sec. III-B observes that flow-level fair sharing is gameable ("under
// TCP, a tenant could take an arbitrarily high share of network bandwidth
// by initiating more flows") and motivates NC-DRF's split-invariant
// correlation estimator. Each cell here replays the same seeded workload
// twice through run_on_sim: once all-honest (the baseline, shared across
// strategies) and once with the attacker clients running a TenantStrategy
// transformer (scenario/strategy.h). Reported per cell:
//
//   * attacker_gain    — mean over attackers of (honest-case mean CCT /
//     strategic-case mean CCT) of the attacker's *honest* submissions
//     (a derived coflow set completes when its last member does), so > 1
//     means the manipulation paid off;
//   * victim_slowdown  — same ratio inverted for the honest clients
//     (> 1 means the attack hurt bystanders);
//   * utilization, Jain short-term (per-coflow) and long-term
//     (per-tenant) fairness, and log-welfare of the strategic run.
//
// Strategy-proof policies hold attacker_gain ~ 1. The karma policy is the
// credit-based baseline the CI floor gates (tools/bench_gaming_report.py):
// its flow-splitter gain must stay <= 1.05x, with NC-DRF's recorded
// alongside for comparison.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/table.h"
#include "scenario/eval.h"
#include "scenario/spec.h"

namespace {

using namespace ncdrf;

struct BenchConfig {
  std::vector<std::string> policies = {"tcp",   "perpair", "persource",
                                       "psp",   "ncdrf",   "drf",
                                       "karma"};
  std::vector<std::string> strategies = {"flow-splitter", "demand-inflator",
                                         "dust-padder", "on-off-hoarder"};
  std::vector<double> fractions = {0.75};  // honest fraction of clients
  int clients = 4;
  int machines = 8;
  double rate = 60.0;  // aggregate coflows/s
  double duration_s = 2.0;
  std::uint64_t seed = 7;
  std::string json_path;
};

struct Row {
  std::string policy;
  std::string strategy;
  double honest_fraction = 0.0;
  int clients = 0;
  int machines = 0;
  int attackers = 0;
  int coflows = 0;  // strategic run (transformed stream)
  double utilization = 0.0;
  double jain_coflow = 0.0;
  double jain_tenant = 0.0;
  double log_welfare = 0.0;
  double attacker_gain = 0.0;
  double victim_slowdown = 0.0;
  double makespan_s = 0.0;
};

std::vector<std::string> split_list(const std::string& value) {
  std::vector<std::string> out;
  std::stringstream ss(value);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::vector<double> split_doubles(const std::string& value) {
  std::vector<double> out;
  for (const std::string& item : split_list(value)) {
    out.push_back(std::stod(item));
  }
  return out;
}

scenario::ScenarioSpec base_spec(const BenchConfig& config,
                                 const std::string& policy) {
  scenario::ScenarioSpec spec;
  spec.name = "gaming";
  spec.policy = policy;
  spec.link_gbps = 1.0;
  spec.workload.seed = config.seed;
  spec.workload.num_clients = config.clients;
  spec.workload.num_machines = config.machines;
  spec.workload.arrival_rate_per_s = config.rate;
  spec.workload.duration_s = config.duration_s;
  spec.workload.min_flows_per_coflow = 1;
  spec.workload.max_flows_per_coflow = 4;
  spec.workload.mean_flow_bits = 2e7;
  spec.workload.mean_lifetime_s = 0.0;  // completion-driven retirement
  return spec;
}

// Mean CCT of client `c`'s honest submissions in `run` (derived coflow
// sets for strategic clients, identity for honest ones).
double client_mean_cct(const scenario::ScenarioRun& run, int c) {
  const auto client = static_cast<std::size_t>(c);
  return scenario::mean_derived_cct(run.result, run.workload.honest[client],
                                    run.workload.transformed.derived[client]);
}

Row run_cell(const BenchConfig& config, const std::string& policy,
             const std::string& strategy, double fraction,
             const scenario::ScenarioRun& honest_run) {
  const int honest = static_cast<int>(
      std::lround(fraction * static_cast<double>(config.clients)));
  const int attackers = config.clients - honest;
  NCDRF_CHECK(attackers >= 1 && attackers < config.clients,
              "honest fraction must leave at least one attacker and one "
              "honest client");

  scenario::ScenarioSpec spec = base_spec(config, policy);
  for (int a = 0; a < attackers; ++a) {
    scenario::StrategySpec s;
    s.kind = strategy;
    s.seed = config.seed + static_cast<std::uint64_t>(a);
    spec.strategies[a] = s;
  }
  const scenario::ScenarioRun run = scenario::run_on_sim(spec);

  Row row;
  row.policy = policy;
  row.strategy = strategy;
  row.honest_fraction = fraction;
  row.clients = config.clients;
  row.machines = config.machines;
  row.attackers = attackers;
  row.coflows = static_cast<int>(run.result.coflows.size());
  const Fabric fabric = make_fabric(spec);
  row.utilization = scenario::utilization(fabric, run.result);
  row.jain_coflow = scenario::coflow_fairness(run.result);
  const std::vector<scenario::TenantOutcome> tenants =
      scenario::per_tenant(run.result, run.workload.tenant_of);
  row.jain_tenant = scenario::tenant_fairness(tenants);
  row.log_welfare = scenario::log_welfare(tenants);
  row.makespan_s = run.result.makespan;

  double gain = 0.0;
  for (int a = 0; a < attackers; ++a) {
    const double strategic = client_mean_cct(run, a);
    NCDRF_CHECK(strategic > 0.0, "degenerate attacker CCT");
    gain += client_mean_cct(honest_run, a) / strategic;
  }
  row.attacker_gain = gain / static_cast<double>(attackers);
  double slowdown = 0.0;
  for (int c = attackers; c < config.clients; ++c) {
    const double baseline = client_mean_cct(honest_run, c);
    NCDRF_CHECK(baseline > 0.0, "degenerate victim CCT");
    slowdown += client_mean_cct(run, c) / baseline;
  }
  row.victim_slowdown = slowdown / static_cast<double>(honest);
  return row;
}

void write_json(const std::vector<Row>& rows, std::ostream& out) {
  out << "{\n  \"benchmark\": \"bench_gaming\",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    char buffer[768];
    std::snprintf(
        buffer, sizeof(buffer),
        "    {\"policy\": \"%s\", \"strategy\": \"%s\", "
        "\"honest_fraction\": %g, \"clients\": %d, \"machines\": %d, "
        "\"attackers\": %d, \"coflows\": %d, "
        "\"utilization\": %.6f, \"jain_coflow\": %.6f, "
        "\"jain_tenant\": %.6f, \"log_welfare\": %.6f, "
        "\"attacker_gain\": %.6f, \"victim_slowdown\": %.6f, "
        "\"makespan_s\": %.6f}%s\n",
        r.policy.c_str(), r.strategy.c_str(), r.honest_fraction, r.clients,
        r.machines, r.attackers, r.coflows, r.utilization, r.jain_coflow,
        r.jain_tenant, r.log_welfare, r.attacker_gain, r.victim_slowdown,
        r.makespan_s, i + 1 < rows.size() ? "," : "");
    out << buffer;
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) -> std::string {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--policies=", 0) == 0) {
      config.policies = split_list(value("--policies="));
    } else if (arg.rfind("--strategies=", 0) == 0) {
      config.strategies = split_list(value("--strategies="));
    } else if (arg.rfind("--fractions=", 0) == 0) {
      config.fractions = split_doubles(value("--fractions="));
    } else if (arg.rfind("--clients=", 0) == 0) {
      config.clients = std::stoi(value("--clients="));
    } else if (arg.rfind("--machines=", 0) == 0) {
      config.machines = std::stoi(value("--machines="));
    } else if (arg.rfind("--rate=", 0) == 0) {
      config.rate = std::stod(value("--rate="));
    } else if (arg.rfind("--duration=", 0) == 0) {
      config.duration_s = std::stod(value("--duration="));
    } else if (arg.rfind("--seed=", 0) == 0) {
      config.seed = std::stoull(value("--seed="));
    } else if (arg.rfind("--json=", 0) == 0) {
      config.json_path = value("--json=");
    } else {
      std::cerr << "unknown argument: " << arg << "\n"
                << "usage: bench_gaming [--policies=a,b] "
                   "[--strategies=s1,s2] [--fractions=F1,F2] "
                   "[--clients=4] [--machines=12] [--rate=30] "
                   "[--duration=2.0] [--seed=N] [--json=out.json]\n";
      return 2;
    }
  }
  NCDRF_CHECK(!config.policies.empty() && !config.strategies.empty() &&
                  !config.fractions.empty(),
              "empty benchmark matrix");
  NCDRF_CHECK(config.clients >= 2, "gaming needs at least two clients");

  std::cout << "Extension — tenant gaming grid on the scenario spine\n"
            << "workload: seed " << config.seed << ", " << config.clients
            << " clients, " << config.machines << " machines, "
            << config.rate << " coflows/s for " << config.duration_s
            << " s\n\n";

  std::vector<Row> rows;
  AsciiTable table({"Policy", "Strategy", "honest", "gain", "victim",
                    "Jain(tenant)"});
  for (const std::string& policy : config.policies) {
    // The all-honest baseline is strategy-independent: one run per policy.
    const scenario::ScenarioRun honest_run =
        scenario::run_on_sim(base_spec(config, policy));
    for (const std::string& strategy : config.strategies) {
      for (const double fraction : config.fractions) {
        Row row = run_cell(config, policy, strategy, fraction, honest_run);
        std::fprintf(stderr,
                     "%-10s %-16s honest=%.2f gain=%.3f victim=%.3f\n",
                     policy.c_str(), strategy.c_str(), fraction,
                     row.attacker_gain, row.victim_slowdown);
        table.add_row({row.policy, row.strategy,
                       AsciiTable::fmt(row.honest_fraction, 2),
                       AsciiTable::fmt(row.attacker_gain, 3) + "x",
                       AsciiTable::fmt(row.victim_slowdown, 3) + "x",
                       AsciiTable::fmt(row.jain_tenant, 3)});
        rows.push_back(std::move(row));
      }
    }
  }
  std::cout << table.render();
  std::cout << "\n(gain > 1: the attack paid off; victim > 1: honest\n"
               " tenants were hurt; karma's flow-splitter gain is the CI\n"
               " floor gate)\n";

  if (!config.json_path.empty()) {
    std::ofstream out(config.json_path);
    NCDRF_CHECK(out.good(), "cannot open json output: " + config.json_path);
    write_json(rows, out);
  }
  return 0;
}
