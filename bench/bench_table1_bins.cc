// Table I: coflows binned by length (Short/Long at 5 MB on the largest
// flow) and width (Narrow/Wide at 50 flows) in the Coflow-Benchmark
// workload. Paper: SN 60%, LN 16%, SW 12%, LW 12%.
#include <iostream>
#include <map>

#include "bench_util.h"
#include "coflow/coflow.h"

int main() {
  using namespace ncdrf;
  bench::print_header(
      "Table I — coflows binned by length and width",
      "SN 60%  LN 16%  SW 12%  LW 12% (526 coflows, 150 racks)");

  const Trace trace = bench::evaluation_trace();

  std::map<CoflowBin, int> counts;
  for (const Coflow& coflow : trace.coflows) {
    counts[classify_bin(coflow)] += 1;
  }
  const double n = static_cast<double>(trace.coflows.size());

  AsciiTable table({"Bin", "SN", "LN", "SW", "LW"});
  table.add_row(
      {"% of Coflows",
       AsciiTable::fmt(100.0 * counts[CoflowBin::kShortNarrow] / n, 0) + "%",
       AsciiTable::fmt(100.0 * counts[CoflowBin::kLongNarrow] / n, 0) + "%",
       AsciiTable::fmt(100.0 * counts[CoflowBin::kShortWide] / n, 0) + "%",
       AsciiTable::fmt(100.0 * counts[CoflowBin::kLongWide] / n, 0) + "%"});
  table.add_row({"# of Coflows",
                 std::to_string(counts[CoflowBin::kShortNarrow]),
                 std::to_string(counts[CoflowBin::kLongNarrow]),
                 std::to_string(counts[CoflowBin::kShortWide]),
                 std::to_string(counts[CoflowBin::kLongWide])});
  std::cout << table.render();
  std::cout << "\ntotal: " << trace.coflows.size() << " coflows, "
            << trace.total_flows << " flows, "
            << to_megabytes(trace.total_bits()) / 1024.0 << " GB\n";
  return 0;
}
