// Extension experiment: NC-DRF under automatic coflow identification.
//
// The paper assumes flow counts are obtainable through the Aalo API or
// CODA-style identification (Sec. III). Identification is imperfect, so
// two questions matter:
//   1. How accurate is clustering-based identification on this workload?
//      (pairwise precision/recall vs start-time jitter)
//   2. How gracefully does NC-DRF's isolation degrade when a fraction of
//      flows is attributed to the wrong coflow? (CODA's error-tolerant
//      scheduling question, answered here with the stray-flow model)
#include <iostream>

#include "bench_util.h"
#include "common/rng.h"
#include "core/ncdrf.h"
#include "identify/identifier.h"
#include "identify/perturbed.h"
#include "sched/drf.h"

int main() {
  using namespace ncdrf;
  bench::print_header(
      "Extension — coflow identification accuracy and error tolerance",
      "flow counts via CODA-style clustering (not a table in the paper)");

  // Part 1: identification quality on a mid-size workload with wave
  // jitter on flow starts.
  SyntheticFbOptions trace_options;
  trace_options.num_coflows = 200;
  trace_options.num_racks = 100;
  trace_options.duration_s = 1200.0;
  const Trace trace = generate_synthetic_fb(trace_options);
  std::cout << "# workload: synthetic, " << trace.coflows.size()
            << " coflows over " << trace.num_machines << " racks\n\n";

  AsciiTable ident({"Start jitter (s)", "Precision", "Recall", "Clusters",
                    "True coflows"});
  for (const double jitter : {0.01, 0.1, 0.5, 2.0}) {
    Rng rng(42);
    std::vector<FlowObservation> obs;
    for (const Coflow& coflow : trace.coflows) {
      for (const Flow& f : coflow.flows()) {
        obs.push_back(FlowObservation{
            f.id, f.src, f.dst,
            coflow.arrival_time() + rng.uniform(0.0, jitter), coflow.id()});
      }
    }
    const CoflowIdentifier identifier;
    const auto quality =
        evaluate_identification(obs, identifier.identify(obs));
    ident.add_row({AsciiTable::fmt(jitter, 2),
                   AsciiTable::fmt(quality.precision, 3),
                   AsciiTable::fmt(quality.recall, 3),
                   std::to_string(quality.num_clusters),
                   std::to_string(trace.coflows.size())});
  }
  std::cout << ident.render() << '\n';

  // Part 2: NC-DRF's normalized CCT (vs clairvoyant DRF with perfect
  // grouping) as the stray-flow rate grows.
  const Fabric fabric = bench::evaluation_fabric(trace);
  DrfScheduler drf;
  SimOptions sim_options;
  sim_options.record_intervals = false;
  std::cerr << "  running DRF baseline...\n";
  const RunResult base = simulate(fabric, trace, drf, sim_options);

  AsciiTable tolerance({"Stray-flow rate", "Avg norm. CCT", "P95 norm. CCT"});
  for (const double error : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    PerturbedGroupingScheduler sched(
        std::make_unique<NcDrfScheduler>(),
        PerturbOptions{.error_rate = error, .seed = 7});
    std::cerr << "  running NC-DRF with " << error * 100
              << "% stray flows...\n";
    const RunResult run = simulate(fabric, trace, sched, sim_options);
    const Summary s = summarize(normalized_ccts(run, base));
    tolerance.add_row({AsciiTable::fmt(error * 100, 0) + "%",
                       AsciiTable::fmt(s.mean, 2),
                       AsciiTable::fmt(s.p95, 2)});
  }
  std::cout << tolerance.render();
  std::cout << "\n(graceful degradation = error-tolerant scheduling; the\n"
               " 0% row is plain NC-DRF for reference)\n";
  return 0;
}
