// Ablation: what NC-DRF counts as n_k^i in the online procedure.
//
// Algorithm 1 reallocates on coflow arrival/departure using the coflow's
// flow counts; read literally, flows keep counting until their coflow
// departs ("stale" counts — our default). A strictly-online variant drops
// finished flows from the counts at every completion ("live" counts),
// which hands their reserved share back immediately and tracks clairvoyant
// DRF far more closely. This bench quantifies the gap — it is the single
// biggest implementation decision behind the paper's "+68% vs DRF"
// headline. PS-P gets the same toggle for symmetry.
#include <iostream>

#include "bench_util.h"
#include "core/ncdrf.h"
#include "sched/drf.h"
#include "sched/psp.h"

int main() {
  using namespace ncdrf;
  bench::print_header(
      "Ablation — stale vs live flow counts in the online procedure",
      "live counts recover most of the gap to clairvoyant DRF");

  SyntheticFbOptions trace_options;
  trace_options.num_coflows = 250;
  trace_options.num_racks = 100;
  trace_options.duration_s = 1500.0;
  const Trace trace = generate_synthetic_fb(trace_options);
  const Fabric fabric = bench::evaluation_fabric(trace);
  std::cout << "# workload: synthetic, " << trace.coflows.size()
            << " coflows over " << trace.num_machines << " racks\n";

  DrfScheduler drf;
  SimOptions sim_options;
  sim_options.record_intervals = false;
  std::cerr << "  running DRF baseline...\n";
  const RunResult base = simulate(fabric, trace, drf, sim_options);

  AsciiTable table({"Policy", "Counting", "Avg norm. CCT", "P95 norm. CCT"});
  for (const bool stale : {true, false}) {
    {
      NcDrfScheduler scheduler(NcDrfOptions{.count_finished_flows = stale});
      std::cerr << "  running NC-DRF (" << (stale ? "stale" : "live")
                << ")...\n";
      const RunResult run = simulate(fabric, trace, scheduler, sim_options);
      const Summary s = summarize(normalized_ccts(run, base));
      table.add_row({"NC-DRF", stale ? "stale (Algorithm 1)" : "live",
                     AsciiTable::fmt(s.mean, 2), AsciiTable::fmt(s.p95, 2)});
    }
    {
      PspScheduler scheduler(PspOptions{.count_finished_flows = stale});
      std::cerr << "  running PS-P (" << (stale ? "stale" : "live")
                << ")...\n";
      const RunResult run = simulate(fabric, trace, scheduler, sim_options);
      const Summary s = summarize(normalized_ccts(run, base));
      table.add_row({"PS-P", stale ? "stale" : "live",
                     AsciiTable::fmt(s.mean, 2), AsciiTable::fmt(s.p95, 2)});
    }
  }
  std::cout << table.render();
  return 0;
}
