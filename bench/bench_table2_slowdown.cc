// Table II: statistical summary of shuffle slowdown — each coflow's CCT
// divided by its minimum CCT (its bottleneck's completion time running
// alone in the fabric).
//
// Paper (min / mean / 95th / std):
//   TCP    1.00 / 117.94 / 757   / 246
//   PS-P   1.00 /   9.47 / 20.80 / 6.75
//   NC-DRF 1.00 /   5.75 / 11.14 / 3.64
//   DRF    1.00 /   3.36 /  5.89 / 1.52
//   Aalo   1.00 /   5.40 /  6.24 / 57.67
// NC-DRF beats PS-P by 1.65x on the mean and 1.87x at the 95th pct.
#include <iostream>

#include "bench_util.h"

int main() {
  using namespace ncdrf;
  bench::print_header(
      "Table II — statistical summary of shuffle slowdown",
      "TCP >> PS-P > NC-DRF > DRF; Aalo mean low but high variance");

  const Trace trace = bench::evaluation_trace();
  const Fabric fabric = bench::evaluation_fabric(trace);

  AsciiTable table({"Policy", "Min", "Mean", "95th", "Std."});
  double mean_psp = 0.0;
  double mean_nc = 0.0;
  double p95_psp = 0.0;
  double p95_nc = 0.0;
  const auto runs =
      bench::run_policies({"tcp", "psp", "ncdrf", "drf", "aalo"}, fabric,
                          trace, /*with_intervals=*/false);
  for (const std::string name : {"tcp", "psp", "ncdrf", "drf", "aalo"}) {
    const RunResult& run = runs.at(name);
    const Summary s = summarize(slowdowns(run));
    table.add_row({make_scheduler(name)->name(), AsciiTable::fmt(s.min, 2),
                   AsciiTable::fmt(s.mean, 2), AsciiTable::fmt(s.p95, 2),
                   AsciiTable::fmt(s.stddev, 2)});
    if (name == "psp") {
      mean_psp = s.mean;
      p95_psp = s.p95;
    }
    if (name == "ncdrf") {
      mean_nc = s.mean;
      p95_nc = s.p95;
    }
  }
  std::cout << table.render();
  std::cout << "\nNC-DRF vs PS-P: " << AsciiTable::fmt(mean_psp / mean_nc, 2)
            << "x on the mean (paper: 1.65x), "
            << AsciiTable::fmt(p95_psp / p95_nc, 2)
            << "x at the 95th percentile (paper: 1.87x)\n";
  return 0;
}
