// Ablation: the work-conservation (backfilling) stage of Algorithm 1.
//
// DESIGN.md calls out backfilling as a design choice: one even round is
// what the paper specifies. This bench compares NC-DRF with 0, 1, 2 and 4
// backfill rounds on average CCT and busy-time utilization, quantifying
// how much of NC-DRF's performance comes from the DRF-style stage versus
// the work-conserving stage.
#include <iostream>

#include "bench_util.h"
#include "core/ncdrf.h"

int main() {
  using namespace ncdrf;
  bench::print_header(
      "Ablation — NC-DRF backfilling rounds (Sec. IV-B work conservation)",
      "one round recovers most of the unused bandwidth");

  SyntheticFbOptions trace_options;
  trace_options.num_coflows = 250;
  trace_options.num_racks = 100;
  trace_options.duration_s = 1500.0;
  const Trace trace = generate_synthetic_fb(trace_options);
  const Fabric fabric = bench::evaluation_fabric(trace);
  std::cout << "# workload: synthetic, " << trace.coflows.size()
            << " coflows over " << trace.num_machines << " racks\n";

  AsciiTable table({"Backfill rounds", "Avg CCT (s)", "Avg slowdown",
                    "Busy util (Gbps)"});
  for (const int rounds : {0, 1, 2, 4}) {
    NcDrfOptions options;
    options.work_conserving = rounds > 0;
    options.backfill_rounds = rounds;
    NcDrfScheduler scheduler(options);
    std::cerr << "  running with " << rounds << " backfill rounds...\n";
    const RunResult run = simulate(fabric, trace, scheduler);

    double avg_cct = 0.0;
    for (const CoflowRecord& rec : run.coflows) avg_cct += rec.cct;
    avg_cct /= static_cast<double>(run.coflows.size());
    table.add_row({std::to_string(rounds), AsciiTable::fmt(avg_cct, 2),
                   AsciiTable::fmt(summarize(slowdowns(run)).mean, 2),
                   AsciiTable::fmt(to_gbps(average_link_usage(run)), 1)});
  }
  std::cout << table.render();
  return 0;
}
