// Shard-scaling benchmark: events/s of the kernel-backed policies under
// the scripted finish/depart/arrive event replay (one allocate() per
// event, as in bench_sched_scalability) across a {policy × shard-count ×
// coflow-count} matrix on a Facebook-trace-shaped fabric (150 racks,
// narrow-heavy coflows, rack-local skew applied on top so most flows stay
// inside their rack group).
//
// Two timings per cell:
//
//   * wall        — steady-clock over the replay loop. On a many-core
//     host this is the end-to-end speedup; on a loaded or single-core CI
//     runner it says nothing about the shard layer.
//   * modeled     — main-thread CPU time (CLOCK_THREAD_CPUTIME_ID, which
//     stops accruing while the thread is blocked in ThreadPool::run)
//     plus SchedPerf::shard_critical_seconds, the per-region maximum of
//     the shard tasks' thread-CPU. This is the wall-clock the cell would
//     take on an unloaded host with >= shards cores, and it is
//     machine-independent — tools/bench_scale_report.py gates the
//     4-shard-vs-1-shard speedup floor on it.
//
// For shards=1 the schedulers run their serial paths (no pool, no
// regions), so modeled == main-thread CPU there and the two arms of the
// speedup ratio measure the same code the production serial path runs.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "alloc/shard.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/units.h"
#include "core/registry.h"
#include "obs/perf.h"
#include "sched/scheduler.h"
#include "trace/synthetic_fb.h"

namespace {

using namespace ncdrf;

struct BenchConfig {
  std::vector<std::string> policies = {"drf", "fifo", "tcp", "aalo"};
  std::vector<int> shards = {1, 2, 4, 8};
  std::vector<int> coflows = {10000};
  int racks = 150;
  int triples = 10;  // 3 events each
  int max_flows_per_coflow = 64;
  double locality = 0.9;
  ShardReconcile reconcile;
  std::string json_path;
};

struct Row {
  std::string policy;
  int shards = 1;
  int coflows = 0;
  int racks = 0;
  double locality = 0.0;
  int fp_iters = 0;
  double fp_tol = 0.0;
  long long events = 0;
  double wall_seconds = 0.0;
  double main_cpu_seconds = 0.0;
  double shard_busy_seconds = 0.0;
  double shard_critical_seconds = 0.0;
};

std::vector<std::string> split_list(const std::string& value) {
  std::vector<std::string> out;
  std::stringstream ss(value);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::vector<int> split_ints(const std::string& value) {
  std::vector<int> out;
  for (const std::string& item : split_list(value)) {
    out.push_back(std::stoi(item));
  }
  return out;
}

// The replay snapshot: every coflow of the trace concurrently active,
// destinations skewed so `locality` of the flows stay inside their
// source's rack group (groups = the largest requested shard count; the
// floor-boundary groups of N and of any smaller requested count nest, so
// a group-local flow is shard-local at every swept shard count).
struct Workload {
  Fabric fabric;
  std::vector<ActiveCoflow> pristine;
  std::vector<double> remaining;
  std::unique_ptr<ClairvoyantInfo> info;

  Workload(const BenchConfig& config, int num_coflows, int groups)
      : fabric(config.racks, gbps(1.0)) {
    SyntheticFbOptions options;
    options.num_coflows = num_coflows;
    options.num_racks = config.racks;
    options.duration_s = 1.0;  // everything concurrently active
    options.max_flows_per_coflow = config.max_flows_per_coflow;
    const Trace trace = generate_synthetic_fb(options);

    const ShardPlan plan(fabric, groups);
    Rng rng(20180701);
    remaining.assign(static_cast<std::size_t>(trace.total_flows), 0.0);
    pristine.reserve(trace.coflows.size());
    for (const Coflow& coflow : trace.coflows) {
      ActiveCoflow view;
      view.id = coflow.id();
      view.arrival_time = coflow.arrival_time();
      for (const Flow& f : coflow.flows()) {
        MachineId dst = f.dst;
        if (rng.uniform() < config.locality) {
          const int g = plan.shard_of_machine(f.src);
          const auto m = static_cast<long long>(config.racks);
          const auto n = static_cast<long long>(plan.num_shards());
          const auto begin = static_cast<MachineId>(g * m / n);
          const auto end = static_cast<MachineId>((g + 1) * m / n);
          dst = begin + static_cast<MachineId>(rng.uniform_int(
                            0, static_cast<int>(end - begin) - 1));
        }
        view.flows.push_back(ActiveFlow{f.id, f.coflow, f.src, dst});
        remaining[static_cast<std::size_t>(f.id)] = f.size_bits;
      }
      pristine.push_back(std::move(view));
    }
    info = std::make_unique<ClairvoyantInfo>(&remaining);
  }
};

// One replay step at coflow cursor k — three events, each followed by an
// allocate(): the last flow of coflow k finishes, k departs (swap-pop),
// then k re-arrives pristine (same shape as bench_sched_scalability).
template <typename OnEvent>
void replay_triple(ScheduleInput& input, std::size_t k,
                   const ActiveCoflow& pristine, OnEvent&& on_event) {
  ActiveCoflow& coflow = input.coflows[k];
  const ActiveFlow finished = coflow.flows.back();
  coflow.flows.pop_back();
  coflow.finished_flows.push_back(finished);
  on_event(/*finish=*/&finished, /*depart=*/static_cast<CoflowId>(-1),
           /*arrive=*/static_cast<const ActiveCoflow*>(nullptr));

  const CoflowId departed = coflow.id;
  if (k + 1 != input.coflows.size()) {
    input.coflows[k] = std::move(input.coflows.back());
  }
  input.coflows.pop_back();
  on_event(nullptr, departed, nullptr);

  input.coflows.push_back(pristine);
  on_event(nullptr, static_cast<CoflowId>(-1), &input.coflows.back());
}

Row run_cell(const BenchConfig& config, const Workload& workload,
             const std::string& policy, int shards, int num_coflows) {
  ScheduleInput input;
  input.fabric = &workload.fabric;
  input.coflows = workload.pristine;
  input.clairvoyant = workload.info.get();
  input.reconcile = config.reconcile;

  SchedulerOptions options;
  options.shards = shards;
  const std::unique_ptr<Scheduler> sched = make_scheduler(policy, options);

  Scheduler* hooks = nullptr;
  if (sched->wants_events()) {
    hooks = sched.get();
    hooks->on_reset(workload.fabric);
    for (const ActiveCoflow& c : input.coflows) {
      hooks->on_coflow_arrival(c);
    }
  }

  int live = 0;
  for (const ActiveCoflow& c : input.coflows) {
    live += static_cast<int>(c.flows.size());
  }

  int cursor_flows = 0;
  const auto on_event = [&](const ActiveFlow* finish, CoflowId depart,
                            const ActiveCoflow* arrive) {
    if (finish != nullptr) {
      live -= 1;
      if (hooks != nullptr) hooks->on_flow_finish(*finish);
    }
    if (depart >= 0) {
      live -= cursor_flows - 1;
      if (hooks != nullptr) hooks->on_coflow_departure(depart);
    }
    if (arrive != nullptr) {
      live += cursor_flows;
      if (hooks != nullptr) hooks->on_coflow_arrival(*arrive);
    }
    input.total_live_flows = live;
    const Allocation alloc = sched->allocate(input);
    // Touch the result so the allocate cannot be elided.
    if (alloc.num_flows() == 0 && live > 0) {
      NCDRF_CHECK(false, "allocate returned no rates for a live snapshot");
    }
  };

  const auto step = [&](std::size_t cursor) {
    const CoflowId id = input.coflows[cursor].id;
    const ActiveCoflow& base = workload.pristine[static_cast<std::size_t>(id)];
    cursor_flows = static_cast<int>(base.flows.size());
    replay_triple(input, cursor, base, on_event);
    return (cursor + 1) % input.coflows.size();
  };

  // Warm the scheduler's scratch buffers (and the shard pool) untimed.
  std::size_t cursor = 0;
  for (int i = 0; i < 2; ++i) cursor = step(cursor);

  const SchedPerf before =
      sched->perf_counters() != nullptr ? *sched->perf_counters() : SchedPerf{};
  const double cpu_start = thread_cpu_seconds();
  const auto wall_start = std::chrono::steady_clock::now();
  for (int i = 0; i < config.triples; ++i) cursor = step(cursor);
  const auto wall_end = std::chrono::steady_clock::now();
  const double cpu_end = thread_cpu_seconds();
  const SchedPerf after =
      sched->perf_counters() != nullptr ? *sched->perf_counters() : SchedPerf{};

  Row row;
  row.policy = policy;
  row.shards = shards;
  row.coflows = num_coflows;
  row.racks = config.racks;
  row.locality = config.locality;
  row.fp_iters = config.reconcile.max_iterations;
  row.fp_tol = config.reconcile.tolerance;
  row.events = 3LL * config.triples;
  row.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  row.main_cpu_seconds = cpu_end - cpu_start;
  row.shard_busy_seconds =
      after.shard_busy_seconds - before.shard_busy_seconds;
  row.shard_critical_seconds =
      after.shard_critical_seconds - before.shard_critical_seconds;
  return row;
}

void write_json(const std::vector<Row>& rows, std::ostream& out) {
  out << "{\n  \"benchmark\": \"bench_scale\",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    const double modeled = r.main_cpu_seconds + r.shard_critical_seconds;
    char buffer[640];
    std::snprintf(
        buffer, sizeof(buffer),
        "    {\"policy\": \"%s\", \"shards\": %d, \"coflows\": %d, "
        "\"racks\": %d, \"locality\": %.3f, \"fp_iters\": %d, "
        "\"fp_tol\": %g, \"events\": %lld, "
        "\"wall_seconds\": %.6f, \"wall_events_per_s\": %.1f, "
        "\"main_cpu_seconds\": %.6f, \"shard_busy_seconds\": %.6f, "
        "\"shard_critical_seconds\": %.6f, \"modeled_seconds\": %.6f, "
        "\"modeled_events_per_s\": %.1f}%s\n",
        r.policy.c_str(), r.shards, r.coflows, r.racks, r.locality,
        r.fp_iters, r.fp_tol, r.events,
        r.wall_seconds,
        r.wall_seconds > 0.0 ? static_cast<double>(r.events) / r.wall_seconds
                             : 0.0,
        r.main_cpu_seconds, r.shard_busy_seconds, r.shard_critical_seconds,
        modeled,
        modeled > 0.0 ? static_cast<double>(r.events) / modeled : 0.0,
        i + 1 < rows.size() ? "," : "");
    out << buffer;
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) -> std::string {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--policies=", 0) == 0) {
      config.policies = split_list(value("--policies="));
    } else if (arg.rfind("--shards=", 0) == 0) {
      config.shards = split_ints(value("--shards="));
    } else if (arg.rfind("--coflows=", 0) == 0) {
      config.coflows = split_ints(value("--coflows="));
    } else if (arg.rfind("--racks=", 0) == 0) {
      config.racks = std::stoi(value("--racks="));
    } else if (arg.rfind("--triples=", 0) == 0) {
      config.triples = std::stoi(value("--triples="));
    } else if (arg.rfind("--max-flows=", 0) == 0) {
      config.max_flows_per_coflow = std::stoi(value("--max-flows="));
    } else if (arg.rfind("--locality=", 0) == 0) {
      config.locality = std::stod(value("--locality="));
    } else if (arg.rfind("--fp-iters=", 0) == 0) {
      config.reconcile.max_iterations = std::stoi(value("--fp-iters="));
    } else if (arg.rfind("--fp-tol=", 0) == 0) {
      config.reconcile.tolerance = std::stod(value("--fp-tol="));
    } else if (arg.rfind("--json=", 0) == 0) {
      config.json_path = value("--json=");
    } else {
      std::cerr << "unknown argument: " << arg << "\n"
                << "usage: bench_scale [--policies=a,b] [--shards=1,4] "
                   "[--coflows=10000] [--racks=150] [--triples=10] "
                   "[--max-flows=64] [--locality=0.9] [--fp-iters=N] "
                   "[--fp-tol=T] [--json=out.json]\n";
      return 2;
    }
  }
  NCDRF_CHECK(!config.policies.empty() && !config.shards.empty() &&
                  !config.coflows.empty(),
              "empty benchmark matrix");
  NCDRF_CHECK(config.triples > 0, "need at least one replay triple");

  const int groups =
      *std::max_element(config.shards.begin(), config.shards.end());

  std::vector<Row> rows;
  for (const int num_coflows : config.coflows) {
    const Workload workload(config, num_coflows, std::max(groups, 1));
    for (const std::string& policy : config.policies) {
      for (const int shards : config.shards) {
        const Row row = run_cell(config, workload, policy, shards,
                                 num_coflows);
        const double modeled =
            row.main_cpu_seconds + row.shard_critical_seconds;
        std::fprintf(
            stderr,
            "%-10s shards=%d coflows=%d wall=%.3fs modeled=%.3fs "
            "(%.0f ev/s modeled)\n",
            policy.c_str(), shards, num_coflows, row.wall_seconds, modeled,
            modeled > 0.0 ? static_cast<double>(row.events) / modeled : 0.0);
        rows.push_back(row);
      }
    }
  }

  if (!config.json_path.empty()) {
    std::ofstream out(config.json_path);
    NCDRF_CHECK(out.good(), "cannot open json output: " + config.json_path);
    write_json(rows, out);
  } else {
    write_json(rows, std::cout);
  }
  return 0;
}
