// Kernel-layer microbenchmark with hardware perf counters: the
// mechanical-sympathy companion to bench_sched_scalability. Where that
// bench measures end-to-end events/sec, this one isolates the hot kernels
// — the SoA snapshot gather, the indexed-heap waterfill solve, and each
// policy family's priority-fill allocate() on a warmed incremental
// scheduler — and annotates every case with instructions, branch misses,
// and cache (LLC) misses per event from perf_event_open.
//
// Counters degrade gracefully: when the syscall is unavailable (seccomp'd
// containers, perf_event_paranoid, non-Linux) the bench still reports
// wall and CPU time per event and marks the counter columns "n/a" —
// nothing in CI depends on the hardware columns being present.
//
// `--json` emits one newline-delimited JSON object per case for the CI
// bench-smoke artifact (bench_kernel_micro.json); the numbers feed the
// cache-profile tables in docs/ARCHITECTURE.md §7.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <ctime>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include "alloc/kernel_scratch.h"
#include "alloc/legacy.h"
#include "alloc/waterfill.h"
#include "common/table.h"
#include "common/units.h"
#include "core/registry.h"
#include "sched/scheduler.h"
#include "trace/synthetic_fb.h"

namespace {

using namespace ncdrf;

// One hardware event counter. Unavailable counters (no syscall, paranoid
// sysctl, missing PMU) stay closed and read as -1.
class PerfCounter {
 public:
  PerfCounter(std::uint32_t type, std::uint64_t config) {
#if defined(__linux__)
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.type = type;
    attr.size = sizeof(attr);
    attr.config = config;
    attr.disabled = 1;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    fd_ = static_cast<int>(syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                                   /*cpu=*/-1, /*group_fd=*/-1,
                                   /*flags=*/0UL));
#else
    (void)type;
    (void)config;
#endif
  }
  ~PerfCounter() {
#if defined(__linux__)
    if (fd_ >= 0) close(fd_);
#endif
  }
  PerfCounter(const PerfCounter&) = delete;
  PerfCounter& operator=(const PerfCounter&) = delete;

  bool valid() const { return fd_ >= 0; }

  void start() {
#if defined(__linux__)
    if (fd_ < 0) return;
    ioctl(fd_, PERF_EVENT_IOC_RESET, 0);
    ioctl(fd_, PERF_EVENT_IOC_ENABLE, 0);
#endif
  }

  long long stop() {
#if defined(__linux__)
    if (fd_ < 0) return -1;
    ioctl(fd_, PERF_EVENT_IOC_DISABLE, 0);
    long long value = -1;
    if (read(fd_, &value, sizeof(value)) != sizeof(value)) return -1;
    return value;
#else
    return -1;
#endif
  }

 private:
  int fd_ = -1;
};

// Instructions + branch-misses + LLC-misses around a region of interest.
struct PerfGroup {
  PerfGroup()
#if defined(__linux__)
      : instructions(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS),
        branch_misses(PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES),
        cache_misses(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES)
#else
      : instructions(0, 0), branch_misses(0, 0), cache_misses(0, 0)
#endif
  {
  }

  void start() {
    instructions.start();
    branch_misses.start();
    cache_misses.start();
  }

  PerfCounter instructions;
  PerfCounter branch_misses;
  PerfCounter cache_misses;
};

double cpu_now_s() {
  timespec ts;
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) +
         1e-9 * static_cast<double>(ts.tv_nsec);
}

struct CaseResult {
  std::string name;
  int coflows = 0;
  int flows = 0;
  long long events = 0;
  double wall_ns_per_event = 0.0;
  double cpu_ns_per_event = 0.0;
  // -1 = counter unavailable on this machine.
  double instructions_per_event = -1.0;
  double branch_misses_per_event = -1.0;
  double cache_misses_per_event = -1.0;
};

// Runs `fn` (one event per call) until `min_time_s` of wall clock has
// accumulated, with perf counters wrapped around the whole timed run.
template <typename Fn>
CaseResult measure(const std::string& name, int coflows, int flows,
                   double min_time_s, Fn&& fn) {
  using Clock = std::chrono::steady_clock;
  fn();
  fn();  // warm-up: arenas coalesce, caches settle, branch predictors train

  // Calibrate an iteration count from one timed call, then run the whole
  // batch under the counters so per-event noise averages out.
  const auto probe_start = Clock::now();
  fn();
  const double probe_s =
      std::chrono::duration<double>(Clock::now() - probe_start).count();
  long long events = 8;
  if (probe_s > 0.0) {
    events = std::max<long long>(
        1, static_cast<long long>(min_time_s / probe_s) + 1);
  }
  events = std::min<long long>(events, 100000);

  PerfGroup perf;
  const double cpu_start = cpu_now_s();
  const auto wall_start = Clock::now();
  perf.start();
  for (long long i = 0; i < events; ++i) fn();
  const long long instructions = perf.instructions.stop();
  const long long branch_misses = perf.branch_misses.stop();
  const long long cache_misses = perf.cache_misses.stop();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - wall_start).count();
  const double cpu_s = cpu_now_s() - cpu_start;

  CaseResult result;
  result.name = name;
  result.coflows = coflows;
  result.flows = flows;
  result.events = events;
  const double denom = static_cast<double>(events);
  result.wall_ns_per_event = 1e9 * wall_s / denom;
  result.cpu_ns_per_event = 1e9 * cpu_s / denom;
  if (instructions >= 0) {
    result.instructions_per_event =
        static_cast<double>(instructions) / denom;
  }
  if (branch_misses >= 0) {
    result.branch_misses_per_event =
        static_cast<double>(branch_misses) / denom;
  }
  if (cache_misses >= 0) {
    result.cache_misses_per_event =
        static_cast<double>(cache_misses) / denom;
  }
  return result;
}

// The bench_sched_scalability snapshot shape: `num_coflows` concurrently
// active synthetic-FB coflows on 150 racks.
struct Workbench {
  Fabric fabric{150, gbps(1.0)};
  Trace trace;
  ScheduleInput input;
  std::vector<double> remaining;
  std::unique_ptr<ClairvoyantInfo> info;

  explicit Workbench(int num_coflows) {
    SyntheticFbOptions options;
    options.num_coflows = num_coflows;
    options.duration_s = 1.0;
    options.max_flows_per_coflow = 64;
    trace = generate_synthetic_fb(options);

    input.fabric = &fabric;
    remaining.assign(static_cast<std::size_t>(trace.total_flows), 0.0);
    for (const Coflow& coflow : trace.coflows) {
      ActiveCoflow view;
      view.id = coflow.id();
      view.arrival_time = coflow.arrival_time();
      for (const Flow& f : coflow.flows()) {
        view.flows.push_back(ActiveFlow{f.id, f.coflow, f.src, f.dst});
        remaining[static_cast<std::size_t>(f.id)] = f.size_bits;
      }
      input.coflows.push_back(std::move(view));
    }
    info = std::make_unique<ClairvoyantInfo>(&remaining);
  }

  int num_flows() const { return static_cast<int>(trace.total_flows); }
};

std::string fmt_counter(double v, int precision = 0) {
  return v < 0.0 ? "n/a" : AsciiTable::fmt(v, precision);
}

void emit_json(std::ostream& out, const CaseResult& r) {
  out << "{\"bench\":\"kernel_micro\",\"case\":\"" << r.name
      << "\",\"coflows\":" << r.coflows << ",\"flows\":" << r.flows
      << ",\"events\":" << r.events
      << ",\"wall_ns_per_event\":" << r.wall_ns_per_event
      << ",\"cpu_ns_per_event\":" << r.cpu_ns_per_event
      << ",\"counters_valid\":"
      << (r.instructions_per_event >= 0.0 ? "true" : "false")
      << ",\"instructions_per_event\":" << r.instructions_per_event
      << ",\"branch_misses_per_event\":" << r.branch_misses_per_event
      << ",\"cache_misses_per_event\":" << r.cache_misses_per_event
      << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  int coflows = 500;
  double min_time_s = 0.2;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--coflows") == 0 && i + 1 < argc) {
      coflows = std::stoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--min-time") == 0 && i + 1 < argc) {
      min_time_s = std::stod(argv[++i]);
    }
  }

  Workbench bench(coflows);
  std::cerr << "# kernel microbench: " << coflows << " coflows, "
            << bench.num_flows() << " flows, 150 racks\n";
  {
    PerfGroup probe;
    std::cerr << "# perf counters: "
              << (probe.instructions.valid() ? "available"
                                             : "unavailable (wall/CPU only)")
              << "\n";
  }

  std::vector<CaseResult> results;

  // Kernel primitives in isolation: the snapshot mirror and the
  // indexed-heap max-min solve over the gathered columns.
  {
    KernelScratch scratch;
    results.push_back(measure("gather", coflows, bench.num_flows(),
                              min_time_s, [&] {
                                scratch.gather(bench.input, nullptr,
                                               GatherCounts::kNone);
                              }));
  }
  {
    KernelScratch scratch;
    const FlowTable& table =
        scratch.gather(bench.input, nullptr, GatherCounts::kNone);
    WaterfillKernel kernel;
    std::vector<double> capacities(
        static_cast<std::size_t>(bench.fabric.num_links()));
    for (std::size_t l = 0; l < capacities.size(); ++l) {
      capacities[l] = bench.fabric.capacity(static_cast<LinkId>(l));
    }
    std::vector<double> rates(table.num_flows, 0.0);
    const WaterfillProblem problem{table.num_flows, table.up, table.dn,
                                   /*weight=*/nullptr};
    results.push_back(
        measure("waterfill_solve", coflows, bench.num_flows(), min_time_s,
                [&] {
                  kernel.solve(bench.fabric, problem, capacities, nullptr,
                               rates.data());
                }));
  }

  // Full allocate() per policy family on a hook-warmed scheduler, so the
  // incremental paths (PriorityOrder, DemandCache, LinkLoadState) are the
  // ones under the counters — the same state a live event loop runs in.
  const std::vector<std::string> policies = {"tcp",   "fifo", "aalo",
                                             "baraat", "varys", "psp",
                                             "drf",   "hug"};
  for (const std::string& name : policies) {
    const auto scheduler = make_scheduler(name);
    bench.input.clairvoyant =
        scheduler->clairvoyant() ? bench.info.get() : nullptr;
    scheduler->on_reset(bench.fabric);
    for (const ActiveCoflow& c : bench.input.coflows) {
      scheduler->on_coflow_arrival(c);
    }
    results.push_back(
        measure(name + "_allocate", coflows, bench.num_flows(), min_time_s,
                [&] {
                  Allocation alloc = scheduler->allocate(bench.input);
                  (void)alloc;
                }));
    // The frozen pre-refactor twin on the same snapshot: the "before"
    // column of the §7 cache-profile tables.
    if (legacy_supports(name)) {
      results.push_back(measure(
          name + "_legacy", coflows, bench.num_flows(), min_time_s, [&] {
            Allocation alloc = legacy_allocate(name, bench.input);
            (void)alloc;
          }));
    }
  }

  AsciiTable table({"Case", "Events", "Wall ns/ev", "CPU ns/ev",
                    "Instr/ev", "BrMiss/ev", "LLCMiss/ev"});
  for (const CaseResult& r : results) {
    table.add_row({r.name, std::to_string(r.events),
                   AsciiTable::fmt(r.wall_ns_per_event, 0),
                   AsciiTable::fmt(r.cpu_ns_per_event, 0),
                   fmt_counter(r.instructions_per_event),
                   fmt_counter(r.branch_misses_per_event),
                   fmt_counter(r.cache_misses_per_event)});
  }
  std::cerr << table.render();

  if (json) {
    for (const CaseResult& r : results) emit_json(std::cout, r);
  }
  return 0;
}
