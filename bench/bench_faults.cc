// Fault-tolerance bench: the robustness analogue of the perf benches.
//
// Runs the Table III micro-benchmark on the emulated cluster under
// increasing control-plane churn (seeded FaultPlan: slave crash/restart
// cycles, master restarts, partitions, loss bursts) and reports CCT
// inflation versus the fault-free run, fault-to-repair reallocation
// latency, and the message overhead of the recovery machinery.
//
// `--json` additionally emits one newline-delimited JSON object per run
// (metrics/export.h:write_deployment_json) for the CI bench-smoke
// artifact. `--trace-dir <dir>` writes one Chrome trace-event file and one
// metrics-registry JSON per churn level (virtual-clock timestamps, so two
// runs produce byte-identical files — CI pins that).
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_util.h"
#include "cluster/deployment.h"
#include "metrics/export.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "trace/microbench.h"

int main(int argc, char** argv) {
  using namespace ncdrf;
  bool json = false;
  std::string trace_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--trace-dir") == 0 && i + 1 < argc) {
      trace_dir = argv[++i];
    }
  }
  bench::print_header(
      "Fault injection — reallocation latency and CCT inflation under churn",
      "the control plane survives crashes/partitions with bounded slowdown");

  MicrobenchOptions trace_options;
  trace_options.min_flow_bits = 8.0 * 10e6;  // scaled down for bench speed
  trace_options.max_flow_bits = 8.0 * 20e6;
  trace_options.arrival_b_s = 2.0;
  trace_options.arrival_c_s = 4.0;
  const Trace trace = build_testbed_trace(trace_options);
  const Fabric fabric(trace_options.num_machines, mbps(200.0));

  struct Level {
    const char* label;
    double mean_gap_s;  // 0 = fault-free baseline
  };
  const Level levels[] = {
      {"fault-free", 0.0}, {"light", 2.0}, {"medium", 1.0}, {"heavy", 0.5}};

  AsciiTable table({"Churn", "Faults", "Makespan (s)", "CCT infl.",
                    "Recov mean (s)", "Recov max (s)", "Retries",
                    "Dropped"});
  double baseline_cct_sum = 0.0;
  for (const Level& level : levels) {
    const auto scheduler = make_scheduler("ncdrf-live");
    DeploymentOptions options;
    options.record_progress = false;
    options.control_loss_probability = 0.02;
    if (level.mean_gap_s > 0.0) {
      ChurnOptions churn;
      churn.start_s = 0.5;
      churn.horizon_s = 8.0;
      churn.mean_gap_s = level.mean_gap_s;
      options.faults =
          random_churn_plan(42, trace_options.num_machines, churn);
    }
    std::cerr << "  deploying " << level.label << " churn ("
              << options.faults.size() << " fault events)...\n";
    obs::Tracer tracer(1 << 20);
    obs::MetricsRegistry metrics;
    if (!trace_dir.empty()) {
      options.tracer = &tracer;
      options.metrics = &metrics;
    }
    const DeploymentResult result =
        run_deployment(fabric, trace, *scheduler, options);
    if (!trace_dir.empty()) {
      const std::string base = trace_dir + "/faults-" + level.label;
      std::ofstream trace_out(base + ".json");
      NCDRF_CHECK(trace_out.good(), "cannot write " + base + ".json");
      tracer.write_chrome_json(trace_out);
      std::ofstream metrics_out(base + "-metrics.json");
      NCDRF_CHECK(metrics_out.good(),
                  "cannot write " + base + "-metrics.json");
      metrics.write_json(metrics_out);
    }

    double cct_sum = 0.0;
    for (const CoflowRecord& rec : result.coflows) cct_sum += rec.cct;
    if (level.mean_gap_s == 0.0) baseline_cct_sum = cct_sum;
    double rec_sum = 0.0;
    double rec_max = 0.0;
    for (const double r : result.recovery_latencies_s) {
      rec_sum += r;
      rec_max = std::max(rec_max, r);
    }
    const double rec_mean =
        result.recovery_latencies_s.empty()
            ? 0.0
            : rec_sum /
                  static_cast<double>(result.recovery_latencies_s.size());
    table.add_row(
        {level.label, std::to_string(options.faults.size()),
         AsciiTable::fmt(result.makespan, 2),
         AsciiTable::fmt(cct_sum / baseline_cct_sum, 3),
         AsciiTable::fmt(rec_mean, 3), AsciiTable::fmt(rec_max, 3),
         std::to_string(result.fault_counters.bus_retries),
         std::to_string(result.messages_dropped)});
    if (json) {
      write_deployment_json(std::cout, result, scheduler->name(),
                            level.label);
    }
  }
  std::cout << table.render();
  return 0;
}
