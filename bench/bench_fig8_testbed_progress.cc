// Fig. 8: per-coflow progress over time on the (emulated) testbed under
// TCP, PS-P and NC-DRF.
//
// Paper: NC-DRF holds the progress of coflow-A and coflow-B nearly equal
// during 10-20 s, and of A and C during 20-47 s — instantaneous equal
// progress without knowing any flow size — while TCP and PS-P do not.
#include <iomanip>
#include <iostream>
#include <map>

#include "bench_util.h"
#include "cluster/deployment.h"
#include "obs/audit.h"
#include "trace/microbench.h"

int main() {
  using namespace ncdrf;
  bench::print_header(
      "Fig. 8 — coflow progress over time in the testbed emulation",
      "NC-DRF: near-equal progress A~B in 10-20s and A~C after 20s");

  const Trace trace = build_testbed_trace({});
  const Fabric fabric(60, mbps(200.0));

  for (const std::string name : {"tcp", "psp-live", "ncdrf-live"}) {
    const auto scheduler = make_scheduler(name);
    DeploymentOptions options;
    options.progress_sample_period_s = 1.0;
    std::cerr << "  deploying " << scheduler->name() << "...\n";
    const DeploymentResult result =
        run_deployment(fabric, trace, *scheduler, options);

    std::cout << "\n--- " << scheduler->name()
              << " (progress in Mbps, per second) ---\n";
    std::cout << "  t(s)    A       B       C\n";
    std::map<int, std::map<CoflowId, double>> rows;
    for (const ProgressSample& s : result.progress) {
      rows[static_cast<int>(s.t0)][s.coflow] = s.progress;
    }
    for (const auto& [t, row] : rows) {
      if (t % 4 != 0) continue;  // print every 4 s to keep output compact
      std::cout << std::setw(5) << t << "  ";
      for (CoflowId c = 0; c < 3; ++c) {
        const auto it = row.find(c);
        if (it == row.end()) {
          std::cout << std::setw(7) << "-" << ' ';
        } else {
          std::cout << std::setw(7) << AsciiTable::fmt(it->second / 1e6, 1)
                    << ' ';
        }
      }
      std::cout << '\n';
    }
    std::cout << "relative progress gap A vs B in [10, 20] s: "
              << AsciiTable::fmt(obs::relative_progress_gap(
                                     result.progress, 0, 1, 10.0, 20.0),
                                 2)
              << "   A vs C in [20, 45] s: "
              << AsciiTable::fmt(obs::relative_progress_gap(
                                     result.progress, 0, 2, 20.0, 45.0),
                                 2)
              << "   (0 = perfectly equal)\n";
  }
  return 0;
}
