// Fig. 5b: average bandwidth allocation out of the fabric's total
// capacity ("300 Gbps availability") under each policy.
//
// Paper: TCP achieves the highest utilization (flow-level, unrestricted by
// coflow semantics); PS-P the lowest (per-link shares mismatched across
// coupled links); NC-DRF close to DRF.
#include <iostream>

#include "bench_util.h"

int main() {
  using namespace ncdrf;
  bench::print_header(
      "Fig. 5b — average bandwidth allocation (busy-time average)",
      "TCP highest; PS-P lowest despite work conservation; NC-DRF ~ DRF");

  const Trace trace = bench::evaluation_trace();
  const Fabric fabric = bench::evaluation_fabric(trace);

  AsciiTable table(
      {"Policy", "Avg alloc (Gbps)", "% of " +
                     AsciiTable::fmt(to_gbps(fabric.total_capacity()), 0) +
                     " Gbps"});
  const auto runs =
      bench::run_policies({"tcp", "psp", "ncdrf", "drf", "aalo"}, fabric,
                          trace, /*with_intervals=*/true);
  for (const std::string name : {"tcp", "psp", "ncdrf", "drf", "aalo"}) {
    const RunResult& run = runs.at(name);
    const double avg = average_link_usage(run);
    table.add_row({make_scheduler(name)->name(),
                   AsciiTable::fmt(to_gbps(avg), 1),
                   AsciiTable::fmt(100.0 * avg / fabric.total_capacity(), 1) +
                       "%"});
  }
  std::cout << table.render();
  std::cout << "\n(time-weighted over intervals with at least one active\n"
               " coflow; every policy moves the same bytes, so a lower\n"
               " average means the policy stays busy longer to do it)\n";
  return 0;
}
