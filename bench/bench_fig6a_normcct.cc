// Fig. 6a: distribution of normalized CCT — each coflow's completion time
// under the compared scheduler divided by its completion time under the
// isolation-optimal DRF baseline.
//
// Paper: TCP is worst (arbitrary delays); Aalo speeds many coflows but has
// a tail beyond 100 (no isolation); NC-DRF dominates PS-P, and coflows
// under NC-DRF are delayed by only 68% on average vs DRF.
#include <algorithm>
#include <iostream>

#include "bench_util.h"

int main() {
  using namespace ncdrf;
  bench::print_header(
      "Fig. 6a — distribution of normalized CCT (vs DRF)",
      "TCP worst; Aalo tail > 100; NC-DRF < PS-P; NC-DRF mean ~ 1.68");

  const Trace trace = bench::evaluation_trace();
  const Fabric fabric = bench::evaluation_fabric(trace);

  const auto runs = bench::run_policies({"drf", "tcp", "psp", "ncdrf", "aalo"},
                                        fabric, trace,
                                        /*with_intervals=*/false);
  const RunResult& base = runs.at("drf");

  AsciiTable table({"Policy", "P25", "P50", "P75", "P95", "Max", "Mean"});
  for (const std::string name : {"tcp", "psp", "ncdrf", "aalo"}) {
    const RunResult& run = runs.at(name);
    std::vector<double> norm = normalized_ccts(run, base);
    std::sort(norm.begin(), norm.end());
    const Summary s = summarize(norm);
    table.add_row({make_scheduler(name)->name(),
                   AsciiTable::fmt(percentile(norm, 25.0), 2),
                   AsciiTable::fmt(s.p50, 2),
                   AsciiTable::fmt(percentile(norm, 75.0), 2),
                   AsciiTable::fmt(s.p95, 2), AsciiTable::fmt(s.max, 1),
                   AsciiTable::fmt(s.mean, 2)});
  }
  table.add_row({"DRF (baseline)", "1.00", "1.00", "1.00", "1.00", "1.0",
                 "1.00"});
  std::cout << table.render();
  std::cout << "\n(NC-DRF mean − 1 is the paper's \"delayed by 68% on"
               " average\" headline)\n";
  return 0;
}
