// Shared setup for the paper-reproduction bench binaries: the evaluation
// fabric (150×150 racks, 1 Gbps ports — "300 Gbps availability"), the
// workload (the real Coflow-Benchmark file if NCDRF_TRACE_FILE is set,
// otherwise the synthetic statistical twin), and small print helpers.
//
// Every bench prints its workload provenance (seed or file) so runs are
// reproducible and comparable.
#pragma once

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/table.h"
#include "common/units.h"
#include "core/registry.h"
#include "fabric/fabric.h"
#include "metrics/eval.h"
#include "runner/sweep.h"
#include "sim/sim.h"
#include "trace/benchmark_format.h"
#include "trace/synthetic_fb.h"

namespace ncdrf::bench {

// The Sec. V-A workload: honours NCDRF_TRACE_FILE (a real Coflow-Benchmark
// trace) and NCDRF_TRACE_SEED (synthetic seed override).
inline Trace evaluation_trace() {
  if (const char* path = std::getenv("NCDRF_TRACE_FILE")) {
    std::cout << "# workload: Coflow-Benchmark file " << path << "\n";
    return load_benchmark_trace(path);
  }
  SyntheticFbOptions options;
  if (const char* seed = std::getenv("NCDRF_TRACE_SEED")) {
    options.seed = std::stoull(seed);
  }
  std::cout << "# workload: synthetic FB-like trace (seed " << options.seed
            << ", " << options.num_coflows << " coflows, "
            << options.num_racks << " racks, " << options.duration_s
            << " s)\n";
  return generate_synthetic_fb(options);
}

// The Sec. V-A fabric for a given trace: 1 Gbps per rack port.
inline Fabric evaluation_fabric(const Trace& trace) {
  return Fabric(trace.num_machines, gbps(1.0));
}

// Runs one policy over the trace. `with_intervals` enables the
// time-weighted interval metrics (needed for Figs. 5a/5b; costs extra).
inline RunResult run_policy(const std::string& name, const Fabric& fabric,
                            const Trace& trace, bool with_intervals) {
  const auto scheduler = make_scheduler(name);
  SimOptions options;
  options.record_intervals = with_intervals;
  std::cerr << "  running " << scheduler->name() << "...\n";
  return simulate(fabric, trace, *scheduler, options);
}

// Number of sweep threads for the figure benches: NCDRF_BENCH_THREADS if
// set, hardware concurrency otherwise, never more than `max_cells`.
inline int bench_threads(int max_cells) {
  int threads = static_cast<int>(std::thread::hardware_concurrency());
  if (const char* env = std::getenv("NCDRF_BENCH_THREADS")) {
    threads = std::stoi(env);
  }
  return std::clamp(threads, 1, std::max(max_cells, 1));
}

// Runs every named policy over the trace through the parallel sweep
// runner (runner/sweep.h) — one grid cell per policy. Results are keyed
// by policy name and bit-identical to serial run_policy calls whatever
// the thread count (the runner's determinism contract).
inline std::map<std::string, RunResult> run_policies(
    const std::vector<std::string>& names, const Fabric& fabric,
    const Trace& trace, bool with_intervals) {
  SweepSpec spec;
  spec.fabric = fabric;
  spec.policies = names;
  spec.traces.push_back(SweepCase{"workload", trace});
  spec.sim.record_intervals = with_intervals;
  spec.threads = bench_threads(static_cast<int>(names.size()));
  std::cerr << "  sweep: " << names.size() << " policies on "
            << spec.threads << " thread(s)...\n";
  SweepResult sweep = run_sweep(spec);
  std::map<std::string, RunResult> runs;
  for (SweepCellResult& cell : sweep.cells) {
    runs.emplace(cell.policy, std::move(cell.run));
  }
  return runs;
}

inline void print_header(const std::string& experiment,
                         const std::string& paper_claim) {
  std::cout << "==============================================================="
               "=\n"
            << experiment << "\n"
            << "paper: " << paper_claim << "\n"
            << "==============================================================="
               "=\n";
}

}  // namespace ncdrf::bench
