// Shared setup for the paper-reproduction bench binaries: the evaluation
// fabric (150×150 racks, 1 Gbps ports — "300 Gbps availability"), the
// workload (the real Coflow-Benchmark file if NCDRF_TRACE_FILE is set,
// otherwise the synthetic statistical twin), and small print helpers.
//
// Every bench prints its workload provenance (seed or file) so runs are
// reproducible and comparable.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.h"
#include "common/units.h"
#include "core/registry.h"
#include "fabric/fabric.h"
#include "metrics/eval.h"
#include "sim/sim.h"
#include "trace/benchmark_format.h"
#include "trace/synthetic_fb.h"

namespace ncdrf::bench {

// The Sec. V-A workload: honours NCDRF_TRACE_FILE (a real Coflow-Benchmark
// trace) and NCDRF_TRACE_SEED (synthetic seed override).
inline Trace evaluation_trace() {
  if (const char* path = std::getenv("NCDRF_TRACE_FILE")) {
    std::cout << "# workload: Coflow-Benchmark file " << path << "\n";
    return load_benchmark_trace(path);
  }
  SyntheticFbOptions options;
  if (const char* seed = std::getenv("NCDRF_TRACE_SEED")) {
    options.seed = std::stoull(seed);
  }
  std::cout << "# workload: synthetic FB-like trace (seed " << options.seed
            << ", " << options.num_coflows << " coflows, "
            << options.num_racks << " racks, " << options.duration_s
            << " s)\n";
  return generate_synthetic_fb(options);
}

// The Sec. V-A fabric for a given trace: 1 Gbps per rack port.
inline Fabric evaluation_fabric(const Trace& trace) {
  return Fabric(trace.num_machines, gbps(1.0));
}

// Runs one policy over the trace. `with_intervals` enables the
// time-weighted interval metrics (needed for Figs. 5a/5b; costs extra).
inline RunResult run_policy(const std::string& name, const Fabric& fabric,
                            const Trace& trace, bool with_intervals) {
  const auto scheduler = make_scheduler(name);
  SimOptions options;
  options.record_intervals = with_intervals;
  std::cerr << "  running " << scheduler->name() << "...\n";
  return simulate(fabric, trace, *scheduler, options);
}

inline void print_header(const std::string& experiment,
                         const std::string& paper_claim) {
  std::cout << "==============================================================="
               "=\n"
            << experiment << "\n"
            << "paper: " << paper_claim << "\n"
            << "==============================================================="
               "=\n";
}

}  // namespace ncdrf::bench
