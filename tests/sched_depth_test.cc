// Deeper behavioural tests for the baseline policies: HUG's progress cap,
// Varys preemption under arrivals, Aalo's queue-structure parameter sweep,
// PS-P redistribution-round convergence, and stale-count semantics with
// populated finished-flow lists.
#include <gtest/gtest.h>

#include <cmath>

#include "common/units.h"
#include "core/ncdrf.h"
#include "core/registry.h"
#include "sched/aalo.h"
#include "sched/drf.h"
#include "sched/hug.h"
#include "sched/psp.h"
#include "sched/varys.h"
#include "sim/sim.h"
#include "test_util.h"

namespace ncdrf {
namespace {

using testing::coflow_link_usage;
using testing::fig3_trace;
using testing::snapshot_all_active;

// ------------------------------------------------------------------ HUG

TEST(HugDepth, SpareStageRespectsProgressCap) {
  // Coflow 0 uses only half of uplink 0; coflow 1 saturates uplink 1.
  // HUG may hand coflow 0 spare bandwidth, but its total on any link must
  // stay at or below P* × capacity.
  const Fabric fabric(3, gbps(1.0));
  TraceBuilder builder(3);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 1, 1e8);
  builder.add_flow(0, 2, 3e8);
  builder.begin_coflow(0.0);
  builder.add_flow(1, 2, 4e8);
  const Trace trace = builder.build();
  auto snap = snapshot_all_active(fabric, trace, true);

  const double p_star = DrfScheduler::optimal_progress(snap.input);
  HugScheduler hug;
  const Allocation alloc = hug.allocate(snap.input);
  for (const ActiveCoflow& coflow : snap.input.coflows) {
    const auto usage = coflow_link_usage(fabric, coflow, alloc);
    for (LinkId i = 0; i < fabric.num_links(); ++i) {
      EXPECT_LE(usage[static_cast<std::size_t>(i)],
                p_star * fabric.capacity(i) + 1.0)
          << "coflow " << coflow.id << " link " << i;
    }
  }
}

TEST(HugDepth, UtilizationBetweenDrfAndWorkConservingBound) {
  const Fabric fabric(4, gbps(1.0));
  TraceBuilder builder(4);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 2, 2e8);
  builder.add_flow(1, 2, 1e8);
  builder.begin_coflow(0.0);
  builder.add_flow(1, 3, 4e8);
  builder.add_flow(0, 3, 1e8);
  const Trace trace = builder.build();
  auto snap = snapshot_all_active(fabric, trace, true);
  DrfScheduler drf;
  HugScheduler hug;
  const double drf_total = drf.allocate(snap.input).total_rate();
  const double hug_total = hug.allocate(snap.input).total_rate();
  EXPECT_GE(hug_total, drf_total - 1.0);
  EXPECT_NO_THROW(check_capacity(snap.input, hug.allocate(snap.input)));
}

// ---------------------------------------------------------------- Varys

TEST(VarysDepth, SmallerArrivalPreemptsInSimulation) {
  // A large coflow is running; a small one arrives and, under SEBF, takes
  // the shared path until it finishes — the small coflow's CCT is close to
  // its isolated time while the large one absorbs the delay.
  const Fabric fabric(2, gbps(1.0));
  TraceBuilder builder(2);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 1, gigabits(8.0));
  builder.begin_coflow(1.0);
  builder.add_flow(0, 1, gigabits(1.0));
  const Trace trace = builder.build();
  const auto varys = make_scheduler("varys");
  const RunResult run = simulate(fabric, trace, *varys);
  EXPECT_NEAR(run.coflows[1].cct, 1.0, 1e-6);   // runs unimpeded
  EXPECT_NEAR(run.coflows[0].cct, 9.0, 1e-6);   // 8 s of work + 1 s paused
}

TEST(VarysDepth, MinimizesAverageCctOnFig3) {
  // Performance-optimal schedulers should beat fair ones on mean CCT.
  const Fabric fabric(2, gbps(1.0));
  const auto varys = make_scheduler("varys");
  const auto drf = make_scheduler("drf");
  const RunResult run_v = simulate(fabric, fig3_trace(), *varys);
  const RunResult run_d = simulate(fabric, fig3_trace(), *drf);
  const double avg_v = (run_v.coflows[0].cct + run_v.coflows[1].cct) / 2;
  const double avg_d = (run_d.coflows[0].cct + run_d.coflows[1].cct) / 2;
  EXPECT_LE(avg_v, avg_d + 1e-9);
}

// ----------------------------------------------------------------- Aalo

class AaloQueueSweep
    : public ::testing::TestWithParam<std::tuple<double, double, int>> {};

TEST_P(AaloQueueSweep, QueueStructureIsConsistent) {
  const auto [q0_mb, exchange, queues] = GetParam();
  AaloOptions options;
  options.initial_queue_limit_bits = megabytes(q0_mb);
  options.exchange_rate = exchange;
  options.num_queues = queues;
  AaloScheduler aalo(options);

  // Queue index is monotone in attained service, bounded by K-1, and each
  // queue's upper bound is the next one's lower bound.
  int previous_queue = 0;
  for (double attained = 0.0; attained < megabytes(q0_mb) * 1e6;
       attained = attained * 3.0 + megabytes(0.5)) {
    const int q = aalo.queue_of(attained);
    EXPECT_GE(q, previous_queue);
    EXPECT_LT(q, queues);
    previous_queue = q;
    if (q < queues - 1) {
      EXPECT_LT(attained, aalo.queue_upper_bound(q));
    }
    if (q > 0) {
      EXPECT_GE(attained, aalo.queue_upper_bound(q - 1));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AaloQueueSweep,
    ::testing::Values(std::make_tuple(10.0, 10.0, 10),
                      std::make_tuple(5.0, 2.0, 4),
                      std::make_tuple(1.0, 10.0, 2),
                      std::make_tuple(50.0, 4.0, 6),
                      std::make_tuple(10.0, 10.0, 1)));

TEST(AaloDepth, SingleQueueDegeneratesToFifo) {
  // With K = 1 every coflow shares one queue → pure FIFO by arrival.
  const Fabric fabric(2, gbps(1.0));
  TraceBuilder builder(2);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 1, gigabits(4.0));
  builder.begin_coflow(0.5);
  builder.add_flow(0, 1, gigabits(1.0));
  const Trace trace = builder.build();

  AaloScheduler aalo(AaloOptions{.num_queues = 1, .work_conserving = false});
  const auto fifo = make_scheduler("fifo");
  const RunResult run_a = simulate(fabric, trace, aalo);
  const RunResult run_f = simulate(fabric, trace, *fifo);
  for (std::size_t k = 0; k < trace.coflows.size(); ++k) {
    EXPECT_NEAR(run_a.coflows[k].cct, run_f.coflows[k].cct, 1e-6);
  }
}

// ----------------------------------------------------------------- PS-P

TEST(PspDepth, RedistributionRoundsConvergeTowardFullUse) {
  // On Fig. 3, each extra PS-P round recovers a geometric fraction of the
  // wasted bandwidth: total rate increases monotonically with rounds and
  // approaches the 4/3 Gbps NC-DRF achieves.
  const Fabric fabric(2, gbps(1.0));
  auto snap = snapshot_all_active(fabric, fig3_trace(), false);
  double previous = 0.0;
  for (const int rounds : {0, 1, 3, 8}) {
    PspScheduler psp(
        PspOptions{.work_conserving = rounds > 0, .backfill_rounds = rounds});
    const double total = psp.allocate(snap.input).total_rate();
    EXPECT_GE(total, previous - 1.0);
    previous = total;
  }
  EXPECT_GT(previous, gbps(4.0 / 3.0) * 0.95);
  EXPECT_LE(previous, gbps(4.0 / 3.0) + 1.0);
}

// ------------------------------------------------- stale-count semantics

TEST(StaleCounts, FinishedFlowsKeepTheirShareReserved) {
  // Coflow 0 has 2 flows into machine 1, one already finished; coflow 1
  // has 1 live flow into machine 1. Stale NC-DRF still counts 2 flows for
  // coflow 0 on the downlink (ĉ unchanged), live NC-DRF counts 1.
  const Fabric fabric(3, gbps(1.0));
  TraceBuilder builder(3);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 1, 1e8);
  builder.add_flow(2, 1, 1e8);
  builder.begin_coflow(0.0);
  builder.add_flow(2, 1, 1e8);
  const Trace trace = builder.build();
  auto snap = snapshot_all_active(fabric, trace, false);

  // Mark coflow 0's first flow finished.
  auto& c0 = snap.input.coflows[0];
  c0.finished_flows.push_back(c0.flows.front());
  c0.flows.erase(c0.flows.begin());

  NcDrfScheduler stale(NcDrfOptions{.work_conserving = false,
                                    .count_finished_flows = true});
  NcDrfScheduler live(NcDrfOptions{.work_conserving = false,
                                   .count_finished_flows = false});
  const Allocation a_stale = stale.allocate(snap.input);
  const Allocation a_live = live.allocate(snap.input);

  // Stale: down1 load = ĉ0 (1) + ĉ1 (1) = 2 → P̂* = 0.5; coflow 0's live
  // flow gets P̂*/n̄0 = 0.5/2 = 0.25. Live: coflow 0 counts 1 flow → its
  // flow gets 0.5.
  EXPECT_NEAR(a_stale.rate(c0.flows.front().id), gbps(0.25), 1e3);
  EXPECT_NEAR(a_live.rate(c0.flows.front().id), gbps(0.5), 1e3);
}

TEST(StaleCounts, PspPresenceIncludesFinishedFlows) {
  // Same snapshot for PS-P: with stale counting, coflow 0's downlink split
  // divides its link share by 2 flows; with live counting, by 1.
  const Fabric fabric(3, gbps(1.0));
  TraceBuilder builder(3);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 1, 1e8);
  builder.add_flow(2, 1, 1e8);
  builder.begin_coflow(0.0);
  builder.add_flow(2, 1, 1e8);
  const Trace trace = builder.build();
  auto snap = snapshot_all_active(fabric, trace, false);
  auto& c0 = snap.input.coflows[0];
  c0.finished_flows.push_back(c0.flows.front());
  c0.flows.erase(c0.flows.begin());

  PspScheduler stale(PspOptions{.work_conserving = false,
                                .count_finished_flows = true});
  PspScheduler live(PspOptions{.work_conserving = false,
                               .count_finished_flows = false});
  // Stale: coflow 0 gets 0.5 of down1, split over 2 counted flows → 0.25.
  EXPECT_NEAR(stale.allocate(snap.input).rate(c0.flows.front().id),
              gbps(0.25), 1e3);
  // Live: 0.5 of down1 over 1 flow, still capped by the uplink share.
  EXPECT_NEAR(live.allocate(snap.input).rate(c0.flows.front().id),
              gbps(0.5), 1e3);
}

}  // namespace
}  // namespace ncdrf
