// Soak tier: the serving front-end under *real* concurrency — four
// generator threads replaying seeded open-loop schedules against the wall
// clock into the per-client queues while the server thread steps epochs,
// all on the repo's own runner::ThreadPool. Roughly two seconds of wall
// time; built with TSan in CI (the ctest `soak` label is part of the
// sanitizer job), so the queue/server locking discipline is exercised for
// data races, not just logic.
//
// No timing asserts (wall-clock runs jitter); correctness is conservation:
// every submission a client successfully enqueued is admitted exactly once
// — none lost, none duplicated — verified by ground-truth byte accounting
// against the generator's schedule.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "common/units.h"
#include "core/registry.h"
#include "runner/thread_pool.h"
#include "serve/loadgen.h"
#include "serve/server.h"

namespace ncdrf {
namespace {

using serve::LoadGenerator;
using serve::LoadGenOptions;
using serve::ServeFront;
using serve::ServeOptions;
using serve::Submission;

TEST(ServeSoak, ConcurrentClientsLoseAndDuplicateNothing) {
  constexpr int kClients = 4;
  const int machines = 20;
  const Fabric fabric(machines, gbps(1.0));
  const auto sched = make_scheduler("tcp");

  LoadGenOptions load;
  load.seed = 2026;
  load.num_clients = kClients;
  load.num_machines = machines;
  load.arrival_rate_per_s = 2000.0;
  load.duration_s = 1.5;  // ~2 s wall including drain
  load.mean_lifetime_s = 0.01;
  load.burst_factor = 3.0;
  load.burst_duty = 0.3;
  load.burst_period_s = 0.05;
  const LoadGenerator gen(load);
  const auto schedule = gen.generate();

  ServeOptions options;
  options.epoch_s = 2e-3;
  options.max_batch_per_epoch = 0;  // unbounded: drain whatever arrived
  options.queue_capacity = 1 << 14;
  // Shedding off: conservation accounting needs every accepted submission
  // to surface as an admission (rejects are visible to the client; sheds
  // would vanish server-side).
  options.slowdown_watermark = 1 << 20;
  options.shed_watermark = 1 << 20;
  ServeFront front(fabric, *sched, kClients, options);

  // Ground truth per coflow id, from the generator's schedule.
  std::vector<double> truth_bits;
  for (const auto& client_schedule : schedule) {
    for (const Submission& s : client_schedule) {
      if (static_cast<std::size_t>(s.coflow) >= truth_bits.size()) {
        truth_bits.resize(static_cast<std::size_t>(s.coflow) + 1, -1.0);
      }
      double bits = 0.0;
      for (const Flow& f : s.flows) bits += f.size_bits;
      truth_bits[static_cast<std::size_t>(s.coflow)] = bits;
    }
  }

  // Admission log — touched only by the server task, read after join.
  std::set<CoflowId> admitted_ids;
  std::vector<double> admitted_bits(truth_bits.size(), -1.0);
  long long duplicate_admissions = 0;
  front.admit_hook = [&](const serve::AdmitRecord& r) {
    if (!admitted_ids.insert(r.coflow).second) ++duplicate_admissions;
    admitted_bits[static_cast<std::size_t>(r.coflow)] = r.flow_bits;
  };

  // Per-client slots (index-owned, no sharing between tasks).
  std::vector<long long> accepted_per_client(kClients, 0);
  std::vector<std::vector<CoflowId>> accepted_ids(kClients);
  for (int c = 0; c < kClients; ++c) {
    accepted_ids[static_cast<std::size_t>(c)].reserve(
        schedule[static_cast<std::size_t>(c)].size());
  }

  std::atomic<int> clients_done{0};
  const auto origin = std::chrono::steady_clock::now();
  const auto elapsed = [origin] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         origin)
        .count();
  };

  ThreadPool pool(kClients + 1);
  pool.run(kClients + 1, [&](int task) {
    if (task == 0) {
      // Server: step epochs on the wall clock until every client finished
      // and the backlog drained.
      while (clients_done.load(std::memory_order_acquire) < kClients ||
             front.backlog() > 0) {
        front.step_epoch(elapsed());
        std::this_thread::sleep_for(std::chrono::duration<double>(
            options.epoch_s));
      }
      front.step_epoch(elapsed());  // final sweep
      return;
    }
    const int client = task - 1;
    const auto& mine = schedule[static_cast<std::size_t>(client)];
    // Track acceptance per submission: replay_client_wall's count alone
    // can't say *which* ids got in, so replay manually here.
    for (const Submission& planned : mine) {
      const auto due =
          origin + std::chrono::duration_cast<
                       std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(planned.submit_time));
      std::this_thread::sleep_until(due);
      Submission s = planned;
      s.submit_time = elapsed();
      if (front.queue(client).try_enqueue(std::move(s))) {
        ++accepted_per_client[static_cast<std::size_t>(client)];
        accepted_ids[static_cast<std::size_t>(client)].push_back(
            planned.coflow);
      }
    }
    clients_done.fetch_add(1, std::memory_order_release);
  });

  // Conservation: every accepted submission was admitted exactly once.
  long long accepted_total = 0;
  std::set<CoflowId> accepted_set;
  for (int c = 0; c < kClients; ++c) {
    accepted_total += accepted_per_client[static_cast<std::size_t>(c)];
    for (const CoflowId id : accepted_ids[static_cast<std::size_t>(c)]) {
      EXPECT_TRUE(accepted_set.insert(id).second)
          << "client " << c << " accepted coflow " << id << " twice";
    }
  }
  ASSERT_GT(accepted_total, 0);
  EXPECT_EQ(duplicate_admissions, 0);
  EXPECT_EQ(front.admitted(), accepted_total);
  EXPECT_EQ(front.backlog(), 0u);
  EXPECT_EQ(front.total_shed(), 0);
  EXPECT_EQ(admitted_ids, accepted_set);

  // Byte accounting: every admitted coflow carries exactly the
  // ground-truth bits the generator scheduled for it (its flows crossed
  // the queue intact — nothing truncated, reordered within a submission,
  // or cross-wired between coflows).
  for (const CoflowId id : accepted_set) {
    ASSERT_GE(id, 0);
    ASSERT_LT(static_cast<std::size_t>(id), truth_bits.size());
    EXPECT_DOUBLE_EQ(admitted_bits[static_cast<std::size_t>(id)],
                     truth_bits[static_cast<std::size_t>(id)])
        << "coflow " << id;
  }
  // Rejects (if any) are visible client-side and excluded above; the
  // server never saw them.
  EXPECT_EQ(front.total_rejected(),
            static_cast<long long>(gen.total_coflows()) - accepted_total);
}

}  // namespace
}  // namespace ncdrf
