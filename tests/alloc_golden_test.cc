// Golden equivalence suite for the allocation-kernel refactor: every
// registry policy must allocate identically (within 1e-9 of the capacity
// scale) to its frozen pre-refactor implementation (alloc/legacy.h), on
// bare snapshots AND through the event-driven incremental path, across
// hundreds of seeded random instances. The NC-DRF family — which has no
// legacy twin in alloc/ — is cross-checked against its own from-scratch
// variant ("ncdrf-scratch" / NcDrfOptions{.incremental = false}).
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "alloc/legacy.h"
#include "common/rng.h"
#include "common/units.h"
#include "core/ncdrf.h"
#include "core/registry.h"
#include "obs/perf.h"
#include "sched/aalo.h"
#include "sched/baraat.h"
#include "sched/fifo.h"
#include "sched/scheduler.h"

namespace ncdrf {
namespace {

constexpr int kBareSeeds = 200;
constexpr int kEventSeeds = 40;
constexpr int kEventSteps = 25;

const std::vector<std::string>& legacy_names() {
  static const std::vector<std::string> names = {
      "tcp",  "persource", "perpair", "psp",    "psp-live", "drf",
      "hug",  "aalo",      "varys",   "baraat", "fifo"};
  return names;
}

// A mutable random world: snapshot + remaining sizes, supporting the
// arrival / flow-finish / departure deltas the simulator engine delivers.
class GoldenWorld {
 public:
  explicit GoldenWorld(Rng& rng) : rng_(rng), fabric_(make_fabric(rng)) {
    input_.fabric = &fabric_;
    info_ = std::make_unique<ClairvoyantInfo>(&remaining_);
    input_.clairvoyant = info_.get();
    const int coflows = static_cast<int>(rng_.uniform_int(1, 6));
    for (int k = 0; k < coflows; ++k) add_coflow();
  }

  const Fabric& fabric() const { return fabric_; }
  ScheduleInput& input() {
    input_.total_live_flows = live_flows_;
    return input_;
  }

  // Appends a new coflow view; returns it for the arrival hook.
  const ActiveCoflow& add_coflow() {
    ActiveCoflow view;
    view.id = next_coflow_++;
    view.arrival_time = rng_.uniform(0.0, 100.0);
    view.weight = rng_.bernoulli(0.3) ? rng_.uniform(0.5, 2.0) : 1.0;
    view.attained_bits = rng_.uniform(0.0, 5e8);
    const int flows = static_cast<int>(rng_.uniform_int(1, 8));
    for (int f = 0; f < flows; ++f) {
      const auto src = static_cast<MachineId>(
          rng_.uniform_int(0, fabric_.num_machines() - 1));
      const auto dst = static_cast<MachineId>(
          rng_.uniform_int(0, fabric_.num_machines() - 1));
      view.flows.push_back(ActiveFlow{next_flow_, view.id, src, dst});
      remaining_.push_back(rng_.bernoulli(0.1) ? 0.0
                                               : rng_.uniform(1e6, 1e9));
      ++next_flow_;
      ++live_flows_;
    }
    input_.coflows.push_back(std::move(view));
    return input_.coflows.back();
  }

  bool empty() const { return input_.coflows.empty(); }

  // Finishes one random live flow (moving it to finished_flows) and
  // departs its coflow when it was the last one. Mirrors the engine's
  // hook order: finish first, then departure.
  void finish_random_flow(Scheduler* sched) {
    const auto k = static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(input_.coflows.size()) - 1));
    ActiveCoflow& view = input_.coflows[k];
    const auto f = static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(view.flows.size()) - 1));
    const ActiveFlow finished = view.flows[f];
    view.flows[f] = view.flows.back();
    view.flows.pop_back();
    view.finished_flows.push_back(finished);
    view.attained_bits +=
        remaining_[static_cast<std::size_t>(finished.id)];
    remaining_[static_cast<std::size_t>(finished.id)] = 0.0;
    --live_flows_;
    if (sched != nullptr) sched->on_flow_finish(finished);
    if (view.flows.empty()) {
      const CoflowId id = view.id;
      input_.coflows[k] = std::move(input_.coflows.back());
      input_.coflows.pop_back();
      if (sched != nullptr) sched->on_coflow_departure(id);
    }
  }

  // Background churn the hooks do not track: attained service and
  // remaining sizes drift between events.
  void advance_service() {
    for (ActiveCoflow& view : input_.coflows) {
      double moved = 0.0;
      for (const ActiveFlow& f : view.flows) {
        double& rem = remaining_[static_cast<std::size_t>(f.id)];
        const double delta = rem * rng_.uniform(0.0, 0.5);
        rem -= delta;
        moved += delta;
      }
      view.attained_bits += moved;
    }
  }

 private:
  static Fabric make_fabric(Rng& rng) {
    const int m = static_cast<int>(rng.uniform_int(2, 6));
    if (rng.bernoulli(0.5)) return Fabric(m, gbps(1.0));
    std::vector<double> caps;
    for (int i = 0; i < 2 * m; ++i) {
      caps.push_back(rng.uniform(0.2, 2.0) * gbps(1.0));
    }
    return Fabric(std::move(caps));
  }

  Rng& rng_;
  Fabric fabric_;
  ScheduleInput input_;
  std::vector<double> remaining_;
  std::unique_ptr<ClairvoyantInfo> info_;
  CoflowId next_coflow_ = 0;
  FlowId next_flow_ = 0;
  int live_flows_ = 0;
};

void expect_allocations_match(const ScheduleInput& input,
                              const Allocation& got, const Allocation& want,
                              const std::string& context) {
  double scale = 1.0;
  for (LinkId i = 0; i < input.fabric->num_links(); ++i) {
    scale = std::max(scale, input.fabric->capacity(i));
  }
  for (const ActiveCoflow& coflow : input.coflows) {
    for (const ActiveFlow& f : coflow.flows) {
      const double a = got.rate(f.id);
      const double b = want.rate(f.id);
      const double tol =
          1e-9 * std::max({1.0, scale, std::abs(a), std::abs(b)});
      ASSERT_NEAR(a, b, tol) << context << " flow " << f.id;
    }
  }
}

TEST(AllocGoldenTest, BareSnapshotsMatchLegacyForEveryPolicy) {
  for (const std::string& name : legacy_names()) {
    ASSERT_TRUE(legacy_supports(name)) << name;
    for (int seed = 0; seed < kBareSeeds; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed) * 977u + 13u);
      GoldenWorld world(rng);
      auto sched = make_scheduler(name);
      const Allocation got = sched->allocate(world.input());
      const Allocation want = legacy_allocate(name, world.input());
      expect_allocations_match(world.input(), got, want,
                               name + " seed " + std::to_string(seed));
    }
  }
}

TEST(AllocGoldenTest, EventDrivenMatchesLegacyForEveryPolicy) {
  for (const std::string& name : legacy_names()) {
    for (int seed = 0; seed < kEventSeeds; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed) * 1543u + 29u);
      GoldenWorld world(rng);
      auto sched = make_scheduler(name);
      Scheduler* hooks = sched->wants_events() ? sched.get() : nullptr;
      if (hooks != nullptr) {
        hooks->on_reset(world.fabric());
        for (const ActiveCoflow& view : world.input().coflows) {
          hooks->on_coflow_arrival(view);
        }
      }
      for (int step = 0; step < kEventSteps && !world.empty(); ++step) {
        const Allocation got = sched->allocate(world.input());
        const Allocation want = legacy_allocate(name, world.input());
        expect_allocations_match(world.input(), got, want,
                                 name + " seed " + std::to_string(seed) +
                                     " step " + std::to_string(step));
        // Mutate: mostly completions, some arrivals, constant churn in
        // attained service / remaining sizes.
        world.advance_service();
        if (rng.bernoulli(0.25)) {
          const ActiveCoflow& arrived = world.add_coflow();
          if (hooks != nullptr) hooks->on_coflow_arrival(arrived);
        }
        if (!world.empty() && rng.bernoulli(0.9)) {
          world.finish_random_flow(hooks);
        }
      }
      if (hooks != nullptr) {
        const SchedPerf* perf = sched->perf_counters();
        ASSERT_NE(perf, nullptr) << name;
        EXPECT_GT(perf->incremental_allocs, 0)
            << name << " seed " << seed
            << ": event-driven path never used incrementally";
        EXPECT_EQ(perf->full_rebuilds, 0)
            << name << " seed " << seed
            << ": event-driven run fell back to snapshot rebuilds";
      }
    }
  }
}

// The persistent priority-queue state (PriorityOrder) must make the
// event-driven path *exactly* the rebuild-every-call path: same order,
// same fill, bitwise-identical rates. 50 seeded churn instances per
// priority policy (200 total) with arrivals, finishes, departures and
// attained-service drift (Aalo queue promotions), cross-checked every
// step; the tracked order is additionally audited against the fresh-sort
// oracle (check_consistent) after each resolve.
TEST(AllocGoldenTest, PriorityQueueChurnMatchesRebuildBitwise) {
  const std::vector<std::string> names = {"aalo", "baraat", "fifo", "varys"};
  constexpr int kChurnSeeds = 50;
  for (const std::string& name : names) {
    for (int seed = 0; seed < kChurnSeeds; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed) * 3571u + 41u);
      GoldenWorld world(rng);
      auto incremental = make_scheduler(name);
      auto rebuild = make_scheduler(name);  // never sees an event
      Scheduler* hooks =
          incremental->wants_events() ? incremental.get() : nullptr;
      if (hooks != nullptr) {
        hooks->on_reset(world.fabric());
        for (const ActiveCoflow& view : world.input().coflows) {
          hooks->on_coflow_arrival(view);
        }
      }
      auto* aalo = dynamic_cast<AaloScheduler*>(incremental.get());
      auto* baraat = dynamic_cast<BaraatScheduler*>(incremental.get());
      auto* fifo = dynamic_cast<FifoScheduler*>(incremental.get());
      const auto audit_order = [&]() {
        // After allocate()'s resolve the tracked buckets are current, so
        // the maintained order must equal a fresh sort of the snapshot.
        if (aalo != nullptr) {
          aalo->priority_order().check_consistent(
              world.input(), [&](const ActiveCoflow& c) {
                return aalo->queue_of(c.attained_bits);
              });
        }
        const auto zero_bucket = [](const ActiveCoflow&) { return 0; };
        if (baraat != nullptr) {
          baraat->priority_order().check_consistent(world.input(),
                                                    zero_bucket);
        }
        if (fifo != nullptr) {
          fifo->priority_order().check_consistent(world.input(),
                                                  zero_bucket);
        }
      };
      for (int step = 0; step < kEventSteps && !world.empty(); ++step) {
        const Allocation got = incremental->allocate(world.input());
        const Allocation want = rebuild->allocate(world.input());
        ASSERT_NO_THROW(audit_order())
            << name << " seed " << seed << " step " << step;
        for (const ActiveCoflow& coflow : world.input().coflows) {
          for (const ActiveFlow& f : coflow.flows) {
            ASSERT_EQ(got.rate(f.id), want.rate(f.id))
                << name << " seed " << seed << " step " << step << " flow "
                << f.id;
          }
        }
        world.advance_service();
        if (rng.bernoulli(0.3)) {
          const ActiveCoflow& arrived = world.add_coflow();
          if (hooks != nullptr) hooks->on_coflow_arrival(arrived);
        }
        if (!world.empty() && rng.bernoulli(0.9)) {
          world.finish_random_flow(hooks);
        }
      }
      if (hooks != nullptr) {
        const SchedPerf* perf = incremental->perf_counters();
        ASSERT_NE(perf, nullptr) << name;
        EXPECT_EQ(perf->full_rebuilds, 0)
            << name << " seed " << seed
            << ": churn run fell back to snapshot rebuilds";
      }
    }
  }
}

TEST(AllocGoldenTest, NcDrfFamilyMatchesFromScratchTwin) {
  for (int seed = 0; seed < kBareSeeds; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) * 2221u + 5u);
    GoldenWorld world(rng);
    {
      auto incremental = make_scheduler("ncdrf");
      auto scratch = make_scheduler("ncdrf-scratch");
      expect_allocations_match(
          world.input(), incremental->allocate(world.input()),
          scratch->allocate(world.input()),
          "ncdrf vs ncdrf-scratch seed " + std::to_string(seed));
    }
    {
      auto live = make_scheduler("ncdrf-live");
      NcDrfScheduler live_scratch(NcDrfOptions{
          .count_finished_flows = false, .incremental = false});
      expect_allocations_match(
          world.input(), live->allocate(world.input()),
          live_scratch.allocate(world.input()),
          "ncdrf-live vs scratch twin seed " + std::to_string(seed));
    }
  }
}

}  // namespace
}  // namespace ncdrf
