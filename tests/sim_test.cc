// Simulator tests: analytic single/two-coflow scenarios with closed-form
// CCTs, conservation laws, event accounting, online arrivals, Aalo
// queue-crossing events, and the DRF equal-progress invariant.
#include <gtest/gtest.h>

#include "common/units.h"
#include "core/registry.h"
#include "sched/aalo.h"
#include "sched/drf.h"
#include "sched/perflow.h"
#include "sched/psp.h"
#include "sim/sim.h"
#include "test_util.h"

namespace ncdrf {
namespace {

using testing::fig3_trace;

Trace single_flow_trace(double bits) {
  TraceBuilder builder(2);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 1, bits);
  return builder.build();
}

TEST(Sim, SingleFlowCompletesAtLineRate) {
  const Fabric fabric(2, gbps(1.0));
  const Trace trace = single_flow_trace(gigabits(1.0));
  for (const std::string& name : scheduler_names()) {
    const auto sched = make_scheduler(name);
    const RunResult run = simulate(fabric, trace, *sched);
    ASSERT_EQ(run.coflows.size(), 1u);
    EXPECT_NEAR(run.coflows[0].cct, 1.0, 1e-6) << name;
    EXPECT_NEAR(run.makespan, 1.0, 1e-6) << name;
    EXPECT_NEAR(run.total_bits_delivered, gigabits(1.0), 10.0) << name;
  }
}

TEST(Sim, Fig3CctsUnderDrfMatchPaper) {
  // Fig. 4b: under DRF both coflows finish their 200 Mb bottlenecks at
  // 2/3 Gbps progress → CCT = 0.3 s.
  const Fabric fabric(2, gbps(1.0));
  DrfScheduler drf;
  const RunResult run = simulate(fabric, fig3_trace(), drf);
  EXPECT_NEAR(run.coflows[0].cct, 0.3, 1e-6);
  EXPECT_NEAR(run.coflows[1].cct, 0.3, 1e-6);
}

TEST(Sim, Fig3CctsUnderNcDrfEqualDrf) {
  // Identical flow sizes → NC-DRF behaves exactly like DRF (Sec. IV-B
  // example: "speeding the completion of both coflows by 25%").
  const Fabric fabric(2, gbps(1.0));
  const auto ncdrf = make_scheduler("ncdrf");
  const RunResult run = simulate(fabric, fig3_trace(), *ncdrf);
  EXPECT_NEAR(run.coflows[0].cct, 0.3, 1e-6);
  EXPECT_NEAR(run.coflows[1].cct, 0.3, 1e-6);
}

TEST(Sim, Fig3CctsUnderNonConservingPspMatchFig4a) {
  // Fig. 4a: every flow at 0.25 Gbps → both coflows take 0.4 s.
  const Fabric fabric(2, gbps(1.0));
  PspScheduler psp(PspOptions{.work_conserving = false});
  const RunResult run = simulate(fabric, fig3_trace(), psp);
  EXPECT_NEAR(run.coflows[0].cct, 0.4, 1e-6);
  EXPECT_NEAR(run.coflows[1].cct, 0.4, 1e-6);
}

TEST(Sim, MinCctIsBottleneckAloneTime) {
  const Fabric fabric(2, gbps(1.0));
  DrfScheduler drf;
  const RunResult run = simulate(fabric, fig3_trace(), drf);
  // Both coflows have a 200 Mb bottleneck on a 1 Gbps link → 0.2 s.
  EXPECT_NEAR(run.coflows[0].min_cct, 0.2, 1e-9);
  EXPECT_NEAR(run.coflows[1].min_cct, 0.2, 1e-9);
}

TEST(Sim, OnlineArrivalSharesFromArrivalInstant) {
  // Flow A (1 Gb) starts alone; flow B (1 Gb, same path) arrives at
  // t = 0.5. Under per-flow max-min: A runs at 1 Gbps until 0.5, then both
  // at 0.5 Gbps; A finishes at 1.5 s, then B at 1 Gbps finishes at 2.0 s.
  const Fabric fabric(2, gbps(1.0));
  TraceBuilder builder(2);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 1, gigabits(1.0));
  builder.begin_coflow(0.5);
  builder.add_flow(0, 1, gigabits(1.0));
  const Trace trace = builder.build();
  PerFlowScheduler tcp;
  const RunResult run = simulate(fabric, trace, tcp);
  EXPECT_NEAR(run.coflows[0].completion, 1.5, 1e-6);
  EXPECT_NEAR(run.coflows[1].completion, 2.0, 1e-6);
  EXPECT_NEAR(run.coflows[1].cct, 1.5, 1e-6);
}

TEST(Sim, IdleGapsAreSkipped) {
  const Fabric fabric(2, gbps(1.0));
  TraceBuilder builder(2);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 1, gigabits(1.0));
  builder.begin_coflow(100.0);  // long idle gap after the first finishes
  builder.add_flow(0, 1, gigabits(1.0));
  const Trace trace = builder.build();
  const auto ncdrf = make_scheduler("ncdrf");
  const RunResult run = simulate(fabric, trace, *ncdrf);
  EXPECT_NEAR(run.coflows[0].completion, 1.0, 1e-6);
  EXPECT_NEAR(run.coflows[1].completion, 101.0, 1e-6);
  // No interval covers the idle gap (no active coflows there).
  for (const IntervalRecord& rec : run.intervals) {
    EXPECT_FALSE(rec.t0 >= 1.0 + 1e-9 && rec.t1 <= 100.0 - 1e-9)
        << "interval recorded during idle gap";
  }
}

TEST(Sim, ConservationOfBits) {
  const Fabric fabric(4, gbps(1.0));
  TraceBuilder builder(4);
  for (int c = 0; c < 6; ++c) {
    builder.begin_coflow(0.1 * c);
    for (int f = 0; f <= c; ++f) {
      builder.add_flow(f % 4, (f + c + 1) % 4, megabits(80.0 + 10.0 * f));
    }
  }
  const Trace trace = builder.build();
  for (const std::string& name : scheduler_names()) {
    const auto sched = make_scheduler(name);
    const RunResult run = simulate(fabric, trace, *sched);
    EXPECT_NEAR(run.total_bits_delivered, trace.total_bits(),
                trace.total_bits() * 1e-9)
        << name;
    for (const CoflowRecord& rec : run.coflows) {
      EXPECT_GT(rec.cct, 0.0) << name;
      EXPECT_GE(rec.cct, rec.min_cct - 1e-9) << name;  // physics lower bound
    }
  }
}

TEST(Sim, DrfKeepsEqualProgressAtAllTimes) {
  // Fig. 5a's reference: "the isolation-optimal DRF consistently keeps the
  // coflow progress disparity equal to 1".
  const Fabric fabric(4, gbps(1.0));
  TraceBuilder builder(4);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 1, megabits(100.0));
  builder.add_flow(1, 2, megabits(400.0));
  builder.begin_coflow(0.0);
  builder.add_flow(2, 1, megabits(250.0));
  builder.begin_coflow(0.3);
  builder.add_flow(3, 1, megabits(300.0));
  builder.add_flow(3, 2, megabits(60.0));
  const Trace trace = builder.build();
  DrfScheduler drf;
  const RunResult run = simulate(fabric, trace, drf);
  for (const IntervalRecord& rec : run.intervals) {
    if (rec.active_coflows < 2) continue;
    ASSERT_GT(rec.min_progress, 0.0);
    EXPECT_NEAR(rec.max_progress / rec.min_progress, 1.0, 1e-6);
  }
}

TEST(Sim, DrfOfflineCompletionOrderFollowsBottleneckDemand) {
  // Under DRF all coflows progress equally, so offline they complete in
  // ascending order of bottleneck demand (used in the Theorem 1 proof).
  const Fabric fabric(6, gbps(1.0));
  TraceBuilder builder(6);
  const double sizes[] = {300.0, 80.0, 150.0, 500.0, 40.0};
  for (int c = 0; c < 5; ++c) {
    builder.begin_coflow(0.0);
    builder.add_flow(c % 6, (c + 1) % 6, megabits(sizes[c]));
  }
  const Trace trace = builder.build();
  DrfScheduler drf;
  const RunResult run = simulate(fabric, trace, drf);
  for (std::size_t a = 0; a < run.coflows.size(); ++a) {
    for (std::size_t b = 0; b < run.coflows.size(); ++b) {
      const double da = trace.coflows[a].demand(fabric).bottleneck_demand;
      const double db = trace.coflows[b].demand(fabric).bottleneck_demand;
      if (da < db) {
        EXPECT_LE(run.coflows[a].completion,
                  run.coflows[b].completion + 1e-9);
      }
    }
  }
}

TEST(Sim, AaloPrioritizesShortCoflow) {
  // A tiny coflow arriving alongside a huge one on the same path finishes
  // almost immediately under D-CLAS (the huge one has drained its queue
  // budget); the huge one is delayed — no isolation.
  const Fabric fabric(2, gbps(1.0));
  TraceBuilder builder(2);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 1, megabytes(500.0));
  builder.begin_coflow(1.0);  // huge coflow is already in a lower queue
  builder.add_flow(0, 1, megabytes(5.0));
  const Trace trace = builder.build();
  AaloScheduler aalo;
  const RunResult run = simulate(fabric, trace, aalo);
  // Small coflow: 40 Mb at full rate → 0.04 s.
  EXPECT_NEAR(run.coflows[1].cct, 0.04, 1e-3);
  // Large coflow pays at least the small one's service time on top.
  EXPECT_GT(run.coflows[0].cct, megabytes(500.0) / gbps(1.0));
}

TEST(Sim, AaloQueueCrossingsGenerateEvents) {
  // One long flow and nothing else: reallocations happen at every queue
  // boundary the coflow crosses (10 MB, 100 MB, 1 GB for a 2 GB coflow →
  // at least 3 internal events).
  const Fabric fabric(2, gbps(1.0));
  const Trace trace = single_flow_trace(megabytes(2000.0));
  AaloScheduler aalo;
  const RunResult run = simulate(fabric, trace, aalo);
  EXPECT_GE(run.num_allocations, 4);
  EXPECT_NEAR(run.coflows[0].cct, megabytes(2000.0) / gbps(1.0), 1e-6);
}

TEST(Sim, IntervalsTileTheBusyTimeline) {
  const Fabric fabric(2, gbps(1.0));
  const auto ncdrf = make_scheduler("ncdrf");
  const RunResult run = simulate(fabric, fig3_trace(), *ncdrf);
  ASSERT_FALSE(run.intervals.empty());
  double covered = 0.0;
  for (const IntervalRecord& rec : run.intervals) {
    EXPECT_LT(rec.t0, rec.t1);
    covered += rec.t1 - rec.t0;
  }
  EXPECT_NEAR(covered, run.makespan, 1e-9);
}

TEST(Sim, ProgressTimeseriesCoversActiveCoflows) {
  const Fabric fabric(2, gbps(1.0));
  SimOptions options;
  options.record_progress_timeseries = true;
  const auto ncdrf = make_scheduler("ncdrf");
  const RunResult run = simulate(fabric, fig3_trace(), *ncdrf, options);
  ASSERT_FALSE(run.progress.empty());
  bool saw_a = false;
  bool saw_b = false;
  for (const ProgressSample& s : run.progress) {
    EXPECT_GT(s.progress, 0.0);
    saw_a = saw_a || s.coflow == 0;
    saw_b = saw_b || s.coflow == 1;
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);
}

TEST(Sim, MismatchedFabricThrows) {
  const Fabric fabric(3, gbps(1.0));
  EXPECT_THROW(simulate(fabric, fig3_trace(), *make_scheduler("ncdrf")),
               CheckError);
}

TEST(Sim, ValidateAllocationsOptionPasses) {
  const Fabric fabric(2, gbps(1.0));
  SimOptions options;
  options.validate_allocations = true;
  for (const std::string& name : scheduler_names()) {
    const auto sched = make_scheduler(name);
    EXPECT_NO_THROW(simulate(fabric, fig3_trace(), *sched, options)) << name;
  }
}

}  // namespace
}  // namespace ncdrf
