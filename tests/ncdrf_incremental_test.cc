// Randomized properties of the incremental NC-DRF allocation engine:
//   - event-sequence equivalence: driving the scheduler through its delta
//     hooks (arrival / flow finish / departure) yields the same allocation
//     as a from-scratch allocate() at every step, in both counting modes,
//     with and without backfilling, on heterogeneous fabrics;
//   - full-simulation equivalence: "ncdrf" (incremental) and
//     "ncdrf-scratch" replay identical traces to identical CCTs and event
//     counts;
//   - the debug consistency check (incremental state == recompute_full
//     within 1e-9) stays silent across simulated churn;
//   - the cached backfill variant matches the rescanning one bitwise;
//   - perf counters add up and export as JSON.
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "common/units.h"
#include "core/ncdrf.h"
#include "metrics/export.h"
#include "sched/backfill.h"
#include "sim/sim.h"
#include "trace/synthetic_fb.h"
#include "trace/trace.h"

namespace ncdrf {
namespace {

// Mirrors the property_test generators: random heterogeneous fabric and a
// staggered-arrival online trace.
Fabric random_fabric(Rng& rng, int machines) {
  std::vector<double> capacities;
  capacities.reserve(static_cast<std::size_t>(2 * machines));
  for (int i = 0; i < 2 * machines; ++i) {
    capacities.push_back(rng.uniform(gbps(0.5), gbps(4.0)));
  }
  return Fabric(std::move(capacities));
}

Trace random_online_trace(Rng& rng, int machines, int coflows) {
  TraceBuilder builder(machines);
  for (int c = 0; c < coflows; ++c) {
    builder.begin_coflow(rng.uniform(0.0, 3.0));
    const double base = rng.uniform(megabits(20.0), megabits(300.0));
    const int flows = static_cast<int>(rng.uniform_int(1, 10));
    for (int f = 0; f < flows; ++f) {
      builder.add_flow(
          static_cast<MachineId>(rng.uniform_int(0, machines - 1)),
          static_cast<MachineId>(rng.uniform_int(0, machines - 1)),
          base * rng.uniform(0.2, 5.0));
    }
  }
  return builder.build();
}

// A random ActiveCoflow view (ids supplied by the caller).
ActiveCoflow random_view(Rng& rng, int machines, CoflowId id,
                         FlowId& next_flow) {
  ActiveCoflow view;
  view.id = id;
  view.weight = rng.uniform(0.5, 3.0);
  const int flows = static_cast<int>(rng.uniform_int(1, 10));
  for (int f = 0; f < flows; ++f) {
    view.flows.push_back(ActiveFlow{
        next_flow++, id,
        static_cast<MachineId>(rng.uniform_int(0, machines - 1)),
        static_cast<MachineId>(rng.uniform_int(0, machines - 1))});
  }
  return view;
}

void expect_rates_match(const ScheduleInput& input, const Allocation& got,
                        const Allocation& want) {
  for (const ActiveCoflow& coflow : input.coflows) {
    for (const ActiveFlow& f : coflow.flows) {
      const double w = want.rate(f.id);
      ASSERT_NEAR(got.rate(f.id), w, 1e-9 * std::max(1.0, std::abs(w)))
          << "flow " << f.id << " of coflow " << coflow.id;
    }
  }
}

struct ModeParams {
  bool count_finished_flows;
  bool work_conserving;
};

class IncrementalEventEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(IncrementalEventEquivalence, MatchesFromScratchAtEveryEvent) {
  const auto [seed, mode] = GetParam();
  const ModeParams modes[] = {{true, true},
                              {true, false},
                              {false, true},
                              {false, false}};
  const ModeParams m = modes[mode];
  Rng rng(static_cast<std::uint64_t>(seed) * 4 +
          static_cast<std::uint64_t>(mode) + 90'000);
  const int machines = 6;
  const Fabric fabric = random_fabric(rng, machines);

  NcDrfScheduler incremental(
      NcDrfOptions{.work_conserving = m.work_conserving,
                   .count_finished_flows = m.count_finished_flows,
                   .incremental = true,
                   .verify_incremental = true});
  NcDrfScheduler scratch(
      NcDrfOptions{.work_conserving = m.work_conserving,
                   .count_finished_flows = m.count_finished_flows,
                   .incremental = false});

  ScheduleInput input;
  input.fabric = &fabric;
  incremental.on_reset(fabric);

  FlowId next_flow = 0;
  CoflowId next_coflow = 0;
  for (int event = 0; event < 160; ++event) {
    const int kind = input.coflows.empty()
                         ? 0
                         : static_cast<int>(rng.uniform_int(0, 2));
    if (kind == 0) {  // arrival
      input.coflows.push_back(
          random_view(rng, machines, next_coflow++, next_flow));
      incremental.on_coflow_arrival(input.coflows.back());
    } else {
      const auto k = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<int>(input.coflows.size()) - 1));
      ActiveCoflow& coflow = input.coflows[k];
      if (kind == 1 && coflow.flows.size() > 1) {  // one flow finishes
        const auto f = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<int>(coflow.flows.size()) - 1));
        const ActiveFlow finished = coflow.flows[f];
        coflow.flows.erase(coflow.flows.begin() +
                           static_cast<std::ptrdiff_t>(f));
        coflow.finished_flows.push_back(finished);
        incremental.on_flow_finish(finished);
      } else {  // departure
        if (coflow.flows.size() == 1) {
          // Engine-style: the last flow finishes, then the coflow leaves.
          const ActiveFlow finished = coflow.flows.back();
          coflow.flows.pop_back();
          incremental.on_flow_finish(finished);
        }
        incremental.on_coflow_departure(coflow.id);
        if (k + 1 != input.coflows.size()) {
          input.coflows[k] = std::move(input.coflows.back());
        }
        input.coflows.pop_back();
      }
    }

    const Allocation inc = incremental.allocate(input);
    const Allocation ref = scratch.allocate(input);
    expect_rates_match(input, inc, ref);
  }
  // Every allocate after the first hooks must have been served
  // incrementally (the consistency check ran on each).
  EXPECT_EQ(incremental.perf().full_rebuilds, 0);
  EXPECT_EQ(incremental.perf().incremental_allocs,
            incremental.perf().allocate_calls);
  EXPECT_EQ(incremental.perf().consistency_checks,
            incremental.perf().allocate_calls);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, IncrementalEventEquivalence,
    ::testing::Combine(::testing::Range(0, 8), ::testing::Range(0, 4)));

class IncrementalSimulationProperty : public ::testing::TestWithParam<int> {
};

TEST_P(IncrementalSimulationProperty, MatchesFromScratchOverFullRuns) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 70'000);
  const Fabric fabric = random_fabric(rng, 8);
  const Trace trace = random_online_trace(rng, 8, 14);

  NcDrfScheduler incremental(NcDrfOptions{.verify_incremental = true});
  NcDrfScheduler scratch(NcDrfOptions{.incremental = false});
  const RunResult run_inc = simulate(fabric, trace, incremental);
  const RunResult run_ref = simulate(fabric, trace, scratch);

  ASSERT_EQ(run_inc.coflows.size(), run_ref.coflows.size());
  EXPECT_EQ(run_inc.num_events, run_ref.num_events);
  for (std::size_t k = 0; k < run_inc.coflows.size(); ++k) {
    EXPECT_NEAR(run_inc.coflows[k].cct, run_ref.coflows[k].cct,
                run_ref.coflows[k].cct * 1e-9)
        << "coflow " << k;
  }
  // The engine delivered deltas, so every allocate but at most the first
  // per epoch came from the incremental path.
  EXPECT_GT(incremental.perf().incremental_allocs, 0);
  EXPECT_EQ(incremental.perf().full_rebuilds, 0);
  EXPECT_EQ(incremental.perf().allocate_calls, run_inc.num_allocations);
  EXPECT_GT(incremental.perf().events(), 0);
  EXPECT_EQ(scratch.perf().incremental_allocs, 0);
  EXPECT_EQ(scratch.perf().full_rebuilds, run_ref.num_allocations);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalSimulationProperty,
                         ::testing::Range(0, 10));

TEST(IncrementalSimulation, ConsistencyHoldsOnFbTwinChurn) {
  // A slice of the FB-like workload with verification forced on: every
  // event-driven allocate cross-checks state against recompute_full().
  SyntheticFbOptions options;
  options.num_coflows = 80;
  options.duration_s = 30.0;
  options.max_flows_per_coflow = 60;
  const Trace trace = generate_synthetic_fb(options);
  const Fabric fabric(options.num_racks, gbps(1.0));

  for (const bool stale : {true, false}) {
    NcDrfScheduler scheduler(
        NcDrfOptions{.count_finished_flows = stale,
                     .verify_incremental = true});
    const RunResult run = simulate(fabric, trace, scheduler);
    EXPECT_NEAR(run.total_bits_delivered, trace.total_bits(),
                trace.total_bits() * 1e-6);
    EXPECT_EQ(scheduler.perf().consistency_checks,
              scheduler.perf().incremental_allocs);
    EXPECT_GT(scheduler.perf().links_touched, 0);
  }
}

TEST(IncrementalState, FallsBackWhenSnapshotDiverges) {
  // A scheduler that committed to events must still serve any unrelated
  // snapshot correctly — via rebuild, not wrong rates or a throw.
  const Fabric fabric(4, gbps(1.0));
  NcDrfScheduler scheduler;
  scheduler.on_reset(fabric);

  ScheduleInput input;
  input.fabric = &fabric;
  ActiveCoflow view;
  view.id = 7;
  view.flows.push_back(ActiveFlow{0, 7, 0, 1});
  view.flows.push_back(ActiveFlow{1, 7, 2, 3});
  input.coflows.push_back(view);  // never announced via on_coflow_arrival

  const Allocation alloc = scheduler.allocate(input);
  EXPECT_GT(alloc.rate(0), 0.0);
  EXPECT_GT(alloc.rate(1), 0.0);
  EXPECT_EQ(scheduler.perf().full_rebuilds, 1);
  EXPECT_EQ(scheduler.perf().incremental_allocs, 0);
}

TEST(BackfillCached, MatchesRescanningVariant) {
  Rng rng(123);
  const Fabric fabric = random_fabric(rng, 5);
  const Trace trace = random_online_trace(rng, 5, 9);

  ScheduleInput input;
  input.fabric = &fabric;
  for (const Coflow& coflow : trace.coflows) {
    ActiveCoflow view;
    view.id = coflow.id();
    for (const Flow& f : coflow.flows()) {
      view.flows.push_back(ActiveFlow{f.id, f.coflow, f.src, f.dst});
    }
    input.coflows.push_back(std::move(view));
  }

  for (const int rounds : {1, 3}) {
    Allocation plain;   // backfill from an empty base allocation
    Allocation cached;
    even_backfill(input, plain, rounds);

    const std::vector<int> counts = link_flow_counts(input);
    std::vector<double> residual = link_usage(input, cached);
    for (LinkId i = 0; i < fabric.num_links(); ++i) {
      const auto idx = static_cast<std::size_t>(i);
      residual[idx] = fabric.capacity(i) - residual[idx];
    }
    even_backfill_cached(input, cached, rounds, counts, residual);

    for (const ActiveCoflow& coflow : input.coflows) {
      for (const ActiveFlow& f : coflow.flows) {
        EXPECT_DOUBLE_EQ(cached.rate(f.id), plain.rate(f.id))
            << "rounds " << rounds << " flow " << f.id;
      }
    }
  }
}

TEST(SchedPerfCounters, AccumulateAndExportJson) {
  SchedPerf perf;
  perf.allocate_calls = 3;
  perf.incremental_allocs = 2;
  perf.full_rebuilds = 1;
  perf.arrival_events = 4;
  perf.flow_finish_events = 5;
  perf.departure_events = 6;
  perf.links_touched = 7;
  perf.allocate_seconds = 0.25;
  EXPECT_EQ(perf.events(), 15);

  SchedPerf sum;
  sum += perf;
  sum += perf;
  EXPECT_EQ(sum.allocate_calls, 6);
  EXPECT_EQ(sum.links_touched, 14);
  EXPECT_DOUBLE_EQ(sum.allocate_seconds, 0.5);

  std::ostringstream out;
  write_perf_json(out, perf, "ncdrf", "unit");
  const std::string json = out.str();
  EXPECT_NE(json.find("\"scheduler\":\"ncdrf\""), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"allocate_calls\":3"), std::string::npos);
  EXPECT_NE(json.find("\"links_touched\":7"), std::string::npos);
  EXPECT_NE(json.find("\"allocate_seconds\":0.25"), std::string::npos);

  sum.reset();
  EXPECT_EQ(sum.allocate_calls, 0);
  EXPECT_EQ(sum.events(), 0);
}

TEST(SchedPerfCounters, TimerAccumulatesWallClock) {
  NcDrfScheduler scheduler;
  const Fabric fabric(3, gbps(1.0));
  ScheduleInput input;
  input.fabric = &fabric;
  ActiveCoflow view;
  view.id = 0;
  view.flows.push_back(ActiveFlow{0, 0, 0, 1});
  input.coflows.push_back(view);
  for (int i = 0; i < 50; ++i) scheduler.allocate(input);
  EXPECT_EQ(scheduler.perf().allocate_calls, 50);
  EXPECT_GT(scheduler.perf().allocate_seconds, 0.0);
}

}  // namespace
}  // namespace ncdrf
