// Scenario-spine tests (src/scenario/): strategic-tenant transformer
// contracts (determinism per seed, ground-truth byte conservation),
// ScenarioSpec JSON round-trips, the one-id-assignment-path regression
// between LoadGenerator schedules and materialized traces, cross-plane
// CCT equivalence (run_on_sim vs the event-aligned run_on_serve driver),
// karma's allocation invariants over the seeded property workloads, and
// the incentive headline: karma beats NC-DRF against the flow-splitter.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/units.h"
#include "core/registry.h"
#include "scenario/eval.h"
#include "scenario/source.h"
#include "scenario/spec.h"
#include "scenario/strategy.h"
#include "serve/loadgen.h"
#include "test_util.h"

namespace ncdrf {
namespace {

using scenario::ScenarioRun;
using scenario::ScenarioSpec;
using scenario::StrategySpec;
using scenario::TransformedWorkload;
using serve::LoadGenerator;
using serve::LoadGenOptions;
using serve::Submission;

LoadGenOptions small_workload(std::uint64_t seed) {
  LoadGenOptions load;
  load.seed = seed;
  load.num_clients = 3;
  load.num_machines = 6;
  load.arrival_rate_per_s = 40.0;
  load.duration_s = 0.5;
  load.min_flows_per_coflow = 1;
  load.max_flows_per_coflow = 4;
  load.mean_flow_bits = 4e6;
  load.mean_lifetime_s = 0.0;  // completion-driven retirement everywhere
  return load;
}

ScenarioSpec small_spec(const std::string& policy, std::uint64_t seed = 11) {
  ScenarioSpec spec;
  spec.name = "scenario-test";
  spec.policy = policy;
  spec.link_gbps = 1.0;
  spec.workload = small_workload(seed);
  return spec;
}

double total_bits(const std::vector<Submission>& schedule) {
  double bits = 0.0;
  for (const Submission& s : schedule) {
    for (const Flow& f : s.flows) bits += f.size_bits;
  }
  return bits;
}

void expect_identical_streams(const TransformedWorkload& a,
                              const TransformedWorkload& b,
                              const std::string& context) {
  ASSERT_EQ(a.per_client.size(), b.per_client.size()) << context;
  for (std::size_t c = 0; c < a.per_client.size(); ++c) {
    ASSERT_EQ(a.per_client[c].size(), b.per_client[c].size())
        << context << " client " << c;
    for (std::size_t i = 0; i < a.per_client[c].size(); ++i) {
      const Submission& x = a.per_client[c][i];
      const Submission& y = b.per_client[c][i];
      EXPECT_EQ(x.coflow, y.coflow) << context;
      EXPECT_EQ(x.submit_time, y.submit_time) << context;
      ASSERT_EQ(x.flows.size(), y.flows.size()) << context;
      for (std::size_t f = 0; f < x.flows.size(); ++f) {
        EXPECT_EQ(x.flows[f].id, y.flows[f].id) << context;
        EXPECT_EQ(x.flows[f].src, y.flows[f].src) << context;
        EXPECT_EQ(x.flows[f].dst, y.flows[f].dst) << context;
        EXPECT_EQ(x.flows[f].size_bits, y.flows[f].size_bits) << context;
      }
    }
  }
  EXPECT_EQ(a.derived, b.derived) << context;
}

// -------------------------------------------------------------------
// Tenant strategies: deterministic per seed, byte-conserving, and
// time-order preserving for every kind.
// -------------------------------------------------------------------

TEST(TenantStrategies, DeterministicPerSeedAndByteConserving) {
  const auto honest = LoadGenerator(small_workload(21)).generate();
  for (const std::string kind :
       {"honest", "flow-splitter", "demand-inflator", "dust-padder",
        "on-off-hoarder"}) {
    StrategySpec sspec;
    sspec.kind = kind;
    sspec.seed = 5;
    const auto strategy_a = scenario::make_strategy(sspec);
    const auto strategy_b = scenario::make_strategy(sspec);
    std::vector<scenario::TenantStrategy*> slots_a{strategy_a.get(), nullptr,
                                                   strategy_a.get()};
    std::vector<scenario::TenantStrategy*> slots_b{strategy_b.get(), nullptr,
                                                   strategy_b.get()};
    const TransformedWorkload first =
        scenario::apply_strategies(honest, slots_a, 6);
    const TransformedWorkload second =
        scenario::apply_strategies(honest, slots_b, 6);
    expect_identical_streams(first, second, kind + " across instances");
    // reset() must restore seeded state: the same instance replays
    // identically on a second application.
    const TransformedWorkload third =
        scenario::apply_strategies(honest, slots_a, 6);
    expect_identical_streams(first, third, kind + " across replays");

    for (std::size_t c = 0; c < honest.size(); ++c) {
      EXPECT_NEAR(total_bits(first.per_client[c]), total_bits(honest[c]),
                  total_bits(honest[c]) * 1e-9)
          << kind << " client " << c << " does not conserve bytes";
      for (std::size_t i = 1; i < first.per_client[c].size(); ++i) {
        EXPECT_GE(first.per_client[c][i].submit_time,
                  first.per_client[c][i - 1].submit_time)
            << kind << " broke time order";
      }
    }
    // Derived sets partition the transformed stream: every honest
    // submission maps to >= 1 coflow and ids are globally dense.
    std::set<CoflowId> seen;
    for (std::size_t c = 0; c < honest.size(); ++c) {
      ASSERT_EQ(first.derived[c].size(), honest[c].size()) << kind;
      for (const auto& ids : first.derived[c]) {
        EXPECT_FALSE(ids.empty()) << kind;
        for (const CoflowId id : ids) EXPECT_TRUE(seen.insert(id).second);
      }
    }
    std::size_t transformed_total = 0;
    for (const auto& sched : first.per_client) {
      transformed_total += sched.size();
    }
    EXPECT_EQ(seen.size(), transformed_total) << kind;
    EXPECT_EQ(*seen.rbegin(), static_cast<CoflowId>(seen.size() - 1)) << kind;
  }
}

TEST(TenantStrategies, FlowSplitterMultipliesCoflows) {
  const auto honest = LoadGenerator(small_workload(22)).generate();
  StrategySpec sspec;
  sspec.kind = "flow-splitter";
  sspec.k = 3;
  const auto strategy = scenario::make_strategy(sspec);
  std::vector<scenario::TenantStrategy*> slots{strategy.get(), nullptr,
                                               nullptr};
  const TransformedWorkload out = scenario::apply_strategies(honest, slots, 6);
  EXPECT_EQ(out.per_client[0].size(), 3 * honest[0].size());
  for (const auto& ids : out.derived[0]) EXPECT_EQ(ids.size(), 3u);
  EXPECT_EQ(out.per_client[1].size(), honest[1].size());
}

TEST(TenantStrategies, DustPadderWidensEndpointFootprint) {
  const auto honest = LoadGenerator(small_workload(23)).generate();
  StrategySpec sspec;
  sspec.kind = "dust-padder";
  sspec.pad = 3;
  const auto strategy = scenario::make_strategy(sspec);
  std::vector<scenario::TenantStrategy*> slots{strategy.get(), nullptr,
                                               nullptr};
  const TransformedWorkload out = scenario::apply_strategies(honest, slots, 6);
  bool widened = false;
  for (std::size_t i = 0; i < honest[0].size(); ++i) {
    std::set<MachineId> before;
    for (const Flow& f : honest[0][i].flows) before.insert(f.src);
    std::set<MachineId> after;
    for (const Flow& f : out.per_client[0][i].flows) after.insert(f.src);
    EXPECT_GE(after.size(), before.size());
    if (after.size() > before.size()) widened = true;
  }
  EXPECT_TRUE(widened) << "padding never reached a fresh source machine";
}

// -------------------------------------------------------------------
// ScenarioSpec JSON: parse(to_json(spec)) is an identity, including the
// strategy map and the fault plan.
// -------------------------------------------------------------------

TEST(ScenarioSpecJson, RoundTripsExactly) {
  ScenarioSpec spec = small_spec("karma", 0x9e3779b97f4a7c15ull);
  spec.name = "round \"trip\"";  // exercises string escaping
  spec.link_gbps = 0.125;
  spec.workload.flow_size_sigma = 1.75;
  spec.workload.burst_factor = 3.0;
  spec.workload.sizes_known = true;
  StrategySpec splitter;
  splitter.kind = "flow-splitter";
  splitter.k = 7;
  spec.strategies[0] = splitter;
  StrategySpec padder;
  padder.kind = "dust-padder";
  padder.pad = 2;
  padder.dust_bits = 1.5e3;
  padder.seed = 99;
  spec.strategies[2] = padder;
  spec.faults.crash_slave(0.25, 3)
      .restart_slave(0.5, 3)
      .crash_master(1.0)
      .restart_master(1.25)
      .partition(1.5, 2.0, 1)
      .loss_burst(2.5, 3.0, 0.375);

  const std::string json = to_json(spec);
  const ScenarioSpec parsed = scenario::parse_scenario(json);
  EXPECT_EQ(to_json(parsed), json);

  EXPECT_EQ(parsed.name, spec.name);
  EXPECT_EQ(parsed.policy, "karma");
  EXPECT_EQ(parsed.link_gbps, 0.125);
  EXPECT_EQ(parsed.workload.seed, spec.workload.seed);
  EXPECT_EQ(parsed.workload.flow_size_sigma, 1.75);
  EXPECT_TRUE(parsed.workload.sizes_known);
  ASSERT_EQ(parsed.strategies.size(), 2u);
  EXPECT_EQ(parsed.strategies.at(0).k, 7);
  EXPECT_EQ(parsed.strategies.at(2).dust_bits, 1.5e3);
  EXPECT_EQ(parsed.strategies.at(2).seed, 99u);
  ASSERT_EQ(parsed.faults.events().size(), spec.faults.events().size());
  for (std::size_t i = 0; i < spec.faults.events().size(); ++i) {
    EXPECT_EQ(parsed.faults.events()[i].kind, spec.faults.events()[i].kind);
    EXPECT_EQ(parsed.faults.events()[i].time, spec.faults.events()[i].time);
    EXPECT_EQ(parsed.faults.events()[i].machine,
              spec.faults.events()[i].machine);
  }
}

TEST(ScenarioSpecJson, RejectsUnknownKeys) {
  EXPECT_THROW(scenario::parse_scenario("{\"policy\": \"ncdrf\", "
                                        "\"polciy\": \"typo\"}"),
               CheckError);
  EXPECT_THROW(scenario::parse_scenario("{\"faults\": [{\"kind\": "
                                        "\"warp_core_breach\"}]}"),
               CheckError);
}

// -------------------------------------------------------------------
// One id-assignment path: a LoadGenerator schedule, its as_trace()
// materialization, and a second materialization of the same schedule all
// carry byte-identical ids, times and sizes.
// -------------------------------------------------------------------

TEST(WorkloadSourceSpine, LoadGenScheduleAndTraceShareIds) {
  LoadGenOptions load = small_workload(31);
  load.num_clients = 4;
  const LoadGenerator gen(load);
  const auto schedule = gen.generate();
  const Trace trace = gen.as_trace();

  scenario::VectorSource source(schedule, load.num_machines);
  const Trace again = scenario::materialize(source);

  ASSERT_EQ(trace.coflows.size(), again.coflows.size());
  EXPECT_EQ(trace.total_flows, again.total_flows);
  EXPECT_EQ(trace.num_machines, again.num_machines);
  std::size_t scheduled = 0;
  for (const auto& sched : schedule) scheduled += sched.size();
  ASSERT_EQ(trace.coflows.size(), scheduled);

  // Trace vs trace: byte-identical.
  for (std::size_t i = 0; i < trace.coflows.size(); ++i) {
    const Coflow& a = trace.coflows[i];
    const Coflow& b = again.coflows[i];
    EXPECT_EQ(a.id(), b.id());
    EXPECT_EQ(a.arrival_time(), b.arrival_time());
    EXPECT_EQ(a.tenant(), b.tenant());
    ASSERT_EQ(a.flows().size(), b.flows().size());
    for (std::size_t f = 0; f < a.flows().size(); ++f) {
      EXPECT_EQ(a.flows()[f].id, b.flows()[f].id);
      EXPECT_EQ(a.flows()[f].src, b.flows()[f].src);
      EXPECT_EQ(a.flows()[f].dst, b.flows()[f].dst);
      EXPECT_EQ(a.flows()[f].size_bits, b.flows()[f].size_bits);
    }
  }

  // Schedule vs trace: same ids in the same global order.
  for (const auto& sched : schedule) {
    for (const Submission& s : sched) {
      const Coflow& c = trace.coflows[static_cast<std::size_t>(s.coflow)];
      EXPECT_EQ(c.id(), s.coflow);
      EXPECT_EQ(c.arrival_time(), s.submit_time);
      EXPECT_EQ(c.tenant(), s.client);
      ASSERT_EQ(c.flows().size(), s.flows.size());
      for (std::size_t f = 0; f < s.flows.size(); ++f) {
        EXPECT_EQ(c.flows()[f].id, s.flows[f].id);
        EXPECT_EQ(c.flows()[f].size_bits, s.flows[f].size_bits);
      }
    }
  }
}

TEST(WorkloadSourceSpine, TraceSourceRoundTripsATrace) {
  const Trace trace = LoadGenerator(small_workload(32)).as_trace();
  scenario::TraceSource source(&trace);
  const Trace round = scenario::materialize(source);
  ASSERT_EQ(round.coflows.size(), trace.coflows.size());
  for (std::size_t i = 0; i < trace.coflows.size(); ++i) {
    EXPECT_EQ(round.coflows[i].id(), trace.coflows[i].id());
    EXPECT_EQ(round.coflows[i].arrival_time(),
              trace.coflows[i].arrival_time());
    ASSERT_EQ(round.coflows[i].flows().size(),
              trace.coflows[i].flows().size());
  }
}

// -------------------------------------------------------------------
// Cross-plane equivalence: the same ScenarioSpec produces the same CCTs
// on the event-driven simulator and the event-aligned serve driver.
// Policies whose allocations are a pure function of the view match to
// float-noise; heartbeat-fed clairvoyant policies accumulate attained
// bits differently and get the looser (existing) tolerance. Policies
// with internal events (aalo's epoch ladder, baraat's counters) are not
// representable on the serve plane's arrival/finish event grid.
// -------------------------------------------------------------------

void expect_cct_equivalence(const ScenarioSpec& spec, double rel_tolerance) {
  const ScenarioRun sim = scenario::run_on_sim(spec);
  const ScenarioRun serve = scenario::run_on_serve(spec);
  ASSERT_EQ(sim.result.coflows.size(), serve.result.coflows.size())
      << spec.policy;
  for (std::size_t i = 0; i < sim.result.coflows.size(); ++i) {
    const CoflowRecord& a = sim.result.coflows[i];
    const CoflowRecord& b = serve.result.coflows[i];
    EXPECT_EQ(a.id, b.id) << spec.policy;
    EXPECT_EQ(a.arrival, b.arrival) << spec.policy;
    EXPECT_NEAR(a.cct, b.cct, rel_tolerance * (1.0 + a.cct))
        << spec.policy << " coflow " << a.id;
  }
  EXPECT_NEAR(sim.result.total_bits_delivered,
              serve.result.total_bits_delivered,
              sim.result.total_bits_delivered * 1e-6)
      << spec.policy;
}

TEST(CrossPlaneEquivalence, ViewPurePoliciesMatchTightly) {
  for (const std::string policy :
       {"tcp", "perpair", "persource", "psp", "ncdrf", "fifo", "karma"}) {
    expect_cct_equivalence(small_spec(policy), 1e-9);
  }
}

TEST(CrossPlaneEquivalence, HeartbeatFedPoliciesMatchLoosely) {
  for (const std::string policy : {"drf", "hug", "varys"}) {
    expect_cct_equivalence(small_spec(policy), 1e-6);
  }
}

TEST(CrossPlaneEquivalence, HoldsUnderStrategicTenants) {
  for (const std::string policy : {"ncdrf", "karma"}) {
    ScenarioSpec spec = small_spec(policy, 12);
    StrategySpec splitter;
    splitter.kind = "flow-splitter";
    spec.strategies[0] = splitter;
    StrategySpec padder;
    padder.kind = "dust-padder";
    spec.strategies[1] = padder;
    expect_cct_equivalence(spec, 1e-9);
  }
}

TEST(CrossPlaneEquivalence, DeploymentRunsTheSameSpec) {
  ScenarioSpec spec = small_spec("ncdrf", 13);
  spec.faults.crash_slave(0.2, 2).restart_slave(0.3, 2);
  DeploymentOptions options;
  options.tick_s = 0.005;
  const DeploymentResult result = scenario::run_on_deployment(spec, options);
  const ScenarioRun sim = scenario::run_on_sim(spec);
  ASSERT_EQ(result.coflows.size(), sim.result.coflows.size());
  EXPECT_EQ(result.fault_counters.slave_crashes, 1);
  for (const CoflowRecord& rec : result.coflows) {
    EXPECT_GT(rec.completion, 0.0);
  }
}

// -------------------------------------------------------------------
// Karma: allocation invariants over the seeded property workloads, and
// the incentive headline against the flow-splitter.
// -------------------------------------------------------------------

class KarmaInvariants : public ::testing::TestWithParam<int> {};

TEST_P(KarmaInvariants, FeasibleNonNegativeWorkConserving) {
  LoadGenOptions load = small_workload(
      static_cast<std::uint64_t>(GetParam()) + 90'000);
  load.num_clients = 4;
  const Trace trace = LoadGenerator(load).as_trace();
  const Fabric fabric(load.num_machines, gbps(1.0));
  const auto scheduler = make_scheduler("karma");
  testing::Snapshot snap =
      testing::snapshot_all_active(fabric, trace, scheduler->clairvoyant());
  const Allocation alloc = scheduler->allocate(snap.input);
  testing::expect_allocation_invariants(
      snap.input, alloc, "karma seed " + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, KarmaInvariants, ::testing::Range(0, 50));

double splitter_gain(const std::string& policy) {
  ScenarioSpec spec;
  spec.policy = policy;
  spec.link_gbps = 1.0;
  spec.workload.seed = 7;
  spec.workload.num_clients = 4;
  spec.workload.num_machines = 8;
  spec.workload.arrival_rate_per_s = 60.0;
  spec.workload.duration_s = 1.0;
  spec.workload.min_flows_per_coflow = 1;
  spec.workload.max_flows_per_coflow = 4;
  spec.workload.mean_flow_bits = 2e7;  // contended: splitting can pay off
  spec.workload.mean_lifetime_s = 0.0;
  const ScenarioRun honest = scenario::run_on_sim(spec);
  StrategySpec splitter;
  splitter.kind = "flow-splitter";
  spec.strategies[0] = splitter;
  const ScenarioRun strategic = scenario::run_on_sim(spec);
  const double honest_cct = scenario::mean_derived_cct(
      honest.result, honest.workload.honest[0],
      honest.workload.transformed.derived[0]);
  const double strategic_cct = scenario::mean_derived_cct(
      strategic.result, strategic.workload.honest[0],
      strategic.workload.transformed.derived[0]);
  EXPECT_GT(strategic_cct, 0.0) << policy;
  return honest_cct / strategic_cct;
}

TEST(KarmaIncentives, BeatsNcdrfAgainstTheFlowSplitter) {
  const double karma_gain = splitter_gain("karma");
  const double ncdrf_gain = splitter_gain("ncdrf");
  // The CI floor (tools/bench_gaming_report.py) gates the same cell.
  EXPECT_LE(karma_gain, 1.05);
  EXPECT_LT(karma_gain, ncdrf_gain);
  EXPECT_GT(ncdrf_gain, 1.05)
      << "workload no longer contended enough to reward splitting — the "
         "comparison is vacuous";
}

}  // namespace
}  // namespace ncdrf
