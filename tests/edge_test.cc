// Edge cases across modules: simulator guards, serialization of
// non-uniform traces, zero-work options, and summary-statistics corners.
#include <gtest/gtest.h>

#include "common/stats.h"
#include "common/units.h"
#include "core/registry.h"
#include "sim/engine.h"
#include "sim/sim.h"
#include "test_util.h"
#include "trace/benchmark_format.h"
#include "trace/synthetic_fb.h"

namespace ncdrf {
namespace {

using testing::fig3_trace;

TEST(Edge, SimTimeLimitGuards) {
  const Fabric fabric(2, gbps(1.0));
  TraceBuilder builder(2);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 1, gigabits(100.0));  // needs 100 s
  const Trace trace = builder.build();
  SimOptions options;
  options.max_time_s = 10.0;
  const auto sched = make_scheduler("ncdrf");
  EXPECT_THROW(simulate(fabric, trace, *sched, options), CheckError);
}

TEST(Edge, RecordingFlagsControlOutputs) {
  const Fabric fabric(2, gbps(1.0));
  SimOptions options;
  options.record_intervals = false;
  options.record_progress_timeseries = false;
  const auto sched = make_scheduler("ncdrf");
  const RunResult run = simulate(fabric, fig3_trace(), *sched, options);
  EXPECT_TRUE(run.intervals.empty());
  EXPECT_TRUE(run.progress.empty());
  EXPECT_GT(run.coflows[0].cct, 0.0);  // results still complete
}

TEST(Edge, TakeResultRefusesUndrainedEngine) {
  const Fabric fabric(2, gbps(1.0));
  const auto sched = make_scheduler("ncdrf");
  DynamicSimulator engine(fabric, *sched);
  std::vector<Flow> flows{{0, 0, 0, 1, 1e6}};
  engine.submit(Coflow(0, 0.0, std::move(flows)));
  EXPECT_THROW(engine.take_result(), CheckError);  // not run yet
  engine.run();
  EXPECT_NO_THROW(engine.take_result());
}

TEST(Edge, InvalidSimOptionsThrow) {
  const Fabric fabric(2, gbps(1.0));
  SimOptions options;
  options.completion_epsilon_bits = 0.0;
  const auto sched = make_scheduler("ncdrf");
  EXPECT_THROW(simulate(fabric, fig3_trace(), *sched, options), CheckError);
}

TEST(Edge, SerializePreservesCoflowTotalsForSkewedTraces) {
  // serialize() aggregates per-reducer totals; parsing splits them evenly
  // across mappers. Per-flow sizes may change for skewed coflows, but
  // per-coflow totals, shapes and arrivals survive.
  SyntheticFbOptions options;
  options.num_coflows = 30;
  options.num_racks = 12;
  options.duration_s = 60.0;
  options.max_flows_per_coflow = 60;
  const Trace original = generate_synthetic_fb(options);
  const Trace reparsed =
      parse_benchmark_trace_string(serialize_benchmark_trace(original));
  ASSERT_EQ(reparsed.coflows.size(), original.coflows.size());
  for (std::size_t k = 0; k < original.coflows.size(); ++k) {
    EXPECT_EQ(reparsed.coflows[k].width(), original.coflows[k].width());
    EXPECT_NEAR(reparsed.coflows[k].total_bits(),
                original.coflows[k].total_bits(),
                original.coflows[k].total_bits() * 1e-6);
    EXPECT_NEAR(reparsed.coflows[k].arrival_time(),
                original.coflows[k].arrival_time(), 1e-3);
  }
}

TEST(Edge, ZeroArrivalGapCoflowsAdmitTogether) {
  const Fabric fabric(2, gbps(1.0));
  TraceBuilder builder(2);
  for (int c = 0; c < 4; ++c) {
    builder.begin_coflow(1.0);  // all at exactly t = 1
    builder.add_flow(0, 1, megabits(100.0));
  }
  const Trace trace = builder.build();
  const auto sched = make_scheduler("ncdrf");
  const RunResult run = simulate(fabric, trace, *sched);
  // Equal shares from t = 1: all four finish together at 1.4 s.
  for (const CoflowRecord& rec : run.coflows) {
    EXPECT_NEAR(rec.completion, 1.4, 1e-6);
  }
}

TEST(Edge, SingleMachineFabricSelfLoops) {
  // All flows loop through one machine's up+downlink: capacity still
  // constrains, coflows still complete.
  const Fabric fabric(1, gbps(1.0));
  TraceBuilder builder(1);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 0, megabits(500.0));
  builder.begin_coflow(0.0);
  builder.add_flow(0, 0, megabits(500.0));
  const Trace trace = builder.build();
  for (const std::string name : {"ncdrf", "tcp", "drf", "psp"}) {
    const auto sched = make_scheduler(name);
    const RunResult run = simulate(fabric, trace, *sched);
    // 1 Gb of total work through a 1 Gbps uplink → last completion at 1 s.
    EXPECT_NEAR(run.makespan, 1.0, 1e-6) << name;
  }
}

TEST(Edge, SummaryPercentileCorners) {
  EXPECT_DOUBLE_EQ(percentile({5.0}, 0.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile({5.0}, 100.0), 5.0);
  EXPECT_THROW(percentile({}, 50.0), CheckError);
  EXPECT_THROW(percentile({1.0}, 101.0), CheckError);
  const Summary s = summarize({1.0, 100.0});
  EXPECT_DOUBLE_EQ(s.p99, 1.0 + 0.99 * 99.0);
}

TEST(Edge, TraceWithLateArrivalsOnlyIdlesCorrectly) {
  const Fabric fabric(2, gbps(1.0));
  TraceBuilder builder(2);
  builder.begin_coflow(1000.0);
  builder.add_flow(0, 1, megabits(100.0));
  const Trace trace = builder.build();
  const auto sched = make_scheduler("aalo");
  const RunResult run = simulate(fabric, trace, *sched);
  EXPECT_NEAR(run.coflows[0].completion, 1000.1, 1e-6);
  EXPECT_NEAR(run.coflows[0].cct, 0.1, 1e-6);
}

}  // namespace
}  // namespace ncdrf
