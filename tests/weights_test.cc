// End-to-end tests for coflow share weights: TraceBuilder → Coflow →
// simulator → scheduler, and through the cluster deployment.
#include <gtest/gtest.h>

#include "cluster/deployment.h"
#include "common/units.h"
#include "core/registry.h"
#include "sim/sim.h"
#include "trace/trace.h"

namespace ncdrf {
namespace {

// Two identical 1 Gb single-flow coflows on the same path, weights 3:1.
Trace weighted_pair() {
  TraceBuilder builder(2);
  builder.begin_coflow(0.0, /*weight=*/3.0);
  builder.add_flow(0, 1, gigabits(1.0));
  builder.begin_coflow(0.0, /*weight=*/1.0);
  builder.add_flow(0, 1, gigabits(1.0));
  return builder.build();
}

TEST(Weights, PropagateThroughBuilderAndCoflow) {
  const Trace trace = weighted_pair();
  EXPECT_DOUBLE_EQ(trace.coflows[0].weight(), 3.0);
  EXPECT_DOUBLE_EQ(trace.coflows[1].weight(), 1.0);
  EXPECT_THROW(TraceBuilder(2).begin_coflow(0.0, 0.0), CheckError);
  EXPECT_THROW(TraceBuilder(2).begin_coflow(0.0, -1.0), CheckError);
}

TEST(Weights, NcDrfSimRespects3To1Shares) {
  // Weight 3 runs at 0.75 Gbps until done (t = 4/3 s); the other then
  // takes the full link: transferred 1/3 Gb by then, remaining 2/3 Gb →
  // completes at 4/3 + 2/3 = 2 s.
  const Fabric fabric(2, gbps(1.0));
  const auto sched = make_scheduler("ncdrf");
  const RunResult run = simulate(fabric, weighted_pair(), *sched);
  EXPECT_NEAR(run.coflows[0].cct, 4.0 / 3.0, 1e-6);
  EXPECT_NEAR(run.coflows[1].cct, 2.0, 1e-6);
}

TEST(Weights, DrfSimRespects3To1Shares) {
  const Fabric fabric(2, gbps(1.0));
  const auto sched = make_scheduler("drf");
  const RunResult run = simulate(fabric, weighted_pair(), *sched);
  EXPECT_NEAR(run.coflows[0].cct, 4.0 / 3.0, 1e-6);
  EXPECT_NEAR(run.coflows[1].cct, 2.0, 1e-6);
}

TEST(Weights, EqualWeightsRecoverThePaperBehaviour) {
  // Sanity: defaulting the weights gives the classic equal split.
  TraceBuilder builder(2);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 1, gigabits(1.0));
  builder.begin_coflow(0.0);
  builder.add_flow(0, 1, gigabits(1.0));
  const Trace trace = builder.build();
  const Fabric fabric(2, gbps(1.0));
  const auto sched = make_scheduler("ncdrf");
  const RunResult run = simulate(fabric, trace, *sched);
  EXPECT_NEAR(run.coflows[0].cct, 2.0, 1e-6);
  EXPECT_NEAR(run.coflows[1].cct, 2.0, 1e-6);
}

TEST(Weights, DeploymentCarriesWeightsToTheMaster) {
  const Fabric fabric(2, gbps(1.0));
  DeploymentOptions options;
  options.tick_s = 0.002;
  options.control_latency_s = 0.001;
  const auto sched = make_scheduler("ncdrf");
  const DeploymentResult result =
      run_deployment(fabric, weighted_pair(), *sched, options);
  // Weighted coflow finishes clearly earlier despite identical demand.
  EXPECT_LT(result.coflows[0].cct + 0.2, result.coflows[1].cct);
}

}  // namespace
}  // namespace ncdrf
