// Theorem 1 regression test: on randomized theorem-shaped instances
// (R_k < M_k reducers, identical flow sizes from every uplink into each
// downlink), non-clairvoyant NC-DRF completes every coflow within
// e_max × its clairvoyant-DRF completion time, where e_max is the largest
// intra-coflow demand disparity (Eq. 4). Fixed seeds make this a
// regression test for the paper's long-term isolation guarantee, not a
// flaky statistical check.
#include <gtest/gtest.h>

#include <algorithm>

#include "coflow/coflow.h"
#include "common/rng.h"
#include "common/units.h"
#include "core/ncdrf.h"
#include "obs/audit.h"
#include "sched/drf.h"
#include "sim/sim.h"

namespace ncdrf {
namespace {

// A theorem-satisfying instance: each coflow picks M_k uplinks and
// R_k < M_k downlinks, with one per-downlink size shared by all its
// incoming flows (drawn as base × U[1, spread]).
Trace theorem1_instance(std::uint64_t seed, int machines, int coflows,
                        double size_spread) {
  Rng rng(seed);
  TraceBuilder builder(machines);
  for (int c = 0; c < coflows; ++c) {
    builder.begin_coflow(0.0);
    const int m_k = static_cast<int>(rng.uniform_int(2, machines));
    const int r_k = static_cast<int>(rng.uniform_int(1, m_k - 1));
    const std::vector<int> ups =
        rng.sample_without_replacement(machines, m_k);
    const std::vector<int> downs =
        rng.sample_without_replacement(machines, r_k);
    const double base = rng.uniform(megabits(20.0), megabits(200.0));
    for (const int down : downs) {
      const double size = base * rng.uniform(1.0, size_spread);
      for (const int up : ups) builder.add_flow(up, down, size);
    }
  }
  return builder.build();
}

class Theorem1Bound
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(Theorem1Bound, NcDrfWithinEmaxOfClairvoyantDrf) {
  const auto [seed, spread] = GetParam();
  const Fabric fabric(8, gbps(1.0));
  const Trace trace = theorem1_instance(static_cast<std::uint64_t>(seed), 8,
                                        10, spread);

  // e_max: the instance-wide maximum intra-coflow disparity (Eq. 4) —
  // exactly the constant of the theorem's statement F_k <= e_max F_k^D.
  double e_max = 1.0;
  for (const Coflow& coflow : trace.coflows) {
    e_max = std::max(e_max, coflow.demand(fabric).disparity());
  }

  NcDrfScheduler ncdrf;
  DrfScheduler drf;
  SimOptions options;
  options.record_intervals = false;
  // Live audit layer alongside the explicit check below: the auditor's
  // private shadow-DRF simulation must reach the same verdict (zero
  // envelope violations) and the same e_max.
  obs::FairnessAuditor auditor(fabric);
  options.auditor = &auditor;
  const RunResult run_nc = simulate(fabric, trace, ncdrf, options);
  options.auditor = nullptr;
  const RunResult run_drf = simulate(fabric, trace, drf, options);
  ASSERT_EQ(run_nc.coflows.size(), trace.coflows.size());
  for (std::size_t k = 0; k < trace.coflows.size(); ++k) {
    ASSERT_GT(run_drf.coflows[k].cct, 0.0);
    const double ratio = run_nc.coflows[k].cct / run_drf.coflows[k].cct;
    EXPECT_LE(ratio, e_max * (1.0 + 1e-6))
        << "coflow " << k << " seed " << seed << " spread " << spread
        << ": F_k/F_k^D = " << ratio << " > e_max = " << e_max;
  }

  auditor.finalize();
  EXPECT_NEAR(auditor.e_max(), e_max, e_max * 1e-9);
  EXPECT_EQ(auditor.coflows_checked(),
            static_cast<long long>(trace.coflows.size()));
  for (const obs::AuditViolation& v : auditor.violations()) {
    ADD_FAILURE() << "auditor flagged coflow " << v.coflow << ": ratio "
                  << v.ratio << " > bound " << v.bound << " (seed " << seed
                  << " spread " << spread << ")";
  }
  // The auditor's shadow baseline agrees with the independent DRF run.
  for (std::size_t k = 0; k < trace.coflows.size(); ++k) {
    EXPECT_NEAR(auditor.shadow_cct(run_nc.coflows[k].id),
                run_drf.coflows[k].cct, run_drf.coflows[k].cct * 1e-6)
        << "coflow " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, Theorem1Bound,
    ::testing::Combine(::testing::Range(0, 12),
                       ::testing::Values(1.5, 3.0)));

TEST(Theorem1Bound, IdenticalSizesCollapseToDrfExactly) {
  // Spread 1.0 is the identical-flow-size extreme where NC-DRF's count
  // correlation equals DRF's size correlation at every instant, so the
  // non-work-conserving core makes exactly DRF's decisions (Remark 1).
  // Backfilling is disabled: it only ever lets NC-DRF finish *earlier*
  // than DRF, which breaks equality, not the bound.
  const Fabric fabric(8, gbps(1.0));
  const Trace trace = theorem1_instance(99, 8, 10, 1.0);
  NcDrfScheduler ncdrf(NcDrfOptions{.work_conserving = false,
                                    .count_finished_flows = false});
  DrfScheduler drf;
  const RunResult run_nc = simulate(fabric, trace, ncdrf);
  const RunResult run_drf = simulate(fabric, trace, drf);
  for (std::size_t k = 0; k < trace.coflows.size(); ++k) {
    EXPECT_NEAR(run_nc.coflows[k].cct, run_drf.coflows[k].cct,
                run_drf.coflows[k].cct * 1e-6)
        << "coflow " << k;
  }
}

}  // namespace
}  // namespace ncdrf
