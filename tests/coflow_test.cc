// Unit tests for the coflow abstraction: demand/correlation vectors,
// bottleneck identification, disparity (Eq. 4), progress (Eq. 1) and the
// Table I bins. The central fixture is the paper's own Fig. 3 example.
#include <gtest/gtest.h>

#include "coflow/coflow.h"
#include "common/check.h"
#include "common/units.h"

namespace ncdrf {
namespace {

// Fig. 3: m = 2 machines (links 0,1 = uplinks; 2,3 = downlinks in our
// 0-based layout, matching the paper's link-1..4). Coflow-A transfers
// 100 Mb from each of machine 0 and machine 1 to machine 1:
// d_A = <100, 100, 0, 200> Mb.
Coflow make_coflow_a() {
  std::vector<Flow> flows{
      {0, 0, /*src=*/0, /*dst=*/1, megabits(100.0)},
      {1, 0, /*src=*/1, /*dst=*/1, megabits(100.0)},
  };
  return Coflow(0, 0.0, std::move(flows));
}

// Coflow-B: two flows from machine 1 to machines 0 and 1:
// d_B = <0, 200, 100, 100> Mb.
Coflow make_coflow_b() {
  std::vector<Flow> flows{
      {2, 1, /*src=*/1, /*dst=*/0, megabits(100.0)},
      {3, 1, /*src=*/1, /*dst=*/1, megabits(100.0)},
  };
  return Coflow(1, 0.0, std::move(flows));
}

TEST(Coflow, Fig3DemandVectors) {
  const Fabric fabric(2, gbps(1.0));
  const DemandVectors da = make_coflow_a().demand(fabric);
  EXPECT_DOUBLE_EQ(da.demand[0], megabits(100.0));
  EXPECT_DOUBLE_EQ(da.demand[1], megabits(100.0));
  EXPECT_DOUBLE_EQ(da.demand[2], 0.0);
  EXPECT_DOUBLE_EQ(da.demand[3], megabits(200.0));
  EXPECT_DOUBLE_EQ(da.bottleneck_demand, megabits(200.0));
  EXPECT_EQ(da.bottleneck_link, 3);

  const DemandVectors db = make_coflow_b().demand(fabric);
  EXPECT_DOUBLE_EQ(db.demand[0], 0.0);
  EXPECT_DOUBLE_EQ(db.demand[1], megabits(200.0));
  EXPECT_DOUBLE_EQ(db.demand[2], megabits(100.0));
  EXPECT_DOUBLE_EQ(db.demand[3], megabits(100.0));
  EXPECT_EQ(db.bottleneck_link, 1);
}

TEST(Coflow, Fig3CorrelationVectors) {
  const Fabric fabric(2, gbps(1.0));
  const std::vector<double> ca = make_coflow_a().demand(fabric).correlation();
  EXPECT_DOUBLE_EQ(ca[0], 0.5);
  EXPECT_DOUBLE_EQ(ca[1], 0.5);
  EXPECT_DOUBLE_EQ(ca[2], 0.0);
  EXPECT_DOUBLE_EQ(ca[3], 1.0);

  const std::vector<double> cb = make_coflow_b().demand(fabric).correlation();
  EXPECT_DOUBLE_EQ(cb[0], 0.0);
  EXPECT_DOUBLE_EQ(cb[1], 1.0);
  EXPECT_DOUBLE_EQ(cb[2], 0.5);
  EXPECT_DOUBLE_EQ(cb[3], 0.5);
}

TEST(Coflow, Fig3FlowCountCorrelationEqualsDemandCorrelation) {
  // With identical flow sizes, NC-DRF's flow-count correlation ĉ equals
  // the true correlation c — the paper's "extreme condition" (Sec. IV-A).
  const Fabric fabric(2, gbps(1.0));
  for (const Coflow& coflow : {make_coflow_a(), make_coflow_b()}) {
    const DemandVectors d = coflow.demand(fabric);
    EXPECT_EQ(d.correlation(), d.flow_count_correlation());
  }
}

TEST(Coflow, FlowCounts) {
  const Fabric fabric(2, gbps(1.0));
  const DemandVectors da = make_coflow_a().demand(fabric);
  EXPECT_EQ(da.flow_count[0], 1);
  EXPECT_EQ(da.flow_count[1], 1);
  EXPECT_EQ(da.flow_count[2], 0);
  EXPECT_EQ(da.flow_count[3], 2);
  EXPECT_EQ(da.bottleneck_flow_count, 2);
  EXPECT_EQ(da.flow_count_bottleneck_link, 3);
}

TEST(Coflow, DisparityEq4) {
  const Fabric fabric(2, gbps(1.0));
  // Coflow-A: d̄ = 200, min positive demand = 100 → e = 2.
  EXPECT_DOUBLE_EQ(make_coflow_a().demand(fabric).disparity(), 2.0);

  // Perfectly balanced coflow → e = 1.
  std::vector<Flow> balanced{
      {0, 0, 0, 1, megabits(50.0)},
      {1, 0, 1, 0, megabits(50.0)},
  };
  const Coflow c(0, 0.0, std::move(balanced));
  EXPECT_DOUBLE_EQ(c.demand(fabric).disparity(), 1.0);
}

TEST(Coflow, ProgressEq1) {
  const Fabric fabric(2, gbps(1.0));
  const DemandVectors da = make_coflow_a().demand(fabric);
  // DRF allocation from Fig. 4b: both of A's flows at 1/3 Gbps →
  // link alloc <1/3, 1/3, 0, 2/3>; correlation <0.5, 0.5, 0, 1> →
  // progress = min(2/3, 2/3, 2/3) = 2/3 Gbps.
  const std::vector<double> alloc{gbps(1.0 / 3), gbps(1.0 / 3), 0.0,
                                  gbps(2.0 / 3)};
  EXPECT_NEAR(coflow_progress(da, alloc), gbps(2.0 / 3), 1.0);
}

TEST(Coflow, ProgressIsBottleneckedBySlowestLink) {
  const Fabric fabric(2, gbps(1.0));
  const DemandVectors da = make_coflow_a().demand(fabric);
  // Starve link 0: progress collapses to alloc[0] / 0.5.
  const std::vector<double> alloc{gbps(0.01), gbps(1.0 / 3), 0.0,
                                  gbps(2.0 / 3)};
  EXPECT_NEAR(coflow_progress(da, alloc), gbps(0.02), 1.0);
}

TEST(Coflow, ProgressOfZeroDemandIsZero) {
  DemandVectors d;
  d.demand = {0.0, 0.0};
  d.flow_count = {0, 0};
  EXPECT_DOUBLE_EQ(coflow_progress(d, {1.0, 1.0}), 0.0);
}

TEST(Coflow, AggregatesWidthLengthTotals) {
  const Coflow a = make_coflow_a();
  EXPECT_EQ(a.width(), 2);
  EXPECT_DOUBLE_EQ(a.max_flow_bits(), megabits(100.0));
  EXPECT_DOUBLE_EQ(a.total_bits(), megabits(200.0));
}

TEST(Coflow, SelfLoopFlowUsesBothLinksOfOneMachine) {
  const Fabric fabric(2, gbps(1.0));
  std::vector<Flow> flows{{0, 0, 1, 1, megabits(10.0)}};
  const Coflow c(0, 0.0, std::move(flows));
  const DemandVectors d = c.demand(fabric);
  EXPECT_DOUBLE_EQ(d.demand[1], megabits(10.0));  // uplink of machine 1
  EXPECT_DOUBLE_EQ(d.demand[3], megabits(10.0));  // downlink of machine 1
}

TEST(Coflow, ConstructorValidates) {
  EXPECT_THROW(Coflow(0, 0.0, {}), CheckError);  // no flows
  std::vector<Flow> wrong_tag{{0, 5, 0, 1, 1.0}};
  EXPECT_THROW(Coflow(0, 0.0, std::move(wrong_tag)), CheckError);
  std::vector<Flow> negative{{0, 0, 0, 1, -1.0}};
  EXPECT_THROW(Coflow(0, 0.0, std::move(negative)), CheckError);
  std::vector<Flow> ok{{0, 0, 0, 1, 1.0}};
  EXPECT_THROW(Coflow(0, -1.0, std::move(ok)), CheckError);  // arrival < 0
}

TEST(CoflowBins, ThresholdsMatchSecVA) {
  auto make = [](int width, double flow_bits) {
    std::vector<Flow> flows;
    for (int i = 0; i < width; ++i) {
      flows.push_back({i, 0, 0, 1, flow_bits});
    }
    return Coflow(0, 0.0, std::move(flows));
  };
  EXPECT_EQ(classify_bin(make(10, megabytes(1.0))), CoflowBin::kShortNarrow);
  EXPECT_EQ(classify_bin(make(10, megabytes(6.0))), CoflowBin::kLongNarrow);
  EXPECT_EQ(classify_bin(make(60, megabytes(1.0))), CoflowBin::kShortWide);
  EXPECT_EQ(classify_bin(make(60, megabytes(6.0))), CoflowBin::kLongWide);
  // Boundary cases: exactly 5 MB is "long", exactly 50 flows is "wide".
  EXPECT_EQ(classify_bin(make(49, megabytes(5.0))), CoflowBin::kLongNarrow);
  EXPECT_EQ(classify_bin(make(50, megabytes(4.99))), CoflowBin::kShortWide);
}

TEST(CoflowBins, Names) {
  EXPECT_EQ(bin_name(CoflowBin::kShortNarrow), "SN");
  EXPECT_EQ(bin_name(CoflowBin::kLongNarrow), "LN");
  EXPECT_EQ(bin_name(CoflowBin::kShortWide), "SW");
  EXPECT_EQ(bin_name(CoflowBin::kLongWide), "LW");
}

TEST(ComputeDemand, MismatchedSizesThrow) {
  const Fabric fabric(2, gbps(1.0));
  std::vector<Flow> flows{{0, 0, 0, 1, 1.0}};
  EXPECT_THROW(compute_demand(fabric, flows, {1.0, 2.0}), CheckError);
}

}  // namespace
}  // namespace ncdrf
