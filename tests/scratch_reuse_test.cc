// Steady-state allocation regression tests for the kernel scratch layer:
// once warmed up, KernelScratch::gather and DemandCache::refresh must
// perform zero heap allocations per call — including under the engine's
// swap-pop slot shuffling, which used to make DemandCache's per-slot
// remaining-bits vectors reallocate whenever a large coflow landed in a
// slot that last held a small one — and a round of interleaved policy
// allocate() calls must not allocate more than the previous round.
//
// The whole binary's global operator new/delete are replaced with
// counting malloc/free wrappers (this test gets its own executable for
// exactly that reason); counters are sampled only around the calls under
// test so gtest's own allocations never pollute a measurement. The
// wrappers pair new->malloc with delete->free symmetrically, so the
// binary stays ASan-clean.
#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "alloc/demand_cache.h"
#include "alloc/kernel_scratch.h"
#include "common/rng.h"
#include "common/units.h"
#include "core/registry.h"
#include "sched/scheduler.h"
#include "test_util.h"
#include "trace/trace.h"

namespace {
std::atomic<long long> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_allocations;
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t& t) noexcept {
  return ::operator new(size, t);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace ncdrf {
namespace {

using testing::Snapshot;
using testing::snapshot_all_active;

// Allocations performed by `fn`.
template <typename Fn>
long long count_allocations(Fn&& fn) {
  const long long before = g_allocations.load();
  fn();
  return g_allocations.load() - before;
}

Trace random_trace(const Fabric& fabric, std::uint64_t seed,
                   int num_coflows, int max_flows) {
  Rng rng(seed);
  TraceBuilder builder(fabric.num_machines());
  for (int c = 0; c < num_coflows; ++c) {
    builder.begin_coflow(0.0);
    const auto flows = static_cast<int>(rng.uniform_int(1, max_flows));
    for (int f = 0; f < flows; ++f) {
      builder.add_flow(
          static_cast<MachineId>(
              rng.uniform_int(0, fabric.num_machines() - 1)),
          static_cast<MachineId>(
              rng.uniform_int(0, fabric.num_machines() - 1)),
          1e7 * static_cast<double>(rng.uniform_int(1, 40)));
    }
  }
  return builder.build();
}

TEST(ScratchReuse, RepeatedGatherAllocatesNothingOnceWarm) {
  const Fabric fabric(16, gbps(1.0));
  const Trace trace = random_trace(fabric, 3, 24, 8);
  const Snapshot snap = snapshot_all_active(fabric, trace, false);

  KernelScratch scratch;
  scratch.gather(snap.input, nullptr, GatherCounts::kNone);
  // Second call coalesces any first-call block chain to the high-water
  // block; from then on every gather is allocation-free.
  scratch.gather(snap.input, nullptr, GatherCounts::kNone);
  EXPECT_EQ(scratch.arena().num_blocks(), 1u);
  const std::size_t settled = scratch.arena().capacity_bytes();
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(count_allocations([&] {
                scratch.gather(snap.input, nullptr, GatherCounts::kNone);
              }),
              0)
        << "gather " << i;
  }
  EXPECT_EQ(scratch.arena().capacity_bytes(), settled);
}

TEST(ScratchReuse, ArenaSettlesToHighWaterAcrossAlternatingSizes) {
  const Fabric fabric(16, gbps(1.0));
  const Trace small_trace = random_trace(fabric, 5, 4, 3);
  const Trace big_trace = random_trace(fabric, 7, 60, 12);
  const Snapshot small = snapshot_all_active(fabric, small_trace, false);
  const Snapshot big = snapshot_all_active(fabric, big_trace, false);

  KernelScratch scratch;
  // Warm through both shapes twice so the arena reaches the larger
  // snapshot's high-water mark and coalesces.
  for (int i = 0; i < 2; ++i) {
    scratch.gather(small.input, nullptr, GatherCounts::kNone);
    scratch.gather(big.input, nullptr, GatherCounts::kNone);
  }
  for (int i = 0; i < 4; ++i) {
    const Snapshot& snap = (i % 2 == 0) ? small : big;
    EXPECT_EQ(count_allocations([&] {
                scratch.gather(snap.input, nullptr, GatherCounts::kNone);
              }),
              0)
        << "gather " << i;
  }
}

TEST(ScratchReuse, DemandCacheRefreshIsAllocationFreeUnderSlotShuffling) {
  const Fabric fabric(16, gbps(1.0));
  const Trace trace = random_trace(fabric, 11, 16, 10);
  Snapshot snap = snapshot_all_active(fabric, trace, true);

  DemandCache cache;
  // Two full rotations of the coflow slots warm every slot to its
  // high-water touched-list capacity under every coflow it can host.
  const std::size_t n = snap.input.coflows.size();
  for (std::size_t warm = 0; warm < 2 * n; ++warm) {
    cache.refresh(snap.input);
    std::rotate(snap.input.coflows.begin(),
                snap.input.coflows.begin() + 1, snap.input.coflows.end());
  }
  // A third rotation revisits slot/coflow pairings seen during warm-up:
  // the flat remaining-bits buffer and the per-slot vectors must all be
  // reused as-is. (The per-slot remaining vectors this replaced would
  // reallocate here whenever a wide coflow rotated into a narrow slot.)
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(count_allocations([&] { cache.refresh(snap.input); }), 0)
        << "refresh " << i;
    EXPECT_GT(cache.drf_progress(snap.input), 0.0);
    std::rotate(snap.input.coflows.begin(),
                snap.input.coflows.begin() + 1, snap.input.coflows.end());
  }
}

TEST(ScratchReuse, InterleavedPoliciesSettleToFlatPerCallAllocations) {
  const Fabric fabric(16, gbps(1.0));
  const Trace trace = random_trace(fabric, 13, 24, 8);
  const Snapshot snap = snapshot_all_active(fabric, trace, true);

  // One scheduler per policy family that owns kernel scratch state; the
  // round-robin interleaving ensures no policy's scratch is invalidated
  // by another's calls (each owns its own arena/cache).
  const std::vector<std::string> names = {"fifo", "aalo",  "baraat",
                                          "psp",  "varys", "tcp"};
  std::vector<std::unique_ptr<Scheduler>> scheds;
  for (const std::string& name : names) {
    scheds.push_back(make_scheduler(name));
  }
  const auto round = [&]() {
    for (auto& sched : scheds) {
      Allocation alloc = sched->allocate(snap.input);
      ASSERT_GT(alloc.num_flows(), 0u);
    }
  };
  round();
  round();  // warm-up: arenas coalesce, caches reach high water
  const long long warm = count_allocations(round);
  for (int i = 0; i < 3; ++i) {
    const long long next = count_allocations(round);
    // The returned Allocation still allocates its dense table per call;
    // everything else must be reused, so the per-round count stays flat.
    EXPECT_LE(next, warm) << "round " << i;
  }
}

}  // namespace
}  // namespace ncdrf
