// Tests for the evaluation metrics: normalized CCT, slowdown, disparity
// and utilization distributions, and bin aggregation.
#include <gtest/gtest.h>

#include "common/check.h"
#include "common/units.h"
#include "core/registry.h"
#include "metrics/eval.h"
#include "sched/drf.h"
#include "sched/psp.h"
#include "sim/sim.h"
#include "test_util.h"

namespace ncdrf {
namespace {

using testing::fig3_trace;

TEST(Metrics, NormalizedCctOfFig3PspVsDrf) {
  const Fabric fabric(2, gbps(1.0));
  DrfScheduler drf;
  PspScheduler psp(PspOptions{.work_conserving = false});
  const RunResult base = simulate(fabric, fig3_trace(), drf);
  const RunResult cmp = simulate(fabric, fig3_trace(), psp);
  const std::vector<double> norm = normalized_ccts(cmp, base);
  ASSERT_EQ(norm.size(), 2u);
  // 0.4 s vs 0.3 s → 4/3 for both coflows.
  EXPECT_NEAR(norm[0], 4.0 / 3.0, 1e-6);
  EXPECT_NEAR(norm[1], 4.0 / 3.0, 1e-6);
}

TEST(Metrics, NormalizedCctRejectsMismatchedRuns) {
  const Fabric fabric(2, gbps(1.0));
  DrfScheduler drf;
  const RunResult base = simulate(fabric, fig3_trace(), drf);
  RunResult wrong = base;
  wrong.coflows.pop_back();
  EXPECT_THROW(normalized_ccts(wrong, base), CheckError);
}

TEST(Metrics, SlowdownOfIsolatedCoflowIsOne) {
  const Fabric fabric(2, gbps(1.0));
  TraceBuilder builder(2);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 1, gigabits(1.0));
  const Trace trace = builder.build();
  const auto ncdrf = make_scheduler("ncdrf");
  const RunResult run = simulate(fabric, trace, *ncdrf);
  const std::vector<double> s = slowdowns(run);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_NEAR(s[0], 1.0, 1e-6);
}

TEST(Metrics, SlowdownIsAtLeastOneUnderContention) {
  const Fabric fabric(2, gbps(1.0));
  for (const std::string& name : scheduler_names()) {
    const auto sched = make_scheduler(name);
    const RunResult run = simulate(fabric, fig3_trace(), *sched);
    for (const double s : slowdowns(run)) {
      EXPECT_GE(s, 1.0 - 1e-9) << name;
    }
  }
}

TEST(Metrics, DisparityOfDrfIsOne) {
  const Fabric fabric(2, gbps(1.0));
  DrfScheduler drf;
  const RunResult run = simulate(fabric, fig3_trace(), drf);
  const WeightedCdf cdf = disparity_cdf(run);
  ASSERT_FALSE(cdf.empty());
  EXPECT_NEAR(cdf.max(), 1.0, 1e-6);
}

TEST(Metrics, DisparityIgnoresSingleCoflowIntervals) {
  const Fabric fabric(2, gbps(1.0));
  TraceBuilder builder(2);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 1, gigabits(1.0));
  const Trace trace = builder.build();
  const auto ncdrf = make_scheduler("ncdrf");
  const RunResult run = simulate(fabric, trace, *ncdrf);
  EXPECT_TRUE(disparity_cdf(run).empty());
}

TEST(Metrics, AverageLinkUsageOfSaturatedExample) {
  // Under NC-DRF on Fig. 3, links 1 and 3 run at 1 Gbps and links 0 and 2
  // at 1/3 Gbps for the whole run → Σ usage = 8/3 Gbps.
  const Fabric fabric(2, gbps(1.0));
  const auto ncdrf = make_scheduler("ncdrf");
  const RunResult run = simulate(fabric, fig3_trace(), *ncdrf);
  EXPECT_NEAR(average_link_usage(run), gbps(8.0 / 3.0), 1e3);
  const WeightedCdf cdf = utilization_cdf(run);
  EXPECT_NEAR(cdf.mean(), gbps(8.0 / 3.0), 1e3);
}

TEST(Metrics, BinAggregation) {
  RunResult run;
  auto add = [&](int id, double cct, int width, double max_flow) {
    CoflowRecord rec;
    rec.id = id;
    rec.cct = cct;
    rec.min_cct = 1.0;
    rec.width = width;
    rec.max_flow_bits = max_flow;
    run.coflows.push_back(rec);
  };
  add(0, 2.0, 10, megabytes(1.0));   // SN
  add(1, 4.0, 10, megabytes(10.0));  // LN
  add(2, 6.0, 80, megabytes(1.0));   // SW
  add(3, 8.0, 80, megabytes(10.0));  // LW
  add(4, 10.0, 12, megabytes(2.0));  // SN

  const auto counts = bin_counts(run);
  EXPECT_EQ(counts.at(CoflowBin::kShortNarrow), 2);
  EXPECT_EQ(counts.at(CoflowBin::kLongNarrow), 1);
  EXPECT_EQ(counts.at(CoflowBin::kShortWide), 1);
  EXPECT_EQ(counts.at(CoflowBin::kLongWide), 1);

  std::vector<double> values{2.0, 4.0, 6.0, 8.0, 10.0};
  EXPECT_DOUBLE_EQ(mean_over_bin(run, values, CoflowBin::kShortNarrow), 6.0);
  EXPECT_DOUBLE_EQ(mean_over_bin(run, values, CoflowBin::kLongWide), 8.0);
  EXPECT_THROW(mean_over_bin(run, {1.0}, CoflowBin::kShortNarrow),
               CheckError);
}

TEST(Metrics, StarvedIntervalsLandAtSentinel) {
  RunResult run;
  IntervalRecord rec;
  rec.t0 = 0.0;
  rec.t1 = 1.0;
  rec.active_coflows = 2;
  rec.min_progress = 0.0;  // one coflow fully starved
  rec.max_progress = 5.0;
  run.intervals.push_back(rec);
  const WeightedCdf cdf = disparity_cdf(run, 2, /*starved_value=*/1e6);
  ASSERT_FALSE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.max(), 1e6);
}

}  // namespace
}  // namespace ncdrf
