// Tests for the multi-stage job layer and the dynamic simulation engine
// underneath it: dependency-driven releases, analytic pipeline timings,
// DAG validation, and cross-policy job-level behaviour.
#include <gtest/gtest.h>

#include <map>

#include "common/units.h"
#include "core/registry.h"
#include "job/job.h"
#include "sim/engine.h"
#include "trace/patterns.h"

namespace ncdrf {
namespace {

TEST(DynamicEngine, RunsATraceIdenticallyToSimulate) {
  const Fabric fabric(3, gbps(1.0));
  TraceBuilder builder(3);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 1, megabits(100.0));
  builder.add_flow(1, 2, megabits(200.0));
  builder.begin_coflow(0.5);
  builder.add_flow(2, 0, megabits(300.0));
  const Trace trace = builder.build();

  const auto s1 = make_scheduler("ncdrf");
  const auto s2 = make_scheduler("ncdrf");
  const RunResult via_simulate = simulate(fabric, trace, *s1);

  DynamicSimulator engine(fabric, *s2);
  for (const Coflow& c : trace.coflows) engine.submit(c);
  engine.run();
  const RunResult via_engine = engine.take_result();

  ASSERT_EQ(via_engine.coflows.size(), via_simulate.coflows.size());
  for (std::size_t k = 0; k < via_engine.coflows.size(); ++k) {
    EXPECT_DOUBLE_EQ(via_engine.coflows[k].cct, via_simulate.coflows[k].cct);
  }
}

TEST(DynamicEngine, CallbackDrivenSubmissionChainsCoflows) {
  // Submit coflow 1 only when coflow 0 completes: strictly sequential.
  const Fabric fabric(2, gbps(1.0));
  const auto sched = make_scheduler("ncdrf");
  DynamicSimulator engine(fabric, *sched);

  engine.set_completion_callback([&](const CoflowRecord& rec) {
    if (rec.id == 0) {
      std::vector<Flow> flows{{1, 1, 0, 1, gigabits(1.0)}};
      engine.submit(Coflow(1, rec.completion, std::move(flows)));
    }
  });
  std::vector<Flow> flows{{0, 0, 0, 1, gigabits(1.0)}};
  engine.submit(Coflow(0, 0.0, std::move(flows)));
  engine.run();
  const RunResult result = engine.take_result();
  ASSERT_EQ(result.coflows.size(), 2u);
  EXPECT_NEAR(result.coflows[0].completion, 1.0, 1e-6);
  EXPECT_NEAR(result.coflows[1].completion, 2.0, 1e-6);
}

TEST(DynamicEngine, RejectsDuplicateAndPastSubmissions) {
  const Fabric fabric(2, gbps(1.0));
  const auto sched = make_scheduler("ncdrf");
  DynamicSimulator engine(fabric, *sched);
  std::vector<Flow> flows{{0, 0, 0, 1, 1e6}};
  engine.submit(Coflow(0, 1.0, flows));
  std::vector<Flow> dup{{1, 0, 0, 1, 1e6}};
  EXPECT_THROW(engine.submit(Coflow(0, 2.0, dup)), CheckError);
  engine.run();
  std::vector<Flow> past{{2, 1, 0, 1, 1e6}};
  EXPECT_THROW(engine.submit(Coflow(1, 0.5, past)), CheckError);
}

TEST(Jobs, ValidationCatchesBadSpecs) {
  EXPECT_THROW(validate_jobs({}), CheckError);

  JobSpec no_stages{"empty", 0.0, {}};
  EXPECT_THROW(validate_jobs({no_stages}), CheckError);

  JobSpec bad_parent{"bad", 0.0, {}};
  Stage stage;
  stage.name = "s0";
  stage.parents = {0};  // self/forward reference
  stage.transfers.push_back(StageTransfer{0, 1, 1e6});
  bad_parent.stages.push_back(stage);
  EXPECT_THROW(validate_jobs({bad_parent}), CheckError);

  JobSpec no_transfers{"bare", 0.0, {}};
  Stage bare;
  bare.name = "s0";
  no_transfers.stages.push_back(bare);
  EXPECT_THROW(validate_jobs({no_transfers}), CheckError);
}

TEST(Jobs, LinearPipelineRunsStagesSequentially) {
  // Two machines, two-stage ring pipeline, 1 Gb per flow, no compute
  // delay, empty fabric: each stage is a 2-flow exchange finishing in 1 s
  // (each flow gets its own links) → job duration 2 s.
  const Fabric fabric(2, gbps(1.0));
  const JobSpec job = make_linear_pipeline("p", 0.0, 2, machine_range(0, 2),
                                           gigabits(1.0));
  const auto sched = make_scheduler("ncdrf");
  const JobSetResult result = run_jobs(fabric, {job}, *sched);

  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_NEAR(result.jobs[0].duration, 2.0, 1e-6);
  ASSERT_EQ(result.stages.size(), 2u);
  // Stage 1 released exactly when stage 0 completed.
  EXPECT_NEAR(result.stages[0].completion_time, 1.0, 1e-6);
  EXPECT_NEAR(result.stages[1].release_time, 1.0, 1e-6);
  EXPECT_NEAR(result.stages[1].completion_time, 2.0, 1e-6);
}

TEST(Jobs, ComputeDelayShiftsReleases) {
  const Fabric fabric(2, gbps(1.0));
  const JobSpec job = make_linear_pipeline(
      "p", 0.0, 2, machine_range(0, 2), gigabits(1.0),
      /*compute_delay_s=*/0.5);
  const auto sched = make_scheduler("ncdrf");
  const JobSetResult result = run_jobs(fabric, {job}, *sched);
  // 0.5 compute + 1.0 shuffle per stage → 3.0 total.
  EXPECT_NEAR(result.jobs[0].duration, 3.0, 1e-6);
  EXPECT_NEAR(result.stages[1].release_time, 2.0, 1e-6);
}

TEST(Jobs, DiamondRespectsJoinDependency) {
  const Fabric fabric(8, gbps(1.0));
  const JobSpec job =
      make_diamond_job("d", 0.0, machine_range(0, 3), machine_range(3, 4),
                       /*sink=*/7, megabits(200.0));
  const auto sched = make_scheduler("ncdrf");
  const JobSetResult result = run_jobs(fabric, {job}, *sched);

  std::map<int, StageResult> by_stage;
  for (const StageResult& s : result.stages) by_stage[s.stage] = s;
  ASSERT_EQ(by_stage.size(), 4u);
  // Both aggregations start when the shuffle ends...
  EXPECT_NEAR(by_stage[1].release_time, by_stage[0].completion_time, 1e-9);
  EXPECT_NEAR(by_stage[2].release_time, by_stage[0].completion_time, 1e-9);
  // ...and the collect starts only when the slower aggregation ends.
  EXPECT_NEAR(by_stage[3].release_time,
              std::max(by_stage[1].completion_time,
                       by_stage[2].completion_time),
              1e-9);
  EXPECT_NEAR(result.jobs[0].completion, by_stage[3].completion_time, 1e-9);
}

TEST(Jobs, StaggeredJobsContendOnTheFabric) {
  // Two identical pipelines sharing the same group: together they must be
  // slower than one alone (contention), and both must finish.
  const Fabric fabric(4, gbps(1.0));
  const std::vector<MachineId> group = machine_range(0, 4);
  const JobSpec solo = make_linear_pipeline("a", 0.0, 3, group,
                                            megabits(400.0));
  const auto sched_solo = make_scheduler("ncdrf");
  const double solo_duration =
      run_jobs(fabric, {solo}, *sched_solo).jobs[0].duration;

  const JobSpec a = make_linear_pipeline("a", 0.0, 3, group,
                                         megabits(400.0));
  const JobSpec b = make_linear_pipeline("b", 0.1, 3, group,
                                         megabits(400.0));
  const auto sched_both = make_scheduler("ncdrf");
  const JobSetResult both = run_jobs(fabric, {a, b}, *sched_both);
  EXPECT_GT(both.jobs[0].duration, solo_duration - 1e-9);
  EXPECT_GT(both.jobs[1].duration, solo_duration - 1e-9);
  EXPECT_GT(both.jobs[0].duration + both.jobs[1].duration,
            2.0 * solo_duration);
}

TEST(Jobs, EveryPolicyCompletesAJobMix) {
  const Fabric fabric(10, gbps(1.0));
  std::vector<JobSpec> jobs;
  jobs.push_back(make_linear_pipeline("p0", 0.0, 3, machine_range(0, 4),
                                      megabits(150.0)));
  jobs.push_back(make_diamond_job("d0", 0.2, machine_range(2, 3),
                                  machine_range(5, 3), 9,
                                  megabits(100.0)));
  jobs.push_back(make_linear_pipeline("p1", 0.5, 2, machine_range(4, 5),
                                      megabits(250.0)));
  for (const std::string& name : scheduler_names()) {
    const auto sched = make_scheduler(name);
    const JobSetResult result = run_jobs(fabric, jobs, *sched);
    for (const JobResult& job : result.jobs) {
      EXPECT_GT(job.duration, 0.0) << name << " " << job.name;
    }
    // Stage releases never precede their parents' completions.
    std::map<std::pair<int, int>, double> completion;
    for (const StageResult& s : result.stages) {
      completion[{s.job, s.stage}] = s.completion_time;
    }
    for (const StageResult& s : result.stages) {
      for (const int parent :
           jobs[static_cast<std::size_t>(s.job)]
               .stages[static_cast<std::size_t>(s.stage)]
               .parents) {
        const double parent_done = completion[{s.job, parent}];
        EXPECT_GE(s.release_time, parent_done - 1e-9) << name;
      }
    }
  }
}

}  // namespace
}  // namespace ncdrf
