// Tests for the extended design-space baselines — FIFO (Orchestra),
// Baraat (FIFO-LM), per-source / per-pair fairness — and for weighted
// coflows under the fair policies.
#include <gtest/gtest.h>

#include "common/units.h"
#include "core/ncdrf.h"
#include "core/registry.h"
#include "sched/baraat.h"
#include "sched/drf.h"
#include "sched/endpoint_fair.h"
#include "sched/fifo.h"
#include "sim/sim.h"
#include "test_util.h"

namespace ncdrf {
namespace {

using testing::coflow_link_usage;
using testing::fig3_trace;
using testing::snapshot_all_active;

// ---------------------------------------------------------------- FIFO

TEST(Fifo, HeadCoflowTakesItsLinks) {
  const Fabric fabric(2, gbps(1.0));
  TraceBuilder builder(2);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 1, 1e8);
  builder.begin_coflow(1.0);
  builder.add_flow(0, 1, 1e8);
  const Trace trace = builder.build();
  auto snap = snapshot_all_active(fabric, trace, false);
  FifoScheduler fifo(FifoOptions{.work_conserving = false});
  const Allocation alloc = fifo.allocate(snap.input);
  EXPECT_DOUBLE_EQ(alloc.rate(0), gbps(1.0));
  EXPECT_DOUBLE_EQ(alloc.rate(1), 0.0);
}

TEST(Fifo, LaterCoflowUsesDisjointLinks) {
  // FIFO is per-link: a later coflow on disjoint links runs at full rate.
  const Fabric fabric(4, gbps(1.0));
  TraceBuilder builder(4);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 1, 1e8);
  builder.begin_coflow(1.0);
  builder.add_flow(2, 3, 1e8);
  const Trace trace = builder.build();
  auto snap = snapshot_all_active(fabric, trace, false);
  FifoScheduler fifo(FifoOptions{.work_conserving = false});
  const Allocation alloc = fifo.allocate(snap.input);
  EXPECT_DOUBLE_EQ(alloc.rate(0), gbps(1.0));
  EXPECT_DOUBLE_EQ(alloc.rate(1), gbps(1.0));
}

TEST(Fifo, HeadOfLineBlockingInSim) {
  // A huge head coflow delays a tiny one behind it — the failure mode the
  // paper's Sec. II-B attributes to FIFO scheduling.
  const Fabric fabric(2, gbps(1.0));
  TraceBuilder builder(2);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 1, gigabits(10.0));  // 10 s alone
  builder.begin_coflow(0.1);
  builder.add_flow(0, 1, megabits(10.0));  // 0.01 s alone
  const Trace trace = builder.build();
  const auto fifo = make_scheduler("fifo");
  const RunResult run = simulate(fabric, trace, *fifo);
  EXPECT_GT(run.coflows[1].cct, 9.0);  // blocked behind the head
}

// --------------------------------------------------------------- Baraat

TEST(Baraat, LightHeadServesAlone) {
  const Fabric fabric(2, gbps(1.0));
  auto snap = snapshot_all_active(fabric, fig3_trace(), false);
  // Both coflows light (attained 0): pure FIFO — coflow 0 wins.
  BaraatScheduler baraat(BaraatOptions{.work_conserving = false});
  const Allocation alloc = baraat.allocate(snap.input);
  const auto usage0 = coflow_link_usage(fabric, snap.input.coflows[0], alloc);
  const auto usage1 = coflow_link_usage(fabric, snap.input.coflows[1], alloc);
  EXPECT_GT(usage0[1], 0.0);
  EXPECT_DOUBLE_EQ(usage1[1], 0.0);
}

TEST(Baraat, HeavyHeadMultiplexesWithNext) {
  const Fabric fabric(2, gbps(1.0));
  auto snap = snapshot_all_active(fabric, fig3_trace(), false);
  snap.input.coflows[0].attained_bits = megabytes(100.0);  // heavy head
  BaraatScheduler baraat(BaraatOptions{.work_conserving = false});
  const Allocation alloc = baraat.allocate(snap.input);
  const auto usage0 = coflow_link_usage(fabric, snap.input.coflows[0], alloc);
  const auto usage1 = coflow_link_usage(fabric, snap.input.coflows[1], alloc);
  // Both served: limited multiplexing avoids head-of-line blocking.
  EXPECT_GT(usage0[1], 0.0);
  EXPECT_GT(usage1[1], 0.0);
}

TEST(Baraat, AvoidsFifosHeadOfLineBlocking) {
  const Fabric fabric(2, gbps(1.0));
  TraceBuilder builder(2);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 1, gigabits(10.0));
  builder.begin_coflow(0.5);  // head is heavy by now (attained > 10 MB)
  builder.add_flow(0, 1, megabits(10.0));
  const Trace trace = builder.build();
  const auto baraat = make_scheduler("baraat");
  const auto fifo = make_scheduler("fifo");
  const RunResult run_b = simulate(fabric, trace, *baraat);
  const RunResult run_f = simulate(fabric, trace, *fifo);
  EXPECT_LT(run_b.coflows[1].cct, 1.0);   // multiplexed in quickly
  EXPECT_GT(run_f.coflows[1].cct, 9.0);   // FIFO blocks it
}

TEST(Baraat, PredictsHeavyCrossing) {
  const Fabric fabric(2, gbps(1.0));
  TraceBuilder builder(2);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 1, gigabits(10.0));
  const Trace trace = builder.build();
  auto snap = snapshot_all_active(fabric, trace, false);
  BaraatScheduler baraat;
  const Allocation alloc = baraat.allocate(snap.input);
  const auto next = baraat.next_internal_event(snap.input, alloc);
  ASSERT_TRUE(next.has_value());
  EXPECT_NEAR(*next, 8e7 / gbps(1.0), 1e-9);  // 10 MB at 1 Gbps
}

// ------------------------------------------------- endpoint fairness

TEST(EndpointFair, PerSourceEqualizesSources) {
  // Source 0 runs 3 flows, source 1 runs 1, all into the same downlink.
  // Per-source fairness gives each source half the downlink.
  const Fabric fabric(3, gbps(1.0));
  TraceBuilder builder(3);
  builder.begin_coflow(0.0);
  for (int i = 0; i < 3; ++i) builder.add_flow(0, 2, 1e8);
  builder.begin_coflow(0.0);
  builder.add_flow(1, 2, 1e8);
  const Trace trace = builder.build();
  auto snap = snapshot_all_active(fabric, trace, false);
  EndpointFairScheduler per_source(FairnessEntity::kSource);
  const Allocation alloc = per_source.allocate(snap.input);
  const double source0 = alloc.rate(0) + alloc.rate(1) + alloc.rate(2);
  EXPECT_NEAR(source0, gbps(0.5), 1e3);
  EXPECT_NEAR(alloc.rate(3), gbps(0.5), 1e3);
}

TEST(EndpointFair, PerPairEqualizesPairs) {
  // Pair (0,2) has 3 flows, pair (1,2) has 1: per-pair fairness halves the
  // shared downlink between the pairs regardless of flow count.
  const Fabric fabric(3, gbps(1.0));
  TraceBuilder builder(3);
  builder.begin_coflow(0.0);
  for (int i = 0; i < 3; ++i) builder.add_flow(0, 2, 1e8);
  builder.begin_coflow(0.0);
  builder.add_flow(1, 2, 1e8);
  const Trace trace = builder.build();
  auto snap = snapshot_all_active(fabric, trace, false);
  EndpointFairScheduler per_pair(FairnessEntity::kSourceDestinationPair);
  const Allocation alloc = per_pair.allocate(snap.input);
  const double pair0 = alloc.rate(0) + alloc.rate(1) + alloc.rate(2);
  EXPECT_NEAR(pair0, gbps(0.5), 1e3);
  EXPECT_NEAR(alloc.rate(3), gbps(0.5), 1e3);
}

TEST(EndpointFair, StillNoCoflowIsolation) {
  // A coflow can still inflate its share by spreading over more sources —
  // the gaming channel remains (unlike NC-DRF, which normalizes by n̄_k).
  const Fabric fabric(4, gbps(1.0));
  TraceBuilder builder(4);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 3, 1e8);
  builder.add_flow(1, 3, 1e8);
  builder.add_flow(2, 3, 1e8);  // three sources
  builder.begin_coflow(0.0);
  builder.add_flow(0, 3, 1e8);  // one source
  const Trace trace = builder.build();
  auto snap = snapshot_all_active(fabric, trace, false);
  EndpointFairScheduler per_source(FairnessEntity::kSource);
  const Allocation alloc = per_source.allocate(snap.input);
  const auto usage0 = coflow_link_usage(fabric, snap.input.coflows[0], alloc);
  const auto usage1 = coflow_link_usage(fabric, snap.input.coflows[1], alloc);
  EXPECT_GT(usage0[7], 2.0 * usage1[7]);  // downlink of machine 3
}

// ------------------------------------------------------ weighted coflows

TEST(WeightedCoflows, NcDrfScalesProgressByWeight) {
  const Fabric fabric(2, gbps(1.0));
  TraceBuilder builder(2);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 1, 1e8);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 1, 1e8);
  const Trace trace = builder.build();
  auto snap = snapshot_all_active(fabric, trace, false);
  snap.input.coflows[0].weight = 3.0;
  NcDrfScheduler ncdrf(NcDrfOptions{.work_conserving = false});
  const Allocation alloc = ncdrf.allocate(snap.input);
  EXPECT_NEAR(alloc.rate(0) / alloc.rate(1), 3.0, 1e-9);
  EXPECT_NEAR(alloc.rate(0) + alloc.rate(1), gbps(1.0), 1e3);
}

TEST(WeightedCoflows, DrfScalesProgressByWeight) {
  const Fabric fabric(2, gbps(1.0));
  TraceBuilder builder(2);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 1, 2e8);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 1, 1e8);
  const Trace trace = builder.build();
  auto snap = snapshot_all_active(fabric, trace, true);
  snap.input.coflows[1].weight = 2.0;
  DrfScheduler drf;
  const Allocation alloc = drf.allocate(snap.input);
  // Coflow 1 (weight 2) gets twice the progress; on the same single link
  // pair that means twice the bandwidth.
  EXPECT_NEAR(alloc.rate(1) / alloc.rate(0), 2.0 * (1e8 / 2e8) * 2.0, 0.1);
  EXPECT_NEAR(alloc.rate(0) + alloc.rate(1), gbps(1.0), 1e3);
}

TEST(WeightedCoflows, InvalidWeightThrows) {
  const Fabric fabric(2, gbps(1.0));
  auto snap = snapshot_all_active(fabric, fig3_trace(), false);
  snap.input.coflows[0].weight = 0.0;
  NcDrfScheduler ncdrf;
  EXPECT_THROW(ncdrf.allocate(snap.input), CheckError);
}

// --------------------------------------------- cross-policy sanity

TEST(ExtendedRegistry, AllPoliciesFeasibleOnFig3) {
  const Fabric fabric(2, gbps(1.0));
  for (const std::string& name : scheduler_names()) {
    const auto sched = make_scheduler(name);
    auto snap =
        snapshot_all_active(fabric, fig3_trace(), sched->clairvoyant());
    const Allocation alloc = sched->allocate(snap.input);
    EXPECT_NO_THROW(check_capacity(snap.input, alloc)) << name;
  }
}

}  // namespace
}  // namespace ncdrf
