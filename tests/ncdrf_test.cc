// Tests for the NC-DRF core scheduler (Algorithm 1), including:
//   - the paper's worked example (P̂* = 2/3, every flow at 1/3 Gbps);
//   - the "extreme condition" equivalence: with identical flow sizes,
//     NC-DRF makes the same decisions as clairvoyant DRF (Sec. IV-A),
//     verified as a randomized property over seeds;
//   - non-clairvoyance by construction: allocations are invariant to flow
//     sizes;
//   - feasibility and work-conservation invariants under random workloads.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/units.h"
#include "core/ncdrf.h"
#include "core/registry.h"
#include "sched/drf.h"
#include "test_util.h"

namespace ncdrf {
namespace {

using testing::coflow_link_usage;
using testing::fig3_trace;
using testing::snapshot_all_active;

// Random trace where every coflow's flows have identical sizes (the
// paper's "extreme condition") or sizes spread by up to `spread`.
Trace random_trace(std::uint64_t seed, int machines, int coflows,
                   double spread = 1.0) {
  Rng rng(seed);
  TraceBuilder builder(machines);
  for (int c = 0; c < coflows; ++c) {
    builder.begin_coflow(0.0);
    const double base = rng.uniform(megabits(10.0), megabits(500.0));
    const int flows = static_cast<int>(rng.uniform_int(1, 12));
    for (int f = 0; f < flows; ++f) {
      const auto src =
          static_cast<MachineId>(rng.uniform_int(0, machines - 1));
      const auto dst =
          static_cast<MachineId>(rng.uniform_int(0, machines - 1));
      builder.add_flow(src, dst, base * rng.uniform(1.0, spread));
    }
  }
  return builder.build();
}

TEST(NcDrf, PaperExampleAllocation) {
  const Fabric fabric(2, gbps(1.0));
  auto snap = snapshot_all_active(fabric, fig3_trace(), false);
  // "the maximum equal sharing on the flow-count-bottleneck links is
  //  P̂* = 1/max_i Σ_k ĉ_k^i = 2/3" (Sec. IV-B example).
  EXPECT_NEAR(NcDrfScheduler::flow_count_progress(snap.input), gbps(2.0 / 3),
              1.0);
  NcDrfScheduler ncdrf;
  const Allocation alloc = ncdrf.allocate(snap.input);
  // "all the four flows in this example will get transferring bandwidth
  //  of 1/3 Gbps".
  for (FlowId f = 0; f < 4; ++f) {
    EXPECT_NEAR(alloc.rate(f), gbps(1.0 / 3), 1.0) << "flow " << f;
  }
  // "NC-DRF can fully utilize the bandwidth resources on both link-2 and
  //  link-4" (our links 1 and 3).
  const auto usage = link_usage(snap.input, alloc);
  EXPECT_NEAR(usage[1], gbps(1.0), 1.0);
  EXPECT_NEAR(usage[3], gbps(1.0), 1.0);
}

TEST(NcDrf, EqualRatePerFlowWithinCoflowBeforeBackfill) {
  const Fabric fabric(4, gbps(1.0));
  TraceBuilder builder(4);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 2, megabits(10.0));
  builder.add_flow(0, 3, megabits(90.0));   // size differs — rate must not
  builder.add_flow(1, 2, megabits(400.0));  // (NC-DRF cannot see sizes)
  const Trace trace = builder.build();
  auto snap = snapshot_all_active(fabric, trace, false);
  NcDrfScheduler ncdrf(NcDrfOptions{.work_conserving = false});
  const Allocation alloc = ncdrf.allocate(snap.input);
  EXPECT_DOUBLE_EQ(alloc.rate(0), alloc.rate(1));
  EXPECT_DOUBLE_EQ(alloc.rate(1), alloc.rate(2));
}

TEST(NcDrf, AllocationProportionalToFlowCounts) {
  const Fabric fabric(2, gbps(1.0));
  auto snap = snapshot_all_active(fabric, fig3_trace(), false);
  NcDrfScheduler ncdrf(NcDrfOptions{.work_conserving = false});
  const Allocation alloc = ncdrf.allocate(snap.input);
  // a_k^i = ĉ_k^i · P̂*: coflow A uses <1,1,0,2> flows → usage on its
  // flow-count bottleneck (link 3) is double that on links 0 and 1.
  const auto usage = coflow_link_usage(fabric, snap.input.coflows[0], alloc);
  EXPECT_NEAR(usage[3], 2.0 * usage[0], 1.0);
  EXPECT_NEAR(usage[0], usage[1], 1.0);
}

TEST(NcDrf, NonClairvoyantByConstruction) {
  // Scaling every flow size by 1000× must not change NC-DRF's decisions —
  // only endpoints and counts may matter.
  const Fabric fabric(6, gbps(1.0));
  const Trace base = random_trace(99, 6, 8, 5.0);
  TraceBuilder scaled_builder(6);
  for (const Coflow& c : base.coflows) {
    scaled_builder.begin_coflow(c.arrival_time());
    for (const Flow& f : c.flows()) {
      scaled_builder.add_flow(f.src, f.dst, f.size_bits * 1000.0);
    }
  }
  const Trace scaled = scaled_builder.build();

  NcDrfScheduler ncdrf;
  auto snap_a = snapshot_all_active(fabric, base, false);
  auto snap_b = snapshot_all_active(fabric, scaled, false);
  const Allocation alloc_a = ncdrf.allocate(snap_a.input);
  const Allocation alloc_b = ncdrf.allocate(snap_b.input);
  for (FlowId f = 0; f < base.total_flows; ++f) {
    EXPECT_DOUBLE_EQ(alloc_a.rate(f), alloc_b.rate(f)) << "flow " << f;
  }
}

// Property sweep: with identical flow sizes inside each coflow, NC-DRF's
// pre-backfill allocation equals clairvoyant DRF's (the Sec. IV-A
// "extreme condition").
class NcDrfEqualsDrfProperty : public ::testing::TestWithParam<int> {};

TEST_P(NcDrfEqualsDrfProperty, IdenticalSizesMakeNcDrfOptimal) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Fabric fabric(8, gbps(1.0));
  const Trace trace = random_trace(seed, 8, 10, /*spread=*/1.0);

  NcDrfScheduler ncdrf(NcDrfOptions{.work_conserving = false});
  DrfScheduler drf;

  auto snap_nc = snapshot_all_active(fabric, trace, false);
  auto snap_drf = snapshot_all_active(fabric, trace, true);
  const Allocation a_nc = ncdrf.allocate(snap_nc.input);
  const Allocation a_drf = drf.allocate(snap_drf.input);
  for (FlowId f = 0; f < trace.total_flows; ++f) {
    EXPECT_NEAR(a_nc.rate(f), a_drf.rate(f), 1e-3) << "flow " << f;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NcDrfEqualsDrfProperty,
                         ::testing::Range(0, 25));

// Property sweep: feasibility and the work-conservation direction on
// arbitrary (skewed) workloads.
class NcDrfInvariants : public ::testing::TestWithParam<int> {};

TEST_P(NcDrfInvariants, FeasibleAndBackfillMonotone) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Fabric fabric(10, gbps(1.0));
  const Trace trace = random_trace(seed + 1000, 10, 15, /*spread=*/8.0);

  NcDrfScheduler plain(NcDrfOptions{.work_conserving = false});
  NcDrfScheduler conserving;
  auto snap = snapshot_all_active(fabric, trace, false);
  const Allocation base = plain.allocate(snap.input);
  const Allocation filled = conserving.allocate(snap.input);

  EXPECT_NO_THROW(check_capacity(snap.input, base));
  EXPECT_NO_THROW(check_capacity(snap.input, filled));
  // Backfill only adds bandwidth, to every flow.
  for (const ActiveCoflow& c : snap.input.coflows) {
    for (const ActiveFlow& f : c.flows) {
      EXPECT_GE(filled.rate(f.id), base.rate(f.id) - 1e-9);
      EXPECT_GT(base.rate(f.id), 0.0);  // no flow is ever starved
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NcDrfInvariants, ::testing::Range(0, 25));

TEST(NcDrf, EmptyInputYieldsEmptyAllocation) {
  const Fabric fabric(2, gbps(1.0));
  ScheduleInput input;
  input.fabric = &fabric;
  NcDrfScheduler ncdrf;
  const Allocation alloc = ncdrf.allocate(input);
  EXPECT_TRUE(alloc.empty());
}

TEST(NcDrf, OnlineCountChangeShiftsAllocation) {
  // When a flow of coflow A finishes, A's flow counts change and the
  // shares rebalance — the NC-DRFOnline behaviour.
  const Fabric fabric(2, gbps(1.0));
  auto snap = snapshot_all_active(fabric, fig3_trace(), false);
  NcDrfScheduler ncdrf(NcDrfOptions{.work_conserving = false});
  const Allocation before = ncdrf.allocate(snap.input);

  // Remove A's flow on uplink 0 (flow id 0): A now has <0,1,0,1> counts,
  // bottleneck 1; B unchanged <0,2,1,1>… wait: B has 2 flows on uplink 1.
  auto& flows_a = snap.input.coflows[0].flows;
  flows_a.erase(flows_a.begin());
  const Allocation after = ncdrf.allocate(snap.input);
  EXPECT_GT(after.rate(1), before.rate(1));  // A's surviving flow speeds up
}

TEST(Registry, CreatesEveryPolicy) {
  for (const std::string& name : scheduler_names()) {
    const auto sched = make_scheduler(name);
    ASSERT_NE(sched, nullptr) << name;
    EXPECT_FALSE(sched->name().empty());
  }
  EXPECT_THROW(make_scheduler("bogus"), CheckError);
  EXPECT_FALSE(make_scheduler("ncdrf")->clairvoyant());
  EXPECT_FALSE(make_scheduler("psp")->clairvoyant());
  EXPECT_FALSE(make_scheduler("tcp")->clairvoyant());
  EXPECT_FALSE(make_scheduler("aalo")->clairvoyant());
  EXPECT_TRUE(make_scheduler("drf")->clairvoyant());
  EXPECT_TRUE(make_scheduler("hug")->clairvoyant());
  EXPECT_TRUE(make_scheduler("varys")->clairvoyant());
}

}  // namespace
}  // namespace ncdrf
