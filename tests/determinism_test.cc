// Determinism tests: the same seed must produce bit-identical results —
// two full simulator runs serialize to byte-identical metrics JSON, the
// parallel sweep runner is thread-count-invariant, and the Rng replays
// its stream exactly. These pin the reproducibility contract everything
// else (property tests, fault scenarios, figure benches) relies on.
#include <gtest/gtest.h>

#include <iomanip>
#include <sstream>
#include <string>

#include "common/rng.h"
#include "common/units.h"
#include "core/registry.h"
#include "runner/sweep.h"
#include "sim/sim.h"

namespace ncdrf {
namespace {

Trace random_trace(std::uint64_t seed, int machines, int coflows) {
  Rng rng(seed);
  TraceBuilder builder(machines);
  for (int c = 0; c < coflows; ++c) {
    builder.begin_coflow(rng.uniform(0.0, 2.0));
    const int flows = static_cast<int>(rng.uniform_int(1, 8));
    for (int f = 0; f < flows; ++f) {
      builder.add_flow(
          static_cast<MachineId>(rng.uniform_int(0, machines - 1)),
          static_cast<MachineId>(rng.uniform_int(0, machines - 1)),
          rng.uniform(megabits(10.0), megabits(200.0)));
    }
  }
  return builder.build();
}

// Serializes the deterministic content of a run — every double at full
// precision (max_digits10), so two runs match iff they are bit-identical.
std::string metrics_json(const RunResult& run) {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "{\"makespan\":" << run.makespan
     << ",\"total_bits\":" << run.total_bits_delivered
     << ",\"events\":" << run.num_events
     << ",\"allocations\":" << run.num_allocations << ",\"coflows\":[";
  for (std::size_t k = 0; k < run.coflows.size(); ++k) {
    if (k) os << ',';
    os << "{\"id\":" << run.coflows[k].id
       << ",\"cct\":" << run.coflows[k].cct
       << ",\"completion\":" << run.coflows[k].completion << "}";
  }
  os << "]}";
  return os.str();
}

TEST(Determinism, TwoRunsSerializeIdentically) {
  const Fabric fabric(6, gbps(1.0));
  const Trace trace = random_trace(4242, 6, 12);
  for (const std::string& name : scheduler_names()) {
    const auto s1 = make_scheduler(name);
    const auto s2 = make_scheduler(name);
    const std::string a = metrics_json(simulate(fabric, trace, *s1));
    const std::string b = metrics_json(simulate(fabric, trace, *s2));
    EXPECT_EQ(a, b) << name;
  }
}

TEST(Determinism, SweepIsThreadCountInvariant) {
  // The whole grid on 1 thread vs 4 threads: every cell's metrics JSON
  // must be byte-identical (per-cell wall times differ, but they are
  // perf telemetry, not metrics).
  SweepSpec spec;
  spec.fabric = Fabric(5, gbps(1.0));
  spec.policies = {"ncdrf", "ncdrf-live", "drf", "hug", "tcp", "aalo"};
  spec.traces.push_back(SweepCase{"a", random_trace(7, 5, 10)});
  spec.traces.push_back(SweepCase{"b", random_trace(8, 5, 6)});

  spec.threads = 1;
  const SweepResult serial = run_sweep(spec);
  spec.threads = 4;
  const SweepResult parallel = run_sweep(spec);

  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    EXPECT_EQ(serial.cells[i].policy, parallel.cells[i].policy);
    EXPECT_EQ(serial.cells[i].trace_label, parallel.cells[i].trace_label);
    EXPECT_EQ(metrics_json(serial.cells[i].run),
              metrics_json(parallel.cells[i].run))
        << serial.cells[i].policy << " × " << serial.cells[i].trace_label;
  }
}

TEST(Determinism, RngReplaysItsStreamExactly) {
  Rng a(123456789);
  Rng b(123456789);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
  // Distribution draws replay too (they consume the same raw stream).
  Rng c(55), d(55);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(c.uniform(), d.uniform());
    ASSERT_EQ(c.uniform_int(0, 1000), d.uniform_int(0, 1000));
    ASSERT_EQ(c.exponential(2.0), d.exponential(2.0));
    ASSERT_EQ(c.bernoulli(0.3), d.bernoulli(0.3));
  }
  // Different seeds diverge immediately (no accidental state sharing).
  Rng e(1), f(2);
  EXPECT_NE(e.next_u64(), f.next_u64());
}

TEST(Determinism, TraceGenerationIsSeedStable) {
  const Trace a = random_trace(99, 6, 10);
  const Trace b = random_trace(99, 6, 10);
  ASSERT_EQ(a.coflows.size(), b.coflows.size());
  ASSERT_EQ(a.total_flows, b.total_flows);
  for (std::size_t k = 0; k < a.coflows.size(); ++k) {
    ASSERT_EQ(a.coflows[k].flows().size(), b.coflows[k].flows().size());
    EXPECT_EQ(a.coflows[k].arrival_time(), b.coflows[k].arrival_time());
    for (std::size_t i = 0; i < a.coflows[k].flows().size(); ++i) {
      const Flow& fa = a.coflows[k].flows()[i];
      const Flow& fb = b.coflows[k].flows()[i];
      EXPECT_EQ(fa.src, fb.src);
      EXPECT_EQ(fa.dst, fb.dst);
      EXPECT_EQ(fa.size_bits, fb.size_bits);
    }
  }
}

}  // namespace
}  // namespace ncdrf
