// Shared helpers for scheduler and simulator tests: building
// ScheduleInput snapshots from traces and small inline workloads, plus the
// cross-policy allocation invariant audit shared by the property and
// serving tiers.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sched/scheduler.h"
#include "trace/trace.h"

namespace ncdrf::testing {

// Snapshot state: remaining bits per flow plus the scheduler view.
// Heap-held members keep the raw pointers inside `input` stable across
// moves of the Snapshot itself.
struct Snapshot {
  ScheduleInput input;
  std::unique_ptr<std::vector<double>> remaining;  // indexed by FlowId
  std::unique_ptr<ClairvoyantInfo> info;

  // Wires the clairvoyant pointer; call after remaining is final.
  void expose_sizes() {
    info = std::make_unique<ClairvoyantInfo>(remaining.get());
    input.clairvoyant = info.get();
  }
};

// Builds a snapshot with every coflow of `trace` active at time `now` and
// full remaining demand. Sizes are exposed iff `clairvoyant`.
inline Snapshot snapshot_all_active(const Fabric& fabric, const Trace& trace,
                                    bool clairvoyant, double now = 0.0) {
  Snapshot snap;
  snap.input.fabric = &fabric;
  snap.input.now = now;
  snap.remaining = std::make_unique<std::vector<double>>(
      static_cast<std::size_t>(trace.total_flows), 0.0);
  for (const Coflow& coflow : trace.coflows) {
    ActiveCoflow view;
    view.id = coflow.id();
    view.arrival_time = coflow.arrival_time();
    view.attained_bits = 0.0;
    for (const Flow& f : coflow.flows()) {
      view.flows.push_back(ActiveFlow{f.id, f.coflow, f.src, f.dst});
      (*snap.remaining)[static_cast<std::size_t>(f.id)] = f.size_bits;
    }
    snap.input.coflows.push_back(std::move(view));
  }
  if (clairvoyant) snap.expose_sizes();
  return snap;
}

// The paper's Fig. 3 workload: two coflows contending on a 2-machine
// fabric with 1 Gbps links. Coflow-A: 100 Mb from machines 0 and 1 to
// machine 1. Coflow-B: 100 Mb from machine 1 to machines 0 and 1.
inline Trace fig3_trace() {
  TraceBuilder builder(2);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 1, 1e8);
  builder.add_flow(1, 1, 1e8);
  builder.begin_coflow(0.0);
  builder.add_flow(1, 0, 1e8);
  builder.add_flow(1, 1, 1e8);
  return builder.build();
}

// Per-coflow aggregate link usage under an allocation.
inline std::vector<double> coflow_link_usage(const Fabric& fabric,
                                             const ActiveCoflow& coflow,
                                             const Allocation& alloc) {
  std::vector<double> usage(static_cast<std::size_t>(fabric.num_links()),
                            0.0);
  for (const ActiveFlow& f : coflow.flows) {
    usage[static_cast<std::size_t>(fabric.uplink(f.src))] +=
        alloc.rate(f.id);
    usage[static_cast<std::size_t>(fabric.downlink(f.dst))] +=
        alloc.rate(f.id);
  }
  return usage;
}

// The three invariants any sane allocation must satisfy, shared by the
// cross-scheduler property suite and the serving-path tests:
//   (1) non-negative rates for every active flow;
//   (2) per-link capacity feasibility (check_capacity);
//   (3) work conservation — an idle link with an unfinished flow on it is
//       only legitimate if every such flow is bottlenecked on its other
//       link (a flow rated ~0 with both links idle is starved capacity
//       the policy just wasted).
// `context` tags every failure (policy name, seed, epoch...).
inline void expect_allocation_invariants(const ScheduleInput& input,
                                         const Allocation& alloc,
                                         const std::string& context) {
  const Fabric& fabric = *input.fabric;

  // (1) Non-negative rates for every active flow.
  for (const ActiveCoflow& coflow : input.coflows) {
    for (const ActiveFlow& f : coflow.flows) {
      EXPECT_GE(alloc.rate(f.id), 0.0) << context << " flow " << f.id;
    }
  }

  // (2) Capacity feasibility on every link.
  EXPECT_NO_THROW(check_capacity(input, alloc, 1e-6)) << context;

  // (3) Work conservation. Compute per-link usage, then audit every
  // near-idle link that still has a flow with pending demand.
  std::vector<double> usage(static_cast<std::size_t>(fabric.num_links()),
                            0.0);
  for (const ActiveCoflow& coflow : input.coflows) {
    for (const ActiveFlow& f : coflow.flows) {
      usage[static_cast<std::size_t>(fabric.uplink(f.src))] +=
          alloc.rate(f.id);
      usage[static_cast<std::size_t>(fabric.downlink(f.dst))] +=
          alloc.rate(f.id);
    }
  }
  const double tol = 1e-6;
  for (const ActiveCoflow& coflow : input.coflows) {
    for (const ActiveFlow& f : coflow.flows) {
      const auto up = static_cast<std::size_t>(fabric.uplink(f.src));
      const auto down = static_cast<std::size_t>(fabric.downlink(f.dst));
      for (const auto& [link, other] :
           {std::pair{up, down}, std::pair{down, up}}) {
        const double cap = fabric.capacity(static_cast<LinkId>(link));
        const double other_cap = fabric.capacity(static_cast<LinkId>(other));
        if (usage[link] > 1e-9 * cap) continue;  // link is in use
        // This flow has pending demand on an idle link: its rate is ~0,
        // which is only work-conserving if its other endpoint is
        // saturated by everyone else.
        EXPECT_GE(usage[other], other_cap * (1.0 - tol))
            << context << " idles link " << link << " while flow " << f.id
            << " (coflow " << coflow.id << ") has pending demand and "
            << "its other link is not saturated";
      }
    }
  }
}

}  // namespace ncdrf::testing
