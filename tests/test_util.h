// Shared helpers for scheduler and simulator tests: building
// ScheduleInput snapshots from traces and small inline workloads.
#pragma once

#include <memory>
#include <vector>

#include "sched/scheduler.h"
#include "trace/trace.h"

namespace ncdrf::testing {

// Snapshot state: remaining bits per flow plus the scheduler view.
// Heap-held members keep the raw pointers inside `input` stable across
// moves of the Snapshot itself.
struct Snapshot {
  ScheduleInput input;
  std::unique_ptr<std::vector<double>> remaining;  // indexed by FlowId
  std::unique_ptr<ClairvoyantInfo> info;

  // Wires the clairvoyant pointer; call after remaining is final.
  void expose_sizes() {
    info = std::make_unique<ClairvoyantInfo>(remaining.get());
    input.clairvoyant = info.get();
  }
};

// Builds a snapshot with every coflow of `trace` active at time `now` and
// full remaining demand. Sizes are exposed iff `clairvoyant`.
inline Snapshot snapshot_all_active(const Fabric& fabric, const Trace& trace,
                                    bool clairvoyant, double now = 0.0) {
  Snapshot snap;
  snap.input.fabric = &fabric;
  snap.input.now = now;
  snap.remaining = std::make_unique<std::vector<double>>(
      static_cast<std::size_t>(trace.total_flows), 0.0);
  for (const Coflow& coflow : trace.coflows) {
    ActiveCoflow view;
    view.id = coflow.id();
    view.arrival_time = coflow.arrival_time();
    view.attained_bits = 0.0;
    for (const Flow& f : coflow.flows()) {
      view.flows.push_back(ActiveFlow{f.id, f.coflow, f.src, f.dst});
      (*snap.remaining)[static_cast<std::size_t>(f.id)] = f.size_bits;
    }
    snap.input.coflows.push_back(std::move(view));
  }
  if (clairvoyant) snap.expose_sizes();
  return snap;
}

// The paper's Fig. 3 workload: two coflows contending on a 2-machine
// fabric with 1 Gbps links. Coflow-A: 100 Mb from machines 0 and 1 to
// machine 1. Coflow-B: 100 Mb from machine 1 to machines 0 and 1.
inline Trace fig3_trace() {
  TraceBuilder builder(2);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 1, 1e8);
  builder.add_flow(1, 1, 1e8);
  builder.begin_coflow(0.0);
  builder.add_flow(1, 0, 1e8);
  builder.add_flow(1, 1, 1e8);
  return builder.build();
}

// Per-coflow aggregate link usage under an allocation.
inline std::vector<double> coflow_link_usage(const Fabric& fabric,
                                             const ActiveCoflow& coflow,
                                             const Allocation& alloc) {
  std::vector<double> usage(static_cast<std::size_t>(fabric.num_links()),
                            0.0);
  for (const ActiveFlow& f : coflow.flows) {
    usage[static_cast<std::size_t>(fabric.uplink(f.src))] +=
        alloc.rate(f.id);
    usage[static_cast<std::size_t>(fabric.downlink(f.dst))] +=
        alloc.rate(f.id);
  }
  return usage;
}

}  // namespace ncdrf::testing
