// Randomized property sweeps across the whole policy suite:
//   - the cross-scheduler invariant suite: every registered policy, on
//     200 random workloads, produces non-negative, capacity-feasible,
//     work-conserving allocations;
//   - feasibility + conservation on heterogeneous-capacity fabrics;
//   - determinism of the simulator;
//   - online NC-DRF(live) ≡ DRF equivalence with identical flow sizes,
//     including staggered arrivals;
//   - coflow records' physical sanity under churn;
//   - serving-path invariants: every policy's batched-admission
//     allocations (src/serve/) stay feasible and work-conserving.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/units.h"
#include "core/ncdrf.h"
#include "core/registry.h"
#include "metrics/eval.h"
#include "sched/drf.h"
#include "serve/loadgen.h"
#include "serve/server.h"
#include "sim/sim.h"
#include "test_util.h"

namespace ncdrf {
namespace {

Fabric random_fabric(Rng& rng, int machines) {
  std::vector<double> capacities;
  capacities.reserve(static_cast<std::size_t>(2 * machines));
  for (int i = 0; i < 2 * machines; ++i) {
    capacities.push_back(rng.uniform(gbps(0.5), gbps(4.0)));
  }
  return Fabric(std::move(capacities));
}

Trace random_online_trace(Rng& rng, int machines, int coflows,
                          bool identical_sizes) {
  TraceBuilder builder(machines);
  for (int c = 0; c < coflows; ++c) {
    builder.begin_coflow(rng.uniform(0.0, 3.0));
    const double base = rng.uniform(megabits(20.0), megabits(300.0));
    const int flows = static_cast<int>(rng.uniform_int(1, 10));
    for (int f = 0; f < flows; ++f) {
      builder.add_flow(
          static_cast<MachineId>(rng.uniform_int(0, machines - 1)),
          static_cast<MachineId>(rng.uniform_int(0, machines - 1)),
          identical_sizes ? base : base * rng.uniform(0.2, 5.0));
    }
  }
  return builder.build();
}

// -------------------------------------------------------------------
// Cross-scheduler invariant suite: one randomized snapshot per seed, every
// registered policy. Three invariants hold for any sane allocation:
//   (1) non-negative rates;
//   (2) per-link capacity feasibility (check_capacity);
//   (3) work conservation — an idle link with an unfinished flow on it is
//       only legitimate if every such flow is bottlenecked on its other
//       link (a flow rated ~0 with both links idle is starved capacity
//       the policy just wasted).
// -------------------------------------------------------------------

class CrossSchedulerInvariants : public ::testing::TestWithParam<int> {};

TEST_P(CrossSchedulerInvariants, NonNegativeFeasibleWorkConserving) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 90'000);
  const int machines = static_cast<int>(rng.uniform_int(3, 6));
  const Fabric fabric = random_fabric(rng, machines);
  const Trace trace =
      random_online_trace(rng, machines, static_cast<int>(rng.uniform_int(2, 8)),
                          false);
  for (const std::string& name : scheduler_names()) {
    const auto sched = make_scheduler(name);
    testing::Snapshot snap =
        testing::snapshot_all_active(fabric, trace, sched->clairvoyant());
    Allocation alloc = sched->allocate(snap.input);
    testing::expect_allocation_invariants(
        snap.input, alloc,
        name + " seed " + std::to_string(GetParam()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossSchedulerInvariants,
                         ::testing::Range(0, 200));

// -------------------------------------------------------------------
// Serving-path invariants: the batched-admission allocations the online
// front-end produces satisfy the same three invariants as direct
// allocate() calls — batching, epoch reallocation and modeled departures
// change *when* the kernel runs, never what a legal allocation is.
// -------------------------------------------------------------------

class ServingInvariants : public ::testing::TestWithParam<int> {};

TEST_P(ServingInvariants, BatchedAdmissionFeasibleAndConserving) {
  const int seed = GetParam();
  serve::LoadGenOptions load;
  load.seed = static_cast<std::uint64_t>(seed) + 70'000;
  load.num_clients = 2;
  load.num_machines = 6;
  load.arrival_rate_per_s = 400.0;
  load.duration_s = 0.05;
  load.max_flows_per_coflow = 6;
  load.mean_lifetime_s = 0.02;  // departures interleave with admissions
  const serve::LoadGenerator gen(load);

  for (const std::string& name : scheduler_names()) {
    const auto sched = make_scheduler(name);
    serve::LoadGenOptions per_policy = load;
    per_policy.sizes_known = sched->clairvoyant();
    const auto schedule = serve::LoadGenerator(per_policy).generate();

    const Fabric fabric(load.num_machines, gbps(1.0));
    serve::ServeOptions options;
    options.epoch_s = 5e-3;
    options.max_batch_per_epoch = 4;  // several epochs' worth of backlog
    serve::ServeFront front(fabric, *sched, load.num_clients, options);
    int checked = 0;
    front.alloc_hook = [&](double now, const ScheduleInput& view,
                           const Allocation& alloc) {
      testing::expect_allocation_invariants(
          view, alloc,
          name + " seed " + std::to_string(seed) + " epoch t=" +
              std::to_string(now));
      ++checked;
    };
    front.run(schedule);
    EXPECT_GT(checked, 0) << name << " seed " << seed;
    EXPECT_EQ(front.admitted(), gen.total_coflows()) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServingInvariants, ::testing::Range(0, 50));

class HeterogeneousFabricProperty : public ::testing::TestWithParam<int> {};

TEST_P(HeterogeneousFabricProperty, AllPoliciesFeasibleAndConserving) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 40'000);
  const Fabric fabric = random_fabric(rng, 6);
  const Trace trace = random_online_trace(rng, 6, 10, false);
  SimOptions options;
  options.validate_allocations = true;
  for (const std::string& name : scheduler_names()) {
    const auto sched = make_scheduler(name);
    const RunResult run = simulate(fabric, trace, *sched, options);
    EXPECT_NEAR(run.total_bits_delivered, trace.total_bits(),
                trace.total_bits() * 1e-6)
        << name;
    for (const CoflowRecord& rec : run.coflows) {
      EXPECT_GE(rec.cct, rec.min_cct - 1e-6) << name;  // physics bound
      EXPECT_GE(rec.completion, rec.arrival) << name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeterogeneousFabricProperty,
                         ::testing::Range(0, 10));

class OnlineEquivalenceProperty : public ::testing::TestWithParam<int> {};

TEST_P(OnlineEquivalenceProperty, LiveNcDrfEqualsDrfWithIdenticalSizes) {
  // With identical flow sizes inside each coflow, live-count NC-DRF makes
  // the same decisions as clairvoyant DRF at every event, even with
  // staggered arrivals: equal per-flow rates keep remaining sizes equal,
  // so the remaining-demand correlation always equals the flow-count
  // correlation.
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 50'000);
  const Fabric fabric(8, gbps(1.0));
  const Trace trace = random_online_trace(rng, 8, 12, true);

  NcDrfScheduler ncdrf(NcDrfOptions{.work_conserving = false,
                                    .count_finished_flows = false});
  DrfScheduler drf;
  const RunResult run_nc = simulate(fabric, trace, ncdrf);
  const RunResult run_drf = simulate(fabric, trace, drf);
  for (std::size_t k = 0; k < trace.coflows.size(); ++k) {
    EXPECT_NEAR(run_nc.coflows[k].cct, run_drf.coflows[k].cct,
                run_drf.coflows[k].cct * 1e-6)
        << "coflow " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OnlineEquivalenceProperty,
                         ::testing::Range(0, 15));

class DeterminismProperty : public ::testing::TestWithParam<int> {};

TEST_P(DeterminismProperty, SimulationIsBitwiseRepeatable) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 60'000);
  const Fabric fabric(5, gbps(1.0));
  const Trace trace = random_online_trace(rng, 5, 8, false);
  for (const std::string name : {"ncdrf", "psp", "aalo", "varys"}) {
    const auto s1 = make_scheduler(name);
    const auto s2 = make_scheduler(name);
    const RunResult a = simulate(fabric, trace, *s1);
    const RunResult b = simulate(fabric, trace, *s2);
    ASSERT_EQ(a.coflows.size(), b.coflows.size());
    for (std::size_t k = 0; k < a.coflows.size(); ++k) {
      EXPECT_EQ(a.coflows[k].cct, b.coflows[k].cct) << name;
    }
    EXPECT_EQ(a.num_events, b.num_events) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismProperty, ::testing::Range(0, 8));

TEST(StaleVsLive, LiveNeverLosesOnAverageNormalizedCct) {
  // The ablation's direction as an invariant: live counts return finished
  // flows' shares immediately, so on a contended workload the average
  // normalized CCT of live NC-DRF is no worse than stale NC-DRF's.
  Rng rng(77);
  const Fabric fabric(10, gbps(1.0));
  const Trace trace = random_online_trace(rng, 10, 40, false);

  DrfScheduler drf;
  const RunResult base = simulate(fabric, trace, drf);
  const auto stale = make_scheduler("ncdrf");
  const auto live = make_scheduler("ncdrf-live");
  const RunResult run_stale = simulate(fabric, trace, *stale);
  const RunResult run_live = simulate(fabric, trace, *live);

  const Summary stale_norm = summarize(normalized_ccts(run_stale, base));
  const Summary live_norm = summarize(normalized_ccts(run_live, base));
  EXPECT_LE(live_norm.mean, stale_norm.mean * 1.02);
}

}  // namespace
}  // namespace ncdrf
