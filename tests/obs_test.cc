// Tests for the observability layer (src/obs/): tracer ring + exports,
// metrics registry + histogram quantiles, SchedPerf aggregation, the JSON
// schema validators, and the streaming Theorem 1 fairness auditor.
#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "common/units.h"
#include "core/ncdrf.h"
#include "obs/audit.h"
#include "obs/json_lint.h"
#include "obs/metrics.h"
#include "obs/perf.h"
#include "obs/tracer.h"
#include "runner/sweep.h"
#include "sim/sim.h"
#include "test_util.h"
#include "trace/synthetic_fb.h"

namespace ncdrf {
namespace {

using obs::EventKind;
using obs::Tracer;

// --- Tracer ---------------------------------------------------------------

TEST(TracerTest, RecordsEventsInOrder) {
  Tracer tracer(16);
  tracer.instant(EventKind::kCoflowArrival, 1.0, 7, 3);
  tracer.begin(EventKind::kAllocate, 2.0, 1);
  tracer.end(EventKind::kAllocate, 2.0);
  const std::vector<obs::TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, EventKind::kCoflowArrival);
  EXPECT_EQ(events[0].phase, 'i');
  EXPECT_EQ(events[0].a0, 7);
  EXPECT_EQ(events[1].phase, 'B');
  EXPECT_EQ(events[2].phase, 'E');
  EXPECT_EQ(tracer.dropped_events(), 0);
}

TEST(TracerTest, RingOverflowDropsOldestAndCounts) {
  Tracer tracer(4);
  for (int i = 0; i < 10; ++i) {
    tracer.instant(EventKind::kFlowFinish, static_cast<double>(i), i);
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.capacity(), 4u);
  EXPECT_EQ(tracer.dropped_events(), 6);
  const std::vector<obs::TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  // The survivors are the newest four, oldest surviving first.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(events[i].a0, 6 + i);
}

TEST(TracerTest, OverflowedTraceStillExportsValidChromeJson) {
  // Overflow drops oldest-first, which can orphan an 'E' whose 'B' was
  // overwritten; the exporter must prune those so the trace still loads.
  Tracer tracer(3);
  {
    obs::ScopedSpan outer(&tracer, EventKind::kAllocate, 1.0);
    { obs::ScopedSpan inner(&tracer, EventKind::kPStarSearch, 1.0); }
    { obs::ScopedSpan inner(&tracer, EventKind::kBackfill, 2.0); }
  }  // record order: B B E B E E — ring of 3 keeps B E E (one orphan E)
  EXPECT_GT(tracer.dropped_events(), 0);
  std::ostringstream json;
  tracer.write_chrome_json(json);
  EXPECT_EQ(obs::validate_chrome_trace_json(json.str()), "");
  // The backfill span survived intact; the orphaned outer 'E' is gone.
  EXPECT_NE(json.str().find("backfill"), std::string::npos);
}

TEST(TracerTest, ScopedSpanNestsAndNullTracerIsNoOp) {
  Tracer tracer(16);
  {
    obs::ScopedSpan outer(&tracer, EventKind::kAllocate, 1.0, 2);
    obs::ScopedSpan inner(&tracer, EventKind::kPStarSearch, 1.0);
    obs::ScopedSpan ignored(nullptr, EventKind::kBackfill, 1.0);
  }
  const std::vector<obs::TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 4u);  // B B E E — LIFO destruction order
  EXPECT_EQ(events[0].kind, EventKind::kAllocate);
  EXPECT_EQ(events[1].kind, EventKind::kPStarSearch);
  EXPECT_EQ(events[2].kind, EventKind::kPStarSearch);
  EXPECT_EQ(events[3].kind, EventKind::kAllocate);

  std::ostringstream json;
  tracer.write_chrome_json(json);
  EXPECT_EQ(obs::validate_chrome_trace_json(json.str()), "");
}

TEST(TracerTest, MacrosAcceptNullTracer) {
  [[maybe_unused]] Tracer* null_tracer = nullptr;
  NCDRF_TRACE_INSTANT(null_tracer, EventKind::kCoflowArrival, 0.0, 1);
  NCDRF_TRACE_ASYNC_BEGIN(null_tracer, EventKind::kSlaveDown, 0.0, 3);
  NCDRF_TRACE_ASYNC_END(null_tracer, EventKind::kSlaveDown, 1.0, 3);
  NCDRF_TRACE_SPAN(null_tracer, EventKind::kAllocate, 0.0);
#if !NCDRF_TRACE_ENABLED
  // Disabled builds must compile the macros away entirely.
  Tracer tracer(4);
  NCDRF_TRACE_INSTANT(&tracer, EventKind::kCoflowArrival, 0.0, 1);
  EXPECT_EQ(tracer.size(), 0u);
#endif
}

TEST(TracerTest, ChromeExportIsTimeSortedAndValid) {
  Tracer tracer(16);
  // Deliberately record out of time order (a delivered bus message keeps
  // its earlier deliver-time stamp); the exporter must emit sorted ts.
  tracer.instant(EventKind::kClusterHeartbeat, 2.0, 1);
  tracer.instant(EventKind::kClusterHeartbeat, 1.0, 2);
  tracer.async_begin(EventKind::kSlaveDown, 2.5, 4);
  tracer.async_end(EventKind::kSlaveDown, 3.0, 4);
  std::ostringstream json;
  tracer.write_chrome_json(json);
  EXPECT_EQ(obs::validate_chrome_trace_json(json.str()), "");
  EXPECT_NE(json.str().find("\"droppedEvents\":0"), std::string::npos);

  std::ostringstream ndjson;
  tracer.write_ndjson(ndjson);
  EXPECT_EQ(obs::validate_ndjson(ndjson.str()), "");
}

TEST(TracerTest, SimulationTraceIsByteIdenticalAcrossRuns) {
  SyntheticFbOptions options;
  options.num_coflows = 20;
  options.num_racks = 10;
  options.duration_s = 60.0;
  const Trace trace = generate_synthetic_fb(options);
  const Fabric fabric(options.num_racks, gbps(1.0));

  const auto run_traced = [&]() {
    Tracer tracer(1 << 16);
    SimOptions sim;
    sim.record_intervals = false;
    sim.tracer = &tracer;
    NcDrfScheduler scheduler;
    simulate(fabric, trace, scheduler, sim);
    std::ostringstream out;
    tracer.write_chrome_json(out);
    return out.str();
  };

  const std::string first = run_traced();
  const std::string second = run_traced();
  EXPECT_EQ(first, second);
  EXPECT_EQ(obs::validate_chrome_trace_json(first), "");
#if NCDRF_TRACE_ENABLED
  // The run must have produced real content: arrivals, spans, finishes.
  EXPECT_NE(first.find("coflow_arrival"), std::string::npos);
  EXPECT_NE(first.find("ncdrf_alloc"), std::string::npos);
  EXPECT_NE(first.find("coflow_finish"), std::string::npos);
  EXPECT_NE(first.find("p_star_search"), std::string::npos);
#endif
}

// --- Histogram / metrics registry ----------------------------------------

TEST(HistogramTest, PercentilesTrackSortedSampleOracle) {
  obs::Histogram hist(1e-6, 1e3, 1.2589254117941673);
  std::vector<double> samples;
  // Deterministic log-uniform-ish spread over 5 decades.
  double v = 1e-5;
  for (int i = 0; i < 2000; ++i) {
    samples.push_back(v);
    hist.observe(v);
    v *= 1.0093;  // ~2000 steps cover 1e-5 .. ~1e3
  }
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());

  EXPECT_EQ(hist.count(), 2000);
  EXPECT_DOUBLE_EQ(hist.min(), sorted.front());
  EXPECT_DOUBLE_EQ(hist.max(), sorted.back());
  for (const double p : {10.0, 50.0, 90.0, 95.0, 99.0}) {
    const auto rank = static_cast<std::size_t>(
        p / 100.0 * static_cast<double>(sorted.size() - 1));
    const double oracle = sorted[rank];
    const double got = hist.percentile(p);
    // Bucketed quantiles are accurate to one growth factor.
    EXPECT_LE(got, oracle * hist.growth() * 1.0001) << "p" << p;
    EXPECT_GE(got, oracle / hist.growth() * 0.9999) << "p" << p;
  }
}

TEST(HistogramTest, ClampsToObservedRangeAndHandlesEmpty) {
  obs::Histogram hist;
  EXPECT_EQ(hist.count(), 0);
  EXPECT_DOUBLE_EQ(hist.percentile(50.0), 0.0);
  hist.observe(5.0);
  EXPECT_DOUBLE_EQ(hist.percentile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(hist.percentile(100.0), 5.0);
  EXPECT_DOUBLE_EQ(hist.mean(), 5.0);
}

TEST(MetricsRegistryTest, JsonExportIsDeterministicAndValid) {
  const auto build = []() {
    std::ostringstream out;
    obs::MetricsRegistry registry;
    registry.counter("b.count").inc(3);
    registry.counter("a.count").inc();
    registry.gauge("x.level").set(0.5);
    registry.histogram("lat").observe(1e-3);
    registry.histogram("lat").observe(2e-3);
    registry.write_json(out);
    return out.str();
  };
  const std::string first = build();
  EXPECT_EQ(first, build());
  EXPECT_EQ(obs::validate_metrics_json(first), "");
  EXPECT_NE(first.find("\"a.count\":1"), std::string::npos);
  EXPECT_NE(first.find("\"b.count\":3"), std::string::npos);
  // Sorted keys: a.count precedes b.count.
  EXPECT_LT(first.find("a.count"), first.find("b.count"));
}

TEST(MetricsRegistryTest, InstrumentReferencesAreStable) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("events");
  for (int i = 0; i < 100; ++i) registry.counter("filler" + std::to_string(i));
  counter.inc(5);
  EXPECT_EQ(registry.counter("events").value, 5);
}

// --- SchedPerf ------------------------------------------------------------

TEST(SchedPerfTest, AccumulatesAndSerializesBackfillCounters) {
  SchedPerf a;
  a.allocate_calls = 2;
  a.backfill_rounds = 3;
  a.backfill_seconds = 0.5;
  SchedPerf b;
  b.allocate_calls = 1;
  b.backfill_rounds = 4;
  b.backfill_seconds = 0.25;
  b.links_touched = 7;
  a += b;
  EXPECT_EQ(a.allocate_calls, 3);
  EXPECT_EQ(a.backfill_rounds, 7);
  EXPECT_DOUBLE_EQ(a.backfill_seconds, 0.75);
  EXPECT_EQ(a.links_touched, 7);

  const std::string json = to_json(a);
  EXPECT_EQ(obs::validate_json(json), "");
  EXPECT_NE(json.find("\"backfill_rounds\":7"), std::string::npos);
  EXPECT_NE(json.find("backfill_seconds"), std::string::npos);
}

TEST(SchedPerfTest, MergesIntoRegistry) {
  SchedPerf perf;
  perf.allocate_calls = 10;
  perf.incremental_allocs = 8;
  perf.backfill_rounds = 9;
  perf.allocate_seconds = 0.125;
  obs::MetricsRegistry registry;
  merge_sched_perf(registry, perf);
  EXPECT_EQ(registry.counter("sched.allocate_calls").value, 10);
  EXPECT_EQ(registry.counter("sched.incremental_allocs").value, 8);
  EXPECT_EQ(registry.counter("sched.backfill_rounds").value, 9);
  EXPECT_DOUBLE_EQ(registry.gauge("sched.allocate_seconds").value, 0.125);
  std::ostringstream out;
  registry.write_json(out);
  EXPECT_EQ(obs::validate_metrics_json(out.str()), "");
}

TEST(SchedPerfTest, NcDrfCountsBackfillRounds) {
  const Trace trace = testing::fig3_trace();
  const Fabric fabric(2, gbps(1.0));
  NcDrfScheduler scheduler;
  SimOptions sim;
  sim.record_intervals = false;
  simulate(fabric, trace, scheduler, sim);
  EXPECT_GT(scheduler.perf().allocate_calls, 0);
  // Fig. 3's asymmetric coflows leave spare capacity, so backfilling runs.
  EXPECT_GT(scheduler.perf().backfill_rounds, 0);
  EXPECT_GE(scheduler.perf().backfill_seconds, 0.0);
  ASSERT_NE(scheduler.perf_counters(), nullptr);
  EXPECT_EQ(scheduler.perf_counters()->allocate_calls,
            scheduler.perf().allocate_calls);
}

TEST(SweepTest, MergesPerfAcrossCells) {
  SyntheticFbOptions options;
  options.num_coflows = 12;
  options.num_racks = 8;
  options.duration_s = 30.0;
  SweepSpec spec;
  spec.fabric = Fabric(options.num_racks, gbps(1.0));
  spec.policies = {"ncdrf", "ncdrf-scratch"};
  spec.traces.push_back(SweepCase{"a", generate_synthetic_fb(options)});
  options.seed = 99;
  spec.traces.push_back(SweepCase{"b", generate_synthetic_fb(options)});
  spec.sim.record_intervals = false;
  const SweepResult sweep = run_sweep(spec);

  ASSERT_EQ(sweep.cells.size(), 4u);
  SchedPerf expected;
  for (const SweepCellResult& cell : sweep.cells) {
    EXPECT_GT(cell.perf.allocate_calls, 0) << cell.policy;
    expected += cell.perf;
  }
  EXPECT_EQ(sweep.perf.allocate_calls, expected.allocate_calls);
  EXPECT_EQ(sweep.perf.full_rebuilds, expected.full_rebuilds);
  EXPECT_EQ(sweep.perf.backfill_rounds, expected.backfill_rounds);
}

// --- JSON validators ------------------------------------------------------

TEST(JsonLintTest, AcceptsAndRejectsSyntax) {
  EXPECT_EQ(obs::validate_json("{\"a\":[1,2.5e-3,null,true,\"x\\n\"]}"), "");
  EXPECT_NE(obs::validate_json("{\"a\":}"), "");
  EXPECT_NE(obs::validate_json("{\"a\":1,}"), "");
  EXPECT_NE(obs::validate_json("{\"a\":01}"), "");  // leading zero
  EXPECT_NE(obs::validate_json("{} extra"), "");
  EXPECT_NE(obs::validate_json(""), "");
}

TEST(JsonLintTest, ChromeTraceSchemaChecks) {
  const std::string good =
      "{\"traceEvents\":[{\"name\":\"allocate\",\"cat\":\"ncdrf\","
      "\"ph\":\"B\",\"ts\":1,\"pid\":0,\"tid\":0},"
      "{\"name\":\"allocate\",\"cat\":\"ncdrf\",\"ph\":\"E\",\"ts\":2,"
      "\"pid\":0,\"tid\":0}]}";
  EXPECT_EQ(obs::validate_chrome_trace_json(good), "");

  // Unbalanced span.
  EXPECT_NE(obs::validate_chrome_trace_json(
                "{\"traceEvents\":[{\"name\":\"a\",\"cat\":\"c\","
                "\"ph\":\"B\",\"ts\":1,\"pid\":0,\"tid\":0}]}"),
            "");
  // Async phase without an id.
  EXPECT_NE(obs::validate_chrome_trace_json(
                "{\"traceEvents\":[{\"name\":\"a\",\"cat\":\"c\","
                "\"ph\":\"b\",\"ts\":1,\"pid\":0,\"tid\":0}]}"),
            "");
  // Decreasing timestamps.
  EXPECT_NE(obs::validate_chrome_trace_json(
                "{\"traceEvents\":[{\"name\":\"a\",\"cat\":\"c\","
                "\"ph\":\"i\",\"ts\":2,\"pid\":0,\"tid\":0},"
                "{\"name\":\"a\",\"cat\":\"c\",\"ph\":\"i\",\"ts\":1,"
                "\"pid\":0,\"tid\":0}]}"),
            "");
  EXPECT_NE(obs::validate_chrome_trace_json("{\"events\":[]}"), "");
}

TEST(JsonLintTest, MetricsSchemaChecks) {
  EXPECT_EQ(obs::validate_metrics_json(
                "{\"counters\":{\"a\":1},\"gauges\":{},\"histograms\":{}}"),
            "");
  // Quantiles out of order.
  EXPECT_NE(obs::validate_metrics_json(
                "{\"counters\":{},\"gauges\":{},\"histograms\":{\"h\":"
                "{\"count\":1,\"sum\":1,\"min\":1,\"max\":1,\"mean\":1,"
                "\"p50\":2,\"p95\":1,\"p99\":3}}}"),
            "");
  // Missing histogram key.
  EXPECT_NE(obs::validate_metrics_json(
                "{\"counters\":{},\"gauges\":{},\"histograms\":{\"h\":"
                "{\"count\":1}}}"),
            "");
}

// --- Engine + metrics integration ----------------------------------------

TEST(SimObservabilityTest, EngineFeedsCountersAndHistograms) {
  const Trace trace = testing::fig3_trace();
  const Fabric fabric(2, gbps(1.0));
  obs::MetricsRegistry metrics;
  SimOptions sim;
  sim.metrics = &metrics;
  NcDrfScheduler scheduler;
  const RunResult run = simulate(fabric, trace, scheduler, sim);

  EXPECT_EQ(metrics.counter("sim.coflow_arrivals").value, 2);
  EXPECT_EQ(metrics.counter("sim.coflow_finishes").value, 2);
  EXPECT_EQ(metrics.counter("sim.flow_finishes").value, 4);
  EXPECT_EQ(metrics.counter("sim.allocations").value, run.num_allocations);
  EXPECT_EQ(metrics.histogram("sched.allocate_latency_s").count(),
            run.num_allocations);
  EXPECT_GT(metrics.histogram("sim.link_utilization").count(), 0);
  std::ostringstream out;
  metrics.write_json(out);
  EXPECT_EQ(obs::validate_metrics_json(out.str()), "");
}

// --- Fairness auditor -----------------------------------------------------

TEST(AuditTest, NcDrfRunPassesTheoremEnvelope) {
  SyntheticFbOptions options;
  options.num_coflows = 15;
  options.num_racks = 8;
  options.duration_s = 60.0;
  const Trace trace = generate_synthetic_fb(options);
  const Fabric fabric(options.num_racks, gbps(1.0));

  obs::FairnessAuditor auditor(fabric);
  SimOptions sim;
  sim.record_intervals = false;
  sim.auditor = &auditor;
  NcDrfScheduler scheduler;
  simulate(fabric, trace, scheduler, sim);
  auditor.finalize();

  EXPECT_EQ(auditor.coflows_checked(),
            static_cast<long long>(trace.coflows.size()));
  EXPECT_TRUE(auditor.violations().empty());
  EXPECT_GE(auditor.e_max(), 1.0);
  EXPECT_FALSE(auditor.series().empty());
  for (const Coflow& coflow : trace.coflows) {
    EXPECT_GT(auditor.shadow_cct(coflow.id()), 0.0) << coflow.id();
  }

  std::ostringstream report;
  auditor.write_report_json(report);
  EXPECT_EQ(obs::validate_json(report.str()), "");
  EXPECT_NE(report.str().find("\"violations\":[]"), std::string::npos);

  std::ostringstream csv;
  auditor.write_series_csv(csv);
  EXPECT_EQ(csv.str().rfind("t0,t1,coflow,progress_bps", 0), 0u);
}

TEST(AuditTest, FlagsEnvelopeViolation) {
  // Two identical single-flow coflows on one pair of links: e_max = 1, so
  // any completion later than the shadow DRF CCT (times the tolerance) is
  // a violation. Report one coflow finishing 10x too late.
  TraceBuilder builder(2);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 1, 1e9);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 1, 1e9);
  const Trace trace = builder.build();
  const Fabric fabric(2, gbps(1.0));

  obs::FairnessAuditor auditor(fabric);
  for (const Coflow& coflow : trace.coflows) auditor.on_submit(coflow);
  // Shadow DRF: both coflows share the machine-0 uplink, each at 500 Mbps
  // -> both finish at t=2. A real run reporting t=1.99 and t=20 must flag
  // exactly the second coflow.
  auditor.on_complete(0, 0.0, 1.99);
  auditor.on_complete(1, 0.0, 20.0);
  auditor.finalize();

  EXPECT_DOUBLE_EQ(auditor.e_max(), 1.0);
  ASSERT_EQ(auditor.violations().size(), 1u);
  const obs::AuditViolation& v = auditor.violations()[0];
  EXPECT_EQ(v.coflow, 1);
  EXPECT_NEAR(v.shadow_cct, 2.0, 1e-6);
  EXPECT_NEAR(v.ratio, 10.0, 1e-3);

  std::ostringstream report;
  auditor.write_report_json(report);
  EXPECT_EQ(obs::validate_json(report.str()), "");
  EXPECT_NE(report.str().find("\"coflow\":1"), std::string::npos);
}

TEST(AuditTest, RelativeProgressGapHelper) {
  std::vector<ProgressSample> samples;
  // Two coflows with equal progress -> gap 0.
  samples.push_back(ProgressSample{0.0, 1.0, 0, 100.0});
  samples.push_back(ProgressSample{0.0, 1.0, 1, 100.0});
  samples.push_back(ProgressSample{1.0, 2.0, 0, 200.0});
  samples.push_back(ProgressSample{1.0, 2.0, 1, 200.0});
  EXPECT_DOUBLE_EQ(obs::relative_progress_gap(samples, 0, 1, 0.0, 2.0), 0.0);

  // 100 vs 300 at one instant: gap 200 over mean level 200 -> 1.0.
  samples.clear();
  samples.push_back(ProgressSample{0.0, 1.0, 0, 100.0});
  samples.push_back(ProgressSample{0.0, 1.0, 1, 300.0});
  EXPECT_DOUBLE_EQ(obs::relative_progress_gap(samples, 0, 1, 0.0, 1.0), 1.0);

  // Window excludes everything -> 0 (no instants with both positive).
  EXPECT_DOUBLE_EQ(obs::relative_progress_gap(samples, 0, 1, 5.0, 9.0), 0.0);
}

}  // namespace
}  // namespace ncdrf
