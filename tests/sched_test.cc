// Tests for the scheduling framework and the baseline policies, anchored
// on the paper's worked example (Figs. 3-4): PS-P's 0.25 Gbps per-flow
// shares and wasted bandwidth, DRF's 1/3 Gbps shares and equal progress.
#include <gtest/gtest.h>

#include <cmath>

#include "coflow/coflow.h"
#include "common/check.h"
#include "common/units.h"
#include "sched/aalo.h"
#include "sched/allocation.h"
#include "sched/backfill.h"
#include "sched/drf.h"
#include "sched/hug.h"
#include "sched/maxmin.h"
#include "sched/perflow.h"
#include "sched/psp.h"
#include "sched/varys.h"
#include "test_util.h"

namespace ncdrf {
namespace {

using testing::coflow_link_usage;
using testing::fig3_trace;
using testing::snapshot_all_active;

double progress_of(const Fabric& fabric, const ActiveCoflow& coflow,
                   const std::vector<double>& remaining,
                   const Allocation& alloc) {
  std::vector<Flow> flows;
  std::vector<double> sizes;
  for (const ActiveFlow& f : coflow.flows) {
    flows.push_back(Flow{f.id, f.coflow, f.src, f.dst, 0.0});
    sizes.push_back(remaining[static_cast<std::size_t>(f.id)]);
  }
  return coflow_progress(compute_demand(fabric, flows, sizes),
                         coflow_link_usage(fabric, coflow, alloc));
}

// ---------------------------------------------------------------- helpers

TEST(Allocation, DefaultsToZeroAndValidates) {
  Allocation alloc;
  EXPECT_DOUBLE_EQ(alloc.rate(42), 0.0);
  alloc.set_rate(1, 5.0);
  alloc.add_rate(1, 2.0);
  EXPECT_DOUBLE_EQ(alloc.rate(1), 7.0);
  EXPECT_DOUBLE_EQ(alloc.total_rate(), 7.0);
  EXPECT_THROW(alloc.set_rate(2, -1.0), CheckError);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(alloc.set_rate(2, inf), CheckError);
}

TEST(Allocation, LinkUsageAndCapacityCheck) {
  const Fabric fabric(2, gbps(1.0));
  auto snap = snapshot_all_active(fabric, fig3_trace(), false);
  Allocation alloc;
  for (const ActiveCoflow& c : snap.input.coflows) {
    for (const ActiveFlow& f : c.flows) alloc.set_rate(f.id, gbps(0.25));
  }
  const std::vector<double> usage = link_usage(snap.input, alloc);
  EXPECT_DOUBLE_EQ(usage[0], gbps(0.25));  // uplink 0: one flow
  EXPECT_DOUBLE_EQ(usage[1], gbps(0.75));  // uplink 1: three flows
  EXPECT_DOUBLE_EQ(usage[3], gbps(0.75));  // downlink 1: three flows
  EXPECT_NO_THROW(check_capacity(snap.input, alloc));

  for (const ActiveCoflow& c : snap.input.coflows) {
    for (const ActiveFlow& f : c.flows) alloc.set_rate(f.id, gbps(0.5));
  }
  EXPECT_THROW(check_capacity(snap.input, alloc), CheckError);
  clamp_to_capacity(snap.input, alloc);
  EXPECT_NO_THROW(check_capacity(snap.input, alloc));
}

TEST(MaxMin, SingleFlowTakesTheWholePath) {
  const Fabric fabric(2, gbps(1.0));
  std::vector<MaxMinFlow> flows{{0, 0, 1, 1.0}};
  std::vector<double> cap(4, gbps(1.0));
  const auto rates = weighted_max_min(fabric, flows, cap);
  EXPECT_DOUBLE_EQ(rates[0], gbps(1.0));
}

TEST(MaxMin, EqualSplitOnSharedBottleneck) {
  const Fabric fabric(2, gbps(1.0));
  // Two flows into the same downlink from different uplinks.
  std::vector<MaxMinFlow> flows{{0, 0, 1, 1.0}, {1, 1, 1, 1.0}};
  std::vector<double> cap(4, gbps(1.0));
  const auto rates = weighted_max_min(fabric, flows, cap);
  EXPECT_DOUBLE_EQ(rates[0], gbps(0.5));
  EXPECT_DOUBLE_EQ(rates[1], gbps(0.5));
}

TEST(MaxMin, UnfreezesSecondLevel) {
  const Fabric fabric(3, gbps(1.0));
  // Flows 0,1 share downlink of machine 2; flow 2 rides alone 1→0 but
  // shares uplink 1 with flow 1. Classic two-level max-min: flow 1 is
  // bottlenecked at 0.5 on the downlink, then flow 2 gets the remaining
  // 0.5 of uplink 1... and then grows to its own bottleneck.
  std::vector<MaxMinFlow> flows{{0, 0, 2, 1.0}, {1, 1, 2, 1.0}, {2, 1, 0, 1.0}};
  std::vector<double> cap(6, gbps(1.0));
  const auto rates = weighted_max_min(fabric, flows, cap);
  EXPECT_DOUBLE_EQ(rates[0], gbps(0.5));
  EXPECT_DOUBLE_EQ(rates[1], gbps(0.5));
  EXPECT_DOUBLE_EQ(rates[2], gbps(0.5));
}

TEST(MaxMin, RespectsWeights) {
  const Fabric fabric(2, gbps(1.0));
  std::vector<MaxMinFlow> flows{{0, 0, 1, 3.0}, {1, 1, 1, 1.0}};
  std::vector<double> cap(4, gbps(1.0));
  const auto rates = weighted_max_min(fabric, flows, cap);
  EXPECT_DOUBLE_EQ(rates[0], gbps(0.75));
  EXPECT_DOUBLE_EQ(rates[1], gbps(0.25));
}

TEST(MaxMin, ZeroCapacityLinkStarves) {
  const Fabric fabric(2, gbps(1.0));
  std::vector<MaxMinFlow> flows{{0, 0, 1, 1.0}, {1, 1, 0, 1.0}};
  std::vector<double> cap{gbps(1.0), gbps(1.0), 0.0, gbps(1.0)};
  const auto rates = weighted_max_min(fabric, flows, cap);
  EXPECT_DOUBLE_EQ(rates[1], 0.0);           // downlink 0 has no capacity
  EXPECT_DOUBLE_EQ(rates[0], gbps(1.0));     // unaffected
}

TEST(Backfill, FillsOnlyWhereBothEndsHaveSpare) {
  const Fabric fabric(2, gbps(1.0));
  auto snap = snapshot_all_active(fabric, fig3_trace(), false);
  Allocation alloc;  // start from an empty allocation
  for (const ActiveCoflow& c : snap.input.coflows) {
    for (const ActiveFlow& f : c.flows) alloc.set_rate(f.id, 0.0);
  }
  even_backfill(snap.input, alloc, 1);
  // Every link's unused capacity is split evenly over its flows; each flow
  // takes the min of its two shares. Links 1 and 3 carry 3 flows each →
  // share 1/3; links 0 and 2 carry 1 flow → share 1.
  EXPECT_DOUBLE_EQ(alloc.rate(0), gbps(1.0 / 3));  // A: 0→1
  EXPECT_DOUBLE_EQ(alloc.rate(1), gbps(1.0 / 3));  // A: 1→1
  EXPECT_DOUBLE_EQ(alloc.rate(2), gbps(1.0 / 3));  // B: 1→0
  EXPECT_DOUBLE_EQ(alloc.rate(3), gbps(1.0 / 3));  // B: 1→1
  EXPECT_NO_THROW(check_capacity(snap.input, alloc));
}

TEST(Backfill, NeverOversubscribesAcrossRounds) {
  const Fabric fabric(4, gbps(1.0));
  TraceBuilder builder(4);
  builder.begin_coflow(0.0);
  for (int s = 0; s < 4; ++s) {
    for (int d = 0; d < 4; ++d) builder.add_flow(s, d, 1e8);
  }
  builder.begin_coflow(0.0);
  builder.add_flow(0, 3, 1e8);
  const Trace trace = builder.build();
  auto snap = snapshot_all_active(fabric, trace, false);
  Allocation alloc;
  even_backfill(snap.input, alloc, 5);
  EXPECT_NO_THROW(check_capacity(snap.input, alloc));
}

// ---------------------------------------------------------------- PS-P

TEST(Psp, Fig4aSharesWithoutBackfill) {
  const Fabric fabric(2, gbps(1.0));
  auto snap = snapshot_all_active(fabric, fig3_trace(), false);
  PspScheduler psp(PspOptions{.work_conserving = false});
  const Allocation alloc = psp.allocate(snap.input);
  // The paper's Fig. 4a: every flow ends up at 0.25 Gbps, wasting
  // 0.25 Gbps of each coflow's allocation on the contended links.
  for (FlowId f = 0; f < 4; ++f) {
    EXPECT_DOUBLE_EQ(alloc.rate(f), gbps(0.25)) << "flow " << f;
  }
  // The waste: links 1 and 3 are only half-used despite full allocation.
  const auto usage = link_usage(snap.input, alloc);
  EXPECT_DOUBLE_EQ(usage[1], gbps(0.75));
  EXPECT_DOUBLE_EQ(usage[3], gbps(0.75));
}

TEST(Psp, WorkConservingStaysFeasible) {
  const Fabric fabric(2, gbps(1.0));
  auto snap = snapshot_all_active(fabric, fig3_trace(), false);
  PspScheduler psp;
  const Allocation alloc = psp.allocate(snap.input);
  EXPECT_NO_THROW(check_capacity(snap.input, alloc));
  EXPECT_GT(alloc.total_rate(), 4 * gbps(0.25) - 1.0);  // backfill helped
}

TEST(Psp, SingleCoflowGetsFullLinks) {
  const Fabric fabric(2, gbps(1.0));
  TraceBuilder builder(2);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 1, 1e8);
  const Trace trace = builder.build();
  auto snap = snapshot_all_active(fabric, trace, false);
  PspScheduler psp(PspOptions{.work_conserving = false});
  const Allocation alloc = psp.allocate(snap.input);
  EXPECT_DOUBLE_EQ(alloc.rate(0), gbps(1.0));
}

// ---------------------------------------------------------------- DRF

TEST(Drf, Fig4bAllocation) {
  const Fabric fabric(2, gbps(1.0));
  auto snap = snapshot_all_active(fabric, fig3_trace(), true);
  EXPECT_NEAR(DrfScheduler::optimal_progress(snap.input), gbps(2.0 / 3),
              1.0);
  DrfScheduler drf;
  const Allocation alloc = drf.allocate(snap.input);
  // Fig. 4b: all four flows at 1/3 Gbps; links 1 and 3 fully used.
  for (FlowId f = 0; f < 4; ++f) {
    EXPECT_NEAR(alloc.rate(f), gbps(1.0 / 3), 1.0) << "flow " << f;
  }
  const auto usage = link_usage(snap.input, alloc);
  EXPECT_NEAR(usage[1], gbps(1.0), 1.0);
  EXPECT_NEAR(usage[3], gbps(1.0), 1.0);
}

TEST(Drf, EqualizesProgressAcrossHeterogeneousCoflows) {
  const Fabric fabric(3, gbps(1.0));
  TraceBuilder builder(3);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 1, 4e8);
  builder.add_flow(0, 2, 1e8);  // skewed coflow
  builder.begin_coflow(0.0);
  builder.add_flow(1, 2, 3e8);
  builder.add_flow(2, 1, 3e8);
  const Trace trace = builder.build();
  auto snap = snapshot_all_active(fabric, trace, true);
  DrfScheduler drf;
  const Allocation alloc = drf.allocate(snap.input);
  const double p0 = progress_of(fabric, snap.input.coflows[0],
                                *snap.remaining, alloc);
  const double p1 = progress_of(fabric, snap.input.coflows[1],
                                *snap.remaining, alloc);
  EXPECT_NEAR(p0, p1, 1.0);
  EXPECT_NO_THROW(check_capacity(snap.input, alloc));
}

TEST(Drf, RequiresClairvoyance) {
  const Fabric fabric(2, gbps(1.0));
  auto snap = snapshot_all_active(fabric, fig3_trace(), false);
  DrfScheduler drf;
  EXPECT_THROW(drf.allocate(snap.input), CheckError);
}

// ---------------------------------------------------------------- HUG

TEST(Hug, MatchesDrfWhenNoSpareHelps) {
  const Fabric fabric(2, gbps(1.0));
  auto snap = snapshot_all_active(fabric, fig3_trace(), true);
  HugScheduler hug;
  const Allocation alloc = hug.allocate(snap.input);
  for (FlowId f = 0; f < 4; ++f) {
    EXPECT_NEAR(alloc.rate(f), gbps(1.0 / 3), 1.0);
  }
}

TEST(Hug, NeverBelowDrfAndCapped) {
  const Fabric fabric(3, gbps(1.0));
  TraceBuilder builder(3);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 1, 2e8);
  builder.add_flow(0, 2, 2e8);
  builder.begin_coflow(0.0);
  builder.add_flow(1, 2, 4e8);
  const Trace trace = builder.build();
  auto snap = snapshot_all_active(fabric, trace, true);
  DrfScheduler drf;
  HugScheduler hug;
  const Allocation base = drf.allocate(snap.input);
  const Allocation boosted = hug.allocate(snap.input);
  for (const ActiveCoflow& c : snap.input.coflows) {
    for (const ActiveFlow& f : c.flows) {
      EXPECT_GE(boosted.rate(f.id), base.rate(f.id) - 1.0);
    }
  }
  EXPECT_GE(boosted.total_rate(), base.total_rate());
  EXPECT_NO_THROW(check_capacity(snap.input, boosted));
}

// ---------------------------------------------------------------- TCP

TEST(PerFlow, Fig3AllFlowsEqualAtContendedLinks) {
  const Fabric fabric(2, gbps(1.0));
  auto snap = snapshot_all_active(fabric, fig3_trace(), false);
  PerFlowScheduler tcp;
  const Allocation alloc = tcp.allocate(snap.input);
  for (FlowId f = 0; f < 4; ++f) {
    EXPECT_NEAR(alloc.rate(f), gbps(1.0 / 3), 1.0);
  }
}

TEST(PerFlow, MoreFlowsGrabMoreBandwidth) {
  // The paper's criticism of TCP: a coflow with more flows takes an
  // arbitrarily larger share. Coflow 0 runs 3 flows over the same pair,
  // coflow 1 runs 1 — coflow 0 ends up with 3× the bandwidth.
  const Fabric fabric(2, gbps(1.0));
  TraceBuilder builder(2);
  builder.begin_coflow(0.0);
  for (int i = 0; i < 3; ++i) builder.add_flow(0, 1, 1e8);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 1, 1e8);
  const Trace trace = builder.build();
  auto snap = snapshot_all_active(fabric, trace, false);
  PerFlowScheduler tcp;
  const Allocation alloc = tcp.allocate(snap.input);
  const auto usage0 =
      coflow_link_usage(fabric, snap.input.coflows[0], alloc);
  const auto usage1 =
      coflow_link_usage(fabric, snap.input.coflows[1], alloc);
  EXPECT_NEAR(usage0[0] / usage1[0], 3.0, 1e-6);
}

TEST(PerFlow, IsWorkConservingOnSaturableTopologies) {
  const Fabric fabric(2, gbps(1.0));
  auto snap = snapshot_all_active(fabric, fig3_trace(), false);
  PerFlowScheduler tcp;
  const Allocation alloc = tcp.allocate(snap.input);
  const auto usage = link_usage(snap.input, alloc);
  // Both contended links saturated.
  EXPECT_NEAR(usage[1], gbps(1.0), 1.0);
  EXPECT_NEAR(usage[3], gbps(1.0), 1.0);
}

// ---------------------------------------------------------------- Aalo

TEST(Aalo, QueuePlacementFollowsAttainedService) {
  AaloScheduler aalo;  // Q0 = 10 MB, E = 10, K = 10
  EXPECT_EQ(aalo.queue_of(0.0), 0);
  EXPECT_EQ(aalo.queue_of(megabytes(9.9)), 0);
  EXPECT_EQ(aalo.queue_of(megabytes(10.0)), 1);
  EXPECT_EQ(aalo.queue_of(megabytes(99.0)), 1);
  EXPECT_EQ(aalo.queue_of(megabytes(100.0)), 2);
  EXPECT_EQ(aalo.queue_of(megabytes(1e10)), 9);  // last queue is unbounded
  EXPECT_DOUBLE_EQ(aalo.queue_upper_bound(0), megabytes(10.0));
  EXPECT_DOUBLE_EQ(aalo.queue_upper_bound(1), megabytes(100.0));
  EXPECT_TRUE(std::isinf(aalo.queue_upper_bound(9)));
}

TEST(Aalo, HigherPriorityCoflowDominatesSharedLinks) {
  const Fabric fabric(2, gbps(1.0));
  auto snap = snapshot_all_active(fabric, fig3_trace(), false);
  // Push coflow 0 (A) into a lower-priority queue.
  snap.input.coflows[0].attained_bits = megabytes(50.0);
  AaloScheduler aalo(AaloOptions{.work_conserving = false});
  const Allocation alloc = aalo.allocate(snap.input);
  const auto usage_a =
      coflow_link_usage(fabric, snap.input.coflows[0], alloc);
  const auto usage_b =
      coflow_link_usage(fabric, snap.input.coflows[1], alloc);
  // B (queue 0) takes its links first; A only gets leftovers.
  EXPECT_GT(usage_b[1], usage_a[1]);
  EXPECT_NO_THROW(check_capacity(snap.input, alloc));
}

TEST(Aalo, FifoWithinQueue) {
  const Fabric fabric(2, gbps(1.0));
  TraceBuilder builder(2);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 1, 1e8);
  builder.begin_coflow(5.0);
  builder.add_flow(0, 1, 1e8);
  const Trace trace = builder.build();
  auto snap = snapshot_all_active(fabric, trace, false);
  AaloScheduler aalo(AaloOptions{.work_conserving = false});
  const Allocation alloc = aalo.allocate(snap.input);
  // Same queue (attained 0), earlier arrival wins the shared path.
  EXPECT_DOUBLE_EQ(alloc.rate(0), gbps(1.0));
  EXPECT_DOUBLE_EQ(alloc.rate(1), 0.0);
}

TEST(Aalo, NextInternalEventPredictsQueueCrossing) {
  const Fabric fabric(2, gbps(1.0));
  TraceBuilder builder(2);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 1, megabytes(100.0));
  const Trace trace = builder.build();
  auto snap = snapshot_all_active(fabric, trace, false);
  AaloScheduler aalo;
  const Allocation alloc = aalo.allocate(snap.input);
  // Rate 1 Gbps; 10 MB to the first boundary → 0.08 s.
  const auto next = aalo.next_internal_event(snap.input, alloc);
  ASSERT_TRUE(next.has_value());
  EXPECT_NEAR(*next, megabytes(10.0) / gbps(1.0), 1e-9);

  // In the last queue there is no further boundary.
  snap.input.coflows[0].attained_bits = megabytes(1e9);
  const Allocation alloc2 = aalo.allocate(snap.input);
  EXPECT_FALSE(aalo.next_internal_event(snap.input, alloc2).has_value());
}

TEST(Aalo, WorkConservingBackfillUsesLeftovers) {
  const Fabric fabric(2, gbps(1.0));
  auto snap = snapshot_all_active(fabric, fig3_trace(), false);
  snap.input.coflows[0].attained_bits = megabytes(50.0);
  AaloScheduler strict(AaloOptions{.work_conserving = false});
  AaloScheduler conserving;
  const double strict_total = strict.allocate(snap.input).total_rate();
  const double conserving_total =
      conserving.allocate(snap.input).total_rate();
  EXPECT_GE(conserving_total, strict_total);
}

// ---------------------------------------------------------------- Varys

TEST(Varys, SmallestBottleneckGoesFirst) {
  const Fabric fabric(2, gbps(1.0));
  TraceBuilder builder(2);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 1, 8e8);  // Γ = 0.8 s
  builder.begin_coflow(0.0);
  builder.add_flow(0, 1, 1e8);  // Γ = 0.1 s → scheduled first
  const Trace trace = builder.build();
  auto snap = snapshot_all_active(fabric, trace, true);
  VarysScheduler varys(VarysOptions{.work_conserving = false});
  const Allocation alloc = varys.allocate(snap.input);
  EXPECT_DOUBLE_EQ(alloc.rate(1), gbps(1.0));
  EXPECT_DOUBLE_EQ(alloc.rate(0), 0.0);
}

TEST(Varys, MaddFinishesFlowsTogether) {
  const Fabric fabric(3, gbps(1.0));
  TraceBuilder builder(3);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 1, 4e8);
  builder.add_flow(0, 2, 2e8);
  const Trace trace = builder.build();
  auto snap = snapshot_all_active(fabric, trace, true);
  VarysScheduler varys(VarysOptions{.work_conserving = false});
  const Allocation alloc = varys.allocate(snap.input);
  // Bottleneck is uplink 0 (6e8 bits): Γ = 0.6 s; rates = size / Γ.
  EXPECT_NEAR(alloc.rate(0), 4e8 / 0.6, 1.0);
  EXPECT_NEAR(alloc.rate(1), 2e8 / 0.6, 1.0);
  // Completion times equal: 4e8 / r0 == 2e8 / r1.
  EXPECT_NEAR(4e8 / alloc.rate(0), 2e8 / alloc.rate(1), 1e-9);
}

TEST(Varys, RequiresClairvoyance) {
  const Fabric fabric(2, gbps(1.0));
  auto snap = snapshot_all_active(fabric, fig3_trace(), false);
  VarysScheduler varys;
  EXPECT_THROW(varys.allocate(snap.input), CheckError);
}

// -------------------------------------------------- cross-policy checks

TEST(AllPolicies, CapacityFeasibleOnFig3) {
  const Fabric fabric(2, gbps(1.0));
  PspScheduler psp;
  PerFlowScheduler tcp;
  AaloScheduler aalo;
  DrfScheduler drf;
  HugScheduler hug;
  VarysScheduler varys;
  for (Scheduler* sched : std::initializer_list<Scheduler*>{
           &psp, &tcp, &aalo, &drf, &hug, &varys}) {
    auto snap =
        snapshot_all_active(fabric, fig3_trace(), sched->clairvoyant());
    const Allocation alloc = sched->allocate(snap.input);
    EXPECT_NO_THROW(check_capacity(snap.input, alloc))
        << sched->name();
  }
}

TEST(LinkFlowCounts, CountsBothEndpoints) {
  const Fabric fabric(2, gbps(1.0));
  auto snap = snapshot_all_active(fabric, fig3_trace(), false);
  const std::vector<int> counts = link_flow_counts(snap.input);
  EXPECT_EQ(counts[0], 1);
  EXPECT_EQ(counts[1], 3);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[3], 3);
  EXPECT_EQ(count_active_flows(snap.input), 4);
}

}  // namespace
}  // namespace ncdrf
