// Tests for the CODA-style coflow identifier and the identification-error
// injection wrapper.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/units.h"
#include "core/ncdrf.h"
#include "core/registry.h"
#include "identify/identifier.h"
#include "identify/perturbed.h"
#include "sim/sim.h"
#include "test_util.h"
#include "trace/trace.h"

namespace ncdrf {
namespace {

using testing::fig3_trace;
using testing::snapshot_all_active;

// Observations for a trace, with per-flow start jitter around the
// coflow's arrival (wave-based starts).
std::vector<FlowObservation> observe(const Trace& trace, Rng& rng,
                                     double jitter_s) {
  std::vector<FlowObservation> obs;
  for (const Coflow& coflow : trace.coflows) {
    for (const Flow& f : coflow.flows()) {
      obs.push_back(FlowObservation{
          f.id, f.src, f.dst,
          coflow.arrival_time() + rng.uniform(0.0, jitter_s), coflow.id()});
    }
  }
  return obs;
}

TEST(Identifier, PerfectOnWellSeparatedCoflows) {
  // Two shuffles 10 s apart: trivially separable in time.
  TraceBuilder builder(4);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 2, 1e6);
  builder.add_flow(1, 2, 1e6);
  builder.begin_coflow(10.0);
  builder.add_flow(0, 3, 1e6);
  builder.add_flow(1, 3, 1e6);
  const Trace trace = builder.build();

  Rng rng(1);
  const auto obs = observe(trace, rng, 0.05);
  const CoflowIdentifier identifier;
  const auto assignment = identifier.identify(obs);
  const auto quality = evaluate_identification(obs, assignment);
  EXPECT_DOUBLE_EQ(quality.precision, 1.0);
  EXPECT_DOUBLE_EQ(quality.recall, 1.0);
  EXPECT_EQ(quality.num_clusters, 2);
}

TEST(Identifier, SingletonsForIsolatedFlows) {
  std::vector<FlowObservation> obs{
      {0, 0, 1, 0.0, 0},
      {1, 2, 3, 100.0, 1},
      {2, 1, 2, 200.0, 2},
  };
  const CoflowIdentifier identifier;
  const auto assignment = identifier.identify(obs);
  EXPECT_EQ(assignment[0], 0);
  EXPECT_EQ(assignment[1], 1);
  EXPECT_EQ(assignment[2], 2);
}

TEST(Identifier, MergesOnlyEndpointSharingNeighbours) {
  // Same instant, but disjoint endpoints: must not merge.
  std::vector<FlowObservation> obs{
      {0, 0, 1, 0.0, 0},
      {1, 2, 3, 0.0, 1},
      {2, 0, 2, 0.01, 0},  // shares src with flow 0 → merges with it
  };
  const CoflowIdentifier identifier;
  const auto assignment = identifier.identify(obs);
  EXPECT_EQ(assignment[0], assignment[2]);
  EXPECT_NE(assignment[0], assignment[1]);
}

TEST(Identifier, ConcurrentOverlappingCoflowsDegradePrecision) {
  // Two coflows sharing endpoints and arriving together: the identifier
  // (like CODA) cannot split them — recall stays 1, precision drops.
  const Trace trace = fig3_trace();  // both coflows at t = 0, overlapping
  Rng rng(2);
  const auto obs = observe(trace, rng, 0.01);
  const CoflowIdentifier identifier;
  const auto quality =
      evaluate_identification(obs, identifier.identify(obs));
  EXPECT_DOUBLE_EQ(quality.recall, 1.0);
  EXPECT_LT(quality.precision, 1.0);
  EXPECT_EQ(quality.num_clusters, 1);
}

TEST(Identifier, WindowControlsTimeMerging) {
  // Two 1-flow coflows 1 s apart sharing a source.
  std::vector<FlowObservation> obs{
      {0, 0, 1, 0.0, 0},
      {1, 0, 2, 1.0, 1},
  };
  const CoflowIdentifier narrow(IdentifierOptions{.time_window_s = 0.5});
  const CoflowIdentifier wide(IdentifierOptions{.time_window_s = 2.0});
  EXPECT_NE(narrow.identify(obs)[0], narrow.identify(obs)[1]);
  EXPECT_EQ(wide.identify(obs)[0], wide.identify(obs)[1]);
}

TEST(Identifier, QualityMetricsOnKnownClustering) {
  // 4 flows, truth {0,0,1,1}; clustering {0,0,0,1}: cluster pairs =
  // 3+0 → (01),(02),(12); correct pairs among them: (01) → precision 1/4?
  // cluster 0 holds {0,1,2} → pairs (01)(02)(12) = 3, cluster 1 holds {3}
  // → 0. both = (01) = 1 → precision 1/3. truth pairs = (01),(23) = 2 →
  // recall 1/2.
  std::vector<FlowObservation> obs{
      {0, 0, 1, 0.0, 0},
      {1, 0, 2, 0.0, 0},
      {2, 0, 3, 0.0, 1},
      {3, 5, 6, 0.0, 1},
  };
  const std::vector<CoflowId> assignment{0, 0, 0, 1};
  const auto quality = evaluate_identification(obs, assignment);
  EXPECT_NEAR(quality.precision, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(quality.recall, 0.5, 1e-12);
  EXPECT_EQ(quality.num_clusters, 2);
}

TEST(Perturbed, ZeroErrorRateIsTransparent) {
  const Fabric fabric(2, gbps(1.0));
  const Trace trace = fig3_trace();
  auto snap = snapshot_all_active(fabric, trace, false);
  NcDrfScheduler plain;
  PerturbedGroupingScheduler wrapped(std::make_unique<NcDrfScheduler>(),
                                     PerturbOptions{.error_rate = 0.0});
  const Allocation a = plain.allocate(snap.input);
  const Allocation b = wrapped.allocate(snap.input);
  for (FlowId f = 0; f < trace.total_flows; ++f) {
    EXPECT_DOUBLE_EQ(a.rate(f), b.rate(f));
  }
}

TEST(Perturbed, MisattributionChangesAllocationButStaysFeasible) {
  const Fabric fabric(4, gbps(1.0));
  TraceBuilder builder(4);
  builder.begin_coflow(0.0);
  for (int i = 0; i < 6; ++i) builder.add_flow(i % 3, 3, 1e8);
  builder.begin_coflow(0.0);
  for (int i = 0; i < 4; ++i) builder.add_flow(3, i % 3, 1e8);
  const Trace trace = builder.build();
  auto snap = snapshot_all_active(fabric, trace, false);

  PerturbedGroupingScheduler wrapped(
      std::make_unique<NcDrfScheduler>(),
      PerturbOptions{.error_rate = 0.5, .seed = 5});
  const Allocation alloc = wrapped.allocate(snap.input);
  EXPECT_NO_THROW(check_capacity(snap.input, alloc));
  // Every flow still gets service despite misattribution.
  for (FlowId f = 0; f < trace.total_flows; ++f) {
    EXPECT_GT(alloc.rate(f), 0.0) << "flow " << f;
  }
}

TEST(Perturbed, EndToEndSimulationCompletesUnderErrors) {
  const Fabric fabric(6, gbps(1.0));
  TraceBuilder builder(6);
  Rng rng(9);
  for (int c = 0; c < 10; ++c) {
    builder.begin_coflow(0.2 * c);
    const int flows = static_cast<int>(rng.uniform_int(2, 8));
    for (int f = 0; f < flows; ++f) {
      builder.add_flow(static_cast<MachineId>(rng.uniform_int(0, 5)),
                       static_cast<MachineId>(rng.uniform_int(0, 5)),
                       rng.uniform(megabits(20.0), megabits(200.0)));
    }
  }
  const Trace trace = builder.build();
  for (const double error : {0.1, 0.3, 0.6}) {
    PerturbedGroupingScheduler sched(
        std::make_unique<NcDrfScheduler>(),
        PerturbOptions{.error_rate = error, .seed = 11});
    const RunResult run = simulate(fabric, trace, sched);
    EXPECT_NEAR(run.total_bits_delivered, trace.total_bits(),
                trace.total_bits() * 1e-6)
        << "error rate " << error;
  }
}

}  // namespace
}  // namespace ncdrf
