// Unit tests for the non-blocking fabric model (paper Fig. 2).
#include <gtest/gtest.h>

#include "common/check.h"
#include "fabric/fabric.h"

namespace ncdrf {
namespace {

TEST(Fabric, UplinkDownlinkLayoutMatchesPaper) {
  // link-i = uplink of machine i; link-(i+m) = downlink of machine i.
  const Fabric fabric(4, 1e9);
  EXPECT_EQ(fabric.num_machines(), 4);
  EXPECT_EQ(fabric.num_links(), 8);
  for (MachineId m = 0; m < 4; ++m) {
    EXPECT_EQ(fabric.uplink(m), m);
    EXPECT_EQ(fabric.downlink(m), m + 4);
    EXPECT_TRUE(fabric.is_uplink(fabric.uplink(m)));
    EXPECT_FALSE(fabric.is_uplink(fabric.downlink(m)));
    EXPECT_EQ(fabric.machine_of(fabric.uplink(m)), m);
    EXPECT_EQ(fabric.machine_of(fabric.downlink(m)), m);
  }
}

TEST(Fabric, UniformCapacities) {
  const Fabric fabric(150, 1e9);
  EXPECT_TRUE(fabric.uniform_capacity());
  EXPECT_DOUBLE_EQ(fabric.capacity(0), 1e9);
  EXPECT_DOUBLE_EQ(fabric.capacity(299), 1e9);
  // "total bandwidth availability in the fabric is 300 Gbps" (Sec. V-A).
  EXPECT_DOUBLE_EQ(fabric.total_capacity(), 300e9);
}

TEST(Fabric, HeterogeneousCapacities) {
  const Fabric fabric(std::vector<double>{1e9, 2e9, 3e9, 4e9});
  EXPECT_EQ(fabric.num_machines(), 2);
  EXPECT_FALSE(fabric.uniform_capacity());
  EXPECT_DOUBLE_EQ(fabric.capacity(1), 2e9);
  EXPECT_DOUBLE_EQ(fabric.capacity(3), 4e9);
  EXPECT_DOUBLE_EQ(fabric.total_capacity(), 10e9);
}

TEST(Fabric, RejectsInvalidConstruction) {
  EXPECT_THROW(Fabric(0, 1e9), CheckError);
  EXPECT_THROW(Fabric(2, 0.0), CheckError);
  EXPECT_THROW(Fabric(2, -1.0), CheckError);
  EXPECT_THROW(Fabric(std::vector<double>{}), CheckError);
  EXPECT_THROW(Fabric(std::vector<double>{1e9}), CheckError);  // odd count
  EXPECT_THROW(Fabric(std::vector<double>{1e9, 0.0}), CheckError);
}

TEST(Fabric, RejectsOutOfRangeIds) {
  const Fabric fabric(3, 1e9);
  EXPECT_THROW(fabric.uplink(3), CheckError);
  EXPECT_THROW(fabric.uplink(-1), CheckError);
  EXPECT_THROW(fabric.downlink(3), CheckError);
  EXPECT_THROW(fabric.capacity(6), CheckError);
  EXPECT_THROW(fabric.capacity(-1), CheckError);
  EXPECT_THROW(fabric.machine_of(6), CheckError);
}

TEST(Fabric, SingleMachineIsValid) {
  const Fabric fabric(1, 5e8);
  EXPECT_EQ(fabric.num_links(), 2);
  EXPECT_EQ(fabric.uplink(0), 0);
  EXPECT_EQ(fabric.downlink(0), 1);
}

}  // namespace
}  // namespace ncdrf
