// Tests for the live telemetry plane (obs/timeseries, obs/exporter,
// obs/flight) and the causal trace-id path: deterministic window rollups,
// the Prometheus / snapshot-NDJSON exposition surfaces, flight-recorder
// triggers with cooldowns, schema validators for the new artifact kinds,
// and trace-id continuity from submission through the master's rate
// pushes to the slaves under a lossy bus with retries.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "cluster/bus.h"
#include "cluster/faults.h"
#include "cluster/slave.h"
#include "common/units.h"
#include "core/registry.h"
#include "obs/audit.h"
#include "obs/exporter.h"
#include "obs/flight.h"
#include "obs/json_lint.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/tracer.h"
#include "serve/loadgen.h"
#include "serve/server.h"
#include "trace/trace.h"

namespace ncdrf {
namespace {

using obs::EpochVitals;
using obs::FlightOptions;
using obs::FlightRecorder;
using obs::MetricsRegistry;
using obs::Timeseries;
using obs::TimeseriesOptions;
using obs::TimeseriesSnapshot;
using serve::LoadGenerator;
using serve::LoadGenOptions;
using serve::ServeFront;
using serve::ServeOptions;
using serve::Submission;

// --- Histogram quantile helper --------------------------------------------

TEST(QuantilesTest, FromCountsMatchesCumulativePercentiles) {
  obs::Histogram hist;
  for (int i = 1; i <= 200; ++i) hist.observe(i * 1e-4);
  const obs::Quantiles q = hist.quantiles();
  EXPECT_DOUBLE_EQ(q.p50, hist.percentile(50.0));
  EXPECT_DOUBLE_EQ(q.p95, hist.percentile(95.0));
  EXPECT_DOUBLE_EQ(q.p99, hist.percentile(99.0));
  // The helper over the full cumulative counts is the same estimator
  // minus the observed-min/max clamp, so it agrees within the clamp.
  const double p50 = hist.quantile_from_counts(hist.bucket_counts(), 50.0);
  EXPECT_NEAR(p50, q.p50, q.p50 * (hist.growth() - 1.0));
  EXPECT_EQ(hist.quantile_from_counts(
                std::vector<long long>(hist.bucket_counts().size(), 0), 99.0),
            0.0);
}

// --- Timeseries window rollups --------------------------------------------

TEST(TimeseriesTest, WindowsRollUpDeltasAndRates) {
  MetricsRegistry metrics;
  obs::Counter& requests = metrics.counter("requests");
  obs::Gauge& depth = metrics.gauge("depth");
  obs::Histogram& lat = metrics.histogram("lat");

  Timeseries ts(&metrics, TimeseriesOptions{1.0, 8});
  ts.sample(0.0);  // opens window 0
  requests.inc(10);
  depth.set(3.0);
  lat.observe(0.5);
  lat.observe(0.5);
  ts.sample(0.5);            // window still open
  EXPECT_EQ(ts.windows_closed(), 0);
  ts.sample(1.0);            // closes [0, 1]
  requests.inc(30);
  depth.set(7.0);
  lat.observe(2.0);
  ts.sample(2.0);            // closes [1, 2]

  ASSERT_EQ(ts.windows_closed(), 2);
  const TimeseriesSnapshot& w0 = ts.snapshots()[0];
  EXPECT_EQ(w0.window, 0);
  EXPECT_DOUBLE_EQ(w0.t0, 0.0);
  EXPECT_DOUBLE_EQ(w0.t1, 1.0);
  ASSERT_EQ(w0.counters.size(), 1u);
  EXPECT_EQ(w0.counters[0].second.total, 10);
  EXPECT_EQ(w0.counters[0].second.delta, 10);
  EXPECT_DOUBLE_EQ(w0.counters[0].second.rate_per_s, 10.0);
  EXPECT_DOUBLE_EQ(w0.gauges[0].second, 3.0);
  EXPECT_EQ(w0.histograms[0].second.count, 2);
  EXPECT_DOUBLE_EQ(w0.histograms[0].second.sum, 1.0);
  EXPECT_NEAR(w0.histograms[0].second.q.p99, 0.5, 0.5 * 0.26);

  const TimeseriesSnapshot& w1 = ts.snapshots()[1];
  EXPECT_EQ(w1.window, 1);
  EXPECT_DOUBLE_EQ(w1.t0, 1.0);  // contiguous with w0.t1
  EXPECT_EQ(w1.counters[0].second.total, 40);
  EXPECT_EQ(w1.counters[0].second.delta, 30);
  EXPECT_DOUBLE_EQ(w1.gauges[0].second, 7.0);
  // The windowed histogram sees only the window's own observation.
  EXPECT_EQ(w1.histograms[0].second.count, 1);
  EXPECT_DOUBLE_EQ(w1.histograms[0].second.sum, 2.0);
  EXPECT_NEAR(w1.histograms[0].second.q.p50, 2.0, 2.0 * 0.26);

  // flush closes the open tail regardless of span.
  requests.inc(1);
  ts.sample(2.25);
  ts.flush(2.5);
  ASSERT_EQ(ts.windows_closed(), 3);
  EXPECT_DOUBLE_EQ(ts.latest()->t1, 2.5);
  EXPECT_EQ(ts.latest()->counters[0].second.delta, 1);
}

TEST(TimeseriesTest, ServeDrivenStreamIsByteIdenticalAndValid) {
  const auto run_once = [] {
    const Fabric fabric(8, gbps(1.0));
    const auto sched = make_scheduler("ncdrf");
    LoadGenOptions load;
    load.seed = 7;
    load.num_clients = 2;
    load.num_machines = 8;
    load.arrival_rate_per_s = 800.0;
    load.duration_s = 0.1;
    load.mean_lifetime_s = 0.02;
    const LoadGenerator gen(load);

    MetricsRegistry metrics;
    Timeseries ts(&metrics, TimeseriesOptions{0.01, 64});
    ServeOptions options;
    options.epoch_s = 1e-3;
    options.metrics = &metrics;
    options.timeseries = &ts;
    ServeFront front(fabric, *sched, load.num_clients, options);
    const double end = front.run(gen.generate());
    ts.flush(end + options.epoch_s);

    std::ostringstream out;
    obs::SnapshotStream stream(out);
    stream.poll(ts);
    return out.str();
  };
  const std::string first = run_once();
  const std::string second = run_once();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  EXPECT_EQ(obs::validate_timeseries_ndjson(first), "");
}

TEST(SnapshotStreamTest, PollAppendsOnlyNewWindows) {
  MetricsRegistry metrics;
  metrics.counter("c").inc(5);
  Timeseries ts(&metrics, TimeseriesOptions{1.0, 8});
  std::ostringstream out;
  obs::SnapshotStream stream(out);
  EXPECT_EQ(stream.poll(ts), 0);  // nothing closed yet

  ts.sample(0.0);
  ts.sample(1.0);
  EXPECT_EQ(stream.poll(ts), 1);
  EXPECT_EQ(stream.poll(ts), 0);  // idempotent between closes
  metrics.counter("c").inc(2);
  ts.sample(2.0);
  ts.sample(3.0);
  EXPECT_EQ(stream.poll(ts), 2);
  EXPECT_EQ(stream.windows_written(), 3);
  EXPECT_EQ(obs::validate_timeseries_ndjson(out.str()), "");
}

// --- Prometheus exposition -------------------------------------------------

TEST(ExporterTest, PrometheusTextExposesAllInstrumentKinds) {
  MetricsRegistry metrics;
  metrics.counter("serve.admitted").inc(42);
  metrics.gauge("serve.backlog").set(17.0);
  obs::Histogram& lat = metrics.histogram("serve.admit_latency_s");
  for (int i = 0; i < 100; ++i) lat.observe(0.001 * (i + 1));

  std::ostringstream out;
  obs::write_prometheus_text(out, metrics);
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE ncdrf_serve_admitted_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("ncdrf_serve_admitted_total 42"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ncdrf_serve_backlog gauge"), std::string::npos);
  EXPECT_NE(text.find("ncdrf_serve_backlog 17"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ncdrf_serve_admit_latency_s summary"),
            std::string::npos);
  EXPECT_NE(text.find("ncdrf_serve_admit_latency_s{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("ncdrf_serve_admit_latency_s_count 100"),
            std::string::npos);
}

// --- Flight recorder -------------------------------------------------------

TEST(FlightTest, CooldownSuppressesRepeatFires) {
  FlightOptions options;
  options.cooldown_s = 1.0;
  FlightRecorder flight(options);
  EXPECT_TRUE(flight.fire(0.0, "manual", "first"));
  EXPECT_FALSE(flight.fire(0.5, "manual", "too soon"));
  EXPECT_TRUE(flight.fire(0.2, "other_kind", "independent cooldown"));
  EXPECT_TRUE(flight.fire(1.5, "manual", "cooldown elapsed"));
  EXPECT_EQ(flight.bundles_written(), 3);
  EXPECT_EQ(flight.triggers_suppressed(), 1);
  EXPECT_EQ(obs::validate_flight_bundle_json(flight.last_bundle_json()), "");
}

TEST(FlightTest, StalenessTriggerFiresOverBudget) {
  FlightOptions options;
  options.cooldown_s = 0.0;
  options.staleness_budget_s = 0.01;
  FlightRecorder flight(options);
  EpochVitals vitals;
  vitals.staleness_s = 0.005;
  flight.observe_epoch(0.001, vitals);
  EXPECT_EQ(flight.bundles_written(), 0);
  vitals.staleness_s = 0.02;
  flight.observe_epoch(0.002, vitals);
  EXPECT_EQ(flight.bundles_written(), 1);
  EXPECT_NE(flight.last_bundle_json().find("staleness_breach"),
            std::string::npos);
}

TEST(FlightTest, EnvelopeTriggerFiresOnNewAuditViolation) {
  // Same scenario as AuditTest.FlagsEnvelopeViolation: one coflow
  // finishing 10x past its shadow DRF CCT.
  TraceBuilder builder(2);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 1, 1e9);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 1, 1e9);
  const Trace trace = builder.build();
  const Fabric fabric(2, gbps(1.0));
  obs::FairnessAuditor auditor(fabric);
  for (const Coflow& coflow : trace.coflows) auditor.on_submit(coflow);

  FlightOptions options;
  options.trigger_envelope = true;
  FlightRecorder flight(options);
  flight.watch_auditor(&auditor);
  flight.observe_epoch(0.5, EpochVitals{});
  EXPECT_EQ(flight.bundles_written(), 0);  // no violation yet

  auditor.on_complete(0, 0.0, 1.99);
  auditor.on_complete(1, 0.0, 20.0);
  auditor.finalize();
  flight.observe_epoch(21.0, EpochVitals{});
  EXPECT_EQ(flight.bundles_written(), 1);
  EXPECT_NE(flight.last_bundle_json().find("envelope_violation"),
            std::string::npos);
  // Seen violations are not re-fired on the next epoch.
  flight.observe_epoch(22.0, EpochVitals{});
  EXPECT_EQ(flight.bundles_written(), 1);
}

TEST(FlightTest, SloBurnRateAccountsClosedWindows) {
  MetricsRegistry metrics;
  obs::Histogram& lat = metrics.histogram("lat");
  Timeseries ts(&metrics, TimeseriesOptions{1.0, 16});

  FlightOptions options;
  options.cooldown_s = 0.0;
  options.slo_histogram = "lat";
  options.slo_p99_s = 0.01;
  options.slo_windows = 3;
  options.slo_burn_rate = 1.0;
  FlightRecorder flight(options);
  flight.attach(nullptr, &metrics, &ts);

  ts.sample(0.0);
  // Two breaching windows: not enough history to fire yet.
  for (int w = 1; w <= 2; ++w) {
    lat.observe(0.1);
    ts.sample(static_cast<double>(w));
    flight.observe_epoch(static_cast<double>(w), EpochVitals{});
    EXPECT_EQ(flight.bundles_written(), 0);
  }
  // Third breaching window completes the horizon: burn = 3/3 >= 1.0.
  lat.observe(0.1);
  ts.sample(3.0);
  flight.observe_epoch(3.0, EpochVitals{});
  EXPECT_EQ(flight.bundles_written(), 1);
  EXPECT_NE(flight.last_bundle_json().find("slo_burn"), std::string::npos);

  // Accounting restarted on fire; an idle window (count == 0) never
  // breaches, so while it sits in the horizon the burn stays at 2/3.
  ts.sample(4.0);
  flight.observe_epoch(4.0, EpochVitals{});
  for (int w = 5; w <= 6; ++w) {
    lat.observe(0.1);
    ts.sample(static_cast<double>(w));
    flight.observe_epoch(static_cast<double>(w), EpochVitals{});
  }
  EXPECT_EQ(flight.bundles_written(), 1);
  // One more breaching window slides the idle one out of the horizon and
  // the burn reaches 3/3 again.
  lat.observe(0.1);
  ts.sample(7.0);
  flight.observe_epoch(7.0, EpochVitals{});
  EXPECT_EQ(flight.bundles_written(), 2);
}

// Hand-built burst of submissions: `count` single-flow coflows from one
// client, all submitted at t=0.
std::vector<std::vector<Submission>> burst_schedule(int count, int clients) {
  std::vector<std::vector<Submission>> schedule(
      static_cast<std::size_t>(clients));
  for (int i = 0; i < count; ++i) {
    Submission s;
    s.coflow = i;
    s.client = i % clients;
    s.submit_time = 0.0;
    s.trace_id = static_cast<std::uint64_t>(i) + 1;
    s.lifetime_s = 0.002;
    Flow flow;
    flow.id = i;
    flow.coflow = i;
    flow.src = static_cast<MachineId>(i % 4);
    flow.dst = static_cast<MachineId>((i + 1) % 4);
    flow.size_bits = 1e6;
    s.flows.push_back(flow);
    schedule[static_cast<std::size_t>(s.client)].push_back(s);
  }
  return schedule;
}

TEST(FlightTest, ShedTriggerFiresOncePerEntryUnderOverload) {
  const Fabric fabric(4, gbps(1.0));
  const auto sched = make_scheduler("tcp");
  MetricsRegistry metrics;
  obs::Tracer tracer(1 << 12);
  Timeseries ts(&metrics, TimeseriesOptions{0.002, 32});
  FlightOptions flight_options;
  flight_options.trigger_shed = true;
  flight_options.cooldown_s = 100.0;
  FlightRecorder flight(flight_options);

  ServeOptions options;
  options.epoch_s = 1e-3;
  options.max_batch_per_epoch = 2;
  options.queue_capacity = 256;
  options.slowdown_watermark = 8;
  options.shed_watermark = 16;
  options.metrics = &metrics;
  options.tracer = &tracer;
  options.timeseries = &ts;
  options.flight = &flight;
  ServeFront front(fabric, *sched, 2, options);
  front.run(burst_schedule(120, 2));

  EXPECT_GT(front.total_shed(), 0);
  // Edge-triggered: the backlog enters kShed once and then only drains,
  // so a sustained shed regime produces exactly one bundle.
  EXPECT_EQ(flight.bundles_written(), 1);
  EXPECT_EQ(flight.triggers_suppressed(), 0);
  const std::string& bundle = flight.last_bundle_json();
  EXPECT_EQ(obs::validate_flight_bundle_json(bundle), "");
  EXPECT_NE(bundle.find("backpressure_shed"), std::string::npos);
  // The bundle embeds the front-end's config and the trace slice.
  EXPECT_NE(bundle.find("\"shed_watermark\":16"), std::string::npos);
  EXPECT_NE(bundle.find("serve_epoch"), std::string::npos);
}

TEST(FlightTest, BundleBytesAreDeterministic) {
  const auto run_once = [] {
    const Fabric fabric(4, gbps(1.0));
    const auto sched = make_scheduler("tcp");
    MetricsRegistry metrics;
    obs::Tracer tracer(1 << 12);
    Timeseries ts(&metrics, TimeseriesOptions{0.002, 32});
    FlightOptions flight_options;
    flight_options.trigger_shed = true;
    FlightRecorder flight(flight_options);
    ServeOptions options;
    options.epoch_s = 1e-3;
    options.max_batch_per_epoch = 2;
    options.queue_capacity = 256;
    options.slowdown_watermark = 8;
    options.shed_watermark = 16;
    options.metrics = &metrics;
    options.tracer = &tracer;
    options.timeseries = &ts;
    options.flight = &flight;
    ServeFront front(fabric, *sched, 2, options);
    front.run(burst_schedule(120, 2));
    return flight.last_bundle_json();
  };
  const std::string first = run_once();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, run_once());
}

// --- Tracer drop accounting ------------------------------------------------

TEST(TracerTest, DroppedEventsMirrorIntoCounterAndChromeMetadata) {
  MetricsRegistry metrics;
  obs::Tracer tracer(4);
  tracer.bind_drop_counter(&metrics.counter("trace.dropped_events"));
  for (int i = 0; i < 10; ++i) {
    tracer.instant(obs::EventKind::kCoflowArrival, 0.001 * (i + 1), i);
  }
  EXPECT_EQ(tracer.dropped_events(), 6);
  EXPECT_EQ(metrics.counter("trace.dropped_events").value, 6);

  std::ostringstream out;
  tracer.write_chrome_json(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("trace_dropped_events"), std::string::npos);
  EXPECT_NE(text.find("\"dropped\":6"), std::string::npos);
  EXPECT_EQ(obs::validate_chrome_trace_json(text), "");
}

// --- Schema validators -----------------------------------------------------

TEST(ValidatorTest, TimeseriesNdjsonRejectsTruncationAndDisorder) {
  MetricsRegistry metrics;
  metrics.counter("c").inc(1);
  Timeseries ts(&metrics, TimeseriesOptions{1.0, 8});
  ts.sample(0.0);
  ts.sample(1.0);
  metrics.counter("c").inc(1);
  ts.sample(2.0);
  std::ostringstream out;
  obs::SnapshotStream stream(out);
  stream.poll(ts);
  const std::string good = out.str();
  ASSERT_EQ(obs::validate_timeseries_ndjson(good), "");

  // Truncated final line (writer died mid-record).
  const std::string truncated = good.substr(0, good.size() - 10);
  EXPECT_NE(obs::validate_timeseries_ndjson(truncated), "");

  // Window-ordering violation: duplicate the first line at the end.
  const std::string first_line = good.substr(0, good.find('\n') + 1);
  EXPECT_NE(obs::validate_timeseries_ndjson(good + first_line), "");

  // parse_timeseries_line round-trips one good line.
  obs::SnapshotRow row;
  EXPECT_EQ(obs::parse_timeseries_line(
                first_line.substr(0, first_line.size() - 1), &row),
            "");
  EXPECT_EQ(row.window, 0.0);
  ASSERT_EQ(row.counters.size(), 1u);
  EXPECT_EQ(row.counters[0].first, "c");
}

TEST(ValidatorTest, FlightBundleRejectsMissingSections) {
  FlightRecorder flight{};
  ASSERT_TRUE(flight.fire(1.0, "manual", "probe"));
  const std::string good = flight.last_bundle_json();
  ASSERT_EQ(obs::validate_flight_bundle_json(good), "");

  EXPECT_NE(obs::validate_flight_bundle_json("{}"), "");
  EXPECT_NE(obs::validate_flight_bundle_json(
                "{\"bundle\":\"ncdrf.flight\",\"seq\":0}"),
            "");
  // Wrong magic.
  std::string wrong = good;
  wrong.replace(wrong.find("ncdrf.flight"), 12, "ncdrf.wrong!");
  EXPECT_NE(obs::validate_flight_bundle_json(wrong), "");
}

// --- Trace-id continuity ---------------------------------------------------

TEST(TraceIdTest, SubmissionIdsReachSlavesAcrossLossBurstWithRetries) {
  const int kMachines = 4;
  const Fabric fabric(kMachines, gbps(1.0));
  const auto sched = make_scheduler("tcp");

  LoadGenOptions load;
  load.seed = 11;
  load.num_clients = 2;
  load.num_machines = kMachines;
  load.arrival_rate_per_s = 2000.0;
  load.duration_s = 0.05;
  load.mean_lifetime_s = 0.0;  // coflows never retire: every flow stays live
  const LoadGenerator gen(load);
  const auto schedule = gen.generate();

  // Expected trace id per coflow / per flow's owning coflow.
  std::map<CoflowId, std::uint64_t> expected;
  std::map<FlowId, CoflowId> owner;
  int total_flows = 0;
  for (const auto& client_schedule : schedule) {
    for (const Submission& s : client_schedule) {
      ASSERT_NE(s.trace_id, 0u);  // the generator stamps every submission
      expected[s.coflow] = s.trace_id;
      for (const Flow& f : s.flows) {
        owner[f.id] = s.coflow;
        ++total_flows;
      }
    }
  }

  const double kBaseLoss = 0.1;
  SimBus bus(2e-4, kBaseLoss, 99);
  std::vector<std::unique_ptr<Slave>> slaves;
  for (int m = 0; m < kMachines; ++m) {
    slaves.push_back(std::make_unique<Slave>(m, 1.0));
    for (const auto& client_schedule : schedule) {
      for (const Submission& s : client_schedule) {
        for (const Flow& f : s.flows) {
          if (f.src == m) slaves.back()->add_flow(f);
        }
      }
    }
  }

  ServeOptions options;
  options.epoch_s = 1e-3;
  options.bus = &bus;
  options.push_retry = RetryPolicy{4, 2.5e-4, 2.0};
  ServeFront front(fabric, *sched, load.num_clients, options);

  FaultPlan plan;
  plan.loss_burst(0.01, 0.03, 0.9);

  std::vector<std::size_t> cursor(schedule.size(), 0);
  for (int epoch = 0; epoch <= 80; ++epoch) {
    const double now = epoch * options.epoch_s;
    for (const FaultEvent& event : plan.due(now)) {
      if (event.kind == FaultKind::kLossBurstStart) {
        bus.set_loss_probability(event.loss_probability);
      } else if (event.kind == FaultKind::kLossBurstEnd) {
        bus.set_loss_probability(kBaseLoss);
      }
    }
    for (std::size_t c = 0; c < schedule.size(); ++c) {
      while (cursor[c] < schedule[c].size() &&
             schedule[c][cursor[c]].submit_time <= now) {
        ASSERT_TRUE(front.queue(static_cast<int>(c))
                        .try_enqueue(schedule[c][cursor[c]]));
        ++cursor[c];
      }
    }
    front.step_epoch(now);
    for (SimBus::Delivery& delivery : bus.deliver_due(now)) {
      if (auto* update = std::get_if<RateUpdateMsg>(&delivery.payload)) {
        slaves[static_cast<std::size_t>(delivery.to.machine)]
            ->on_rate_update(*update);
      }
    }
  }

  // The lossy path and the retry path were both actually exercised.
  EXPECT_GT(bus.total_dropped(), 0);
  EXPECT_GT(bus.total_retries(), 0);

  // The master remembers every active coflow's submission trace id.
  for (const auto& [coflow, trace_id] : expected) {
    EXPECT_EQ(front.master().trace_id(coflow), trace_id) << coflow;
  }

  // Continuity: every slave-side trace id matches the submission that
  // spawned the flow's coflow — ids never cross flows. Loss can leave a
  // late-admitted flow untagged, but retries keep that rare.
  int traced = 0;
  for (const auto& [flow, coflow] : owner) {
    const auto& slave = *slaves[static_cast<std::size_t>(
        [&] {
          for (const auto& client_schedule : schedule) {
            for (const Submission& s : client_schedule) {
              for (const Flow& f : s.flows) {
                if (f.id == flow) return f.src;
              }
            }
          }
          return MachineId{0};
        }())];
    const std::uint64_t got = slave.trace_id(flow);
    if (got != 0) {
      EXPECT_EQ(got, expected.at(coflow)) << "flow " << flow;
      ++traced;
    }
  }
  EXPECT_GT(traced, (total_flows * 9) / 10);
}

// Untraced deployments keep the RateUpdate side channel empty: no coflow
// registered with a trace id, so pushes carry no trace_ids vector.
TEST(TraceIdTest, UntracedRegistrationsKeepPushesClean) {
  const Fabric fabric(4, gbps(1.0));
  const auto sched = make_scheduler("tcp");
  SimBus bus(1e-4, 0.0, 1);
  ServeOptions options;
  options.epoch_s = 1e-3;
  options.bus = &bus;
  ServeFront front(fabric, *sched, 1, options);

  auto schedule = burst_schedule(4, 1);
  for (auto& client_schedule : schedule) {
    for (Submission& s : client_schedule) s.trace_id = 0;
  }
  for (const Submission& s : schedule[0]) {
    ASSERT_TRUE(front.queue(0).try_enqueue(s));
  }
  front.step_epoch(0.0);
  int updates = 0;
  for (SimBus::Delivery& delivery : bus.deliver_due(1.0)) {
    if (auto* update = std::get_if<RateUpdateMsg>(&delivery.payload)) {
      EXPECT_TRUE(update->trace_ids.empty());
      ++updates;
    }
  }
  EXPECT_GT(updates, 0);
}

}  // namespace
}  // namespace ncdrf
