// Tests for the link-shard layer (alloc/shard.h) and the sharded
// execution paths of the kernel-backed policies:
//
//   * ShardPlan partitions machines/links exactly once and nests across
//     power-of-two shard counts;
//   * ThreadPool::run is reentrant from its own workers (the shard pool's
//     nested-dispatch regression);
//   * shards == 1 vs shards == N produce identical rates on shard-local
//     traces, and bounded divergence + feasibility on cross-shard traces;
//   * the registry's "@N" suffix, SchedPerf shard counters, SimOptions
//     reconcile forwarding, and the Theorem 1 envelope with a sharded
//     clairvoyant-DRF baseline.
#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "alloc/shard.h"
#include "coflow/coflow.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/units.h"
#include "core/ncdrf.h"
#include "core/registry.h"
#include "runner/thread_pool.h"
#include "sched/allocation.h"
#include "sim/sim.h"
#include "test_util.h"
#include "trace/trace.h"

namespace ncdrf {
namespace {

using testing::Snapshot;
using testing::snapshot_all_active;

// Machines of each shard under `plan`, for drawing group-local endpoints.
std::vector<std::vector<MachineId>> shard_members(const Fabric& fabric,
                                                  const ShardPlan& plan) {
  std::vector<std::vector<MachineId>> members(
      static_cast<std::size_t>(plan.num_shards()));
  for (MachineId m = 0; m < fabric.num_machines(); ++m) {
    members[static_cast<std::size_t>(plan.shard_of_machine(m))].push_back(m);
  }
  return members;
}

// Random trace whose flows stay inside one rack group with probability
// `locality` (1.0 = fully shard-local at every nested shard count).
// Sizes are multiples of 10 Mb so waterfill levels avoid degenerate ties.
Trace grouped_trace(const Fabric& fabric, int groups, std::uint64_t seed,
                    int num_coflows, int max_flows, double locality) {
  const ShardPlan plan(fabric, groups);
  const auto members = shard_members(fabric, plan);
  Rng rng(seed);
  TraceBuilder builder(fabric.num_machines());
  for (int c = 0; c < num_coflows; ++c) {
    builder.begin_coflow(0.0);
    const auto g = static_cast<std::size_t>(
        rng.uniform_int(0, plan.num_shards() - 1));
    const auto flows = static_cast<int>(rng.uniform_int(1, max_flows));
    for (int f = 0; f < flows; ++f) {
      const auto& group = members[g];
      const MachineId src = group[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(group.size()) - 1))];
      MachineId dst;
      if (rng.uniform() < locality) {
        dst = group[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(group.size()) - 1))];
      } else {
        dst = static_cast<MachineId>(
            rng.uniform_int(0, fabric.num_machines() - 1));
      }
      builder.add_flow(src, dst, 1e7 * static_cast<double>(
                                           rng.uniform_int(1, 40)));
    }
  }
  return builder.build();
}

// Builds the policy at the given shard count and allocates the snapshot,
// feeding arrival hooks first when the policy wants events.
Allocation run_alloc(const std::string& name, int shards,
                     const Snapshot& snap) {
  SchedulerOptions options;
  options.shards = shards;
  const auto sched = make_scheduler(name, options);
  if (sched->wants_events()) {
    sched->on_reset(*snap.input.fabric);
    for (const ActiveCoflow& c : snap.input.coflows) {
      sched->on_coflow_arrival(c);
    }
  }
  return sched->allocate(snap.input);
}

double total_rate(const ScheduleInput& input, const Allocation& alloc) {
  double total = 0.0;
  for (const ActiveCoflow& c : input.coflows) {
    for (const ActiveFlow& f : c.flows) total += alloc.rate(f.id);
  }
  return total;
}

// ---------------------------------------------------------------------------
// ShardPlan

TEST(ShardPlan, PartitionsEveryMachineAndLinkExactlyOnce) {
  const Fabric fabric(150, gbps(1.0));
  for (const int shards : {1, 2, 3, 4, 7, 8, 150, 500}) {
    const ShardPlan plan(fabric, shards);
    EXPECT_EQ(plan.num_shards(), std::min(shards, 150));
    std::vector<int> machines_seen(150, 0);
    for (MachineId m = 0; m < 150; ++m) {
      const int s = plan.shard_of_machine(m);
      ASSERT_GE(s, 0);
      ASSERT_LT(s, plan.num_shards());
      machines_seen[static_cast<std::size_t>(m)] += 1;
      EXPECT_EQ(plan.shard_of_link(fabric.uplink(m)), s);
      EXPECT_EQ(plan.shard_of_link(fabric.downlink(m)), s);
      // The link mask of exactly the owning shard covers both links.
      for (int t = 0; t < plan.num_shards(); ++t) {
        const auto& mask = plan.link_mask(t);
        EXPECT_EQ(mask[static_cast<std::size_t>(fabric.uplink(m))] != 0,
                  t == s);
        EXPECT_EQ(mask[static_cast<std::size_t>(fabric.downlink(m))] != 0,
                  t == s);
      }
    }
    for (const int seen : machines_seen) EXPECT_EQ(seen, 1);
  }
}

TEST(ShardPlan, BoundariesNestAcrossDoublings) {
  // shard(m, N) == shard(m, 2N) / 2 for the floor-boundary scheme, so a
  // group-local flow stays shard-local at every smaller power-of-two
  // count — the property the scale bench's locality knob relies on.
  const Fabric fabric(150, gbps(1.0));
  for (const int n : {1, 2, 4}) {
    const ShardPlan coarse(fabric, n);
    const ShardPlan fine(fabric, 2 * n);
    for (MachineId m = 0; m < 150; ++m) {
      EXPECT_EQ(coarse.shard_of_machine(m), fine.shard_of_machine(m) / 2)
          << "machine " << m << " at " << n << " vs " << 2 * n << " shards";
    }
  }
}

TEST(ShardPlan, ClampsShardCountToMachines) {
  const Fabric fabric(3, gbps(1.0));
  const ShardPlan plan(fabric, 16);
  EXPECT_EQ(plan.num_shards(), 3);
  EXPECT_TRUE(plan.matches(fabric, 16));
  EXPECT_FALSE(plan.matches(fabric, 2));
}

// ---------------------------------------------------------------------------
// ThreadPool reentrancy (the shard layer dispatches from sweep workers)

TEST(ThreadPool, NestedRunFromWorkerExecutesInline) {
  ThreadPool pool(3);
  std::atomic<int> inner_total{0};
  // Each outer task re-enters the same pool; the nested batch must run
  // inline on the calling worker instead of deadlocking on the dispatch
  // lock the worker's own batch still holds.
  pool.run(6, [&](int) {
    pool.run(5, [&](int) { inner_total++; });
  });
  EXPECT_EQ(inner_total.load(), 30);
}

TEST(ThreadPool, DeeplyNestedRunStillCompletes) {
  ThreadPool pool(2);
  std::atomic<int> leaves{0};
  pool.run(2, [&](int) {
    pool.run(2, [&](int) {
      pool.run(3, [&](int) { leaves++; });
    });
  });
  EXPECT_EQ(leaves.load(), 12);
}

TEST(ThreadPool, NestedRunPropagatesTaskException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.run(2,
               [&](int) {
                 pool.run(3, [&](int i) {
                   if (i == 1) throw std::runtime_error("inner boom");
                 });
               }),
      std::runtime_error);
  // The pool stays usable after the failed nested batch.
  std::atomic<int> total{0};
  pool.run(4, [&](int) { total++; });
  EXPECT_EQ(total.load(), 4);
}

TEST(ThreadPool, DistinctPoolsNestWithoutInterference) {
  // A scheduler-owned shard pool running inside a sweep worker is the
  // production shape: outer and inner pools are different objects.
  ThreadPool outer(2);
  ThreadPool inner(4);
  std::atomic<int> total{0};
  outer.run(4, [&](int) {
    inner.run(8, [&](int) { total++; });
  });
  EXPECT_EQ(total.load(), 32);
}

// ---------------------------------------------------------------------------
// 1-vs-N equivalence on shard-local traces

// Policies whose sharded path must reproduce the serial rates exactly on
// fully shard-local traces (every per-shard subproblem is the serial
// problem restricted to that shard's links).
const char* const kExactPolicies[] = {"tcp", "fifo", "aalo", "psp",
                                      "varys"};
// The remaining policies agree with serial to fp noise only: drf and hug
// reduce per-block partial sums in block order, baraat's sharded backfill
// subtracts the fill's residual in a different order than its serial
// pass, and the endpoint-fair weighted waterfill accumulates freeze
// levels in a different order per shard than globally.
const char* const kNearPolicies[] = {"drf", "hug", "baraat", "persource",
                                     "perpair"};

TEST(ShardEquivalence, LocalTracesMatchSerialBitwise) {
  const Fabric fabric(32, gbps(1.0));
  const Trace trace =
      grouped_trace(fabric, 4, 7, /*num_coflows=*/40, /*max_flows=*/6,
                    /*locality=*/1.0);
  const Snapshot snap = snapshot_all_active(fabric, trace, true);
  for (const char* policy : kExactPolicies) {
    const Allocation serial = run_alloc(policy, 1, snap);
    const Allocation sharded = run_alloc(policy, 4, snap);
    for (const ActiveCoflow& c : snap.input.coflows) {
      for (const ActiveFlow& f : c.flows) {
        EXPECT_EQ(serial.rate(f.id), sharded.rate(f.id))
            << policy << " flow " << f.id;
      }
    }
  }
}

TEST(ShardEquivalence, LocalTracesMatchSerialClosely) {
  const Fabric fabric(32, gbps(1.0));
  const Trace trace = grouped_trace(fabric, 4, 11, 40, 6, 1.0);
  const Snapshot snap = snapshot_all_active(fabric, trace, true);
  for (const char* policy : kNearPolicies) {
    const Allocation serial = run_alloc(policy, 1, snap);
    const Allocation sharded = run_alloc(policy, 4, snap);
    for (const ActiveCoflow& c : snap.input.coflows) {
      for (const ActiveFlow& f : c.flows) {
        const double a = serial.rate(f.id);
        const double b = sharded.rate(f.id);
        EXPECT_NEAR(a, b, 1e-9 * std::max(a, 1.0))
            << policy << " flow " << f.id;
      }
    }
  }
}

TEST(ShardEquivalence, PspShardedIsBitwiseExactEvenCrossShard) {
  // psp's sharded path only parallelizes the per-flow share arithmetic
  // and applies serially in the serial order, so it is exact for every
  // trace, not just local ones.
  const Fabric fabric(32, gbps(1.0));
  const Trace trace = grouped_trace(fabric, 4, 13, 40, 6, /*locality=*/0.5);
  const Snapshot snap = snapshot_all_active(fabric, trace, true);
  const Allocation serial = run_alloc("psp", 1, snap);
  const Allocation sharded = run_alloc("psp", 4, snap);
  for (const ActiveCoflow& c : snap.input.coflows) {
    for (const ActiveFlow& f : c.flows) {
      EXPECT_EQ(serial.rate(f.id), sharded.rate(f.id)) << "flow " << f.id;
    }
  }
}

// ---------------------------------------------------------------------------
// Sharded priority fill over the incremental (event-maintained) queue
// state: the run_alloc cases above feed arrivals once and allocate once,
// so they never exercise ShardedPriorityFill consuming an order that
// PriorityOrder maintained through churn. These do — the serial and
// sharded schedulers see the identical event stream (finishes,
// departures, pristine re-arrivals, attained-service drift) and must stay
// in lockstep at every step.

// One churned world driving a serial and a sharded build of the same
// policy through identical event hooks.
class ChurnPair {
 public:
  ChurnPair(const std::string& name, const Fabric& fabric,
            const Trace& trace, std::uint64_t seed)
      : rng_(seed), snap_(snapshot_all_active(fabric, trace, true)) {
    SchedulerOptions four;
    four.shards = 4;
    serial_ = make_scheduler(name);
    sharded_ = make_scheduler(name, four);
    for (const ActiveCoflow& view : snap_.input.coflows) {
      pristine_.push_back(view);
    }
    pristine_sizes_ = *snap_.remaining;
    for (Scheduler* s : schedulers()) {
      if (!s->wants_events()) continue;
      s->on_reset(fabric);
      for (const ActiveCoflow& c : snap_.input.coflows) {
        s->on_coflow_arrival(c);
      }
    }
  }

  ScheduleInput& input() { return snap_.input; }
  Allocation allocate_serial() { return serial_->allocate(snap_.input); }
  Allocation allocate_sharded() { return sharded_->allocate(snap_.input); }

  // Drift + one flow finish (departing a drained coflow) + an occasional
  // pristine re-arrival of a departed coflow, all mirrored into both
  // schedulers' hooks.
  void step() {
    for (ActiveCoflow& view : snap_.input.coflows) {
      double moved = 0.0;
      for (const ActiveFlow& f : view.flows) {
        double& rem = (*snap_.remaining)[static_cast<std::size_t>(f.id)];
        const double delta = rem * rng_.uniform(0.0, 0.4);
        rem -= delta;
        moved += delta;
      }
      view.attained_bits += moved;
    }
    if (!snap_.input.coflows.empty()) {
      const auto k = static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(snap_.input.coflows.size()) - 1));
      ActiveCoflow& view = snap_.input.coflows[k];
      const ActiveFlow finished = view.flows.back();
      view.flows.pop_back();
      view.finished_flows.push_back(finished);
      auto& rem = (*snap_.remaining)[static_cast<std::size_t>(finished.id)];
      view.attained_bits += rem;
      rem = 0.0;
      for (Scheduler* s : schedulers()) {
        if (s->wants_events()) s->on_flow_finish(finished);
      }
      if (view.flows.empty()) {
        const CoflowId id = view.id;
        parked_.push_back(id);
        snap_.input.coflows[k] = std::move(snap_.input.coflows.back());
        snap_.input.coflows.pop_back();
        for (Scheduler* s : schedulers()) {
          if (s->wants_events()) s->on_coflow_departure(id);
        }
      }
    }
    if (!parked_.empty() && rng_.bernoulli(0.5)) {
      const CoflowId id = parked_.back();
      parked_.pop_back();
      ActiveCoflow revived = pristine_[static_cast<std::size_t>(id)];
      for (const ActiveFlow& f : revived.flows) {
        (*snap_.remaining)[static_cast<std::size_t>(f.id)] =
            pristine_sizes_[static_cast<std::size_t>(f.id)];
      }
      revived.attained_bits = rng_.uniform(0.0, 5e8);
      snap_.input.coflows.push_back(std::move(revived));
      for (Scheduler* s : schedulers()) {
        if (s->wants_events()) {
          s->on_coflow_arrival(snap_.input.coflows.back());
        }
      }
    }
  }

  bool empty() const { return snap_.input.coflows.empty(); }

 private:
  std::vector<Scheduler*> schedulers() {
    return {serial_.get(), sharded_.get()};
  }

  Rng rng_;
  Snapshot snap_;
  std::unique_ptr<Scheduler> serial_;
  std::unique_ptr<Scheduler> sharded_;
  std::vector<ActiveCoflow> pristine_;   // indexed by CoflowId
  std::vector<double> pristine_sizes_;   // indexed by FlowId
  std::vector<CoflowId> parked_;         // departed, eligible to revive
};

TEST(ShardedPriorityState, LocalTraceChurnStaysBitwiseIdentical) {
  // Shard-local trace: the sharded priority fill must track the serial
  // one bit for bit at every churn step, for every policy whose sharded
  // path is exact.
  const Fabric fabric(32, gbps(1.0));
  for (const char* policy : {"fifo", "aalo", "varys"}) {
    const Trace trace = grouped_trace(fabric, 4, 19, 30, 6,
                                      /*locality=*/1.0);
    ChurnPair pair(policy, fabric, trace, /*seed=*/77);
    for (int step = 0; step < 30 && !pair.empty(); ++step) {
      const Allocation serial = pair.allocate_serial();
      const Allocation sharded = pair.allocate_sharded();
      for (const ActiveCoflow& c : pair.input().coflows) {
        for (const ActiveFlow& f : c.flows) {
          ASSERT_EQ(serial.rate(f.id), sharded.rate(f.id))
              << policy << " step " << step << " flow " << f.id;
        }
      }
      pair.step();
    }
  }
}

TEST(ShardedPriorityState, CrossShardChurnKeepsTotalRateAndFeasibility) {
  // Cross-shard traffic: rates may diverge through the reconcile rounds,
  // but the churned sharded path must stay feasible and keep >= 95% of
  // the serial total rate at every step.
  const Fabric fabric(32, gbps(1.0));
  for (const char* policy : {"fifo", "aalo", "baraat"}) {
    const Trace trace = grouped_trace(fabric, 4, 23, 30, 6,
                                      /*locality=*/0.6);
    ChurnPair pair(policy, fabric, trace, /*seed=*/131);
    for (int step = 0; step < 30 && !pair.empty(); ++step) {
      const Allocation serial = pair.allocate_serial();
      const Allocation sharded = pair.allocate_sharded();
      EXPECT_NO_THROW(check_capacity(pair.input(), sharded, 1e-6))
          << policy << " step " << step;
      const double base = total_rate(pair.input(), serial);
      const double got = total_rate(pair.input(), sharded);
      EXPECT_GE(got, 0.95 * base) << policy << " step " << step;
      pair.step();
    }
  }
}

// ---------------------------------------------------------------------------
// Cross-shard traces: feasibility, bounded divergence, determinism

class ShardCrossTraffic : public ::testing::TestWithParam<int> {};

TEST_P(ShardCrossTraffic, FeasibleAndNearWorkConserving) {
  const int seed = GetParam();
  const Fabric fabric(40, gbps(1.0));
  const Trace trace = grouped_trace(
      fabric, 4, static_cast<std::uint64_t>(seed) * 977 + 5, 30, 8,
      /*locality=*/0.7);
  const Snapshot snap = snapshot_all_active(fabric, trace, true);
  for (const char* policy : {"tcp", "fifo", "varys", "aalo"}) {
    const Allocation serial = run_alloc(policy, 1, snap);
    const Allocation sharded = run_alloc(policy, 4, snap);
    // Never infeasible, never negative.
    EXPECT_NO_THROW(check_capacity(snap.input, sharded, 1e-6)) << policy;
    for (const ActiveCoflow& c : snap.input.coflows) {
      for (const ActiveFlow& f : c.flows) {
        EXPECT_GE(sharded.rate(f.id), 0.0) << policy << " flow " << f.id;
      }
    }
    // Bounded divergence: the default two-round reconcile keeps at least
    // 95% of the serial allocator's total rate.
    const double base = total_rate(snap.input, serial);
    const double got = total_rate(snap.input, sharded);
    EXPECT_GE(got, 0.95 * base) << policy << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardCrossTraffic,
                         ::testing::Range(0, 100));

TEST(ShardCrossTraffic, DrfShardedTracksSerialClosely) {
  // drf has no cross-shard reconcile approximation (the progress scalar
  // and rate pass are exact up to block-sum grouping), so even heavily
  // cross-shard traffic must reproduce serial rates to fp noise.
  const Fabric fabric(40, gbps(1.0));
  for (const std::uint64_t seed : {3u, 17u, 91u}) {
    const Trace trace = grouped_trace(fabric, 4, seed, 30, 8, 0.2);
    const Snapshot snap = snapshot_all_active(fabric, trace, true);
    const Allocation serial = run_alloc("drf", 1, snap);
    const Allocation sharded = run_alloc("drf", 4, snap);
    for (const ActiveCoflow& c : snap.input.coflows) {
      for (const ActiveFlow& f : c.flows) {
        const double a = serial.rate(f.id);
        EXPECT_NEAR(a, sharded.rate(f.id), 1e-9 * std::max(a, 1.0))
            << "seed " << seed << " flow " << f.id;
      }
    }
  }
}

TEST(ShardDeterminism, RepeatedShardedAllocationsAreBitwiseStable) {
  const Fabric fabric(40, gbps(1.0));
  const Trace trace = grouped_trace(fabric, 4, 23, 30, 8, 0.6);
  const Snapshot snap = snapshot_all_active(fabric, trace, true);
  for (const char* policy : {"tcp", "fifo", "drf", "varys"}) {
    const Allocation first = run_alloc(policy, 4, snap);
    for (int repeat = 0; repeat < 3; ++repeat) {
      const Allocation again = run_alloc(policy, 4, snap);
      for (const ActiveCoflow& c : snap.input.coflows) {
        for (const ActiveFlow& f : c.flows) {
          EXPECT_EQ(first.rate(f.id), again.rate(f.id))
              << policy << " repeat " << repeat << " flow " << f.id;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Registry, perf counters, sim plumbing

TEST(ShardRegistry, AtSuffixBuildsShardedScheduler) {
  const Fabric fabric(8, gbps(1.0));
  const Trace trace = grouped_trace(fabric, 4, 29, 6, 3, 1.0);
  const Snapshot snap = snapshot_all_active(fabric, trace, true);
  const auto sched = make_scheduler("drf@4");
  const Allocation alloc = sched->allocate(snap.input);
  EXPECT_GT(alloc.num_flows(), 0u);
  ASSERT_NE(sched->perf_counters(), nullptr);
  EXPECT_GT(sched->perf_counters()->shard_regions, 0);
}

TEST(ShardRegistry, RejectsMalformedOrUnsupportedSuffixes) {
  EXPECT_THROW(make_scheduler("drf@"), CheckError);
  EXPECT_THROW(make_scheduler("drf@x4"), CheckError);
  EXPECT_THROW(make_scheduler("drf@0"), CheckError);
  EXPECT_THROW(make_scheduler("@4"), CheckError);
  // The incremental core engine has no sharded path.
  EXPECT_THROW(make_scheduler("ncdrf@4"), CheckError);
  EXPECT_THROW(make_scheduler("ncdrf-live@2"), CheckError);
  EXPECT_THROW(make_scheduler("ncdrf-scratch@2"), CheckError);
  SchedulerOptions two;
  two.shards = 2;
  EXPECT_THROW(make_scheduler("ncdrf", two), CheckError);
  EXPECT_NE(make_scheduler("drf@2"), nullptr);
}

TEST(ShardPerf, CountersAccumulateOnlyOnShardedPath) {
  const Fabric fabric(16, gbps(1.0));
  const Trace trace = grouped_trace(fabric, 4, 31, 10, 4, 0.8);
  const Snapshot snap = snapshot_all_active(fabric, trace, true);

  const auto serial = make_scheduler("fifo", SchedulerOptions{});
  serial->allocate(snap.input);
  ASSERT_NE(serial->perf_counters(), nullptr);
  EXPECT_EQ(serial->perf_counters()->shard_regions, 0);
  EXPECT_EQ(serial->perf_counters()->shard_busy_seconds, 0.0);

  SchedulerOptions four;
  four.shards = 4;
  const auto sharded = make_scheduler("fifo", four);
  sharded->allocate(snap.input);
  const SchedPerf* perf = sharded->perf_counters();
  ASSERT_NE(perf, nullptr);
  EXPECT_GT(perf->shard_regions, 0);
  // The critical path is a per-region max of per-task CPU, so the busy
  // total can never be smaller.
  EXPECT_GE(perf->shard_busy_seconds, perf->shard_critical_seconds);
  EXPECT_GE(perf->shard_critical_seconds, 0.0);
}

TEST(ShardSim, ShardedFifoSimulatesLocalTraceLikeSerial) {
  // End-to-end through the simulator: on a fully shard-local trace the
  // sharded path allocates identically, so every completion time matches.
  const Fabric fabric(16, gbps(1.0));
  const Trace trace = grouped_trace(fabric, 4, 37, 12, 4, 1.0);

  const auto serial = make_scheduler("fifo");
  SimOptions options;
  options.record_intervals = false;
  const RunResult base = simulate(fabric, trace, *serial, options);

  const auto sharded = make_scheduler("fifo@4");
  options.reconcile.max_iterations = 4;  // forwarded via ScheduleInput
  options.validate_allocations = true;
  const RunResult run = simulate(fabric, trace, *sharded, options);

  ASSERT_EQ(run.coflows.size(), base.coflows.size());
  EXPECT_NEAR(run.total_bits_delivered, base.total_bits_delivered,
              1e-3 * base.total_bits_delivered);
  for (std::size_t k = 0; k < base.coflows.size(); ++k) {
    EXPECT_NEAR(run.coflows[k].cct, base.coflows[k].cct,
                1e-6 * base.coflows[k].cct)
        << "coflow " << k;
  }
}

TEST(ShardSim, CrossShardTraceCompletesUnderValidation) {
  const Fabric fabric(16, gbps(1.0));
  const Trace trace = grouped_trace(fabric, 4, 41, 12, 4, 0.5);
  const auto sched = make_scheduler("varys@4");
  SimOptions options;
  options.record_intervals = false;
  options.validate_allocations = true;  // throws on oversubscription
  const RunResult run = simulate(fabric, trace, *sched, options);
  ASSERT_EQ(run.coflows.size(), trace.coflows.size());
  for (const CoflowRecord& record : run.coflows) {
    EXPECT_GT(record.cct, 0.0);
  }
}

// ---------------------------------------------------------------------------
// Theorem 1 envelope against a sharded clairvoyant-DRF baseline

Trace theorem_instance(std::uint64_t seed, int machines, int coflows) {
  Rng rng(seed);
  TraceBuilder builder(machines);
  for (int c = 0; c < coflows; ++c) {
    builder.begin_coflow(0.0);
    const int m_k = static_cast<int>(rng.uniform_int(2, machines));
    const int r_k = static_cast<int>(rng.uniform_int(1, m_k - 1));
    const std::vector<int> ups =
        rng.sample_without_replacement(machines, m_k);
    const std::vector<int> downs =
        rng.sample_without_replacement(machines, r_k);
    const double base = rng.uniform(megabits(20.0), megabits(200.0));
    for (const int down : downs) {
      const double size = base * rng.uniform(1.0, 3.0);
      for (const int up : ups) builder.add_flow(up, down, size);
    }
  }
  return builder.build();
}

TEST(ShardTheorem1, EnvelopeHoldsAgainstShardedDrfBaseline) {
  // drf@4 reproduces serial DRF to fp noise (no reconcile approximation),
  // so NC-DRF must stay within the e_max envelope of the *sharded*
  // clairvoyant baseline too — the long-term isolation guarantee survives
  // the parallel allocation path.
  const Fabric fabric(8, gbps(1.0));
  for (const std::uint64_t seed : {1u, 5u}) {
    const Trace trace = theorem_instance(seed, 8, 10);
    double e_max = 1.0;
    for (const Coflow& coflow : trace.coflows) {
      e_max = std::max(e_max, coflow.demand(fabric).disparity());
    }

    NcDrfScheduler ncdrf;
    const auto drf = make_scheduler("drf@4");
    SimOptions options;
    options.record_intervals = false;
    const RunResult run_nc = simulate(fabric, trace, ncdrf, options);
    const RunResult run_drf = simulate(fabric, trace, *drf, options);
    ASSERT_EQ(run_nc.coflows.size(), trace.coflows.size());
    for (std::size_t k = 0; k < trace.coflows.size(); ++k) {
      ASSERT_GT(run_drf.coflows[k].cct, 0.0);
      const double ratio = run_nc.coflows[k].cct / run_drf.coflows[k].cct;
      EXPECT_LE(ratio, e_max * (1.0 + 1e-6))
          << "coflow " << k << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace ncdrf
