// Unit tests for the trace module: builder invariants, Coflow-Benchmark
// format round-trips, the synthetic FB generator's statistical contract,
// and the Table III micro-benchmark workload.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/check.h"
#include "common/units.h"
#include "trace/benchmark_format.h"
#include "trace/microbench.h"
#include "trace/synthetic_fb.h"
#include "trace/trace.h"

namespace ncdrf {
namespace {

TEST(TraceBuilder, AssignsDenseIdsSortedByArrival) {
  TraceBuilder builder(4);
  builder.begin_coflow(5.0);
  builder.add_flow(0, 1, 100.0);
  builder.begin_coflow(1.0);
  builder.add_flow(2, 3, 200.0);
  builder.add_flow(3, 2, 300.0);
  const Trace trace = builder.build();

  ASSERT_EQ(trace.coflows.size(), 2u);
  EXPECT_EQ(trace.total_flows, 3);
  // Sorted by arrival; ids reassigned densely.
  EXPECT_DOUBLE_EQ(trace.coflows[0].arrival_time(), 1.0);
  EXPECT_EQ(trace.coflows[0].id(), 0);
  EXPECT_EQ(trace.coflows[1].id(), 1);
  for (std::size_t k = 0; k < trace.coflows.size(); ++k) {
    for (const Flow& f : trace.coflows[k].flows()) {
      EXPECT_EQ(f.coflow, trace.coflows[k].id());
    }
  }
  EXPECT_DOUBLE_EQ(trace.total_bits(), 600.0);
}

TEST(TraceBuilder, FlowIdsAreGloballyUnique) {
  TraceBuilder builder(3);
  std::set<FlowId> ids;
  for (int c = 0; c < 5; ++c) {
    builder.begin_coflow(c);
    for (int f = 0; f <= c; ++f) builder.add_flow(0, 1, 1.0);
  }
  const Trace trace = builder.build();
  for (const Coflow& coflow : trace.coflows) {
    for (const Flow& f : coflow.flows()) {
      EXPECT_TRUE(ids.insert(f.id).second) << "duplicate flow id " << f.id;
      EXPECT_GE(f.id, 0);
      EXPECT_LT(f.id, trace.total_flows);
    }
  }
}

TEST(TraceBuilder, Validates) {
  EXPECT_THROW(TraceBuilder(0), CheckError);
  TraceBuilder builder(2);
  EXPECT_THROW(builder.add_flow(0, 1, 1.0), CheckError);  // no open coflow
  builder.begin_coflow(0.0);
  EXPECT_THROW(builder.add_flow(2, 0, 1.0), CheckError);  // src range
  EXPECT_THROW(builder.add_flow(0, -1, 1.0), CheckError);  // dst range
  EXPECT_THROW(builder.add_flow(0, 1, 0.0), CheckError);   // size
  EXPECT_THROW(builder.build(), CheckError);  // empty coflow
}

TEST(BenchmarkFormat, ParsesTheDocumentedFormat) {
  // 2 coflows on 4 racks (1-based racks as in the published trace).
  const std::string text =
      "4 2\n"
      "1 0 2 1 2 1 4:100\n"
      "2 5000 1 3 2 1:30 2:60\n";
  const Trace trace = parse_benchmark_trace_string(text);
  EXPECT_EQ(trace.num_machines, 4);
  ASSERT_EQ(trace.coflows.size(), 2u);

  // Coflow 0: mappers at racks {0,1}, one reducer at rack 3 with 100 MB →
  // two flows of 50 MB each.
  const Coflow& c0 = trace.coflows[0];
  EXPECT_DOUBLE_EQ(c0.arrival_time(), 0.0);
  ASSERT_EQ(c0.width(), 2);
  EXPECT_DOUBLE_EQ(c0.flows()[0].size_bits, megabytes(50.0));
  EXPECT_EQ(c0.flows()[0].src, 0);
  EXPECT_EQ(c0.flows()[0].dst, 3);
  EXPECT_EQ(c0.flows()[1].src, 1);

  // Coflow 1: arrival 5 s, one mapper at rack 2, reducers at racks 0, 1.
  const Coflow& c1 = trace.coflows[1];
  EXPECT_DOUBLE_EQ(c1.arrival_time(), 5.0);
  ASSERT_EQ(c1.width(), 2);
  EXPECT_EQ(c1.flows()[0].src, 2);
  EXPECT_EQ(c1.flows()[0].dst, 0);
  EXPECT_DOUBLE_EQ(c1.flows()[0].size_bits, megabytes(30.0));
  EXPECT_DOUBLE_EQ(c1.flows()[1].size_bits, megabytes(60.0));
}

TEST(BenchmarkFormat, DetectsZeroBasedRacks) {
  const std::string text =
      "3 1\n"
      "1 0 2 0 1 1 2:10\n";
  const Trace trace = parse_benchmark_trace_string(text);
  EXPECT_EQ(trace.coflows[0].flows()[0].src, 0);
  EXPECT_EQ(trace.coflows[0].flows()[0].dst, 2);
}

TEST(BenchmarkFormat, RoundTripsThroughSerialize) {
  const std::string text =
      "5 2\n"
      "1 100 2 1 3 2 2:40 5:10\n"
      "2 2500 3 1 2 4 1 3:90\n";
  const Trace original = parse_benchmark_trace_string(text);
  const Trace reparsed =
      parse_benchmark_trace_string(serialize_benchmark_trace(original));
  ASSERT_EQ(reparsed.coflows.size(), original.coflows.size());
  for (std::size_t k = 0; k < original.coflows.size(); ++k) {
    const Coflow& a = original.coflows[k];
    const Coflow& b = reparsed.coflows[k];
    EXPECT_DOUBLE_EQ(a.arrival_time(), b.arrival_time());
    ASSERT_EQ(a.width(), b.width());
    EXPECT_NEAR(a.total_bits(), b.total_bits(), 1.0);
  }
}

TEST(BenchmarkFormat, RoundTripIsFlowExact) {
  // parse → serialize → parse must reproduce every flow identically —
  // same src, dst and size, in the same order — not just aggregate
  // totals. Mapper-uniform sizes (as in published traces) survive the
  // per-reducer re-aggregation exactly.
  const std::string text =
      "6 3\n"
      "1 0 2 1 4 2 2:40 6:10\n"
      "2 1500 3 1 2 4 1 3:90\n"
      "3 60000 1 5 3 1:12 2:24 4:36\n";
  const Trace original = parse_benchmark_trace_string(text);
  const Trace reparsed =
      parse_benchmark_trace_string(serialize_benchmark_trace(original));
  ASSERT_EQ(reparsed.coflows.size(), original.coflows.size());
  EXPECT_EQ(reparsed.num_machines, original.num_machines);
  EXPECT_EQ(reparsed.total_flows, original.total_flows);
  for (std::size_t k = 0; k < original.coflows.size(); ++k) {
    const Coflow& a = original.coflows[k];
    const Coflow& b = reparsed.coflows[k];
    EXPECT_DOUBLE_EQ(a.arrival_time(), b.arrival_time());
    ASSERT_EQ(a.width(), b.width());
    for (int i = 0; i < a.width(); ++i) {
      const Flow& fa = a.flows()[static_cast<std::size_t>(i)];
      const Flow& fb = b.flows()[static_cast<std::size_t>(i)];
      EXPECT_EQ(fa.src, fb.src) << "coflow " << k << " flow " << i;
      EXPECT_EQ(fa.dst, fb.dst) << "coflow " << k << " flow " << i;
      EXPECT_DOUBLE_EQ(fa.size_bits, fb.size_bits)
          << "coflow " << k << " flow " << i;
    }
  }
}

TEST(BenchmarkFormat, SerializeIsAFixedPoint) {
  // serialize(parse(serialize(t))) == serialize(t): one round trip lands
  // on a canonical form that further round trips preserve byte-for-byte.
  const std::string text =
      "5 2\n"
      "1 100 2 1 3 2 2:40 5:10\n"
      "2 2500 3 1 2 4 1 3:90\n";
  const Trace once = parse_benchmark_trace_string(text);
  const std::string canon = serialize_benchmark_trace(once);
  const Trace twice = parse_benchmark_trace_string(canon);
  EXPECT_EQ(serialize_benchmark_trace(twice), canon);
}

TEST(BenchmarkFormat, ZeroBasedInputRoundTrips) {
  // 0-based input is written back 1-based; the reparse must see the same
  // racks (the detection heuristic normalizes, not shifts, the data).
  const std::string text =
      "3 1\n"
      "1 0 2 0 1 1 2:10\n";
  const Trace original = parse_benchmark_trace_string(text);
  const Trace reparsed =
      parse_benchmark_trace_string(serialize_benchmark_trace(original));
  ASSERT_EQ(reparsed.coflows[0].width(), original.coflows[0].width());
  for (int i = 0; i < original.coflows[0].width(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    EXPECT_EQ(reparsed.coflows[0].flows()[idx].src,
              original.coflows[0].flows()[idx].src);
    EXPECT_EQ(reparsed.coflows[0].flows()[idx].dst,
              original.coflows[0].flows()[idx].dst);
  }
}

TEST(BenchmarkFormat, RejectsMalformedInput) {
  EXPECT_THROW(parse_benchmark_trace_string(""), CheckError);
  EXPECT_THROW(parse_benchmark_trace_string("4"), CheckError);
  // Reducer entry without the colon.
  EXPECT_THROW(parse_benchmark_trace_string("4 1\n1 0 1 1 1 3\n"),
               CheckError);
  // Rack out of range.
  EXPECT_THROW(parse_benchmark_trace_string("4 1\n1 0 1 9 1 1:10\n"),
               CheckError);
  // Negative size.
  EXPECT_THROW(parse_benchmark_trace_string("4 1\n1 0 1 1 1 2:-5\n"),
               CheckError);
  // Fewer coflows than the header promises.
  EXPECT_THROW(parse_benchmark_trace_string("4 2\n1 0 1 1 1 2:10\n"),
               CheckError);
  // Zero racks / zero coflows in the header.
  EXPECT_THROW(parse_benchmark_trace_string("0 1\n1 0 1 1 1 1:10\n"),
               CheckError);
  // Mapper count promises more racks than the line carries.
  EXPECT_THROW(parse_benchmark_trace_string("4 1\n1 0 3 1 2 1 2:10\n"),
               CheckError);
  // Reducer count promises more entries than the line carries.
  EXPECT_THROW(parse_benchmark_trace_string("4 1\n1 0 1 1 2 2:10\n"),
               CheckError);
  // Non-numeric size after the colon.
  EXPECT_THROW(parse_benchmark_trace_string("4 1\n1 0 1 1 1 2:abc\n"),
               CheckError);
  // Negative arrival time.
  EXPECT_THROW(parse_benchmark_trace_string("4 1\n1 -5 1 1 1 2:10\n"),
               CheckError);
}

TEST(SyntheticFb, MatchesTableIBinMix) {
  SyntheticFbOptions options;
  const Trace trace = generate_synthetic_fb(options);
  EXPECT_EQ(trace.num_machines, 150);
  ASSERT_EQ(trace.coflows.size(), 526u);

  std::map<CoflowBin, int> counts;
  for (const Coflow& c : trace.coflows) counts[classify_bin(c)] += 1;
  const double n = static_cast<double>(trace.coflows.size());
  // Bin mix is enforced by construction; rounding gives ±1 coflow.
  EXPECT_NEAR(counts[CoflowBin::kShortNarrow] / n, 0.60, 0.01);
  EXPECT_NEAR(counts[CoflowBin::kLongNarrow] / n, 0.16, 0.01);
  EXPECT_NEAR(counts[CoflowBin::kShortWide] / n, 0.12, 0.01);
  EXPECT_NEAR(counts[CoflowBin::kLongWide] / n, 0.12, 0.01);
}

TEST(SyntheticFb, ArrivalsSpanTheHourAndAreSorted) {
  const Trace trace = generate_synthetic_fb({});
  double prev = 0.0;
  for (const Coflow& c : trace.coflows) {
    EXPECT_GE(c.arrival_time(), prev);
    EXPECT_LT(c.arrival_time(), 3600.0);
    prev = c.arrival_time();
  }
  EXPECT_GT(trace.coflows.back().arrival_time(), 3000.0);  // spans the hour
}

TEST(SyntheticFb, DeterministicPerSeedAndSeedSensitive) {
  SyntheticFbOptions options;
  options.num_coflows = 40;
  const Trace a = generate_synthetic_fb(options);
  const Trace b = generate_synthetic_fb(options);
  ASSERT_EQ(a.coflows.size(), b.coflows.size());
  for (std::size_t k = 0; k < a.coflows.size(); ++k) {
    EXPECT_DOUBLE_EQ(a.coflows[k].arrival_time(), b.coflows[k].arrival_time());
    EXPECT_DOUBLE_EQ(a.coflows[k].total_bits(), b.coflows[k].total_bits());
  }
  options.seed += 1;
  const Trace c = generate_synthetic_fb(options);
  bool any_diff = false;
  for (std::size_t k = 0; k < a.coflows.size(); ++k) {
    any_diff = any_diff ||
               a.coflows[k].total_bits() != c.coflows[k].total_bits();
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticFb, RespectsFlowCap) {
  SyntheticFbOptions options;
  options.max_flows_per_coflow = 200;
  const Trace trace = generate_synthetic_fb(options);
  for (const Coflow& c : trace.coflows) {
    EXPECT_LE(c.width(), 200);
  }
}

TEST(SyntheticFb, MapperSideFlowSizesAreLoadBalanced) {
  // The load-balancing property NC-DRF's analysis (and Theorem 1's second
  // assumption) relies on: flows *into the same reducer* are near-equal.
  // The generator draws them as reducer_total × U[0.7, 1.4], so their
  // max/min ratio within one (coflow, reducer) group is ≤ 2. Across
  // reducers, partition skew may make sizes differ much more.
  const Trace trace = generate_synthetic_fb({});
  for (const Coflow& c : trace.coflows) {
    std::map<MachineId, std::pair<double, double>> per_reducer;  // (min,max)
    for (const Flow& f : c.flows()) {
      auto [it, inserted] = per_reducer.try_emplace(
          f.dst, std::make_pair(f.size_bits, f.size_bits));
      if (!inserted) {
        it->second.first = std::min(it->second.first, f.size_bits);
        it->second.second = std::max(it->second.second, f.size_bits);
      }
    }
    for (const auto& [reducer, range] : per_reducer) {
      EXPECT_LE(range.second / range.first, 2.0 + 1e-9)
          << "coflow " << c.id() << " reducer " << reducer;
    }
  }
}

TEST(Microbench, TableIIIShape) {
  const Trace trace = build_testbed_trace({});
  ASSERT_EQ(trace.coflows.size(), 3u);
  EXPECT_EQ(trace.num_machines, 60);

  const Coflow& a = trace.coflows[0];
  const Coflow& b = trace.coflows[1];
  const Coflow& c = trace.coflows[2];
  EXPECT_EQ(a.width(), 360);
  EXPECT_EQ(b.width(), 60);
  EXPECT_EQ(c.width(), 60);
  EXPECT_EQ(trace.total_flows, 480);  // "In total, we have 480 flows"
  EXPECT_DOUBLE_EQ(a.arrival_time(), 0.0);
  EXPECT_DOUBLE_EQ(b.arrival_time(), 10.0);
  EXPECT_DOUBLE_EQ(c.arrival_time(), 20.0);

  // Flow sizes within [30, 100] MB.
  for (const Coflow& coflow : trace.coflows) {
    for (const Flow& f : coflow.flows()) {
      EXPECT_GE(f.size_bits, megabytes(30.0) - 1.0);
      EXPECT_LE(f.size_bits, megabytes(100.0) + 1.0);
    }
  }

  // Coflow A stays within its 6-machine groups.
  for (const Flow& f : a.flows()) {
    EXPECT_EQ(f.src / 6, f.dst / 6);
  }
  // Coflow B pairs i with i+30.
  for (const Flow& f : b.flows()) {
    EXPECT_EQ(std::abs(f.src - f.dst), 30);
  }
  // Coflow C pairs j with j+15 within each half.
  for (const Flow& f : c.flows()) {
    EXPECT_EQ(std::abs(f.src - f.dst), 15);
    EXPECT_EQ(f.src / 30, f.dst / 30);
  }
}

}  // namespace
}  // namespace ncdrf
