// Tests for the simulator engine's incrementally maintained ScheduleInput
// snapshot (sim/engine.cc): the per-coflow views it hands to allocate()
// must stay equivalent to a from-scratch rebuild through randomized
// arrival / flow-finish / departure churn, and the O(1) departure-record
// lookup must hold up when many coflows come and go. Mirrors the
// randomized-oracle style of ncdrf_incremental_test.cc one layer up.
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/units.h"
#include "core/registry.h"
#include "sim/sim.h"
#include "trace/synthetic_fb.h"
#include "trace/trace.h"

namespace ncdrf {
namespace {

Trace random_churn_trace(unsigned long long seed, int num_coflows,
                         int num_racks) {
  SyntheticFbOptions options;
  options.seed = seed;
  options.num_coflows = num_coflows;
  options.num_racks = num_racks;
  // Short inter-arrival window so coflows overlap heavily: every run mixes
  // arrivals into a live active set, flow finishes and departures.
  options.duration_s = 20.0;
  options.max_flows_per_coflow = 50;  // generator minimum (wide coflows)
  return generate_synthetic_fb(options);
}

// verify_snapshot makes the engine cross-check its incremental views
// (active coflows, unfinished/finished flow lists, attained bits) against
// a from-scratch rebuild before every allocate() and throw CheckError on
// any divergence — so "the run completes" IS the equivalence assertion.
TEST(EngineSnapshot, IncrementalViewsMatchRebuildUnderRandomChurn) {
  SimOptions options;
  options.verify_snapshot = true;
  for (const unsigned long long seed : {3ull, 17ull, 101ull}) {
    const Trace trace = random_churn_trace(seed, 40, 20);
    const Fabric fabric(20, gbps(1.0));
    for (const std::string name : {"ncdrf", "ncdrf-live", "tcp", "aalo"}) {
      const auto scheduler = make_scheduler(name);
      const RunResult run = simulate(fabric, trace, *scheduler, options);
      EXPECT_EQ(run.coflows.size(), trace.coflows.size())
          << name << " seed " << seed;
    }
  }
}

// The verification pass must be observation only: identical results with
// it on and off.
TEST(EngineSnapshot, VerificationIsSideEffectFree) {
  const Trace trace = random_churn_trace(7, 30, 16);
  const Fabric fabric(16, gbps(1.0));
  for (const std::string name : {"ncdrf", "psp"}) {
    SimOptions verify;
    verify.verify_snapshot = true;
    const auto sched_a = make_scheduler(name);
    const RunResult checked = simulate(fabric, trace, *sched_a, verify);
    const auto sched_b = make_scheduler(name);
    const RunResult plain = simulate(fabric, trace, *sched_b);
    ASSERT_EQ(checked.coflows.size(), plain.coflows.size());
    EXPECT_EQ(checked.num_events, plain.num_events) << name;
    for (std::size_t i = 0; i < checked.coflows.size(); ++i) {
      EXPECT_EQ(checked.coflows[i].cct, plain.coflows[i].cct)
          << name << " coflow " << i;
    }
  }
}

// Regression for the id→index departure map: a workload where hundreds of
// coflows arrive and depart (forcing constant swap-pop compaction of the
// active set) must still produce a complete, well-formed record for every
// coflow. Before the map, each departure rescanned the records; worse, a
// wrong index would silently corrupt a *different* coflow's record — so
// check every field, not just completion.
TEST(EngineSnapshot, ManyCoflowsDepartWithCorrectRecords) {
  SyntheticFbOptions options;
  options.seed = 99;
  options.num_coflows = 400;
  options.num_racks = 25;
  options.duration_s = 400.0;  // steady arrival/departure churn
  options.max_flows_per_coflow = 50;
  const Trace trace = generate_synthetic_fb(options);
  const Fabric fabric(25, gbps(1.0));

  SimOptions sim;
  sim.record_intervals = false;
  const auto scheduler = make_scheduler("ncdrf");
  const RunResult run = simulate(fabric, trace, *scheduler, sim);

  ASSERT_EQ(run.coflows.size(), trace.coflows.size());
  for (std::size_t i = 0; i < run.coflows.size(); ++i) {
    const CoflowRecord& rec = run.coflows[i];
    const Coflow& coflow = trace.coflows[i];
    EXPECT_EQ(rec.id, coflow.id());
    EXPECT_EQ(rec.arrival, coflow.arrival_time());
    EXPECT_GT(rec.cct, 0.0) << "coflow " << i << " never completed";
    EXPECT_NEAR(rec.completion, rec.arrival + rec.cct, 1e-9);
    EXPECT_EQ(rec.width, static_cast<int>(coflow.flows().size()));
    double total_bits = 0.0;
    for (const Flow& f : coflow.flows()) total_bits += f.size_bits;
    EXPECT_EQ(rec.total_bits, total_bits);
  }
}

// Batched submit: a trace whose flow ids arrive out of order across
// coflows must still produce a dense remaining-bits table (one resize per
// submit, not per flow). Pinning behaviour: zero-size and tiny flows
// complete immediately without starving the run.
TEST(EngineSnapshot, SubmitHandlesTinyFlowsAndWideIdRange) {
  TraceBuilder builder(6);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 1, megabits(1.0));
  builder.add_flow(1, 2, 0.5);  // below completion_epsilon_bits
  builder.add_flow(2, 3, megabits(2.0));
  builder.begin_coflow(0.1);
  for (int i = 0; i < 5; ++i) {
    builder.add_flow(i, (i + 1) % 6, megabits(1.0));
  }
  const Trace trace = builder.build();
  const Fabric fabric(6, gbps(1.0));

  SimOptions options;
  options.verify_snapshot = true;
  const auto scheduler = make_scheduler("ncdrf");
  const RunResult run = simulate(fabric, trace, *scheduler, options);
  ASSERT_EQ(run.coflows.size(), 2u);
  EXPECT_GT(run.coflows[0].cct, 0.0);
  EXPECT_GT(run.coflows[1].cct, 0.0);
}

}  // namespace
}  // namespace ncdrf
