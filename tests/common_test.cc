// Unit tests for src/common: checks, units, RNG, statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/units.h"

namespace ncdrf {
namespace {

TEST(Check, PassingConditionDoesNothing) {
  EXPECT_NO_THROW(NCDRF_CHECK(1 + 1 == 2, "math"));
}

TEST(Check, FailingConditionThrowsWithContext) {
  try {
    NCDRF_CHECK(false, "custom context");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("custom context"), std::string::npos);
    EXPECT_NE(what.find("common_test.cc"), std::string::npos);
  }
}

TEST(Units, ConversionsAreConsistent) {
  EXPECT_DOUBLE_EQ(megabits(100.0), 1e8);
  EXPECT_DOUBLE_EQ(gbps(1.0), 1e9);
  EXPECT_DOUBLE_EQ(megabytes(5.0), 4e7);
  EXPECT_DOUBLE_EQ(to_megabytes(megabytes(5.0)), 5.0);
  EXPECT_DOUBLE_EQ(to_gbps(gbps(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(milliseconds(250.0), 0.25);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(3, 8));
  EXPECT_EQ(seen, (std::set<std::int64_t>{3, 4, 5, 6, 7, 8}));
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.pareto(3.0, 1.5), 3.0);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(29);
  std::vector<double> weights{1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[rng.weighted_index(weights)] += 1;
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(31);
  for (int trial = 0; trial < 100; ++trial) {
    const std::vector<int> s = rng.sample_without_replacement(20, 8);
    std::set<int> distinct(s.begin(), s.end());
    EXPECT_EQ(distinct.size(), 8u);
    for (const int v : s) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 20);
    }
  }
}

TEST(Rng, SampleWithoutReplacementRejectsBadArgs) {
  Rng rng(37);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), CheckError);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
}

TEST(Stats, SummaryOnKnownSample) {
  const Summary s = summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);  // classic textbook sample
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Stats, SummaryEmptyIsZeroed) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(WeightedCdfTest, QuantilesRespectWeights) {
  WeightedCdf cdf;
  cdf.add(1.0, 9.0);
  cdf.add(10.0, 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.9), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.95), 10.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 10.0);
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.mean(), 1.9);
}

TEST(WeightedCdfTest, CdfAtAccumulates) {
  WeightedCdf cdf;
  cdf.add(1.0, 1.0);
  cdf.add(2.0, 1.0);
  cdf.add(3.0, 2.0);
  EXPECT_DOUBLE_EQ(cdf.cdf_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.cdf_at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.cdf_at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.cdf_at(3.0), 1.0);
}

TEST(WeightedCdfTest, ZeroWeightIgnoredNegativeThrows) {
  WeightedCdf cdf;
  cdf.add(5.0, 0.0);
  EXPECT_TRUE(cdf.empty());
  EXPECT_THROW(cdf.add(1.0, -1.0), CheckError);
}

TEST(WeightedCdfTest, CurveIsMonotone) {
  WeightedCdf cdf;
  for (int i = 0; i < 50; ++i) cdf.add((i * 37) % 11, 1.0 + i % 3);
  const auto curve = cdf.curve();
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LT(curve[i - 1].first, curve[i].first);
    EXPECT_LE(curve[i - 1].second, curve[i].second);
  }
  EXPECT_NEAR(curve.back().second, 1.0, 1e-12);
}

TEST(AsciiTableTest, RendersAlignedRows) {
  AsciiTable table({"Policy", "Mean"});
  table.add_row({"NC-DRF", AsciiTable::fmt(5.75)});
  table.add_row({"DRF", AsciiTable::fmt(3.36)});
  const std::string out = table.render();
  EXPECT_NE(out.find("| Policy | Mean |"), std::string::npos);
  EXPECT_NE(out.find("| NC-DRF | 5.75 |"), std::string::npos);
  EXPECT_NE(out.find("| DRF    | 3.36 |"), std::string::npos);
}

TEST(AsciiTableTest, RowWidthMismatchThrows) {
  AsciiTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), CheckError);
}

}  // namespace
}  // namespace ncdrf
