// Tests for the CSV exporters, the trace statistics profiler, and the
// communication-pattern builders.
#include <gtest/gtest.h>

#include <sstream>

#include "common/units.h"
#include "core/registry.h"
#include "metrics/export.h"
#include "sim/sim.h"
#include "test_util.h"
#include "trace/patterns.h"
#include "trace/synthetic_fb.h"
#include "trace/trace_stats.h"

namespace ncdrf {
namespace {

using testing::fig3_trace;

int count_lines(const std::string& text) {
  int lines = 0;
  for (const char c : text) lines += c == '\n';
  return lines;
}

TEST(Export, CoflowCsvHasHeaderAndOneRowPerCoflow) {
  const Fabric fabric(2, gbps(1.0));
  const auto sched = make_scheduler("ncdrf");
  const RunResult run = simulate(fabric, fig3_trace(), *sched);
  std::ostringstream out;
  write_coflow_csv(out, run);
  const std::string csv = out.str();
  EXPECT_EQ(count_lines(csv), 3);  // header + 2 coflows
  EXPECT_NE(csv.find("coflow,arrival_s"), std::string::npos);
  EXPECT_NE(csv.find(",LN"), std::string::npos);  // 12.5 MB flows: long narrow
}

TEST(Export, IntervalsCsvMatchesIntervalCount) {
  const Fabric fabric(2, gbps(1.0));
  const auto sched = make_scheduler("ncdrf");
  const RunResult run = simulate(fabric, fig3_trace(), *sched);
  std::ostringstream out;
  write_intervals_csv(out, run);
  EXPECT_EQ(count_lines(out.str()),
            static_cast<int>(run.intervals.size()) + 1);
}

TEST(Export, CdfCsvIsMonotone) {
  WeightedCdf cdf;
  cdf.add(3.0, 1.0);
  cdf.add(1.0, 2.0);
  cdf.add(2.0, 1.0);
  std::ostringstream out;
  write_cdf_csv(out, cdf, "disparity");
  const std::string csv = out.str();
  EXPECT_NE(csv.find("disparity,cumulative_fraction"), std::string::npos);
  EXPECT_NE(csv.find("1,0.5"), std::string::npos);
  EXPECT_NE(csv.find("3,1"), std::string::npos);
}

TEST(Export, NormalizedCctCsvAlignsPolicies) {
  const Fabric fabric(2, gbps(1.0));
  const Trace trace = fig3_trace();
  const auto drf = make_scheduler("drf");
  const RunResult base = simulate(fabric, trace, *drf);
  std::map<std::string, RunResult> runs;
  const auto ncdrf_sched = make_scheduler("ncdrf");
  const auto psp = make_scheduler("psp");
  runs["ncdrf"] = simulate(fabric, trace, *ncdrf_sched);
  runs["psp"] = simulate(fabric, trace, *psp);
  std::ostringstream out;
  write_normalized_cct_csv(out, runs, base);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("coflow,ncdrf,psp"), std::string::npos);
  EXPECT_EQ(count_lines(csv), 3);
}

TEST(TraceStatsTest, ProfilesTheSyntheticTwin) {
  SyntheticFbOptions options;
  options.num_coflows = 120;
  options.num_racks = 50;
  options.duration_s = 600.0;
  const Trace trace = generate_synthetic_fb(options);
  const Fabric fabric(50, gbps(1.0));
  const TraceStats stats = compute_trace_stats(trace, fabric);

  EXPECT_EQ(stats.num_coflows, 120);
  EXPECT_EQ(stats.num_flows, trace.total_flows);
  EXPECT_NEAR(stats.total_bytes, trace.total_bits() / 8.0, 1.0);
  EXPECT_GT(stats.arrival_span_s, 100.0);
  EXPECT_GE(stats.width.min, 1.0);
  EXPECT_GE(stats.disparity.min, 1.0);
  // Rack skew concentrates load: the hotspot link carries far more than
  // the mean link.
  EXPECT_GT(stats.max_link_load_gbps, 3.0 * stats.mean_link_load_gbps);
  int bin_total = 0;
  for (const auto& [bin, count] : stats.bins) bin_total += count;
  EXPECT_EQ(bin_total, 120);

  const std::string report = format_trace_stats(stats);
  EXPECT_NE(report.find("width"), std::string::npos);
  EXPECT_NE(report.find("hotspot"), std::string::npos);
}

TEST(Patterns, ShuffleAndAllToAllShapes) {
  TraceBuilder builder(6);
  builder.begin_coflow(0.0);
  add_shuffle(builder, machine_range(0, 2), machine_range(3, 3),
              [] { return 1e6; });
  builder.begin_coflow(0.0);
  add_all_to_all(builder, machine_range(0, 3), [] { return 1e6; });
  const Trace trace = builder.build();
  EXPECT_EQ(trace.coflows[0].width(), 6);  // 2×3
  EXPECT_EQ(trace.coflows[1].width(), 9);  // 3×3
}

TEST(Patterns, PairwiseIncastBroadcastShapes) {
  TraceBuilder builder(8);
  builder.begin_coflow(0.0);
  add_pairwise(builder, machine_range(0, 3), machine_range(4, 3),
               [] { return 1e6; }, /*bidirectional=*/true);
  builder.begin_coflow(0.0);
  add_incast(builder, machine_range(0, 5), 7, [] { return 1e6; });
  builder.begin_coflow(0.0);
  add_broadcast(builder, 7, machine_range(0, 4), [] { return 1e6; });
  const Trace trace = builder.build();
  EXPECT_EQ(trace.coflows[0].width(), 6);  // 3 pairs × 2 directions
  EXPECT_EQ(trace.coflows[1].width(), 5);
  EXPECT_EQ(trace.coflows[2].width(), 4);

  const Fabric fabric(8, gbps(1.0));
  // Incast concentrates on the aggregator's downlink.
  const DemandVectors d = trace.coflows[1].demand(fabric);
  EXPECT_EQ(d.bottleneck_link, fabric.downlink(7));
}

TEST(Patterns, Validation) {
  TraceBuilder builder(4);
  builder.begin_coflow(0.0);
  EXPECT_THROW(add_shuffle(builder, {}, machine_range(0, 2),
                           [] { return 1e6; }),
               CheckError);
  EXPECT_THROW(add_pairwise(builder, machine_range(0, 2),
                            machine_range(0, 3), [] { return 1e6; }),
               CheckError);
  EXPECT_THROW(machine_range(0, 0), CheckError);
}

}  // namespace
}  // namespace ncdrf
