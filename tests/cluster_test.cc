// Tests for the master/slave cluster emulation: bus ordering, slave rate
// enforcement, master view maintenance, and end-to-end deployments whose
// CCTs must track the fluid simulator's predictions.
#include <gtest/gtest.h>

#include "cluster/bus.h"
#include "cluster/deployment.h"
#include "cluster/master.h"
#include "cluster/slave.h"
#include "common/check.h"
#include "common/units.h"
#include "core/ncdrf.h"
#include "core/registry.h"
#include "sim/sim.h"
#include "test_util.h"

namespace ncdrf {
namespace {

using testing::fig3_trace;

TEST(Bus, DelaysAndOrdersDeliveries) {
  SimBus bus(0.5);
  bus.send(0.0, master_address(), FlowFinishedMsg{1, 0, 0.0});
  bus.send(0.1, master_address(), FlowFinishedMsg{2, 0, 0.1});
  EXPECT_TRUE(bus.deliver_due(0.4).empty());  // nothing before latency
  const auto at_half = bus.deliver_due(0.5);
  ASSERT_EQ(at_half.size(), 1u);
  EXPECT_EQ(std::get<FlowFinishedMsg>(at_half[0].payload).flow, 1);
  const auto rest = bus.deliver_due(10.0);
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(std::get<FlowFinishedMsg>(rest[0].payload).flow, 2);
  EXPECT_TRUE(bus.empty());
  EXPECT_EQ(bus.total_sent(), 2);
}

TEST(Bus, FifoAmongSimultaneousSends) {
  SimBus bus(0.0);
  for (int i = 0; i < 5; ++i) {
    bus.send(1.0, master_address(), FlowFinishedMsg{i, 0, 1.0});
  }
  const auto due = bus.deliver_due(1.0);
  ASSERT_EQ(due.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(std::get<FlowFinishedMsg>(due[i].payload).flow, i);
  }
}

TEST(Slave, EnforcesRatesAndReportsCompletion) {
  Slave slave(0, 0.1);
  slave.add_flow(Flow{7, 0, 0, 1, megabits(10.0)});
  // No rate yet → desired rate 0.
  ASSERT_EQ(slave.desired_rates().size(), 1u);
  EXPECT_DOUBLE_EQ(slave.desired_rates()[0].second, 0.0);

  RateUpdateMsg update;
  update.rates_bps.emplace_back(7, mbps(100.0));
  slave.on_rate_update(update);
  EXPECT_DOUBLE_EQ(slave.desired_rates()[0].second, mbps(100.0));

  EXPECT_FALSE(slave.commit_transfer(7, megabits(4.0)));
  EXPECT_DOUBLE_EQ(slave.remaining_bits(7), megabits(6.0));
  EXPECT_TRUE(slave.commit_transfer(7, megabits(6.0)));
  EXPECT_EQ(slave.live_flows(), 0);
}

TEST(Slave, IgnoresStaleRateUpdates) {
  Slave slave(0, 0.1);
  RateUpdateMsg update;
  update.rates_bps.emplace_back(99, mbps(5.0));  // unknown flow
  EXPECT_NO_THROW(slave.on_rate_update(update));
}

TEST(Slave, RejectsForeignFlows) {
  Slave slave(3, 0.1);
  EXPECT_THROW(slave.add_flow(Flow{0, 0, 1, 2, 100.0}), CheckError);
}

TEST(Slave, HeartbeatsAreRateLimited) {
  Slave slave(0, 1.0);
  slave.add_flow(Flow{1, 0, 0, 1, megabits(10.0)});
  SimBus bus(0.0);
  slave.maybe_heartbeat(0.0, bus);   // fires
  slave.maybe_heartbeat(0.5, bus);   // suppressed
  slave.maybe_heartbeat(1.0, bus);   // fires
  EXPECT_EQ(bus.total_sent(), 2);
}

TEST(Master, RegistrationMakesItDirtyAndAllocates) {
  const Fabric fabric(2, mbps(200.0));
  NcDrfScheduler ncdrf;
  Master master(fabric, ncdrf);
  EXPECT_FALSE(master.dirty());

  RegisterCoflowMsg reg;
  reg.coflow = 0;
  reg.arrival_time = 0.0;
  reg.flows.push_back(Flow{0, 0, 0, 1, 0.0});  // sizes withheld
  master.on_register(reg);
  EXPECT_TRUE(master.dirty());
  EXPECT_EQ(master.active_coflows(), 1);

  SimBus bus(0.0);
  master.reallocate(0.0, bus);
  EXPECT_FALSE(master.dirty());
  const auto due = bus.deliver_due(0.0);
  ASSERT_EQ(due.size(), 1u);  // one RateUpdate to slave 0
  EXPECT_FALSE(due[0].to.is_master);
  EXPECT_EQ(due[0].to.machine, 0);
  const auto& rates = std::get<RateUpdateMsg>(due[0].payload).rates_bps;
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_NEAR(rates[0].second, mbps(200.0), 1.0);  // whole link, alone
}

TEST(Master, FlowFinishRetiresCoflow) {
  const Fabric fabric(2, mbps(200.0));
  NcDrfScheduler ncdrf;
  Master master(fabric, ncdrf);
  RegisterCoflowMsg reg;
  reg.coflow = 0;
  reg.arrival_time = 0.0;
  reg.flows.push_back(Flow{0, 0, 0, 1, 0.0});
  reg.flows.push_back(Flow{1, 0, 1, 0, 0.0});
  master.on_register(reg);
  master.on_flow_finished(FlowFinishedMsg{0, 0, 1.0});
  EXPECT_EQ(master.active_coflows(), 1);
  master.on_flow_finished(FlowFinishedMsg{1, 0, 2.0});
  EXPECT_EQ(master.active_coflows(), 0);
}

TEST(Deployment, SingleFlowMatchesAnalyticCct) {
  // 200 Mbps link, 100 Mb flow → 0.5 s transfer; control latency and the
  // 10 ms ticks add a small constant overhead.
  const Fabric fabric(60, mbps(200.0));
  TraceBuilder builder(60);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 1, megabits(100.0));
  const Trace trace = builder.build();
  const auto ncdrf = make_scheduler("ncdrf");
  const DeploymentResult result = run_deployment(fabric, trace, *ncdrf);
  ASSERT_EQ(result.coflows.size(), 1u);
  EXPECT_GT(result.coflows[0].cct, 0.5 - 1e-9);   // physics lower bound
  EXPECT_LT(result.coflows[0].cct, 0.6);           // + bounded overhead
  EXPECT_GE(result.num_reallocations, 1);
}

TEST(Deployment, TracksFluidSimulatorOnFig3) {
  const Fabric fabric(2, gbps(1.0));
  const Trace trace = fig3_trace();
  for (const std::string name : {"ncdrf", "psp", "tcp", "drf"}) {
    const auto sched_sim = make_scheduler(name);
    const auto sched_dep = make_scheduler(name);
    const RunResult fluid = simulate(fabric, trace, *sched_sim);
    DeploymentOptions options;
    options.tick_s = 0.002;  // fine ticks for a sub-second workload
    options.control_latency_s = 0.001;
    const DeploymentResult dep =
        run_deployment(fabric, trace, *sched_dep, options);
    for (std::size_t k = 0; k < trace.coflows.size(); ++k) {
      EXPECT_NEAR(dep.coflows[k].cct, fluid.coflows[k].cct,
                  0.1 * fluid.coflows[k].cct + 0.05)
          << name << " coflow " << k;
    }
  }
}

TEST(Deployment, ProgressSamplesCoverAllCoflows) {
  const Fabric fabric(2, gbps(1.0));
  const auto ncdrf = make_scheduler("ncdrf");
  DeploymentOptions options;
  options.tick_s = 0.002;
  options.progress_sample_period_s = 0.01;
  const DeploymentResult result =
      run_deployment(fabric, fig3_trace(), *ncdrf, options);
  bool saw[2] = {false, false};
  for (const ProgressSample& s : result.progress) {
    ASSERT_GE(s.coflow, 0);
    ASSERT_LT(s.coflow, 2);
    saw[s.coflow] = true;
  }
  EXPECT_TRUE(saw[0]);
  EXPECT_TRUE(saw[1]);
}

TEST(Deployment, StaggeredArrivalsRespectArrivalTimes) {
  const Fabric fabric(2, gbps(1.0));
  TraceBuilder builder(2);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 1, megabits(100.0));
  builder.begin_coflow(2.0);
  builder.add_flow(0, 1, megabits(100.0));
  const Trace trace = builder.build();
  const auto ncdrf = make_scheduler("ncdrf");
  const DeploymentResult result = run_deployment(fabric, trace, *ncdrf);
  EXPECT_GE(result.coflows[1].completion, 2.0);
  EXPECT_LT(result.coflows[0].completion, 1.0);
}

TEST(Deployment, ClairvoyantSchedulersGetRegisteredSizes) {
  const Fabric fabric(2, gbps(1.0));
  for (const std::string name : {"drf", "hug", "varys"}) {
    const auto sched = make_scheduler(name);
    EXPECT_NO_THROW(run_deployment(fabric, fig3_trace(), *sched)) << name;
  }
}

}  // namespace
}  // namespace ncdrf
