// Integration & property tests across the whole stack: trace replays under
// every policy with allocation validation, cross-policy orderings the
// paper's evaluation relies on, and the Theorem 1 long-term isolation
// bound on instances satisfying its assumptions.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/rng.h"
#include "common/units.h"
#include "core/ncdrf.h"
#include "core/registry.h"
#include "metrics/eval.h"
#include "sched/drf.h"
#include "sim/sim.h"
#include "trace/synthetic_fb.h"

namespace ncdrf {
namespace {

// A small synthetic workload in the style of the FB benchmark.
Trace small_workload(std::uint64_t seed) {
  SyntheticFbOptions options;
  options.seed = seed;
  options.num_coflows = 40;
  options.num_racks = 20;
  options.duration_s = 60.0;
  options.max_flows_per_coflow = 80;
  return generate_synthetic_fb(options);
}

TEST(Integration, EveryPolicyCompletesEveryCoflowFeasibly) {
  const Fabric fabric(20, gbps(1.0));
  const Trace trace = small_workload(5);
  SimOptions options;
  options.validate_allocations = true;
  for (const std::string& name : scheduler_names()) {
    const auto sched = make_scheduler(name);
    const RunResult run = simulate(fabric, trace, *sched, options);
    EXPECT_NEAR(run.total_bits_delivered, trace.total_bits(),
                trace.total_bits() * 1e-6)
        << name;
    for (const CoflowRecord& rec : run.coflows) {
      EXPECT_GT(rec.cct, 0.0) << name;
      EXPECT_GE(rec.completion, rec.arrival) << name;
      EXPECT_GE(rec.cct, rec.min_cct - 1e-6) << name;
    }
  }
}

TEST(Integration, DrfDisparityIsOneOnTraceReplay) {
  const Fabric fabric(20, gbps(1.0));
  const Trace trace = small_workload(6);
  const auto drf = make_scheduler("drf");
  const RunResult run = simulate(fabric, trace, *drf);
  const WeightedCdf cdf = disparity_cdf(run);
  ASSERT_FALSE(cdf.empty());
  EXPECT_LT(cdf.quantile(1.0), 1.0 + 1e-6);
}

TEST(Integration, NcDrfBeatsPspOnDisparity) {
  // Fig. 5a's headline: NC-DRF keeps the coflow progress disparity
  // smaller than PS-P. The separation needs the evaluation workload's
  // contention structure (150 hotspot racks, wide coflows), so this test
  // replays a same-density slice of it: 150 coflows over 1000 s. Small
  // low-contention workloads do not discriminate (both policies backfill
  // to similar rates there).
  const Fabric fabric(150, gbps(1.0));
  double mean_nc = 0.0;
  double mean_psp = 0.0;
  for (const std::uint64_t seed : {7u, 11u, 13u}) {
    SyntheticFbOptions options;
    options.seed = seed;
    options.num_coflows = 150;
    options.num_racks = 150;
    options.duration_s = 1000.0;
    const Trace trace = generate_synthetic_fb(options);
    const auto ncdrf = make_scheduler("ncdrf");
    const auto psp = make_scheduler("psp");
    const WeightedCdf d_nc = disparity_cdf(simulate(fabric, trace, *ncdrf));
    const WeightedCdf d_psp = disparity_cdf(simulate(fabric, trace, *psp));
    ASSERT_FALSE(d_nc.empty());
    ASSERT_FALSE(d_psp.empty());
    mean_nc += d_nc.mean();
    mean_psp += d_psp.mean();
  }
  EXPECT_LT(mean_nc, mean_psp);
}

TEST(Integration, TcpTopsUtilization) {
  // Fig. 5b: per-flow fairness achieves the highest network utilization.
  const Fabric fabric(20, gbps(1.0));
  const Trace trace = small_workload(8);
  std::map<std::string, double> avg;
  for (const std::string name : {"tcp", "psp", "ncdrf", "drf"}) {
    const auto sched = make_scheduler(name);
    avg[name] = average_link_usage(simulate(fabric, trace, *sched));
  }
  EXPECT_GE(avg["tcp"], avg["psp"] - 1.0);
  EXPECT_GE(avg["tcp"], avg["ncdrf"] - 1.0);
  EXPECT_GE(avg["tcp"], avg["drf"] - 1.0);
}

TEST(Integration, NcDrfTracksDrfWithIdenticalFlowSizes) {
  // Offline instance whose coflows have identical intra-coflow flow sizes:
  // NC-DRF's CCTs equal DRF's for every coflow (e_max = 1 ⇒ Theorem 1 is
  // tight).
  const Fabric fabric(8, gbps(1.0));
  Rng rng(17);
  TraceBuilder builder(8);
  for (int c = 0; c < 12; ++c) {
    builder.begin_coflow(0.0);
    const double size = rng.uniform(megabits(40.0), megabits(400.0));
    const int flows = static_cast<int>(rng.uniform_int(1, 6));
    for (int f = 0; f < flows; ++f) {
      builder.add_flow(static_cast<MachineId>(rng.uniform_int(0, 7)),
                       static_cast<MachineId>(rng.uniform_int(0, 7)), size);
    }
  }
  const Trace trace = builder.build();
  NcDrfScheduler ncdrf(NcDrfOptions{.work_conserving = false});
  DrfScheduler drf;
  const RunResult run_nc = simulate(fabric, trace, ncdrf);
  const RunResult run_drf = simulate(fabric, trace, drf);
  for (std::size_t k = 0; k < trace.coflows.size(); ++k) {
    EXPECT_NEAR(run_nc.coflows[k].cct, run_drf.coflows[k].cct,
                run_drf.coflows[k].cct * 1e-6)
        << "coflow " << k;
  }
}

// ----------------------------------------------------------- Theorem 1

// Builds an offline instance satisfying the theorem's assumptions: every
// coflow has M_k uplinks and R_k < M_k downlinks, with identical flow
// sizes from all M_k uplinks into each downlink.
Trace theorem1_instance(std::uint64_t seed, int machines, int coflows,
                        double size_spread) {
  Rng rng(seed);
  TraceBuilder builder(machines);
  for (int c = 0; c < coflows; ++c) {
    builder.begin_coflow(0.0);
    const int m_k = static_cast<int>(rng.uniform_int(2, machines));
    const int r_k = static_cast<int>(rng.uniform_int(1, m_k - 1));
    const std::vector<int> ups = rng.sample_without_replacement(machines, m_k);
    const std::vector<int> downs =
        rng.sample_without_replacement(machines, r_k);
    const double base = rng.uniform(megabits(20.0), megabits(200.0));
    for (const int down : downs) {
      // d_k^{1j} = d_k^{2j} = … : same size from every uplink.
      const double size = base * rng.uniform(1.0, size_spread);
      for (const int up : ups) {
        builder.add_flow(up, down, size);
      }
    }
  }
  return builder.build();
}

double max_disparity(const Fabric& fabric, const Trace& trace) {
  double e_max = 1.0;
  for (const Coflow& coflow : trace.coflows) {
    e_max = std::max(e_max, coflow.demand(fabric).disparity());
  }
  return e_max;
}

class Theorem1Property : public ::testing::TestWithParam<int> {};

TEST_P(Theorem1Property, NcDrfCctWithinEmaxOfDrf) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Fabric fabric(6, gbps(1.0));
  const Trace trace = theorem1_instance(seed, 6, 8, /*size_spread=*/3.0);
  const double e_max = max_disparity(fabric, trace);

  NcDrfScheduler ncdrf;  // Algorithm 1 incl. backfilling
  DrfScheduler drf;
  const RunResult run_nc = simulate(fabric, trace, ncdrf);
  const RunResult run_drf = simulate(fabric, trace, drf);
  for (std::size_t k = 0; k < trace.coflows.size(); ++k) {
    EXPECT_LE(run_nc.coflows[k].cct,
              e_max * run_drf.coflows[k].cct * (1.0 + 1e-6))
        << "coflow " << k << " violates F_k <= e_max * F_k^D (e_max = "
        << e_max << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem1Property, ::testing::Range(0, 30));

TEST(Integration, AaloTailIsWorseThanNcDrfTail) {
  // Fig. 6a's observation: Aalo (D-CLAS) speeds small coflows but provides
  // no isolation — its worst-case normalized CCT (vs DRF) is far larger
  // than NC-DRF's on a trace replay.
  const Fabric fabric(20, gbps(1.0));
  const Trace trace = small_workload(9);
  const auto drf = make_scheduler("drf");
  const auto aalo = make_scheduler("aalo");
  const auto ncdrf = make_scheduler("ncdrf");
  const RunResult run_drf = simulate(fabric, trace, *drf);
  const std::vector<double> norm_aalo =
      normalized_ccts(simulate(fabric, trace, *aalo), run_drf);
  const std::vector<double> norm_nc =
      normalized_ccts(simulate(fabric, trace, *ncdrf), run_drf);
  const double max_aalo =
      *std::max_element(norm_aalo.begin(), norm_aalo.end());
  const double max_nc = *std::max_element(norm_nc.begin(), norm_nc.end());
  EXPECT_GT(max_aalo, max_nc);
}

}  // namespace
}  // namespace ncdrf
