// Deterministic virtual-time tests of the online serving front-end
// (src/serve/): load-generator contracts, per-client FIFO under batched
// admission, epoch=1 equivalence against both a per-arrival master and the
// event-driven simulator, backpressure watermarks, the bounded-staleness
// push budget, and byte-identical metrics across repeated runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/units.h"
#include "core/registry.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "serve/loadgen.h"
#include "serve/server.h"
#include "sim/engine.h"

namespace ncdrf {
namespace {

using serve::Backpressure;
using serve::LoadGenerator;
using serve::LoadGenOptions;
using serve::ServeFront;
using serve::ServeOptions;
using serve::Submission;

// Wraps a policy and records every allocate() call as (now, flow → rate)
// over the snapshot's active flows — *pre-clamp*, so recordings from the
// serving master and the simulator engine compare like with like.
class RecordingScheduler : public Scheduler {
 public:
  explicit RecordingScheduler(std::unique_ptr<Scheduler> inner)
      : inner_(std::move(inner)) {}

  std::string name() const override { return inner_->name(); }
  bool clairvoyant() const override { return inner_->clairvoyant(); }
  Allocation allocate(const ScheduleInput& input) override {
    Allocation alloc = inner_->allocate(input);
    auto& rates = records_[input.now];  // last allocation at an instant wins
    rates.clear();
    for (const ActiveCoflow& coflow : input.coflows) {
      for (const ActiveFlow& f : coflow.flows) {
        rates[f.id] = alloc.rate(f.id);
      }
    }
    return alloc;
  }
  std::optional<double> next_internal_event(
      const ScheduleInput& input, const Allocation& current) const override {
    return inner_->next_internal_event(input, current);
  }
  bool wants_events() const override { return inner_->wants_events(); }
  void on_reset(const Fabric& fabric) override { inner_->on_reset(fabric); }
  void on_coflow_arrival(const ActiveCoflow& coflow) override {
    inner_->on_coflow_arrival(coflow);
  }
  void on_flow_finish(const ActiveFlow& flow) override {
    inner_->on_flow_finish(flow);
  }
  void on_coflow_departure(CoflowId id) override {
    inner_->on_coflow_departure(id);
  }

  // Keyed by snapshot time; one record per distinct allocate() instant.
  const std::map<double, std::map<FlowId, double>>& records() const {
    return records_;
  }

 private:
  std::unique_ptr<Scheduler> inner_;
  std::map<double, std::map<FlowId, double>> records_;
};

Submission make_submission(CoflowId coflow, int client, double t,
                           std::vector<Flow> flows, double lifetime = 0.0) {
  Submission s;
  s.coflow = coflow;
  s.client = client;
  s.submit_time = t;
  s.lifetime_s = lifetime;
  for (Flow& f : flows) f.coflow = coflow;
  s.flows = std::move(flows);
  return s;
}

// ---------------------------------------------------------------------
// LoadGenerator contracts.
// ---------------------------------------------------------------------

TEST(LoadGenerator, DeterministicDenseIdsMatchingTrace) {
  LoadGenOptions options;
  options.seed = 42;
  options.num_clients = 3;
  options.num_machines = 10;
  options.arrival_rate_per_s = 300.0;
  options.duration_s = 0.2;
  options.burst_factor = 4.0;
  options.burst_duty = 0.25;
  options.burst_period_s = 0.05;
  const LoadGenerator gen(options);

  const auto schedule = gen.generate();
  ASSERT_EQ(schedule.size(), 3u);
  // Same options → identical schedules (open-loop determinism).
  const auto again = gen.generate();
  int total = 0;
  std::set<CoflowId> coflow_ids;
  std::set<FlowId> flow_ids;
  for (std::size_t c = 0; c < schedule.size(); ++c) {
    ASSERT_EQ(schedule[c].size(), again[c].size());
    double prev = -1.0;
    for (std::size_t i = 0; i < schedule[c].size(); ++i) {
      const Submission& s = schedule[c][i];
      EXPECT_EQ(s.coflow, again[c][i].coflow);
      EXPECT_EQ(s.submit_time, again[c][i].submit_time);
      EXPECT_EQ(s.client, static_cast<int>(c));
      EXPECT_GE(s.submit_time, prev);  // per-client schedules time-sorted
      prev = s.submit_time;
      EXPECT_TRUE(coflow_ids.insert(s.coflow).second);
      ASSERT_FALSE(s.flows.empty());
      for (const Flow& f : s.flows) {
        EXPECT_TRUE(flow_ids.insert(f.id).second);
        EXPECT_EQ(f.coflow, s.coflow);
        EXPECT_NE(f.src, f.dst);
        EXPECT_GT(f.size_bits, 0.0);
      }
      ++total;
    }
  }
  ASSERT_GT(total, 10);
  // Dense global id spaces.
  EXPECT_EQ(*coflow_ids.rbegin(), total - 1);
  EXPECT_EQ(static_cast<int>(flow_ids.size()),
            static_cast<int>(*flow_ids.rbegin()) + 1);

  // as_trace() is the identical workload under the same ids.
  const Trace trace = gen.as_trace();
  ASSERT_EQ(static_cast<int>(trace.coflows.size()), total);
  EXPECT_EQ(trace.num_machines, options.num_machines);
  for (const auto& client_schedule : schedule) {
    for (const Submission& s : client_schedule) {
      const Coflow& coflow = trace.coflows[static_cast<std::size_t>(s.coflow)];
      ASSERT_EQ(coflow.id(), s.coflow);
      EXPECT_EQ(coflow.arrival_time(), s.submit_time);
      ASSERT_EQ(coflow.flows().size(), s.flows.size());
      for (std::size_t i = 0; i < s.flows.size(); ++i) {
        EXPECT_EQ(coflow.flows()[i].id, s.flows[i].id);
        EXPECT_EQ(coflow.flows()[i].src, s.flows[i].src);
        EXPECT_EQ(coflow.flows()[i].dst, s.flows[i].dst);
        EXPECT_EQ(coflow.flows()[i].size_bits, s.flows[i].size_bits);
      }
    }
  }
}

// ---------------------------------------------------------------------
// Batched admission preserves per-client FIFO order.
// ---------------------------------------------------------------------

TEST(ServeFront, PerClientFifoPreservedUnderBatching) {
  const Fabric fabric(4, gbps(1.0));
  const auto sched = make_scheduler("tcp");
  ServeOptions options;
  options.epoch_s = 1e-3;
  options.max_batch_per_epoch = 3;
  ServeFront front(fabric, *sched, /*num_clients=*/2, options);

  // Client 0 queues coflows 0,2,4,6; client 1 queues 1,3,5,7 — all before
  // the first epoch, so admission batches across epochs.
  FlowId next_flow = 0;
  for (int i = 0; i < 8; ++i) {
    const int client = i % 2;
    ASSERT_TRUE(front.queue(client).try_enqueue(make_submission(
        i, client, 0.0,
        {Flow{next_flow++, -1, static_cast<MachineId>(client), 2, 1e9}})));
  }

  std::vector<serve::AdmitRecord> admitted;
  front.admit_hook = [&](const serve::AdmitRecord& r) {
    admitted.push_back(r);
  };
  for (int epoch = 0; epoch < 4; ++epoch) {
    front.step_epoch(epoch * options.epoch_s);
  }
  ASSERT_EQ(admitted.size(), 8u);
  // The batch cap holds: 3, 3, 2 admissions over the first three epochs.
  EXPECT_EQ(admitted[2].admit_time, 0.0);
  EXPECT_GT(admitted[3].admit_time, 0.0);
  // Per-client admission order equals per-client enqueue order.
  std::map<int, std::vector<CoflowId>> per_client;
  for (const serve::AdmitRecord& r : admitted) {
    per_client[r.client].push_back(r.coflow);
  }
  EXPECT_EQ(per_client[0], (std::vector<CoflowId>{0, 2, 4, 6}));
  EXPECT_EQ(per_client[1], (std::vector<CoflowId>{1, 3, 5, 7}));
  EXPECT_EQ(front.admitted(), 8);
  EXPECT_EQ(front.backlog(), 0u);
}

// ---------------------------------------------------------------------
// Epoch=1 serving ≡ per-arrival reallocation, for every registry policy.
// ---------------------------------------------------------------------

std::vector<std::string> equivalence_policies() {
  std::vector<std::string> names = scheduler_names();
  names.push_back("drf@4");  // the sharded path serves identically too
  names.push_back("tcp@4");
  return names;
}

TEST(ServeFront, EpochOneMatchesPerArrivalMaster) {
  const int machines = 8;
  const Fabric fabric(machines, gbps(1.0));
  for (const std::string& name : equivalence_policies()) {
    const auto serve_sched = make_scheduler(name);
    const auto ref_sched = make_scheduler(name);

    LoadGenOptions load;
    load.seed = 7;
    load.num_clients = 1;
    load.num_machines = machines;
    load.arrival_rate_per_s = 120.0;
    load.duration_s = 0.15;
    load.mean_lifetime_s = 0.0;  // nothing departs mid-comparison
    load.sizes_known = serve_sched->clairvoyant();
    const auto schedule = LoadGenerator(load).generate();
    ASSERT_GT(schedule[0].size(), 5u) << name;

    ServeOptions options;
    options.epoch_s = 1e-4;
    ServeFront front(fabric, *serve_sched, 1, options);
    Master ref_master(fabric, *ref_sched);
    Allocation ref_alloc;
    std::vector<SlaveRates> ref_slaves;

    for (const Submission& s : schedule[0]) {
      // Serving path: one admission per epoch, stepped at the arrival.
      ASSERT_TRUE(front.queue(0).try_enqueue(s));
      front.step_epoch(s.submit_time);

      // Reference path: the deployment-style per-arrival reallocation.
      RegisterCoflowMsg msg;
      msg.coflow = s.coflow;
      msg.arrival_time = s.submit_time;
      msg.weight = s.weight;
      msg.tenant = s.client;  // match the serving path's attribution
      msg.sizes_known = s.sizes_known;
      msg.flows = s.flows;
      if (!s.sizes_known) {
        for (Flow& f : msg.flows) f.size_bits = 0.0;
      }
      ref_master.on_register(msg);
      const ScheduleInput& ref_view =
          ref_master.compute_allocation(s.submit_time, ref_alloc, ref_slaves);

      const Allocation& got = front.last_allocation();
      for (const ActiveCoflow& coflow : ref_view.coflows) {
        for (const ActiveFlow& f : coflow.flows) {
          const double want = ref_alloc.rate(f.id);
          EXPECT_NEAR(got.rate(f.id), want,
                      1e-9 * std::max(1.0, std::abs(want)))
              << name << " flow " << f.id << " at t=" << s.submit_time;
        }
      }
    }
    EXPECT_EQ(front.admitted(),
              static_cast<long long>(schedule[0].size()))
        << name;
  }
}

// ---------------------------------------------------------------------
// Epoch=1 serving ≡ the simulator-driven path, 50 seeded instances.
//
// The simulator advances attained service continuously, which the serving
// master (heartbeat-free here) cannot see — so exact equivalence is only
// defined for attained-independent policies, compared over an arrival span
// during which no flow completes (sizes are enormous). Each seed runs one
// policy from the rotation.
// ---------------------------------------------------------------------

class ServeSimEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ServeSimEquivalence, EpochOneMatchesSimulatorAllocations) {
  const int seed = GetParam();
  static const std::vector<std::string> kAttainedIndependent = {
      "tcp", "psp", "ncdrf", "persource", "perpair", "fifo"};
  const std::string name =
      kAttainedIndependent[static_cast<std::size_t>(seed) %
                           kAttainedIndependent.size()];
  const int machines = 8;
  const Fabric fabric(machines, gbps(1.0));

  LoadGenOptions load;
  load.seed = static_cast<std::uint64_t>(seed) + 11'000;
  load.num_clients = 1;
  load.num_machines = machines;
  load.arrival_rate_per_s = 150.0;
  load.duration_s = 0.1;
  load.mean_flow_bits = 1e15;  // no completion during the arrival span
  load.flow_size_sigma = 0.0;
  load.mean_lifetime_s = 0.0;
  const LoadGenerator gen(load);
  const auto schedule = gen.generate();
  ASSERT_FALSE(schedule[0].empty());
  const double span = schedule[0].back().submit_time;

  // Simulator path.
  RecordingScheduler sim_sched(make_scheduler(name));
  DynamicSimulator sim(fabric, sim_sched);
  for (const Coflow& coflow : gen.as_trace().coflows) sim.submit(coflow);
  sim.run();

  // Serving path, one admission per epoch at the arrival instants.
  RecordingScheduler serve_sched(make_scheduler(name));
  ServeOptions options;
  options.epoch_s = 1e-4;
  ServeFront front(fabric, serve_sched, 1, options);
  for (const Submission& s : schedule[0]) {
    ASSERT_TRUE(front.queue(0).try_enqueue(s));
    front.step_epoch(s.submit_time);
  }

  // Compare the recorded allocation at every arrival instant.
  ASSERT_EQ(serve_sched.records().size(), schedule[0].size()) << name;
  for (const auto& [t, serve_rates] : serve_sched.records()) {
    ASSERT_LE(t, span);
    const auto it = sim_sched.records().find(t);
    ASSERT_NE(it, sim_sched.records().end())
        << name << " seed " << seed << ": simulator never allocated at t="
        << t;
    const auto& sim_rates = it->second;
    ASSERT_EQ(serve_rates.size(), sim_rates.size()) << name << " t=" << t;
    for (const auto& [flow, rate] : serve_rates) {
      const auto rit = sim_rates.find(flow);
      ASSERT_NE(rit, sim_rates.end()) << name << " flow " << flow;
      EXPECT_NEAR(rate, rit->second,
                  1e-9 * std::max(1.0, std::abs(rit->second)))
          << name << " seed " << seed << " flow " << flow << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServeSimEquivalence, ::testing::Range(0, 50));

// ---------------------------------------------------------------------
// Backpressure: bounded queues reject, watermarks shed and publish levels.
// ---------------------------------------------------------------------

TEST(ServeFront, BackpressureRejectsShedsAndPublishesLevels) {
  const Fabric fabric(4, gbps(1.0));
  const auto sched = make_scheduler("tcp");
  ServeOptions options;
  options.epoch_s = 1e-3;
  options.max_batch_per_epoch = 1;
  options.queue_capacity = 8;
  options.slowdown_watermark = 4;
  options.shed_watermark = 6;
  ServeFront front(fabric, *sched, /*num_clients=*/2, options);

  // Client 0 floods: 12 enqueue attempts against capacity 8 → 4 rejects.
  FlowId next_flow = 0;
  CoflowId next_coflow = 0;
  for (int i = 0; i < 12; ++i) {
    const bool ok = front.queue(0).try_enqueue(make_submission(
        next_coflow++, 0, 0.0, {Flow{next_flow++, -1, 0, 2, 1e9}}));
    EXPECT_EQ(ok, i < 8);
  }
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(front.queue(1).try_enqueue(make_submission(
        next_coflow++, 1, 0.0, {Flow{next_flow++, -1, 1, 3, 1e9}})));
  }
  EXPECT_EQ(front.total_rejected(), 4);
  EXPECT_EQ(front.backlog(), 13u);

  // Epoch 1: one admission, then the shed stage drops the backlog to the
  // shed watermark (6), round-robin across clients, and the published
  // level is kShed (backlog at the watermark).
  front.step_epoch(0.0);
  EXPECT_EQ(front.admitted(), 1);
  EXPECT_EQ(front.total_shed(), 6);
  EXPECT_EQ(front.backlog(), 6u);
  EXPECT_EQ(front.level(), Backpressure::kShed);
  EXPECT_EQ(front.queue(0).level(), Backpressure::kShed);
  EXPECT_EQ(front.queue(1).level(), Backpressure::kShed);

  // Draining: the level steps down through kSlowdown to kOk, with no
  // further shedding below the watermark.
  front.step_epoch(1e-3);
  EXPECT_EQ(front.backlog(), 5u);
  EXPECT_EQ(front.level(), Backpressure::kSlowdown);
  front.step_epoch(2e-3);
  EXPECT_EQ(front.level(), Backpressure::kSlowdown);
  front.step_epoch(3e-3);
  EXPECT_EQ(front.backlog(), 3u);
  EXPECT_EQ(front.level(), Backpressure::kOk);
  for (int k = 4; k < 8; ++k) front.step_epoch(k * 1e-3);
  EXPECT_EQ(front.backlog(), 0u);
  EXPECT_EQ(front.total_shed(), 6);
  // Conservation: accepted == admitted + shed once drained.
  EXPECT_EQ(front.admitted() + front.total_shed(), 13);
}

// ---------------------------------------------------------------------
// Bounded-staleness pushes.
// ---------------------------------------------------------------------

// One coflow from machines 1..4 into machine 0, then single-flow coflows
// from fresh machines into machine 0: every arrival changes the incumbent
// flows' rates (magnitude-only divergence on machines 1..4) while the new
// machine's first vector is structural.
TEST(ServeFront, StalenessBudgetBoundsDeferredPushes) {
  const Fabric fabric(10, gbps(1.0));
  const auto sched = make_scheduler("tcp");
  ServeOptions options;
  options.epoch_s = 1e-3;
  options.staleness_s = 4.5e-3;
  ServeFront front(fabric, *sched, 1, options);

  FlowId next_flow = 0;
  std::vector<Flow> base;
  for (MachineId m = 1; m <= 4; ++m) {
    base.push_back(Flow{next_flow++, -1, m, 0, 1e9});
  }
  ASSERT_TRUE(front.queue(0).try_enqueue(
      make_submission(0, 0, 0.0, std::move(base))));

  CoflowId next_coflow = 1;
  for (int epoch = 0; epoch <= 40; ++epoch) {
    const double now = epoch * options.epoch_s;
    if (epoch > 0 && epoch % 5 == 0 && next_coflow <= 5) {
      const MachineId src = static_cast<MachineId>(4 + next_coflow);
      ASSERT_TRUE(front.queue(0).try_enqueue(make_submission(
          next_coflow++, 0, now, {Flow{next_flow++, -1, src, 0, 1e9}})));
    }
    front.step_epoch(now);
  }

  // Deferral happened (incumbent machines were not pushed at the arrival
  // epoch), but no push was ever staler than the budget.
  EXPECT_GT(front.pushes_deferred(), 0);
  EXPECT_GT(front.max_push_staleness(), 0.0);
  EXPECT_LE(front.max_push_staleness(), options.staleness_s + 1e-12);
  EXPECT_GT(front.rate_pushes(), 0);
}

TEST(ServeFront, ZeroStalenessPushesEveryDivergenceImmediately) {
  const Fabric fabric(10, gbps(1.0));
  const auto sched = make_scheduler("tcp");
  ServeOptions options;
  options.epoch_s = 1e-3;
  options.staleness_s = 0.0;  // the Master::reallocate behaviour
  ServeFront front(fabric, *sched, 1, options);

  FlowId next_flow = 0;
  std::vector<Flow> base;
  for (MachineId m = 1; m <= 4; ++m) {
    base.push_back(Flow{next_flow++, -1, m, 0, 1e9});
  }
  ASSERT_TRUE(front.queue(0).try_enqueue(
      make_submission(0, 0, 0.0, std::move(base))));
  CoflowId next_coflow = 1;
  for (int epoch = 0; epoch <= 20; ++epoch) {
    const double now = epoch * options.epoch_s;
    if (epoch > 0 && epoch % 5 == 0 && next_coflow <= 4) {
      const MachineId src = static_cast<MachineId>(4 + next_coflow);
      ASSERT_TRUE(front.queue(0).try_enqueue(make_submission(
          next_coflow++, 0, now, {Flow{next_flow++, -1, src, 0, 1e9}})));
    }
    front.step_epoch(now);
  }
  EXPECT_EQ(front.pushes_deferred(), 0);
  EXPECT_EQ(front.max_push_staleness(), 0.0);
}

// ---------------------------------------------------------------------
// Modeled departures retire coflows through the master.
// ---------------------------------------------------------------------

TEST(ServeFront, DeparturesRetireAdmittedCoflows) {
  const Fabric fabric(4, gbps(1.0));
  const auto sched = make_scheduler("tcp");
  ServeOptions options;
  options.epoch_s = 1e-3;
  ServeFront front(fabric, *sched, 1, options);
  ASSERT_TRUE(front.queue(0).try_enqueue(make_submission(
      0, 0, 0.0, {Flow{0, -1, 0, 1, 1e9}}, /*lifetime=*/2.5e-3)));
  ASSERT_TRUE(front.queue(0).try_enqueue(make_submission(
      1, 0, 0.0, {Flow{1, -1, 1, 2, 1e9}}, /*lifetime=*/7.5e-3)));
  front.step_epoch(0.0);
  EXPECT_EQ(front.master().active_coflows(), 2);
  front.step_epoch(3e-3);  // past coflow 0's dwell
  EXPECT_EQ(front.master().active_coflows(), 1);
  front.step_epoch(8e-3);  // past coflow 1's dwell
  EXPECT_EQ(front.master().active_coflows(), 0);
}

// ---------------------------------------------------------------------
// Determinism: byte-identical metrics (and trace) JSON across runs, for
// 2 seeds × {1, 4} clients, including a sharded (threaded) kernel.
// ---------------------------------------------------------------------

std::pair<std::string, std::string> run_serving_observed(
    const std::string& policy, std::uint64_t seed, int clients) {
  const int machines = 10;
  const Fabric fabric(machines, gbps(1.0));
  const auto sched = make_scheduler(policy);

  LoadGenOptions load;
  load.seed = seed;
  load.num_clients = clients;
  load.num_machines = machines;
  load.arrival_rate_per_s = 600.0;
  load.duration_s = 0.1;
  load.mean_lifetime_s = 0.01;
  load.burst_factor = 3.0;
  load.burst_duty = 0.3;
  load.burst_period_s = 0.02;
  load.sizes_known = sched->clairvoyant();
  const auto schedule = LoadGenerator(load).generate();

  obs::MetricsRegistry metrics;
  obs::Tracer tracer(1 << 14, obs::Tracer::ClockMode::kVirtual);
  ServeOptions options;
  options.epoch_s = 2e-3;
  options.max_batch_per_epoch = 8;
  options.staleness_s = 6e-3;
  options.push_threshold = 0.05;
  options.metrics = &metrics;
  options.tracer = &tracer;
  ServeFront front(fabric, *sched, clients, options);
  front.run(schedule);

  std::ostringstream metrics_json;
  metrics.write_json(metrics_json);
  std::ostringstream trace_json;
  tracer.write_chrome_json(trace_json);
  return {metrics_json.str(), trace_json.str()};
}

TEST(ServeFront, MetricsAndTraceBytesDeterministic) {
  for (const std::string& policy : {std::string("ncdrf"),
                                    std::string("drf@2")}) {
    for (const std::uint64_t seed : {1ULL, 2ULL}) {
      for (const int clients : {1, 4}) {
        const auto first = run_serving_observed(policy, seed, clients);
        const auto second = run_serving_observed(policy, seed, clients);
        EXPECT_EQ(first.first, second.first)
            << policy << " seed " << seed << " clients " << clients
            << ": metrics JSON not byte-identical";
        EXPECT_EQ(first.second, second.second)
            << policy << " seed " << seed << " clients " << clients
            << ": trace JSON not byte-identical";
        EXPECT_NE(first.first.find("serve.admit_latency_s"),
                  std::string::npos);
      }
    }
  }
}

}  // namespace
}  // namespace ncdrf
