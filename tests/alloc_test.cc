// Unit tests for the allocation-kernel layer (src/alloc/): persistent
// link-load state, the saturation-heap water-filling kernel, the memoized
// demand cache, and the KernelScheduler sync machinery. The breadth
// legacy-vs-kernel equivalence lives in alloc_golden_test.cc; this file
// covers the layer's own invariants and the edge cases (zero available
// capacity, empty snapshots, extreme weights).
#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "alloc/demand_cache.h"
#include "alloc/legacy.h"
#include "alloc/link_state.h"
#include "alloc/waterfill.h"
#include "coflow/coflow.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/units.h"
#include "core/registry.h"
#include "obs/perf.h"
#include "sched/psp.h"
#include "test_util.h"

namespace ncdrf {
namespace {

using testing::Snapshot;

// Small random snapshot over its own storage; flow ids dense from 0.
struct RandomInstance {
  Fabric fabric;
  ScheduleInput input;
  std::vector<double> remaining;
  std::unique_ptr<ClairvoyantInfo> info;

  explicit RandomInstance(Rng& rng, bool clairvoyant = false)
      : fabric(make_fabric(rng)) {
    input.fabric = &fabric;
    const int num_coflows = static_cast<int>(rng.uniform_int(1, 6));
    FlowId next_flow = 0;
    for (int k = 0; k < num_coflows; ++k) {
      ActiveCoflow view;
      view.id = k;
      view.arrival_time = rng.uniform(0.0, 10.0);
      view.weight = rng.bernoulli(0.3) ? rng.uniform(0.5, 2.0) : 1.0;
      view.attained_bits = rng.uniform(0.0, 1e9);
      const int flows = static_cast<int>(rng.uniform_int(1, 8));
      for (int f = 0; f < flows; ++f) {
        const auto src = static_cast<MachineId>(
            rng.uniform_int(0, fabric.num_machines() - 1));
        const auto dst = static_cast<MachineId>(
            rng.uniform_int(0, fabric.num_machines() - 1));
        view.flows.push_back(ActiveFlow{next_flow, view.id, src, dst});
        remaining.push_back(rng.bernoulli(0.1) ? 0.0
                                               : rng.uniform(1e6, 1e9));
        ++next_flow;
      }
      input.coflows.push_back(std::move(view));
    }
    if (clairvoyant) {
      info = std::make_unique<ClairvoyantInfo>(&remaining);
      input.clairvoyant = info.get();
    }
  }

  static Fabric make_fabric(Rng& rng) {
    const int m = static_cast<int>(rng.uniform_int(2, 6));
    if (rng.bernoulli(0.5)) return Fabric(m, gbps(1.0));
    std::vector<double> caps;
    for (int i = 0; i < 2 * m; ++i) {
      caps.push_back(rng.uniform(0.2, 2.0) * gbps(1.0));
    }
    return Fabric(std::move(caps));
  }
};

std::vector<WaterfillFlow> snapshot_flows(const ScheduleInput& input,
                                          double weight = 1.0) {
  std::vector<WaterfillFlow> flows;
  for (const ActiveCoflow& coflow : input.coflows) {
    for (const ActiveFlow& f : coflow.flows) {
      flows.push_back({f.id, f.src, f.dst, weight});
    }
  }
  return flows;
}

std::vector<double> full_capacities(const Fabric& fabric) {
  std::vector<double> caps(static_cast<std::size_t>(fabric.num_links()));
  for (LinkId i = 0; i < fabric.num_links(); ++i) {
    caps[static_cast<std::size_t>(i)] = fabric.capacity(i);
  }
  return caps;
}

// --- LinkLoadState --------------------------------------------------------

TEST(LinkLoadStateTest, DeltasMatchRebuildLiveAndStale) {
  for (const bool stale : {false, true}) {
    Rng rng(stale ? 11u : 7u);
    for (int iter = 0; iter < 50; ++iter) {
      RandomInstance inst(rng);
      LinkLoadState state(stale);
      state.reset(inst.fabric);
      ScheduleInput current;
      current.fabric = &inst.fabric;

      for (ActiveCoflow view : inst.input.coflows) {
        state.add_coflow(view);
        current.coflows.push_back(std::move(view));
        state.check_consistent(current);
      }
      // Finish flows one by one; depart emptied coflows.
      while (!current.coflows.empty()) {
        const auto k = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(current.coflows.size()) - 1));
        ActiveCoflow& view = current.coflows[k];
        const auto f = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(view.flows.size()) - 1));
        const ActiveFlow finished = view.flows[f];
        view.flows[f] = view.flows.back();
        view.flows.pop_back();
        view.finished_flows.push_back(finished);
        state.finish_flow(finished);
        if (view.flows.empty()) {
          state.remove_coflow(view.id);
          current.coflows[k] = std::move(current.coflows.back());
          current.coflows.pop_back();
        }
        state.check_consistent(current);
      }
      EXPECT_EQ(state.num_coflows(), 0u);
    }
  }
}

TEST(LinkLoadStateTest, MatchesDetectsDivergence) {
  Rng rng(3);
  RandomInstance inst(rng);
  LinkLoadState state(/*count_finished_flows=*/false);
  state.rebuild(inst.input);
  EXPECT_TRUE(state.matches(inst.input));

  ScheduleInput mutated = inst.input;
  mutated.coflows[0].weight += 0.5;
  EXPECT_FALSE(state.matches(mutated));

  mutated = inst.input;
  mutated.coflows.pop_back();
  EXPECT_FALSE(state.matches(mutated));

  mutated = inst.input;
  const ActiveFlow moved = mutated.coflows[0].flows.back();
  mutated.coflows[0].flows.pop_back();
  mutated.coflows[0].finished_flows.push_back(moved);
  EXPECT_FALSE(state.matches(mutated));
}

TEST(LinkLoadStateTest, StaleCountingKeepsFinishedFlowsCounted) {
  Fabric fabric(2, gbps(1.0));
  LinkLoadState state(/*count_finished_flows=*/true);
  state.reset(fabric);
  ActiveCoflow view;
  view.id = 0;
  view.flows = {ActiveFlow{0, 0, 0, 1}, ActiveFlow{1, 0, 1, 0}};
  state.add_coflow(view);
  state.finish_flow(view.flows[0]);
  const LinkLoadState::CoflowLoad* load = state.find(0);
  ASSERT_NE(load, nullptr);
  EXPECT_EQ(load->live_flows, 1);
  EXPECT_EQ(load->counted_flows, 2);
  EXPECT_EQ(load->counted[static_cast<std::size_t>(fabric.uplink(0))], 1);
  EXPECT_EQ(load->live[static_cast<std::size_t>(fabric.uplink(0))], 0);
  // The link the finished flow used still counts the coflow as present.
  EXPECT_EQ(state.counted_coflows_on_link()[static_cast<std::size_t>(
                fabric.uplink(0))],
            1);
  EXPECT_EQ(state.live_link_counts()[static_cast<std::size_t>(
                fabric.uplink(0))],
            0);
}

// --- WaterfillKernel ------------------------------------------------------

TEST(WaterfillTest, MatchesLegacyPerFlowFairness) {
  Rng rng(17);
  for (int iter = 0; iter < 100; ++iter) {
    RandomInstance inst(rng);
    WaterfillKernel kernel;
    std::vector<WaterfillFlow> flows = snapshot_flows(inst.input);
    std::vector<double> rates;
    kernel.solve(inst.fabric, flows, full_capacities(inst.fabric), rates);

    const Allocation legacy = legacy_allocate("tcp", inst.input);
    for (std::size_t i = 0; i < flows.size(); ++i) {
      const double tol =
          1e-9 * std::max({1.0, gbps(2.0), rates[i],
                           legacy.rate(flows[i].id)});
      EXPECT_NEAR(rates[i], legacy.rate(flows[i].id), tol)
          << "iter " << iter << " flow " << flows[i].id;
    }
  }
}

TEST(WaterfillTest, ZeroAvailableCapacityYieldsZeroRates) {
  Rng rng(23);
  RandomInstance inst(rng);
  WaterfillKernel kernel;
  std::vector<WaterfillFlow> flows = snapshot_flows(inst.input);
  std::vector<double> avail(
      static_cast<std::size_t>(inst.fabric.num_links()), 0.0);
  std::vector<double> rates;
  kernel.solve(inst.fabric, flows, avail, rates);
  ASSERT_EQ(rates.size(), flows.size());
  for (const double r : rates) EXPECT_EQ(r, 0.0);
}

TEST(WaterfillTest, PartiallyZeroCapacityFreezesOnlyBlockedFlows) {
  // Machine 0's uplink has no spare; flows from machine 1 still run.
  Fabric fabric(2, gbps(1.0));
  std::vector<WaterfillFlow> flows = {
      {0, 0, 1, 1.0},  // blocked: uplink 0 has zero available
      {1, 1, 0, 1.0},
  };
  std::vector<double> avail = full_capacities(fabric);
  avail[static_cast<std::size_t>(fabric.uplink(0))] = 0.0;
  WaterfillKernel kernel;
  std::vector<double> rates;
  kernel.solve(fabric, flows, avail, rates);
  EXPECT_EQ(rates[0], 0.0);
  EXPECT_NEAR(rates[1], gbps(1.0), 1.0);
}

TEST(WaterfillTest, EmptyFlowListIsFine) {
  Fabric fabric(3, gbps(1.0));
  WaterfillKernel kernel;
  std::vector<double> rates;
  kernel.solve(fabric, {}, full_capacities(fabric), rates);
  EXPECT_TRUE(rates.empty());
}

TEST(WaterfillTest, ExtremeWeightsStayFeasibleAndProportional) {
  Fabric fabric(2, gbps(1.0));
  // Two flows sharing uplink 0: weights 1e6 vs 1e-6.
  std::vector<WaterfillFlow> flows = {
      {0, 0, 0, 1e6},
      {1, 0, 1, 1e-6},
  };
  WaterfillKernel kernel;
  std::vector<double> rates;
  kernel.solve(fabric, flows, full_capacities(fabric), rates);
  EXPECT_GT(rates[0], 0.0);
  EXPECT_GE(rates[1], 0.0);
  EXPECT_LE(rates[0] + rates[1], gbps(1.0) * (1.0 + 1e-9));
  // Shared-bottleneck shares split by weight: flow 0 takes ~everything.
  EXPECT_NEAR(rates[0] / (rates[0] + rates[1]), 1.0, 1e-6);
}

TEST(WaterfillTest, NeverOversubscribesAndSaturatesABottleneckPerFlow) {
  Rng rng(29);
  for (int iter = 0; iter < 50; ++iter) {
    RandomInstance inst(rng);
    WaterfillKernel kernel;
    std::vector<WaterfillFlow> flows = snapshot_flows(inst.input);
    for (WaterfillFlow& f : flows) f.weight = rng.uniform(0.1, 10.0);
    const std::vector<double> caps = full_capacities(inst.fabric);
    std::vector<double> rates;
    kernel.solve(inst.fabric, flows, caps, rates);

    std::vector<double> usage(caps.size(), 0.0);
    for (std::size_t i = 0; i < flows.size(); ++i) {
      EXPECT_GE(rates[i], 0.0);
      usage[static_cast<std::size_t>(inst.fabric.uplink(flows[i].src))] +=
          rates[i];
      usage[static_cast<std::size_t>(inst.fabric.downlink(flows[i].dst))] +=
          rates[i];
    }
    for (std::size_t l = 0; l < caps.size(); ++l) {
      EXPECT_LE(usage[l], caps[l] * (1.0 + 1e-9)) << "link " << l;
    }
    // Max-min: every flow is limited by some saturated link it crosses.
    for (std::size_t i = 0; i < flows.size(); ++i) {
      const auto u =
          static_cast<std::size_t>(inst.fabric.uplink(flows[i].src));
      const auto d =
          static_cast<std::size_t>(inst.fabric.downlink(flows[i].dst));
      const bool up_sat = usage[u] >= caps[u] - 1e-6 * caps[u] - 1.0;
      const bool down_sat = usage[d] >= caps[d] - 1e-6 * caps[d] - 1.0;
      EXPECT_TRUE(up_sat || down_sat) << "flow " << i << " unbottlenecked";
    }
  }
}

// --- residual_capacity / ResidualBackfill ---------------------------------

TEST(ResidualTest, ResidualCapacityMatchesLinkUsage) {
  Rng rng(31);
  RandomInstance inst(rng);
  Allocation alloc;
  for (const ActiveCoflow& coflow : inst.input.coflows) {
    for (const ActiveFlow& f : coflow.flows) {
      alloc.set_rate(f.id, rng.uniform(0.0, 1e8));
    }
  }
  const std::vector<double> usage = link_usage(inst.input, alloc);
  std::vector<double> residual;
  residual_capacity(inst.input, alloc, residual);
  ASSERT_EQ(residual.size(), usage.size());
  for (LinkId i = 0; i < inst.fabric.num_links(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    EXPECT_DOUBLE_EQ(residual[idx], inst.fabric.capacity(i) - usage[idx]);
  }
}

TEST(ResidualTest, BackfillOnlyAddsAndStaysFeasible) {
  Rng rng(37);
  for (int iter = 0; iter < 50; ++iter) {
    RandomInstance inst(rng);
    Allocation alloc;
    for (const ActiveCoflow& coflow : inst.input.coflows) {
      for (const ActiveFlow& f : coflow.flows) {
        alloc.set_rate(f.id, rng.uniform(0.0, 5e7));
      }
    }
    Allocation before = alloc;
    ResidualBackfill backfill;
    backfill.run(inst.input, alloc);
    for (const ActiveCoflow& coflow : inst.input.coflows) {
      for (const ActiveFlow& f : coflow.flows) {
        EXPECT_GE(alloc.rate(f.id), before.rate(f.id));
      }
    }
    check_capacity(inst.input, alloc);
  }
}

// --- DemandCache ----------------------------------------------------------

TEST(DemandCacheTest, MatchesComputeDemand) {
  Rng rng(41);
  for (int iter = 0; iter < 50; ++iter) {
    RandomInstance inst(rng, /*clairvoyant=*/true);
    DemandCache cache;
    cache.refresh(inst.input);
    ASSERT_EQ(cache.size(), inst.input.coflows.size());
    for (std::size_t k = 0; k < inst.input.coflows.size(); ++k) {
      const ActiveCoflow& coflow = inst.input.coflows[k];
      std::vector<Flow> flows;
      std::vector<double> sizes;
      for (const ActiveFlow& f : coflow.flows) {
        flows.push_back(Flow{f.id, f.coflow, f.src, f.dst, 0.0});
        sizes.push_back(inst.remaining[static_cast<std::size_t>(f.id)]);
      }
      const DemandVectors expected =
          compute_demand(inst.fabric, flows, sizes);
      const DemandVectors& got = cache.demand(k);
      EXPECT_EQ(got.demand, expected.demand);
      EXPECT_EQ(got.flow_count, expected.flow_count);
      EXPECT_EQ(got.bottleneck_demand, expected.bottleneck_demand);
      EXPECT_EQ(got.bottleneck_link, expected.bottleneck_link);
      EXPECT_EQ(got.bottleneck_flow_count, expected.bottleneck_flow_count);
      EXPECT_EQ(got.flow_count_bottleneck_link,
                expected.flow_count_bottleneck_link);
    }
  }
}

TEST(DemandCacheTest, DrfAllocateMatchesLegacyDrf) {
  Rng rng(43);
  for (int iter = 0; iter < 50; ++iter) {
    RandomInstance inst(rng, /*clairvoyant=*/true);
    DemandCache cache;
    cache.refresh(inst.input);
    Allocation alloc;
    drf_allocate(inst.input, cache, alloc);
    const Allocation legacy = legacy_allocate("drf", inst.input);
    for (const ActiveCoflow& coflow : inst.input.coflows) {
      for (const ActiveFlow& f : coflow.flows) {
        EXPECT_EQ(alloc.rate(f.id), legacy.rate(f.id))
            << "iter " << iter << " flow " << f.id;
      }
    }
  }
}

// --- KernelScheduler sync paths -------------------------------------------

TEST(KernelSchedulerTest, BareSnapshotsAlwaysRebuild) {
  Rng rng(47);
  RandomInstance inst(rng);
  PspScheduler sched;
  (void)sched.allocate(inst.input);
  (void)sched.allocate(inst.input);
  const SchedPerf* perf = sched.perf_counters();
  ASSERT_NE(perf, nullptr);
  EXPECT_EQ(perf->allocate_calls, 2);
  EXPECT_EQ(perf->full_rebuilds, 2);
  EXPECT_EQ(perf->incremental_allocs, 0);
}

TEST(KernelSchedulerTest, EventDrivenAllocatesIncrementally) {
  Rng rng(53);
  RandomInstance inst(rng);
  PspScheduler sched;
  ASSERT_TRUE(sched.wants_events());
  sched.on_reset(inst.fabric);
  for (const ActiveCoflow& view : inst.input.coflows) {
    sched.on_coflow_arrival(view);
  }
  const Allocation first = sched.allocate(inst.input);
  // Finish one flow through the hooks and mirror it in the snapshot.
  ActiveCoflow& view = inst.input.coflows[0];
  const ActiveFlow finished = view.flows.back();
  view.flows.pop_back();
  view.finished_flows.push_back(finished);
  sched.on_flow_finish(finished);
  if (view.flows.empty()) {
    sched.on_coflow_departure(view.id);
    inst.input.coflows.erase(inst.input.coflows.begin());
  }
  (void)sched.allocate(inst.input);
  const SchedPerf* perf = sched.perf_counters();
  ASSERT_NE(perf, nullptr);
  EXPECT_EQ(perf->incremental_allocs, 2);
  EXPECT_EQ(perf->full_rebuilds, 0);
  EXPECT_EQ(perf->flow_finish_events, 1);
  EXPECT_GT(perf->links_touched, 0);
  (void)first;
}

// --- Registry-wide edges --------------------------------------------------

TEST(AllocEdgeTest, EmptySnapshotYieldsEmptyAllocationForEveryPolicy) {
  Fabric fabric(3, gbps(1.0));
  std::vector<double> remaining;
  ClairvoyantInfo info(&remaining);
  ScheduleInput input;
  input.fabric = &fabric;
  input.clairvoyant = &info;
  input.total_live_flows = 0;
  for (const std::string& name : scheduler_names()) {
    auto sched = make_scheduler(name);
    const Allocation alloc = sched->allocate(input);
    EXPECT_TRUE(alloc.empty()) << name;
  }
}

TEST(AllocEdgeTest, ExtremeCoflowWeightsStayFeasibleForEveryPolicy) {
  Fabric fabric(2, gbps(1.0));
  std::vector<double> remaining = {1e8, 1e8, 1e8};
  ClairvoyantInfo info(&remaining);
  ScheduleInput input;
  input.fabric = &fabric;
  input.clairvoyant = &info;
  input.coflows.resize(2);
  input.coflows[0].id = 0;
  input.coflows[0].weight = 1e6;
  input.coflows[0].flows = {ActiveFlow{0, 0, 0, 1}, ActiveFlow{1, 0, 1, 0}};
  input.coflows[1].id = 1;
  input.coflows[1].weight = 1e-6;
  input.coflows[1].flows = {ActiveFlow{2, 1, 0, 1}};
  input.total_live_flows = 3;
  for (const std::string& name : scheduler_names()) {
    auto sched = make_scheduler(name);
    const Allocation alloc = sched->allocate(input);
    check_capacity(input, alloc);
  }
}

}  // namespace
}  // namespace ncdrf
