// Tests for the parallel sweep runner (runner/): the fixed thread pool's
// dispatch contract and the sweep's headline guarantee — aggregated
// results are *bit-identical* to a serial run for every registered policy,
// whatever the thread count.
#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/units.h"
#include "core/registry.h"
#include "runner/sweep.h"
#include "runner/thread_pool.h"
#include "trace/synthetic_fb.h"

namespace ncdrf {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  constexpr int kTasks = 1000;
  std::vector<std::atomic<int>> hits(kTasks);
  pool.run(kTasks, [&](int i) { hits[static_cast<std::size_t>(i)]++; });
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int batch = 0; batch < 50; ++batch) {
    pool.run(batch % 7, [&](int) { total++; });
  }
  int expected = 0;
  for (int batch = 0; batch < 50; ++batch) expected += batch % 7;
  EXPECT_EQ(total.load(), expected);
}

TEST(ThreadPool, SingleThreadRunsAllTasks) {
  ThreadPool pool(1);
  std::atomic<int> total{0};
  pool.run(37, [&](int) { total++; });
  EXPECT_EQ(total.load(), 37);
}

TEST(ThreadPool, PropagatesFirstTaskException) {
  ThreadPool pool(3);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.run(20,
               [&](int i) {
                 if (i == 5) throw std::runtime_error("task 5 failed");
                 completed++;
               }),
      std::runtime_error);
  // The failing batch still ran the other tasks to completion.
  EXPECT_EQ(completed.load(), 19);
  // The pool survives a failed batch.
  pool.run(4, [&](int) { completed++; });
  EXPECT_EQ(completed.load(), 23);
}

TEST(ThreadPool, RejectsInvalidConfig) {
  EXPECT_ANY_THROW(ThreadPool(0));
  ThreadPool pool(1);
  EXPECT_ANY_THROW(pool.run(-1, [](int) {}));
}

// --- Sweep determinism ----------------------------------------------------

bool identical_runs(const RunResult& a, const RunResult& b) {
  if (a.coflows.size() != b.coflows.size() ||
      a.intervals.size() != b.intervals.size() ||
      a.progress.size() != b.progress.size() ||
      a.num_events != b.num_events ||
      a.num_allocations != b.num_allocations ||
      a.makespan != b.makespan ||
      a.total_bits_delivered != b.total_bits_delivered) {
    return false;
  }
  for (std::size_t i = 0; i < a.coflows.size(); ++i) {
    const CoflowRecord& x = a.coflows[i];
    const CoflowRecord& y = b.coflows[i];
    if (x.id != y.id || x.arrival != y.arrival ||
        x.completion != y.completion || x.cct != y.cct ||
        x.min_cct != y.min_cct || x.width != y.width ||
        x.max_flow_bits != y.max_flow_bits ||
        x.total_bits != y.total_bits) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.progress.size(); ++i) {
    const ProgressSample& x = a.progress[i];
    const ProgressSample& y = b.progress[i];
    if (x.t0 != y.t0 || x.t1 != y.t1 || x.coflow != y.coflow ||
        x.progress != y.progress) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.intervals.size(); ++i) {
    const IntervalRecord& x = a.intervals[i];
    const IntervalRecord& y = b.intervals[i];
    if (x.t0 != y.t0 || x.t1 != y.t1 ||
        x.active_coflows != y.active_coflows ||
        x.link_usage_bps != y.link_usage_bps ||
        x.min_progress != y.min_progress ||
        x.max_progress != y.max_progress) {
      return false;
    }
  }
  return true;
}

SweepSpec small_grid(const std::vector<std::string>& policies, int threads) {
  SweepSpec spec;
  spec.fabric = Fabric(16, gbps(1.0));
  spec.policies = policies;
  for (unsigned long long seed : {11ull, 23ull}) {
    SyntheticFbOptions options;
    options.seed = seed;
    options.num_coflows = 12;
    options.num_racks = 16;
    options.duration_s = 30.0;
    options.max_flows_per_coflow = 50;  // generator minimum
    spec.traces.push_back(SweepCase{"seed" + std::to_string(seed),
                                    generate_synthetic_fb(options)});
  }
  spec.sim.record_progress_timeseries = true;
  spec.threads = threads;
  return spec;
}

// The headline guarantee: for EVERY registered policy, a parallel sweep
// aggregates to exactly the same bits (CCTs, progress samples, interval
// samples, event counts) as the serial sweep.
TEST(Sweep, ParallelBitIdenticalToSerialForEveryPolicy) {
  const std::vector<std::string> policies = scheduler_names();
  ASSERT_FALSE(policies.empty());
  const SweepResult serial = run_sweep(small_grid(policies, 1));
  const SweepResult parallel = run_sweep(small_grid(policies, 4));

  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  ASSERT_EQ(serial.cells.size(), policies.size() * 2);
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    EXPECT_EQ(serial.cells[i].policy, parallel.cells[i].policy);
    EXPECT_EQ(serial.cells[i].trace_label, parallel.cells[i].trace_label);
    EXPECT_TRUE(identical_runs(serial.cells[i].run, parallel.cells[i].run))
        << "cell " << i << " (" << serial.cells[i].policy << " × "
        << serial.cells[i].trace_label
        << ") diverged between 1 and 4 threads";
  }
}

TEST(Sweep, GridOrderIsPolicyMajor) {
  const SweepResult sweep = run_sweep(small_grid({"ncdrf", "tcp"}, 2));
  ASSERT_EQ(sweep.cells.size(), 4u);
  EXPECT_EQ(sweep.cells[0].policy, "ncdrf");
  EXPECT_EQ(sweep.cells[0].trace_label, "seed11");
  EXPECT_EQ(sweep.cells[1].policy, "ncdrf");
  EXPECT_EQ(sweep.cells[1].trace_label, "seed23");
  EXPECT_EQ(sweep.cells[2].policy, "tcp");
  EXPECT_EQ(sweep.cells[3].policy, "tcp");
  EXPECT_EQ(sweep.threads, 2);
  for (const SweepCellResult& cell : sweep.cells) {
    EXPECT_GT(cell.run.num_events, 0);
    EXPECT_GE(cell.wall_seconds, 0.0);
    EXPECT_GT(cell.events_per_second, 0.0);
  }
}

TEST(Sweep, RejectsBadSpecs) {
  SweepSpec empty_policies = small_grid({}, 1);
  EXPECT_ANY_THROW(run_sweep(empty_policies));

  SweepSpec no_traces = small_grid({"ncdrf"}, 1);
  no_traces.traces.clear();
  EXPECT_ANY_THROW(run_sweep(no_traces));

  SweepSpec unknown = small_grid({"no-such-policy"}, 1);
  EXPECT_ANY_THROW(run_sweep(unknown));

  SweepSpec bad_threads = small_grid({"ncdrf"}, 0);
  EXPECT_ANY_THROW(run_sweep(bad_threads));
}

}  // namespace
}  // namespace ncdrf
