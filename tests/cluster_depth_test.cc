// Deeper cluster-emulation tests: loss-rate sweeps, refresh-period
// effects, heartbeat-driven clairvoyant state, and deployment/fluid
// consistency on the Table III micro-benchmark.
#include <gtest/gtest.h>

#include "cluster/deployment.h"
#include "cluster/master.h"
#include "common/units.h"
#include "core/registry.h"
#include "sched/drf.h"
#include "sim/sim.h"
#include "trace/microbench.h"
#include "trace/trace.h"

namespace ncdrf {
namespace {

Trace two_coflow_trace() {
  TraceBuilder builder(4);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 2, megabits(80.0));
  builder.add_flow(1, 2, megabits(80.0));
  builder.begin_coflow(0.0);
  builder.add_flow(1, 3, megabits(80.0));
  return builder.build();
}

class LossSweep : public ::testing::TestWithParam<double> {};

TEST_P(LossSweep, DeploymentAlwaysCompletes) {
  const double loss = GetParam();
  const Fabric fabric(4, gbps(1.0));
  const Trace trace = two_coflow_trace();
  DeploymentOptions options;
  options.tick_s = 0.002;
  options.control_latency_s = 0.001;
  options.control_loss_probability = loss;
  options.reallocation_refresh_period_s = 0.05;
  const auto sched = make_scheduler("ncdrf");
  const DeploymentResult result =
      run_deployment(fabric, trace, *sched, options);
  for (const CoflowRecord& rec : result.coflows) {
    EXPECT_GT(rec.cct, 0.0) << "loss " << loss;
    EXPECT_GE(rec.cct, rec.min_cct - 1e-9) << "loss " << loss;
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, LossSweep,
                         ::testing::Values(0.0, 0.1, 0.3, 0.5, 0.8));

TEST(ClusterDepth, RefreshPeriodBoundsLossDamage) {
  // Under heavy loss, a faster refresh recovers lost rate updates sooner.
  // Loss realizations differ per seed (more sends reshuffle the drop
  // sequence), so compare mean makespans over several seeds.
  const Fabric fabric(4, gbps(1.0));
  const Trace trace = two_coflow_trace();
  auto mean_makespan = [&](double period) {
    double total = 0.0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      DeploymentOptions options;
      options.tick_s = 0.002;
      options.control_latency_s = 0.001;
      options.control_loss_probability = 0.5;
      options.loss_seed = seed;
      options.reallocation_refresh_period_s = period;
      const auto sched = make_scheduler("ncdrf");
      total += run_deployment(fabric, trace, *sched, options).makespan;
    }
    return total / 10.0;
  };
  EXPECT_LE(mean_makespan(0.05), mean_makespan(1.0) * 1.02);
}

TEST(ClusterDepth, HeartbeatsFeedClairvoyantRemainingEstimates) {
  // A DRF master's remaining-size estimates come from heartbeats: after a
  // heartbeat reporting attained bytes, the next allocation reflects the
  // smaller remaining demand (rates stay proportional to remaining).
  const Fabric fabric(2, gbps(1.0));
  DrfScheduler drf;
  Master master(fabric, drf);
  RegisterCoflowMsg reg;
  reg.coflow = 0;
  reg.arrival_time = 0.0;
  reg.sizes_known = true;
  reg.flows.push_back(Flow{0, 0, 0, 1, megabits(100.0)});
  reg.flows.push_back(Flow{1, 0, 1, 0, megabits(100.0)});
  master.on_register(reg);

  SimBus bus(0.0);
  master.reallocate(0.0, bus);
  double rate_before = 0.0;
  for (const auto& d : bus.deliver_due(0.0)) {
    for (const auto& [flow, rate] :
         std::get<RateUpdateMsg>(d.payload).rates_bps) {
      if (flow == 0) rate_before = rate;
    }
  }
  EXPECT_NEAR(rate_before, gbps(1.0), 1e3);  // full links, both flows

  // Report flow 0 nearly done; DRF now gives it proportionally less.
  HeartbeatMsg hb;
  hb.machine = 0;
  hb.attained_bits.emplace_back(0, megabits(90.0));
  master.on_heartbeat(hb, 0.1);
  master.reallocate(0.1, bus);
  double rate_after_0 = 0.0;
  double rate_after_1 = 0.0;
  for (const auto& d : bus.deliver_due(0.1)) {
    for (const auto& [flow, rate] :
         std::get<RateUpdateMsg>(d.payload).rates_bps) {
      if (flow == 0) rate_after_0 = rate;
      if (flow == 1) rate_after_1 = rate;
    }
  }
  // Remaining 10 Mb vs 100 Mb on disjoint paths: flow 0's rate is a tenth
  // of flow 1's under remaining-proportional DRF.
  EXPECT_NEAR(rate_after_0 / rate_after_1, 0.1, 1e-6);
}

TEST(ClusterDepth, TestbedDeploymentTracksFluidSim) {
  // Table III workload: the deployment's CCTs must track the fluid
  // simulator within the enforcement/control overheads.
  const Fabric fabric(60, mbps(200.0));
  const Trace trace = build_testbed_trace({});
  const auto sched_fluid = make_scheduler("ncdrf-live");
  const auto sched_dep = make_scheduler("ncdrf-live");
  const RunResult fluid = simulate(fabric, trace, *sched_fluid);
  const DeploymentResult dep = run_deployment(fabric, trace, *sched_dep);
  for (std::size_t k = 0; k < trace.coflows.size(); ++k) {
    EXPECT_NEAR(dep.coflows[k].cct, fluid.coflows[k].cct,
                0.15 * fluid.coflows[k].cct + 0.2)
        << "coflow " << k;
  }
}

TEST(ClusterDepth, MoreMessagesUnderShorterHeartbeatPeriod) {
  const Fabric fabric(4, gbps(1.0));
  const Trace trace = two_coflow_trace();
  auto run_with_heartbeat = [&](double period) {
    DeploymentOptions options;
    options.tick_s = 0.002;
    options.heartbeat_period_s = period;
    const auto sched = make_scheduler("ncdrf");
    return run_deployment(fabric, trace, *sched, options).messages_sent;
  };
  EXPECT_GT(run_with_heartbeat(0.01), run_with_heartbeat(0.5));
}

}  // namespace
}  // namespace ncdrf
