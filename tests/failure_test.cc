// Failure-injection tests: control-plane message loss in the cluster
// emulation, and misbehaving schedulers against the simulator's guards.
#include <gtest/gtest.h>

#include "cluster/bus.h"
#include "cluster/deployment.h"
#include "common/units.h"
#include "core/registry.h"
#include "sim/sim.h"
#include "test_util.h"

namespace ncdrf {
namespace {

using testing::fig3_trace;

TEST(BusLoss, UnreliableSendsDropAtConfiguredRate) {
  SimBus bus(0.0, /*loss_probability=*/0.5, /*seed=*/3);
  int delivered = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    if (bus.send_unreliable(0.0, master_address(),
                            FlowFinishedMsg{i, 0, 0.0})) {
      ++delivered;
    }
  }
  EXPECT_NEAR(delivered / static_cast<double>(n), 0.5, 0.05);
  EXPECT_EQ(bus.total_dropped(), n - delivered);
}

TEST(BusLoss, ReliableSendsNeverDrop) {
  SimBus bus(0.0, /*loss_probability=*/0.9, /*seed=*/3);
  for (int i = 0; i < 100; ++i) {
    bus.send(0.0, master_address(), FlowFinishedMsg{i, 0, 0.0});
  }
  EXPECT_EQ(bus.deliver_due(0.0).size(), 100u);
  EXPECT_EQ(bus.total_dropped(), 0);
}

TEST(BusLoss, RejectsInvalidProbability) {
  EXPECT_THROW(SimBus(0.0, -0.1), CheckError);
  EXPECT_THROW(SimBus(0.0, 1.0), CheckError);
}

TEST(FailureInjection, DeploymentCompletesUnderHeavyControlLoss) {
  // 30% of rate updates / heartbeats / finish reports vanish; the periodic
  // reallocation refresh repairs the damage and every coflow still
  // completes, just a bit slower.
  const Fabric fabric(2, gbps(1.0));
  const Trace trace = fig3_trace();

  DeploymentOptions clean;
  clean.tick_s = 0.002;
  clean.control_latency_s = 0.001;
  clean.reallocation_refresh_period_s = 0.05;

  DeploymentOptions lossy = clean;
  lossy.control_loss_probability = 0.3;

  const auto sched_a = make_scheduler("ncdrf");
  const auto sched_b = make_scheduler("ncdrf");
  const DeploymentResult ok = run_deployment(fabric, trace, *sched_a, clean);
  const DeploymentResult faulty =
      run_deployment(fabric, trace, *sched_b, lossy);

  for (std::size_t k = 0; k < trace.coflows.size(); ++k) {
    EXPECT_GT(faulty.coflows[k].cct, 0.0);
    // Loss can only slow things down, and the refresh bounds the damage.
    EXPECT_GE(faulty.coflows[k].cct, ok.coflows[k].cct - 0.01);
    EXPECT_LT(faulty.coflows[k].cct, ok.coflows[k].cct + 1.0);
  }
}

TEST(FailureInjection, RefreshRepairsLostInitialRateUpdate) {
  // With a 60% loss rate the very first RateUpdate is often dropped; only
  // the refresh lets the flow ever start. Without refresh this workload
  // could stall; with it, completion is guaranteed.
  const Fabric fabric(2, gbps(1.0));
  TraceBuilder builder(2);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 1, megabits(50.0));
  const Trace trace = builder.build();

  DeploymentOptions options;
  options.tick_s = 0.002;
  options.control_loss_probability = 0.6;
  options.loss_seed = 99;
  options.reallocation_refresh_period_s = 0.05;
  const auto sched = make_scheduler("ncdrf");
  const DeploymentResult result =
      run_deployment(fabric, trace, *sched, options);
  EXPECT_GT(result.coflows[0].cct, 0.0);
}

// A scheduler that oversubscribes every link by 3x: the simulator must
// clamp it back to feasibility and still conserve bytes.
class OversubscribingScheduler : public Scheduler {
 public:
  std::string name() const override { return "Oversubscriber"; }
  bool clairvoyant() const override { return false; }
  Allocation allocate(const ScheduleInput& input) override {
    Allocation alloc;
    for (const ActiveCoflow& coflow : input.coflows) {
      for (const ActiveFlow& f : coflow.flows) {
        alloc.set_rate(f.id, 3.0 * input.fabric->capacity(
                                      input.fabric->uplink(f.src)));
      }
    }
    return alloc;
  }
};

TEST(FailureInjection, SimulatorClampsOversubscribingScheduler) {
  const Fabric fabric(2, gbps(1.0));
  const Trace trace = fig3_trace();
  OversubscribingScheduler bad;
  SimOptions options;
  options.validate_allocations = true;  // validated *after* clamping
  const RunResult run = simulate(fabric, trace, bad, options);
  EXPECT_NEAR(run.total_bits_delivered, trace.total_bits(), 10.0);
  for (const CoflowRecord& rec : run.coflows) {
    // Clamped rates can never beat the physics bound.
    EXPECT_GE(rec.cct, rec.min_cct - 1e-9);
  }
}

// A scheduler that refuses to allocate anything: the simulator must detect
// the starvation instead of spinning forever.
class StarvingScheduler : public Scheduler {
 public:
  std::string name() const override { return "Starver"; }
  bool clairvoyant() const override { return false; }
  Allocation allocate(const ScheduleInput& input) override {
    Allocation alloc;
    for (const ActiveCoflow& coflow : input.coflows) {
      for (const ActiveFlow& f : coflow.flows) alloc.set_rate(f.id, 0.0);
    }
    return alloc;
  }
};

TEST(FailureInjection, SimulatorDetectsStarvation) {
  const Fabric fabric(2, gbps(1.0));
  const Trace trace = fig3_trace();
  StarvingScheduler bad;
  EXPECT_THROW(simulate(fabric, trace, bad), CheckError);
}

}  // namespace
}  // namespace ncdrf
