// Failure-injection tests: control-plane message loss in the cluster
// emulation, deterministic FaultPlan scenarios (crashes, restarts,
// partitions, loss bursts) against the fault-tolerant deployment, and
// misbehaving schedulers against the simulator's guards.
#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "cluster/bus.h"
#include "cluster/deployment.h"
#include "cluster/faults.h"
#include "common/units.h"
#include "core/registry.h"
#include "metrics/export.h"
#include "sim/sim.h"
#include "test_util.h"

namespace ncdrf {
namespace {

using testing::fig3_trace;

TEST(BusLoss, UnreliableSendsDropAtConfiguredRate) {
  SimBus bus(0.0, /*loss_probability=*/0.5, /*seed=*/3);
  int delivered = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    if (bus.send_unreliable(0.0, master_address(),
                            FlowFinishedMsg{i, 0, 0.0})) {
      ++delivered;
    }
  }
  EXPECT_NEAR(delivered / static_cast<double>(n), 0.5, 0.05);
  EXPECT_EQ(bus.total_dropped(), n - delivered);
}

TEST(BusLoss, ReliableSendsNeverDrop) {
  SimBus bus(0.0, /*loss_probability=*/0.9, /*seed=*/3);
  for (int i = 0; i < 100; ++i) {
    bus.send(0.0, master_address(), FlowFinishedMsg{i, 0, 0.0});
  }
  EXPECT_EQ(bus.deliver_due(0.0).size(), 100u);
  EXPECT_EQ(bus.total_dropped(), 0);
}

TEST(BusLoss, RejectsInvalidProbability) {
  EXPECT_THROW(SimBus(0.0, -0.1), CheckError);
  EXPECT_THROW(SimBus(0.0, 1.0), CheckError);
}

TEST(FailureInjection, DeploymentCompletesUnderHeavyControlLoss) {
  // 30% of rate updates / heartbeats / finish reports vanish; the periodic
  // reallocation refresh repairs the damage and every coflow still
  // completes, just a bit slower.
  const Fabric fabric(2, gbps(1.0));
  const Trace trace = fig3_trace();

  DeploymentOptions clean;
  clean.tick_s = 0.002;
  clean.control_latency_s = 0.001;
  clean.reallocation_refresh_period_s = 0.05;

  DeploymentOptions lossy = clean;
  lossy.control_loss_probability = 0.3;

  const auto sched_a = make_scheduler("ncdrf");
  const auto sched_b = make_scheduler("ncdrf");
  const DeploymentResult ok = run_deployment(fabric, trace, *sched_a, clean);
  const DeploymentResult faulty =
      run_deployment(fabric, trace, *sched_b, lossy);

  for (std::size_t k = 0; k < trace.coflows.size(); ++k) {
    EXPECT_GT(faulty.coflows[k].cct, 0.0);
    // Loss can only slow things down, and the refresh bounds the damage.
    EXPECT_GE(faulty.coflows[k].cct, ok.coflows[k].cct - 0.01);
    EXPECT_LT(faulty.coflows[k].cct, ok.coflows[k].cct + 1.0);
  }
}

TEST(FailureInjection, RefreshRepairsLostInitialRateUpdate) {
  // With a 60% loss rate the very first RateUpdate is often dropped; only
  // the refresh lets the flow ever start. Without refresh this workload
  // could stall; with it, completion is guaranteed.
  const Fabric fabric(2, gbps(1.0));
  TraceBuilder builder(2);
  builder.begin_coflow(0.0);
  builder.add_flow(0, 1, megabits(50.0));
  const Trace trace = builder.build();

  DeploymentOptions options;
  options.tick_s = 0.002;
  options.control_loss_probability = 0.6;
  options.loss_seed = 99;
  options.reallocation_refresh_period_s = 0.05;
  const auto sched = make_scheduler("ncdrf");
  const DeploymentResult result =
      run_deployment(fabric, trace, *sched, options);
  EXPECT_GT(result.coflows[0].cct, 0.0);
}

TEST(FaultPlanUnit, EventsStaySortedAndConsumeOnce) {
  FaultPlan plan;
  plan.restart_slave(0.5, 1)
      .crash_slave(0.2, 1)
      .loss_burst(0.1, 0.3, 0.8)
      .partition(0.2, 0.4, 0);
  ASSERT_EQ(plan.size(), 6u);
  const auto& ev = plan.events();
  for (std::size_t i = 1; i < ev.size(); ++i) {
    EXPECT_LE(ev[i - 1].time, ev[i].time);
  }
  // Same-instant events keep insertion order: the crash at 0.2 was added
  // before the partition start at 0.2.
  EXPECT_EQ(ev[1].kind, FaultKind::kSlaveCrash);
  EXPECT_EQ(ev[2].kind, FaultKind::kPartitionStart);

  EXPECT_EQ(plan.due(0.05).size(), 0u);
  const auto first = plan.due(0.2);
  ASSERT_EQ(first.size(), 3u);  // burst start, crash, partition start
  EXPECT_EQ(first[0].kind, FaultKind::kLossBurstStart);
  EXPECT_FALSE(plan.exhausted());
  EXPECT_EQ(plan.due(0.2).size(), 0u);  // consumed exactly once
  EXPECT_EQ(plan.due(10.0).size(), 3u);
  EXPECT_TRUE(plan.exhausted());
}

TEST(FaultPlanUnit, RejectsInvalidEventsAndLateMutation) {
  FaultPlan plan;
  EXPECT_THROW(plan.crash_slave(0.1, -1), CheckError);
  EXPECT_THROW(plan.partition(0.5, 0.5, 0), CheckError);
  EXPECT_THROW(plan.loss_burst(0.1, 0.2, 1.0), CheckError);
  EXPECT_THROW(plan.crash_slave(-0.1, 0), CheckError);
  plan.crash_slave(0.1, 0);
  (void)plan.due(0.2);
  EXPECT_THROW(plan.restart_slave(0.3, 0), CheckError);
}

TEST(FaultPlanUnit, ChurnPlanIsWellFormedAndSeedDeterministic) {
  const ChurnOptions churn;
  const FaultPlan a = random_churn_plan(11, 4, churn);
  const FaultPlan b = random_churn_plan(11, 4, churn);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_GT(a.size(), 0u);
  // Every crash has a later restart on the same machine, every partition
  // heals, every burst ends; cycles on one target never overlap.
  std::map<MachineId, int> slave_state;  // 0 = up
  int master_down = 0, partitioned = 0, burst = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const FaultEvent& e = a.events()[i];
    const FaultEvent& e2 = b.events()[i];
    EXPECT_EQ(e.time, e2.time);
    EXPECT_EQ(e.kind, e2.kind);
    EXPECT_EQ(e.machine, e2.machine);
    switch (e.kind) {
      case FaultKind::kSlaveCrash:
        EXPECT_EQ(slave_state[e.machine]++, 0);
        break;
      case FaultKind::kSlaveRestart:
        EXPECT_EQ(slave_state[e.machine]--, 1);
        break;
      case FaultKind::kMasterCrash:
        EXPECT_EQ(master_down++, 0);
        break;
      case FaultKind::kMasterRestart:
        EXPECT_EQ(master_down--, 1);
        break;
      case FaultKind::kPartitionStart:
        EXPECT_EQ(partitioned++, 0);
        break;
      case FaultKind::kPartitionHeal:
        EXPECT_EQ(partitioned--, 1);
        break;
      case FaultKind::kLossBurstStart:
        EXPECT_EQ(burst++, 0);
        break;
      case FaultKind::kLossBurstEnd:
        EXPECT_EQ(burst--, 1);
        break;
    }
  }
  for (const auto& [m, state] : slave_state) EXPECT_EQ(state, 0);
  EXPECT_EQ(master_down, 0);
  EXPECT_EQ(partitioned, 0);
  EXPECT_EQ(burst, 0);
}

TEST(BusRetry, RetryBeatsSingleAttemptUnderLoss) {
  SimBus plain(0.0, /*loss_probability=*/0.5, /*seed=*/7);
  SimBus retrying(0.0, /*loss_probability=*/0.5, /*seed=*/7);
  const RetryPolicy policy{5, 0.01, 2.0};
  const int n = 1000;
  int plain_ok = 0, retry_ok = 0;
  for (int i = 0; i < n; ++i) {
    if (plain.send_unreliable(0.0, master_address(),
                              FlowFinishedMsg{i, 0, 0.0})) {
      ++plain_ok;
    }
    if (retrying.send_with_retry(0.0, master_address(),
                                 FlowFinishedMsg{i, 0, 0.0}, policy)) {
      ++retry_ok;
    }
  }
  // P(all 5 attempts lost) = 0.5^5 ≈ 3%, vs 50% for a single attempt.
  EXPECT_NEAR(retry_ok / static_cast<double>(n), 1.0 - 0.03125, 0.02);
  EXPECT_GT(retry_ok, plain_ok);
  EXPECT_GT(retrying.total_retries(), 0);
  // A retried message is delivered at its retry time, never earlier.
  for (const auto& d : retrying.deliver_due(1.0)) {
    EXPECT_GE(d.deliver_time, 0.0);
  }
  EXPECT_THROW(retrying.send_with_retry(0.0, master_address(),
                                        FlowFinishedMsg{0, 0, 0.0},
                                        RetryPolicy{0, 0.01, 2.0}),
               CheckError);
}

TEST(BusRetry, BackoffIsPerDestinationAndResetsOnSuccess) {
  // Regression: backoff used to be per-*call* — every send_with_retry
  // restarted the ladder at backoff_s, so concurrent repair loops hammered
  // a lossy destination at the base interval forever. The ladder is per
  // destination: an exhausted call leaves the escalated delay behind for
  // the next call to the same destination, other destinations are
  // unaffected, and one transmitted attempt resets the destination.
  SimBus bus(0.0, /*loss_probability=*/1.0 - 1e-12, /*seed=*/3);
  const RetryPolicy policy{3, 0.05, 2.0};
  const Address a = slave_address(0);
  const Address b = slave_address(1);
  EXPECT_EQ(bus.pending_backoff(a), 0.0);

  // First exhausted call to `a`: retries waited 0.05 and 0.1; the ladder
  // leaves 0.2 pending.
  EXPECT_FALSE(bus.send_with_retry(0.0, a, FlowFinishedMsg{0, 0, 0.0},
                                   policy));
  EXPECT_DOUBLE_EQ(bus.pending_backoff(a), 0.2);
  EXPECT_EQ(bus.pending_backoff(b), 0.0);  // isolation: b untouched

  // Second call to `a` resumes at 0.2 (not the 0.05 base): its retries
  // wait 0.2 and 0.4, leaving 0.8.
  EXPECT_FALSE(bus.send_with_retry(1.0, a, FlowFinishedMsg{1, 0, 1.0},
                                   policy));
  EXPECT_DOUBLE_EQ(bus.pending_backoff(a), 0.8);

  // `b`'s ladder is its own: a first exhausted call leaves 0.2 there
  // regardless of `a`'s escalation.
  EXPECT_FALSE(bus.send_with_retry(1.0, b, FlowFinishedMsg{2, 0, 1.0},
                                   policy));
  EXPECT_DOUBLE_EQ(bus.pending_backoff(b), 0.2);
  EXPECT_DOUBLE_EQ(bus.pending_backoff(a), 0.8);

  // One transmitted attempt (loss off) resets the destination to the
  // base; the other destination keeps its escalation.
  bus.set_loss_probability(0.0);
  EXPECT_TRUE(bus.send_with_retry(2.0, a, FlowFinishedMsg{3, 0, 2.0},
                                  policy));
  EXPECT_EQ(bus.pending_backoff(a), 0.0);
  EXPECT_DOUBLE_EQ(bus.pending_backoff(b), 0.2);
}

// ---------------------------------------------------------------------
// Deterministic FaultPlan scenarios. Each runs a small 3-machine workload
// with zero random loss (every outcome is scripted), asserts that every
// coflow still completes — no flow is permanently lost — and that the CCT
// inflation versus the fault-free run is bounded by the scripted downtime
// plus recovery slack.
// ---------------------------------------------------------------------

Trace fault_scenario_trace() {
  TraceBuilder builder(3);
  builder.begin_coflow(0.0);             // coflow 0: spread across machines
  builder.add_flow(0, 1, megabits(240.0));
  builder.add_flow(1, 2, megabits(240.0));
  builder.add_flow(2, 0, megabits(240.0));
  builder.begin_coflow(0.1);             // coflow 1: loads machine 0
  builder.add_flow(0, 2, megabits(480.0));
  builder.add_flow(1, 0, megabits(360.0));
  builder.begin_coflow(0.3);             // coflow 2: single flow
  builder.add_flow(2, 1, megabits(240.0));
  return builder.build();
}

DeploymentOptions fault_scenario_options() {
  DeploymentOptions options;
  options.tick_s = 0.002;
  options.control_latency_s = 0.001;
  options.heartbeat_period_s = 0.01;
  options.reallocation_refresh_period_s = 0.05;
  options.record_progress = false;
  options.heartbeat_timeout_beats = 3;
  return options;
}

struct ScenarioOutcome {
  DeploymentResult clean;
  DeploymentResult faulty;
};

// Runs the scenario workload fault-free and under `faults` with the same
// scheduler/options, asserting completion of every coflow in both.
ScenarioOutcome run_scenario(FaultPlan faults,
                             const std::string& policy = "ncdrf-live") {
  const Fabric fabric(3, gbps(1.0));
  const Trace trace = fault_scenario_trace();
  ScenarioOutcome out;
  const auto clean_sched = make_scheduler(policy);
  out.clean = run_deployment(fabric, trace, *clean_sched,
                             fault_scenario_options());
  DeploymentOptions options = fault_scenario_options();
  options.faults = std::move(faults);
  const auto faulty_sched = make_scheduler(policy);
  out.faulty = run_deployment(fabric, trace, *faulty_sched, options);
  for (std::size_t k = 0; k < trace.coflows.size(); ++k) {
    EXPECT_GT(out.clean.coflows[k].cct, 0.0) << "clean coflow " << k;
    EXPECT_GT(out.faulty.coflows[k].cct, 0.0) << "faulty coflow " << k;
    EXPECT_GE(out.faulty.coflows[k].completion,
              out.faulty.coflows[k].arrival);
  }
  return out;
}

void expect_bounded_inflation(const ScenarioOutcome& out, double budget_s) {
  for (std::size_t k = 0; k < out.clean.coflows.size(); ++k) {
    EXPECT_LE(out.faulty.coflows[k].cct,
              out.clean.coflows[k].cct + budget_s)
        << "coflow " << k;
  }
}

TEST(FaultScenario, SlaveCrashMidCoflowThenRestart) {
  // Machine 0 dies at 0.15 s holding unfinished flows of coflows 0 and 1,
  // and comes back at 0.45 s. The master declares it dead after three
  // silent heartbeats and quarantines its flows (survivors keep going);
  // the restart resyncs attained service from ground truth, so the lost
  // daemon state costs only the downtime, not a from-scratch retransfer.
  FaultPlan plan;
  plan.crash_slave(0.15, 0).restart_slave(0.45, 0);
  const ScenarioOutcome out = run_scenario(std::move(plan));
  EXPECT_EQ(out.faulty.fault_counters.slave_crashes, 1);
  EXPECT_EQ(out.faulty.fault_counters.slave_restarts, 1);
  EXPECT_GE(out.faulty.fault_counters.slaves_declared_dead, 1);
  EXPECT_GE(out.faulty.fault_counters.slaves_revived, 1);
  EXPECT_GE(out.faulty.fault_counters.flows_quarantined, 1);
  EXPECT_GE(out.faulty.fault_counters.flows_resynced, 1);
  // Downtime 0.3 s plus generous recovery slack.
  expect_bounded_inflation(out, 0.3 + 0.2);
}

TEST(FaultScenario, SlaveRestartResyncsAttainedService) {
  // A short outage late in a transfer: if attained service were lost the
  // 160 Mb flow from machine 0 would restart from zero and pay its full
  // transfer time again; resync caps the damage at downtime + slack.
  FaultPlan plan;
  plan.crash_slave(0.4, 0).restart_slave(0.5, 0);
  const ScenarioOutcome out = run_scenario(std::move(plan));
  EXPECT_GE(out.faulty.fault_counters.flows_resynced, 1);
  EXPECT_FALSE(out.faulty.recovery_latencies_s.empty());
  for (const double r : out.faulty.recovery_latencies_s) {
    EXPECT_GT(r, 0.0);
    EXPECT_LT(r, 0.2);  // revive + reallocate within a few control RTTs
  }
  expect_bounded_inflation(out, 0.1 + 0.2);
}

TEST(FaultScenario, MasterRestartRebuildsViewFromReRegistration) {
  // The controller dies at 0.2 s and returns at 0.5 s. Slaves keep
  // enforcing their last rates while it is down (graceful degradation),
  // clients re-register on restart, and heartbeats resync attained
  // service — so the rebuilt view converges and every coflow finishes.
  FaultPlan plan;
  plan.crash_master(0.2).restart_master(0.5);
  const ScenarioOutcome out = run_scenario(std::move(plan));
  EXPECT_EQ(out.faulty.fault_counters.master_crashes, 1);
  EXPECT_EQ(out.faulty.fault_counters.master_restarts, 1);
  EXPECT_GE(out.faulty.fault_counters.coflows_reregistered, 1);
  // Transfers continue on stale rates during the outage, so the bound is
  // much tighter than the downtime itself.
  expect_bounded_inflation(out, 0.3 + 0.2);
}

TEST(FaultScenario, ArrivalsWhileMasterDownAreRegisteredOnRestart) {
  // Coflow 2 arrives at 0.3 s, inside the master's 0.25–0.55 s outage;
  // its registration RPC cannot land until the restart. It must still
  // complete, paying at most the remaining outage plus slack.
  FaultPlan plan;
  plan.crash_master(0.25).restart_master(0.55);
  const ScenarioOutcome out = run_scenario(std::move(plan));
  // At least the late arriver plus one in-flight coflow re-register (a
  // coflow that finished entirely during the outage rightly does not).
  EXPECT_GE(out.faulty.fault_counters.coflows_reregistered, 2);
  expect_bounded_inflation(out, 0.3 + 0.2);
}

TEST(FaultScenario, HeartbeatLossBurstDoesNotKillHealthySlaves) {
  // A 90% loss burst across 0.15–0.45 s swallows most heartbeats and rate
  // updates. Slaves may transiently be declared dead, but the first
  // surviving heartbeat revives them, finish reports are repaired by the
  // heartbeat finished-flow list, and everything completes.
  FaultPlan plan;
  plan.loss_burst(0.15, 0.45, 0.9);
  const ScenarioOutcome out = run_scenario(std::move(plan));
  EXPECT_EQ(out.faulty.fault_counters.loss_bursts, 1);
  EXPECT_GT(out.faulty.messages_dropped, 0);
  EXPECT_EQ(out.faulty.fault_counters.slaves_declared_dead,
            out.faulty.fault_counters.slaves_revived);
  expect_bounded_inflation(out, 0.3 + 0.3);
}

TEST(FaultScenario, PartitionHealRevivesQuarantinedSlave) {
  // Machine 1 is partitioned from the master for 0.3 s: its daemon keeps
  // sending data at the last rates, but the master hears nothing,
  // declares it dead and re-shares its ports. On heal the slave's
  // announce-heartbeat revives it and its flows rejoin the allocation.
  FaultPlan plan;
  plan.partition(0.15, 0.45, 1);
  const ScenarioOutcome out = run_scenario(std::move(plan));
  EXPECT_EQ(out.faulty.fault_counters.partitions_started, 1);
  EXPECT_EQ(out.faulty.fault_counters.partitions_healed, 1);
  EXPECT_GE(out.faulty.fault_counters.slaves_declared_dead, 1);
  EXPECT_GE(out.faulty.fault_counters.slaves_revived, 1);
  EXPECT_GT(out.faulty.fault_counters.messages_dropped_at_down_endpoint, 0);
  // Data kept flowing at stale rates, so inflation stays small.
  expect_bounded_inflation(out, 0.3 + 0.2);
}

TEST(FaultScenario, CombinedChurnStillCompletesEverything) {
  // Seeded random churn: slave crashes, a master bounce, partitions and
  // loss bursts over the first 1.5 s, all from one seed. The specific
  // sequence is arbitrary but perfectly reproducible.
  ChurnOptions churn;
  churn.start_s = 0.1;
  churn.horizon_s = 1.5;
  churn.mean_gap_s = 0.25;
  churn.min_downtime_s = 0.05;
  churn.max_downtime_s = 0.3;
  FaultPlan plan = random_churn_plan(17, 3, churn);
  ASSERT_GT(plan.size(), 4u);
  const ScenarioOutcome out = run_scenario(std::move(plan));
  const FaultCounters& fc = out.faulty.fault_counters;
  // The run ends when the last coflow completes, so a repair scripted
  // after that may go unfired — but never the other way around, and a
  // crash holding unfinished flows always sees its restart.
  EXPECT_LE(fc.slave_restarts, fc.slave_crashes);
  EXPECT_LE(fc.master_restarts, fc.master_crashes);
  EXPECT_LE(fc.partitions_healed, fc.partitions_started);
  EXPECT_GT(fc.slave_crashes + fc.master_crashes + fc.partitions_started +
                fc.loss_bursts,
            0);
  // Total scripted downtime is at most the churn window; allow it all
  // plus slack for stacked recoveries.
  expect_bounded_inflation(out, 1.5 + 0.5);
}

TEST(FaultScenario, ScenariosAreDeterministic) {
  FaultPlan plan_a;
  plan_a.crash_slave(0.15, 0).restart_slave(0.45, 0).crash_master(0.2)
      .restart_master(0.5);
  FaultPlan plan_b;
  plan_b.crash_slave(0.15, 0).restart_slave(0.45, 0).crash_master(0.2)
      .restart_master(0.5);
  const ScenarioOutcome a = run_scenario(std::move(plan_a));
  const ScenarioOutcome b = run_scenario(std::move(plan_b));
  for (std::size_t k = 0; k < a.faulty.coflows.size(); ++k) {
    EXPECT_EQ(a.faulty.coflows[k].cct, b.faulty.coflows[k].cct);
  }
  EXPECT_EQ(a.faulty.messages_sent, b.faulty.messages_sent);
  EXPECT_EQ(a.faulty.num_reallocations, b.faulty.num_reallocations);
}

TEST(FaultScenario, DeploymentJsonExportsFaultCounters) {
  FaultPlan plan;
  plan.crash_slave(0.15, 0).restart_slave(0.45, 0);
  const ScenarioOutcome out = run_scenario(std::move(plan));
  std::ostringstream os;
  write_deployment_json(os, out.faulty, "ncdrf-live", "scenario");
  const std::string json = os.str();
  EXPECT_NE(json.find("\"scheduler\":\"ncdrf-live\""), std::string::npos);
  EXPECT_NE(json.find("\"slave_crashes\":1"), std::string::npos);
  EXPECT_NE(json.find("\"slave_restarts\":1"), std::string::npos);
  EXPECT_NE(json.find("\"recovery\":{"), std::string::npos);
  EXPECT_EQ(json.back(), '\n');
}

// A scheduler that oversubscribes every link by 3x: the simulator must
// clamp it back to feasibility and still conserve bytes.
class OversubscribingScheduler : public Scheduler {
 public:
  std::string name() const override { return "Oversubscriber"; }
  bool clairvoyant() const override { return false; }
  Allocation allocate(const ScheduleInput& input) override {
    Allocation alloc;
    for (const ActiveCoflow& coflow : input.coflows) {
      for (const ActiveFlow& f : coflow.flows) {
        alloc.set_rate(f.id, 3.0 * input.fabric->capacity(
                                      input.fabric->uplink(f.src)));
      }
    }
    return alloc;
  }
};

TEST(FailureInjection, SimulatorClampsOversubscribingScheduler) {
  const Fabric fabric(2, gbps(1.0));
  const Trace trace = fig3_trace();
  OversubscribingScheduler bad;
  SimOptions options;
  options.validate_allocations = true;  // validated *after* clamping
  const RunResult run = simulate(fabric, trace, bad, options);
  EXPECT_NEAR(run.total_bits_delivered, trace.total_bits(), 10.0);
  for (const CoflowRecord& rec : run.coflows) {
    // Clamped rates can never beat the physics bound.
    EXPECT_GE(rec.cct, rec.min_cct - 1e-9);
  }
}

// A scheduler that refuses to allocate anything: the simulator must detect
// the starvation instead of spinning forever.
class StarvingScheduler : public Scheduler {
 public:
  std::string name() const override { return "Starver"; }
  bool clairvoyant() const override { return false; }
  Allocation allocate(const ScheduleInput& input) override {
    Allocation alloc;
    for (const ActiveCoflow& coflow : input.coflows) {
      for (const ActiveFlow& f : coflow.flows) alloc.set_rate(f.id, 0.0);
    }
    return alloc;
  }
};

TEST(FailureInjection, SimulatorDetectsStarvation) {
  const Fabric fabric(2, gbps(1.0));
  const Trace trace = fig3_trace();
  StarvingScheduler bad;
  EXPECT_THROW(simulate(fabric, trace, bad), CheckError);
}

}  // namespace
}  // namespace ncdrf
