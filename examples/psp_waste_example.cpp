// The paper's worked example (Sec. III-B, Figs. 3-4): two coflows
// contending on four 1 Gbps links, showing how per-link fairness (PS-P)
// wastes bandwidth that demand-correlation-aware policies (DRF, NC-DRF)
// put to work — and that NC-DRF reproduces DRF's allocation *without*
// seeing any flow size.
//
//   ./psp_waste_example
#include <iostream>
#include <memory>

#include "common/table.h"
#include "common/units.h"
#include "core/ncdrf.h"
#include "sched/drf.h"
#include "sched/psp.h"
#include "sim/sim.h"
#include "trace/trace.h"

namespace {

ncdrf::Trace fig3_trace() {
  using namespace ncdrf;
  TraceBuilder builder(2);
  // Coflow-A: 100 Mb from machine 0 and machine 1 into machine 1:
  // demand <100, 100, 0, 200> Mb over (up0, up1, down0, down1).
  builder.begin_coflow(0.0);
  builder.add_flow(0, 1, megabits(100.0));
  builder.add_flow(1, 1, megabits(100.0));
  // Coflow-B: 100 Mb from machine 1 into machines 0 and 1:
  // demand <0, 200, 100, 100> Mb.
  builder.begin_coflow(0.0);
  builder.add_flow(1, 0, megabits(100.0));
  builder.add_flow(1, 1, megabits(100.0));
  return builder.build();
}

}  // namespace

int main() {
  using namespace ncdrf;
  const Fabric fabric(2, gbps(1.0));
  const Trace trace = fig3_trace();

  std::cout << "Paper Fig. 3: coflow-A d=<100,100,0,200> Mb, "
               "coflow-B d=<0,200,100,100> Mb on 1 Gbps links\n\n";

  AsciiTable table({"Policy", "CCT A (s)", "CCT B (s)", "vs DRF"});

  PspScheduler psp_plain(PspOptions{.work_conserving = false});
  DrfScheduler drf;
  NcDrfScheduler ncdrf;

  const RunResult run_drf = simulate(fabric, trace, drf);
  const double base = run_drf.coflows[0].cct;

  auto report = [&](const std::string& name, const RunResult& run) {
    table.add_row({name, AsciiTable::fmt(run.coflows[0].cct, 3),
                   AsciiTable::fmt(run.coflows[1].cct, 3),
                   AsciiTable::fmt(run.coflows[0].cct / base, 2) + "x"});
  };

  report("PS-P (no backfill, Fig. 4a)",
         simulate(fabric, trace, psp_plain));
  report("DRF (Fig. 4b)", run_drf);
  report("NC-DRF (sizes hidden)", simulate(fabric, trace, ncdrf));
  std::cout << table.render() << '\n';

  std::cout
      << "PS-P halves link 2 and link 4 between the coflows but cannot\n"
         "line its per-link gifts up with the coupled links, so each flow\n"
         "runs at 0.25 Gbps and 0.25 Gbps per contended link is wasted\n"
         "(CCT 0.4 s). DRF allocates along the demand correlation and\n"
         "finishes both coflows in 0.3 s — 25% faster. NC-DRF, seeing\n"
         "only flow *counts*, reproduces the DRF allocation exactly.\n";
  return 0;
}
