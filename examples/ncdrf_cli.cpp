// ncdrf_cli: a command-line front end to the whole library, for downstream
// users who want results as CSV rather than C++.
//
// Usage:
//   ncdrf_cli [options]
//     --scheduler <name>     ncdrf|drf|hug|psp|tcp|aalo|varys|fifo|baraat|
//                            persource|perpair        (default: ncdrf)
//     --trace <path>         Coflow-Benchmark file (default: synthetic)
//     --seed <n>             synthetic trace seed     (default: 20180701)
//     --coflows <n>          synthetic coflow count   (default: 526)
//     --racks <n>            synthetic rack count     (default: 150)
//     --duration <s>         synthetic arrival window (default: 3600)
//     --capacity-gbps <g>    per-port capacity        (default: 1.0)
//     --csv <path>           write per-coflow results as CSV
//     --intervals-csv <path> write per-interval utilization/disparity CSV
//     --trace-json <path>    write a Chrome trace-event file (Perfetto)
//     --metrics-json <path>  write the counters/histograms registry JSON
//     --progress-csv <path>  write per-coflow progress samples as CSV
//     --audit-json <path>    run the live Theorem 1 fairness audit and
//                            write its report (e_max, violations)
//
// Example:
//   ./ncdrf_cli --scheduler psp --coflows 100 --csv psp.csv
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "common/check.h"
#include "common/units.h"
#include "core/registry.h"
#include "metrics/eval.h"
#include "metrics/export.h"
#include "obs/audit.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "sim/sim.h"
#include "trace/benchmark_format.h"
#include "trace/synthetic_fb.h"

namespace {

struct CliOptions {
  std::string scheduler = "ncdrf";
  std::string trace_path;
  std::string csv_path;
  std::string intervals_csv_path;
  std::string trace_json_path;
  std::string metrics_json_path;
  std::string progress_csv_path;
  std::string audit_json_path;
  ncdrf::SyntheticFbOptions synthetic;
  double capacity_gbps = 1.0;
};

CliOptions parse_args(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      NCDRF_CHECK(i + 1 < argc, "missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--scheduler") {
      options.scheduler = next();
    } else if (arg == "--trace") {
      options.trace_path = next();
    } else if (arg == "--seed") {
      options.synthetic.seed = std::stoull(next());
    } else if (arg == "--coflows") {
      options.synthetic.num_coflows = std::stoi(next());
    } else if (arg == "--racks") {
      options.synthetic.num_racks = std::stoi(next());
    } else if (arg == "--duration") {
      options.synthetic.duration_s = std::stod(next());
    } else if (arg == "--capacity-gbps") {
      options.capacity_gbps = std::stod(next());
    } else if (arg == "--csv") {
      options.csv_path = next();
    } else if (arg == "--intervals-csv") {
      options.intervals_csv_path = next();
    } else if (arg == "--trace-json") {
      options.trace_json_path = next();
    } else if (arg == "--metrics-json") {
      options.metrics_json_path = next();
    } else if (arg == "--progress-csv") {
      options.progress_csv_path = next();
    } else if (arg == "--audit-json") {
      options.audit_json_path = next();
    } else {
      NCDRF_CHECK(false, "unknown argument: " + arg);
    }
  }
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ncdrf;
  try {
    const CliOptions options = parse_args(argc, argv);

    const Trace trace = options.trace_path.empty()
                            ? generate_synthetic_fb(options.synthetic)
                            : load_benchmark_trace(options.trace_path);
    const Fabric fabric(trace.num_machines, gbps(options.capacity_gbps));
    const auto scheduler = make_scheduler(options.scheduler);

    SimOptions sim_options;
    sim_options.record_intervals = !options.intervals_csv_path.empty();
    sim_options.record_progress_timeseries =
        !options.progress_csv_path.empty();

    // Observability attachments, each enabled only when its output was
    // requested so the default CLI run stays allocation-free of obs state.
    obs::Tracer tracer;
    if (!options.trace_json_path.empty()) sim_options.tracer = &tracer;
    obs::MetricsRegistry metrics;
    if (!options.metrics_json_path.empty()) sim_options.metrics = &metrics;
    std::unique_ptr<obs::FairnessAuditor> auditor;
    if (!options.audit_json_path.empty()) {
      auditor = std::make_unique<obs::FairnessAuditor>(fabric);
      sim_options.auditor = auditor.get();
    }

    const RunResult run = simulate(fabric, trace, *scheduler, sim_options);

    if (!options.csv_path.empty()) {
      std::ofstream out(options.csv_path);
      NCDRF_CHECK(out.good(), "cannot write " + options.csv_path);
      write_coflow_csv(out, run);
      std::cout << "wrote " << run.coflows.size() << " coflow rows to "
                << options.csv_path << "\n";
    }
    if (!options.intervals_csv_path.empty()) {
      std::ofstream out(options.intervals_csv_path);
      NCDRF_CHECK(out.good(), "cannot write " + options.intervals_csv_path);
      write_intervals_csv(out, run);
      std::cout << "wrote " << run.intervals.size() << " interval rows to "
                << options.intervals_csv_path << "\n";
    }
    if (!options.trace_json_path.empty()) {
      std::ofstream out(options.trace_json_path);
      NCDRF_CHECK(out.good(), "cannot write " + options.trace_json_path);
      tracer.write_chrome_json(out);
      std::cout << "wrote " << tracer.size() << " trace events to "
                << options.trace_json_path << "\n";
    }
    if (!options.metrics_json_path.empty()) {
      std::ofstream out(options.metrics_json_path);
      NCDRF_CHECK(out.good(), "cannot write " + options.metrics_json_path);
      metrics.write_json(out);
      std::cout << "wrote metrics registry to " << options.metrics_json_path
                << "\n";
    }
    if (!options.progress_csv_path.empty()) {
      std::ofstream out(options.progress_csv_path);
      NCDRF_CHECK(out.good(), "cannot write " + options.progress_csv_path);
      obs::write_progress_csv(out, run.progress);
      std::cout << "wrote " << run.progress.size() << " progress samples to "
                << options.progress_csv_path << "\n";
    }
    if (auditor != nullptr) {
      auditor->finalize();
      std::ofstream out(options.audit_json_path);
      NCDRF_CHECK(out.good(), "cannot write " + options.audit_json_path);
      auditor->write_report_json(out);
      std::cout << "audited " << auditor->coflows_checked() << " coflows ("
                << auditor->violations().size()
                << " Theorem 1 violations) -> " << options.audit_json_path
                << "\n";
    }

    const Summary slow = summarize(slowdowns(run));
    std::cout << scheduler->name() << " on " << run.coflows.size()
              << " coflows: makespan " << run.makespan << " s, mean slowdown "
              << slow.mean << ", p95 " << slow.p95 << ", "
              << run.num_allocations << " allocations\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
