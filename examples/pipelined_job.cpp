// Pipelined multi-stage jobs: the scenario that motivates non-clairvoyant
// coflow scheduling (paper Sec. I-II). Later stages' coflows do not exist
// when earlier ones are scheduled — no scheduler can know the future — and
// NC-DRF needs nothing beyond the flow counts of whatever is currently
// running.
//
// Two jobs share a 12-machine cluster: a 4-stage ring pipeline and a
// map-shuffle-aggregate-collect diamond. The example prints per-stage and
// per-job timings under a chosen policy.
//
//   ./pipelined_job [scheduler]     # default: ncdrf
#include <iostream>
#include <string>

#include "common/table.h"
#include "common/units.h"
#include "core/registry.h"
#include "job/job.h"
#include "trace/patterns.h"

int main(int argc, char** argv) {
  using namespace ncdrf;
  const std::string name = argc >= 2 ? argv[1] : "ncdrf";
  const auto scheduler = make_scheduler(name);

  const Fabric fabric(12, gbps(1.0));
  std::vector<JobSpec> jobs;
  jobs.push_back(make_linear_pipeline("ring-pipeline", /*arrival=*/0.0,
                                      /*stages=*/4, machine_range(0, 6),
                                      megabits(600.0),
                                      /*compute_delay_s=*/0.2));
  jobs.push_back(make_diamond_job("diamond", /*arrival=*/0.5,
                                  machine_range(2, 4), machine_range(6, 4),
                                  /*sink=*/11, megabits(400.0)));

  const JobSetResult result = run_jobs(fabric, jobs, *scheduler);

  std::cout << "Pipelined jobs under " << scheduler->name()
            << " on a 12-machine, 1 Gbps fabric\n\n";
  AsciiTable stages({"Stage", "Released (s)", "Completed (s)", "CCT (s)"});
  for (const StageResult& s : result.stages) {
    stages.add_row(
        {jobs[static_cast<std::size_t>(s.job)]
             .stages[static_cast<std::size_t>(s.stage)]
             .name,
         AsciiTable::fmt(s.release_time, 2),
         AsciiTable::fmt(s.completion_time, 2),
         AsciiTable::fmt(s.coflow_cct, 2)});
  }
  std::cout << stages.render() << '\n';

  AsciiTable table({"Job", "Arrival (s)", "Completion (s)", "Duration (s)"});
  for (const JobResult& job : result.jobs) {
    table.add_row({job.name, AsciiTable::fmt(job.arrival, 1),
                   AsciiTable::fmt(job.completion, 2),
                   AsciiTable::fmt(job.duration, 2)});
  }
  std::cout << table.render();
  std::cout << "\nStage coflows were created on the fly as dependencies\n"
               "completed — the scheduler never saw a byte count.\n";
  return 0;
}
