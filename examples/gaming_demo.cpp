// Gaming demo: how much bandwidth can a selfish tenant steal from each
// policy by misreporting its communication pattern?
//
// The paper (Sec. III-B) criticizes per-flow fairness: "a tenant could
// take an arbitrarily high share of network bandwidth by initiating more
// flows". This example measures that channel across policies: an honest
// victim coflow shares a fabric with a contender that either plays fair or
// splits every flow into `k` parallel sub-flows (same bytes, more flows).
//
// Expected: TCP rewards splitting linearly; NC-DRF is far more robust —
// splitting every flow k-ways scales n_k^i *and* n̄_k together, so the
// flow-count correlation vector ĉ_k is unchanged and the contender's
// DRF share stays put (only the intra-coflow split changes). This is a
// strategy-proofness property NC-DRF inherits from DRF.
//
//   ./gaming_demo
#include <iostream>

#include "common/table.h"
#include "common/units.h"
#include "core/registry.h"
#include "sim/sim.h"
#include "trace/trace.h"

namespace {

// Victim: a short 2-flow shuffle into machine 3. Contender: a much larger
// long-running shuffle into the same machine, each of its two logical
// flows split into `split` parallel sub-flows (same total bytes). Because
// the contender outlives the victim, the victim's CCT directly reflects
// the share it could defend while the contender was gaming.
ncdrf::Trace make_trace(int split) {
  using namespace ncdrf;
  TraceBuilder builder(4);
  builder.begin_coflow(0.0);  // victim
  builder.add_flow(0, 3, megabytes(50.0));
  builder.add_flow(1, 3, megabytes(50.0));
  builder.begin_coflow(0.0);  // contender, 20x the victim's volume
  for (int s = 0; s < split; ++s) {
    builder.add_flow(0, 3, megabytes(1000.0 / split));
    builder.add_flow(2, 3, megabytes(1000.0 / split));
  }
  return builder.build();
}

}  // namespace

int main() {
  using namespace ncdrf;
  const Fabric fabric(4, gbps(1.0));

  std::cout
      << "A short victim and a 20x-larger contender shuffle into machine 3.\n"
         "The contender splits each flow into k sub-flows (same bytes).\n"
         "Numbers are the victim's CCT in seconds — a rising CCT means\n"
         "the contender successfully stole bandwidth by splitting.\n\n";

  AsciiTable table({"Policy", "k=1 (honest)", "k=4", "k=16",
                    "victim slowdown k=16/k=1"});
  for (const std::string name : {"tcp", "psp", "ncdrf", "drf"}) {
    std::vector<double> ccts;
    for (const int split : {1, 4, 16}) {
      const Trace trace = make_trace(split);
      const auto scheduler = make_scheduler(name);
      const RunResult run = simulate(fabric, trace, *scheduler);
      ccts.push_back(run.coflows[0].cct);
    }
    table.add_row({make_scheduler(name)->name(), AsciiTable::fmt(ccts[0], 2),
                   AsciiTable::fmt(ccts[1], 2), AsciiTable::fmt(ccts[2], 2),
                   AsciiTable::fmt(ccts[2] / ccts[0], 2) + "x"});
  }
  std::cout << table.render();
  std::cout << "\nUnder TCP the contender's share on the shared downlink\n"
               "grows with its flow count; under NC-DRF splitting leaves\n"
               "the flow-count correlation vector unchanged, so the\n"
               "victim's completion time barely moves.\n";
  return 0;
}
