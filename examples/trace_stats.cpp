// trace_stats: print the statistical profile of a workload — the synthetic
// FB-like twin by default, or any Coflow-Benchmark file. Use it to check
// how a trace will exercise the schedulers (hotspots, bin mix, disparity)
// and to compare a synthetic trace against the real one.
//
//   ./trace_stats                 # default synthetic twin
//   ./trace_stats <seed>          # re-rolled synthetic twin
//   ./trace_stats --file <path>   # a Coflow-Benchmark trace file
#include <iostream>
#include <string>

#include "common/units.h"
#include "fabric/fabric.h"
#include "trace/benchmark_format.h"
#include "trace/synthetic_fb.h"
#include "trace/trace_stats.h"

int main(int argc, char** argv) {
  using namespace ncdrf;
  Trace trace;
  if (argc >= 3 && std::string(argv[1]) == "--file") {
    trace = load_benchmark_trace(argv[2]);
    std::cout << "trace file: " << argv[2] << "\n";
  } else {
    SyntheticFbOptions options;
    if (argc >= 2) options.seed = std::stoull(argv[1]);
    trace = generate_synthetic_fb(options);
    std::cout << "synthetic FB-like trace, seed " << options.seed << "\n";
  }
  const Fabric fabric(trace.num_machines, gbps(1.0));
  std::cout << format_trace_stats(compute_trace_stats(trace, fabric));
  return 0;
}
