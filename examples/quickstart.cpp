// Quickstart: the smallest end-to-end use of the NC-DRF library.
//
// Builds a 4-machine fabric, submits two coflows whose sizes the scheduler
// never sees, runs the event-driven simulator under NC-DRF, and prints the
// resulting allocation behaviour and coflow completion times.
//
//   ./quickstart
#include <iostream>

#include "common/units.h"
#include "core/ncdrf.h"
#include "fabric/fabric.h"
#include "sim/sim.h"
#include "trace/trace.h"

int main() {
  using namespace ncdrf;

  // A 4-machine cluster with 1 Gbps port links, modelled as one
  // non-blocking switch (the only contention is at the 8 machine links).
  const Fabric fabric(4, gbps(1.0));

  // Two coflows. The scheduler will only ever see flow *endpoints* —
  // NC-DRF is non-clairvoyant, so these sizes stay hidden from it.
  TraceBuilder builder(fabric.num_machines());
  builder.begin_coflow(/*arrival_time_s=*/0.0);  // a 2×1 shuffle
  builder.add_flow(/*src=*/0, /*dst=*/3, megabytes(100.0));
  builder.add_flow(/*src=*/1, /*dst=*/3, megabytes(100.0));
  builder.begin_coflow(/*arrival_time_s=*/0.0);  // a 1×2 broadcast-ish stage
  builder.add_flow(/*src=*/1, /*dst=*/2, megabytes(50.0));
  builder.add_flow(/*src=*/1, /*dst=*/3, megabytes(50.0));
  const Trace trace = builder.build();

  // NC-DRF with the paper's defaults: flow-count DRF + one backfill round.
  NcDrfScheduler scheduler;

  const RunResult run = simulate(fabric, trace, scheduler);

  std::cout << "NC-DRF quickstart on a " << fabric.num_machines()
            << "-machine, 1 Gbps fabric\n\n";
  for (const CoflowRecord& rec : run.coflows) {
    std::cout << "coflow " << rec.id << ": " << rec.width << " flows, "
              << to_megabytes(rec.total_bits) << " MB total"
              << " -> CCT " << rec.cct << " s"
              << " (minimum possible " << rec.min_cct << " s, slowdown "
              << rec.cct / rec.min_cct << ")\n";
  }
  std::cout << "\nmakespan " << run.makespan << " s, "
            << run.num_allocations << " allocation rounds, "
            << to_gbps(run.total_bits_delivered) << " Gb delivered\n";
  return 0;
}
