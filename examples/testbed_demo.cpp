// Testbed demo: the paper's EC2 micro-benchmark (Sec. V-B, Table III) on
// the master/slave cluster emulation — 60 machines, 200 Mbps links, three
// coflows with all-to-all and pairwise patterns arriving 10 s apart.
//
//   ./testbed_demo [scheduler]     # default: ncdrf (tcp|psp|drf|hug|...)
#include <iostream>
#include <string>

#include "cluster/deployment.h"
#include "common/table.h"
#include "common/units.h"
#include "core/registry.h"
#include "trace/microbench.h"

int main(int argc, char** argv) {
  using namespace ncdrf;

  const std::string name = argc >= 2 ? argv[1] : "ncdrf";
  const auto scheduler = make_scheduler(name);

  const Trace trace = build_testbed_trace({});
  const Fabric fabric(60, mbps(200.0));

  std::cout << "Table III micro-benchmark under " << scheduler->name()
            << " (60 machines, 200 Mbps links)\n"
            << "  coflow-A: all-to-all, 360 flows, arrives 0 s\n"
            << "  coflow-B: pairwise one-to-one, 60 flows, arrives 10 s\n"
            << "  coflow-C: pairwise one-to-one, 60 flows, arrives 20 s\n\n";

  DeploymentOptions options;
  options.record_progress = true;
  const DeploymentResult result =
      run_deployment(fabric, trace, *scheduler, options);

  AsciiTable table({"Coflow", "Arrival (s)", "CCT (s)", "Completion (s)"});
  const char* names[] = {"A (all-to-all)", "B (pairwise)", "C (pairwise)"};
  for (std::size_t k = 0; k < result.coflows.size(); ++k) {
    const CoflowRecord& rec = result.coflows[k];
    table.add_row({names[k], AsciiTable::fmt(rec.arrival, 0),
                   AsciiTable::fmt(rec.cct, 1),
                   AsciiTable::fmt(rec.completion, 1)});
  }
  std::cout << table.render();
  std::cout << "\nmaster reallocated " << result.num_reallocations
            << " times; " << result.messages_sent
            << " control messages on the bus\n";
  return 0;
}
