// Trace replay: run a Coflow-Benchmark-style workload under every policy
// in the design space and print the paper's headline metrics.
//
// Usage:
//   ./trace_replay                                  # fast synthetic subset
//   ./trace_replay <seed> [coflows racks duration]  # custom synthetic trace
//   ./trace_replay --file <path>                    # real benchmark file
//   ./trace_replay --trace-dir <dir>   # per-cell Chrome trace files
//   ./trace_replay --sweep-json <path> # sweep perf + merged counters JSON
//
// This is the programmable counterpart of the bench/ binaries: point it at
// the real FB2010-1Hr-150-0.txt if you have it, and the same pipeline runs.
//
// All policies run through the parallel sweep runner (runner/sweep.h):
// one grid cell per policy, NCDRF_BENCH_THREADS (default: hardware
// concurrency) worker threads, results bit-identical to serial runs.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/table.h"
#include "common/units.h"
#include "core/registry.h"
#include "metrics/eval.h"
#include "metrics/export.h"
#include "runner/sweep.h"
#include "sim/sim.h"
#include "trace/benchmark_format.h"
#include "trace/synthetic_fb.h"

int main(int argc, char** argv) {
  using namespace ncdrf;

  // Flags may appear anywhere; what remains is the positional synthetic
  // spec (seed [coflows racks duration]).
  std::string file_path;
  std::string trace_dir;
  std::string sweep_json_path;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      NCDRF_CHECK(i + 1 < argc, "missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--file") {
      file_path = next();
    } else if (arg == "--trace-dir") {
      trace_dir = next();
    } else if (arg == "--sweep-json") {
      sweep_json_path = next();
    } else {
      positional.push_back(arg);
    }
  }

  Trace trace;
  if (!file_path.empty()) {
    trace = load_benchmark_trace(file_path);
    std::cout << "loaded trace " << file_path << ": ";
  } else {
    SyntheticFbOptions options;
    options.num_coflows = 120;  // a fast subset; bench/ runs the full 526
    options.num_racks = 50;
    options.duration_s = 600.0;
    if (positional.size() >= 1) options.seed = std::stoull(positional[0]);
    if (positional.size() >= 4) {
      options.num_coflows = std::stoi(positional[1]);
      options.num_racks = std::stoi(positional[2]);
      options.duration_s = std::stod(positional[3]);
    }
    trace = generate_synthetic_fb(options);
    std::cout << "synthetic FB-like trace (seed " << options.seed << "): ";
  }
  std::cout << trace.coflows.size() << " coflows, " << trace.total_flows
            << " flows, " << to_megabytes(trace.total_bits()) / 1024.0
            << " GB over " << trace.num_machines << " racks\n\n";

  const Fabric fabric(trace.num_machines, gbps(1.0));

  // One sweep cell per policy; DRF (in the same grid) is the
  // normalization baseline for every other policy.
  SweepSpec spec;
  spec.fabric = fabric;
  spec.policies = {"tcp", "psp", "ncdrf", "drf", "hug", "aalo", "varys"};
  spec.traces.push_back(SweepCase{"replay", std::move(trace)});
  spec.threads =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  if (const char* env = std::getenv("NCDRF_BENCH_THREADS")) {
    spec.threads = std::max(1, std::stoi(env));
  }
  spec.trace_dir = trace_dir;
  const SweepResult sweep = run_sweep(spec);
  if (!trace_dir.empty()) {
    std::cout << "wrote " << sweep.cells.size()
              << " Chrome trace files under " << trace_dir << "/\n";
  }
  if (!sweep_json_path.empty()) {
    std::ofstream out(sweep_json_path);
    NCDRF_CHECK(out.good(), "cannot write " + sweep_json_path);
    write_sweep_json(out, sweep, "trace_replay");
    std::cout << "wrote sweep perf JSON to " << sweep_json_path << "\n";
  }

  const auto run_of = [&](const std::string& name) -> const RunResult& {
    for (const SweepCellResult& cell : sweep.cells) {
      if (cell.policy == name) return cell.run;
    }
    NCDRF_CHECK(false, "policy missing from sweep: " + name);
    std::abort();  // unreachable; NCDRF_CHECK throws
  };
  const RunResult& run_drf = run_of("drf");

  AsciiTable table({"Policy", "Avg CCT (s)", "Avg norm. CCT", "Avg slowdown",
                    "Util (Gbps)", "P95 disparity"});
  for (const std::string& name : spec.policies) {
    const auto sched = make_scheduler(name);
    const RunResult& run = run_of(name);

    double avg_cct = 0.0;
    for (const CoflowRecord& rec : run.coflows) avg_cct += rec.cct;
    avg_cct /= static_cast<double>(run.coflows.size());

    const Summary norm = summarize(normalized_ccts(run, run_drf));
    const Summary slow = summarize(slowdowns(run));
    const WeightedCdf disparity = disparity_cdf(run);

    table.add_row({sched->name(), AsciiTable::fmt(avg_cct, 2),
                   AsciiTable::fmt(norm.mean, 2),
                   AsciiTable::fmt(slow.mean, 2),
                   AsciiTable::fmt(to_gbps(average_link_usage(run)), 1),
                   disparity.empty()
                       ? std::string("-")
                       : AsciiTable::fmt(disparity.quantile(0.95), 1)});
  }
  std::cout << table.render();
  std::cout << "\n(normalized CCT is relative to DRF; disparity is the\n"
               " time-weighted 95th percentile of max/min coflow progress)\n";
  return 0;
}
