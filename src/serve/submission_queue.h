// SubmissionQueue: the per-client front door of the serving layer.
//
// Each client owns one bounded FIFO queue of coflow submissions; the
// serving front-end (serve/server.h) drains every queue into one batched
// admission per epoch. The queue is thread-safe (a client thread enqueues
// while the server thread drains — the soak tier drives it with real
// threads), yet fully deterministic when driven single-threaded in
// virtual time, which is what the deterministic load tests and the bench
// do.
//
// Admission control lives at both ends:
//   * the bounded capacity rejects at enqueue (try_enqueue returns false
//     and the reject is counted) — the client sees the failure
//     immediately, like a full TCP accept queue;
//   * the server publishes an advisory Backpressure level (watermarks on
//     the total backlog) that well-behaved closed-loop clients read to
//     slow down; open-loop generators ignore it and are shed instead.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "coflow/flow.h"

namespace ncdrf::serve {

// Server-published admission advice, monotone in backlog severity.
enum class Backpressure : int {
  kOk = 0,        // backlog below the slowdown watermark
  kSlowdown = 1,  // backlog at/above the slowdown watermark: ease off
  kShed = 2,      // backlog at/above the shed watermark: server is dropping
};

// One coflow submission as a client hands it to the front-end. Flow and
// coflow ids must be unique across all clients of one server (the
// LoadGenerator assigns them densely in submit-time order).
struct Submission {
  CoflowId coflow = -1;
  int client = -1;
  double submit_time = 0.0;  // seconds on the run's clock (virtual or wall)
  double weight = 1.0;
  // Registered with sizes (clairvoyant policies) or stripped (the
  // non-clairvoyant contract) — same switch the deployment driver uses.
  bool sizes_known = false;
  std::vector<Flow> flows;
  // Modeled dwell time: the server retires the coflow this long after
  // admission (virtual-time load tests / bench). <= 0 = never departs.
  double lifetime_s = 0.0;
  // Causal trace/span id stamped by the submitter (0 = untraced). The
  // serving front-end threads it through registration into the master's
  // RateUpdate pushes, so end-to-end scheduling latency decomposes into
  // queue/admit/alloc/push stages per submission.
  std::uint64_t trace_id = 0;
};

class SubmissionQueue {
 public:
  // `capacity` bounds the backlog of this client; must be >= 1.
  SubmissionQueue(int client, std::size_t capacity);

  SubmissionQueue(const SubmissionQueue&) = delete;
  SubmissionQueue& operator=(const SubmissionQueue&) = delete;

  int client() const { return client_; }
  std::size_t capacity() const { return capacity_; }

  // Enqueues one submission; false (and a counted reject) when full.
  bool try_enqueue(Submission submission);

  // Pops up to `max` submissions in FIFO order into `out` (appended).
  // Returns the number popped. Called by the server thread.
  std::size_t drain(std::size_t max, std::vector<Submission>& out);

  // Pops up to `max` submissions and drops them (admission-control
  // shedding above the shed watermark). Returns the number shed.
  std::size_t shed(std::size_t max);

  std::size_t size() const;

  // Monotone counters, consistent with each other under the queue lock.
  long long accepted() const;
  long long rejected() const;
  long long shed_count() const;

  // Advisory backpressure: written by the server each epoch, readable by
  // the client at any time without taking the queue lock.
  Backpressure level() const {
    return static_cast<Backpressure>(level_.load(std::memory_order_relaxed));
  }
  void set_level(Backpressure level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }

 private:
  const int client_;
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<Submission> items_;
  long long accepted_ = 0;
  long long rejected_ = 0;
  long long shed_ = 0;
  std::atomic<int> level_{static_cast<int>(Backpressure::kOk)};
};

}  // namespace ncdrf::serve
