#include "serve/submission_queue.h"

#include <utility>

#include "common/check.h"

namespace ncdrf::serve {

SubmissionQueue::SubmissionQueue(int client, std::size_t capacity)
    : client_(client), capacity_(capacity) {
  NCDRF_CHECK(capacity >= 1, "submission queue needs capacity >= 1");
}

bool SubmissionQueue::try_enqueue(Submission submission) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (items_.size() >= capacity_) {
    ++rejected_;
    return false;
  }
  items_.push_back(std::move(submission));
  ++accepted_;
  return true;
}

std::size_t SubmissionQueue::drain(std::size_t max,
                                   std::vector<Submission>& out) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t popped = 0;
  while (popped < max && !items_.empty()) {
    out.push_back(std::move(items_.front()));
    items_.pop_front();
    ++popped;
  }
  return popped;
}

std::size_t SubmissionQueue::shed(std::size_t max) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t dropped = 0;
  while (dropped < max && !items_.empty()) {
    items_.pop_front();
    ++dropped;
  }
  shed_ += static_cast<long long>(dropped);
  return dropped;
}

std::size_t SubmissionQueue::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return items_.size();
}

long long SubmissionQueue::accepted() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return accepted_;
}

long long SubmissionQueue::rejected() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return rejected_;
}

long long SubmissionQueue::shed_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return shed_;
}

}  // namespace ncdrf::serve
