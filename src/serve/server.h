// ServeFront: the online serving front-end — batched admission, epoch
// reallocation, bounded-staleness rate pushes, and backpressure on top of
// the cluster Master (paper Sec. V-B's register API, made a long-running
// service).
//
// The deployment driver (cluster/deployment.h) replays a *finite* trace
// and reallocates per arrival; a serving master instead faces an unbounded
// arrival stream, where per-arrival reallocation melts down under load
// (one Algorithm-1 solve per coflow). The front-end amortizes: clients
// enqueue into per-client bounded SubmissionQueues, and once per *epoch*
// the server drains every queue round-robin into one batched admission,
// runs exactly one Scheduler::allocate over the merged view
// (Master::compute_allocation), and pushes fresh rate vectors to slaves.
//
// Push policy is bounded-staleness rather than push-everything: a slave
// whose fresh rates differ from its last pushed vector only in magnitude
// (within push_threshold) is deferred, but never past the staleness
// budget — the server force-pushes before (now − first divergence) could
// exceed staleness_s. Structural changes (a flow appearing on or leaving a
// slave) always push in the same epoch, so a new coflow's first rates go
// out in the epoch that admits it. staleness_s = 0 degenerates to
// push-on-any-change, which is exactly Master::reallocate's behaviour.
//
// Backpressure: the server publishes a Backpressure level from watermarks
// on the total backlog (advisory, read lock-free by clients) and, above
// the shed watermark, drops the oldest queued submissions down to the
// watermark, counting every shed. The bounded queues themselves reject at
// enqueue when full — three layers (reject, slow down, shed), like an RPC
// server's accept queue + load shedding.
//
// The front-end is clock-agnostic: step_epoch(now) takes a monotone
// timestamp. Virtual-time drivers (run(), the load tests, the bench) pass
// an epoch grid and are bit-deterministic; the soak tier passes wall-clock
// seconds while generator threads enqueue concurrently.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/master.h"
#include "serve/submission_queue.h"

namespace ncdrf::obs {
class MetricsRegistry;
class Tracer;
class Timeseries;
class FlightRecorder;
struct Counter;
struct Gauge;
class Histogram;
}  // namespace ncdrf::obs

namespace ncdrf::scenario {
class WorkloadSource;
}  // namespace ncdrf::scenario

namespace ncdrf::serve {

struct ServeOptions {
  // Epoch length on the driver's clock. One allocation kernel call per
  // epoch, at most — and only when the view changed.
  double epoch_s = 1e-3;
  // Cap on admissions per epoch across all clients (the drain is
  // round-robin, one submission per client per round, so no client can
  // starve another). <= 0 means unbounded.
  int max_batch_per_epoch = 256;
  // Per-client SubmissionQueue capacity.
  std::size_t queue_capacity = 1024;
  // Total-backlog watermarks (counted after admission): at/above
  // slowdown_watermark the published level is kSlowdown; at/above
  // shed_watermark it is kShed and the server drops the oldest queued
  // submissions down to shed_watermark.
  std::size_t slowdown_watermark = 512;
  std::size_t shed_watermark = 1024;
  // Bounded-staleness budget for rate pushes: a slave with a pending
  // magnitude-only rate change is pushed no later than staleness_s after
  // the change first appeared. 0 = push on any change (no deferral).
  double staleness_s = 0.0;
  // Relative rate divergence below which a slave's fresh vector counts as
  // unchanged (per flow: |fresh − pushed| <= threshold · max(pushed, fresh)).
  double push_threshold = 0.0;
  // Destination for rate pushes (best-effort, like Master::reallocate).
  // Null = rates are computed and accounted but not transported — the
  // bench and pure-latency tests run busless.
  SimBus* bus = nullptr;
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  // Telemetry plane (both optional, both must outlive the front-end). The
  // timeseries is sampled once at the end of every epoch; the flight
  // recorder is attached to tracer/metrics/timeseries, fed EpochVitals
  // each epoch, and handed this front-end's config_json() for bundles.
  obs::Timeseries* timeseries = nullptr;
  obs::FlightRecorder* flight = nullptr;
  // Transport policy for rate pushes over `bus`. max_attempts = 1 keeps
  // the historical best-effort send; > 1 retransmits lost pushes with the
  // bus's per-destination exponential backoff (a retried push arrives
  // late, never early — bounded staleness still holds at the sender).
  RetryPolicy push_retry;
  MasterOptions master;  // forget_retired is forced on (serving contract)
};

// Point-in-time latency record of one admitted submission, for the
// admit_hook (tests assert FIFO order and latency accounting off this).
struct AdmitRecord {
  CoflowId coflow = -1;
  int client = -1;
  double submit_time = 0.0;
  double admit_time = 0.0;
  int num_flows = 0;
  double flow_bits = 0.0;  // sum of the admitted flows' sizes (ground truth)
};

class ServeFront {
 public:
  ServeFront(const Fabric& fabric, Scheduler& scheduler, int num_clients,
             const ServeOptions& options);
  ~ServeFront();

  ServeFront(const ServeFront&) = delete;
  ServeFront& operator=(const ServeFront&) = delete;

  int num_clients() const { return static_cast<int>(queues_.size()); }
  SubmissionQueue& queue(int client) { return *queues_[client]; }
  const ServeOptions& options() const { return options_; }
  Master& master() { return master_; }

  // Runs one epoch at time `now` (monotone across calls): retires due
  // coflows, sheds above the watermark, admits one round-robin batch,
  // reallocates if the view changed, pushes rate vectors within the
  // staleness budget, and publishes backpressure levels.
  void step_epoch(double now);

  // Virtual-time driver over the scenario spine: pulls due submissions
  // off the source at each epoch tick, enqueues them on their client's
  // queue (open loop — a rejected submission is dropped and counted,
  // never retried), and steps epochs until the source is exhausted and
  // the backlog is empty. Returns the time of the last epoch stepped.
  // Deterministic for deterministic sources.
  double run(scenario::WorkloadSource& source);

  // Per-client-schedule convenience wrapper: adapts the schedules through
  // the spine (clients are stamped from their slot index, preserving the
  // historical routing contract).
  double run(const std::vector<std::vector<Submission>>& schedule);

  // --- Introspection (epoch counters are all monotone) -------------------
  long long epochs() const { return epochs_; }
  long long admitted() const { return admitted_; }
  long long allocations() const { return allocations_; }
  long long rate_pushes() const { return rate_pushes_; }
  long long pushes_deferred() const { return pushes_deferred_; }
  long long total_rejected() const;
  long long total_shed() const;
  std::size_t backlog() const;  // queued submissions across all clients
  Backpressure level() const { return level_; }
  // Largest (push time − first divergence time) over all pushes so far:
  // the observed staleness, which the bounded-staleness contract keeps
  // <= staleness_s + one epoch of quantization.
  double max_push_staleness() const { return max_push_staleness_; }
  // Allocation and view of the last epoch that reallocated (valid until
  // the next one; null view before the first).
  const Allocation& last_allocation() const { return alloc_; }
  const ScheduleInput* last_view() const { return last_view_; }

  // The serving configuration as a one-line JSON object — embedded in
  // flight-recorder bundles so a postmortem carries the knobs that shaped
  // the run. Deterministic formatting.
  std::string config_json() const;

  // --- Test hooks --------------------------------------------------------
  // Called synchronously inside step_epoch; both default to unset. The
  // alloc hook fires after each allocation kernel call, before pushes.
  std::function<void(const AdmitRecord&)> admit_hook;
  std::function<void(double now, const ScheduleInput&, const Allocation&)>
      alloc_hook;

 private:
  struct Departure {
    double time;
    CoflowId coflow;
    bool operator>(const Departure& other) const {
      return time != other.time ? time > other.time : coflow > other.coflow;
    }
  };
  // Last vector pushed to one slave, plus the staleness clock.
  struct PushState {
    std::map<FlowId, double> rates;  // ordered: comparison is a merge walk
    double dirty_since = -1.0;       // first divergence time; <0 = clean
  };
  // Causal stage clock of one admitted coflow: the span opened at
  // submission and closed by the first rate push that covers any of its
  // flows. Erased once closed (or at retirement if it never closes).
  struct Causal {
    std::uint64_t trace_id = 0;  // 0 = untraced (stages still measured)
    double submit = 0.0;
    double admit = 0.0;
    double alloc = -1.0;  // first covering allocation; < 0 = not yet
  };
  // One flow still waiting for its first rate push: the owning coflow
  // (causal lookup) plus the submit time (push-latency histogram).
  struct AwaitingPush {
    double submit = 0.0;
    CoflowId coflow = -1;
  };

  void retire_due(double now);
  void shed_over_watermark(double now);
  int admit_batch(double now);
  void reallocate(double now);
  void push_rates(double now);
  void publish_level(double now);

  const ServeOptions options_;
  const int num_machines_;  // fabric size, for spine adapters
  Master master_;
  std::vector<std::unique_ptr<SubmissionQueue>> queues_;
  std::vector<Submission> batch_;  // drain scratch, reused every epoch
  std::vector<FlowFinishedMsg> finish_batch_;  // retire scratch, ditto

  // Admitted-coflow bookkeeping for modeled departures.
  std::unordered_map<CoflowId, std::vector<FlowId>> live_flows_;
  std::priority_queue<Departure, std::vector<Departure>, std::greater<>>
      departures_;
  // Flows awaiting their first rate push (push latency + causal close).
  std::unordered_map<FlowId, AwaitingPush> awaiting_push_;
  // Causal clocks of admitted coflows whose first push is still pending.
  std::unordered_map<CoflowId, Causal> causal_;
  // Coflows admitted this epoch, stamped at the next allocation.
  std::vector<CoflowId> awaiting_alloc_;

  Allocation alloc_;
  std::vector<SlaveRates> per_slave_;  // scratch, reused every epoch
  const ScheduleInput* last_view_ = nullptr;
  std::unordered_map<MachineId, PushState> push_state_;

  Backpressure level_ = Backpressure::kOk;
  long long epochs_ = 0;
  long long admitted_ = 0;
  long long allocations_ = 0;
  long long rate_pushes_ = 0;
  long long pushes_deferred_ = 0;
  double max_push_staleness_ = 0.0;
  // Per-epoch vitals for the flight recorder: the largest staleness among
  // this epoch's pushes, and the shed total at the previous epoch's end
  // (delta accounting).
  double epoch_staleness_ = 0.0;
  long long prev_shed_total_ = 0;

  // Cached metrics instruments (null when metrics are off).
  obs::Counter* admitted_counter_ = nullptr;
  obs::Counter* shed_counter_ = nullptr;
  obs::Counter* push_counter_ = nullptr;
  obs::Counter* deferred_counter_ = nullptr;
  obs::Counter* epoch_counter_ = nullptr;
  obs::Gauge* backlog_gauge_ = nullptr;
  obs::Gauge* active_gauge_ = nullptr;
  obs::Histogram* admit_latency_ = nullptr;
  obs::Histogram* alloc_latency_ = nullptr;
  obs::Histogram* push_latency_ = nullptr;
  obs::Histogram* batch_size_ = nullptr;
  // Causal stage decomposition (virtual-time spans per coflow):
  // queue = submit→admit, alloc = admit→covering allocation, push =
  // allocation→first covering push, total = submit→first covering push.
  obs::Histogram* stage_queue_ = nullptr;
  obs::Histogram* stage_alloc_ = nullptr;
  obs::Histogram* stage_push_ = nullptr;
  obs::Histogram* stage_total_ = nullptr;
  // Per-client instruments (serve.client.N.*) plus the queue-counter
  // values already mirrored, so each epoch increments by the delta.
  struct ClientInstruments {
    obs::Gauge* backlog = nullptr;
    obs::Counter* accepted = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Counter* shed = nullptr;
    long long prev_accepted = 0;
    long long prev_rejected = 0;
    long long prev_shed = 0;
  };
  std::vector<ClientInstruments> client_instruments_;
};

}  // namespace ncdrf::serve
