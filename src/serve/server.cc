#include "serve/server.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/tracer.h"
#include "scenario/source.h"

namespace ncdrf::serve {
namespace {

// Magnitude divergence between one pushed rate and its fresh value,
// relative to the larger of the two (symmetric, scale-free).
bool diverged(double pushed, double fresh, double threshold) {
  const double scale = std::max(std::abs(pushed), std::abs(fresh));
  return std::abs(fresh - pushed) > threshold * scale;
}

}  // namespace

ServeFront::ServeFront(const Fabric& fabric, Scheduler& scheduler,
                       int num_clients, const ServeOptions& options)
    : options_([&] {
        ServeOptions o = options;
        // Serving-contract invariant: a serving master lives forever, so
        // retired state must be dropped or memory grows with history. The
        // front-end assigns ids and never re-registers, which is what
        // makes forgetting safe (see MasterOptions::forget_retired).
        o.master.forget_retired = true;
        return o;
      }()),
      num_machines_(fabric.num_machines()),
      master_(fabric, scheduler, options_.master) {
  NCDRF_CHECK(num_clients >= 1, "serving front-end needs >= 1 client");
  NCDRF_CHECK(options_.epoch_s > 0.0, "epoch length must be positive");
  NCDRF_CHECK(options_.staleness_s >= 0.0,
              "staleness budget must be non-negative");
  NCDRF_CHECK(options_.push_threshold >= 0.0,
              "push threshold must be non-negative");
  NCDRF_CHECK(options_.slowdown_watermark <= options_.shed_watermark,
              "slowdown watermark must not exceed the shed watermark");
  queues_.reserve(static_cast<std::size_t>(num_clients));
  for (int c = 0; c < num_clients; ++c) {
    queues_.push_back(
        std::make_unique<SubmissionQueue>(c, options_.queue_capacity));
  }
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& m = *options_.metrics;
    admitted_counter_ = &m.counter("serve.admitted");
    shed_counter_ = &m.counter("serve.shed");
    push_counter_ = &m.counter("serve.rate_pushes");
    deferred_counter_ = &m.counter("serve.pushes_deferred");
    epoch_counter_ = &m.counter("serve.epochs");
    backlog_gauge_ = &m.gauge("serve.backlog");
    active_gauge_ = &m.gauge("serve.active_coflows");
    admit_latency_ = &m.histogram("serve.admit_latency_s");
    alloc_latency_ = &m.histogram("serve.alloc_latency_s");
    push_latency_ = &m.histogram("serve.push_latency_s");
    batch_size_ = &m.histogram("serve.batch_size");
    stage_queue_ = &m.histogram("serve.stage.queue_s");
    stage_alloc_ = &m.histogram("serve.stage.alloc_s");
    stage_push_ = &m.histogram("serve.stage.push_s");
    stage_total_ = &m.histogram("serve.stage.total_s");
    client_instruments_.resize(queues_.size());
    for (std::size_t c = 0; c < queues_.size(); ++c) {
      const std::string base = "serve.client." + std::to_string(c) + ".";
      ClientInstruments& ci = client_instruments_[c];
      ci.backlog = &m.gauge(base + "backlog");
      ci.accepted = &m.counter(base + "accepted");
      ci.rejected = &m.counter(base + "rejected");
      ci.shed = &m.counter(base + "shed");
    }
    if (options_.tracer != nullptr) {
      // Ring-overflow drops surface in the metrics plane, not only behind
      // Tracer::dropped_events().
      options_.tracer->bind_drop_counter(&m.counter("trace.dropped_events"));
    }
  }
  if (options_.flight != nullptr) {
    options_.flight->attach(options_.tracer, options_.metrics,
                            options_.timeseries);
    options_.flight->set_config_json(config_json());
  }
}

ServeFront::~ServeFront() = default;

void ServeFront::retire_due(double now) {
  finish_batch_.clear();
  while (!departures_.empty() && departures_.top().time <= now) {
    const CoflowId coflow = departures_.top().coflow;
    departures_.pop();
    const auto it = live_flows_.find(coflow);
    if (it == live_flows_.end()) continue;
    for (const FlowId f : it->second) {
      finish_batch_.push_back(FlowFinishedMsg{f, coflow, now});
      awaiting_push_.erase(f);
    }
    causal_.erase(coflow);  // in case it retired before its first push
    live_flows_.erase(it);
  }
  // One bulk report per epoch: the master marks every flow, then sweeps
  // its retirement list once (per-finish sweeps made epoch cost quadratic
  // in the arrival rate).
  if (!finish_batch_.empty()) master_.on_flows_finished(finish_batch_);
}

int ServeFront::admit_batch(double now) {
  batch_.clear();
  // Round-robin, one submission per client per round: the batch cap can
  // never starve a client behind another's burst.
  bool any = true;
  while (any && (options_.max_batch_per_epoch <= 0 ||
                 static_cast<int>(batch_.size()) <
                     options_.max_batch_per_epoch)) {
    any = false;
    for (auto& queue : queues_) {
      if (options_.max_batch_per_epoch > 0 &&
          static_cast<int>(batch_.size()) >= options_.max_batch_per_epoch) {
        break;
      }
      any = queue->drain(1, batch_) > 0 || any;
    }
  }
  for (Submission& s : batch_) {
    RegisterCoflowMsg msg;
    msg.coflow = s.coflow;
    msg.arrival_time = s.submit_time;
    msg.weight = s.weight;
    msg.tenant = s.client;  // client attribution for tenant-aware policies
    msg.sizes_known = s.sizes_known;
    msg.trace_id = s.trace_id;
    msg.flows = s.flows;
    if (!s.sizes_known) {
      // The non-clairvoyant contract: sizes never cross the register API.
      for (Flow& f : msg.flows) f.size_bits = 0.0;
    }
    master_.on_register(msg);
    auto& flows = live_flows_[s.coflow];
    flows.reserve(s.flows.size());
    for (const Flow& f : s.flows) {
      flows.push_back(f.id);
      awaiting_push_.emplace(f.id, AwaitingPush{s.submit_time, s.coflow});
    }
    causal_.emplace(s.coflow, Causal{s.trace_id, s.submit_time, now, -1.0});
    awaiting_alloc_.push_back(s.coflow);
    if (s.lifetime_s > 0.0) {
      departures_.push(Departure{now + s.lifetime_s, s.coflow});
    }
    ++admitted_;
    if (admitted_counter_ != nullptr) admitted_counter_->inc();
    if (admit_latency_ != nullptr) {
      admit_latency_->observe(now - s.submit_time);
    }
    if (stage_queue_ != nullptr) stage_queue_->observe(now - s.submit_time);
    NCDRF_TRACE_INSTANT(options_.tracer, obs::EventKind::kServeAdmit, now,
                        s.coflow, static_cast<std::int64_t>(s.trace_id),
                        now - s.submit_time);
    if (admit_hook) {
      double bits = 0.0;
      for (const Flow& f : s.flows) bits += f.size_bits;
      admit_hook(AdmitRecord{s.coflow, s.client, s.submit_time, now,
                             static_cast<int>(s.flows.size()), bits});
    }
  }
  if (batch_size_ != nullptr && !batch_.empty()) {
    batch_size_->observe(static_cast<double>(batch_.size()));
  }
  return static_cast<int>(batch_.size());
}

void ServeFront::shed_over_watermark(double now) {
  std::size_t over = backlog();
  if (over <= options_.shed_watermark) return;
  std::size_t need = over - options_.shed_watermark;
  // Round-robin shedding of the *oldest* queued submissions: overload cost
  // is spread across clients instead of landing on one.
  while (need > 0) {
    bool any = false;
    for (auto& queue : queues_) {
      if (need == 0) break;
      const std::size_t dropped = queue->shed(1);
      if (dropped == 0) continue;
      any = true;
      need -= dropped;
      if (shed_counter_ != nullptr) {
        shed_counter_->inc(static_cast<long long>(dropped));
      }
      NCDRF_TRACE_INSTANT(options_.tracer, obs::EventKind::kServeShed, now,
                          queue->client(),
                          static_cast<std::int64_t>(dropped));
    }
    if (!any) break;
  }
}

void ServeFront::reallocate(double now) {
  if (!master_.dirty()) return;
  last_view_ = &master_.compute_allocation(now, alloc_, per_slave_);
  ++allocations_;
  if (alloc_hook) alloc_hook(now, *last_view_, alloc_);
  if (alloc_latency_ != nullptr) {
    for (const Submission& s : batch_) {
      alloc_latency_->observe(now - s.submit_time);
    }
  }
  // Every coflow admitted since the last allocation is covered by this
  // one (on_register marked the view dirty, and this runs in the same
  // epoch) — close its alloc stage.
  for (const CoflowId coflow : awaiting_alloc_) {
    const auto it = causal_.find(coflow);
    if (it == causal_.end()) continue;  // retired within the epoch
    it->second.alloc = now;
    if (stage_alloc_ != nullptr) {
      stage_alloc_->observe(now - it->second.admit);
    }
    NCDRF_TRACE_INSTANT(options_.tracer, obs::EventKind::kServeAllocCover,
                        now, coflow,
                        static_cast<std::int64_t>(it->second.trace_id),
                        now - it->second.admit);
  }
  awaiting_alloc_.clear();
}

void ServeFront::push_rates(double now) {
  // Machines with no live flows left dropped out of per_slave_; their
  // slaves have nothing to enforce (every local flow finished), so the
  // push state is simply discarded.
  std::erase_if(push_state_, [&](const auto& entry) {
    const auto it = std::lower_bound(
        per_slave_.begin(), per_slave_.end(), entry.first,
        [](const SlaveRates& a, MachineId m) { return a.machine < m; });
    return it == per_slave_.end() || it->machine != entry.first;
  });
  for (const SlaveRates& sr : per_slave_) {
    PushState& state = push_state_[sr.machine];
    // Classify the fresh vector against the last pushed one.
    bool structural = sr.msg.rates_bps.size() != state.rates.size();
    bool magnitude = false;
    if (!structural) {
      for (const auto& [flow, rate] : sr.msg.rates_bps) {
        const auto it = state.rates.find(flow);
        if (it == state.rates.end()) {
          structural = true;
          break;
        }
        magnitude =
            magnitude || diverged(it->second, rate, options_.push_threshold);
      }
    }
    if (!structural && !magnitude) {
      state.dirty_since = -1.0;  // converged back — nothing pending
      continue;
    }
    bool force_deadline = false;
    if (!structural) {
      if (state.dirty_since < 0.0) state.dirty_since = now;
      // Push before waiting one more epoch could exceed the budget
      // (guaranteed on any epoch grid with spacing <= epoch_s).
      force_deadline =
          (now - state.dirty_since) + options_.epoch_s > options_.staleness_s;
      if (!force_deadline) {
        ++pushes_deferred_;
        if (deferred_counter_ != nullptr) deferred_counter_->inc();
        continue;
      }
    }
    const double staleness =
        state.dirty_since >= 0.0 ? now - state.dirty_since : 0.0;
    max_push_staleness_ = std::max(max_push_staleness_, staleness);
    epoch_staleness_ = std::max(epoch_staleness_, staleness);
    state.rates.clear();
    for (const auto& [flow, rate] : sr.msg.rates_bps) {
      state.rates.emplace(flow, rate);
      const auto it = awaiting_push_.find(flow);
      if (it != awaiting_push_.end()) {
        if (push_latency_ != nullptr) {
          push_latency_->observe(now - it->second.submit);
        }
        // First push covering any flow of the coflow closes its causal
        // span: the submission's rates are now at an enforcement point.
        const auto causal = causal_.find(it->second.coflow);
        if (causal != causal_.end()) {
          const Causal& c = causal->second;
          if (stage_push_ != nullptr && c.alloc >= 0.0) {
            stage_push_->observe(now - c.alloc);
          }
          if (stage_total_ != nullptr) stage_total_->observe(now - c.submit);
          NCDRF_TRACE_INSTANT(options_.tracer,
                              obs::EventKind::kServeFirstPush, now,
                              it->second.coflow,
                              static_cast<std::int64_t>(c.trace_id),
                              now - c.submit);
          causal_.erase(causal);
        }
        awaiting_push_.erase(it);
      }
    }
    state.dirty_since = -1.0;
    ++rate_pushes_;
    if (push_counter_ != nullptr) push_counter_->inc();
    NCDRF_TRACE_INSTANT(options_.tracer, obs::EventKind::kServeRatePush, now,
                        sr.machine, 0, staleness);
    if (options_.bus != nullptr) {
      // The whole vector — rates and their causal trace ids — goes out.
      RateUpdateMsg out = sr.msg;
      if (options_.push_retry.max_attempts > 1) {
        // Lost pushes retransmit with per-destination backoff; a retried
        // push arrives late, never early.
        options_.bus->send_with_retry(now, slave_address(sr.machine),
                                      std::move(out), options_.push_retry);
      } else {
        // Best-effort, like Master::reallocate: the next divergence or
        // deadline re-sends.
        options_.bus->send_unreliable(now, slave_address(sr.machine),
                                      std::move(out));
      }
    }
  }
}

void ServeFront::publish_level(double now) {
  const std::size_t total = backlog();
  Backpressure level = Backpressure::kOk;
  if (total >= options_.shed_watermark) {
    level = Backpressure::kShed;
  } else if (total >= options_.slowdown_watermark) {
    level = Backpressure::kSlowdown;
  }
  if (level != level_) {
    level_ = level;
    for (auto& queue : queues_) queue->set_level(level);
    NCDRF_TRACE_INSTANT(options_.tracer, obs::EventKind::kServeBackpressure,
                        now, static_cast<std::int64_t>(level));
  }
  if (backlog_gauge_ != nullptr) {
    backlog_gauge_->set(static_cast<double>(total));
  }
  if (active_gauge_ != nullptr) {
    active_gauge_->set(static_cast<double>(master_.active_coflows()));
  }
  // Per-client plane: backlog gauges plus the queue counters mirrored as
  // registry counters (incremented by delta — the queues own the truth).
  for (std::size_t c = 0; c < client_instruments_.size(); ++c) {
    ClientInstruments& ci = client_instruments_[c];
    const SubmissionQueue& q = *queues_[c];
    ci.backlog->set(static_cast<double>(q.size()));
    const long long accepted = q.accepted();
    const long long rejected = q.rejected();
    const long long shed = q.shed_count();
    if (accepted > ci.prev_accepted) {
      ci.accepted->inc(accepted - ci.prev_accepted);
    }
    if (rejected > ci.prev_rejected) {
      ci.rejected->inc(rejected - ci.prev_rejected);
    }
    if (shed > ci.prev_shed) ci.shed->inc(shed - ci.prev_shed);
    ci.prev_accepted = accepted;
    ci.prev_rejected = rejected;
    ci.prev_shed = shed;
  }
}

void ServeFront::step_epoch(double now) {
  ++epochs_;
  epoch_staleness_ = 0.0;
  if (epoch_counter_ != nullptr) epoch_counter_->inc();
  if (options_.tracer != nullptr) {
    options_.tracer->begin(obs::EventKind::kServeEpoch, now);
  }
  retire_due(now);
  const int admitted_now = admit_batch(now);
  shed_over_watermark(now);
  reallocate(now);
  push_rates(now);
  publish_level(now);
  if (options_.tracer != nullptr) {
    options_.tracer->end(obs::EventKind::kServeEpoch, now, admitted_now,
                         master_.active_coflows());
  }
  // Telemetry tail: roll the registry into the timeseries, then let the
  // flight recorder evaluate its armed triggers against this epoch.
  if (options_.timeseries != nullptr) options_.timeseries->sample(now);
  if (options_.flight != nullptr) {
    const long long shed_total = total_shed();
    obs::EpochVitals vitals;
    vitals.backpressure_level = static_cast<int>(level_);
    vitals.shed_delta = shed_total - prev_shed_total_;
    vitals.staleness_s = epoch_staleness_;
    vitals.backlog = static_cast<double>(backlog());
    vitals.active_coflows = static_cast<double>(master_.active_coflows());
    prev_shed_total_ = shed_total;
    options_.flight->observe_epoch(now, vitals);
  }
}

double ServeFront::run(scenario::WorkloadSource& source) {
  double now = 0.0;
  for (long long epoch = 0;; ++epoch) {
    now = static_cast<double>(epoch) * options_.epoch_s;
    while (const Submission* due = source.peek()) {
      if (due->submit_time > now) break;
      Submission s = source.next();
      NCDRF_CHECK(s.client >= 0 &&
                      s.client < static_cast<int>(queues_.size()),
                  "submission client out of range for this front-end");
      // Open loop: a rejected submission is dropped (and counted by the
      // queue), never retried.
      queues_[static_cast<std::size_t>(s.client)]->try_enqueue(std::move(s));
    }
    step_epoch(now);
    if (source.peek() == nullptr && backlog() == 0) break;
  }
  return now;
}

double ServeFront::run(const std::vector<std::vector<Submission>>& schedule) {
  NCDRF_CHECK(schedule.size() == queues_.size(),
              "run() needs one schedule per client");
  // Clients are stamped from the slot index so hand-built schedules keep
  // routing to the queue they were handed to (the historical contract).
  std::vector<std::vector<Submission>> per_client = schedule;
  for (std::size_t c = 0; c < per_client.size(); ++c) {
    for (Submission& s : per_client[c]) s.client = static_cast<int>(c);
  }
  scenario::VectorSource source(std::move(per_client), num_machines_);
  return run(source);
}

long long ServeFront::total_rejected() const {
  long long total = 0;
  for (const auto& queue : queues_) total += queue->rejected();
  return total;
}

long long ServeFront::total_shed() const {
  long long total = 0;
  for (const auto& queue : queues_) total += queue->shed_count();
  return total;
}

std::size_t ServeFront::backlog() const {
  std::size_t total = 0;
  for (const auto& queue : queues_) total += queue->size();
  return total;
}

std::string ServeFront::config_json() const {
  std::ostringstream out;
  out << std::setprecision(15);
  out << "{\"epoch_s\":" << options_.epoch_s
      << ",\"max_batch_per_epoch\":" << options_.max_batch_per_epoch
      << ",\"queue_capacity\":" << options_.queue_capacity
      << ",\"slowdown_watermark\":" << options_.slowdown_watermark
      << ",\"shed_watermark\":" << options_.shed_watermark
      << ",\"staleness_s\":" << options_.staleness_s
      << ",\"push_threshold\":" << options_.push_threshold
      << ",\"push_retry_attempts\":" << options_.push_retry.max_attempts
      << ",\"num_clients\":" << queues_.size() << "}";
  return out.str();
}

}  // namespace ncdrf::serve
