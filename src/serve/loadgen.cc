#include "serve/loadgen.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "scenario/source.h"

namespace ncdrf::serve {
namespace {

// Piecewise-constant rate multiplier of the square-wave burst process at
// time t, normalized so the time average is 1.
double burst_multiplier(const LoadGenOptions& o, double t) {
  if (o.burst_factor == 1.0 || o.burst_duty <= 0.0 || o.burst_duty >= 1.0) {
    return 1.0;
  }
  const double phase = std::fmod(t, o.burst_period_s) / o.burst_period_s;
  if (phase < o.burst_duty) return o.burst_factor;
  // Off-phase rate chosen so duty*factor + (1-duty)*off == 1.
  const double off =
      (1.0 - o.burst_duty * o.burst_factor) / (1.0 - o.burst_duty);
  return std::max(off, 0.0);
}

}  // namespace

LoadGenerator::LoadGenerator(const LoadGenOptions& options)
    : options_(options) {
  NCDRF_CHECK(options.num_clients >= 1, "loadgen needs >= 1 client");
  NCDRF_CHECK(options.num_machines >= 2, "loadgen needs >= 2 machines");
  NCDRF_CHECK(options.arrival_rate_per_s > 0.0,
              "loadgen arrival rate must be positive");
  NCDRF_CHECK(options.duration_s > 0.0, "loadgen duration must be positive");
  NCDRF_CHECK(options.min_flows_per_coflow >= 1 &&
                  options.max_flows_per_coflow >= options.min_flows_per_coflow,
              "loadgen flow-count range invalid");
  NCDRF_CHECK(options.mean_flow_bits > 0.0,
              "loadgen mean flow size must be positive");
  NCDRF_CHECK(options.flow_size_sigma >= 0.0,
              "loadgen size sigma must be non-negative");
  NCDRF_CHECK(options.burst_factor >= 1.0, "loadgen burst factor must be >= 1");
  NCDRF_CHECK(options.burst_duty >= 0.0 && options.burst_duty <= 1.0,
              "loadgen burst duty must be in [0, 1]");
  NCDRF_CHECK(options.burst_factor == 1.0 || options.burst_period_s > 0.0,
              "loadgen burst period must be positive when bursting");
  NCDRF_CHECK(options.burst_duty * options.burst_factor <= 1.0,
              "loadgen burst duty * factor must be <= 1 (mean-preserving)");
}

std::vector<std::vector<Submission>> LoadGenerator::generate() const {
  const LoadGenOptions& o = options_;
  const double client_rate = o.arrival_rate_per_s / o.num_clients;
  // Peak rate for the thinning bound: the square wave never exceeds
  // burst_factor × base.
  const double peak_rate = client_rate * o.burst_factor;
  // Lognormal mu chosen so the distribution's mean is mean_flow_bits.
  const double size_mu = std::log(o.mean_flow_bits) -
                         0.5 * o.flow_size_sigma * o.flow_size_sigma;

  std::vector<std::vector<Submission>> per_client(
      static_cast<std::size_t>(o.num_clients));
  for (int client = 0; client < o.num_clients; ++client) {
    // Independent stream per client: same splitmix-style decorrelation the
    // shard kernels use for per-shard seeds.
    Rng rng(o.seed + 0x9e3779b97f4a7c15ULL * (client + 1));
    auto& out = per_client[static_cast<std::size_t>(client)];
    double t = 0.0;
    while (true) {
      // Non-homogeneous Poisson via thinning (Lewis & Shedler): draw at
      // the peak rate, accept with rate(t)/peak.
      t += rng.exponential(peak_rate);
      if (t >= o.duration_s) break;
      const double accept = burst_multiplier(o, t) / o.burst_factor;
      if (accept < 1.0 && !rng.bernoulli(accept)) continue;

      Submission s;
      s.client = client;
      s.submit_time = t;
      s.weight = o.weight;
      s.sizes_known = o.sizes_known;
      s.lifetime_s = o.mean_lifetime_s > 0.0
                         ? rng.exponential(1.0 / o.mean_lifetime_s)
                         : 0.0;
      const int num_flows = static_cast<int>(rng.uniform_int(
          o.min_flows_per_coflow, o.max_flows_per_coflow));
      s.flows.reserve(static_cast<std::size_t>(num_flows));
      for (int f = 0; f < num_flows; ++f) {
        Flow flow;
        flow.src =
            static_cast<MachineId>(rng.uniform_int(0, o.num_machines - 1));
        flow.dst =
            static_cast<MachineId>(rng.uniform_int(0, o.num_machines - 2));
        if (flow.dst >= flow.src) ++flow.dst;  // distinct endpoints
        flow.size_bits =
            o.flow_size_sigma > 0.0
                ? rng.lognormal(size_mu, o.flow_size_sigma)
                : o.mean_flow_bits;
        s.flows.push_back(flow);
      }
      out.push_back(std::move(s));
    }
  }

  // Dense global ids in (submit_time, client) order — the scenario
  // spine's one id-assignment path, shared with TraceBuilder via
  // scenario::materialize, so as_trace() ids match these exactly.
  scenario::assign_dense_ids(per_client);
  for (auto& sched : per_client) {
    for (Submission& s : sched) {
      // Nonzero span id encoding the submitting client, unique per
      // coflow — what the telemetry plane follows from submission to
      // rate push.
      s.trace_id = (static_cast<std::uint64_t>(s.client) + 1) << 40 |
                   (static_cast<std::uint64_t>(s.coflow) + 1);
    }
  }
  return per_client;
}

Trace LoadGenerator::as_trace() const {
  scenario::VectorSource source(generate(), options_.num_machines);
  return scenario::materialize(source);
}

int LoadGenerator::total_coflows() const {
  const auto per_client = generate();
  std::size_t total = 0;
  for (const auto& sched : per_client) total += sched.size();
  return static_cast<int>(total);
}

long long replay_client_wall(const std::vector<Submission>& schedule,
                             SubmissionQueue& queue,
                             std::chrono::steady_clock::time_point origin,
                             double time_scale) {
  NCDRF_CHECK(time_scale > 0.0, "replay time scale must be positive");
  long long accepted = 0;
  for (const Submission& planned : schedule) {
    const auto due =
        origin + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(planned.submit_time /
                                                   time_scale));
    std::this_thread::sleep_until(due);
    Submission s = planned;
    s.submit_time =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      origin)
            .count();
    if (queue.try_enqueue(std::move(s))) ++accepted;
  }
  return accepted;
}

}  // namespace ncdrf::serve
