// LoadGenerator: seeded open-loop coflow arrival streams for the serving
// front-end (serve/server.h) — the client half of the bpfhv-sched-style
// harness (SNIPPETS.md Snippet 3: client threads → bounded queues →
// polling scheduler).
//
// The generator is *open loop*: arrival times are drawn up front from the
// configured rate process and never react to the server (a client whose
// enqueue is rejected walks away; nothing is retried), which is what makes
// overload measurements honest. The whole schedule is a pure function of
// the options — per-client xoshiro streams, square-wave-modulated Poisson
// arrivals for burstiness, lognormal flow sizes, exponential dwell times —
// so virtual-time runs are bit-reproducible and the identical workload can
// be handed to the event-driven simulator via as_trace() for equivalence
// tests.
//
// Two consumption modes:
//   * virtual time — the driver (server run loop, bench, tests) enqueues
//     each Submission at its submit_time on the virtual clock;
//   * wall clock  — replay_client_wall paces one client's schedule against
//     steady_clock from a shared origin (the soak tier runs one such call
//     per generator thread).
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "serve/submission_queue.h"
#include "trace/trace.h"

namespace ncdrf::serve {

struct LoadGenOptions {
  std::uint64_t seed = 1;
  int num_clients = 1;
  int num_machines = 150;

  // Aggregate mean arrival rate (coflows/s) across all clients; each
  // client draws an independent Poisson stream at rate / num_clients.
  double arrival_rate_per_s = 1000.0;
  double duration_s = 1.0;

  // Flow-count and flow-size mix: flows per coflow uniform in
  // [min_flows_per_coflow, max_flows_per_coflow], endpoints uniform over
  // machines, sizes lognormal with the given mean and shape.
  int min_flows_per_coflow = 1;
  int max_flows_per_coflow = 4;
  double mean_flow_bits = 8e6;
  double flow_size_sigma = 1.0;

  // Burstiness: a square wave of period burst_period_s spends burst_duty
  // of each period at burst_factor × the base rate and the rest at a
  // compensating lower rate, preserving the aggregate mean. factor 1 (or
  // duty 0/1) = homogeneous Poisson.
  double burst_factor = 1.0;
  double burst_duty = 0.5;
  double burst_period_s = 0.1;

  // Modeled dwell time (exponential mean): how long an admitted coflow
  // stays in the scheduler's active set before the server retires it in
  // virtual-time runs. <= 0: coflows never depart.
  double mean_lifetime_s = 0.02;

  // Register flow sizes with the master (clairvoyant policies only).
  bool sizes_known = false;
  double weight = 1.0;
};

class LoadGenerator {
 public:
  explicit LoadGenerator(const LoadGenOptions& options);

  const LoadGenOptions& options() const { return options_; }

  // One schedule per client, each sorted by submit_time. Coflow and flow
  // ids are dense and unique across clients, assigned in global
  // (submit_time, client) order — the same order TraceBuilder would use,
  // so ids here and in as_trace() coincide. Deterministic in the options.
  std::vector<std::vector<Submission>> generate() const;

  // The identical workload as a simulator Trace (sizes always populated;
  // the driver strips them for non-clairvoyant policies, as everywhere).
  Trace as_trace() const;

  // Total coflows the schedule contains (== as_trace().coflows.size()).
  int total_coflows() const;

 private:
  LoadGenOptions options_;
};

// Replays one client's schedule open-loop against the wall clock: each
// submission is enqueued when steady_clock reaches origin +
// submit_time / time_scale, with submit_time restamped to the *actual*
// elapsed wall seconds (the latency the server measures includes any
// pacing jitter). Rejected submissions are dropped (open loop). Returns
// the number accepted. Runs on the calling thread — the soak tier calls
// it from one ThreadPool task per client.
long long replay_client_wall(const std::vector<Submission>& schedule,
                             SubmissionQueue& queue,
                             std::chrono::steady_clock::time_point origin,
                             double time_scale = 1.0);

}  // namespace ncdrf::serve
