#include "cluster/slave.h"

#include <algorithm>

#include "common/check.h"

namespace ncdrf {

Slave::Slave(MachineId machine, double heartbeat_period_s)
    : machine_(machine), heartbeat_period_(heartbeat_period_s) {
  NCDRF_CHECK(machine >= 0, "slave machine id must be non-negative");
  NCDRF_CHECK(heartbeat_period_s > 0.0, "heartbeat period must be positive");
}

void Slave::add_flow(const Flow& flow) {
  NCDRF_CHECK(flow.src == machine_, "flow does not originate here");
  NCDRF_CHECK(flow.size_bits > 0.0, "flow size must be positive");
  NCDRF_CHECK(!flows_.contains(flow.id), "duplicate local flow");
  flows_[flow.id] = LocalFlow{flow, flow.size_bits, 0.0, 0.0};
}

void Slave::crash() {
  flows_.clear();
  finished_ids_.clear();
  next_heartbeat_ = 0.0;
}

void Slave::restore_flow(const Flow& flow, double remaining_bits,
                         double attained_bits) {
  NCDRF_CHECK(flow.src == machine_, "flow does not originate here");
  NCDRF_CHECK(remaining_bits > 0.0 && attained_bits >= 0.0,
              "restore needs positive remaining service");
  NCDRF_CHECK(!flows_.contains(flow.id), "duplicate local flow");
  flows_[flow.id] = LocalFlow{flow, remaining_bits, attained_bits, 0.0};
}

void Slave::note_finished(FlowId flow) {
  if (std::find(finished_ids_.begin(), finished_ids_.end(), flow) ==
      finished_ids_.end()) {
    finished_ids_.push_back(flow);
  }
}

void Slave::on_rate_update(const RateUpdateMsg& msg) {
  const bool traced = msg.trace_ids.size() == msg.rates_bps.size() &&
                      !msg.trace_ids.empty();
  for (std::size_t i = 0; i < msg.rates_bps.size(); ++i) {
    const auto& [flow, rate] = msg.rates_bps[i];
    const auto it = flows_.find(flow);
    // Updates can race with completions; stale entries are ignored.
    if (it != flows_.end()) {
      it->second.rate_bps = rate;
      if (traced) it->second.trace_id = msg.trace_ids[i];
    }
  }
}

std::vector<std::pair<FlowId, double>> Slave::desired_rates() const {
  std::vector<std::pair<FlowId, double>> out;
  out.reserve(flows_.size());
  for (const auto& [id, lf] : flows_) out.emplace_back(id, lf.rate_bps);
  return out;
}

bool Slave::commit_transfer(FlowId flow, double bits) {
  auto it = flows_.find(flow);
  NCDRF_CHECK(it != flows_.end(), "transfer for unknown local flow");
  NCDRF_CHECK(bits >= 0.0, "transfer must be non-negative");
  LocalFlow& lf = it->second;
  lf.remaining_bits -= bits;
  lf.attained_bits += bits;
  if (lf.remaining_bits <= 1.0) {  // fluid-model completion epsilon
    note_finished(flow);
    flows_.erase(it);
    return true;
  }
  return false;
}

double Slave::remaining_bits(FlowId flow) const {
  const auto it = flows_.find(flow);
  return it == flows_.end() ? 0.0 : it->second.remaining_bits;
}

std::uint64_t Slave::trace_id(FlowId flow) const {
  const auto it = flows_.find(flow);
  return it == flows_.end() ? 0 : it->second.trace_id;
}

HeartbeatMsg Slave::build_heartbeat() const {
  HeartbeatMsg msg;
  msg.machine = machine_;
  msg.attained_bits.reserve(flows_.size());
  for (const auto& [id, lf] : flows_) {
    msg.attained_bits.emplace_back(id, lf.attained_bits);
  }
  msg.finished_flows = finished_ids_;
  return msg;
}

bool Slave::maybe_heartbeat(double now, SimBus& bus) {
  if (now + 1e-12 < next_heartbeat_) return false;
  next_heartbeat_ = now + heartbeat_period_;
  if (flows_.empty() && finished_ids_.empty()) return false;
  bus.send_unreliable(now, master_address(), build_heartbeat());
  return true;
}

void Slave::heartbeat_now(double now, SimBus& bus) {
  next_heartbeat_ = now + heartbeat_period_;
  bus.send(now, master_address(), build_heartbeat());
}

}  // namespace ncdrf
