// SimBus: an in-memory control-plane network with a fixed one-way latency
// and optional message loss for failure injection. Messages sent at time t
// become deliverable at t + latency; delivery order is (deliver_time, send
// sequence), so the bus is FIFO per sender — matching a TCP control
// connection. Best-effort sends (heartbeats, rate updates) may be dropped
// with the configured probability; reliable sends (registrations) never
// are.
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "cluster/message.h"
#include "common/rng.h"

namespace ncdrf {

// Retransmission policy for send_with_retry: up to `max_attempts` total
// transmissions, the i-th retry delayed by backoff_s * multiplier^(i-1)
// after the previous attempt — the client-side repair loop of the
// prototype's best-effort reports.
//
// Backoff state is kept *per destination*, not per call: when a call to a
// destination exhausts its attempts, the next send_with_retry to the same
// destination resumes the escalated backoff ladder instead of restarting
// at backoff_s (concurrent repair loops to one slow slave must not reset
// each other's backoff). Any successfully transmitted attempt resets the
// destination to the base backoff.
struct RetryPolicy {
  int max_attempts = 1;     // total transmission attempts; >= 1
  double backoff_s = 0.05;  // delay before the first retransmission
  double multiplier = 2.0;  // backoff growth per retry; >= 1
};

class SimBus {
 public:
  // `loss_probability` applies to send_unreliable only; requires a value
  // in [0, 1). Losses are drawn deterministically from `seed`.
  explicit SimBus(double latency_s, double loss_probability = 0.0,
                  std::uint64_t seed = 1);

  // Enqueues a message sent at `now` to `to`. Always delivered.
  void send(double now, Address to, MessagePayload payload);

  // Like send, but the message is dropped with the bus's loss
  // probability. Returns false when dropped.
  bool send_unreliable(double now, Address to, MessagePayload payload);

  // Like send_unreliable, but each dropped transmission is retried with
  // exponential backoff until one gets through or `policy.max_attempts`
  // transmissions have been spent. Loss is drawn independently per
  // attempt; the surviving attempt is delivered at its retry time +
  // latency, so a retried message arrives late, never early. Returns
  // false when every attempt was lost.
  bool send_with_retry(double now, Address to, MessagePayload payload,
                       const RetryPolicy& policy);

  // Adjusts the loss probability mid-run (fault injection: loss bursts).
  // Requires a value in [0, 1).
  void set_loss_probability(double loss_probability);
  double loss_probability() const { return loss_probability_; }

  // Pops every message deliverable at or before `now`, in delivery order.
  struct Delivery {
    Address to;
    MessagePayload payload;
    double deliver_time = 0.0;
  };
  std::vector<Delivery> deliver_due(double now);

  bool empty() const { return queue_.empty(); }
  long long total_sent() const { return seq_; }
  long long total_dropped() const { return dropped_; }
  long long total_retries() const { return retries_; }

  // The retry delay the next send_with_retry to this destination starts
  // from: 0 while the destination is healthy (next retry waits
  // policy.backoff_s), the escalated delay after exhausted attempts.
  // Exposed for tests of the per-destination backoff contract.
  double pending_backoff(Address to) const;

 private:
  struct Envelope {
    Address to;
    MessagePayload payload;
  };

  // Map key for per-destination state: the master is -1, slaves are their
  // machine id.
  static int destination_key(Address to) {
    return to.is_master ? -1 : to.machine;
  }

  double latency_;
  double loss_probability_;
  Rng rng_;
  long long seq_ = 0;
  long long dropped_ = 0;
  long long retries_ = 0;
  // Ordered by (deliver_time, send sequence): earliest first, FIFO within
  // an instant.
  std::map<std::pair<double, long long>, Envelope> queue_;
  // Per-destination retry state: the delay the next retransmission to the
  // destination should wait (see RetryPolicy). Absent or 0 = base backoff.
  std::map<int, double> retry_backoff_;
};

}  // namespace ncdrf
