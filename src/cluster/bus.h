// SimBus: an in-memory control-plane network with a fixed one-way latency
// and optional message loss for failure injection. Messages sent at time t
// become deliverable at t + latency; delivery order is (deliver_time, send
// sequence), so the bus is FIFO per sender — matching a TCP control
// connection. Best-effort sends (heartbeats, rate updates) may be dropped
// with the configured probability; reliable sends (registrations) never
// are.
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "cluster/message.h"
#include "common/rng.h"

namespace ncdrf {

class SimBus {
 public:
  // `loss_probability` applies to send_unreliable only; requires a value
  // in [0, 1). Losses are drawn deterministically from `seed`.
  explicit SimBus(double latency_s, double loss_probability = 0.0,
                  std::uint64_t seed = 1);

  // Enqueues a message sent at `now` to `to`. Always delivered.
  void send(double now, Address to, MessagePayload payload);

  // Like send, but the message is dropped with the bus's loss
  // probability. Returns false when dropped.
  bool send_unreliable(double now, Address to, MessagePayload payload);

  // Pops every message deliverable at or before `now`, in delivery order.
  struct Delivery {
    Address to;
    MessagePayload payload;
    double deliver_time = 0.0;
  };
  std::vector<Delivery> deliver_due(double now);

  bool empty() const { return queue_.empty(); }
  long long total_sent() const { return seq_; }
  long long total_dropped() const { return dropped_; }

 private:
  struct Envelope {
    Address to;
    MessagePayload payload;
  };

  double latency_;
  double loss_probability_;
  Rng rng_;
  long long seq_ = 0;
  long long dropped_ = 0;
  // Ordered by (deliver_time, send sequence): earliest first, FIFO within
  // an instant.
  std::map<std::pair<double, long long>, Envelope> queue_;
};

}  // namespace ncdrf
