#include <cmath>
#include "cluster/deployment.h"

#include <algorithm>
#include <limits>

#include "coflow/coflow.h"
#include "common/check.h"

namespace ncdrf {
namespace {

// Tracks ground truth for result reporting (independent of the master's
// lagged view).
struct TruthCoflow {
  const Coflow* coflow = nullptr;
  int unfinished = 0;
  bool registered = false;
  std::vector<double> correlation;  // c_k from original demand (Eq. 1)
};

}  // namespace

DeploymentResult run_deployment(const Fabric& fabric, const Trace& trace,
                                Scheduler& scheduler,
                                const DeploymentOptions& options) {
  NCDRF_CHECK(trace.num_machines == fabric.num_machines(),
              "trace and fabric machine counts differ");
  NCDRF_CHECK(options.tick_s > 0.0, "tick must be positive");

  SimBus bus(options.control_latency_s, options.control_loss_probability,
             options.loss_seed);
  Master master(fabric, scheduler);
  std::vector<Slave> slaves;
  slaves.reserve(static_cast<std::size_t>(fabric.num_machines()));
  for (MachineId m = 0; m < fabric.num_machines(); ++m) {
    slaves.emplace_back(m, options.heartbeat_period_s);
  }

  DeploymentResult result;
  result.coflows.resize(trace.coflows.size());
  std::vector<TruthCoflow> truth(trace.coflows.size());
  for (std::size_t k = 0; k < trace.coflows.size(); ++k) {
    const Coflow& coflow = trace.coflows[k];
    truth[k].coflow = &coflow;
    truth[k].unfinished = coflow.width();
    CoflowRecord& rec = result.coflows[k];
    rec.id = coflow.id();
    rec.arrival = coflow.arrival_time();
    rec.width = coflow.width();
    rec.max_flow_bits = coflow.max_flow_bits();
    rec.total_bits = coflow.total_bits();
    const DemandVectors d = coflow.demand(fabric);
    truth[k].correlation = d.correlation();
    for (LinkId i = 0; i < fabric.num_links(); ++i) {
      const auto idx = static_cast<std::size_t>(i);
      rec.min_cct =
          std::max(rec.min_cct, d.demand[idx] / fabric.capacity(i));
    }
  }

  // Flow lookup for receiver-side bookkeeping.
  std::vector<const Flow*> flow_by_id(
      static_cast<std::size_t>(trace.total_flows), nullptr);
  for (const Coflow& coflow : trace.coflows) {
    for (const Flow& f : coflow.flows()) {
      flow_by_id[static_cast<std::size_t>(f.id)] = &f;
    }
  }

  std::size_t next_arrival = 0;
  int coflows_remaining = static_cast<int>(trace.coflows.size());
  double now = 0.0;
  double next_progress_sample = 0.0;
  double next_refresh = 0.0;

  while (coflows_remaining > 0) {
    NCDRF_CHECK(now <= options.max_time_s,
                "deployment time limit exceeded under " + scheduler.name());

    // 1. Register due coflows (client → master over the bus).
    while (next_arrival < trace.coflows.size() &&
           trace.coflows[next_arrival].arrival_time() <= now + 1e-12) {
      const Coflow& coflow = trace.coflows[next_arrival];
      RegisterCoflowMsg msg;
      msg.coflow = coflow.id();
      msg.arrival_time = coflow.arrival_time();
      msg.weight = coflow.weight();
      msg.sizes_known = scheduler.clairvoyant();
      msg.flows = coflow.flows();
      if (!msg.sizes_known) {
        for (Flow& f : msg.flows) f.size_bits = 0.0;  // sizes withheld
      }
      bus.send(now, master_address(), std::move(msg));
      // Slaves start tracking their local flows immediately (the daemon
      // sits next to the application), but send nothing until rated.
      for (const Flow& f : coflow.flows()) {
        slaves[static_cast<std::size_t>(f.src)].add_flow(f);
      }
      truth[static_cast<std::size_t>(coflow.id())].registered = true;
      ++next_arrival;
    }

    // 2. Deliver due control messages.
    for (SimBus::Delivery& d : bus.deliver_due(now)) {
      if (d.to.is_master) {
        if (auto* reg = std::get_if<RegisterCoflowMsg>(&d.payload)) {
          master.on_register(*reg);
        } else if (auto* fin = std::get_if<FlowFinishedMsg>(&d.payload)) {
          master.on_flow_finished(*fin);
        } else if (auto* hb = std::get_if<HeartbeatMsg>(&d.payload)) {
          master.on_heartbeat(*hb);
        }
      } else {
        if (auto* rates = std::get_if<RateUpdateMsg>(&d.payload)) {
          slaves[static_cast<std::size_t>(d.to.machine)].on_rate_update(
              *rates);
        }
      }
    }

    // 3. Master reallocates when its view changed, or on the periodic
    // refresh that re-pushes rates lost to control-plane failures.
    if (master.dirty() ||
        (options.reallocation_refresh_period_s > 0.0 &&
         now + 1e-12 >= next_refresh && master.active_coflows() > 0)) {
      master.reallocate(now, bus);
      ++result.num_reallocations;
      next_refresh = now + options.reallocation_refresh_period_s;
    }

    // 4. Data plane: desired rates → physical contention → transfer.
    std::vector<double> link_demand(
        static_cast<std::size_t>(fabric.num_links()), 0.0);
    std::vector<std::pair<FlowId, double>> sends;  // (flow, desired rate)
    for (const Slave& slave : slaves) {
      for (const auto& [flow_id, rate] : slave.desired_rates()) {
        if (rate <= 0.0) continue;
        const Flow* f = flow_by_id[static_cast<std::size_t>(flow_id)];
        link_demand[static_cast<std::size_t>(fabric.uplink(f->src))] += rate;
        link_demand[static_cast<std::size_t>(fabric.downlink(f->dst))] +=
            rate;
        sends.emplace_back(flow_id, rate);
      }
    }
    std::vector<double> scale(static_cast<std::size_t>(fabric.num_links()),
                              1.0);
    for (LinkId i = 0; i < fabric.num_links(); ++i) {
      const auto idx = static_cast<std::size_t>(i);
      if (link_demand[idx] > fabric.capacity(i)) {
        scale[idx] = fabric.capacity(i) / link_demand[idx];
      }
    }

    // Realized per-flow rates this tick (kept for progress sampling).
    std::vector<std::pair<const Flow*, double>> realized;
    realized.reserve(sends.size());
    for (const auto& [flow_id, rate] : sends) {
      const Flow* f = flow_by_id[static_cast<std::size_t>(flow_id)];
      const double s = std::min(
          scale[static_cast<std::size_t>(fabric.uplink(f->src))],
          scale[static_cast<std::size_t>(fabric.downlink(f->dst))]);
      realized.emplace_back(f, rate * s);
    }

    // 5. Progress sampling (Fig. 8), before committing the transfer.
    if (options.record_progress && now + 1e-12 >= next_progress_sample) {
      next_progress_sample = now + options.progress_sample_period_s;
      for (std::size_t k = 0; k < truth.size(); ++k) {
        if (!truth[k].registered || truth[k].unfinished == 0) continue;
        // Realized per-link allocation for this coflow, its remaining
        // per-link demand, and Eq. 1 under the configured normalization.
        std::vector<double> link_alloc(
            static_cast<std::size_t>(fabric.num_links()), 0.0);
        std::vector<double> rem_demand(
            static_cast<std::size_t>(fabric.num_links()), 0.0);
        double rem_bottleneck = 0.0;
        for (const Flow& f : truth[k].coflow->flows()) {
          const double rem =
              slaves[static_cast<std::size_t>(f.src)].remaining_bits(f.id);
          if (rem <= 0.0) continue;
          rem_demand[static_cast<std::size_t>(fabric.uplink(f.src))] += rem;
          rem_demand[static_cast<std::size_t>(fabric.downlink(f.dst))] +=
              rem;
        }
        for (const double d : rem_demand) {
          rem_bottleneck = std::max(rem_bottleneck, d);
        }
        for (const auto& [f, rate] : realized) {
          if (f->coflow != truth[k].coflow->id()) continue;
          link_alloc[static_cast<std::size_t>(fabric.uplink(f->src))] += rate;
          link_alloc[static_cast<std::size_t>(fabric.downlink(f->dst))] +=
              rate;
        }
        double progress = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < link_alloc.size(); ++i) {
          if (rem_demand[i] <= 0.0) continue;
          const double c =
              options.progress_normalization ==
                      ProgressNormalization::kRemainingDemand
                  ? rem_demand[i] / rem_bottleneck
                  : truth[k].correlation[i];
          if (c > 0.0) {
            progress = std::min(progress, link_alloc[i] / c);
          }
        }
        if (!std::isfinite(progress)) continue;
        result.progress.push_back(ProgressSample{
            now, now + options.progress_sample_period_s,
            truth[k].coflow->id(), progress});
      }
    }

    for (const auto& [f, rate] : realized) {
      Slave& slave = slaves[static_cast<std::size_t>(f->src)];
      if (slave.commit_transfer(f->id, rate * options.tick_s)) {
        const double finish_time = now + options.tick_s;
        // Best-effort: a lost finish report is repaired by the refresh
        // (a finished flow a stale master still rates simply sends 0).
        bus.send_unreliable(finish_time, master_address(),
                            FlowFinishedMsg{f->id, f->coflow, finish_time});
        TruthCoflow& t = truth[static_cast<std::size_t>(f->coflow)];
        if (--t.unfinished == 0) {
          CoflowRecord& rec =
              result.coflows[static_cast<std::size_t>(f->coflow)];
          rec.completion = finish_time;
          rec.cct = finish_time - rec.arrival;
          --coflows_remaining;
        }
      }
    }

    // 6. Heartbeats.
    for (Slave& slave : slaves) slave.maybe_heartbeat(now, bus);

    now += options.tick_s;
  }

  result.makespan = now;
  result.messages_sent = bus.total_sent();
  return result;
}

}  // namespace ncdrf
