#include "cluster/deployment.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <memory>
#include <utility>

#include "coflow/coflow.h"
#include "common/check.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "scenario/source.h"

namespace ncdrf {
namespace {

// Tracks ground truth for result reporting (independent of the master's
// lagged view).
struct TruthCoflow {
  const Coflow* coflow = nullptr;
  int unfinished = 0;
  bool arrived = false;
  std::vector<double> correlation;  // c_k from original demand (Eq. 1)
};

// Composes a registration message for the master: sizes withheld from
// non-clairvoyant schedulers, finished flows (master-restart resync only)
// always carrying their observable sizes.
RegisterCoflowMsg make_registration(const Coflow& coflow, bool sizes_known,
                                    const std::vector<char>& flow_done) {
  RegisterCoflowMsg msg;
  msg.coflow = coflow.id();
  msg.arrival_time = coflow.arrival_time();
  msg.weight = coflow.weight();
  msg.tenant = coflow.tenant();
  msg.sizes_known = sizes_known;
  for (const Flow& f : coflow.flows()) {
    if (flow_done[static_cast<std::size_t>(f.id)]) {
      msg.finished_flows.push_back(f);
    } else {
      msg.flows.push_back(f);
      if (!sizes_known) msg.flows.back().size_bits = 0.0;
    }
  }
  return msg;
}

}  // namespace

DeploymentResult run_deployment(const Fabric& fabric,
                                scenario::WorkloadSource& source,
                                Scheduler& scheduler,
                                const DeploymentOptions& options) {
  NCDRF_CHECK(source.num_machines() == fabric.num_machines(),
              "workload and fabric machine counts differ");
  NCDRF_CHECK(options.tick_s > 0.0, "tick must be positive");

  SimBus bus(options.control_latency_s, options.control_loss_probability,
             options.loss_seed);
  // Observability attachments: the scheduler gets its own span/latency
  // hooks; cluster-level instruments are looked up once and hit per event.
  scheduler.set_observers(options.tracer, options.metrics);
  [[maybe_unused]] obs::Tracer* const tracer = options.tracer;
  obs::Counter* m_reallocs = nullptr;
  obs::Counter* m_rate_updates = nullptr;
  obs::Counter* m_heartbeats = nullptr;
  obs::Counter* m_registrations = nullptr;
  obs::Histogram* m_recovery = nullptr;
  if (options.metrics != nullptr) {
    m_reallocs = &options.metrics->counter("cluster.reallocations");
    m_rate_updates = &options.metrics->counter("cluster.rate_updates_sent");
    m_heartbeats = &options.metrics->counter("cluster.heartbeats_sent");
    m_registrations =
        &options.metrics->counter("cluster.registrations_delivered");
    // Recovery latencies range from one control RTT (~10 ms) to several
    // heartbeat timeouts; the geometry covers 1 ms .. 10 ks.
    m_recovery = &options.metrics->histogram("cluster.recovery_latency_s",
                                             1e-3, 1e4, 1.2589254117941673);
  }
  MasterOptions master_options;
  if (options.heartbeat_timeout_beats > 0) {
    master_options.heartbeat_timeout_s =
        options.heartbeat_timeout_beats * options.heartbeat_period_s;
  }
  auto master = std::make_unique<Master>(fabric, scheduler, master_options);
  bool master_up = true;
  std::vector<Slave> slaves;
  slaves.reserve(static_cast<std::size_t>(fabric.num_machines()));
  for (MachineId m = 0; m < fabric.num_machines(); ++m) {
    slaves.emplace_back(m, options.heartbeat_period_s);
  }
  const auto num_machines = static_cast<std::size_t>(fabric.num_machines());
  std::vector<char> slave_up(num_machines, 1);
  std::vector<char> partitioned(num_machines, 0);
  // Fault time each endpoint last recovered at, or a negative sentinel;
  // cleared (and a latency recorded) by the next RateUpdate delivery.
  std::vector<double> pending_recovery(num_machines, -1.0);

  DeploymentResult result;
  FaultCounters& fc = result.fault_counters;
  // Ground truth grows as the source streams arrivals in. The deque owns
  // every arrived coflow at a stable address (TruthCoflow keeps pointers
  // into it); truth/result.coflows are indexed by the dense coflow ids
  // the WorkloadSource contract guarantees.
  std::deque<Coflow> arrived_coflows;
  std::vector<TruthCoflow> truth;

  // Flow lookup plus per-flow ground truth (survives slave crashes — the
  // stand-in for the data actually moved on the wire); grown on arrival.
  std::vector<const Flow*> flow_by_id;
  std::vector<double> truth_remaining;
  std::vector<double> truth_attained;
  std::vector<char> flow_done;

  FaultPlan faults = options.faults;  // consumable copy
  const double base_loss = options.control_loss_probability;

  // Resyncs one restarted slave from ground truth; returns flows restored.
  const auto resync_slave = [&](MachineId m, double now) {
    auto& slave = slaves[static_cast<std::size_t>(m)];
    long long restored = 0;
    bool any_unfinished = false;
    for (const TruthCoflow& t : truth) {
      if (!t.arrived) continue;
      for (const Flow& f : t.coflow->flows()) {
        if (f.src != m) continue;
        const auto idx = static_cast<std::size_t>(f.id);
        if (flow_done[idx]) {
          slave.note_finished(f.id);
        } else {
          slave.restore_flow(f, truth_remaining[idx], truth_attained[idx]);
          ++restored;
          any_unfinished = true;
        }
      }
    }
    // Announce the comeback: the heartbeat revives the master's dead
    // marking and repairs any finish reports lost while down.
    slave.heartbeat_now(now, bus);
    if (any_unfinished) pending_recovery[static_cast<std::size_t>(m)] = now;
    return restored;
  };

  const auto apply_fault = [&](const FaultEvent& e, double now) {
    const auto m = static_cast<std::size_t>(std::max<MachineId>(e.machine, 0));
    switch (e.kind) {
      case FaultKind::kSlaveCrash:
        NCDRF_CHECK(e.machine >= 0 && m < num_machines && slave_up[m],
                    "slave crash needs a live slave");
        slaves[m].crash();
        slave_up[m] = 0;
        ++fc.slave_crashes;
        NCDRF_TRACE_ASYNC_BEGIN(tracer, obs::EventKind::kSlaveDown, now,
                                e.machine);
        break;
      case FaultKind::kSlaveRestart:
        NCDRF_CHECK(e.machine >= 0 && m < num_machines && !slave_up[m],
                    "slave restart needs a crashed slave");
        slave_up[m] = 1;
        fc.flows_resynced += resync_slave(e.machine, now);
        ++fc.slave_restarts;
        NCDRF_TRACE_ASYNC_END(tracer, obs::EventKind::kSlaveDown, now,
                              e.machine);
        break;
      case FaultKind::kMasterCrash:
        NCDRF_CHECK(master_up, "master crash needs a live master");
        fc.slaves_declared_dead += master->slaves_declared_dead();
        fc.slaves_revived += master->slaves_revived();
        fc.flows_quarantined += master->flows_quarantined();
        master.reset();
        master_up = false;
        ++fc.master_crashes;
        NCDRF_TRACE_ASYNC_BEGIN(tracer, obs::EventKind::kMasterDown, now, 0);
        break;
      case FaultKind::kMasterRestart: {
        NCDRF_CHECK(!master_up, "master restart needs a crashed master");
        master =
            std::make_unique<Master>(fabric, scheduler, master_options, now);
        master_up = true;
        ++fc.master_restarts;
        NCDRF_TRACE_ASYNC_END(tracer, obs::EventKind::kMasterDown, now, 0);
        // Clients re-register every arrived, unfinished coflow (the
        // prototype's RPC retry after a connection reset); slaves
        // re-announce so attained service resyncs from heartbeats.
        for (const TruthCoflow& t : truth) {
          if (!t.arrived || t.unfinished == 0) continue;
          bus.send(now, master_address(),
                   make_registration(*t.coflow, scheduler.clairvoyant(),
                                     flow_done));
          ++fc.coflows_reregistered;
        }
        for (std::size_t s = 0; s < num_machines; ++s) {
          if (slave_up[s] && slaves[s].live_flows() > 0) {
            slaves[s].heartbeat_now(now, bus);
            pending_recovery[s] = now;
          }
        }
        break;
      }
      case FaultKind::kPartitionStart:
        NCDRF_CHECK(e.machine >= 0 && m < num_machines && !partitioned[m],
                    "partition start needs a connected machine");
        partitioned[m] = 1;
        ++fc.partitions_started;
        NCDRF_TRACE_ASYNC_BEGIN(tracer, obs::EventKind::kPartition, now,
                                e.machine);
        break;
      case FaultKind::kPartitionHeal:
        NCDRF_CHECK(e.machine >= 0 && m < num_machines && partitioned[m],
                    "partition heal needs a partitioned machine");
        partitioned[m] = 0;
        ++fc.partitions_healed;
        NCDRF_TRACE_ASYNC_END(tracer, obs::EventKind::kPartition, now,
                              e.machine);
        if (slave_up[m]) {
          slaves[m].heartbeat_now(now, bus);
          if (slaves[m].live_flows() > 0) pending_recovery[m] = now;
        }
        break;
      case FaultKind::kLossBurstStart:
        bus.set_loss_probability(e.loss_probability);
        ++fc.loss_bursts;
        NCDRF_TRACE_ASYNC_BEGIN(tracer, obs::EventKind::kLossBurst, now, 0,
                                e.loss_probability);
        break;
      case FaultKind::kLossBurstEnd:
        bus.set_loss_probability(base_loss);
        NCDRF_TRACE_ASYNC_END(tracer, obs::EventKind::kLossBurst, now, 0);
        break;
    }
  };

  int coflows_remaining = 0;

  // Admits one pulled submission: grows ground truth and the result
  // records, registers with the master (when up), and hands flows to the
  // live slaves.
  const auto admit_coflow = [&](Coflow&& pulled, double at) {
    arrived_coflows.push_back(std::move(pulled));
    const Coflow& coflow = arrived_coflows.back();
    NCDRF_CHECK(coflow.id() == static_cast<CoflowId>(truth.size()),
                "workload source must stream dense coflow ids");
    truth.emplace_back();
    TruthCoflow& t = truth.back();
    t.coflow = &coflow;
    t.unfinished = coflow.width();
    t.arrived = true;
    result.coflows.emplace_back();
    CoflowRecord& rec = result.coflows.back();
    rec.id = coflow.id();
    rec.arrival = coflow.arrival_time();
    rec.width = coflow.width();
    rec.max_flow_bits = coflow.max_flow_bits();
    rec.total_bits = coflow.total_bits();
    const DemandVectors d = coflow.demand(fabric);
    t.correlation = d.correlation();
    for (LinkId i = 0; i < fabric.num_links(); ++i) {
      const auto idx = static_cast<std::size_t>(i);
      rec.min_cct = std::max(rec.min_cct, d.demand[idx] / fabric.capacity(i));
    }
    for (const Flow& f : coflow.flows()) {
      NCDRF_CHECK(f.src >= 0 && f.src < fabric.num_machines() && f.dst >= 0 &&
                      f.dst < fabric.num_machines(),
                  "flow endpoints out of range for the fabric");
      const auto idx = static_cast<std::size_t>(f.id);
      if (idx >= flow_by_id.size()) {
        flow_by_id.resize(idx + 1, nullptr);
        truth_remaining.resize(idx + 1, 0.0);
        truth_attained.resize(idx + 1, 0.0);
        flow_done.resize(idx + 1, 0);
      }
      flow_by_id[idx] = &f;
      truth_remaining[idx] = f.size_bits;
    }
    ++coflows_remaining;
    if (master_up) {
      bus.send(at, master_address(),
               make_registration(coflow, scheduler.clairvoyant(), flow_done));
    }
    // Slaves start tracking their local flows immediately (the daemon
    // sits next to the application), but send nothing until rated. A
    // crashed slave picks its flows up from ground truth on restart.
    for (const Flow& f : coflow.flows()) {
      if (slave_up[static_cast<std::size_t>(f.src)]) {
        slaves[static_cast<std::size_t>(f.src)].add_flow(f);
      }
    }
  };

  double now = 0.0;
  double next_progress_sample = 0.0;
  double next_refresh = 0.0;

  while (coflows_remaining > 0 || source.peek() != nullptr) {
    NCDRF_CHECK(now <= options.max_time_s,
                "deployment time limit exceeded under " + scheduler.name());

    // 0. Scripted faults fire first: a crash at t kills the daemon before
    // anything else happens in tick t.
    for (const FaultEvent& e : faults.due(now)) apply_fault(e, now);

    // 1. Pull due submissions off the workload source and register them
    // (client → master over the bus). While the master is down the
    // client's RPC fails; the master-restart handler re-registers every
    // arrived coflow, covering the gap.
    while (const serve::Submission* due = source.peek()) {
      if (due->submit_time > now + 1e-12) break;
      serve::Submission sub = source.next();
      admit_coflow(Coflow(sub.coflow, sub.submit_time, std::move(sub.flows),
                          sub.weight, sub.client),
                   now);
    }

    // 2. Deliver due control messages, dropping any whose endpoint is
    // down or whose path is partitioned at delivery time.
    for (SimBus::Delivery& d : bus.deliver_due(now)) {
      if (d.to.is_master) {
        MachineId origin = -1;
        if (const auto* hb = std::get_if<HeartbeatMsg>(&d.payload)) {
          origin = hb->machine;
        } else if (const auto* fin =
                       std::get_if<FlowFinishedMsg>(&d.payload)) {
          origin = flow_by_id[static_cast<std::size_t>(fin->flow)]->src;
        }
        const bool cut =
            origin >= 0 && partitioned[static_cast<std::size_t>(origin)];
        if (!master_up || cut) {
          ++fc.messages_dropped_at_down_endpoint;
          continue;
        }
        if (auto* reg = std::get_if<RegisterCoflowMsg>(&d.payload)) {
          master->on_register(*reg);
          NCDRF_TRACE_INSTANT(
              tracer, obs::EventKind::kClusterRegister, d.deliver_time,
              reg->coflow, static_cast<std::int64_t>(reg->flows.size()));
          if (m_registrations != nullptr) m_registrations->inc();
        } else if (auto* fin = std::get_if<FlowFinishedMsg>(&d.payload)) {
          master->on_flow_finished(*fin);
        } else if (auto* hb = std::get_if<HeartbeatMsg>(&d.payload)) {
          master->on_heartbeat(*hb, d.deliver_time);
          NCDRF_TRACE_INSTANT(tracer, obs::EventKind::kClusterHeartbeat,
                              d.deliver_time, hb->machine);
        }
      } else {
        const auto m = static_cast<std::size_t>(d.to.machine);
        if (!slave_up[m] || partitioned[m]) {
          ++fc.messages_dropped_at_down_endpoint;
          continue;
        }
        if (auto* rates = std::get_if<RateUpdateMsg>(&d.payload)) {
          slaves[m].on_rate_update(*rates);
          if (pending_recovery[m] >= 0.0) {
            const double latency = d.deliver_time - pending_recovery[m];
            result.recovery_latencies_s.push_back(latency);
            pending_recovery[m] = -1.0;
            NCDRF_TRACE_INSTANT(tracer, obs::EventKind::kRecovery,
                                d.deliver_time, d.to.machine, 0, latency);
            if (m_recovery != nullptr) m_recovery->observe(latency);
          }
        }
      }
    }

    // 3. Master declares silent slaves dead, then reallocates when its
    // view changed or on the periodic refresh that re-pushes rates lost
    // to control-plane failures. While down it does neither; slaves keep
    // enforcing their last rates (graceful degradation).
    if (master_up) {
      master->check_liveness(now);
      if (master->dirty() ||
          (options.reallocation_refresh_period_s > 0.0 &&
           now + 1e-12 >= next_refresh && master->active_coflows() > 0)) {
#if NCDRF_TRACE_ENABLED
        if (tracer != nullptr) {
          tracer->begin(obs::EventKind::kClusterReallocate, now);
        }
#endif
        const int updates = master->reallocate(now, bus);
#if NCDRF_TRACE_ENABLED
        if (tracer != nullptr) {
          tracer->end(obs::EventKind::kClusterReallocate, now, updates);
        }
#endif
        ++result.num_reallocations;
        if (m_reallocs != nullptr) m_reallocs->inc();
        if (m_rate_updates != nullptr) m_rate_updates->inc(updates);
        next_refresh = now + options.reallocation_refresh_period_s;
      }
    }

    // 4. Data plane: desired rates → physical contention → transfer.
    // Crashed slaves send nothing; partitioned slaves keep sending at
    // their last rates (the partition cuts control, not data).
    std::vector<double> link_demand(
        static_cast<std::size_t>(fabric.num_links()), 0.0);
    std::vector<std::pair<FlowId, double>> sends;  // (flow, desired rate)
    for (std::size_t s = 0; s < num_machines; ++s) {
      if (!slave_up[s]) continue;
      for (const auto& [flow_id, rate] : slaves[s].desired_rates()) {
        if (rate <= 0.0) continue;
        const Flow* f = flow_by_id[static_cast<std::size_t>(flow_id)];
        link_demand[static_cast<std::size_t>(fabric.uplink(f->src))] += rate;
        link_demand[static_cast<std::size_t>(fabric.downlink(f->dst))] +=
            rate;
        sends.emplace_back(flow_id, rate);
      }
    }
    std::vector<double> scale(static_cast<std::size_t>(fabric.num_links()),
                              1.0);
    for (LinkId i = 0; i < fabric.num_links(); ++i) {
      const auto idx = static_cast<std::size_t>(i);
      if (link_demand[idx] > fabric.capacity(i)) {
        scale[idx] = fabric.capacity(i) / link_demand[idx];
      }
    }

    // Realized per-flow rates this tick (kept for progress sampling).
    std::vector<std::pair<const Flow*, double>> realized;
    realized.reserve(sends.size());
    for (const auto& [flow_id, rate] : sends) {
      const Flow* f = flow_by_id[static_cast<std::size_t>(flow_id)];
      const double s = std::min(
          scale[static_cast<std::size_t>(fabric.uplink(f->src))],
          scale[static_cast<std::size_t>(fabric.downlink(f->dst))]);
      realized.emplace_back(f, rate * s);
    }

    // 5. Progress sampling (Fig. 8), before committing the transfer.
    // Remaining demand comes from ground truth so flows stranded on a
    // crashed slave still count as pending.
    if (options.record_progress && now + 1e-12 >= next_progress_sample) {
      next_progress_sample = now + options.progress_sample_period_s;
      for (std::size_t k = 0; k < truth.size(); ++k) {
        if (!truth[k].arrived || truth[k].unfinished == 0) continue;
        // Realized per-link allocation for this coflow, its remaining
        // per-link demand, and Eq. 1 under the configured normalization.
        std::vector<double> link_alloc(
            static_cast<std::size_t>(fabric.num_links()), 0.0);
        std::vector<double> rem_demand(
            static_cast<std::size_t>(fabric.num_links()), 0.0);
        double rem_bottleneck = 0.0;
        for (const Flow& f : truth[k].coflow->flows()) {
          const double rem = truth_remaining[static_cast<std::size_t>(f.id)];
          if (rem <= 0.0 || flow_done[static_cast<std::size_t>(f.id)]) {
            continue;
          }
          rem_demand[static_cast<std::size_t>(fabric.uplink(f.src))] += rem;
          rem_demand[static_cast<std::size_t>(fabric.downlink(f.dst))] +=
              rem;
        }
        for (const double d : rem_demand) {
          rem_bottleneck = std::max(rem_bottleneck, d);
        }
        for (const auto& [f, rate] : realized) {
          if (f->coflow != truth[k].coflow->id()) continue;
          link_alloc[static_cast<std::size_t>(fabric.uplink(f->src))] += rate;
          link_alloc[static_cast<std::size_t>(fabric.downlink(f->dst))] +=
              rate;
        }
        double progress = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < link_alloc.size(); ++i) {
          if (rem_demand[i] <= 0.0) continue;
          const double c =
              options.progress_normalization ==
                      ProgressNormalization::kRemainingDemand
                  ? rem_demand[i] / rem_bottleneck
                  : truth[k].correlation[i];
          if (c > 0.0) {
            progress = std::min(progress, link_alloc[i] / c);
          }
        }
        if (!std::isfinite(progress)) continue;
        result.progress.push_back(ProgressSample{
            now, now + options.progress_sample_period_s,
            truth[k].coflow->id(), progress});
      }
    }

    for (const auto& [f, rate] : realized) {
      Slave& slave = slaves[static_cast<std::size_t>(f->src)];
      const double bits = rate * options.tick_s;
      const auto idx = static_cast<std::size_t>(f->id);
      truth_attained[idx] += bits;
      truth_remaining[idx] = std::max(truth_remaining[idx] - bits, 0.0);
      if (slave.commit_transfer(f->id, bits)) {
        flow_done[idx] = 1;
        const double finish_time = now + options.tick_s;
        // Best-effort with retry; the heartbeat finished-flow list and
        // the periodic refresh are the backstops past the last attempt.
        bus.send_with_retry(finish_time, master_address(),
                            FlowFinishedMsg{f->id, f->coflow, finish_time},
                            options.finish_report_retry);
        TruthCoflow& t = truth[static_cast<std::size_t>(f->coflow)];
        if (--t.unfinished == 0) {
          CoflowRecord& rec =
              result.coflows[static_cast<std::size_t>(f->coflow)];
          rec.completion = finish_time;
          rec.cct = finish_time - rec.arrival;
          --coflows_remaining;
        }
      }
    }

    // 6. Heartbeats (crashed slaves are silent; a partitioned slave's
    // heartbeat is sent but dropped at delivery).
    for (std::size_t s = 0; s < num_machines; ++s) {
      if (slave_up[s] && slaves[s].maybe_heartbeat(now, bus) &&
          m_heartbeats != nullptr) {
        m_heartbeats->inc();
      }
    }

    now += options.tick_s;
  }

  result.makespan = now;
  result.messages_sent = bus.total_sent();
  result.messages_dropped = bus.total_dropped();
  fc.bus_retries = bus.total_retries();
  if (master_up) {
    fc.slaves_declared_dead += master->slaves_declared_dead();
    fc.slaves_revived += master->slaves_revived();
    fc.flows_quarantined += master->flows_quarantined();
  }
  return result;
}

DeploymentResult run_deployment(const Fabric& fabric, const Trace& trace,
                                Scheduler& scheduler,
                                const DeploymentOptions& options) {
  NCDRF_CHECK(trace.num_machines == fabric.num_machines(),
              "trace and fabric machine counts differ");
  scenario::TraceSource source(&trace);
  return run_deployment(fabric, source, scheduler, options);
}

}  // namespace ncdrf
