// Slave: the per-machine enforcement daemon (paper Sec. V-B).
//
// Each slave owns the flows originating at its machine. It applies the
// master's last RateUpdate as a token-bucket egress shaper per flow (the
// tc/htb stand-in), advances transfers in discrete ticks, reports attained
// service in periodic heartbeats, and reports flow completions. A flow
// whose rate the master has not yet assigned sends nothing — exactly the
// registration-to-first-allocation gap of the real prototype.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cluster/bus.h"
#include "coflow/flow.h"

namespace ncdrf {

class Slave {
 public:
  Slave(MachineId machine, double heartbeat_period_s);

  MachineId machine() const { return machine_; }

  // Starts enforcing a newly arrived local flow (remaining = full size).
  void add_flow(const Flow& flow);

  // Daemon death: every local shaper and its state vanish. The deployment
  // (standing in for the machine's data on disk) resyncs via restore_flow
  // and note_finished when the daemon comes back.
  void crash();

  // Reinstalls a flow after a restart with its true remaining/attained
  // service. The rate starts at 0 until the master's next RateUpdate.
  void restore_flow(const Flow& flow, double remaining_bits,
                    double attained_bits);

  // Records a locally finished flow id so heartbeats keep repeating it —
  // the repair channel for lost FlowFinished reports.
  void note_finished(FlowId flow);

  void on_rate_update(const RateUpdateMsg& msg);

  // The rate the shaper would send at this tick for each live local flow:
  // (flow, desired rate). The deployment applies physical link contention
  // on top and calls commit_transfer with the realized bytes.
  std::vector<std::pair<FlowId, double>> desired_rates() const;

  // Applies `bits` of realized transfer to a flow over one tick; returns
  // true if the flow just finished (caller reports FlowFinished).
  bool commit_transfer(FlowId flow, double bits);

  double remaining_bits(FlowId flow) const;
  // The causal trace id delivered with the flow's last RateUpdate (0 =
  // untraced or no update yet) — the telemetry plane's proof that a
  // submission's span made it all the way to the enforcement point.
  std::uint64_t trace_id(FlowId flow) const;
  int live_flows() const { return static_cast<int>(flows_.size()); }

  // Emits a heartbeat if one is due at `now`; returns whether one was
  // actually sent (a due beat with nothing to report stays silent).
  bool maybe_heartbeat(double now, SimBus& bus);

  // Emits a heartbeat immediately (reliably) and resets the schedule —
  // the announce-yourself message after a restart or partition heal.
  void heartbeat_now(double now, SimBus& bus);

 private:
  struct LocalFlow {
    Flow flow;
    double remaining_bits = 0.0;
    double attained_bits = 0.0;
    double rate_bps = 0.0;  // 0 until the first RateUpdate arrives
    std::uint64_t trace_id = 0;  // from the last traced RateUpdate
  };

  HeartbeatMsg build_heartbeat() const;

  MachineId machine_;
  double heartbeat_period_;
  double next_heartbeat_ = 0.0;
  std::unordered_map<FlowId, LocalFlow> flows_;
  std::vector<FlowId> finished_ids_;  // locally finished, re-advertised
};

}  // namespace ncdrf
