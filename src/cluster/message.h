// Control-plane messages of the master/slave deployment (paper Sec. V-B).
//
// The EC2 prototype is a Python master plus per-machine slave daemons:
// coflows register through a public API, the master runs Algorithm 1 and
// pushes per-flow rates, slaves enforce them with tc/htb and report status
// in periodic heartbeats. This emulation exchanges the same four message
// kinds over a latency-modelling bus.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "coflow/flow.h"

namespace ncdrf {

// A coflow registering with the master. `sizes_known` mirrors the paper's
// API ("indicates the amount of data in each flow"): clairvoyant baselines
// (DRF/HUG) receive sizes; NC-DRF and the other non-clairvoyant policies
// register with sizes stripped.
struct RegisterCoflowMsg {
  CoflowId coflow = -1;
  double arrival_time = 0.0;
  double weight = 1.0;      // tenant share weight
  int tenant = -1;          // submitting client (-1 = unattributed)
  std::vector<Flow> flows;  // size_bits zeroed unless sizes_known
  bool sizes_known = false;
  // Re-registration after a master restart: flows already delivered in
  // full. These carry their real sizes even for non-clairvoyant policies —
  // the attained service of a finished flow is observable, not predicted.
  std::vector<Flow> finished_flows;
  // Causal trace/span id stamped at submission (0 = untraced). Carried
  // through the master into RateUpdateMsg so the telemetry plane can
  // attribute end-to-end scheduling latency per coflow (obs/tracer.h
  // kServeAdmit/kServeAllocCover/kServeFirstPush).
  std::uint64_t trace_id = 0;
};

// Master → slave: new enforced rates for the flows this slave originates.
struct RateUpdateMsg {
  std::vector<std::pair<FlowId, double>> rates_bps;
  // Causal trace ids parallel to rates_bps (each flow tagged with its
  // coflow's submission trace id). Empty when no registered coflow was
  // traced — the common case outside the serving front-end, so untraced
  // deployments pay nothing.
  std::vector<std::uint64_t> trace_ids;
};

// Slave → master: periodic status with attained bytes per local flow.
// `finished_flows` repeats the ids of locally finished flows so a lost
// FlowFinished report is repaired by the next heartbeat that survives.
struct HeartbeatMsg {
  MachineId machine = -1;
  std::vector<std::pair<FlowId, double>> attained_bits;
  std::vector<FlowId> finished_flows;
};

// Slave → master: a local flow delivered its last byte.
struct FlowFinishedMsg {
  FlowId flow = -1;
  CoflowId coflow = -1;
  double finish_time = 0.0;
};

using MessagePayload = std::variant<RegisterCoflowMsg, RateUpdateMsg,
                                    HeartbeatMsg, FlowFinishedMsg>;

// Bus addresses: the master, or slave `machine`.
struct Address {
  bool is_master = false;
  MachineId machine = -1;
};

inline Address master_address() { return Address{true, -1}; }
inline Address slave_address(MachineId machine) {
  return Address{false, machine};
}

}  // namespace ncdrf
