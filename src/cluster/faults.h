// Deterministic fault injection for the cluster emulation — the robustness
// analogue of the scheduler perf counters.
//
// A FaultPlan is a timed script of control-plane failures — slave
// crash/restart, master crash/restart, master<->slave partitions and
// bus-wide message-loss bursts — that run_deployment consumes as simulated
// time advances. Plans are plain data, built either explicitly (unit tests
// replay exact scenarios event by event) or by the seeded churn generator
// (randomized stress that is still perfectly reproducible). Either way a
// failure scenario is a replayable deterministic test, never a flaky
// probabilistic one.
#pragma once

#include <cstdint>
#include <vector>

#include "fabric/fabric.h"

namespace ncdrf {

enum class FaultKind {
  kSlaveCrash,      // daemon dies: local enforcement state is lost
  kSlaveRestart,    // daemon restarts: re-registers, flows are resynced
  kMasterCrash,     // controller dies: its view is lost
  kMasterRestart,   // controller restarts: view rebuilt from re-reports
  kPartitionStart,  // master<->slave messages drop in both directions
  kPartitionHeal,   // partition ends; heartbeats resume
  kLossBurstStart,  // bus loss probability raised to `loss_probability`
  kLossBurstEnd,    // bus loss probability restored to the base rate
};

const char* fault_kind_name(FaultKind kind);

struct FaultEvent {
  double time = 0.0;
  FaultKind kind = FaultKind::kSlaveCrash;
  MachineId machine = -1;         // slave/partition events; -1 otherwise
  double loss_probability = 0.0;  // kLossBurstStart only
};

// An ordered, consumable script of fault events. `due` hands out events in
// time order exactly once, which is how run_deployment drives it.
class FaultPlan {
 public:
  FaultPlan() = default;

  // Chainable scenario builders (times in seconds of simulated time).
  FaultPlan& crash_slave(double time, MachineId machine);
  FaultPlan& restart_slave(double time, MachineId machine);
  FaultPlan& crash_master(double time);
  FaultPlan& restart_master(double time);
  // Partition machine <-> master over [start, heal).
  FaultPlan& partition(double start, double heal, MachineId machine);
  // Raise the bus loss probability to `loss_probability` over [start, end).
  FaultPlan& loss_burst(double start, double end, double loss_probability);
  // Generic insertion; keeps the plan sorted by (time, insertion order).
  FaultPlan& add(const FaultEvent& event);

  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  bool exhausted() const { return next_ >= events_.size(); }
  const std::vector<FaultEvent>& events() const { return events_; }

  // Pops every event due at or before `now`, in time order. `now` must be
  // non-decreasing across calls; the plan must not be modified once
  // consumption has begun.
  std::vector<FaultEvent> due(double now);

 private:
  std::vector<FaultEvent> events_;  // sorted by (time, insertion order)
  std::size_t next_ = 0;
};

// Knobs for the seeded churn generator. The defaults describe a cluster
// where a fault cycle lands roughly once a second for ten seconds.
struct ChurnOptions {
  double start_s = 0.5;     // no faults before this (lets the run warm up)
  double horizon_s = 10.0;  // no new faults after this (repairs may finish
                            // later; every crash gets its restart and every
                            // partition its heal)
  double mean_gap_s = 1.0;  // exponential gap between fault cycles
  double min_downtime_s = 0.1;
  double max_downtime_s = 0.8;
  // Per-cycle fault mix; the remainder (1 − sum) is a slave crash cycle.
  double master_crash_fraction = 0.1;
  double partition_fraction = 0.2;
  double loss_burst_fraction = 0.15;
  double burst_loss_probability = 0.6;
};

// Builds a valid churn plan (alternating crash/restart per target,
// partitions always heal, bursts always end) deterministically from the
// seed. Requires machines >= 1 and sane option ranges.
FaultPlan random_churn_plan(std::uint64_t seed, int machines,
                            const ChurnOptions& options = {});

// Per-fault-event counters accumulated by run_deployment and exported into
// the perf JSON (metrics/export.h:write_deployment_json).
struct FaultCounters {
  long long slave_crashes = 0;
  long long slave_restarts = 0;
  long long master_crashes = 0;
  long long master_restarts = 0;
  long long partitions_started = 0;
  long long partitions_healed = 0;
  long long loss_bursts = 0;
  // Liveness-tracking outcomes (master-side).
  long long slaves_declared_dead = 0;
  long long slaves_revived = 0;
  long long flows_quarantined = 0;
  // Recovery work.
  long long flows_resynced = 0;        // slave restarts reinstalling flows
  long long coflows_reregistered = 0;  // client re-registration on master
                                       // restart
  // Messages dropped because their destination endpoint was down or
  // partitioned (on top of random bus loss).
  long long messages_dropped_at_down_endpoint = 0;
  long long bus_retries = 0;  // retransmissions by send_with_retry
};

}  // namespace ncdrf
