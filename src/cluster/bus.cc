#include "cluster/bus.h"

#include <algorithm>

#include "common/check.h"

namespace ncdrf {

SimBus::SimBus(double latency_s, double loss_probability, std::uint64_t seed)
    : latency_(latency_s), loss_probability_(loss_probability), rng_(seed) {
  NCDRF_CHECK(latency_s >= 0.0, "bus latency must be non-negative");
  NCDRF_CHECK(loss_probability >= 0.0 && loss_probability < 1.0,
              "loss probability must be in [0, 1)");
}

void SimBus::send(double now, Address to, MessagePayload payload) {
  queue_.emplace(std::make_pair(now + latency_, seq_++),
                 Envelope{to, std::move(payload)});
}

bool SimBus::send_unreliable(double now, Address to,
                             MessagePayload payload) {
  if (loss_probability_ > 0.0 && rng_.bernoulli(loss_probability_)) {
    ++dropped_;
    return false;
  }
  send(now, to, std::move(payload));
  return true;
}

bool SimBus::send_with_retry(double now, Address to, MessagePayload payload,
                             const RetryPolicy& policy) {
  NCDRF_CHECK(policy.max_attempts >= 1, "retry needs at least one attempt");
  NCDRF_CHECK(policy.backoff_s >= 0.0 && policy.multiplier >= 1.0,
              "retry backoff must be non-negative and non-shrinking");
  // All attempts are drawn up front (the outcome is deterministic in the
  // seed either way); the first surviving attempt is the one transmitted.
  //
  // The backoff ladder resumes from the destination's stored state, so
  // overlapping repair loops to one slow destination keep escalating
  // instead of each restarting at backoff_s. Any surviving attempt resets
  // the destination.
  double& pending = retry_backoff_[destination_key(to)];
  double send_time = now;
  double backoff = std::max(policy.backoff_s, pending);
  for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
    if (attempt > 0) {
      send_time += backoff;
      backoff *= policy.multiplier;
      ++retries_;
    }
    if (loss_probability_ <= 0.0 || !rng_.bernoulli(loss_probability_)) {
      pending = 0.0;
      send(send_time, to, std::move(payload));
      return true;
    }
    ++dropped_;
    // The delay the next transmission to this destination should wait —
    // whether it is this call's next attempt or a later call's first retry.
    pending = backoff;
  }
  return false;
}

double SimBus::pending_backoff(Address to) const {
  const auto it = retry_backoff_.find(destination_key(to));
  return it != retry_backoff_.end() ? it->second : 0.0;
}

void SimBus::set_loss_probability(double loss_probability) {
  NCDRF_CHECK(loss_probability >= 0.0 && loss_probability < 1.0,
              "loss probability must be in [0, 1)");
  loss_probability_ = loss_probability;
}

std::vector<SimBus::Delivery> SimBus::deliver_due(double now) {
  std::vector<Delivery> due;
  auto it = queue_.begin();
  while (it != queue_.end() && it->first.first <= now) {
    due.push_back(Delivery{it->second.to, std::move(it->second.payload),
                           it->first.first});
    it = queue_.erase(it);
  }
  return due;
}

}  // namespace ncdrf
