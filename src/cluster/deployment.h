// Deployment: the wired-up master/slave cluster emulation — the stand-in
// for the paper's 60-node EC2 testbed (Sec. V-B; DESIGN.md substitutions).
//
// Discrete-time loop with tick `tick_s`:
//   1. coflows whose arrival time has come register with the master over
//      the bus (one-way `control_latency_s`);
//   2. due messages are delivered (registrations / finish reports /
//      heartbeats to the master, rate updates to slaves);
//   3. if the master's view changed, it reallocates and pushes rates;
//   4. slaves send at their enforced rates; physical uplink/downlink
//      contention scales concurrent senders down proportionally (rates can
//      transiently oversubscribe because the master's view is stale);
//   5. finished flows are reported back; per-coflow progress is sampled.
//
// The paper's observables fall out: Fig. 7's CCTs and Fig. 8's progress
// curves, under any Scheduler.
#pragma once

#include "cluster/bus.h"
#include "cluster/faults.h"
#include "cluster/master.h"
#include "cluster/slave.h"
#include "sim/sim.h"
#include "trace/trace.h"

namespace ncdrf {

namespace scenario {
class WorkloadSource;
}  // namespace scenario

// How Fig. 8-style progress samples normalize the per-link allocation
// (Eq. 1's correlation vector):
//   kOriginalDemand  — the coflow's static correlation from full demand,
//                      restricted to links with data left (bounded, used
//                      for disparity-style comparisons);
//   kRemainingDemand — the instantaneous correlation from remaining
//                      demand (the attainable rate of the slowest
//                      remaining part; what "equal progress" means at an
//                      instant).
enum class ProgressNormalization { kOriginalDemand, kRemainingDemand };

struct DeploymentOptions {
  double tick_s = 0.01;             // enforcement quantum (10 ms)
  double control_latency_s = 0.005; // one-way master<->slave latency
  double heartbeat_period_s = 0.1;
  double progress_sample_period_s = 0.25;  // Fig. 8 sampling
  bool record_progress = true;
  ProgressNormalization progress_normalization =
      ProgressNormalization::kRemainingDemand;
  double max_time_s = 36000.0;

  // Failure injection: best-effort control messages (rate updates,
  // heartbeats, flow-finished reports) are dropped with this probability.
  // Registrations use a reliable channel (an RPC in the prototype).
  double control_loss_probability = 0.0;
  std::uint64_t loss_seed = 1;

  // The master re-pushes rates at this period even without view changes,
  // which bounds the damage of any lost rate update or finish report
  // (the prototype's heartbeat-driven refresh). 0 disables.
  double reallocation_refresh_period_s = 1.0;

  // Liveness tracking: a slave silent for this many heartbeat periods is
  // declared dead and its flows quarantined. <= 0 disables.
  int heartbeat_timeout_beats = 3;

  // Flow-finished reports retransmit with this policy when lost (the
  // heartbeat finished-flow list is the backstop beyond the last retry).
  RetryPolicy finish_report_retry{3, 0.02, 2.0};

  // Timed fault script consumed as simulated time advances; empty by
  // default (no faults — byte-identical behaviour to the pre-fault loop).
  FaultPlan faults;

  // --- Observability (optional, null = off) ------------------------------
  //
  // Virtual-clock event tracer: registrations, heartbeats, reallocation
  // spans, fault lifetimes as async spans (slave_down / master_down /
  // partition / loss_burst) and recovery instants. Also offered to the
  // scheduler via Scheduler::set_observers.
  obs::Tracer* tracer = nullptr;
  // Counters (reallocations, heartbeats, registrations) and the
  // cluster.recovery_latency_s histogram.
  obs::MetricsRegistry* metrics = nullptr;
};

struct DeploymentResult {
  std::vector<CoflowRecord> coflows;   // indexed by coflow id
  std::vector<ProgressSample> progress;
  double makespan = 0.0;
  long long num_reallocations = 0;
  long long messages_sent = 0;
  long long messages_dropped = 0;  // random bus loss, incl. lost retries
  FaultCounters fault_counters;
  // Fault-to-repair reallocation latency: time from a slave restart,
  // partition heal, or master restart until the affected slave receives
  // its next RateUpdate. One entry per recovered endpoint.
  std::vector<double> recovery_latencies_s;
};

// Runs `source` on an emulated cluster of fabric.num_machines() machines
// under `scheduler` — the scenario-spine entry point. Submissions are
// pulled as simulated time reaches them (client → tenant attribution);
// sizes are registered with the master only when the scheduler is
// clairvoyant. The source must stream dense coflow/flow ids (the
// WorkloadSource contract).
DeploymentResult run_deployment(const Fabric& fabric,
                                scenario::WorkloadSource& source,
                                Scheduler& scheduler,
                                const DeploymentOptions& options = {});

// Trace convenience wrapper: adapts the trace through the spine.
DeploymentResult run_deployment(const Fabric& fabric, const Trace& trace,
                                Scheduler& scheduler,
                                const DeploymentOptions& options = {});

}  // namespace ncdrf
