// Master: the centralized controller of the deployment (paper Sec. V-B).
//
// Mirrors the EC2 prototype's master: it accepts coflow registrations,
// tracks flow liveness from FlowFinished reports and attained service from
// heartbeats, runs the configured Scheduler (Algorithm 1 for NC-DRF) over
// its current view, and emits per-slave RateUpdate messages. The master
// only ever acts on its *view* — which lags reality by the bus latency —
// so the deployment exercises the control-staleness the real system has.
//
// Fault tolerance: with a heartbeat timeout configured, a slave that stays
// silent past the timeout is declared dead; its flows are quarantined
// (excluded from the scheduling view, so their port shares flow back to
// the surviving coflows) until any message from the machine revives it.
// Registration is idempotent and finish reports are lenient, so replays
// and stale messages around a master restart are harmless.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/bus.h"
#include "fabric/fabric.h"
#include "sched/scheduler.h"

namespace ncdrf {

struct MasterOptions {
  // A slave with unfinished flows whose last sign of life is older than
  // this is declared dead by check_liveness. <= 0 disables liveness
  // tracking (every slave is trusted forever — the pre-fault behaviour).
  double heartbeat_timeout_s = 0.0;

  // Erase a coflow's per-flow states when it retires. The default keeps
  // them forever, which is what makes re-registration after a master
  // restart idempotent even for already-retired coflows; long-running
  // serving masters (src/serve/) set this so memory stays proportional to
  // the *active* set under a sustained arrival stream. Only safe when
  // clients never re-register (the serving front-end's contract).
  bool forget_retired = false;
};

// One slave's fresh rate vector from compute_allocation.
struct SlaveRates {
  MachineId machine = -1;
  RateUpdateMsg msg;
};

class Master {
 public:
  Master(const Fabric& fabric, Scheduler& scheduler,
         MasterOptions options = {}, double start_time = 0.0);

  // Message intake. Each may mark the view dirty. Any message from a
  // machine counts as a sign of life and revives it if declared dead.
  void on_register(const RegisterCoflowMsg& msg);
  void on_flow_finished(const FlowFinishedMsg& msg);
  // Batched intake for drivers that learn about many finishes at once (the
  // serving front-end retires whole coflows per epoch): marks every flow,
  // then runs the retirement sweep once instead of per message.
  void on_flows_finished(const std::vector<FlowFinishedMsg>& msgs);
  void on_heartbeat(const HeartbeatMsg& msg, double now);

  bool dirty() const { return dirty_; }

  // Declares dead every slave with unfinished flows that has been silent
  // past the heartbeat timeout. Quarantined flows leave the scheduling
  // view, so the next reallocate releases their port shares. No-op when
  // liveness tracking is disabled.
  void check_liveness(double now);

  // Recomputes the allocation from the current view and enqueues one
  // RateUpdate per machine that originates flows. Clears the dirty flag.
  // Returns the number of RateUpdate messages enqueued.
  int reallocate(double now, SimBus& bus);

  // The kernel half of reallocate, with the push policy left to the
  // caller: rebuilds the view, runs one Scheduler::allocate over it,
  // clamps to capacity, and fills `per_slave` with one rate vector per
  // machine that originates live flows, sorted by machine id
  // (deterministic order). Clears the dirty flag. The returned view stays
  // valid until the next compute_allocation/reallocate call; `alloc` is
  // overwritten. The serving front-end (src/serve/) calls this once per
  // epoch and applies its own bounded-staleness push schedule.
  const ScheduleInput& compute_allocation(double now, Allocation& alloc,
                                          std::vector<SlaveRates>& per_slave);

  int active_coflows() const;
  bool slave_dead(MachineId machine) const {
    return dead_slaves_.contains(machine);
  }
  int dead_slaves() const { return static_cast<int>(dead_slaves_.size()); }

  // Liveness-outcome counters (monotone over the master's lifetime).
  long long slaves_declared_dead() const { return slaves_declared_dead_; }
  long long slaves_revived() const { return slaves_revived_; }
  long long flows_quarantined() const { return flows_quarantined_; }
  long long registrations_ignored() const { return registrations_ignored_; }

 private:
  struct FlowState {
    Flow flow;           // size_bits is 0 unless the coflow registered sizes
    bool finished = false;
    double attained_bits = 0.0;  // last heartbeat report
  };
  struct CoflowState {
    CoflowId id = -1;
    double arrival_time = 0.0;
    double weight = 1.0;
    int tenant = -1;
    bool sizes_known = false;
    std::vector<FlowId> flows;
  };

 public:
  // Causal trace id a coflow registered with (0 = untraced / unknown or
  // retired). The serving front-end reads this back when pairing pushes
  // with submissions; the RateUpdateMsg trace_ids are filled from it.
  std::uint64_t trace_id(CoflowId coflow) const {
    const auto it = trace_ids_.find(coflow);
    return it == trace_ids_.end() ? 0 : it->second;
  }

 private:

  ScheduleInput build_view(double now) const;
  // Marks `machine` alive as of `now`, reviving it if quarantined.
  void note_alive(MachineId machine, double now);
  // Marks one flow finished; returns true if it was a state change.
  bool mark_finished(FlowId flow);
  // Drops coflows whose flows have all finished. O(1) when nothing became
  // retirable since the last sweep — the per-coflow unfinished counters
  // keep epoch cost proportional to load, not to finish-report volume.
  void retire_done_coflows();

  const Fabric& fabric_;
  Scheduler& scheduler_;
  MasterOptions options_;
  std::vector<CoflowState> coflows_;
  std::unordered_map<FlowId, FlowState> flow_states_;
  // Submission trace ids of *active* traced coflows (erased on
  // retirement). any_traced_ keeps the RateUpdate fill a no-op for
  // untraced deployments.
  std::unordered_map<CoflowId, std::uint64_t> trace_ids_;
  bool any_traced_ = false;
  // Live (unfinished, per mark_finished) flow count per *active* coflow —
  // one entry per element of coflows_, erased on retirement. Makes the
  // duplicate-registration check and the all-flows-finished test O(1).
  std::unordered_map<CoflowId, int> unfinished_;
  int retirable_ = 0;  // active coflows whose unfinished count hit zero
  // Last sign of life per machine; machines never heard from default to
  // the master's start time (a freshly registered flow is not instantly
  // orphaned).
  std::unordered_map<MachineId, double> last_alive_;
  std::unordered_set<MachineId> dead_slaves_;
  double start_time_ = 0.0;
  long long slaves_declared_dead_ = 0;
  long long slaves_revived_ = 0;
  long long flows_quarantined_ = 0;
  long long registrations_ignored_ = 0;
  // Remaining-size estimates (size − attained) for clairvoyant policies,
  // indexed by FlowId; grown on demand.
  mutable std::vector<double> remaining_estimate_;
  // The view and clairvoyant wrapper of the last compute_allocation call;
  // members so the returned ScheduleInput reference stays valid and the
  // buffers are reused across epochs.
  ScheduleInput view_;
  std::unique_ptr<ClairvoyantInfo> clairvoyant_info_;
  std::vector<double> clamp_scratch_;
  bool dirty_ = false;
};

}  // namespace ncdrf
