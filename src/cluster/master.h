// Master: the centralized controller of the deployment (paper Sec. V-B).
//
// Mirrors the EC2 prototype's master: it accepts coflow registrations,
// tracks flow liveness from FlowFinished reports and attained service from
// heartbeats, runs the configured Scheduler (Algorithm 1 for NC-DRF) over
// its current view, and emits per-slave RateUpdate messages. The master
// only ever acts on its *view* — which lags reality by the bus latency —
// so the deployment exercises the control-staleness the real system has.
#pragma once

#include <unordered_map>
#include <vector>

#include "cluster/bus.h"
#include "fabric/fabric.h"
#include "sched/scheduler.h"

namespace ncdrf {

class Master {
 public:
  Master(const Fabric& fabric, Scheduler& scheduler);

  // Message intake. Each may mark the view dirty.
  void on_register(const RegisterCoflowMsg& msg);
  void on_flow_finished(const FlowFinishedMsg& msg);
  void on_heartbeat(const HeartbeatMsg& msg);

  bool dirty() const { return dirty_; }

  // Recomputes the allocation from the current view and enqueues one
  // RateUpdate per machine that originates flows. Clears the dirty flag.
  void reallocate(double now, SimBus& bus);

  int active_coflows() const;

 private:
  struct FlowState {
    Flow flow;           // size_bits is 0 unless the coflow registered sizes
    bool finished = false;
    double attained_bits = 0.0;  // last heartbeat report
  };
  struct CoflowState {
    CoflowId id = -1;
    double arrival_time = 0.0;
    double weight = 1.0;
    bool sizes_known = false;
    std::vector<FlowId> flows;
  };

  ScheduleInput build_view(double now) const;

  const Fabric& fabric_;
  Scheduler& scheduler_;
  std::vector<CoflowState> coflows_;
  std::unordered_map<FlowId, FlowState> flow_states_;
  // Remaining-size estimates (size − attained) for clairvoyant policies,
  // indexed by FlowId; grown on demand.
  mutable std::vector<double> remaining_estimate_;
  bool dirty_ = false;
};

}  // namespace ncdrf
