#include "cluster/faults.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace ncdrf {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kSlaveCrash:
      return "slave_crash";
    case FaultKind::kSlaveRestart:
      return "slave_restart";
    case FaultKind::kMasterCrash:
      return "master_crash";
    case FaultKind::kMasterRestart:
      return "master_restart";
    case FaultKind::kPartitionStart:
      return "partition_start";
    case FaultKind::kPartitionHeal:
      return "partition_heal";
    case FaultKind::kLossBurstStart:
      return "loss_burst_start";
    case FaultKind::kLossBurstEnd:
      return "loss_burst_end";
  }
  return "unknown";
}

FaultPlan& FaultPlan::add(const FaultEvent& event) {
  NCDRF_CHECK(next_ == 0, "cannot modify a fault plan being consumed");
  NCDRF_CHECK(event.time >= 0.0, "fault event time must be non-negative");
  // Insert after every event with time <= event.time: the plan stays
  // sorted and same-instant events keep their insertion order (a crash
  // scripted before a restart stays before it).
  const auto pos = std::upper_bound(
      events_.begin(), events_.end(), event,
      [](const FaultEvent& a, const FaultEvent& b) { return a.time < b.time; });
  events_.insert(pos, event);
  return *this;
}

FaultPlan& FaultPlan::crash_slave(double time, MachineId machine) {
  NCDRF_CHECK(machine >= 0, "slave fault needs a machine id");
  return add(FaultEvent{time, FaultKind::kSlaveCrash, machine, 0.0});
}

FaultPlan& FaultPlan::restart_slave(double time, MachineId machine) {
  NCDRF_CHECK(machine >= 0, "slave fault needs a machine id");
  return add(FaultEvent{time, FaultKind::kSlaveRestart, machine, 0.0});
}

FaultPlan& FaultPlan::crash_master(double time) {
  return add(FaultEvent{time, FaultKind::kMasterCrash, -1, 0.0});
}

FaultPlan& FaultPlan::restart_master(double time) {
  return add(FaultEvent{time, FaultKind::kMasterRestart, -1, 0.0});
}

FaultPlan& FaultPlan::partition(double start, double heal, MachineId machine) {
  NCDRF_CHECK(machine >= 0, "partition needs a machine id");
  NCDRF_CHECK(heal > start, "partition must heal after it starts");
  add(FaultEvent{start, FaultKind::kPartitionStart, machine, 0.0});
  return add(FaultEvent{heal, FaultKind::kPartitionHeal, machine, 0.0});
}

FaultPlan& FaultPlan::loss_burst(double start, double end,
                                 double loss_probability) {
  NCDRF_CHECK(end > start, "loss burst must end after it starts");
  NCDRF_CHECK(loss_probability >= 0.0 && loss_probability < 1.0,
              "burst loss probability must be in [0, 1)");
  add(FaultEvent{start, FaultKind::kLossBurstStart, -1, loss_probability});
  return add(FaultEvent{end, FaultKind::kLossBurstEnd, -1, 0.0});
}

std::vector<FaultEvent> FaultPlan::due(double now) {
  std::vector<FaultEvent> out;
  while (next_ < events_.size() && events_[next_].time <= now + 1e-12) {
    out.push_back(events_[next_]);
    ++next_;
  }
  return out;
}

FaultPlan random_churn_plan(std::uint64_t seed, int machines,
                            const ChurnOptions& options) {
  NCDRF_CHECK(machines >= 1, "churn plan needs at least one machine");
  NCDRF_CHECK(options.horizon_s >= options.start_s,
              "churn horizon must not precede its start");
  NCDRF_CHECK(options.mean_gap_s > 0.0, "churn mean gap must be positive");
  NCDRF_CHECK(
      options.min_downtime_s > 0.0 &&
          options.max_downtime_s >= options.min_downtime_s,
      "churn downtime range must be positive and ordered");
  const double mix = options.master_crash_fraction +
                     options.partition_fraction + options.loss_burst_fraction;
  NCDRF_CHECK(options.master_crash_fraction >= 0.0 &&
                  options.partition_fraction >= 0.0 &&
                  options.loss_burst_fraction >= 0.0 && mix <= 1.0,
              "churn fault-mix fractions must be non-negative and sum <= 1");

  Rng rng(seed);
  FaultPlan plan;
  // Earliest time each target may be hit again (its last repair time), so
  // cycles on the same target never overlap.
  std::vector<double> machine_free(static_cast<std::size_t>(machines), 0.0);
  double master_free = 0.0;
  double burst_free = 0.0;

  double t = options.start_s + rng.exponential(1.0 / options.mean_gap_s);
  while (t < options.horizon_s) {
    const double down =
        rng.uniform(options.min_downtime_s, options.max_downtime_s);
    const double pick = rng.uniform();
    if (pick < options.master_crash_fraction) {
      if (master_free <= t) {
        plan.crash_master(t).restart_master(t + down);
        master_free = t + down;
      }
    } else if (pick < options.master_crash_fraction +
                          options.partition_fraction) {
      const auto m = static_cast<MachineId>(rng.uniform_int(0, machines - 1));
      if (machine_free[static_cast<std::size_t>(m)] <= t) {
        plan.partition(t, t + down, m);
        machine_free[static_cast<std::size_t>(m)] = t + down;
      }
    } else if (pick < mix) {
      if (burst_free <= t) {
        plan.loss_burst(t, t + down, options.burst_loss_probability);
        burst_free = t + down;
      }
    } else {
      const auto m = static_cast<MachineId>(rng.uniform_int(0, machines - 1));
      if (machine_free[static_cast<std::size_t>(m)] <= t) {
        plan.crash_slave(t, m).restart_slave(t + down, m);
        machine_free[static_cast<std::size_t>(m)] = t + down;
      }
    }
    t += rng.exponential(1.0 / options.mean_gap_s);
  }
  return plan;
}

}  // namespace ncdrf
