#include "cluster/master.h"

#include <algorithm>

#include "common/check.h"

namespace ncdrf {

Master::Master(const Fabric& fabric, Scheduler& scheduler)
    : fabric_(fabric), scheduler_(scheduler) {}

void Master::on_register(const RegisterCoflowMsg& msg) {
  NCDRF_CHECK(msg.coflow >= 0, "registration with invalid coflow id");
  NCDRF_CHECK(!msg.flows.empty(), "registration with no flows");
  CoflowState state;
  state.id = msg.coflow;
  state.arrival_time = msg.arrival_time;
  state.weight = msg.weight;
  state.sizes_known = msg.sizes_known;
  for (const Flow& f : msg.flows) {
    NCDRF_CHECK(!flow_states_.contains(f.id), "duplicate flow registration");
    flow_states_[f.id] = FlowState{f, false, 0.0};
    state.flows.push_back(f.id);
  }
  coflows_.push_back(std::move(state));
  dirty_ = true;
}

void Master::on_flow_finished(const FlowFinishedMsg& msg) {
  const auto it = flow_states_.find(msg.flow);
  NCDRF_CHECK(it != flow_states_.end(), "finish report for unknown flow");
  if (!it->second.finished) {
    it->second.finished = true;
    dirty_ = true;
  }
  // Drop coflows whose flows have all finished.
  std::erase_if(coflows_, [&](const CoflowState& c) {
    return std::all_of(c.flows.begin(), c.flows.end(), [&](FlowId f) {
      return flow_states_.at(f).finished;
    });
  });
}

void Master::on_heartbeat(const HeartbeatMsg& msg) {
  // Heartbeats refine the clairvoyant remaining-size estimates; they do
  // not by themselves force a reallocation.
  for (const auto& [flow, attained] : msg.attained_bits) {
    const auto it = flow_states_.find(flow);
    if (it != flow_states_.end()) {
      it->second.attained_bits = std::max(it->second.attained_bits, attained);
    }
  }
}

int Master::active_coflows() const {
  return static_cast<int>(coflows_.size());
}

ScheduleInput Master::build_view(double now) const {
  ScheduleInput input;
  input.fabric = &fabric_;
  input.now = now;
  for (const CoflowState& coflow : coflows_) {
    ActiveCoflow view;
    view.id = coflow.id;
    view.arrival_time = coflow.arrival_time;
    view.weight = coflow.weight;
    double attained = 0.0;
    for (const FlowId f : coflow.flows) {
      const FlowState& fs = flow_states_.at(f);
      attained += fs.attained_bits;
      auto& bucket = fs.finished ? view.finished_flows : view.flows;
      bucket.push_back(
          ActiveFlow{fs.flow.id, fs.flow.coflow, fs.flow.src, fs.flow.dst});
    }
    view.attained_bits = attained;
    if (!view.flows.empty()) input.coflows.push_back(std::move(view));
  }
  return input;
}

void Master::reallocate(double now, SimBus& bus) {
  ScheduleInput input = build_view(now);
  dirty_ = false;
  if (input.coflows.empty()) return;

  ClairvoyantInfo info(&remaining_estimate_);
  if (scheduler_.clairvoyant()) {
    // Remaining = registered size − attained (heartbeat view). Registered
    // sizes are required for clairvoyant policies.
    FlowId max_id = 0;
    for (const auto& [id, fs] : flow_states_) max_id = std::max(max_id, id);
    remaining_estimate_.assign(static_cast<std::size_t>(max_id) + 1, 0.0);
    for (const auto& [id, fs] : flow_states_) {
      NCDRF_CHECK(fs.flow.size_bits > 0.0 || fs.finished,
                  "clairvoyant scheduler needs registered flow sizes");
      remaining_estimate_[static_cast<std::size_t>(id)] =
          std::max(fs.flow.size_bits - fs.attained_bits, 0.0);
    }
    input.clairvoyant = &info;
  }

  Allocation alloc = scheduler_.allocate(input);
  clamp_to_capacity(input, alloc);

  // One RateUpdate per originating machine (rates are enforced at the
  // sender, like tc/htb egress shaping).
  std::unordered_map<MachineId, RateUpdateMsg> per_slave;
  for (const ActiveCoflow& coflow : input.coflows) {
    for (const ActiveFlow& flow : coflow.flows) {
      per_slave[flow.src].rates_bps.emplace_back(flow.id,
                                                 alloc.rate(flow.id));
    }
  }
  for (auto& [machine, msg] : per_slave) {
    // Rate updates are best-effort; the periodic refresh re-sends them.
    bus.send_unreliable(now, slave_address(machine), std::move(msg));
  }
}

}  // namespace ncdrf
