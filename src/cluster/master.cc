#include "cluster/master.h"

#include <algorithm>

#include "common/check.h"

namespace ncdrf {

Master::Master(const Fabric& fabric, Scheduler& scheduler,
               MasterOptions options, double start_time)
    : fabric_(fabric),
      scheduler_(scheduler),
      options_(options),
      start_time_(start_time) {}

void Master::on_register(const RegisterCoflowMsg& msg) {
  NCDRF_CHECK(msg.coflow >= 0, "registration with invalid coflow id");
  NCDRF_CHECK(!msg.flows.empty() || !msg.finished_flows.empty(),
              "registration with no flows");
  // Idempotent: a registration that raced a master restart may arrive
  // twice (the original in flight on the bus plus the client's
  // re-registration). The first one wins — even when the coflow already
  // retired, which only its flow states remember.
  const FlowId probe =
      msg.flows.empty() ? msg.finished_flows.front().id : msg.flows.front().id;
  const bool known =
      flow_states_.contains(probe) || unfinished_.contains(msg.coflow);
  if (known) {
    ++registrations_ignored_;
    return;
  }
  CoflowState state;
  state.id = msg.coflow;
  state.arrival_time = msg.arrival_time;
  state.weight = msg.weight;
  state.tenant = msg.tenant;
  state.sizes_known = msg.sizes_known;
  for (const Flow& f : msg.flows) {
    NCDRF_CHECK(!flow_states_.contains(f.id), "duplicate flow registration");
    flow_states_[f.id] = FlowState{f, false, 0.0};
    state.flows.push_back(f.id);
  }
  for (const Flow& f : msg.finished_flows) {
    NCDRF_CHECK(!flow_states_.contains(f.id), "duplicate flow registration");
    // Already delivered in full: attained equals the (observable) size.
    flow_states_[f.id] = FlowState{f, true, f.size_bits};
    state.flows.push_back(f.id);
  }
  unfinished_[msg.coflow] = static_cast<int>(msg.flows.size());
  if (msg.flows.empty()) ++retirable_;  // everything already delivered
  if (msg.trace_id != 0) {
    trace_ids_[msg.coflow] = msg.trace_id;
    any_traced_ = true;
  }
  coflows_.push_back(std::move(state));
  dirty_ = true;
}

bool Master::mark_finished(FlowId flow) {
  const auto it = flow_states_.find(flow);
  // Lenient: a stale finish report may reach a freshly restarted master
  // before the coflow's re-registration does. It is repaired by the
  // finished_flows list of that re-registration.
  if (it == flow_states_.end() || it->second.finished) return false;
  it->second.finished = true;
  // An unfinished flow state implies its coflow is still active, so the
  // counter entry exists.
  if (--unfinished_.at(it->second.flow.coflow) == 0) ++retirable_;
  dirty_ = true;
  return true;
}

void Master::retire_done_coflows() {
  if (retirable_ == 0) return;
  std::erase_if(coflows_, [&](const CoflowState& c) {
    const auto it = unfinished_.find(c.id);
    if (it == unfinished_.end() || it->second != 0) return false;
    unfinished_.erase(it);
    trace_ids_.erase(c.id);
    if (options_.forget_retired) {
      for (const FlowId f : c.flows) flow_states_.erase(f);
    }
    return true;
  });
  retirable_ = 0;
}

void Master::on_flow_finished(const FlowFinishedMsg& msg) {
  const auto it = flow_states_.find(msg.flow);
  if (it != flow_states_.end()) {
    // A finish report is a sign of life from the flow's source machine.
    note_alive(it->second.flow.src, msg.finish_time);
  }
  if (mark_finished(msg.flow)) retire_done_coflows();
}

void Master::on_flows_finished(const std::vector<FlowFinishedMsg>& msgs) {
  bool any = false;
  for (const FlowFinishedMsg& msg : msgs) {
    const auto it = flow_states_.find(msg.flow);
    if (it != flow_states_.end()) {
      note_alive(it->second.flow.src, msg.finish_time);
    }
    any = mark_finished(msg.flow) || any;
  }
  if (any) retire_done_coflows();
}

void Master::on_heartbeat(const HeartbeatMsg& msg, double now) {
  note_alive(msg.machine, now);
  // Heartbeats refine the clairvoyant remaining-size estimates; they do
  // not by themselves force a reallocation.
  for (const auto& [flow, attained] : msg.attained_bits) {
    const auto it = flow_states_.find(flow);
    if (it != flow_states_.end()) {
      it->second.attained_bits = std::max(it->second.attained_bits, attained);
    }
  }
  // Repair channel for lost FlowFinished reports.
  bool any_finished = false;
  for (const FlowId f : msg.finished_flows) {
    any_finished = mark_finished(f) || any_finished;
  }
  if (any_finished) retire_done_coflows();
}

void Master::note_alive(MachineId machine, double now) {
  if (machine < 0) return;
  auto [it, inserted] = last_alive_.try_emplace(machine, now);
  if (!inserted) it->second = std::max(it->second, now);
  if (dead_slaves_.erase(machine) > 0) {
    ++slaves_revived_;
    // The revived slave's flows rejoin the view; recompute their shares.
    dirty_ = true;
  }
}

void Master::check_liveness(double now) {
  if (options_.heartbeat_timeout_s <= 0.0) return;
  // Only machines expected to heartbeat — those originating at least one
  // unfinished flow in the view — can be declared dead. Idle machines
  // legitimately stay silent.
  std::unordered_map<MachineId, long long> unfinished_per_machine;
  for (const auto& [id, fs] : flow_states_) {
    if (!fs.finished) ++unfinished_per_machine[fs.flow.src];
  }
  for (const auto& [machine, unfinished] : unfinished_per_machine) {
    if (dead_slaves_.contains(machine)) continue;
    const auto it = last_alive_.find(machine);
    const double last = it != last_alive_.end() ? it->second : start_time_;
    if (now - last > options_.heartbeat_timeout_s) {
      dead_slaves_.insert(machine);
      ++slaves_declared_dead_;
      flows_quarantined_ += unfinished;
      dirty_ = true;
    }
  }
}

int Master::active_coflows() const {
  return static_cast<int>(coflows_.size());
}

ScheduleInput Master::build_view(double now) const {
  ScheduleInput input;
  input.fabric = &fabric_;
  input.now = now;
  int live_flows = 0;
  for (const CoflowState& coflow : coflows_) {
    ActiveCoflow view;
    view.id = coflow.id;
    view.arrival_time = coflow.arrival_time;
    view.tenant = coflow.tenant;
    view.weight = coflow.weight;
    double attained = 0.0;
    for (const FlowId f : coflow.flows) {
      const FlowState& fs = flow_states_.at(f);
      attained += fs.attained_bits;
      // Quarantine: flows originating at a dead slave are left out of the
      // view entirely, releasing their port shares to the survivors. Their
      // attained service still counts toward the coflow's progress.
      const bool quarantined =
          !fs.finished && dead_slaves_.contains(fs.flow.src);
      if (quarantined) continue;
      auto& bucket = fs.finished ? view.finished_flows : view.flows;
      bucket.push_back(
          ActiveFlow{fs.flow.id, fs.flow.coflow, fs.flow.src, fs.flow.dst});
    }
    view.attained_bits = attained;
    if (!view.flows.empty()) {
      live_flows += static_cast<int>(view.flows.size());
      input.coflows.push_back(std::move(view));
    }
  }
  input.total_live_flows = live_flows;
  return input;
}

const ScheduleInput& Master::compute_allocation(
    double now, Allocation& alloc, std::vector<SlaveRates>& per_slave) {
  view_ = build_view(now);
  dirty_ = false;
  alloc = Allocation();
  per_slave.clear();
  if (view_.coflows.empty()) return view_;

  if (scheduler_.clairvoyant()) {
    // Remaining = registered size − attained (heartbeat view). Registered
    // sizes are required for clairvoyant policies. Filled for the *active*
    // flows only — they are the only ids the scheduler may query, and a
    // scan over every flow ever registered would make epoch cost grow with
    // history instead of load.
    FlowId max_id = 0;
    for (const ActiveCoflow& coflow : view_.coflows) {
      for (const ActiveFlow& f : coflow.flows) max_id = std::max(max_id, f.id);
    }
    remaining_estimate_.assign(static_cast<std::size_t>(max_id) + 1, 0.0);
    for (const ActiveCoflow& coflow : view_.coflows) {
      for (const ActiveFlow& f : coflow.flows) {
        const FlowState& fs = flow_states_.at(f.id);
        NCDRF_CHECK(fs.flow.size_bits > 0.0,
                    "clairvoyant scheduler needs registered flow sizes");
        remaining_estimate_[static_cast<std::size_t>(f.id)] =
            std::max(fs.flow.size_bits - fs.attained_bits, 0.0);
      }
    }
    clairvoyant_info_ = std::make_unique<ClairvoyantInfo>(&remaining_estimate_);
    view_.clairvoyant = clairvoyant_info_.get();
  }

  alloc = scheduler_.allocate(view_);
  clamp_to_capacity(view_, alloc, clamp_scratch_);

  // One rate vector per originating machine (rates are enforced at the
  // sender, like tc/htb egress shaping), sorted by machine id so callers
  // iterate slaves in a deterministic order.
  std::vector<int> slot_of(static_cast<std::size_t>(fabric_.num_machines()),
                           -1);
  for (const ActiveCoflow& coflow : view_.coflows) {
    for (const ActiveFlow& flow : coflow.flows) {
      int& slot = slot_of[static_cast<std::size_t>(flow.src)];
      if (slot < 0) {
        slot = static_cast<int>(per_slave.size());
        per_slave.push_back(SlaveRates{flow.src, {}});
      }
      RateUpdateMsg& msg = per_slave[static_cast<std::size_t>(slot)].msg;
      msg.rates_bps.emplace_back(flow.id, alloc.rate(flow.id));
      // Causal tagging rides along only when someone registered with a
      // trace id — untraced deployments keep the vectors empty.
      if (any_traced_) msg.trace_ids.push_back(trace_id(flow.coflow));
    }
  }
  std::sort(per_slave.begin(), per_slave.end(),
            [](const SlaveRates& a, const SlaveRates& b) {
              return a.machine < b.machine;
            });
  return view_;
}

int Master::reallocate(double now, SimBus& bus) {
  Allocation alloc;
  std::vector<SlaveRates> per_slave;
  compute_allocation(now, alloc, per_slave);
  for (SlaveRates& sr : per_slave) {
    // Rate updates are best-effort; the periodic refresh re-sends them.
    bus.send_unreliable(now, slave_address(sr.machine), std::move(sr.msg));
  }
  return static_cast<int>(per_slave.size());
}

}  // namespace ncdrf
