#include "job/job.h"

#include <algorithm>

#include "coflow/coflow.h"
#include "common/check.h"
#include "sim/engine.h"

namespace ncdrf {
namespace {

// Dense global identity for every (job, stage) pair's coflow.
struct StageKey {
  int job;
  int stage;
};

}  // namespace

void validate_jobs(const std::vector<JobSpec>& jobs) {
  NCDRF_CHECK(!jobs.empty(), "job set must not be empty");
  for (const JobSpec& job : jobs) {
    NCDRF_CHECK(!job.stages.empty(), "job '" + job.name + "' has no stages");
    NCDRF_CHECK(job.arrival_s >= 0.0, "job arrival must be non-negative");
    for (std::size_t s = 0; s < job.stages.size(); ++s) {
      const Stage& stage = job.stages[s];
      NCDRF_CHECK(!stage.transfers.empty(),
                  "stage '" + stage.name + "' has no transfers");
      NCDRF_CHECK(stage.compute_delay_s >= 0.0,
                  "compute delay must be non-negative");
      for (const int parent : stage.parents) {
        NCDRF_CHECK(parent >= 0 && parent < static_cast<int>(s),
                    "stage '" + stage.name +
                        "' has a non-topological parent index");
      }
      for (const StageTransfer& t : stage.transfers) {
        NCDRF_CHECK(t.size_bits > 0.0, "transfer size must be positive");
        NCDRF_CHECK(t.src >= 0 && t.dst >= 0, "transfer endpoints unset");
      }
    }
  }
}

JobSetResult run_jobs(const Fabric& fabric, const std::vector<JobSpec>& jobs,
                      Scheduler& scheduler, const SimOptions& options) {
  validate_jobs(jobs);

  // Dense coflow ids: stage (j, s) → running index; dense flow ids follow.
  std::vector<int> coflow_base(jobs.size() + 1, 0);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    coflow_base[j + 1] =
        coflow_base[j] + static_cast<int>(jobs[j].stages.size());
  }
  const int total_stages = coflow_base.back();
  std::vector<StageKey> stage_of_coflow(
      static_cast<std::size_t>(total_stages));
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    for (std::size_t s = 0; s < jobs[j].stages.size(); ++s) {
      stage_of_coflow[static_cast<std::size_t>(coflow_base[j]) + s] = {
          static_cast<int>(j), static_cast<int>(s)};
    }
  }

  // Remaining unmet dependencies per stage, and children lists.
  std::vector<std::vector<int>> waiting(jobs.size());
  std::vector<std::vector<std::vector<int>>> children(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    waiting[j].resize(jobs[j].stages.size(), 0);
    children[j].resize(jobs[j].stages.size());
    for (std::size_t s = 0; s < jobs[j].stages.size(); ++s) {
      waiting[j][s] = static_cast<int>(jobs[j].stages[s].parents.size());
      for (const int parent : jobs[j].stages[s].parents) {
        children[j][static_cast<std::size_t>(parent)].push_back(
            static_cast<int>(s));
      }
    }
  }

  DynamicSimulator sim(fabric, scheduler, options);
  int next_flow_id = 0;

  JobSetResult result;
  result.jobs.resize(jobs.size());
  std::vector<std::vector<double>> release_time(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    release_time[j].resize(jobs[j].stages.size(), 0.0);
    result.jobs[j].job = static_cast<int>(j);
    result.jobs[j].name = jobs[j].name;
    result.jobs[j].arrival = jobs[j].arrival_s;
  }

  auto release_stage = [&](int j, int s, double when) {
    const Stage& stage = jobs[static_cast<std::size_t>(j)]
                             .stages[static_cast<std::size_t>(s)];
    const double release = when + stage.compute_delay_s;
    release_time[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)] =
        release;
    const CoflowId id = coflow_base[static_cast<std::size_t>(j)] + s;
    std::vector<Flow> flows;
    flows.reserve(stage.transfers.size());
    for (const StageTransfer& t : stage.transfers) {
      flows.push_back(Flow{next_flow_id++, id, t.src, t.dst, t.size_bits});
    }
    sim.submit(Coflow(id, release, std::move(flows)));
  };

  sim.set_completion_callback([&](const CoflowRecord& rec) {
    const StageKey key = stage_of_coflow[static_cast<std::size_t>(rec.id)];
    const auto j = static_cast<std::size_t>(key.job);
    const auto s = static_cast<std::size_t>(key.stage);

    StageResult stage_result;
    stage_result.job = key.job;
    stage_result.stage = key.stage;
    stage_result.release_time = release_time[j][s];
    stage_result.completion_time = rec.completion;
    stage_result.coflow_cct = rec.cct;
    result.stages.push_back(stage_result);
    result.jobs[j].completion =
        std::max(result.jobs[j].completion, rec.completion);

    for (const int child : children[j][s]) {
      if (--waiting[j][static_cast<std::size_t>(child)] == 0) {
        release_stage(key.job, child, rec.completion);
      }
    }
  });

  // Seed: every stage with no parents is released at its job's arrival.
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    for (std::size_t s = 0; s < jobs[j].stages.size(); ++s) {
      if (waiting[j][s] == 0) {
        release_stage(static_cast<int>(j), static_cast<int>(s),
                      jobs[j].arrival_s);
      }
    }
  }

  sim.run();
  result.network = sim.take_result();
  for (JobResult& job : result.jobs) {
    job.duration = job.completion - job.arrival;
  }
  return result;
}

JobSpec make_linear_pipeline(const std::string& name, double arrival_s,
                             int num_stages,
                             const std::vector<MachineId>& group,
                             double flow_bits, double compute_delay_s) {
  NCDRF_CHECK(num_stages >= 1, "pipeline needs at least one stage");
  NCDRF_CHECK(group.size() >= 2, "pipeline group needs >= 2 machines");
  JobSpec job;
  job.name = name;
  job.arrival_s = arrival_s;
  for (int s = 0; s < num_stages; ++s) {
    Stage stage;
    stage.name = name + "/stage" + std::to_string(s);
    if (s > 0) stage.parents.push_back(s - 1);
    stage.compute_delay_s = compute_delay_s;
    // Ring shuffle: machine i sends to machine (i+1) mod |group| — a
    // pipelined stage boundary touching every group member.
    for (std::size_t i = 0; i < group.size(); ++i) {
      stage.transfers.push_back(StageTransfer{
          group[i], group[(i + 1) % group.size()], flow_bits});
    }
    job.stages.push_back(std::move(stage));
  }
  return job;
}

JobSpec make_diamond_job(const std::string& name, double arrival_s,
                         const std::vector<MachineId>& mappers,
                         const std::vector<MachineId>& reducers,
                         MachineId sink, double flow_bits) {
  NCDRF_CHECK(!mappers.empty() && !reducers.empty(),
              "diamond job needs mappers and reducers");
  JobSpec job;
  job.name = name;
  job.arrival_s = arrival_s;

  Stage shuffle;  // stage 0: map → reduce shuffle
  shuffle.name = name + "/shuffle";
  for (const MachineId m : mappers) {
    for (const MachineId r : reducers) {
      shuffle.transfers.push_back(StageTransfer{m, r, flow_bits});
    }
  }
  job.stages.push_back(std::move(shuffle));

  // Stages 1 and 2: two parallel aggregations over halves of the
  // reducers, back toward the mappers.
  for (int half = 0; half < 2; ++half) {
    Stage agg;
    agg.name = name + "/aggregate" + std::to_string(half);
    agg.parents.push_back(0);
    for (std::size_t i = static_cast<std::size_t>(half);
         i < reducers.size(); i += 2) {
      agg.transfers.push_back(StageTransfer{
          reducers[i], mappers[i % mappers.size()], flow_bits / 2.0});
    }
    if (agg.transfers.empty()) {
      agg.transfers.push_back(
          StageTransfer{reducers[0], mappers[0], flow_bits / 2.0});
    }
    job.stages.push_back(std::move(agg));
  }

  Stage collect;  // stage 3: final collect at the sink
  collect.name = name + "/collect";
  collect.parents = {1, 2};
  for (const MachineId m : mappers) {
    collect.transfers.push_back(StageTransfer{m, sink, flow_bits / 4.0});
  }
  job.stages.push_back(std::move(collect));
  return job;
}

}  // namespace ncdrf
