// Multi-stage data-parallel jobs: the workloads that make coflow sizes
// unknowable a priori (paper Sec. I-II — Apache Tez, MapReduce Online,
// wave-based execution).
//
// A job is a DAG of computation stages; each stage, once all its parents'
// shuffles complete and its compute time elapses, releases one coflow.
// Downstream stages' coflows therefore *do not exist yet* when upstream
// ones are scheduled — a clairvoyant scheduler can know the sizes of
// released coflows, but nobody can know the future DAG state, which is
// precisely the regime NC-DRF targets. The driver runs any Scheduler over
// a set of jobs on the DynamicSimulator and reports per-stage and
// per-job completion times.
#pragma once

#include <string>
#include <vector>

#include "fabric/fabric.h"
#include "sched/scheduler.h"
#include "sim/sim.h"

namespace ncdrf {

// One data transfer of a stage's shuffle.
struct StageTransfer {
  MachineId src = -1;
  MachineId dst = -1;
  double size_bits = 0.0;
};

// One computation stage. Stages are listed in topological order: parents
// must have smaller indices.
struct Stage {
  std::string name;
  std::vector<int> parents;      // indices into JobSpec::stages
  double compute_delay_s = 0.0;  // time between readiness and the shuffle
  std::vector<StageTransfer> transfers;  // at least one
};

struct JobSpec {
  std::string name;
  double arrival_s = 0.0;
  std::vector<Stage> stages;  // at least one; topologically ordered
};

struct StageResult {
  int job = -1;
  int stage = -1;
  double release_time = 0.0;     // when the stage's coflow was submitted
  double completion_time = 0.0;  // when its coflow finished
  double coflow_cct = 0.0;
};

struct JobResult {
  int job = -1;
  std::string name;
  double arrival = 0.0;
  double completion = 0.0;  // last stage's completion
  double duration = 0.0;    // completion − arrival
};

struct JobSetResult {
  std::vector<JobResult> jobs;      // indexed by job
  std::vector<StageResult> stages;  // all stages, ordered by completion
  RunResult network;                // the underlying coflow-level result
};

// Validates job specs (topological parent order, non-empty stages,
// endpoints within the fabric would be checked at submission). Throws
// CheckError on malformed input.
void validate_jobs(const std::vector<JobSpec>& jobs);

// Runs the job set under `scheduler` on `fabric`. Every stage's coflow is
// released only when its dependencies complete, so arrivals are driven by
// the schedule itself (pipelined execution).
JobSetResult run_jobs(const Fabric& fabric, const std::vector<JobSpec>& jobs,
                      Scheduler& scheduler, const SimOptions& options = {});

// Convenience builders for common job shapes (used by tests, the example
// and the pipeline bench).

// A linear pipeline: `stages` shuffles, each an m×m shuffle over the given
// machine group with per-flow size `flow_bits`.
JobSpec make_linear_pipeline(const std::string& name, double arrival_s,
                             int num_stages,
                             const std::vector<MachineId>& group,
                             double flow_bits, double compute_delay_s = 0.0);

// A map-shuffle-reduce-writeback diamond: map group → reduce group →
// (two parallel aggregation stages) → final collect at one machine.
JobSpec make_diamond_job(const std::string& name, double arrival_s,
                         const std::vector<MachineId>& mappers,
                         const std::vector<MachineId>& reducers,
                         MachineId sink, double flow_bits);

}  // namespace ncdrf
