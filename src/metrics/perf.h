// Scheduler performance counters — the observability layer for the
// allocation hot path.
//
// The online loop recomputes the allocation on every coflow event, so
// allocation cost bounds how fast a cluster can churn coflows. These
// counters separate the two cost regimes of the incremental NC-DRF engine
// (full snapshot rescans vs O(links touched) delta updates) and accumulate
// wall-clock time inside allocate() via std::chrono::steady_clock, cheap
// enough to stay on in production builds (two clock reads per allocate).
//
// The struct is plain data: schedulers own one, drivers and benches read
// it, and metrics/export.cc serializes it as JSON for the perf-trajectory
// artifacts (BENCH_*.json).
#pragma once

#include <chrono>
#include <string>

namespace ncdrf {

struct SchedPerf {
  // allocate() invocations, split by how the per-coflow state was obtained.
  long long allocate_calls = 0;
  long long incremental_allocs = 0;  // served from event-maintained state
  long long full_rebuilds = 0;       // required an O(K·(F+L)) snapshot rescan

  // Delta notifications delivered by an event-driven driver.
  long long arrival_events = 0;
  long long flow_finish_events = 0;
  long long departure_events = 0;

  // Per-link state updates applied by delta notifications — the work the
  // incremental engine does *instead of* full rescans.
  long long links_touched = 0;

  // Debug cross-checks (incremental state vs full recompute) that ran.
  long long consistency_checks = 0;

  // Total wall-clock spent inside allocate().
  double allocate_seconds = 0.0;

  long long events() const {
    return arrival_events + flow_finish_events + departure_events;
  }

  void reset() { *this = SchedPerf{}; }
  SchedPerf& operator+=(const SchedPerf& other);
};

// Compact single-object JSON with one key per counter (deterministic key
// order, so outputs diff cleanly between runs).
std::string to_json(const SchedPerf& perf);

// RAII accumulator for SchedPerf::allocate_seconds.
class AllocateTimer {
 public:
  explicit AllocateTimer(SchedPerf& perf)
      : perf_(perf), start_(std::chrono::steady_clock::now()) {}
  ~AllocateTimer() {
    perf_.allocate_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
  }

  AllocateTimer(const AllocateTimer&) = delete;
  AllocateTimer& operator=(const AllocateTimer&) = delete;

 private:
  SchedPerf& perf_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ncdrf
