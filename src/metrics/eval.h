// Evaluation metrics over simulator runs — exactly the quantities the
// paper's Sec. V plots:
//
//   normalized CCT      = CCT under a scheduler / CCT under DRF   (Fig. 6)
//   shuffle slowdown    = CCT / minimum CCT                       (Table II)
//   progress disparity  = max_k P_k / min_k P_k at each instant   (Fig. 5a)
//   network utilization = Σ link usage out of total capacity      (Fig. 5b)
//
// All "over time" distributions are weighted by interval length, so they
// are exact for the piecewise-constant fluid model.
#pragma once

#include <map>
#include <vector>

#include "coflow/coflow.h"
#include "common/stats.h"
#include "sim/sim.h"

namespace ncdrf {

// Per-coflow CCT ratios between two runs of the same trace (index-aligned
// by coflow id). Requires both runs to cover the same coflows.
std::vector<double> normalized_ccts(const RunResult& compared,
                                    const RunResult& baseline);

// Per-coflow shuffle slowdowns: CCT / min_cct.
std::vector<double> slowdowns(const RunResult& run);

// Time-weighted distribution of the coflow progress disparity
// max_k P_k / min_k P_k over intervals with at least `min_active` active
// coflows. Intervals where some active coflow has zero progress are
// recorded at `starved_value` (priority policies can starve a coflow;
// fair policies never hit this).
WeightedCdf disparity_cdf(const RunResult& run, int min_active = 2,
                          double starved_value = 1e6);

// Time-weighted average of Σ link usage in bps (compare against
// fabric.total_capacity()). Measured until the last completion.
double average_link_usage(const RunResult& run);

// Time-weighted distribution of Σ link usage.
WeightedCdf utilization_cdf(const RunResult& run);

// Mean of `values` restricted to coflows in the given bin. The bins are
// recomputed from the run's static coflow records (Table I thresholds).
// `values` must be indexed by coflow id.
double mean_over_bin(const RunResult& run, const std::vector<double>& values,
                     CoflowBin bin);

// Number of coflows per bin.
std::map<CoflowBin, int> bin_counts(const RunResult& run);

// Bin of a recorded coflow (5 MB / 50 flows thresholds).
CoflowBin record_bin(const CoflowRecord& record);

}  // namespace ncdrf
