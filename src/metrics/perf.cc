#include "metrics/perf.h"

#include <sstream>

namespace ncdrf {

SchedPerf& SchedPerf::operator+=(const SchedPerf& other) {
  allocate_calls += other.allocate_calls;
  incremental_allocs += other.incremental_allocs;
  full_rebuilds += other.full_rebuilds;
  arrival_events += other.arrival_events;
  flow_finish_events += other.flow_finish_events;
  departure_events += other.departure_events;
  links_touched += other.links_touched;
  consistency_checks += other.consistency_checks;
  allocate_seconds += other.allocate_seconds;
  return *this;
}

std::string to_json(const SchedPerf& perf) {
  std::ostringstream out;
  out << "{"
      << "\"allocate_calls\":" << perf.allocate_calls << ","
      << "\"incremental_allocs\":" << perf.incremental_allocs << ","
      << "\"full_rebuilds\":" << perf.full_rebuilds << ","
      << "\"arrival_events\":" << perf.arrival_events << ","
      << "\"flow_finish_events\":" << perf.flow_finish_events << ","
      << "\"departure_events\":" << perf.departure_events << ","
      << "\"links_touched\":" << perf.links_touched << ","
      << "\"consistency_checks\":" << perf.consistency_checks << ","
      << "\"allocate_seconds\":" << perf.allocate_seconds << "}";
  return out.str();
}

}  // namespace ncdrf
