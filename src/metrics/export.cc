#include "metrics/export.h"

#include <algorithm>
#include <ostream>

#include "common/check.h"
#include "common/units.h"
#include "metrics/eval.h"

namespace ncdrf {

void write_coflow_csv(std::ostream& out, const RunResult& run) {
  out << "coflow,arrival_s,completion_s,cct_s,min_cct_s,slowdown,width,"
         "max_flow_mb,total_mb,bin\n";
  for (const CoflowRecord& rec : run.coflows) {
    NCDRF_CHECK(rec.min_cct > 0.0, "record without a minimum CCT");
    out << rec.id << ',' << rec.arrival << ',' << rec.completion << ','
        << rec.cct << ',' << rec.min_cct << ',' << rec.cct / rec.min_cct
        << ',' << rec.width << ',' << to_megabytes(rec.max_flow_bits) << ','
        << to_megabytes(rec.total_bits) << ',' << bin_name(record_bin(rec))
        << '\n';
  }
}

void write_intervals_csv(std::ostream& out, const RunResult& run) {
  out << "t0_s,t1_s,active_coflows,link_usage_gbps,min_progress_mbps,"
         "max_progress_mbps\n";
  for (const IntervalRecord& rec : run.intervals) {
    out << rec.t0 << ',' << rec.t1 << ',' << rec.active_coflows << ','
        << to_gbps(rec.link_usage_bps) << ',' << rec.min_progress / 1e6
        << ',' << rec.max_progress / 1e6 << '\n';
  }
}

void write_cdf_csv(std::ostream& out, const WeightedCdf& cdf,
                   const std::string& value_column) {
  out << value_column << ",cumulative_fraction\n";
  for (const auto& [value, fraction] : cdf.curve()) {
    out << value << ',' << fraction << '\n';
  }
}

void write_perf_json(std::ostream& out, const SchedPerf& perf,
                     const std::string& scheduler, const std::string& label) {
  out << "{";
  if (!scheduler.empty()) out << "\"scheduler\":\"" << scheduler << "\",";
  if (!label.empty()) out << "\"label\":\"" << label << "\",";
  out << "\"perf\":" << to_json(perf) << "}\n";
}

void write_deployment_json(std::ostream& out, const DeploymentResult& result,
                           const std::string& scheduler,
                           const std::string& label) {
  const FaultCounters& fc = result.fault_counters;
  double rec_sum = 0.0;
  double rec_max = 0.0;
  for (const double r : result.recovery_latencies_s) {
    rec_sum += r;
    rec_max = std::max(rec_max, r);
  }
  const double rec_mean = result.recovery_latencies_s.empty()
                              ? 0.0
                              : rec_sum / static_cast<double>(
                                              result.recovery_latencies_s
                                                  .size());
  out << "{";
  if (!scheduler.empty()) out << "\"scheduler\":\"" << scheduler << "\",";
  if (!label.empty()) out << "\"label\":\"" << label << "\",";
  out << "\"makespan_s\":" << result.makespan
      << ",\"reallocations\":" << result.num_reallocations
      << ",\"messages_sent\":" << result.messages_sent
      << ",\"messages_dropped\":" << result.messages_dropped
      << ",\"faults\":{"
      << "\"slave_crashes\":" << fc.slave_crashes
      << ",\"slave_restarts\":" << fc.slave_restarts
      << ",\"master_crashes\":" << fc.master_crashes
      << ",\"master_restarts\":" << fc.master_restarts
      << ",\"partitions_started\":" << fc.partitions_started
      << ",\"partitions_healed\":" << fc.partitions_healed
      << ",\"loss_bursts\":" << fc.loss_bursts
      << ",\"slaves_declared_dead\":" << fc.slaves_declared_dead
      << ",\"slaves_revived\":" << fc.slaves_revived
      << ",\"flows_quarantined\":" << fc.flows_quarantined
      << ",\"flows_resynced\":" << fc.flows_resynced
      << ",\"coflows_reregistered\":" << fc.coflows_reregistered
      << ",\"dropped_at_down_endpoint\":"
      << fc.messages_dropped_at_down_endpoint
      << ",\"bus_retries\":" << fc.bus_retries << "}"
      << ",\"recovery\":{\"count\":" << result.recovery_latencies_s.size()
      << ",\"mean_s\":" << rec_mean << ",\"max_s\":" << rec_max << "}}\n";
}

void write_sweep_json(std::ostream& out, const SweepResult& sweep,
                      const std::string& label) {
  out << "{";
  if (!label.empty()) out << "\"label\":\"" << label << "\",";
  out << "\"threads\":" << sweep.threads
      << ",\"wall_seconds\":" << sweep.wall_seconds << ",\"cells\":[";
  bool first = true;
  for (const SweepCellResult& cell : sweep.cells) {
    if (!first) out << ',';
    first = false;
    out << "{\"policy\":\"" << cell.policy << "\",\"trace\":\""
        << cell.trace_label << "\",\"events\":" << cell.run.num_events
        << ",\"wall_seconds\":" << cell.wall_seconds
        << ",\"events_per_second\":" << cell.events_per_second
        << ",\"perf\":" << to_json(cell.perf) << "}";
  }
  out << "],\"perf\":" << to_json(sweep.perf) << "}\n";
}

void write_normalized_cct_csv(
    std::ostream& out, const std::map<std::string, RunResult>& runs,
    const RunResult& baseline) {
  NCDRF_CHECK(!runs.empty(), "no runs to export");
  out << "coflow";
  for (const auto& [name, run] : runs) out << ',' << name;
  out << '\n';

  std::map<std::string, std::vector<double>> normalized;
  for (const auto& [name, run] : runs) {
    normalized[name] = normalized_ccts(run, baseline);
  }
  for (std::size_t k = 0; k < baseline.coflows.size(); ++k) {
    out << baseline.coflows[k].id;
    for (const auto& [name, values] : normalized) out << ',' << values[k];
    out << '\n';
  }
}

}  // namespace ncdrf
