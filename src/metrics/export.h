// CSV exporters for run results and distributions — the bridge between
// the C++ library and external analysis/plotting. All writers emit a
// header row and deterministic formatting, so outputs diff cleanly
// between runs.
#pragma once

#include <iosfwd>
#include <map>
#include <string>

#include "cluster/deployment.h"
#include "common/stats.h"
#include "obs/perf.h"
#include "runner/sweep.h"
#include "sim/sim.h"

namespace ncdrf {

// Per-coflow outcomes: id, arrival, completion, cct, min_cct, slowdown,
// width, sizes, bin.
void write_coflow_csv(std::ostream& out, const RunResult& run);

// Time-weighted interval samples: t0, t1, active coflows, Σ link usage,
// min/max progress.
void write_intervals_csv(std::ostream& out, const RunResult& run);

// A weighted CDF as (value, cumulative_fraction) steps.
void write_cdf_csv(std::ostream& out, const WeightedCdf& cdf,
                   const std::string& value_column = "value");

// Side-by-side normalized CCTs: one row per coflow, one column per
// policy, normalized against `baseline`. Every run must cover the same
// coflows as the baseline.
void write_normalized_cct_csv(
    std::ostream& out, const std::map<std::string, RunResult>& runs,
    const RunResult& baseline);

// Scheduler perf counters as one JSON object, newline-terminated —
// consumed by the CI bench-smoke artifact and external dashboards.
// `scheduler` and `label` are attached as string fields when non-empty.
void write_perf_json(std::ostream& out, const SchedPerf& perf,
                     const std::string& scheduler = "",
                     const std::string& label = "");

// A deployment run's outcome as one JSON object, newline-terminated:
// makespan, message/reallocation totals, per-fault-event counters and
// recovery-latency stats — the robustness analogue of write_perf_json.
// `scheduler` and `label` are attached as string fields when non-empty.
void write_deployment_json(std::ostream& out, const DeploymentResult& result,
                           const std::string& scheduler = "",
                           const std::string& label = "");

// A sweep's perf trajectory as one JSON object, newline-terminated:
// thread count, whole-sweep wall time, one entry per grid cell with its
// policy, trace label, event count, wall time, events/sec and scheduler
// counters, plus the grid-order merged counters under "perf". `label` is
// attached as a string field when non-empty. Cells appear in grid order,
// so outputs diff cleanly between runs.
void write_sweep_json(std::ostream& out, const SweepResult& sweep,
                      const std::string& label = "");

}  // namespace ncdrf
