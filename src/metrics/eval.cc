#include "metrics/eval.h"

#include <algorithm>

#include "common/check.h"
#include "common/units.h"

namespace ncdrf {

std::vector<double> normalized_ccts(const RunResult& compared,
                                    const RunResult& baseline) {
  NCDRF_CHECK(compared.coflows.size() == baseline.coflows.size(),
              "runs cover different numbers of coflows");
  std::vector<double> out;
  out.reserve(compared.coflows.size());
  for (std::size_t k = 0; k < compared.coflows.size(); ++k) {
    NCDRF_CHECK(compared.coflows[k].id == baseline.coflows[k].id,
                "runs are not over the same trace");
    NCDRF_CHECK(baseline.coflows[k].cct > 0.0,
                "baseline CCT must be positive");
    out.push_back(compared.coflows[k].cct / baseline.coflows[k].cct);
  }
  return out;
}

std::vector<double> slowdowns(const RunResult& run) {
  std::vector<double> out;
  out.reserve(run.coflows.size());
  for (const CoflowRecord& rec : run.coflows) {
    NCDRF_CHECK(rec.min_cct > 0.0, "minimum CCT must be positive");
    out.push_back(rec.cct / rec.min_cct);
  }
  return out;
}

WeightedCdf disparity_cdf(const RunResult& run, int min_active,
                          double starved_value) {
  WeightedCdf cdf;
  for (const IntervalRecord& rec : run.intervals) {
    if (rec.active_coflows < min_active) continue;
    const double weight = rec.t1 - rec.t0;
    if (rec.min_progress > 0.0) {
      cdf.add(rec.max_progress / rec.min_progress, weight);
    } else if (rec.max_progress > 0.0) {
      cdf.add(starved_value, weight);
    }
    // All-zero progress intervals (no demand at all) carry no information.
  }
  return cdf;
}

double average_link_usage(const RunResult& run) {
  double weighted = 0.0;
  double total_time = 0.0;
  for (const IntervalRecord& rec : run.intervals) {
    const double weight = rec.t1 - rec.t0;
    weighted += rec.link_usage_bps * weight;
    total_time += weight;
  }
  return total_time > 0.0 ? weighted / total_time : 0.0;
}

WeightedCdf utilization_cdf(const RunResult& run) {
  WeightedCdf cdf;
  for (const IntervalRecord& rec : run.intervals) {
    cdf.add(rec.link_usage_bps, rec.t1 - rec.t0);
  }
  return cdf;
}

CoflowBin record_bin(const CoflowRecord& record) {
  const bool is_short = record.max_flow_bits < megabytes(5.0);
  const bool narrow = record.width < 50;
  if (is_short && narrow) return CoflowBin::kShortNarrow;
  if (!is_short && narrow) return CoflowBin::kLongNarrow;
  if (is_short && !narrow) return CoflowBin::kShortWide;
  return CoflowBin::kLongWide;
}

double mean_over_bin(const RunResult& run, const std::vector<double>& values,
                     CoflowBin bin) {
  NCDRF_CHECK(values.size() == run.coflows.size(),
              "values must be indexed by coflow id");
  double sum = 0.0;
  int count = 0;
  for (std::size_t k = 0; k < run.coflows.size(); ++k) {
    if (record_bin(run.coflows[k]) == bin) {
      sum += values[k];
      ++count;
    }
  }
  return count > 0 ? sum / count : 0.0;
}

std::map<CoflowBin, int> bin_counts(const RunResult& run) {
  std::map<CoflowBin, int> counts;
  for (const CoflowRecord& rec : run.coflows) counts[record_bin(rec)] += 1;
  return counts;
}

}  // namespace ncdrf
