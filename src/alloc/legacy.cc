#include "alloc/legacy.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>
#include <utility>
#include <vector>

#include "coflow/coflow.h"
#include "common/check.h"

namespace ncdrf {
namespace {

// ---- shared helpers (verbatim from the pre-refactor sched layer) -------

struct LegacyMaxMinFlow {
  FlowId id = -1;
  MachineId src = -1;
  MachineId dst = -1;
  double weight = 1.0;
};

std::vector<double> legacy_weighted_max_min(
    const Fabric& fabric, const std::vector<LegacyMaxMinFlow>& flows,
    const std::vector<double>& available_bps) {
  const std::size_t n = flows.size();
  std::vector<double> rates(n, 0.0);
  if (n == 0) return rates;

  std::vector<double> residual = available_bps;
  for (double& r : residual) r = std::max(r, 0.0);
  std::vector<bool> frozen(n, false);

  std::vector<double> link_weight(
      static_cast<std::size_t>(fabric.num_links()), 0.0);
  // Unfrozen-flow count per link. The pre-refactor loop tested
  // `link_weight > 0` alone, so fractional weights whose subtraction left
  // positive dust (e.g. 1 − 1/2 − 1/6 − 1/3 ≈ 5.6e-17) kept a saturated
  // link in the theta minimum forever and starved every remaining flow
  // with theta = 0 rounds. Counting unfrozen flows exactly and snapping
  // the weight to zero when the count empties is the minimal numeric
  // repair; all other arithmetic is kept verbatim.
  std::vector<int> link_count(static_cast<std::size_t>(fabric.num_links()),
                              0);
  auto up = [&](const LegacyMaxMinFlow& f) {
    return static_cast<std::size_t>(fabric.uplink(f.src));
  };
  auto down = [&](const LegacyMaxMinFlow& f) {
    return static_cast<std::size_t>(fabric.downlink(f.dst));
  };
  for (const LegacyMaxMinFlow& f : flows) {
    NCDRF_CHECK(f.weight > 0.0, "max-min weights must be positive");
    link_weight[up(f)] += f.weight;
    link_weight[down(f)] += f.weight;
    link_count[up(f)] += 1;
    link_count[down(f)] += 1;
  }

  std::size_t remaining = n;
  for (int round = 0; round <= fabric.num_links() && remaining > 0;
       ++round) {
    double theta = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < residual.size(); ++i) {
      if (link_weight[i] > 0.0) {
        theta = std::min(theta, residual[i] / link_weight[i]);
      }
    }
    if (!std::isfinite(theta)) break;
    theta = std::max(theta, 0.0);

    for (std::size_t k = 0; k < n; ++k) {
      if (!frozen[k]) rates[k] += theta * flows[k].weight;
    }
    for (std::size_t i = 0; i < residual.size(); ++i) {
      if (link_weight[i] > 0.0) {
        residual[i] = std::max(residual[i] - theta * link_weight[i], 0.0);
      }
    }

    for (std::size_t k = 0; k < n; ++k) {
      if (frozen[k]) continue;
      const std::size_t u = up(flows[k]);
      const std::size_t d = down(flows[k]);
      const double tol_u = 1e-9 * std::max(available_bps[u], 1.0);
      const double tol_d = 1e-9 * std::max(available_bps[d], 1.0);
      if (residual[u] <= tol_u || residual[d] <= tol_d) {
        frozen[k] = true;
        --remaining;
        link_weight[u] -= flows[k].weight;
        link_weight[d] -= flows[k].weight;
        if (--link_count[u] == 0) link_weight[u] = 0.0;
        if (--link_count[d] == 0) link_weight[d] = 0.0;
      }
    }
  }
  return rates;
}

void legacy_max_min_backfill(const ScheduleInput& input, Allocation& alloc) {
  const Fabric& fabric = *input.fabric;
  std::vector<double> usage(static_cast<std::size_t>(fabric.num_links()),
                            0.0);
  for (const ActiveCoflow& coflow : input.coflows) {
    for (const ActiveFlow& flow : coflow.flows) {
      const double r = alloc.rate(flow.id);
      usage[static_cast<std::size_t>(fabric.uplink(flow.src))] += r;
      usage[static_cast<std::size_t>(fabric.downlink(flow.dst))] += r;
    }
  }
  std::vector<double> residual(static_cast<std::size_t>(fabric.num_links()));
  for (LinkId i = 0; i < fabric.num_links(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    residual[idx] = std::max(fabric.capacity(i) - usage[idx], 0.0);
  }

  std::vector<LegacyMaxMinFlow> flows;
  for (const ActiveCoflow& coflow : input.coflows) {
    for (const ActiveFlow& flow : coflow.flows) {
      flows.push_back({flow.id, flow.src, flow.dst, 1.0});
    }
  }
  const std::vector<double> extra =
      legacy_weighted_max_min(fabric, flows, residual);
  for (std::size_t k = 0; k < flows.size(); ++k) {
    if (extra[k] > 0.0) alloc.add_rate(flows[k].id, extra[k]);
  }
}

DemandVectors legacy_remaining_demand(const Fabric& fabric,
                                      const ActiveCoflow& coflow,
                                      const ClairvoyantInfo& info) {
  std::vector<Flow> flows;
  std::vector<double> sizes;
  flows.reserve(coflow.flows.size());
  sizes.reserve(coflow.flows.size());
  for (const ActiveFlow& f : coflow.flows) {
    flows.push_back(Flow{f.id, f.coflow, f.src, f.dst, 0.0});
    sizes.push_back(info.remaining_bits(f.id));
  }
  return compute_demand(fabric, flows, sizes);
}

// ---- per-flow / endpoint fairness --------------------------------------

Allocation legacy_perflow(const ScheduleInput& input) {
  const Fabric& fabric = *input.fabric;
  std::vector<double> capacities(
      static_cast<std::size_t>(fabric.num_links()));
  for (LinkId i = 0; i < fabric.num_links(); ++i) {
    capacities[static_cast<std::size_t>(i)] = fabric.capacity(i);
  }
  std::vector<LegacyMaxMinFlow> flows;
  for (const ActiveCoflow& coflow : input.coflows) {
    for (const ActiveFlow& flow : coflow.flows) {
      flows.push_back({flow.id, flow.src, flow.dst, 1.0});
    }
  }
  const std::vector<double> rates =
      legacy_weighted_max_min(fabric, flows, capacities);
  Allocation alloc;
  for (std::size_t k = 0; k < flows.size(); ++k) {
    alloc.set_rate(flows[k].id, rates[k]);
  }
  return alloc;
}

Allocation legacy_endpoint_fair(const ScheduleInput& input,
                                bool per_source) {
  const Fabric& fabric = *input.fabric;
  std::map<std::pair<MachineId, MachineId>, int> entity_size;
  auto key = [&](const ActiveFlow& f) {
    return per_source ? std::make_pair(f.src, MachineId{-1})
                      : std::make_pair(f.src, f.dst);
  };
  for (const ActiveCoflow& coflow : input.coflows) {
    for (const ActiveFlow& f : coflow.flows) entity_size[key(f)] += 1;
  }
  std::vector<LegacyMaxMinFlow> flows;
  for (const ActiveCoflow& coflow : input.coflows) {
    for (const ActiveFlow& f : coflow.flows) {
      flows.push_back({f.id, f.src, f.dst, 1.0 / entity_size.at(key(f))});
    }
  }
  std::vector<double> capacities(
      static_cast<std::size_t>(fabric.num_links()));
  for (LinkId i = 0; i < fabric.num_links(); ++i) {
    capacities[static_cast<std::size_t>(i)] = fabric.capacity(i);
  }
  const std::vector<double> rates =
      legacy_weighted_max_min(fabric, flows, capacities);
  Allocation alloc;
  for (std::size_t k = 0; k < flows.size(); ++k) {
    alloc.set_rate(flows[k].id, rates[k]);
  }
  return alloc;
}

// ---- PS-P ---------------------------------------------------------------

Allocation legacy_psp(const ScheduleInput& input, bool count_finished) {
  const Fabric& fabric = *input.fabric;
  const auto num_links = static_cast<std::size_t>(fabric.num_links());
  const int backfill_rounds = 1;

  std::vector<int> coflows_on_link(num_links, 0);
  std::vector<std::vector<int>> coflow_counts(
      input.coflows.size(), std::vector<int>(num_links, 0));
  for (std::size_t k = 0; k < input.coflows.size(); ++k) {
    for (const ActiveFlow& f : input.coflows[k].flows) {
      coflow_counts[k][static_cast<std::size_t>(fabric.uplink(f.src))] += 1;
      coflow_counts[k][static_cast<std::size_t>(fabric.downlink(f.dst))] +=
          1;
    }
    if (count_finished) {
      for (const ActiveFlow& f : input.coflows[k].finished_flows) {
        coflow_counts[k][static_cast<std::size_t>(fabric.uplink(f.src))] +=
            1;
        coflow_counts[k][static_cast<std::size_t>(
            fabric.downlink(f.dst))] += 1;
      }
    }
    for (std::size_t i = 0; i < num_links; ++i) {
      if (coflow_counts[k][i] > 0) coflows_on_link[i] += 1;
    }
  }

  std::vector<double> residual(num_links);
  for (LinkId i = 0; i < fabric.num_links(); ++i) {
    residual[static_cast<std::size_t>(i)] = fabric.capacity(i);
  }

  Allocation alloc;
  const int rounds = 1 + backfill_rounds;
  for (int round = 0; round < rounds; ++round) {
    double assigned = 0.0;
    for (std::size_t k = 0; k < input.coflows.size(); ++k) {
      for (const ActiveFlow& f : input.coflows[k].flows) {
        const auto u = static_cast<std::size_t>(fabric.uplink(f.src));
        const auto d = static_cast<std::size_t>(fabric.downlink(f.dst));
        const double up_share =
            residual[u] / coflows_on_link[u] / coflow_counts[k][u];
        const double down_share =
            residual[d] / coflows_on_link[d] / coflow_counts[k][d];
        const double r = std::max(std::min(up_share, down_share), 0.0);
        if (r > 0.0) {
          alloc.add_rate(f.id, r);
          assigned += r;
        }
      }
    }
    if (assigned <= 0.0) break;
    if (round + 1 < rounds) {
      for (std::size_t i = 0; i < num_links; ++i) {
        residual[i] = fabric.capacity(static_cast<LinkId>(i));
      }
      for (std::size_t k = 0; k < input.coflows.size(); ++k) {
        for (const ActiveFlow& f : input.coflows[k].flows) {
          const double r = alloc.rate(f.id);
          residual[static_cast<std::size_t>(fabric.uplink(f.src))] -= r;
          residual[static_cast<std::size_t>(fabric.downlink(f.dst))] -= r;
        }
      }
      for (double& r : residual) r = std::max(r, 0.0);
    }
  }
  return alloc;
}

// ---- Baraat FIFO-LM -----------------------------------------------------

Allocation legacy_baraat(const ScheduleInput& input) {
  const Fabric& fabric = *input.fabric;
  const auto num_links = static_cast<std::size_t>(fabric.num_links());
  const double heavy_threshold_bits = 8e7;

  std::vector<std::size_t> order(input.coflows.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (input.coflows[a].arrival_time != input.coflows[b].arrival_time) {
      return input.coflows[a].arrival_time < input.coflows[b].arrival_time;
    }
    return input.coflows[a].id < input.coflows[b].id;
  });
  std::vector<std::size_t> served;
  for (const std::size_t k : order) {
    served.push_back(k);
    if (input.coflows[k].attained_bits <= heavy_threshold_bits) break;
  }

  std::vector<int> served_on_link(num_links, 0);
  std::vector<std::vector<int>> counts(served.size(),
                                       std::vector<int>(num_links, 0));
  for (std::size_t s = 0; s < served.size(); ++s) {
    for (const ActiveFlow& f : input.coflows[served[s]].flows) {
      counts[s][static_cast<std::size_t>(fabric.uplink(f.src))] += 1;
      counts[s][static_cast<std::size_t>(fabric.downlink(f.dst))] += 1;
    }
    for (std::size_t i = 0; i < num_links; ++i) {
      if (counts[s][i] > 0) served_on_link[i] += 1;
    }
  }

  Allocation alloc;
  for (std::size_t s = 0; s < served.size(); ++s) {
    for (const ActiveFlow& f : input.coflows[served[s]].flows) {
      const auto u = static_cast<std::size_t>(fabric.uplink(f.src));
      const auto d = static_cast<std::size_t>(fabric.downlink(f.dst));
      const double up = fabric.capacity(static_cast<LinkId>(u)) /
                        served_on_link[u] / counts[s][u];
      const double down = fabric.capacity(static_cast<LinkId>(d)) /
                          served_on_link[d] / counts[s][d];
      alloc.set_rate(f.id, std::min(up, down));
    }
  }
  for (const ActiveCoflow& coflow : input.coflows) {
    for (const ActiveFlow& f : coflow.flows) {
      if (!alloc.has_rate(f.id)) alloc.set_rate(f.id, 0.0);
    }
  }
  legacy_max_min_backfill(input, alloc);
  return alloc;
}

// ---- Aalo D-CLAS / FIFO -------------------------------------------------

int legacy_queue_of(double attained_bits) {
  const double q0 = 8e7;
  const double exchange_rate = 10.0;
  const int num_queues = 10;
  double limit = q0;
  for (int q = 0; q < num_queues - 1; ++q) {
    if (attained_bits < limit) return q;
    limit *= exchange_rate;
  }
  return num_queues - 1;
}

// Strict-priority fill shared by Aalo and FIFO: serve coflows in `order`,
// each taking what is left of every link (even split among its own flows
// there, min across the two endpoints), then max-min backfill.
Allocation legacy_priority_fill(const ScheduleInput& input,
                                const std::vector<std::size_t>& order) {
  const Fabric& fabric = *input.fabric;
  const auto num_links = static_cast<std::size_t>(fabric.num_links());
  std::vector<double> residual(num_links);
  for (LinkId i = 0; i < fabric.num_links(); ++i) {
    residual[static_cast<std::size_t>(i)] = fabric.capacity(i);
  }

  Allocation alloc;
  for (const std::size_t k : order) {
    const ActiveCoflow& coflow = input.coflows[k];
    std::vector<int> counts(num_links, 0);
    for (const ActiveFlow& f : coflow.flows) {
      counts[static_cast<std::size_t>(fabric.uplink(f.src))] += 1;
      counts[static_cast<std::size_t>(fabric.downlink(f.dst))] += 1;
    }
    for (const ActiveFlow& f : coflow.flows) {
      const auto u = static_cast<std::size_t>(fabric.uplink(f.src));
      const auto d = static_cast<std::size_t>(fabric.downlink(f.dst));
      const double r =
          std::min(residual[u] / counts[u], residual[d] / counts[d]);
      alloc.set_rate(f.id, std::max(r, 0.0));
    }
    for (const ActiveFlow& f : coflow.flows) {
      const auto u = static_cast<std::size_t>(fabric.uplink(f.src));
      const auto d = static_cast<std::size_t>(fabric.downlink(f.dst));
      const double r = alloc.rate(f.id);
      residual[u] = std::max(residual[u] - r, 0.0);
      residual[d] = std::max(residual[d] - r, 0.0);
    }
  }
  legacy_max_min_backfill(input, alloc);
  return alloc;
}

Allocation legacy_aalo(const ScheduleInput& input) {
  std::vector<std::size_t> order(input.coflows.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<int> queue(input.coflows.size());
  for (std::size_t k = 0; k < input.coflows.size(); ++k) {
    queue[k] = legacy_queue_of(input.coflows[k].attained_bits);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (queue[a] != queue[b]) return queue[a] < queue[b];
    if (input.coflows[a].arrival_time != input.coflows[b].arrival_time) {
      return input.coflows[a].arrival_time < input.coflows[b].arrival_time;
    }
    return input.coflows[a].id < input.coflows[b].id;
  });
  return legacy_priority_fill(input, order);
}

Allocation legacy_fifo(const ScheduleInput& input) {
  std::vector<std::size_t> order(input.coflows.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (input.coflows[a].arrival_time != input.coflows[b].arrival_time) {
      return input.coflows[a].arrival_time < input.coflows[b].arrival_time;
    }
    return input.coflows[a].id < input.coflows[b].id;
  });
  return legacy_priority_fill(input, order);
}

// ---- DRF / HUG / Varys (clairvoyant) ------------------------------------

double legacy_drf_progress(const ScheduleInput& input) {
  NCDRF_CHECK(input.clairvoyant != nullptr,
              "DRF requires clairvoyant remaining-size information");
  const Fabric& fabric = *input.fabric;
  std::vector<double> load(static_cast<std::size_t>(fabric.num_links()),
                           0.0);
  for (const ActiveCoflow& coflow : input.coflows) {
    NCDRF_CHECK(coflow.weight > 0.0, "coflow weights must be positive");
    const DemandVectors d =
        legacy_remaining_demand(fabric, coflow, *input.clairvoyant);
    if (d.bottleneck_demand <= 0.0) continue;
    const std::vector<double> c = d.correlation();
    for (std::size_t i = 0; i < c.size(); ++i) {
      load[i] += coflow.weight * c[i];
    }
  }
  double p_star = std::numeric_limits<double>::infinity();
  for (LinkId i = 0; i < fabric.num_links(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (load[idx] > 0.0) {
      p_star = std::min(p_star, fabric.capacity(i) / load[idx]);
    }
  }
  return std::isfinite(p_star) ? p_star : 0.0;
}

Allocation legacy_drf(const ScheduleInput& input) {
  NCDRF_CHECK(input.clairvoyant != nullptr,
              "DRF requires clairvoyant remaining-size information");
  Allocation alloc;
  const double p_star = legacy_drf_progress(input);
  if (p_star <= 0.0) return alloc;
  for (const ActiveCoflow& coflow : input.coflows) {
    const DemandVectors d =
        legacy_remaining_demand(*input.fabric, coflow, *input.clairvoyant);
    if (d.bottleneck_demand <= 0.0) {
      for (const ActiveFlow& f : coflow.flows) alloc.set_rate(f.id, 0.0);
      continue;
    }
    for (const ActiveFlow& f : coflow.flows) {
      const double remaining = input.clairvoyant->remaining_bits(f.id);
      alloc.set_rate(f.id, coflow.weight * remaining * p_star /
                               d.bottleneck_demand);
    }
  }
  return alloc;
}

Allocation legacy_hug(const ScheduleInput& input) {
  NCDRF_CHECK(input.clairvoyant != nullptr,
              "HUG requires clairvoyant remaining-size information");
  const int spare_rounds = 2;

  Allocation alloc = legacy_drf(input);
  const double p_star = legacy_drf_progress(input);
  if (p_star <= 0.0) return alloc;

  const Fabric& fabric = *input.fabric;
  const auto num_links = static_cast<std::size_t>(fabric.num_links());
  const std::size_t num_coflows = input.coflows.size();

  std::vector<std::vector<int>> coflow_counts(
      num_coflows, std::vector<int>(num_links, 0));
  for (std::size_t k = 0; k < num_coflows; ++k) {
    for (const ActiveFlow& f : input.coflows[k].flows) {
      coflow_counts[k][static_cast<std::size_t>(fabric.uplink(f.src))] += 1;
      coflow_counts[k][static_cast<std::size_t>(fabric.downlink(f.dst))] +=
          1;
    }
  }

  for (int round = 0; round < spare_rounds; ++round) {
    std::vector<std::vector<double>> coflow_usage(
        num_coflows, std::vector<double>(num_links, 0.0));
    std::vector<double> total_usage(num_links, 0.0);
    for (std::size_t k = 0; k < num_coflows; ++k) {
      for (const ActiveFlow& f : input.coflows[k].flows) {
        const double r = alloc.rate(f.id);
        const auto u = static_cast<std::size_t>(fabric.uplink(f.src));
        const auto d = static_cast<std::size_t>(fabric.downlink(f.dst));
        coflow_usage[k][u] += r;
        coflow_usage[k][d] += r;
        total_usage[u] += r;
        total_usage[d] += r;
      }
    }

    std::vector<std::vector<double>> extra_budget(
        num_coflows, std::vector<double>(num_links, 0.0));
    bool any_spare = false;
    for (LinkId i = 0; i < fabric.num_links(); ++i) {
      const auto idx = static_cast<std::size_t>(i);
      const double spare =
          std::max(fabric.capacity(i) - total_usage[idx], 0.0);
      if (spare <= 0.0) continue;
      const double cap = p_star * fabric.capacity(i);
      int eligible = 0;
      for (std::size_t k = 0; k < num_coflows; ++k) {
        if (coflow_counts[k][idx] > 0 && coflow_usage[k][idx] < cap) {
          ++eligible;
        }
      }
      if (eligible == 0) continue;
      const double per_coflow = spare / eligible;
      for (std::size_t k = 0; k < num_coflows; ++k) {
        if (coflow_counts[k][idx] > 0 && coflow_usage[k][idx] < cap) {
          extra_budget[k][idx] =
              std::min(per_coflow, cap - coflow_usage[k][idx]);
          any_spare = true;
        }
      }
    }
    if (!any_spare) break;

    for (std::size_t k = 0; k < num_coflows; ++k) {
      for (const ActiveFlow& f : input.coflows[k].flows) {
        const auto u = static_cast<std::size_t>(fabric.uplink(f.src));
        const auto d = static_cast<std::size_t>(fabric.downlink(f.dst));
        const double up_share = extra_budget[k][u] / coflow_counts[k][u];
        const double down_share = extra_budget[k][d] / coflow_counts[k][d];
        const double w = std::min(up_share, down_share);
        if (w > 0.0) alloc.add_rate(f.id, w);
      }
    }
  }
  return alloc;
}

Allocation legacy_varys(const ScheduleInput& input) {
  NCDRF_CHECK(input.clairvoyant != nullptr,
              "Varys requires clairvoyant remaining-size information");
  const Fabric& fabric = *input.fabric;
  const auto num_links = static_cast<std::size_t>(fabric.num_links());

  std::vector<DemandVectors> demands;
  demands.reserve(input.coflows.size());
  std::vector<double> gamma(input.coflows.size(), 0.0);
  for (std::size_t k = 0; k < input.coflows.size(); ++k) {
    demands.push_back(legacy_remaining_demand(fabric, input.coflows[k],
                                              *input.clairvoyant));
    double g = 0.0;
    for (LinkId i = 0; i < fabric.num_links(); ++i) {
      const auto idx = static_cast<std::size_t>(i);
      g = std::max(g, demands.back().demand[idx] / fabric.capacity(i));
    }
    gamma[k] = g;
  }

  std::vector<std::size_t> order(input.coflows.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (gamma[a] != gamma[b]) return gamma[a] < gamma[b];
    return input.coflows[a].id < input.coflows[b].id;
  });

  std::vector<double> residual(num_links);
  for (LinkId i = 0; i < fabric.num_links(); ++i) {
    residual[static_cast<std::size_t>(i)] = fabric.capacity(i);
  }

  Allocation alloc;
  for (const std::size_t k : order) {
    const ActiveCoflow& coflow = input.coflows[k];
    if (gamma[k] <= 0.0) {
      for (const ActiveFlow& f : coflow.flows) alloc.set_rate(f.id, 0.0);
      continue;
    }
    double g = 0.0;
    bool blocked = false;
    for (LinkId i = 0; i < fabric.num_links(); ++i) {
      const auto idx = static_cast<std::size_t>(i);
      if (demands[k].demand[idx] <= 0.0) continue;
      if (residual[idx] <= 0.0) {
        blocked = true;
        break;
      }
      g = std::max(g, demands[k].demand[idx] / residual[idx]);
    }
    if (blocked || g <= 0.0) {
      for (const ActiveFlow& f : coflow.flows) alloc.set_rate(f.id, 0.0);
      continue;
    }
    for (const ActiveFlow& f : coflow.flows) {
      const double r = input.clairvoyant->remaining_bits(f.id) / g;
      alloc.set_rate(f.id, r);
      const auto u = static_cast<std::size_t>(fabric.uplink(f.src));
      const auto d = static_cast<std::size_t>(fabric.downlink(f.dst));
      residual[u] = std::max(residual[u] - r, 0.0);
      residual[d] = std::max(residual[d] - r, 0.0);
    }
  }
  legacy_max_min_backfill(input, alloc);
  return alloc;
}

}  // namespace

bool legacy_supports(const std::string& name) {
  return name == "tcp" || name == "persource" || name == "perpair" ||
         name == "psp" || name == "psp-live" || name == "drf" ||
         name == "hug" || name == "aalo" || name == "varys" ||
         name == "baraat" || name == "fifo";
}

Allocation legacy_allocate(const std::string& name,
                           const ScheduleInput& input) {
  if (name == "tcp") return legacy_perflow(input);
  if (name == "persource") return legacy_endpoint_fair(input, true);
  if (name == "perpair") return legacy_endpoint_fair(input, false);
  if (name == "psp") return legacy_psp(input, true);
  if (name == "psp-live") return legacy_psp(input, false);
  if (name == "drf") return legacy_drf(input);
  if (name == "hug") return legacy_hug(input);
  if (name == "aalo") return legacy_aalo(input);
  if (name == "varys") return legacy_varys(input);
  if (name == "baraat") return legacy_baraat(input);
  if (name == "fifo") return legacy_fifo(input);
  NCDRF_CHECK(false, "no legacy reference for scheduler: " + name);
  return {};
}

}  // namespace ncdrf
