#include "alloc/priority_state.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace ncdrf {

void PriorityOrder::reset() {
  entries_.clear();
  meta_.clear();
}

std::size_t PriorityOrder::position_of(const Entry& e) const {
  return static_cast<std::size_t>(
      std::lower_bound(entries_.begin(), entries_.end(), e, entry_less) -
      entries_.begin());
}

void PriorityOrder::add_coflow(CoflowId id, std::int32_t bucket,
                               double arrival_time) {
  const Entry e{bucket, arrival_time, id};
  NCDRF_CHECK(meta_.emplace(id, e).second,
              "priority order: duplicate coflow arrival");
  entries_.insert(entries_.begin() + static_cast<std::ptrdiff_t>(
                                         position_of(e)),
                  e);
}

void PriorityOrder::remove_coflow(CoflowId id) {
  const auto it = meta_.find(id);
  if (it == meta_.end()) return;  // departures may race a reset
  const std::size_t at = position_of(it->second);
  NCDRF_CHECK(at < entries_.size() && entries_[at].id == id,
              "priority order: tracked coflow not at its sorted position");
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(at));
  meta_.erase(it);
}

void PriorityOrder::reposition(std::size_t entry_index,
                               std::int32_t new_bucket) {
  Entry e = entries_[entry_index];
  entries_.erase(entries_.begin() +
                 static_cast<std::ptrdiff_t>(entry_index));
  e.bucket = new_bucket;
  entries_.insert(entries_.begin() + static_cast<std::ptrdiff_t>(
                                         position_of(e)),
                  e);
  meta_[e.id] = e;
  ++repositions_;
}

void PriorityOrder::index_snapshot(const ScheduleInput& input) {
  const std::size_t k = input.coflows.size();
  CoflowId max_id = -1;
  for (const ActiveCoflow& c : input.coflows) max_id = std::max(max_id, c.id);
  slots_flat_ =
      static_cast<std::size_t>(max_id) < 4 * k + 1024;
  if (slots_flat_) {
    slot_of_.assign(static_cast<std::size_t>(max_id) + 1, -1);
    for (std::size_t i = 0; i < k; ++i) {
      slot_of_[static_cast<std::size_t>(input.coflows[i].id)] =
          static_cast<std::int32_t>(i);
    }
  } else {
    slot_map_.clear();
    for (std::size_t i = 0; i < k; ++i) {
      slot_map_[input.coflows[i].id] = static_cast<std::int32_t>(i);
    }
  }
}

std::ptrdiff_t PriorityOrder::snapshot_index(CoflowId id) const {
  if (slots_flat_) {
    const auto idx = static_cast<std::size_t>(id);
    if (id < 0 || idx >= slot_of_.size()) return -1;
    return slot_of_[idx];
  }
  const auto it = slot_map_.find(id);
  return it == slot_map_.end() ? -1 : it->second;
}

bool PriorityOrder::resolve(const ScheduleInput& input,
                            const std::vector<double>& bucket_upper,
                            std::vector<std::size_t>& order_out) {
  if (entries_.size() != input.coflows.size()) return false;
  const std::size_t k = entries_.size();
  if (k == 0) {
    order_out.clear();
    return true;
  }
  index_snapshot(input);

  // One pass: verify membership and collect bucket escapees. The stored
  // bucket is trusted while attained service stays inside its band — two
  // comparisons per coflow, no queue recomputation.
  pending_.clear();
  order_out.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    const Entry& e = entries_[i];
    const std::ptrdiff_t slot = snapshot_index(e.id);
    if (slot < 0) return false;  // tracked coflow absent from the snapshot
    order_out[i] = static_cast<std::size_t>(slot);
    if (bucket_upper.empty()) continue;
    const double attained =
        input.coflows[static_cast<std::size_t>(slot)].attained_bits;
    const double lower =
        e.bucket == 0 ? 0.0
                      : bucket_upper[static_cast<std::size_t>(e.bucket) - 1];
    if (attained >= lower &&
        attained < bucket_upper[static_cast<std::size_t>(e.bucket)]) {
      continue;
    }
    pending_.push_back(e.id);
  }
  if (pending_.empty()) return true;

  // Escapees are re-found by id so earlier repositions cannot invalidate
  // the positions the detection pass saw.
  for (const CoflowId id : pending_) {
    const Entry& e = meta_.at(id);
    const std::size_t at = position_of(e);
    const double attained =
        input.coflows[static_cast<std::size_t>(snapshot_index(id))]
            .attained_bits;
    std::int32_t bucket = 0;
    while (attained >= bucket_upper[static_cast<std::size_t>(bucket)]) {
      ++bucket;
    }
    reposition(at, bucket);
  }
  for (std::size_t i = 0; i < k; ++i) {
    order_out[i] =
        static_cast<std::size_t>(snapshot_index(entries_[i].id));
  }
  return true;
}

void PriorityOrder::rebuild(
    const ScheduleInput& input,
    const std::function<std::int32_t(const ActiveCoflow&)>& bucket_of) {
  reset();
  entries_.reserve(input.coflows.size());
  for (const ActiveCoflow& c : input.coflows) {
    const Entry e{bucket_of(c), c.arrival_time, c.id};
    entries_.push_back(e);
    meta_.emplace(c.id, e);
  }
  NCDRF_CHECK(meta_.size() == entries_.size(),
              "priority order: duplicate coflow ids in snapshot");
  std::sort(entries_.begin(), entries_.end(), entry_less);
}

void PriorityOrder::check_consistent(
    const ScheduleInput& input,
    const std::function<std::int32_t(const ActiveCoflow&)>& bucket_of)
    const {
  NCDRF_CHECK(entries_.size() == input.coflows.size(),
              "priority order: tracked size diverges from snapshot");
  NCDRF_CHECK(meta_.size() == entries_.size(),
              "priority order: index size diverges from entries");
  PriorityOrder fresh;
  fresh.rebuild(input, bucket_of);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& a = entries_[i];
    const Entry& b = fresh.entries_[i];
    NCDRF_CHECK(a.id == b.id && a.bucket == b.bucket &&
                    a.arrival == b.arrival,
                "priority order: maintained order diverges from fresh sort");
    const auto it = meta_.find(a.id);
    NCDRF_CHECK(it != meta_.end() && it->second.bucket == a.bucket &&
                    it->second.arrival == a.arrival,
                "priority order: index diverges from entries");
  }
}

}  // namespace ncdrf
