// Persistent priority ordering for the sequential-fill schedulers (Aalo's
// D-CLAS queues, Baraat's FIFO-LM, FIFO) — the priority-fill family's
// counterpart to LinkLoadState/DemandCache: queue membership maintained
// incrementally from the Scheduler event hooks instead of re-derived from
// the snapshot on every allocate().
//
// The legacy fills ran iota + std::sort over all K coflows per call —
// O(K·log K) comparator invocations chasing arrival times and attained
// service through the snapshot — even though the order changes only at
// arrivals, departures and queue promotions. PriorityOrder keeps the
// coflows sorted by (bucket, arrival time, id) across calls: arrivals
// binary-search-insert, departures erase, and resolve() repositions only
// the coflows whose attained service crossed a bucket boundary since the
// last call (two comparisons per coflow against the stored bucket's
// bounds). A steady-state resolve touches O(changed coflows) order
// entries plus one O(K) id-to-snapshot-index pass — no sort.
//
// Buckets generalize the queue notion: Aalo uses its D-CLAS queue index,
// FIFO and Baraat use a single bucket 0 (pure arrival order). The sort key
// is exactly the legacy comparators' (queue, arrival, id) triple, so the
// emitted order is identical to the per-call sort it replaces.
//
// Mirroring LinkLoadState: matches()/resolve() degrade to a caller-driven
// rebuild when the tracked set does not cover the snapshot (drivers that
// never deliver events), and check_consistent() is the Debug-mode oracle
// comparing the maintained order against a fresh sort.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sched/scheduler.h"

namespace ncdrf {

class PriorityOrder {
 public:
  struct Entry {
    std::int32_t bucket = 0;
    double arrival = 0.0;
    CoflowId id = -1;
  };

  // Forgets all tracked coflows (driver reset).
  void reset();

  // Event hooks. Arrival inserts at the entry's sorted position;
  // departure erases. Flow finishes never move a coflow — only attained
  // service does, which resolve() re-checks per call.
  void add_coflow(CoflowId id, std::int32_t bucket, double arrival_time);
  void remove_coflow(CoflowId id);

  // Emits snapshot indices (into input.coflows) in priority order.
  //
  // `bucket_upper` holds each bucket's exclusive attained-service upper
  // bound, ascending, with the last entry infinity; a coflow whose
  // attained service left its stored bucket's [lower, upper) band is
  // re-bucketed (smallest b with attained < bucket_upper[b]) and
  // repositioned before the order is emitted. An empty span disables the
  // re-check for orderings whose bucket never changes (FIFO, Baraat).
  //
  // Returns false — leaving `order_out` untouched — when the tracked set
  // does not cover the snapshot (size or membership mismatch); callers
  // then rebuild() and re-resolve, exactly like LinkLoadState::matches.
  bool resolve(const ScheduleInput& input,
               const std::vector<double>& bucket_upper,
               std::vector<std::size_t>& order_out);

  // Adopts the snapshot from scratch: one sort, same (bucket, arrival,
  // id) key. `bucket_of` maps a coflow to its bucket index.
  void rebuild(const ScheduleInput& input,
               const std::function<std::int32_t(const ActiveCoflow&)>&
                   bucket_of);

  std::size_t size() const { return entries_.size(); }
  const std::vector<Entry>& entries() const { return entries_; }

  // Coflows repositioned across bucket boundaries by resolve() since
  // construction (observability for tests and the microbench).
  long long repositions() const { return repositions_; }

  // Debug oracle: the maintained order must equal a fresh sort of the
  // snapshot under `bucket_of`, entry for entry, and the id index must
  // agree with the entries. Throws CheckError on divergence.
  void check_consistent(const ScheduleInput& input,
                        const std::function<std::int32_t(
                            const ActiveCoflow&)>& bucket_of) const;

 private:
  static bool entry_less(const Entry& a, const Entry& b) {
    if (a.bucket != b.bucket) return a.bucket < b.bucket;
    if (a.arrival != b.arrival) return a.arrival < b.arrival;
    return a.id < b.id;
  }

  // Sorted position of (bucket, arrival, id) via binary search.
  std::size_t position_of(const Entry& e) const;
  void reposition(std::size_t entry_index, std::int32_t new_bucket);

  // Builds slot_of_ (id -> snapshot index); returns false on duplicate or
  // non-dense-representable ids falling back to the hash path failing.
  void index_snapshot(const ScheduleInput& input);
  std::ptrdiff_t snapshot_index(CoflowId id) const;

  std::vector<Entry> entries_;  // sorted by (bucket, arrival, id)
  std::unordered_map<CoflowId, Entry> meta_;  // id -> its sort key

  // Per-resolve id -> snapshot index map: flat when ids are dense (the
  // trace generators emit 0-based ids), hash fallback otherwise.
  std::vector<std::int32_t> slot_of_;
  std::unordered_map<CoflowId, std::int32_t> slot_map_;
  bool slots_flat_ = true;
  std::vector<CoflowId> pending_;  // coflows needing a re-bucket
  long long repositions_ = 0;
};

}  // namespace ncdrf
