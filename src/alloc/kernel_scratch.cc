#include "alloc/kernel_scratch.h"

#include <algorithm>

#include "common/check.h"

namespace ncdrf {

std::size_t ScratchArena::capacity_bytes() const {
  std::size_t total = 0;
  for (const Block& b : blocks_) total += b.size;
  return total;
}

void* ScratchArena::raw(std::size_t bytes) {
  bytes = (bytes + (kAlign - 1)) & ~(kAlign - 1);
  while (block_ < blocks_.size() &&
         cursor_ + bytes > blocks_[block_].size) {
    ++block_;
    cursor_ = 0;
  }
  if (block_ == blocks_.size()) {
    // Grow geometrically past the high-water mark so repeated growth
    // settles quickly; earlier spans stay valid until the next begin().
    const std::size_t grown =
        std::max({bytes, capacity_bytes(), std::size_t{1} << 12});
    blocks_.push_back(Block{std::make_unique<unsigned char[]>(grown), grown});
    cursor_ = 0;
  }
  void* out = blocks_[block_].data.get() + cursor_;
  cursor_ += bytes;
  return out;
}

void ScratchArena::coalesce() {
  const std::size_t total = capacity_bytes();
  blocks_.clear();
  blocks_.push_back(Block{std::make_unique<unsigned char[]>(total), total});
  block_ = 0;
  cursor_ = 0;
}

const FlowTable& KernelScratch::gather(const ScheduleInput& input,
                                       const LinkLoadState* state,
                                       GatherCounts counts) {
  const Fabric& fabric = *input.fabric;
  const int num_machines = fabric.num_machines();
  const std::size_t num_coflows = input.coflows.size();
  NCDRF_CHECK(counts == GatherCounts::kNone || state != nullptr,
              "divisor counts need a LinkLoadState");

  arena_.begin();
  table_ = FlowTable{};
  table_.num_coflows = num_coflows;
  table_.offset = arena_.alloc<std::int32_t>(num_coflows + 1);

  std::int32_t total = 0;
  table_.offset[0] = 0;
  for (std::size_t k = 0; k < num_coflows; ++k) {
    total += static_cast<std::int32_t>(input.coflows[k].flows.size());
    table_.offset[k + 1] = total;
  }
  const auto n = static_cast<std::size_t>(total);
  table_.num_flows = n;
  table_.flow = arena_.alloc<FlowId>(n);
  table_.up = arena_.alloc<std::int32_t>(n);
  table_.dn = arena_.alloc<std::int32_t>(n);
  table_.rate = arena_.alloc<double>(n);
  const bool with_counts = counts != GatherCounts::kNone;
  if (with_counts) {
    table_.cnt_up = arena_.alloc<std::int32_t>(n);
    table_.cnt_dn = arena_.alloc<std::int32_t>(n);
  }

  std::size_t row = 0;
  for (std::size_t k = 0; k < num_coflows; ++k) {
    const ActiveCoflow& coflow = input.coflows[k];
    const std::vector<int>* divisor = nullptr;
    if (with_counts) {
      const LinkLoadState::CoflowLoad* load = state->find(coflow.id);
      NCDRF_CHECK(load != nullptr, "gather: coflow missing from load state");
      divisor = counts == GatherCounts::kLive ? &load->live : &load->counted;
    }
    for (const ActiveFlow& f : coflow.flows) {
      NCDRF_CHECK(static_cast<unsigned>(f.src) <
                          static_cast<unsigned>(num_machines) &&
                      static_cast<unsigned>(f.dst) <
                          static_cast<unsigned>(num_machines),
                  "flow endpoint out of range");
      const auto u = static_cast<std::int32_t>(f.src);
      const auto d = static_cast<std::int32_t>(f.dst + num_machines);
      table_.flow[row] = f.id;
      table_.up[row] = u;
      table_.dn[row] = d;
      if (with_counts) {
        table_.cnt_up[row] = (*divisor)[static_cast<std::size_t>(u)];
        table_.cnt_dn[row] = (*divisor)[static_cast<std::size_t>(d)];
      }
      ++row;
    }
  }
  std::fill(table_.rate, table_.rate + n, 0.0);
  return table_;
}

void KernelScratch::commit(const FlowTable& table, Allocation& alloc,
                           bool skip_zero) {
  alloc.reserve(table.num_flows);
  if (skip_zero) {
    for (std::size_t i = 0; i < table.num_flows; ++i) {
      if (table.rate[i] > 0.0) alloc.set_rate(table.flow[i], table.rate[i]);
    }
    return;
  }
  for (std::size_t i = 0; i < table.num_flows; ++i) {
    alloc.set_rate(table.flow[i], table.rate[i]);
  }
}

}  // namespace ncdrf
