// Arena-backed structure-of-arrays scratch for the allocation kernels.
//
// Every policy's allocate() used to walk ActiveFlow records through the
// checked Fabric accessors in each of its passes (priority fill, residual
// subtraction, work-conserving backfill, final Allocation writes), paying
// pointer-chased loads and range checks per flow per pass. KernelScratch
// gathers the snapshot exactly once into parallel flat columns — flow id,
// uplink, downlink, optional per-endpoint divisor counts from
// LinkLoadState, and a zero-initialized rate accumulator — so every later
// pass is a branch-light sweep over int32/double arrays the compiler can
// vectorize, and the Allocation hash/dense-table write happens once per
// flow at commit().
//
// Layout contract (see docs/ARCHITECTURE.md §7): columns are index-aligned
// (entry i of every column describes the same flow), flows appear in
// snapshot coflow-major order, `offset` brackets each coflow's rows, and
// `up`/`dn` are pre-validated LinkIds — kernels consuming a FlowTable must
// not re-derive endpoints through the Fabric and must accumulate rates
// only through the `rate` column.
//
// All columns live in one bump arena that is reset (not freed) per call:
// after warm-up a gather performs zero heap allocations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "alloc/link_state.h"
#include "sched/scheduler.h"

namespace ncdrf {

// Bump allocator over a small list of blocks. begin() rewinds the cursor
// without releasing memory; a request that outgrows the current block
// opens a new one (existing spans stay valid), and the next begin()
// coalesces everything into a single block sized to the high-water mark —
// so steady-state use settles to one block and zero allocations.
class ScratchArena {
 public:
  void begin() {
    if (blocks_.size() > 1) coalesce();
    block_ = 0;
    cursor_ = 0;
  }

  template <typename T>
  T* alloc(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena types must not need destruction");
    static_assert(alignof(T) <= kAlign, "over-aligned arena type");
    return static_cast<T*>(raw(count * sizeof(T)));
  }

  // Observability for the scratch-reuse tests: bytes owned and blocks held.
  std::size_t capacity_bytes() const;
  std::size_t num_blocks() const { return blocks_.size(); }

 private:
  static constexpr std::size_t kAlign = 16;

  void* raw(std::size_t bytes);
  void coalesce();

  struct Block {
    std::unique_ptr<unsigned char[]> data;
    std::size_t size = 0;
  };
  std::vector<Block> blocks_;
  std::size_t block_ = 0;   // block the cursor lives in
  std::size_t cursor_ = 0;  // offset within blocks_[block_]
};

// Which per-endpoint divisor columns gather() fills from LinkLoadState.
enum class GatherCounts {
  kNone,     // endpoints only (waterfill-style kernels)
  kLive,     // coflow's unfinished flows on each endpoint link
  kCounted,  // PS-P's presence counts (includes finished under stale mode)
};

// One snapshot mirrored as parallel columns. Pointers live in the owning
// KernelScratch's arena and are valid until its next gather().
struct FlowTable {
  std::size_t num_flows = 0;
  std::size_t num_coflows = 0;
  FlowId* flow = nullptr;          // dense flow ids, coflow-major
  std::int32_t* up = nullptr;      // uplink LinkId of flow i
  std::int32_t* dn = nullptr;      // downlink LinkId of flow i
  std::int32_t* cnt_up = nullptr;  // divisor counts (null under kNone)
  std::int32_t* cnt_dn = nullptr;
  std::int32_t* offset = nullptr;  // coflow k -> first row; size K+1
  double* rate = nullptr;          // accumulator, zero-initialized

  std::size_t begin_of(std::size_t coflow) const {
    return static_cast<std::size_t>(offset[coflow]);
  }
  std::size_t end_of(std::size_t coflow) const {
    return static_cast<std::size_t>(offset[coflow + 1]);
  }
};

class KernelScratch {
 public:
  // Mirrors `input` into the arena. `state` provides the divisor counts
  // and must cover the snapshot when `counts` != kNone (the caller's
  // sync() guarantees it); it may be null under kNone. Endpoints are
  // range-checked here, once, so consuming kernels index links unchecked.
  const FlowTable& gather(const ScheduleInput& input,
                          const LinkLoadState* state, GatherCounts counts);

  const FlowTable& table() const { return table_; }

  // Extra per-call columns (e.g. waterfill weights) from the same arena.
  ScratchArena& arena() { return arena_; }

  // Writes the rate column into `alloc`, one set_rate per flow. With
  // `skip_zero`, rows whose accumulator is exactly 0.0 stay unmentioned —
  // the policies whose legacy paths only ever add positive rates (PS-P)
  // keep their has_rate() surface unchanged.
  static void commit(const FlowTable& table, Allocation& alloc,
                     bool skip_zero = false);

 private:
  ScratchArena arena_;
  FlowTable table_;
};

}  // namespace ncdrf
