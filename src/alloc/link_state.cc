#include "alloc/link_state.h"

#include <algorithm>

#include "common/check.h"

namespace ncdrf {

LinkLoadState::LinkLoadState(bool count_finished_flows)
    : count_finished_flows_(count_finished_flows) {}

void LinkLoadState::reset(const Fabric& fabric) {
  fabric_ = &fabric;
  coflows_.clear();
  live_link_counts_.assign(static_cast<std::size_t>(fabric.num_links()), 0);
  counted_coflows_on_link_.assign(
      static_cast<std::size_t>(fabric.num_links()), 0);
}

void LinkLoadState::apply_flow(CoflowLoad& cs, MachineId src, MachineId dst,
                               int sign, int counted_delta) {
  const std::size_t u = index(fabric_->uplink(src));
  const std::size_t d = index(fabric_->downlink(dst));
  cs.live[u] += sign;
  cs.live[d] += sign;
  cs.live_flows += sign;
  live_link_counts_[u] += sign;
  live_link_counts_[d] += sign;
  if (counted_delta != 0) {
    // Links are only ever *added* to a coflow at arrival (finishing a flow
    // never introduces a new link), so the 0→1 transition below fires at
    // most once per (coflow, link) and `touched` stays duplicate-free.
    cs.counted[u] += counted_delta;
    cs.counted[d] += counted_delta;
    cs.counted_flows += counted_delta;
    for (const std::size_t l : {u, d}) {
      if (counted_delta > 0 && cs.counted[l] == 1) {
        cs.touched.push_back(static_cast<LinkId>(l));
        counted_coflows_on_link_[l] += 1;
      } else if (counted_delta < 0 && cs.counted[l] == 0) {
        counted_coflows_on_link_[l] -= 1;
      }
    }
  }
}

std::size_t LinkLoadState::add_coflow(const ActiveCoflow& coflow) {
  NCDRF_CHECK(bound(), "LinkLoadState used before reset()");
  NCDRF_CHECK(coflow.weight > 0.0, "coflow weights must be positive");
  NCDRF_CHECK(coflows_.find(coflow.id) == coflows_.end(),
              "duplicate coflow arrival");
  CoflowLoad& cs = coflows_[coflow.id];
  cs.weight = coflow.weight;
  const auto links = static_cast<std::size_t>(fabric_->num_links());
  cs.counted.assign(links, 0);
  cs.live.assign(links, 0);
  for (const ActiveFlow& f : coflow.flows) {
    apply_flow(cs, f.src, f.dst, +1, +1);
  }
  if (count_finished_flows_) {
    // Already-finished flows (snapshots adopted mid-run) stay counted
    // under stale presence semantics; they never contribute to `live`.
    for (const ActiveFlow& f : coflow.finished_flows) {
      const std::size_t u = index(fabric_->uplink(f.src));
      const std::size_t d = index(fabric_->downlink(f.dst));
      cs.counted[u] += 1;
      cs.counted[d] += 1;
      cs.counted_flows += 1;
      for (const std::size_t l : {u, d}) {
        if (cs.counted[l] == 1) {
          cs.touched.push_back(static_cast<LinkId>(l));
          counted_coflows_on_link_[l] += 1;
        }
      }
    }
  }
  return cs.touched.size();
}

std::size_t LinkLoadState::finish_flow(const ActiveFlow& flow) {
  NCDRF_CHECK(bound(), "LinkLoadState used before reset()");
  const auto it = coflows_.find(flow.coflow);
  NCDRF_CHECK(it != coflows_.end(), "flow finish for untracked coflow");
  NCDRF_CHECK(it->second.live_flows > 0, "flow finish with no live flows");
  apply_flow(it->second, flow.src, flow.dst, -1,
             count_finished_flows_ ? 0 : -1);
  return 2;  // uplink + downlink (always distinct link ids)
}

std::size_t LinkLoadState::remove_coflow(CoflowId id) {
  NCDRF_CHECK(bound(), "LinkLoadState used before reset()");
  const auto it = coflows_.find(id);
  NCDRF_CHECK(it != coflows_.end(), "departure for untracked coflow");
  const CoflowLoad& cs = it->second;
  for (const LinkId l : cs.touched) {
    const std::size_t i = index(l);
    live_link_counts_[i] -= cs.live[i];
    if (cs.counted[i] > 0) counted_coflows_on_link_[i] -= 1;
  }
  const std::size_t touched = cs.touched.size();
  coflows_.erase(it);
  return touched;
}

void LinkLoadState::rebuild(const ScheduleInput& input) {
  NCDRF_CHECK(input.fabric != nullptr, "snapshot without a fabric");
  reset(*input.fabric);
  for (const ActiveCoflow& coflow : input.coflows) add_coflow(coflow);
}

bool LinkLoadState::matches(const ScheduleInput& input) const {
  if (fabric_ != input.fabric) return false;
  if (coflows_.size() != input.coflows.size()) return false;
  for (const ActiveCoflow& coflow : input.coflows) {
    const auto it = coflows_.find(coflow.id);
    if (it == coflows_.end()) return false;
    const CoflowLoad& cs = it->second;
    if (cs.weight != coflow.weight) return false;
    if (cs.live_flows != static_cast<int>(coflow.flows.size())) return false;
    const int expected_counted =
        static_cast<int>(coflow.flows.size()) +
        (count_finished_flows_
             ? static_cast<int>(coflow.finished_flows.size())
             : 0);
    if (cs.counted_flows != expected_counted) return false;
  }
  return true;
}

void LinkLoadState::check_consistent(const ScheduleInput& input) const {
  LinkLoadState fresh(count_finished_flows_);
  fresh.rebuild(input);
  NCDRF_CHECK(fresh.coflows_.size() == coflows_.size(),
              "link-load state tracks a different coflow set");
  NCDRF_CHECK(fresh.live_link_counts_ == live_link_counts_,
              "per-link live totals diverged from rebuild");
  NCDRF_CHECK(fresh.counted_coflows_on_link_ == counted_coflows_on_link_,
              "per-link coflow presence diverged from rebuild");
  for (const auto& [id, cs] : fresh.coflows_) {
    const auto it = coflows_.find(id);
    NCDRF_CHECK(it != coflows_.end(), "coflow missing from tracked state");
    const CoflowLoad& mine = it->second;
    NCDRF_CHECK(mine.weight == cs.weight, "coflow weight diverged");
    NCDRF_CHECK(mine.live_flows == cs.live_flows &&
                    mine.counted_flows == cs.counted_flows,
                "coflow flow totals diverged from rebuild");
    NCDRF_CHECK(mine.counted == cs.counted && mine.live == cs.live,
                "per-link coflow counts diverged from rebuild");
    // `touched` order may differ between event orderings, and live-mode
    // incremental maintenance legitimately retains links whose last
    // counted flow finished (counted back at zero) — a fresh rebuild never
    // records those. Compare the effective sets: touched links whose count
    // is still positive. The dense `counted` vectors were compared above,
    // so this also proves every positive-count link is present in both.
    const auto effective = [](const CoflowLoad& load) {
      std::vector<LinkId> links;
      for (const LinkId l : load.touched) {
        if (load.counted[static_cast<std::size_t>(l)] > 0) {
          links.push_back(l);
        }
      }
      std::sort(links.begin(), links.end());
      return links;
    };
    NCDRF_CHECK(effective(mine) == effective(cs),
                "touched-link sets diverged from rebuild");
  }
}

}  // namespace ncdrf
