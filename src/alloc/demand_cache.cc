#include "alloc/demand_cache.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "alloc/shard.h"
#include "common/check.h"

namespace ncdrf {

void DemandCache::refresh(const ScheduleInput& input) {
  refresh(input, /*runtime=*/nullptr);
}

void DemandCache::refresh(const ScheduleInput& input, ShardRuntime* runtime) {
  NCDRF_CHECK(input.clairvoyant != nullptr,
              "demand cache requires clairvoyant remaining-size info");
  size_ = input.coflows.size();
  if (demands_.size() < size_) demands_.resize(size_);
  if (touched_.size() < size_) touched_.resize(size_);
  // Flat remaining-bits offsets are serial prefix sums; the buffer only
  // grows, so steady-state refreshes reuse it without reallocating.
  remaining_offset_.resize(size_ + 1);
  remaining_offset_[0] = 0;
  for (std::size_t k = 0; k < size_; ++k) {
    remaining_offset_[k + 1] =
        remaining_offset_[k] +
        static_cast<std::int32_t>(input.coflows[k].flows.size());
  }
  const auto total_flows =
      static_cast<std::size_t>(remaining_offset_[size_]);
  if (remaining_flat_.size() < total_flows) {
    remaining_flat_.resize(total_flows);
  }
  if (runtime != nullptr) {
    // Slots are disjoint per coflow, so the per-slot recomputations are
    // free to run in parallel once the vectors above are sized.
    runtime->parallel_blocks(size_,
                             [&](int, std::size_t begin, std::size_t end) {
                               for (std::size_t k = begin; k < end; ++k) {
                                 refresh_slot(input, k);
                               }
                             });
    return;
  }
  for (std::size_t k = 0; k < size_; ++k) {
    refresh_slot(input, k);
  }
}

void DemandCache::refresh_slot(const ScheduleInput& input, std::size_t k) {
  const Fabric& fabric = *input.fabric;
  const ClairvoyantInfo& info = *input.clairvoyant;
  const auto num_links = static_cast<std::size_t>(fabric.num_links());
  {
    const ActiveCoflow& coflow = input.coflows[k];
    DemandVectors& out = demands_[k];
    std::vector<LinkId>& touched = touched_[k];
    double* remaining =
        remaining_flat_.data() + remaining_offset_[k];
    if (out.demand.size() != num_links) {
      // Fresh slot (or the fabric changed shape): dense zero once; from
      // then on the touched list zeroes only what the last refresh wrote.
      out.demand.assign(num_links, 0.0);
      out.flow_count.assign(num_links, 0);
      touched.clear();
    } else {
      for (const LinkId l : touched) {
        out.demand[static_cast<std::size_t>(l)] = 0.0;
        out.flow_count[static_cast<std::size_t>(l)] = 0;
      }
      touched.clear();
    }
    out.bottleneck_demand = 0.0;
    out.bottleneck_link = -1;
    out.bottleneck_flow_count = 0;
    out.flow_count_bottleneck_link = -1;

    // Same accumulation order as coflow/compute_demand over the coflow's
    // live flows with remaining sizes — bitwise identical to the legacy
    // per-call remaining_demand helpers.
    std::size_t row = 0;
    for (const ActiveFlow& f : coflow.flows) {
      const double size_bits = info.remaining_bits(f.id);
      NCDRF_CHECK(size_bits >= 0.0, "flow size must be non-negative");
      remaining[row++] = size_bits;
      const auto up = static_cast<std::size_t>(fabric.uplink(f.src));
      const auto down = static_cast<std::size_t>(fabric.downlink(f.dst));
      if (out.flow_count[up] == 0) touched.push_back(fabric.uplink(f.src));
      if (out.flow_count[down] == 0) {
        touched.push_back(fabric.downlink(f.dst));
      }
      out.demand[up] += size_bits;
      out.demand[down] += size_bits;
      out.flow_count[up] += 1;
      out.flow_count[down] += 1;
    }
    // Only touched links can hold a positive demand or count. A dense
    // ascending scan keeps the largest value and, among exact ties, the
    // smallest link id — the explicit tie-break below reproduces that
    // without sorting the touched list.
    for (const LinkId i : touched) {
      const auto idx = static_cast<std::size_t>(i);
      if (out.demand[idx] > out.bottleneck_demand ||
          (out.demand[idx] == out.bottleneck_demand &&
           out.bottleneck_link >= 0 && i < out.bottleneck_link)) {
        out.bottleneck_demand = out.demand[idx];
        out.bottleneck_link = i;
      }
      if (out.flow_count[idx] > out.bottleneck_flow_count ||
          (out.flow_count[idx] == out.bottleneck_flow_count &&
           out.flow_count_bottleneck_link >= 0 &&
           i < out.flow_count_bottleneck_link)) {
        out.bottleneck_flow_count = out.flow_count[idx];
        out.flow_count_bottleneck_link = i;
      }
    }
  }
}

double DemandCache::drf_progress(const ScheduleInput& input) const {
  return drf_progress(input, /*runtime=*/nullptr);
}

double DemandCache::drf_progress(const ScheduleInput& input,
                                 ShardRuntime* runtime) const {
  NCDRF_CHECK(size_ == input.coflows.size(),
              "demand cache stale for this snapshot");
  const Fabric& fabric = *input.fabric;
  const auto num_links = static_cast<std::size_t>(fabric.num_links());
  std::vector<double>& load = load_;
  if (runtime != nullptr) {
    // Per-block partial loads over contiguous coflow ranges, reduced in
    // block order — the only serial-vs-sharded difference is the
    // floating-point grouping of that sum.
    const auto blocks = static_cast<std::size_t>(runtime->num_shards());
    if (block_load_.size() < blocks) block_load_.resize(blocks);
    // Zeroed serially: parallel_blocks skips empty ranges, which must not
    // leave a stale partial behind.
    for (std::size_t b = 0; b < blocks; ++b) {
      block_load_[b].assign(num_links, 0.0);
    }
    runtime->parallel_blocks(
        size_, [&](int block, std::size_t begin, std::size_t end) {
          std::vector<double>& partial =
              block_load_[static_cast<std::size_t>(block)];
          for (std::size_t k = begin; k < end; ++k) {
            const ActiveCoflow& coflow = input.coflows[k];
            NCDRF_CHECK(coflow.weight > 0.0,
                        "coflow weights must be positive");
            const DemandVectors& d = demands_[k];
            if (d.bottleneck_demand <= 0.0) continue;
            for (const LinkId l : touched_[k]) {
              const auto i = static_cast<std::size_t>(l);
              partial[i] +=
                  coflow.weight * (d.demand[i] / d.bottleneck_demand);
            }
          }
        });
    load.assign(num_links, 0.0);
    for (std::size_t b = 0; b < blocks; ++b) {
      for (std::size_t i = 0; i < num_links; ++i) {
        load[i] += block_load_[b][i];
      }
    }
  } else {
    load.assign(num_links, 0.0);
    for (std::size_t k = 0; k < size_; ++k) {
      const ActiveCoflow& coflow = input.coflows[k];
      NCDRF_CHECK(coflow.weight > 0.0, "coflow weights must be positive");
      const DemandVectors& d = demands_[k];
      if (d.bottleneck_demand <= 0.0) continue;
      // Untouched links hold exactly 0.0 demand and would contribute an
      // exact +0.0; skipping them leaves every accumulated bit unchanged.
      for (const LinkId l : touched_[k]) {
        const auto i = static_cast<std::size_t>(l);
        load[i] += coflow.weight * (d.demand[i] / d.bottleneck_demand);
      }
    }
  }
  double p_star = std::numeric_limits<double>::infinity();
  for (LinkId i = 0; i < fabric.num_links(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (load[idx] > 0.0) {
      p_star = std::min(p_star, fabric.capacity(i) / load[idx]);
    }
  }
  return std::isfinite(p_star) ? p_star : 0.0;
}

double drf_allocate(const ScheduleInput& input, const DemandCache& cache,
                    Allocation& alloc) {
  return drf_allocate(input, cache, /*runtime=*/nullptr, alloc);
}

double drf_allocate(const ScheduleInput& input, const DemandCache& cache,
                    ShardRuntime* runtime, Allocation& alloc) {
  const double p_star = cache.drf_progress(input, runtime);
  if (p_star <= 0.0) return p_star;
  if (input.total_live_flows >= 0) {
    alloc.reserve(static_cast<std::size_t>(input.total_live_flows));
  }
  for (std::size_t k = 0; k < input.coflows.size(); ++k) {
    const ActiveCoflow& coflow = input.coflows[k];
    const DemandVectors& d = cache.demand(k);
    if (d.bottleneck_demand <= 0.0) {
      // Nothing left to send; flows will be retired by the driver.
      for (const ActiveFlow& f : coflow.flows) alloc.set_rate(f.id, 0.0);
      continue;
    }
    // rate_f = w_k · remaining_f · P* / d̄_k — flows (and links) finish
    // together; weights default to 1. Remaining sizes were memoized by
    // refresh(), so this pass does no clairvoyant lookups.
    const double* remaining = cache.remaining(k);
    for (std::size_t j = 0; j < coflow.flows.size(); ++j) {
      alloc.set_rate(coflow.flows[j].id, coflow.weight * remaining[j] *
                                             p_star / d.bottleneck_demand);
    }
  }
  return p_star;
}

}  // namespace ncdrf
