#include "alloc/shard.h"

#include <time.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "obs/perf.h"

namespace ncdrf {

double thread_cpu_seconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) +
           1e-9 * static_cast<double>(ts.tv_nsec);
  }
#endif
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ShardPlan::ShardPlan(const Fabric& fabric, int num_shards) {
  num_machines_ = fabric.num_machines();
  NCDRF_CHECK(num_machines_ > 0, "shard plan needs a non-empty fabric");
  num_shards_ = std::max(std::min(num_shards, num_machines_), 1);

  machine_shard_.assign(static_cast<std::size_t>(num_machines_), 0);
  link_mask_.assign(static_cast<std::size_t>(num_shards_),
                    std::vector<char>(
                        static_cast<std::size_t>(fabric.num_links()), 0));
  const auto m = static_cast<long long>(num_machines_);
  const auto n = static_cast<long long>(num_shards_);
  for (int s = 0; s < num_shards_; ++s) {
    const auto begin = static_cast<MachineId>(s * m / n);
    const auto end = static_cast<MachineId>((s + 1) * m / n);
    for (MachineId machine = begin; machine < end; ++machine) {
      machine_shard_[static_cast<std::size_t>(machine)] = s;
      link_mask_[static_cast<std::size_t>(s)]
                [static_cast<std::size_t>(fabric.uplink(machine))] = 1;
      link_mask_[static_cast<std::size_t>(s)]
                [static_cast<std::size_t>(fabric.downlink(machine))] = 1;
    }
  }
}

bool ShardPlan::matches(const Fabric& fabric, int num_shards) const {
  if (num_machines_ != fabric.num_machines()) return false;
  return num_shards_ ==
         std::max(std::min(num_shards, num_machines_), 1);
}

std::unique_ptr<ShardRuntime> ShardRuntime::create(
    const SchedulerOptions& options) {
  NCDRF_CHECK(options.shards >= 1, "shard count must be positive");
  if (options.shards <= 1) return nullptr;
  return std::make_unique<ShardRuntime>(options.shards);
}

ShardRuntime::ShardRuntime(int num_shards)
    : num_shards_(num_shards), pool_(num_shards) {
  NCDRF_CHECK(num_shards >= 2, "a shard runtime needs at least two shards");
}

const ShardPlan& ShardRuntime::bind(const Fabric& fabric) {
  if (!plan_.matches(fabric, num_shards_)) {
    plan_ = ShardPlan(fabric, num_shards_);
  }
  return plan_;
}

void ShardRuntime::parallel_shards(const std::function<void(int)>& fn) {
  const int n = plan_.num_shards() > 0 ? plan_.num_shards() : num_shards_;
  task_seconds_.assign(static_cast<std::size_t>(n), 0.0);
  pool_.run(n, [&](int shard) {
    const double start = thread_cpu_seconds();
    fn(shard);
    task_seconds_[static_cast<std::size_t>(shard)] =
        thread_cpu_seconds() - start;
  });
  double max_seconds = 0.0;
  for (const double s : task_seconds_) {
    busy_seconds_ += s;
    max_seconds = std::max(max_seconds, s);
  }
  critical_seconds_ += max_seconds;
  regions_ += 1;
}

void ShardRuntime::parallel_blocks(
    std::size_t n,
    const std::function<void(int, std::size_t, std::size_t)>& fn) {
  const auto blocks = static_cast<std::size_t>(num_shards_);
  parallel_shards([&](int block) {
    const auto b = static_cast<std::size_t>(block);
    const std::size_t begin = n * b / blocks;
    const std::size_t end = n * (b + 1) / blocks;
    if (begin < end) fn(block, begin, end);
  });
}

void ShardRuntime::drain_timers(SchedPerf& perf) {
  perf.shard_regions += regions_;
  perf.shard_busy_seconds += busy_seconds_;
  perf.shard_critical_seconds += critical_seconds_;
  regions_ = 0;
  busy_seconds_ = 0.0;
  critical_seconds_ = 0.0;
}

void ShardedWaterfill::solve(const Fabric& fabric, ShardRuntime& runtime,
                             const std::vector<WaterfillFlow>& flows,
                             const std::vector<double>& available_bps,
                             const ShardReconcile& reconcile,
                             std::vector<double>& rates_out) {
  const std::size_t n = flows.size();
  rates_out.assign(n, 0.0);
  if (n == 0) return;

  const ShardPlan& plan = runtime.bind(fabric);
  const auto num_shards = static_cast<std::size_t>(plan.num_shards());
  const auto num_links = static_cast<std::size_t>(fabric.num_links());
  NCDRF_CHECK(available_bps.size() == num_links,
              "available-capacity vector must cover all links");
  if (shards_.size() < num_shards) shards_.resize(num_shards);

  residual_.resize(num_links);
  tol_.resize(num_links);
  for (std::size_t i = 0; i < num_links; ++i) {
    residual_[i] = std::max(available_bps[i], 0.0);
    tol_[i] = reconcile.tolerance * std::max(available_bps[i], 1.0);
  }

  offer_up_.resize(n);
  offer_dn_.resize(n);
  shard_progress_.assign(num_shards, 0);

  // Gather: each shard scans the full flow list once, in parallel, and
  // keeps the flows touching one of its links. A cross-shard flow lands
  // in both endpoint shards so each side can price its own link.
  runtime.parallel_shards([&](int s) {
    Shard& sh = shards_[static_cast<std::size_t>(s)];
    sh.flows.clear();
    sh.index.clear();
    for (std::size_t k = 0; k < n; ++k) {
      const WaterfillFlow& f = flows[k];
      if (plan.shard_of_machine(f.src) == s ||
          plan.shard_of_machine(f.dst) == s) {
        sh.flows.push_back(f);
        sh.index.push_back(static_cast<std::int32_t>(k));
      }
    }
  });

  const int max_iterations = std::max(reconcile.max_iterations, 1);
  for (int iter = 0; iter < max_iterations; ++iter) {
    // Solve + publish: independent masked solves against the shared
    // residual snapshot; each shard writes the offer slot(s) of the
    // endpoint side(s) it owns (a local flow gets both from one shard).
    runtime.parallel_shards([&](int s) {
      Shard& sh = shards_[static_cast<std::size_t>(s)];
      if (sh.flows.empty()) return;
      sh.kernel.solve(fabric, sh.flows, residual_, &plan.link_mask(s),
                      sh.rates);
      for (std::size_t j = 0; j < sh.index.size(); ++j) {
        const auto k = static_cast<std::size_t>(sh.index[j]);
        if (plan.shard_of_machine(sh.flows[j].src) == s) {
          offer_up_[k] = sh.rates[j];
        }
        if (plan.shard_of_machine(sh.flows[j].dst) == s) {
          offer_dn_[k] = sh.rates[j];
        }
      }
    });

    // Apply + compact: a flow's increment is the minimum of its two
    // endpoint offers, so no owned link is ever oversubscribed. Writes
    // stay partitioned — a shard only debits its own links and only the
    // uplink owner accumulates the flow's rate. Both endpoint shards of
    // a cross flow then apply the identical keep-test against the shared
    // residuals, so their lists stay in lockstep.
    runtime.parallel_shards([&](int s) {
      Shard& sh = shards_[static_cast<std::size_t>(s)];
      bool progress = false;
      for (std::size_t j = 0; j < sh.index.size(); ++j) {
        const auto k = static_cast<std::size_t>(sh.index[j]);
        const double r = std::min(offer_up_[k], offer_dn_[k]);
        if (!(r > 0.0)) continue;
        progress = true;
        const WaterfillFlow& f = sh.flows[j];
        if (plan.shard_of_machine(f.src) == s) {
          const auto u = static_cast<std::size_t>(fabric.uplink(f.src));
          residual_[u] = std::max(residual_[u] - r, 0.0);
          rates_out[k] += r;
        }
        if (plan.shard_of_machine(f.dst) == s) {
          const auto d = static_cast<std::size_t>(fabric.downlink(f.dst));
          residual_[d] = std::max(residual_[d] - r, 0.0);
        }
      }
      shard_progress_[static_cast<std::size_t>(s)] = progress ? 1 : 0;
    });

    bool any_progress = false;
    for (std::size_t s = 0; s < num_shards; ++s) {
      any_progress = any_progress || shard_progress_[s] != 0;
    }
    if (!any_progress || iter + 1 == max_iterations) break;

    // Keep only flows whose both endpoint links retain slack beyond the
    // convergence tolerance; stop once every list has drained.
    bool any_active = false;
    runtime.parallel_shards([&](int s) {
      Shard& sh = shards_[static_cast<std::size_t>(s)];
      std::size_t kept = 0;
      for (std::size_t j = 0; j < sh.index.size(); ++j) {
        const WaterfillFlow& f = sh.flows[j];
        const auto u = static_cast<std::size_t>(fabric.uplink(f.src));
        const auto d = static_cast<std::size_t>(fabric.downlink(f.dst));
        if (residual_[u] > tol_[u] && residual_[d] > tol_[d]) {
          sh.flows[kept] = sh.flows[j];
          sh.index[kept] = sh.index[j];
          ++kept;
        }
      }
      sh.flows.resize(kept);
      sh.index.resize(kept);
      shard_progress_[static_cast<std::size_t>(s)] = kept > 0 ? 1 : 0;
    });
    for (std::size_t s = 0; s < num_shards; ++s) {
      any_active = any_active || shard_progress_[s] != 0;
    }
    if (!any_active) break;
  }
}

void ShardedPriorityFill::run(const ScheduleInput& input,
                              const LinkLoadState& state,
                              const std::vector<std::size_t>& order,
                              ShardRuntime& runtime, Allocation& alloc) {
  const Fabric& fabric = *input.fabric;
  const ShardPlan& plan = runtime.bind(fabric);
  const auto num_shards = static_cast<std::size_t>(plan.num_shards());
  const auto num_links = static_cast<std::size_t>(fabric.num_links());

  // Flat flow ids and per-coflow loads, resolved serially so the parallel
  // walk does no hash lookups.
  flat_offset_.assign(input.coflows.size() + 1, 0);
  loads_.resize(input.coflows.size());
  for (std::size_t k = 0; k < input.coflows.size(); ++k) {
    flat_offset_[k + 1] =
        flat_offset_[k] +
        static_cast<std::int32_t>(input.coflows[k].flows.size());
    loads_[k] = state.find(input.coflows[k].id);
    NCDRF_CHECK(loads_[k] != nullptr, "link-load state missing a coflow");
  }
  const auto total_flows =
      static_cast<std::size_t>(flat_offset_[input.coflows.size()]);
  offer_up_.assign(total_flows, 0.0);
  offer_dn_.assign(total_flows, 0.0);
  if (residual_.size() < num_shards) residual_.resize(num_shards);

  // Every shard walks the full priority order against its own links:
  // offers snapshot the residuals as of the coflow's start (pass 1), then
  // the whole coflow's usage is subtracted (pass 2) — the same even-split
  // semantics as the serial fill. A shard-local flow gets its exact joint
  // rate; a cross-shard flow gets two one-sided offers.
  runtime.parallel_shards([&](int shard) {
    std::vector<double>& residual =
        residual_[static_cast<std::size_t>(shard)];
    residual.resize(num_links);
    for (LinkId i = 0; i < fabric.num_links(); ++i) {
      residual[static_cast<std::size_t>(i)] = fabric.capacity(i);
    }
    for (const std::size_t k : order) {
      const ActiveCoflow& coflow = input.coflows[k];
      const LinkLoadState::CoflowLoad& load = *loads_[k];
      const auto base = static_cast<std::size_t>(flat_offset_[k]);
      for (std::size_t j = 0; j < coflow.flows.size(); ++j) {
        const ActiveFlow& f = coflow.flows[j];
        const auto u = static_cast<std::size_t>(fabric.uplink(f.src));
        const auto d = static_cast<std::size_t>(fabric.downlink(f.dst));
        const bool own_u = plan.shard_of_link(fabric.uplink(f.src)) == shard;
        const bool own_d =
            plan.shard_of_link(fabric.downlink(f.dst)) == shard;
        if (own_u && own_d) {
          const double r = std::max(std::min(residual[u] / load.live[u],
                                             residual[d] / load.live[d]),
                                    0.0);
          offer_up_[base + j] = r;
          offer_dn_[base + j] = r;
        } else if (own_u) {
          offer_up_[base + j] = std::max(residual[u] / load.live[u], 0.0);
        } else if (own_d) {
          offer_dn_[base + j] = std::max(residual[d] / load.live[d], 0.0);
        }
      }
      for (std::size_t j = 0; j < coflow.flows.size(); ++j) {
        const ActiveFlow& f = coflow.flows[j];
        const auto u = static_cast<std::size_t>(fabric.uplink(f.src));
        const auto d = static_cast<std::size_t>(fabric.downlink(f.dst));
        const bool own_u = plan.shard_of_link(fabric.uplink(f.src)) == shard;
        const bool own_d =
            plan.shard_of_link(fabric.downlink(f.dst)) == shard;
        if (own_u) {
          residual[u] = std::max(residual[u] - offer_up_[base + j], 0.0);
        }
        if (own_d) {
          residual[d] = std::max(residual[d] - offer_dn_[base + j], 0.0);
        }
      }
    }
  });

  // Serial merge: a flow realizes the minimum of its endpoint offers.
  for (std::size_t k = 0; k < input.coflows.size(); ++k) {
    const ActiveCoflow& coflow = input.coflows[k];
    const auto base = static_cast<std::size_t>(flat_offset_[k]);
    for (std::size_t j = 0; j < coflow.flows.size(); ++j) {
      alloc.set_rate(coflow.flows[j].id,
                     std::max(std::min(offer_up_[base + j],
                                       offer_dn_[base + j]),
                              0.0));
    }
  }
}

void ShardedBackfill::run(const ScheduleInput& input, ShardRuntime& runtime,
                          Allocation& alloc) {
  residual_capacity(input, alloc, residual_);
  for (double& r : residual_) r = std::max(r, 0.0);

  flows_.clear();
  for (const ActiveCoflow& coflow : input.coflows) {
    for (const ActiveFlow& flow : coflow.flows) {
      flows_.push_back({flow.id, flow.src, flow.dst, 1.0});
    }
  }
  waterfill_.solve(*input.fabric, runtime, flows_, residual_,
                   input.reconcile, rates_);
  for (std::size_t k = 0; k < flows_.size(); ++k) {
    if (rates_[k] > 0.0) alloc.add_rate(flows_[k].id, rates_[k]);
  }
}

}  // namespace ncdrf
