#include "alloc/waterfill.h"

#include <algorithm>

#include "common/check.h"

namespace ncdrf {
namespace {

// The legacy solver froze every flow crossing a link whose residual fell
// within this band of zero; the kernel replicates the rule so both freeze
// the same flows at the same fill levels.
double freeze_tolerance(double available_bps) {
  return 1e-9 * std::max(available_bps, 1.0);
}

}  // namespace

void WaterfillKernel::push_link(std::size_t link) {
  heap_.push_back(HeapEntry{
      theta_last_[link] + avail_[link] / weight_[link],
      static_cast<LinkId>(link), ++version_[link]});
  std::push_heap(heap_.begin(), heap_.end());
}

void WaterfillKernel::solve(const Fabric& fabric,
                            const std::vector<WaterfillFlow>& flows,
                            const std::vector<double>& available_bps,
                            std::vector<double>& rates_out) {
  solve(fabric, flows, available_bps, /*link_mask=*/nullptr, rates_out);
}

void WaterfillKernel::solve(const Fabric& fabric,
                            const std::vector<WaterfillFlow>& flows,
                            const std::vector<double>& available_bps,
                            const std::vector<char>* link_mask,
                            std::vector<double>& rates_out) {
  NCDRF_CHECK(available_bps.size() ==
                  static_cast<std::size_t>(fabric.num_links()),
              "available-capacity vector must cover all links");
  NCDRF_CHECK(link_mask == nullptr ||
                  link_mask->size() ==
                      static_cast<std::size_t>(fabric.num_links()),
              "link mask must cover all links");
  const auto masked_out = [link_mask](std::size_t link) {
    return link_mask != nullptr && (*link_mask)[link] == 0;
  };
  const std::size_t n = flows.size();
  rates_out.assign(n, 0.0);
  if (n == 0) return;

  const auto num_links = static_cast<std::size_t>(fabric.num_links());
  weight_.assign(num_links, 0.0);
  avail_.resize(num_links);
  theta_last_.assign(num_links, 0.0);
  tol_.resize(num_links);
  version_.assign(num_links, 0);
  frozen_link_.assign(num_links, 0);
  frozen_flow_.assign(n, 0);
  heap_.clear();

  for (std::size_t i = 0; i < num_links; ++i) {
    avail_[i] = std::max(available_bps[i], 0.0);
    tol_[i] = freeze_tolerance(available_bps[i]);
  }

  // CSR adjacency (link → flow indices) and per-link unfrozen weight.
  auto up = [&](const WaterfillFlow& f) {
    return static_cast<std::size_t>(fabric.uplink(f.src));
  };
  auto down = [&](const WaterfillFlow& f) {
    return static_cast<std::size_t>(fabric.downlink(f.dst));
  };
  csr_offsets_.assign(num_links + 1, 0);
  for (const WaterfillFlow& f : flows) {
    NCDRF_CHECK(f.weight > 0.0, "max-min weights must be positive");
    csr_offsets_[up(f) + 1] += 1;
    csr_offsets_[down(f) + 1] += 1;
    weight_[up(f)] += f.weight;
    weight_[down(f)] += f.weight;
  }
  for (std::size_t i = 0; i < num_links; ++i) {
    csr_offsets_[i + 1] += csr_offsets_[i];
  }
  csr_flows_.resize(static_cast<std::size_t>(csr_offsets_[num_links]));
  {
    std::vector<std::int32_t>& cursor = csr_cursor_;
    cursor.assign(csr_offsets_.begin(), csr_offsets_.end() - 1);
    for (std::size_t k = 0; k < n; ++k) {
      csr_flows_[static_cast<std::size_t>(cursor[up(flows[k])]++)] =
          static_cast<std::int32_t>(k);
      csr_flows_[static_cast<std::size_t>(cursor[down(flows[k])]++)] =
          static_cast<std::int32_t>(k);
    }
  }

  for (std::size_t i = 0; i < num_links; ++i) {
    if (weight_[i] > 0.0 && !masked_out(i)) push_link(i);
  }

  // Freezes `link` at fill level theta: all its unfrozen flows get their
  // final rate weight·theta, and each such flow's other endpoint link is
  // advanced to theta and re-keyed with the flow's weight removed.
  const auto freeze_link = [&](std::size_t link, double theta) {
    frozen_link_[link] = 1;
    const auto begin = static_cast<std::size_t>(csr_offsets_[link]);
    const auto end = static_cast<std::size_t>(csr_offsets_[link + 1]);
    for (std::size_t c = begin; c < end; ++c) {
      const auto k = static_cast<std::size_t>(csr_flows_[c]);
      if (frozen_flow_[k]) continue;
      frozen_flow_[k] = 1;
      rates_out[k] = flows[k].weight * theta;
      const std::size_t u = up(flows[k]);
      const std::size_t other = (u == link) ? down(flows[k]) : u;
      if (frozen_link_[other] || masked_out(other)) continue;
      avail_[other] = std::max(
          avail_[other] - (theta - theta_last_[other]) * weight_[other],
          0.0);
      theta_last_[other] = theta;
      weight_[other] -= flows[k].weight;
      if (weight_[other] > 0.0) {
        push_link(other);
      } else {
        weight_[other] = 0.0;  // no unfrozen flow left; never constrains
        ++version_[other];     // invalidate any queued entry
      }
    }
  };

  double theta = 0.0;
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end());
    const HeapEntry e = heap_.back();
    heap_.pop_back();
    const auto link = static_cast<std::size_t>(e.link);
    if (e.version != version_[link] || frozen_link_[link]) continue;
    theta = std::max(e.key, theta);
    freeze_link(link, theta);

    // Legacy tolerance cascade: any link whose residual at this fill level
    // sits within its freeze band saturates now, not at its own key.
    while (!heap_.empty()) {
      const HeapEntry& top = heap_.front();
      const auto j = static_cast<std::size_t>(top.link);
      if (top.version != version_[j] || frozen_link_[j]) {
        std::pop_heap(heap_.begin(), heap_.end());
        heap_.pop_back();
        continue;
      }
      const double resid =
          std::max(avail_[j] - (theta - theta_last_[j]) * weight_[j], 0.0);
      if (resid > tol_[j]) break;
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.pop_back();
      freeze_link(j, theta);
    }
  }
}

void residual_capacity(const ScheduleInput& input, const Allocation& alloc,
                       std::vector<double>& out) {
  const Fabric& fabric = *input.fabric;
  out.assign(static_cast<std::size_t>(fabric.num_links()), 0.0);
  for (const ActiveCoflow& coflow : input.coflows) {
    for (const ActiveFlow& flow : coflow.flows) {
      const double r = alloc.rate(flow.id);
      out[static_cast<std::size_t>(fabric.uplink(flow.src))] += r;
      out[static_cast<std::size_t>(fabric.downlink(flow.dst))] += r;
    }
  }
  for (LinkId i = 0; i < fabric.num_links(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    out[idx] = fabric.capacity(i) - out[idx];
  }
}

void ResidualBackfill::run(const ScheduleInput& input, Allocation& alloc) {
  residual_capacity(input, alloc, residual_);
  for (double& r : residual_) r = std::max(r, 0.0);

  flows_.clear();
  for (const ActiveCoflow& coflow : input.coflows) {
    for (const ActiveFlow& flow : coflow.flows) {
      flows_.push_back({flow.id, flow.src, flow.dst, 1.0});
    }
  }
  kernel_.solve(*input.fabric, flows_, residual_, rates_);
  for (std::size_t k = 0; k < flows_.size(); ++k) {
    if (rates_[k] > 0.0) alloc.add_rate(flows_[k].id, rates_[k]);
  }
}

}  // namespace ncdrf
