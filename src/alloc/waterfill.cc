#include "alloc/waterfill.h"

#include <algorithm>

#include "common/check.h"

namespace ncdrf {
namespace {

// The legacy solver froze every flow crossing a link whose residual fell
// within this band of zero; the kernel replicates the rule so both freeze
// the same flows at the same fill levels.
double freeze_tolerance(double available_bps) {
  return 1e-9 * std::max(available_bps, 1.0);
}

}  // namespace

void WaterfillKernel::sift_up(std::size_t i) {
  const std::int32_t link = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!heap_less(link, heap_[parent])) break;
    heap_[i] = heap_[parent];
    pos_[static_cast<std::size_t>(heap_[i])] = static_cast<std::int32_t>(i);
    i = parent;
  }
  heap_[i] = link;
  pos_[static_cast<std::size_t>(link)] = static_cast<std::int32_t>(i);
}

void WaterfillKernel::sift_down(std::size_t i) {
  const std::int32_t link = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && heap_less(heap_[child + 1], heap_[child])) {
      ++child;
    }
    if (!heap_less(heap_[child], link)) break;
    heap_[i] = heap_[child];
    pos_[static_cast<std::size_t>(heap_[i])] = static_cast<std::int32_t>(i);
    i = child;
  }
  heap_[i] = link;
  pos_[static_cast<std::size_t>(link)] = static_cast<std::int32_t>(i);
}

void WaterfillKernel::heap_push(std::int32_t link) {
  heap_.push_back(link);
  pos_[static_cast<std::size_t>(link)] =
      static_cast<std::int32_t>(heap_.size() - 1);
  sift_up(heap_.size() - 1);
}

void WaterfillKernel::heap_remove(std::int32_t link) {
  const auto i = static_cast<std::size_t>(pos_[static_cast<std::size_t>(link)]);
  pos_[static_cast<std::size_t>(link)] = -1;
  const std::int32_t moved = heap_.back();
  heap_.pop_back();
  if (i == heap_.size()) return;
  heap_[i] = moved;
  pos_[static_cast<std::size_t>(moved)] = static_cast<std::int32_t>(i);
  sift_down(i);
  sift_up(static_cast<std::size_t>(pos_[static_cast<std::size_t>(moved)]));
}

std::int32_t WaterfillKernel::heap_pop_root() {
  const std::int32_t root = heap_[0];
  pos_[static_cast<std::size_t>(root)] = -1;
  const std::int32_t moved = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_[0] = moved;
    pos_[static_cast<std::size_t>(moved)] = 0;
    sift_down(0);
  }
  return root;
}

void WaterfillKernel::solve(const Fabric& fabric,
                            const std::vector<WaterfillFlow>& flows,
                            const std::vector<double>& available_bps,
                            std::vector<double>& rates_out) {
  solve(fabric, flows, available_bps, /*link_mask=*/nullptr, rates_out);
}

void WaterfillKernel::solve(const Fabric& fabric,
                            const std::vector<WaterfillFlow>& flows,
                            const std::vector<double>& available_bps,
                            const std::vector<char>* link_mask,
                            std::vector<double>& rates_out) {
  const std::size_t n = flows.size();
  up_.resize(n);
  dn_.resize(n);
  w_.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    up_[k] = fabric.uplink(flows[k].src);
    dn_[k] = fabric.downlink(flows[k].dst);
    w_[k] = flows[k].weight;
  }
  rates_out.resize(n);
  solve(fabric, WaterfillProblem{n, up_.data(), dn_.data(), w_.data()},
        available_bps, link_mask, rates_out.data());
}

void WaterfillKernel::solve(const Fabric& fabric,
                            const WaterfillProblem& problem,
                            const std::vector<double>& available_bps,
                            const std::vector<char>* link_mask,
                            double* rates_out) {
  NCDRF_CHECK(available_bps.size() ==
                  static_cast<std::size_t>(fabric.num_links()),
              "available-capacity vector must cover all links");
  NCDRF_CHECK(link_mask == nullptr ||
                  link_mask->size() ==
                      static_cast<std::size_t>(fabric.num_links()),
              "link mask must cover all links");
  const std::size_t n = problem.num_flows;
  const std::int32_t* up = problem.up;
  const std::int32_t* dn = problem.dn;
  const double* w = problem.weight;
  std::fill(rates_out, rates_out + n, 0.0);
  if (n == 0) return;

  const auto num_links = static_cast<std::size_t>(fabric.num_links());
  weight_.assign(num_links, 0.0);
  avail_.resize(num_links);
  theta_last_.assign(num_links, 0.0);
  tol_.resize(num_links);
  key_.resize(num_links);
  pos_.assign(num_links, -1);
  frozen_flow_.assign(n, 0);
  heap_.clear();

  for (std::size_t i = 0; i < num_links; ++i) {
    avail_[i] = std::max(available_bps[i], 0.0);
    tol_[i] = freeze_tolerance(available_bps[i]);
  }

  // CSR adjacency (link → flow indices) and per-link unfrozen weight:
  // straight-line sweeps over the flat columns.
  csr_offsets_.assign(num_links + 1, 0);
  for (std::size_t k = 0; k < n; ++k) {
    const double wk = w != nullptr ? w[k] : 1.0;
    NCDRF_CHECK(wk > 0.0, "max-min weights must be positive");
    csr_offsets_[static_cast<std::size_t>(up[k]) + 1] += 1;
    csr_offsets_[static_cast<std::size_t>(dn[k]) + 1] += 1;
    weight_[static_cast<std::size_t>(up[k])] += wk;
    weight_[static_cast<std::size_t>(dn[k])] += wk;
  }
  for (std::size_t i = 0; i < num_links; ++i) {
    csr_offsets_[i + 1] += csr_offsets_[i];
  }
  csr_flows_.resize(static_cast<std::size_t>(csr_offsets_[num_links]));
  {
    std::vector<std::int32_t>& cursor = csr_cursor_;
    cursor.assign(csr_offsets_.begin(), csr_offsets_.end() - 1);
    for (std::size_t k = 0; k < n; ++k) {
      csr_flows_[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(up[k])]++)] =
          static_cast<std::int32_t>(k);
      csr_flows_[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(dn[k])]++)] =
          static_cast<std::int32_t>(k);
    }
  }

  for (std::size_t i = 0; i < num_links; ++i) {
    const bool masked_out = link_mask != nullptr && (*link_mask)[i] == 0;
    if (weight_[i] > 0.0 && !masked_out) {
      key_[i] = theta_last_[i] + avail_[i] / weight_[i];
      heap_push(static_cast<std::int32_t>(i));
    }
  }

  // Freezes `link` at fill level theta: all its unfrozen flows get their
  // final rate weight·theta, and each such flow's other endpoint link is
  // advanced to theta and re-keyed in place with the flow's weight
  // removed. A link absent from the heap (pos < 0) is frozen, weightless
  // or masked out — all cases the update must skip.
  const auto freeze_link = [&](std::size_t link, double theta) {
    const auto begin = static_cast<std::size_t>(csr_offsets_[link]);
    const auto end = static_cast<std::size_t>(csr_offsets_[link + 1]);
    for (std::size_t c = begin; c < end; ++c) {
      const auto k = static_cast<std::size_t>(csr_flows_[c]);
      if (frozen_flow_[k]) continue;
      frozen_flow_[k] = 1;
      const double wk = w != nullptr ? w[k] : 1.0;
      rates_out[k] = wk * theta;
      const auto u = static_cast<std::size_t>(up[k]);
      const std::size_t other = (u == link) ? static_cast<std::size_t>(dn[k])
                                            : u;
      if (pos_[other] < 0) continue;
      avail_[other] = std::max(
          avail_[other] - (theta - theta_last_[other]) * weight_[other],
          0.0);
      theta_last_[other] = theta;
      weight_[other] -= wk;
      if (weight_[other] > 0.0) {
        key_[other] = theta_last_[other] + avail_[other] / weight_[other];
        // Removing weight never lowers a heaped link's saturation level,
        // but the heap repair is direction-agnostic anyway.
        const auto at = static_cast<std::size_t>(pos_[other]);
        sift_down(at);
        sift_up(static_cast<std::size_t>(pos_[other]));
      } else {
        weight_[other] = 0.0;  // no unfrozen flow left; never constrains
        heap_remove(static_cast<std::int32_t>(other));
      }
    }
  };

  double theta = 0.0;
  while (!heap_.empty()) {
    const auto link = static_cast<std::size_t>(heap_pop_root());
    theta = std::max(key_[link], theta);
    freeze_link(link, theta);

    // Legacy tolerance cascade: any link whose residual at this fill level
    // sits within its freeze band saturates now, not at its own key.
    while (!heap_.empty()) {
      const auto j = static_cast<std::size_t>(heap_[0]);
      const double resid =
          std::max(avail_[j] - (theta - theta_last_[j]) * weight_[j], 0.0);
      if (resid > tol_[j]) break;
      heap_pop_root();
      freeze_link(j, theta);
    }
  }
}

void residual_capacity(const ScheduleInput& input, const Allocation& alloc,
                       std::vector<double>& out) {
  const Fabric& fabric = *input.fabric;
  out.assign(static_cast<std::size_t>(fabric.num_links()), 0.0);
  for (const ActiveCoflow& coflow : input.coflows) {
    for (const ActiveFlow& flow : coflow.flows) {
      const double r = alloc.rate(flow.id);
      out[static_cast<std::size_t>(fabric.uplink(flow.src))] += r;
      out[static_cast<std::size_t>(fabric.downlink(flow.dst))] += r;
    }
  }
  for (LinkId i = 0; i < fabric.num_links(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    out[idx] = fabric.capacity(i) - out[idx];
  }
}

void residual_capacity(const Fabric& fabric, const FlowTable& table,
                       std::vector<double>& out) {
  out.assign(static_cast<std::size_t>(fabric.num_links()), 0.0);
  for (std::size_t i = 0; i < table.num_flows; ++i) {
    const double r = table.rate[i];
    out[static_cast<std::size_t>(table.up[i])] += r;
    out[static_cast<std::size_t>(table.dn[i])] += r;
  }
  for (LinkId i = 0; i < fabric.num_links(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    out[idx] = fabric.capacity(i) - out[idx];
  }
}

void ResidualBackfill::run(const ScheduleInput& input, Allocation& alloc) {
  residual_capacity(input, alloc, residual_);
  for (double& r : residual_) r = std::max(r, 0.0);

  flows_.clear();
  for (const ActiveCoflow& coflow : input.coflows) {
    for (const ActiveFlow& flow : coflow.flows) {
      flows_.push_back({flow.id, flow.src, flow.dst, 1.0});
    }
  }
  kernel_.solve(*input.fabric, flows_, residual_, rates_);
  for (std::size_t k = 0; k < flows_.size(); ++k) {
    if (rates_[k] > 0.0) alloc.add_rate(flows_[k].id, rates_[k]);
  }
}

void ResidualBackfill::run(const Fabric& fabric, const FlowTable& table) {
  residual_capacity(fabric, table, residual_);
  for (double& r : residual_) r = std::max(r, 0.0);

  rates_.resize(table.num_flows);
  kernel_.solve(fabric,
                WaterfillProblem{table.num_flows, table.up, table.dn,
                                 /*weight=*/nullptr},
                residual_, /*link_mask=*/nullptr, rates_.data());
  for (std::size_t k = 0; k < table.num_flows; ++k) {
    if (rates_[k] > 0.0) table.rate[k] += rates_[k];
  }
}

}  // namespace ncdrf
