// Sorted-saturation water-filling: the allocation-kernel layer's weighted
// max-min solver (classic bottleneck algorithm, cf. Bertsekas & Gallager
// §6.5.2) shared by the per-flow/endpoint fairness policies and every
// priority scheduler's residual backfilling pass.
//
// The legacy solver ran a round loop — rescan all links for the smallest
// residual/weight, raise every unfrozen flow, rescan all flows for freeze
// candidates — which is O((F+L)·rounds) with up to L+1 rounds. The kernel
// keeps a lazy min-heap of link saturation levels instead: links pop in
// saturation order, each pop freezes that link's unfrozen flows at the
// current fill level Θ (their final rate is weight·Θ) and re-keys the one
// other link each frozen flow crosses. Every link pops at most once and
// every flow freeze re-keys at most one link, so the whole solve is
// O((F+L)·log L).
//
// Freeze semantics replicate the legacy solver's tolerance rule exactly
// (a link whose residual falls within 1e-9·max(avail, 1) of zero is
// saturated), so the two solvers freeze the same flows at the same fill
// levels and rates agree to floating-point accumulation order.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/scheduler.h"

namespace ncdrf {

struct WaterfillFlow {
  FlowId id = -1;
  MachineId src = -1;
  MachineId dst = -1;
  double weight = 1.0;  // must be positive
};

class WaterfillKernel {
 public:
  // Computes weighted max-min rates for `flows` given per-link available
  // capacity `available_bps` (indexed by LinkId; entries may be 0), into
  // `rates_out` (resized; index-aligned with `flows`). The allocation
  // saturates every link that constrains any flow. All scratch buffers are
  // members, so steady-state calls allocate nothing.
  void solve(const Fabric& fabric, const std::vector<WaterfillFlow>& flows,
             const std::vector<double>& available_bps,
             std::vector<double>& rates_out);

  // Shard-masked variant: links with link_mask[link] == 0 never saturate
  // and never cap a flow (they belong to another shard's subproblem), so
  // every flow's rate is decided by its in-mask links alone. Every flow
  // must touch at least one in-mask link or it would fill forever. A null
  // mask is the unmasked solve above, with arithmetic untouched — the
  // mask only prunes heap pushes and freeze updates, so shards == 1
  // remains bit-identical to the serial kernel.
  void solve(const Fabric& fabric, const std::vector<WaterfillFlow>& flows,
             const std::vector<double>& available_bps,
             const std::vector<char>* link_mask,
             std::vector<double>& rates_out);

 private:
  struct HeapEntry {
    double key = 0.0;     // fill level Θ at which the link saturates
    LinkId link = -1;
    std::uint32_t version = 0;

    // Min-heap on key via std::push_heap's max-heap comparator; link id
    // breaks ties deterministically.
    bool operator<(const HeapEntry& other) const {
      if (key != other.key) return key > other.key;
      return link > other.link;
    }
  };

  void push_link(std::size_t link);

  // CSR adjacency: link → indices into `flows`.
  std::vector<std::int32_t> csr_offsets_;
  std::vector<std::int32_t> csr_flows_;
  std::vector<std::int32_t> csr_cursor_;

  // Per-link solver state, indexed by LinkId.
  std::vector<double> weight_;      // unfrozen weight crossing the link
  std::vector<double> avail_;       // residual capacity at theta_last
  std::vector<double> theta_last_;  // fill level avail_/weight_ refer to
  std::vector<double> tol_;         // legacy freeze tolerance
  std::vector<std::uint32_t> version_;
  std::vector<char> frozen_link_;

  std::vector<char> frozen_flow_;
  std::vector<HeapEntry> heap_;
};

// Writes capacity − usage per link into `out` (resized), accumulating the
// snapshot's flow rates in coflow-major order — the residual every
// backfilling pass starts from. Entries are not clamped; callers decide
// how to treat numerically negative residuals.
void residual_capacity(const ScheduleInput& input, const Allocation& alloc,
                       std::vector<double>& out);

// Work-conserving last pass for the priority schedulers: water-fills the
// residual capacity left by `alloc` max-min fairly (unit weights) across
// every active flow and adds the result in place. Equivalent to the legacy
// max_min_backfill; a persistent instance reuses all scratch.
class ResidualBackfill {
 public:
  void run(const ScheduleInput& input, Allocation& alloc);

 private:
  WaterfillKernel kernel_;
  std::vector<WaterfillFlow> flows_;
  std::vector<double> residual_;
  std::vector<double> rates_;
};

}  // namespace ncdrf
