// Sorted-saturation water-filling: the allocation-kernel layer's weighted
// max-min solver (classic bottleneck algorithm, cf. Bertsekas & Gallager
// §6.5.2) shared by the per-flow/endpoint fairness policies and every
// priority scheduler's residual backfilling pass.
//
// The legacy solver ran a round loop — rescan all links for the smallest
// residual/weight, raise every unfrozen flow, rescan all flows for freeze
// candidates — which is O((F+L)·rounds) with up to L+1 rounds. The kernel
// pops links from a min-heap of saturation levels instead: each pop
// freezes that link's unfrozen flows at the current fill level Θ (their
// final rate is weight·Θ) and re-keys the one other link each frozen flow
// crosses.
//
// The heap is *indexed*: one slot per link with an in-place
// increase-key/remove (position map pos_), so it never holds more than L
// entries. The earlier lazy-invalidation variant pushed a fresh versioned
// entry on every re-key — one per flow freeze — growing the heap to ~F
// entries and making the solve O(F·log F); with F in the tens of
// thousands and L a few hundred, the indexed heap's O(F + L·log L) is the
// difference between the solver and the snapshot walk dominating a call.
// Valid keys are identical in both schemes and ties break on link id, so
// the pop order — and therefore every freeze and every rate — is bitwise
// unchanged.
//
// The core solve consumes a structure-of-arrays problem (parallel
// up/dn/weight columns, see alloc/kernel_scratch.h): the CSR build and
// freeze sweeps run over flat int32/double arrays with no per-flow Fabric
// checks, so the saturation updates vectorize. The AoS WaterfillFlow entry
// points remain as thin adapters for the sharded path and the tests.
//
// Freeze semantics replicate the legacy solver's tolerance rule exactly
// (a link whose residual falls within 1e-9·max(avail, 1) of zero is
// saturated), so the two solvers freeze the same flows at the same fill
// levels and rates agree to floating-point accumulation order.
#pragma once

#include <cstdint>
#include <vector>

#include "alloc/kernel_scratch.h"
#include "sched/scheduler.h"

namespace ncdrf {

struct WaterfillFlow {
  FlowId id = -1;
  MachineId src = -1;
  MachineId dst = -1;
  double weight = 1.0;  // must be positive
};

// One max-min problem in structure-of-arrays form: index-aligned endpoint
// columns (pre-validated LinkIds) and an optional weight column — null
// means unit weights, letting the backfill pass skip the weight loads
// entirely.
struct WaterfillProblem {
  std::size_t num_flows = 0;
  const std::int32_t* up = nullptr;
  const std::int32_t* dn = nullptr;
  const double* weight = nullptr;  // null = all 1.0; else all positive
};

class WaterfillKernel {
 public:
  // Computes weighted max-min rates for `flows` given per-link available
  // capacity `available_bps` (indexed by LinkId; entries may be 0), into
  // `rates_out` (resized; index-aligned with `flows`). The allocation
  // saturates every link that constrains any flow. All scratch buffers are
  // members, so steady-state calls allocate nothing.
  void solve(const Fabric& fabric, const std::vector<WaterfillFlow>& flows,
             const std::vector<double>& available_bps,
             std::vector<double>& rates_out);

  // Shard-masked variant: links with link_mask[link] == 0 never saturate
  // and never cap a flow (they belong to another shard's subproblem), so
  // every flow's rate is decided by its in-mask links alone. Every flow
  // must touch at least one in-mask link or it would fill forever. A null
  // mask is the unmasked solve above, with arithmetic untouched — the
  // mask only prunes heap pushes and freeze updates, so shards == 1
  // remains bit-identical to the serial kernel.
  void solve(const Fabric& fabric, const std::vector<WaterfillFlow>& flows,
             const std::vector<double>& available_bps,
             const std::vector<char>* link_mask,
             std::vector<double>& rates_out);

  // SoA core both adapters above feed. `rates_out` must hold
  // problem.num_flows entries; it is zero-filled and then written once
  // per flow at its freeze.
  void solve(const Fabric& fabric, const WaterfillProblem& problem,
             const std::vector<double>& available_bps,
             const std::vector<char>* link_mask, double* rates_out);

 private:
  // (key, link-id)-lexicographic min ordering — the same total order the
  // lazy heap's comparator induced on valid entries.
  bool heap_less(std::int32_t a, std::int32_t b) const {
    if (key_[static_cast<std::size_t>(a)] !=
        key_[static_cast<std::size_t>(b)]) {
      return key_[static_cast<std::size_t>(a)] <
             key_[static_cast<std::size_t>(b)];
    }
    return a < b;
  }
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void heap_push(std::int32_t link);
  void heap_remove(std::int32_t link);
  std::int32_t heap_pop_root();

  // CSR adjacency: link → indices into the flow columns.
  std::vector<std::int32_t> csr_offsets_;
  std::vector<std::int32_t> csr_flows_;
  std::vector<std::int32_t> csr_cursor_;

  // Per-link solver state, indexed by LinkId.
  std::vector<double> weight_;      // unfrozen weight crossing the link
  std::vector<double> avail_;       // residual capacity at theta_last
  std::vector<double> theta_last_;  // fill level avail_/weight_ refer to
  std::vector<double> tol_;         // legacy freeze tolerance
  std::vector<double> key_;         // saturation level while heaped
  std::vector<std::int32_t> pos_;   // heap position; -1 = not in heap
  std::vector<std::int32_t> heap_;  // link ids, binary-heap ordered

  std::vector<char> frozen_flow_;

  // AoS adapter columns.
  std::vector<std::int32_t> up_;
  std::vector<std::int32_t> dn_;
  std::vector<double> w_;
};

// Writes capacity − usage per link into `out` (resized), accumulating the
// snapshot's flow rates in coflow-major order — the residual every
// backfilling pass starts from. Entries are not clamped; callers decide
// how to treat numerically negative residuals.
void residual_capacity(const ScheduleInput& input, const Allocation& alloc,
                       std::vector<double>& out);

// SoA twin: the same accumulation over a FlowTable's rate column (the
// table's rows are already coflow-major, so sums land in the same order).
void residual_capacity(const Fabric& fabric, const FlowTable& table,
                       std::vector<double>& out);

// Work-conserving last pass for the priority schedulers: water-fills the
// residual capacity left by the current rates max-min fairly (unit
// weights) across every active flow and adds the result in place.
// Equivalent to the legacy max_min_backfill; a persistent instance reuses
// all scratch.
class ResidualBackfill {
 public:
  void run(const ScheduleInput& input, Allocation& alloc);

  // SoA path: residual from (and fill added into) the table's rate
  // column; no Allocation traffic until the caller commits.
  void run(const Fabric& fabric, const FlowTable& table);

 private:
  WaterfillKernel kernel_;
  std::vector<WaterfillFlow> flows_;
  std::vector<double> residual_;
  std::vector<double> rates_;
};

}  // namespace ncdrf
