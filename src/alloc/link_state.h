// Persistent per-coflow per-link flow-count state shared by the baseline
// schedulers (the allocation-kernel layer's answer to the dense
// num_coflows × num_links matrices PS-P, HUG, Baraat, Aalo and FIFO used
// to rebuild on every allocate() call).
//
// The state mirrors core/incremental's IncrementalNcDrfState but tracks
// only integer quantities, so the incremental path is *exact*: a sequence
// of delta updates always reproduces what a from-scratch rebuild of the
// same snapshot would produce, bit for bit. Tracked per coflow k:
//
//   * counted[i] — flows of k on link i, including finished flows when
//     `count_finished_flows` (PS-P's "stale" presence semantics);
//   * live[i]    — unfinished flows of k on link i (what HUG, Baraat,
//     Aalo and FIFO divide by);
//   * touched    — links where counted[i] ever became positive, so
//     per-coflow sweeps cost O(links the coflow uses), not O(links).
//
// Globally: per-link live-flow totals (the per-flow fairness and
// backfilling denominator) and the number of coflows with counted[i] > 0
// (PS-P's inter-coflow split denominator).
//
// Delta updates cost O(links touched by the event); rebuild() is the
// O(K·(F+L)) from-scratch reference, kept as the fallback for drivers
// that never deliver events and as the oracle for check_consistent().
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "sched/scheduler.h"

namespace ncdrf {

class LinkLoadState {
 public:
  // Per-coflow link loads, exposed read-only to the policies.
  struct CoflowLoad {
    double weight = 1.0;
    int live_flows = 0;     // |unfinished flows|
    int counted_flows = 0;  // flows contributing to `counted`
    std::vector<int> counted;     // includes finished flows when stale
    std::vector<int> live;        // unfinished flows only
    std::vector<LinkId> touched;  // links where counted ever became > 0
  };

  // `count_finished_flows` selects PS-P's presence semantics: when true,
  // finished flows keep contributing to `counted` (and to the per-link
  // coflow presence) until their coflow departs; when false, counted
  // tracks live flows only.
  explicit LinkLoadState(bool count_finished_flows);

  // Forgets all tracked coflows and binds the state to `fabric`.
  void reset(const Fabric& fabric);

  // Delta updates. Each returns the number of per-link state entries it
  // wrote — the "links touched" the perf layer reports.
  std::size_t add_coflow(const ActiveCoflow& coflow);
  std::size_t finish_flow(const ActiveFlow& flow);
  std::size_t remove_coflow(CoflowId id);

  // Full from-scratch rebuild; also adopts snapshots from drivers that
  // never deliver events.
  void rebuild(const ScheduleInput& input);

  // Cheap structural check (O(K) hash lookups) that the tracked state
  // covers `input`: same fabric, same coflow ids/weights, same live and
  // counted flow cardinalities. Policies trust the state only when this
  // passes, so stale state degrades to a rebuild, never to wrong shares.
  bool matches(const ScheduleInput& input) const;

  // Per-coflow loads; nullptr for untracked ids.
  const CoflowLoad* find(CoflowId id) const {
    const auto it = coflows_.find(id);
    return it == coflows_.end() ? nullptr : &it->second;
  }

  // Per-link live (unfinished) flow totals over all coflows.
  const std::vector<int>& live_link_counts() const {
    return live_link_counts_;
  }

  // Number of coflows with counted[i] > 0, per link (PS-P's
  // coflows_on_link).
  const std::vector<int>& counted_coflows_on_link() const {
    return counted_coflows_on_link_;
  }

  std::size_t num_coflows() const { return coflows_.size(); }
  bool bound() const { return fabric_ != nullptr; }
  bool count_finished_flows() const { return count_finished_flows_; }

  // Debug oracle: every tracked quantity must equal a fresh rebuild of
  // `input` exactly (all state is integral). Throws CheckError on
  // divergence.
  void check_consistent(const ScheduleInput& input) const;

 private:
  static std::size_t index(LinkId link) {
    return static_cast<std::size_t>(link);
  }

  // Counts one flow in (+1) or out (-1) of `cs`, maintaining the global
  // per-link vectors; `counted_delta` is 0 for finish events under stale
  // counting (the flow stays counted), else matches `sign`.
  void apply_flow(CoflowLoad& cs, MachineId src, MachineId dst, int sign,
                  int counted_delta);

  const Fabric* fabric_ = nullptr;
  bool count_finished_flows_;
  std::unordered_map<CoflowId, CoflowLoad> coflows_;
  std::vector<int> live_link_counts_;
  std::vector<int> counted_coflows_on_link_;
};

}  // namespace ncdrf
