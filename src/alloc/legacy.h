// Frozen pre-refactor reference implementations of every baseline policy,
// kept verbatim from before src/sched/ moved onto the allocation-kernel
// layer (persistent LinkLoadState, saturation-heap water-filling, memoized
// demand cache).
//
// These are oracles, not production paths: the golden equivalence suite
// replays seeded instances through both a registry scheduler and its
// legacy twin and requires the rates to agree within 1e-9 of the capacity
// scale, and the scalability bench runs them side by side with the
// kernel-backed schedulers so the ≥2× events/s guard compares the two
// implementations on the same machine in the same run.
//
// Every function is stateless and recomputes everything from the snapshot
// — the O(K·L) dense matrices and repeated demand computations are the
// point. Options are fixed to the registry defaults ("psp-live" being the
// one non-default registry spelling).
#pragma once

#include <string>

#include "sched/scheduler.h"

namespace ncdrf {

// Allocates `input` under the pre-refactor implementation of the registry
// policy `name`. Supports every registry name except the ncdrf family
// (whose from-scratch twin is NcDrfOptions{.incremental = false}, already
// cross-checked by the property suite): tcp, persource, perpair, psp,
// psp-live, drf, hug, aalo, varys, baraat, fifo.
Allocation legacy_allocate(const std::string& name,
                           const ScheduleInput& input);

// True for names legacy_allocate() accepts.
bool legacy_supports(const std::string& name);

}  // namespace ncdrf
