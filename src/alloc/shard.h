// Link-shard layer: partitions the m×m fabric into contiguous rack groups
// and runs the allocation kernels per shard on a scheduler-owned thread
// pool, turning the PR-5 kernel layer from "fast single thread" into
// "scales with cores".
//
// Partitioning scheme: shard s of N owns machines [⌊s·m/N⌋, ⌊(s+1)·m/N⌋)
// and both port links of each, so every flow touches at most two shards
// (its source's uplink shard and its destination's downlink shard). A flow
// whose endpoints land in one shard is *shard-local*; on traces where all
// flows are local the shards are independent subproblems and the sharded
// solve is exactly one parallel pass, per-shard bit-identical to the
// serial kernel. Cross-shard flows are reconciled with a bounded
// fixed-point pass (ShardedWaterfill) or a min-of-offers merge
// (ShardedPriorityFill) whose knobs live on ScheduleInput::reconcile.
//
// Timing contract: every parallel region measures each shard task's
// thread-CPU time. The per-region maximum accumulates into
// SchedPerf::shard_critical_seconds — the modeled parallel wall-clock of
// the shard work on an unloaded multi-core host — and the sum into
// shard_busy_seconds. bench_scale combines the calling thread's CPU time
// (the serial fraction) with the critical path into a machine-independent
// events/s metric, so the CI speedup gate does not depend on how many
// cores the runner happens to schedule the pool on.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "alloc/link_state.h"
#include "alloc/waterfill.h"
#include "runner/thread_pool.h"
#include "sched/scheduler.h"

namespace ncdrf {

struct SchedPerf;

// Current thread's consumed CPU time in seconds (CLOCK_THREAD_CPUTIME_ID
// where available, monotonic wall-clock otherwise). The basis of the
// shard layer's machine-independent critical-path accounting.
double thread_cpu_seconds();

// The contiguous rack-group partition of a fabric's links.
class ShardPlan {
 public:
  ShardPlan() = default;

  // Shard s owns machines [⌊s·m/N⌋, ⌊(s+1)·m/N⌋). Requested counts above
  // the machine count clamp to one machine per shard.
  ShardPlan(const Fabric& fabric, int num_shards);

  int num_shards() const { return num_shards_; }
  int num_machines() const { return num_machines_; }

  // True when this plan already describes `fabric` cut into `num_shards`.
  bool matches(const Fabric& fabric, int num_shards) const;

  int shard_of_machine(MachineId machine) const {
    return machine_shard_[static_cast<std::size_t>(machine)];
  }

  // Both of a machine's port links live in its shard.
  int shard_of_link(LinkId link) const {
    const auto idx = static_cast<std::size_t>(link);
    const auto m = static_cast<std::size_t>(num_machines_);
    return machine_shard_[idx < m ? idx : idx - m];
  }

  // Per-link ownership mask of one shard (1 = owned), for the masked
  // waterfill solve. Indexed by LinkId.
  const std::vector<char>& link_mask(int shard) const {
    return link_mask_[static_cast<std::size_t>(shard)];
  }

 private:
  int num_machines_ = 0;
  int num_shards_ = 0;
  std::vector<int> machine_shard_;          // MachineId -> shard
  std::vector<std::vector<char>> link_mask_;  // shard -> LinkId -> owned
};

// Scheduler-owned shard execution context: the plan, a private ThreadPool
// (its own pool handle, so a sharded allocate() nested inside a sweep
// cell never contends with the sweep's dispatcher), and the per-region
// critical-path timers.
class ShardRuntime {
 public:
  // Honors the SchedulerOptions contract: shards <= 1 yields no runtime
  // at all, so the serial path of every policy stays literally the code
  // that runs today — that is the shards == 1 bit-identity guarantee.
  static std::unique_ptr<ShardRuntime> create(const SchedulerOptions& options);

  explicit ShardRuntime(int num_shards);

  int num_shards() const { return num_shards_; }

  // Binds (or re-binds) the partition to `fabric`; cheap when the plan
  // already matches. Returns the bound plan.
  const ShardPlan& bind(const Fabric& fabric);
  const ShardPlan& plan() const { return plan_; }

  // True when the bound plan actually splits the fabric; policies fall
  // back to their serial path otherwise (e.g. a one-machine fabric).
  bool parallel() const { return plan_.num_shards() > 1; }

  // Runs fn(shard) for every shard on the pool and blocks; each task's
  // thread-CPU time is measured, the region's maximum extends the
  // critical path and the sum extends the busy total.
  void parallel_shards(const std::function<void(int)>& fn);

  // Splits [0, n) into num_shards contiguous blocks and runs
  // fn(block, begin, end) in parallel with the same accounting; empty
  // blocks are skipped.
  void parallel_blocks(
      std::size_t n,
      const std::function<void(int, std::size_t, std::size_t)>& fn);

  // Folds the regions/busy/critical counters gathered since the last
  // drain into `perf` and resets them.
  void drain_timers(SchedPerf& perf);

 private:
  int num_shards_;
  ShardPlan plan_;
  ThreadPool pool_;
  std::vector<double> task_seconds_;  // per-shard scratch, one region
  long long regions_ = 0;
  double busy_seconds_ = 0.0;
  double critical_seconds_ = 0.0;
};

// Cross-shard weighted max-min: the sharded twin of WaterfillKernel.
//
// Each iteration solves every shard's masked subproblem against the
// shared residual capacities in parallel (a cross-shard flow appears in
// both endpoint shards), then serially reconciles: a flow's increment is
// the minimum of its per-shard offers — for a shard-local flow exactly
// the joint rate its own shard computed — so the merged allocation never
// oversubscribes a link. Residuals shrink by the increments and only
// flows with slack on both endpoint links stay active. Shard-local-only
// traces terminate after one iteration, per shard bit-identical to the
// serial kernel; cross-shard flows converge under the iteration cap and
// freeze tolerance of ScheduleInput::reconcile.
class ShardedWaterfill {
 public:
  void solve(const Fabric& fabric, ShardRuntime& runtime,
             const std::vector<WaterfillFlow>& flows,
             const std::vector<double>& available_bps,
             const ShardReconcile& reconcile, std::vector<double>& rates_out);

 private:
  struct Shard {
    WaterfillKernel kernel;
    std::vector<WaterfillFlow> flows;
    std::vector<std::int32_t> index;  // positions in the caller's list
    std::vector<double> rates;
  };

  std::vector<Shard> shards_;
  std::vector<double> residual_;
  std::vector<double> tol_;
  // Per-flow offers, split by endpoint so each shard publishes only the
  // side it owns (a shard-local flow writes both). Read in the apply
  // phase, where link/rate writes are partitioned by ownership the same
  // way — no two shards ever touch the same slot.
  std::vector<double> offer_up_;
  std::vector<double> offer_dn_;
  std::vector<char> shard_progress_;
};

// Sharded strict-priority fill for the sequential-fill policies (Aalo's
// D-CLAS queues, FIFO): every shard walks the full coflow priority order
// but fills only its own links' residuals; a flow's rate is the minimum
// of its per-endpoint offers. Exact — equal to the serial fill — when
// every flow is shard-local; a cross-shard flow may leave behind slack
// (each side reserved its one-sided offer but realized the min), which
// the caller's work-conserving backfill redistributes.
class ShardedPriorityFill {
 public:
  // `order` holds indices into input.coflows in fill priority order;
  // `state` provides the per-coflow per-link live counts (same contract
  // as the serial fills). Rates are written into `alloc` via set_rate.
  void run(const ScheduleInput& input, const LinkLoadState& state,
           const std::vector<std::size_t>& order, ShardRuntime& runtime,
           Allocation& alloc);

 private:
  std::vector<std::int32_t> flat_offset_;  // coflow index -> first flat id
  std::vector<const LinkLoadState::CoflowLoad*> loads_;
  std::vector<double> offer_up_, offer_dn_;  // flat flow id -> offers
  std::vector<std::vector<double>> residual_;  // per shard, by LinkId
};

// Work-conserving last pass on the sharded path: water-fills the residual
// capacity left by `alloc` max-min fairly (unit weights) across every
// active flow via ShardedWaterfill and adds the result in place — the
// sharded twin of ResidualBackfill.
class ShardedBackfill {
 public:
  void run(const ScheduleInput& input, ShardRuntime& runtime,
           Allocation& alloc);

 private:
  ShardedWaterfill waterfill_;
  std::vector<WaterfillFlow> flows_;
  std::vector<double> residual_;
  std::vector<double> rates_;
};

}  // namespace ncdrf
