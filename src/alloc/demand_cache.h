// Memoized clairvoyant demand vectors: one remaining-demand computation
// per coflow per allocate() call, shared by every stage that needs it.
//
// The legacy clairvoyant schedulers each recomputed remaining demand from
// the snapshot on demand — DRF twice per coflow per call (once for P*,
// once for the rates) and HUG a third time through its embedded
// DrfScheduler. The cache computes each coflow's DemandVectors exactly
// once per refresh(), into per-slot buffers that persist across calls, so
// steady-state refreshes allocate nothing and downstream stages
// (drf_progress, drf_allocate, Varys's SEBF/MADD) read the same vectors.
//
// The arithmetic replicates coflow/compute_demand exactly (same
// accumulation order), so cached results are bitwise identical to the
// legacy per-call computations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "coflow/coflow.h"
#include "sched/scheduler.h"

namespace ncdrf {

class ShardRuntime;

class DemandCache {
 public:
  // Recomputes every coflow's remaining-demand vectors for this snapshot.
  // Requires input.clairvoyant != nullptr.
  void refresh(const ScheduleInput& input);

  // Sharded refresh: the per-coflow slots are disjoint, so a non-null
  // runtime recomputes them in parallel blocks — each slot's arithmetic
  // is the serial refresh's, so the cached vectors are identical either
  // way. A null runtime is the serial refresh above.
  void refresh(const ScheduleInput& input, ShardRuntime* runtime);

  // Demand vectors of input.coflows[coflow_index], valid until the next
  // refresh().
  const DemandVectors& demand(std::size_t coflow_index) const {
    NCDRF_CHECK(coflow_index < size_, "demand-cache index out of range");
    return demands_[coflow_index];
  }

  // Remaining bits of input.coflows[coflow_index].flows, in flow order,
  // memoized during refresh() so rate passes skip the per-flow
  // ClairvoyantInfo lookup they already paid once. The values live in one
  // flat coflow-major array reused across refreshes (per-slot vectors used
  // to be cleared and re-reserved every call as the engine's swap-pop
  // shuffled slots); the pointer is valid until the next refresh().
  const double* remaining(std::size_t coflow_index) const {
    NCDRF_CHECK(coflow_index < size_, "demand-cache index out of range");
    return remaining_flat_.data() +
           remaining_offset_[coflow_index];
  }

  // Links coflow_index's demand vector touches, in first-touch order —
  // exactly the links that can hold a positive demand or flow count.
  // Sparse consumers (Varys's Γ and MADD scans) visit only these instead
  // of all 2m links; untouched links hold exactly 0.0 / 0.
  const std::vector<LinkId>& touched(std::size_t coflow_index) const {
    NCDRF_CHECK(coflow_index < size_, "demand-cache index out of range");
    return touched_[coflow_index];
  }

  std::size_t size() const { return size_; }

  // P* = min_i C_i / Σ_k w_k·c_k^i (Eq. 2) over the cached vectors; 0 when
  // no coflow has remaining demand. Must be called after refresh() on the
  // same snapshot.
  double drf_progress(const ScheduleInput& input) const;

  // Sharded P*: a non-null runtime accumulates the per-link loads into
  // per-block partials in parallel and reduces them in block order —
  // same value as the serial scan up to floating-point accumulation
  // order (blocks sum contiguous coflow ranges). Null runtime delegates
  // to the serial scan.
  double drf_progress(const ScheduleInput& input,
                      ShardRuntime* runtime) const;

 private:
  void refresh_slot(const ScheduleInput& input, std::size_t k);

  std::vector<DemandVectors> demands_;  // slots reused across refreshes
  // Per-flow remaining bits, coflow-major, one flat buffer grown to the
  // high-water mark: refresh() computes the offsets serially, then the
  // (possibly parallel) per-slot passes write disjoint ranges.
  std::vector<double> remaining_flat_;
  std::vector<std::int32_t> remaining_offset_;  // size K+1
  // Links each slot wrote in its last refresh, in first-touch order. Dense
  // vectors are zeroed sparsely through these lists, and the bottleneck /
  // load scans visit only them — refresh() is O(F) per coflow, not O(L).
  // The bottleneck scans break ties on the smallest link id explicitly, so
  // no sorted order is needed to reproduce the dense first-arg-max; the
  // load accumulation touches one independent accumulator per link, so its
  // visit order never changes any sum.
  std::vector<std::vector<LinkId>> touched_;
  mutable std::vector<double> load_;  // Σ_k w_k·c_k^i scratch
  // Per-block load partials for the sharded drf_progress reduction.
  mutable std::vector<std::vector<double>> block_load_;
  std::size_t size_ = 0;
};

// The DRF stage shared by DrfScheduler and HUG: raises every coflow's
// progress to P* (each flow at w_k·remaining_f·P*/d̄_k, so all of a
// coflow's flows and links finish together; exhausted coflows get explicit
// zero rates). Fills `alloc` and returns P*. `cache` must be refreshed on
// `input`.
double drf_allocate(const ScheduleInput& input, const DemandCache& cache,
                    Allocation& alloc);

// Sharded variant: P* comes from the parallel block reduction; the rate
// pass stays serial (Allocation is a hash map). Null runtime is the
// serial drf_allocate above.
double drf_allocate(const ScheduleInput& input, const DemandCache& cache,
                    ShardRuntime* runtime, Allocation& alloc);

}  // namespace ncdrf
