// Scheduler base for policies backed by the allocation-kernel layer: owns
// a LinkLoadState fed by the driver's event hooks, the SchedPerf counters
// every kernel-backed policy reports, and the sync() step that decides —
// per allocate() call — between serving from event-maintained state and a
// full snapshot rebuild.
//
// The base stays obs-link-free: SchedPerf is plain data (obs/perf.h is
// header-only for field access) and timing uses an inline chrono scope, so
// ncdrf_alloc never pulls obs symbols and the sched→obs layering of the
// build is preserved.
#pragma once

#include <chrono>

#include "alloc/link_state.h"
#include "obs/perf.h"
#include "sched/scheduler.h"

namespace ncdrf {

class KernelScheduler : public Scheduler {
 public:
  bool wants_events() const override { return true; }

  void on_reset(const Fabric& fabric) override {
    state_.reset(fabric);
    event_driven_ = true;
  }

  void on_coflow_arrival(const ActiveCoflow& coflow) override {
    if (!event_driven_) return;
    perf_.links_touched +=
        static_cast<long long>(state_.add_coflow(coflow));
    ++perf_.arrival_events;
  }

  void on_flow_finish(const ActiveFlow& flow) override {
    if (!event_driven_) return;
    perf_.links_touched += static_cast<long long>(state_.finish_flow(flow));
    ++perf_.flow_finish_events;
  }

  void on_coflow_departure(CoflowId id) override {
    if (!event_driven_) return;
    perf_.links_touched += static_cast<long long>(state_.remove_coflow(id));
    ++perf_.departure_events;
  }

  const SchedPerf* perf_counters() const override { return &perf_; }

 protected:
  explicit KernelScheduler(bool count_finished_flows)
      : state_(count_finished_flows) {}

  // Brings state_ in line with the snapshot: serves from event-maintained
  // state when it provably covers `input`, otherwise adopts the snapshot
  // with a full rebuild. Returns true when a rebuild happened, so
  // subclasses keeping derived state (endpoint entity counts) resync too.
  bool sync(const ScheduleInput& input) {
    if (event_driven_ && state_.matches(input)) {
      ++perf_.incremental_allocs;
      return false;
    }
    state_.rebuild(input);
    ++perf_.full_rebuilds;
    return true;
  }

  // Inline allocate()-scope timer (SchedPerf::allocate_seconds plus the
  // call counter); cheap enough to stay on everywhere.
  class AllocScope {
   public:
    explicit AllocScope(SchedPerf& perf)
        : perf_(perf), start_(std::chrono::steady_clock::now()) {
      ++perf_.allocate_calls;
    }
    ~AllocScope() {
      perf_.allocate_seconds +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start_)
              .count();
    }
    AllocScope(const AllocScope&) = delete;
    AllocScope& operator=(const AllocScope&) = delete;

   private:
    SchedPerf& perf_;
    std::chrono::steady_clock::time_point start_;
  };

  LinkLoadState state_;
  SchedPerf perf_;
  bool event_driven_ = false;
};

}  // namespace ncdrf
