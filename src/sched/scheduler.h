// Scheduler interface: the contract between the simulator / cluster master
// and every bandwidth-allocation policy.
//
// Clairvoyance is typed into the interface (DESIGN.md §4): the per-flow
// *remaining bytes* live behind ScheduleInput::clairvoyant, which the
// driver populates only for schedulers that declare clairvoyant() == true.
// Non-clairvoyant policies (NC-DRF, PS-P, per-flow fairness, Aalo) see only
// endpoints, flow counts, arrival times and *attained* service — exactly
// the information the paper allows them (Sec. III).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "coflow/flow.h"
#include "fabric/fabric.h"
#include "sched/allocation.h"

namespace ncdrf {

// Observability hooks (src/obs/): schedulers may accept a tracer/metrics
// pair and expose perf counters, but the sched layer itself stays
// obs-free — everything is forward-declared and optional.
struct SchedPerf;
namespace obs {
class Tracer;
class MetricsRegistry;
}  // namespace obs

// One unfinished flow as the scheduler sees it: endpoints only.
struct ActiveFlow {
  FlowId id = -1;
  CoflowId coflow = -1;
  MachineId src = -1;
  MachineId dst = -1;
};

// One active coflow as the scheduler sees it.
struct ActiveCoflow {
  CoflowId id = -1;
  double arrival_time = 0.0;
  // Submitting tenant/client (-1 = unattributed). Tenant-aware policies
  // (karma) aggregate shares per tenant instead of per coflow; everything
  // else ignores it.
  int tenant = -1;
  // Relative share weight (tenant priority). Fair policies (NC-DRF, DRF)
  // scale a coflow's guaranteed progress by this; 1.0 = equal share.
  double weight = 1.0;
  // Total bits this coflow has transferred so far across all flows,
  // including already-finished ones. Observable without prior knowledge
  // (it is *attained* service, the signal Aalo's D-CLAS uses).
  double attained_bits = 0.0;
  std::vector<ActiveFlow> flows;  // unfinished flows only; non-empty
  // Endpoints of this coflow's flows that already finished. Observable
  // without size knowledge; lets schedulers choose between counting live
  // flows only (fully adaptive) or the coflow's original flow counts
  // (Algorithm 1 read literally — see NcDrfOptions::count_finished_flows).
  std::vector<ActiveFlow> finished_flows;
};

// Remaining per-flow demand, available to clairvoyant schedulers only.
class ClairvoyantInfo {
 public:
  // `remaining_bits` is indexed by dense FlowId.
  explicit ClairvoyantInfo(const std::vector<double>* remaining_bits)
      : remaining_bits_(remaining_bits) {
    NCDRF_CHECK(remaining_bits != nullptr, "remaining-bits vector required");
  }

  double remaining_bits(FlowId flow) const {
    NCDRF_CHECK(flow >= 0 && static_cast<std::size_t>(flow) <
                                 remaining_bits_->size(),
                "flow id out of range");
    return (*remaining_bits_)[static_cast<std::size_t>(flow)];
  }

 private:
  const std::vector<double>* remaining_bits_;
};

// Knobs for the cross-shard reconciliation pass of the sharded allocation
// paths (src/alloc/shard.h). When a policy runs with shards > 1, each
// allocation solves one subproblem per link shard in parallel and then
// reconciles flows whose endpoints live in different shards with a bounded
// fixed-point loop: up to `max_iterations` rounds, stopping early once
// every flow has a saturated endpoint link (residual within `tolerance`
// relative to the link's capacity scale). Irrelevant at shards == 1, where
// the serial path runs unchanged.
//
// Defaults trade a sliver of work conservation for latency: two rounds at
// 1e-4 relative slack recover ~99% of the serial allocator's total rate on
// locality-0.9 Facebook-shaped traces, while every extra round re-solves
// the flows adjacent to released slack (on skewed fabrics that cascade
// keeps 30-60% of flows active per round, roughly doubling critical-path
// cost by round 8 for ~1% more rate). Raise max_iterations / drop
// tolerance when allocation quality matters more than event latency.
struct ShardReconcile {
  int max_iterations = 2;
  double tolerance = 1e-4;
};

// Construction-time knobs shared by every policy the registry can build.
// `shards` > 1 partitions the fabric into that many contiguous rack groups
// and runs the allocation kernels per shard on a scheduler-owned thread
// pool (see alloc/shard.h); shards == 1 keeps the serial path, which is
// bit-identical to the pre-shard code.
struct SchedulerOptions {
  int shards = 1;
};

// Snapshot handed to Scheduler::allocate at every scheduling event.
//
// Drivers may maintain the snapshot incrementally and hand the *same*
// object (with views updated in place) to consecutive allocate() calls —
// the simulator engine does. Schedulers must treat it as read-only and
// must not retain pointers/references into it across calls; anything
// worth keeping between events belongs in scheduler-owned state (see the
// event interface below).
struct ScheduleInput {
  const Fabric* fabric = nullptr;
  double now = 0.0;
  std::vector<ActiveCoflow> coflows;
  // Non-null iff the driver is serving a clairvoyant scheduler.
  const ClairvoyantInfo* clairvoyant = nullptr;
  // Total unfinished flows across all coflows, when the driver tracks it
  // (the simulator engine and the cluster master do); -1 when unknown.
  // Purely a sizing hint — schedulers use it to pre-size their rate tables
  // and flow lists without an extra O(coflows) pass; it never affects the
  // allocation itself.
  int total_live_flows = -1;
  // Cross-shard reconciliation knobs, read only by schedulers built with
  // SchedulerOptions::shards > 1.
  ShardReconcile reconcile;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string name() const = 0;

  // Whether this policy requires remaining-size knowledge. Drivers populate
  // ScheduleInput::clairvoyant only when this returns true.
  virtual bool clairvoyant() const = 0;

  // Computes per-flow rates for the given snapshot. Must respect link
  // capacities; every returned rate must be non-negative; flows not
  // mentioned get rate 0.
  virtual Allocation allocate(const ScheduleInput& input) = 0;

  // Time until this policy's *internal* state would change the allocation
  // even with no arrival or completion (e.g. Aalo's coflows crossing
  // priority-queue thresholds). nullopt = no internal events.
  virtual std::optional<double> next_internal_event(
      const ScheduleInput& input, const Allocation& current) const {
    (void)input;
    (void)current;
    return std::nullopt;
  }

  // --- Optional event-driven (incremental) interface ---------------------
  //
  // Drivers that track scheduling deltas (the DynamicSimulator) deliver
  // them to schedulers returning true from wants_events(), in event order:
  // on_reset() once per run before anything else, then on_coflow_arrival /
  // on_flow_finish / on_coflow_departure as the active set evolves. When a
  // coflow's last flow finishes, on_flow_finish fires before the coflow's
  // on_coflow_departure. Every subsequent allocate() snapshot is consistent
  // with the deltas delivered so far, which lets a scheduler maintain
  // per-coflow state in O(links touched) per event instead of rescanning
  // the snapshot.
  //
  // Schedulers must stay correct when the hooks are never called — drivers
  // that predate this interface (the cluster master, direct test harnesses)
  // hand allocate() bare snapshots. One driver at a time per scheduler
  // instance.
  // --- Optional observability interface ----------------------------------
  //
  // Drivers with an attached obs layer offer it to the scheduler before a
  // run; policies that instrument their hot path (NC-DRF) keep the
  // pointers, everyone else inherits the no-op. Either pointer may be
  // null. Counters exposed through perf_counters() are owned by the
  // scheduler and survive until it is destroyed (null = no counters).
  virtual void set_observers(obs::Tracer* tracer,
                             obs::MetricsRegistry* metrics) {
    (void)tracer;
    (void)metrics;
  }
  virtual const SchedPerf* perf_counters() const { return nullptr; }

  virtual bool wants_events() const { return false; }
  virtual void on_reset(const Fabric& fabric) { (void)fabric; }
  virtual void on_coflow_arrival(const ActiveCoflow& coflow) { (void)coflow; }
  virtual void on_flow_finish(const ActiveFlow& flow) { (void)flow; }
  virtual void on_coflow_departure(CoflowId id) { (void)id; }
};

// Total number of active flows in the snapshot.
int count_active_flows(const ScheduleInput& input);

// The snapshot's live-flow total: the driver-maintained hint when present,
// otherwise one O(coflows) counting pass.
int live_flows_hint(const ScheduleInput& input);

// Per-link active-flow counts over all coflows, indexed by LinkId.
std::vector<int> link_flow_counts(const ScheduleInput& input);

}  // namespace ncdrf
