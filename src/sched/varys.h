// Varys baseline (Chowdhury et al., SIGCOMM'14): clairvoyant,
// performance-optimal coflow scheduling. Included as the fourth quadrant
// of the paper's design space (Fig. 1) and used by the ablation benches.
//
// Smallest-Effective-Bottleneck-First (SEBF): coflows are served in
// ascending order of their remaining bottleneck completion time
// Γ_k = max_i d_k^i / C_i. Each admitted coflow gets the Minimum
// Allocation for Desired Duration (MADD): every flow runs at
// remaining_f / Γ, just fast enough for all flows to finish with the
// bottleneck — any faster would waste bandwidth the next coflow can use.
// Residual capacity is water-filled max-min across all flows.
//
// Demand vectors come from the kernel layer's DemandCache (one
// remaining-demand computation per coflow per call), the Γ and MADD scans
// walk only the cache's touched-link lists (untouched links hold exactly
// zero demand, so the sparse max/∃-blocked checks reproduce the dense
// scans bit for bit), the rate walk runs over the KernelScratch flow
// table, and the residual pass is the shared water-filling kernel.
#pragma once

#include <memory>
#include <vector>

#include "alloc/demand_cache.h"
#include "alloc/kernel_scratch.h"
#include "alloc/shard.h"
#include "alloc/waterfill.h"
#include "obs/perf.h"
#include "sched/scheduler.h"

namespace ncdrf {

struct VarysOptions {
  bool work_conserving = true;
};

class VarysScheduler : public Scheduler {
 public:
  explicit VarysScheduler(VarysOptions options = {},
                          SchedulerOptions sched_options = {})
      : options_(options), runtime_(ShardRuntime::create(sched_options)) {}

  std::string name() const override { return "Varys"; }
  bool clairvoyant() const override { return true; }
  Allocation allocate(const ScheduleInput& input) override;
  const SchedPerf* perf_counters() const override { return &perf_; }

 private:
  VarysOptions options_;
  DemandCache cache_;
  // Sharded path: demand refresh and the dense per-coflow Γ scans (the
  // policy's O(K·L) hot spot) run in parallel blocks; the sequential MADD
  // walk stays serial and the residual pass becomes ShardedBackfill.
  std::unique_ptr<ShardRuntime> runtime_;  // null on the serial path
  ShardedBackfill sharded_backfill_;
  KernelScratch scratch_;
  std::vector<double> gamma_;
  std::vector<std::size_t> order_;
  std::vector<double> residual_;
  std::vector<double> capacities_;
  ResidualBackfill backfill_;
  SchedPerf perf_;
};

}  // namespace ncdrf
