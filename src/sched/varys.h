// Varys baseline (Chowdhury et al., SIGCOMM'14): clairvoyant,
// performance-optimal coflow scheduling. Included as the fourth quadrant
// of the paper's design space (Fig. 1) and used by the ablation benches.
//
// Smallest-Effective-Bottleneck-First (SEBF): coflows are served in
// ascending order of their remaining bottleneck completion time
// Γ_k = max_i d_k^i / C_i. Each admitted coflow gets the Minimum
// Allocation for Desired Duration (MADD): every flow runs at
// remaining_f / Γ, just fast enough for all flows to finish with the
// bottleneck — any faster would waste bandwidth the next coflow can use.
// Residual capacity is water-filled max-min across all flows.
#pragma once

#include "sched/scheduler.h"

namespace ncdrf {

struct VarysOptions {
  bool work_conserving = true;
};

class VarysScheduler : public Scheduler {
 public:
  explicit VarysScheduler(VarysOptions options = {}) : options_(options) {}

  std::string name() const override { return "Varys"; }
  bool clairvoyant() const override { return true; }
  Allocation allocate(const ScheduleInput& input) override;

 private:
  VarysOptions options_;
};

}  // namespace ncdrf
