#include "sched/baraat.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"

namespace ncdrf {
namespace {

const std::vector<double> kNoBucketBounds;  // arrival order never changes

}  // namespace

BaraatScheduler::BaraatScheduler(BaraatOptions options,
                                 SchedulerOptions sched_options)
    : KernelScheduler(/*count_finished_flows=*/false),
      options_(options),
      runtime_(ShardRuntime::create(sched_options)) {
  NCDRF_CHECK(options_.heavy_threshold_bits > 0.0,
              "heavy threshold must be positive");
}

Allocation BaraatScheduler::allocate(const ScheduleInput& input) {
  AllocScope scope(perf_);
  const Fabric& fabric = *input.fabric;
  const auto num_links = static_cast<std::size_t>(fabric.num_links());
  sync(input);

  // Arrival order from the persistent state; a driver that never delivered
  // events falls back to one fresh sort, like LinkLoadState's rebuild.
  if (!order_state_.resolve(input, kNoBucketBounds, order_)) {
    order_state_.rebuild(input, [](const ActiveCoflow&) { return 0; });
    const bool ok = order_state_.resolve(input, kNoBucketBounds, order_);
    NCDRF_CHECK(ok,
                "Baraat: rebuilt priority order must cover the snapshot");
  }

  // FIFO-LM served set: FIFO prefix through the heavy coflows, ending at
  // (and including) the first light one.
  served_.clear();
  for (const std::size_t k : order_) {
    served_.push_back(k);
    if (input.coflows[k].attained_bits <= options_.heavy_threshold_bits) {
      break;  // a light head serves alone behind the heavies before it
    }
  }

  // Coflows serving on each link; only the served coflows' touched links
  // are visited (the per-coflow counts themselves live in LinkLoadState).
  served_on_link_.assign(num_links, 0);
  for (const std::size_t k : served_) {
    const LinkLoadState::CoflowLoad& load = *state_.find(input.coflows[k].id);
    for (const LinkId i : load.touched) {
      if (load.live[static_cast<std::size_t>(i)] > 0) {
        served_on_link_[static_cast<std::size_t>(i)] += 1;
      }
    }
  }

  const FlowTable& table =
      scratch_.gather(input, &state_, GatherCounts::kLive);

  capacities_.resize(num_links);
  for (LinkId i = 0; i < fabric.num_links(); ++i) {
    capacities_[static_cast<std::size_t>(i)] = fabric.capacity(i);
  }

  // Equal per-link split among served coflows, even among a coflow's flows
  // on the link (the gathered live counts), min across the two endpoints.
  // Coflows outside the served set keep the gather's zero rate.
  for (const std::size_t k : served_) {
    const std::size_t begin = table.begin_of(k);
    const std::size_t end = table.end_of(k);
    for (std::size_t j = begin; j < end; ++j) {
      const auto u = static_cast<std::size_t>(table.up[j]);
      const auto d = static_cast<std::size_t>(table.dn[j]);
      const double up = capacities_[u] / served_on_link_[u] / table.cnt_up[j];
      const double down =
          capacities_[d] / served_on_link_[d] / table.cnt_dn[j];
      table.rate[j] = std::min(up, down);
    }
  }

  Allocation alloc;
  if (options_.work_conserving) {
    perf_.backfill_rounds += 1;
    if (runtime_ != nullptr && runtime_->bind(fabric).num_shards() > 1) {
      KernelScratch::commit(table, alloc);
      sharded_backfill_.run(input, *runtime_, alloc);
      runtime_->drain_timers(perf_);
      return alloc;
    }
    backfill_.run(fabric, table);
  }
  KernelScratch::commit(table, alloc);
  return alloc;
}

std::optional<double> BaraatScheduler::next_internal_event(
    const ScheduleInput& input, const Allocation& current) const {
  // The served set changes when the (single) light serving coflow crosses
  // the heavy threshold.
  double soonest = std::numeric_limits<double>::infinity();
  for (const ActiveCoflow& coflow : input.coflows) {
    if (coflow.attained_bits > options_.heavy_threshold_bits) continue;
    double rate = 0.0;
    for (const ActiveFlow& f : coflow.flows) rate += current.rate(f.id);
    if (rate <= 0.0) continue;
    soonest = std::min(
        soonest,
        (options_.heavy_threshold_bits - coflow.attained_bits) / rate);
  }
  if (!std::isfinite(soonest)) return std::nullopt;
  return std::max(soonest, 1e-9);
}

}  // namespace ncdrf
