#include "sched/baraat.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "common/check.h"

namespace ncdrf {

BaraatScheduler::BaraatScheduler(BaraatOptions options,
                                 SchedulerOptions sched_options)
    : KernelScheduler(/*count_finished_flows=*/false),
      options_(options),
      runtime_(ShardRuntime::create(sched_options)) {
  NCDRF_CHECK(options_.heavy_threshold_bits > 0.0,
              "heavy threshold must be positive");
}

Allocation BaraatScheduler::allocate(const ScheduleInput& input) {
  AllocScope scope(perf_);
  const Fabric& fabric = *input.fabric;
  const auto num_links = static_cast<std::size_t>(fabric.num_links());
  sync(input);

  order_.resize(input.coflows.size());
  std::iota(order_.begin(), order_.end(), std::size_t{0});
  std::sort(order_.begin(), order_.end(),
            [&](std::size_t a, std::size_t b) {
              if (input.coflows[a].arrival_time !=
                  input.coflows[b].arrival_time) {
                return input.coflows[a].arrival_time <
                       input.coflows[b].arrival_time;
              }
              return input.coflows[a].id < input.coflows[b].id;
            });

  // FIFO-LM served set: FIFO prefix through the heavy coflows, ending at
  // (and including) the first light one.
  std::vector<std::size_t> served;
  for (const std::size_t k : order_) {
    served.push_back(k);
    if (input.coflows[k].attained_bits <= options_.heavy_threshold_bits) {
      break;  // a light head serves alone behind the heavies before it
    }
  }

  // Coflows serving on each link; only the served coflows' touched links
  // are visited (the per-coflow counts themselves live in LinkLoadState).
  served_on_link_.assign(num_links, 0);
  for (const std::size_t k : served) {
    const LinkLoadState::CoflowLoad& load = *state_.find(input.coflows[k].id);
    for (const LinkId i : load.touched) {
      if (load.live[static_cast<std::size_t>(i)] > 0) {
        served_on_link_[static_cast<std::size_t>(i)] += 1;
      }
    }
  }

  // Equal per-link split among served coflows, even among a coflow's flows
  // on the link, min across the two endpoints.
  Allocation alloc;
  alloc.reserve(static_cast<std::size_t>(live_flows_hint(input)));
  for (const std::size_t k : served) {
    const LinkLoadState::CoflowLoad& load = *state_.find(input.coflows[k].id);
    for (const ActiveFlow& f : input.coflows[k].flows) {
      const auto u = static_cast<std::size_t>(fabric.uplink(f.src));
      const auto d = static_cast<std::size_t>(fabric.downlink(f.dst));
      const double up = fabric.capacity(static_cast<LinkId>(u)) /
                        served_on_link_[u] / load.live[u];
      const double down = fabric.capacity(static_cast<LinkId>(d)) /
                          served_on_link_[d] / load.live[d];
      alloc.set_rate(f.id, std::min(up, down));
    }
  }
  // Coflows outside the served set wait (rate 0 before backfilling).
  for (const ActiveCoflow& coflow : input.coflows) {
    for (const ActiveFlow& f : coflow.flows) {
      if (!alloc.has_rate(f.id)) alloc.set_rate(f.id, 0.0);
    }
  }

  if (options_.work_conserving) {
    perf_.backfill_rounds += 1;
    if (runtime_ != nullptr && runtime_->bind(fabric).num_shards() > 1) {
      sharded_backfill_.run(input, *runtime_, alloc);
      runtime_->drain_timers(perf_);
    } else {
      backfill_.run(input, alloc);
    }
  }
  return alloc;
}

std::optional<double> BaraatScheduler::next_internal_event(
    const ScheduleInput& input, const Allocation& current) const {
  // The served set changes when the (single) light serving coflow crosses
  // the heavy threshold.
  double soonest = std::numeric_limits<double>::infinity();
  for (const ActiveCoflow& coflow : input.coflows) {
    if (coflow.attained_bits > options_.heavy_threshold_bits) continue;
    double rate = 0.0;
    for (const ActiveFlow& f : coflow.flows) rate += current.rate(f.id);
    if (rate <= 0.0) continue;
    soonest = std::min(
        soonest,
        (options_.heavy_threshold_bits - coflow.attained_bits) / rate);
  }
  if (!std::isfinite(soonest)) return std::nullopt;
  return std::max(soonest, 1e-9);
}

}  // namespace ncdrf
