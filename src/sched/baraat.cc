#include "sched/baraat.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "common/check.h"
#include "sched/maxmin.h"

namespace ncdrf {
namespace {

std::vector<std::size_t> fifo_order(const ScheduleInput& input) {
  std::vector<std::size_t> order(input.coflows.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (input.coflows[a].arrival_time != input.coflows[b].arrival_time) {
      return input.coflows[a].arrival_time < input.coflows[b].arrival_time;
    }
    return input.coflows[a].id < input.coflows[b].id;
  });
  return order;
}

}  // namespace

BaraatScheduler::BaraatScheduler(BaraatOptions options) : options_(options) {
  NCDRF_CHECK(options_.heavy_threshold_bits > 0.0,
              "heavy threshold must be positive");
}

Allocation BaraatScheduler::allocate(const ScheduleInput& input) {
  const Fabric& fabric = *input.fabric;
  const auto num_links = static_cast<std::size_t>(fabric.num_links());

  // FIFO-LM served set: FIFO prefix through the heavy coflows, ending at
  // (and including) the first light one.
  std::vector<std::size_t> served;
  for (const std::size_t k : fifo_order(input)) {
    served.push_back(k);
    if (input.coflows[k].attained_bits <= options_.heavy_threshold_bits) {
      break;  // a light head serves alone behind the heavies before it
    }
  }

  // Equal per-link split among served coflows, even among a coflow's flows
  // on the link, min across the two endpoints.
  std::vector<int> served_on_link(num_links, 0);
  std::vector<std::vector<int>> counts(served.size(),
                                       std::vector<int>(num_links, 0));
  for (std::size_t s = 0; s < served.size(); ++s) {
    for (const ActiveFlow& f : input.coflows[served[s]].flows) {
      counts[s][static_cast<std::size_t>(fabric.uplink(f.src))] += 1;
      counts[s][static_cast<std::size_t>(fabric.downlink(f.dst))] += 1;
    }
    for (std::size_t i = 0; i < num_links; ++i) {
      if (counts[s][i] > 0) served_on_link[i] += 1;
    }
  }

  Allocation alloc;
  for (std::size_t s = 0; s < served.size(); ++s) {
    for (const ActiveFlow& f : input.coflows[served[s]].flows) {
      const auto u = static_cast<std::size_t>(fabric.uplink(f.src));
      const auto d = static_cast<std::size_t>(fabric.downlink(f.dst));
      const double up = fabric.capacity(static_cast<LinkId>(u)) /
                        served_on_link[u] / counts[s][u];
      const double down = fabric.capacity(static_cast<LinkId>(d)) /
                          served_on_link[d] / counts[s][d];
      alloc.set_rate(f.id, std::min(up, down));
    }
  }
  // Coflows outside the served set wait (rate 0 before backfilling).
  for (const ActiveCoflow& coflow : input.coflows) {
    for (const ActiveFlow& f : coflow.flows) {
      if (!alloc.has_rate(f.id)) alloc.set_rate(f.id, 0.0);
    }
  }

  if (options_.work_conserving) max_min_backfill(input, alloc);
  return alloc;
}

std::optional<double> BaraatScheduler::next_internal_event(
    const ScheduleInput& input, const Allocation& current) const {
  // The served set changes when the (single) light serving coflow crosses
  // the heavy threshold.
  double soonest = std::numeric_limits<double>::infinity();
  for (const ActiveCoflow& coflow : input.coflows) {
    if (coflow.attained_bits > options_.heavy_threshold_bits) continue;
    double rate = 0.0;
    for (const ActiveFlow& f : coflow.flows) rate += current.rate(f.id);
    if (rate <= 0.0) continue;
    soonest = std::min(
        soonest,
        (options_.heavy_threshold_bits - coflow.attained_bits) / rate);
  }
  if (!std::isfinite(soonest)) return std::nullopt;
  return std::max(soonest, 1e-9);
}

}  // namespace ncdrf
