#include "sched/psp.h"

#include <algorithm>
#include <vector>

#include "common/check.h"

namespace ncdrf {

Allocation PspScheduler::allocate(const ScheduleInput& input) {
  AllocScope scope(perf_);
  NCDRF_CHECK(options_.backfill_rounds >= 0,
              "backfill rounds must be non-negative");
  const Fabric& fabric = *input.fabric;
  const auto num_links = static_cast<std::size_t>(fabric.num_links());

  // Coflows present per link (inter-coflow equal split is per coflow, not
  // per flow — that is what distinguishes PS-P from per-flow fairness) and
  // each coflow's per-link flow counts, both served by LinkLoadState; the
  // gather mirrors the presence counts into the cnt columns so the round
  // sweeps below never look a coflow up again.
  sync(input);
  const std::vector<int>& coflows_on_link = state_.counted_coflows_on_link();
  const FlowTable& table =
      scratch_.gather(input, &state_, GatherCounts::kCounted);

  residual_.resize(num_links);
  coflow_share_.resize(num_links);
  for (LinkId i = 0; i < fabric.num_links(); ++i) {
    residual_[static_cast<std::size_t>(i)] = fabric.capacity(i);
  }

  // One PS-P pass per round: each link's residual is divided equally among
  // the coflows present on it, a coflow's slice is divided evenly among
  // its flows there, and a flow realizes the min of its two per-link
  // slices. Rounds > 1 model FairCloud's per-link (WFQ) work conservation:
  // unused shares are re-offered under the same per-link weights, so the
  // coupled-link mismatch the paper highlights persists structurally —
  // unlike NC-DRF, whose count-proportional shares line up by design.
  const int rounds = options_.work_conserving
                         ? 1 + std::max(options_.backfill_rounds, 0)
                         : 1;
  for (int round = 0; round < rounds; ++round) {
    // residual / coflows_on_link hoisted per link: the flow sweep divides
    // only by the intra-coflow count, the exact second division of the
    // legacy residual/coflows/counted chain.
    for (std::size_t i = 0; i < num_links; ++i) {
      coflow_share_[i] =
          coflows_on_link[i] > 0 ? residual_[i] / coflows_on_link[i] : 0.0;
    }
    // The round's rate for row j depends only on the hoisted shares, and
    // parallel blocks accumulate disjoint rows, so the sharded sweep is
    // bit-identical to the serial one. A round that assigns nothing ends
    // the redistribution (same break the legacy `assigned` sum produced:
    // only positive rates were ever added to it).
    const auto sweep = [&](std::size_t begin, std::size_t end) {
      bool any = false;
      for (std::size_t j = begin; j < end; ++j) {
        const auto u = static_cast<std::size_t>(table.up[j]);
        const auto d = static_cast<std::size_t>(table.dn[j]);
        const double up_share = coflow_share_[u] / table.cnt_up[j];
        const double down_share = coflow_share_[d] / table.cnt_dn[j];
        const double r = std::max(std::min(up_share, down_share), 0.0);
        if (r > 0.0) {
          table.rate[j] += r;
          any = true;
        }
      }
      return any;
    };
    bool any_assigned = false;
    if (runtime_ != nullptr) {
      block_any_.assign(
          static_cast<std::size_t>(runtime_->num_shards()), 0);
      runtime_->parallel_blocks(
          table.num_coflows,
          [&](int block, std::size_t begin, std::size_t end) {
            if (sweep(table.begin_of(begin), table.begin_of(end))) {
              block_any_[static_cast<std::size_t>(block)] = 1;
            }
          });
      for (const char flag : block_any_) any_assigned |= flag != 0;
    } else {
      any_assigned = sweep(0, table.num_flows);
    }
    if (!any_assigned) break;
    // Recompute residuals for the next redistribution round from the
    // accumulated totals (the same sums the legacy alloc.rate() held).
    if (round + 1 < rounds) {
      for (std::size_t i = 0; i < num_links; ++i) {
        residual_[i] = fabric.capacity(static_cast<LinkId>(i));
      }
      for (std::size_t j = 0; j < table.num_flows; ++j) {
        residual_[static_cast<std::size_t>(table.up[j])] -= table.rate[j];
        residual_[static_cast<std::size_t>(table.dn[j])] -= table.rate[j];
      }
      for (double& r : residual_) r = std::max(r, 0.0);
    }
  }
  Allocation alloc;
  // skip_zero: the legacy path only ever add_rate'd positive rates, so
  // flows whose total stayed 0.0 must stay absent from the allocation.
  KernelScratch::commit(table, alloc, /*skip_zero=*/true);
  if (runtime_ != nullptr) runtime_->drain_timers(perf_);
  return alloc;
}

}  // namespace ncdrf
