#include "sched/psp.h"

#include <algorithm>
#include <vector>

#include "common/check.h"

namespace ncdrf {

Allocation PspScheduler::allocate(const ScheduleInput& input) {
  NCDRF_CHECK(options_.backfill_rounds >= 0,
              "backfill rounds must be non-negative");
  const Fabric& fabric = *input.fabric;
  const auto num_links = static_cast<std::size_t>(fabric.num_links());

  // Coflows present per link (inter-coflow equal split is per coflow, not
  // per flow — that is what distinguishes PS-P from per-flow fairness).
  std::vector<int> coflows_on_link(num_links, 0);
  std::vector<std::vector<int>> coflow_counts(
      input.coflows.size(), std::vector<int>(num_links, 0));
  for (std::size_t k = 0; k < input.coflows.size(); ++k) {
    for (const ActiveFlow& f : input.coflows[k].flows) {
      coflow_counts[k][static_cast<std::size_t>(fabric.uplink(f.src))] += 1;
      coflow_counts[k][static_cast<std::size_t>(fabric.downlink(f.dst))] += 1;
    }
    if (options_.count_finished_flows) {
      for (const ActiveFlow& f : input.coflows[k].finished_flows) {
        coflow_counts[k][static_cast<std::size_t>(fabric.uplink(f.src))] += 1;
        coflow_counts[k][static_cast<std::size_t>(fabric.downlink(f.dst))] +=
            1;
      }
    }
    for (std::size_t i = 0; i < num_links; ++i) {
      if (coflow_counts[k][i] > 0) coflows_on_link[i] += 1;
    }
  }

  std::vector<double> residual(num_links);
  for (LinkId i = 0; i < fabric.num_links(); ++i) {
    residual[static_cast<std::size_t>(i)] = fabric.capacity(i);
  }

  Allocation alloc;
  // One PS-P pass per round: each link's residual is divided equally among
  // the coflows present on it, a coflow's slice is divided evenly among
  // its flows there, and a flow realizes the min of its two per-link
  // slices. Rounds > 1 model FairCloud's per-link (WFQ) work conservation:
  // unused shares are re-offered under the same per-link weights, so the
  // coupled-link mismatch the paper highlights persists structurally —
  // unlike NC-DRF, whose count-proportional shares line up by design.
  const int rounds = options_.work_conserving
                         ? 1 + std::max(options_.backfill_rounds, 0)
                         : 1;
  for (int round = 0; round < rounds; ++round) {
    double assigned = 0.0;
    for (std::size_t k = 0; k < input.coflows.size(); ++k) {
      for (const ActiveFlow& f : input.coflows[k].flows) {
        const auto u = static_cast<std::size_t>(fabric.uplink(f.src));
        const auto d = static_cast<std::size_t>(fabric.downlink(f.dst));
        const double up_share =
            residual[u] / coflows_on_link[u] / coflow_counts[k][u];
        const double down_share =
            residual[d] / coflows_on_link[d] / coflow_counts[k][d];
        const double r = std::max(std::min(up_share, down_share), 0.0);
        if (r > 0.0) {
          alloc.add_rate(f.id, r);
          assigned += r;
        }
      }
    }
    if (assigned <= 0.0) break;
    // Recompute residuals for the next redistribution round.
    if (round + 1 < rounds) {
      for (std::size_t i = 0; i < num_links; ++i) {
        residual[i] = fabric.capacity(static_cast<LinkId>(i));
      }
      for (std::size_t k = 0; k < input.coflows.size(); ++k) {
        for (const ActiveFlow& f : input.coflows[k].flows) {
          const double r = alloc.rate(f.id);
          residual[static_cast<std::size_t>(fabric.uplink(f.src))] -= r;
          residual[static_cast<std::size_t>(fabric.downlink(f.dst))] -= r;
        }
      }
      for (double& r : residual) r = std::max(r, 0.0);
    }
  }
  return alloc;
}

}  // namespace ncdrf
