#include "sched/psp.h"

#include <algorithm>
#include <vector>

#include "common/check.h"

namespace ncdrf {

Allocation PspScheduler::allocate(const ScheduleInput& input) {
  AllocScope scope(perf_);
  NCDRF_CHECK(options_.backfill_rounds >= 0,
              "backfill rounds must be non-negative");
  const Fabric& fabric = *input.fabric;
  const auto num_links = static_cast<std::size_t>(fabric.num_links());

  // Coflows present per link (inter-coflow equal split is per coflow, not
  // per flow — that is what distinguishes PS-P from per-flow fairness) and
  // each coflow's per-link flow counts, both served by LinkLoadState.
  sync(input);
  const std::vector<int>& coflows_on_link = state_.counted_coflows_on_link();

  loads_.clear();
  loads_.reserve(input.coflows.size());
  for (const ActiveCoflow& coflow : input.coflows) {
    loads_.push_back(state_.find(coflow.id));
  }

  residual_.resize(num_links);
  coflow_share_.resize(num_links);
  for (LinkId i = 0; i < fabric.num_links(); ++i) {
    residual_[static_cast<std::size_t>(i)] = fabric.capacity(i);
  }

  Allocation alloc;
  alloc.reserve(static_cast<std::size_t>(live_flows_hint(input)));
  // One PS-P pass per round: each link's residual is divided equally among
  // the coflows present on it, a coflow's slice is divided evenly among
  // its flows there, and a flow realizes the min of its two per-link
  // slices. Rounds > 1 model FairCloud's per-link (WFQ) work conservation:
  // unused shares are re-offered under the same per-link weights, so the
  // coupled-link mismatch the paper highlights persists structurally —
  // unlike NC-DRF, whose count-proportional shares line up by design.
  const int rounds = options_.work_conserving
                         ? 1 + std::max(options_.backfill_rounds, 0)
                         : 1;
  for (int round = 0; round < rounds; ++round) {
    double assigned = 0.0;
    // residual / coflows_on_link hoisted per link: the flow loop divides
    // only by the intra-coflow count, the exact second division of the
    // legacy residual/coflows/counted chain.
    for (std::size_t i = 0; i < num_links; ++i) {
      coflow_share_[i] =
          coflows_on_link[i] > 0 ? residual_[i] / coflows_on_link[i] : 0.0;
    }
    if (runtime_ != nullptr) {
      // Parallel share computation, serial apply in the serial order: the
      // per-flow arithmetic reads only this round's hoisted shares, so the
      // result is bit-identical to the serial loop below.
      if (round == 0) {
        flat_offset_.assign(input.coflows.size() + 1, 0);
        for (std::size_t k = 0; k < input.coflows.size(); ++k) {
          flat_offset_[k + 1] =
              flat_offset_[k] +
              static_cast<std::int32_t>(input.coflows[k].flows.size());
        }
        flat_rate_.resize(
            static_cast<std::size_t>(flat_offset_[input.coflows.size()]));
      }
      runtime_->parallel_blocks(
          input.coflows.size(),
          [&](int, std::size_t begin, std::size_t end) {
            for (std::size_t k = begin; k < end; ++k) {
              const LinkLoadState::CoflowLoad& load = *loads_[k];
              const auto base = static_cast<std::size_t>(flat_offset_[k]);
              const std::vector<ActiveFlow>& flows = input.coflows[k].flows;
              for (std::size_t j = 0; j < flows.size(); ++j) {
                const auto u =
                    static_cast<std::size_t>(fabric.uplink(flows[j].src));
                const auto d =
                    static_cast<std::size_t>(fabric.downlink(flows[j].dst));
                const double up_share = coflow_share_[u] / load.counted[u];
                const double down_share = coflow_share_[d] / load.counted[d];
                flat_rate_[base + j] =
                    std::max(std::min(up_share, down_share), 0.0);
              }
            }
          });
      for (std::size_t k = 0; k < input.coflows.size(); ++k) {
        const auto base = static_cast<std::size_t>(flat_offset_[k]);
        const std::vector<ActiveFlow>& flows = input.coflows[k].flows;
        for (std::size_t j = 0; j < flows.size(); ++j) {
          const double r = flat_rate_[base + j];
          if (r > 0.0) {
            alloc.add_rate(flows[j].id, r);
            assigned += r;
          }
        }
      }
    } else {
      for (std::size_t k = 0; k < input.coflows.size(); ++k) {
        const LinkLoadState::CoflowLoad& load = *loads_[k];
        for (const ActiveFlow& f : input.coflows[k].flows) {
          const auto u = static_cast<std::size_t>(fabric.uplink(f.src));
          const auto d = static_cast<std::size_t>(fabric.downlink(f.dst));
          const double up_share = coflow_share_[u] / load.counted[u];
          const double down_share = coflow_share_[d] / load.counted[d];
          const double r = std::max(std::min(up_share, down_share), 0.0);
          if (r > 0.0) {
            alloc.add_rate(f.id, r);
            assigned += r;
          }
        }
      }
    }
    if (assigned <= 0.0) break;
    // Recompute residuals for the next redistribution round.
    if (round + 1 < rounds) {
      for (std::size_t i = 0; i < num_links; ++i) {
        residual_[i] = fabric.capacity(static_cast<LinkId>(i));
      }
      for (const ActiveCoflow& coflow : input.coflows) {
        for (const ActiveFlow& f : coflow.flows) {
          const double r = alloc.rate(f.id);
          residual_[static_cast<std::size_t>(fabric.uplink(f.src))] -= r;
          residual_[static_cast<std::size_t>(fabric.downlink(f.dst))] -= r;
        }
      }
      for (double& r : residual_) r = std::max(r, 0.0);
    }
  }
  if (runtime_ != nullptr) runtime_->drain_timers(perf_);
  return alloc;
}

}  // namespace ncdrf
