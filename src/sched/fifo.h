// Orchestra-style FIFO baseline (Chowdhury et al., SIGCOMM'11), the
// earliest point in the paper's design space (Fig. 1): a centralized
// Inter-Transfer Controller serves coflows strictly in arrival order.
//
// Non-clairvoyant: ordering needs only arrival times. The head coflow
// takes each link it touches (even split among its own flows there, min
// across the two endpoints); later coflows get what is left, in order —
// i.e. D-CLAS with a single queue. Head-of-line blocking is the cost the
// paper's Sec. II-B attributes to FIFO schedulers.
//
// Backed by the kernel layer: the arrival order is maintained across
// calls by PriorityOrder (event-hook insert/erase instead of a per-call
// sort), the fill and work-conserving residual pass run over the
// KernelScratch flow table with per-coflow link counts from
// LinkLoadState.
#pragma once

#include <memory>
#include <vector>

#include "alloc/kernel_scheduler.h"
#include "alloc/kernel_scratch.h"
#include "alloc/priority_state.h"
#include "alloc/shard.h"
#include "alloc/waterfill.h"

namespace ncdrf {

struct FifoOptions {
  bool work_conserving = true;
};

class FifoScheduler : public KernelScheduler {
 public:
  explicit FifoScheduler(FifoOptions options = {},
                         SchedulerOptions sched_options = {})
      : KernelScheduler(/*count_finished_flows=*/false),
        options_(options),
        runtime_(ShardRuntime::create(sched_options)) {}

  std::string name() const override { return "FIFO"; }
  bool clairvoyant() const override { return false; }
  Allocation allocate(const ScheduleInput& input) override;

  void on_reset(const Fabric& fabric) override {
    KernelScheduler::on_reset(fabric);
    order_state_.reset();
  }
  void on_coflow_arrival(const ActiveCoflow& coflow) override {
    KernelScheduler::on_coflow_arrival(coflow);
    if (!event_driven_) return;
    order_state_.add_coflow(coflow.id, /*bucket=*/0, coflow.arrival_time);
  }
  void on_coflow_departure(CoflowId id) override {
    KernelScheduler::on_coflow_departure(id);
    if (!event_driven_) return;
    order_state_.remove_coflow(id);
  }

  // Exposed for the golden event-churn suite's Debug consistency checks.
  const PriorityOrder& priority_order() const { return order_state_; }

 private:
  FifoOptions options_;
  PriorityOrder order_state_;
  KernelScratch scratch_;
  std::vector<std::size_t> order_;
  std::vector<double> residual_;
  ResidualBackfill backfill_;
  std::unique_ptr<ShardRuntime> runtime_;  // null on the serial path
  ShardedPriorityFill sharded_fill_;
  ShardedBackfill sharded_backfill_;
};

}  // namespace ncdrf
