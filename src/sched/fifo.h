// Orchestra-style FIFO baseline (Chowdhury et al., SIGCOMM'11), the
// earliest point in the paper's design space (Fig. 1): a centralized
// Inter-Transfer Controller serves coflows strictly in arrival order.
//
// Non-clairvoyant: ordering needs only arrival times. The head coflow
// takes each link it touches (even split among its own flows there, min
// across the two endpoints); later coflows get what is left, in order —
// i.e. D-CLAS with a single queue. Head-of-line blocking is the cost the
// paper's Sec. II-B attributes to FIFO schedulers.
//
// Backed by the kernel layer: per-coflow link counts from LinkLoadState,
// work conservation via the shared residual water-filling kernel.
#pragma once

#include <memory>
#include <vector>

#include "alloc/kernel_scheduler.h"
#include "alloc/shard.h"
#include "alloc/waterfill.h"

namespace ncdrf {

struct FifoOptions {
  bool work_conserving = true;
};

class FifoScheduler : public KernelScheduler {
 public:
  explicit FifoScheduler(FifoOptions options = {},
                         SchedulerOptions sched_options = {})
      : KernelScheduler(/*count_finished_flows=*/false),
        options_(options),
        runtime_(ShardRuntime::create(sched_options)) {}

  std::string name() const override { return "FIFO"; }
  bool clairvoyant() const override { return false; }
  Allocation allocate(const ScheduleInput& input) override;

 private:
  FifoOptions options_;
  std::vector<std::size_t> order_;
  std::vector<double> residual_;
  ResidualBackfill backfill_;
  std::unique_ptr<ShardRuntime> runtime_;  // null on the serial path
  ShardedPriorityFill sharded_fill_;
  ShardedBackfill sharded_backfill_;
};

}  // namespace ncdrf
