#include <cmath>
#include "sched/varys.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <vector>

#include "coflow/coflow.h"
#include "common/check.h"
#include "sched/maxmin.h"

namespace ncdrf {
namespace {

DemandVectors remaining_demand(const Fabric& fabric,
                               const ActiveCoflow& coflow,
                               const ClairvoyantInfo& info) {
  std::vector<Flow> flows;
  std::vector<double> sizes;
  flows.reserve(coflow.flows.size());
  sizes.reserve(coflow.flows.size());
  for (const ActiveFlow& f : coflow.flows) {
    flows.push_back(Flow{f.id, f.coflow, f.src, f.dst, 0.0});
    sizes.push_back(info.remaining_bits(f.id));
  }
  return compute_demand(fabric, flows, sizes);
}

}  // namespace

Allocation VarysScheduler::allocate(const ScheduleInput& input) {
  NCDRF_CHECK(input.clairvoyant != nullptr,
              "Varys requires clairvoyant remaining-size information");
  const Fabric& fabric = *input.fabric;
  const auto num_links = static_cast<std::size_t>(fabric.num_links());

  // Effective bottleneck completion time of each coflow at full capacity.
  std::vector<DemandVectors> demands;
  demands.reserve(input.coflows.size());
  std::vector<double> gamma(input.coflows.size(), 0.0);
  for (std::size_t k = 0; k < input.coflows.size(); ++k) {
    demands.push_back(
        remaining_demand(fabric, input.coflows[k], *input.clairvoyant));
    double g = 0.0;
    for (LinkId i = 0; i < fabric.num_links(); ++i) {
      const auto idx = static_cast<std::size_t>(i);
      g = std::max(g, demands.back().demand[idx] / fabric.capacity(i));
    }
    gamma[k] = g;
  }

  // SEBF order: smallest Γ first, id as a deterministic tiebreak.
  std::vector<std::size_t> order(input.coflows.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (gamma[a] != gamma[b]) return gamma[a] < gamma[b];
    return input.coflows[a].id < input.coflows[b].id;
  });

  std::vector<double> residual(num_links);
  for (LinkId i = 0; i < fabric.num_links(); ++i) {
    residual[static_cast<std::size_t>(i)] = fabric.capacity(i);
  }

  Allocation alloc;
  for (const std::size_t k : order) {
    const ActiveCoflow& coflow = input.coflows[k];
    if (gamma[k] <= 0.0) {
      for (const ActiveFlow& f : coflow.flows) alloc.set_rate(f.id, 0.0);
      continue;
    }
    // MADD against *residual* capacity: the coflow finishes as fast as the
    // bandwidth left by smaller coflows allows.
    double g = 0.0;
    bool blocked = false;
    for (LinkId i = 0; i < fabric.num_links(); ++i) {
      const auto idx = static_cast<std::size_t>(i);
      if (demands[k].demand[idx] <= 0.0) continue;
      if (residual[idx] <= 0.0) {
        blocked = true;
        break;
      }
      g = std::max(g, demands[k].demand[idx] / residual[idx]);
    }
    if (blocked || g <= 0.0) {
      for (const ActiveFlow& f : coflow.flows) alloc.set_rate(f.id, 0.0);
      continue;
    }
    for (const ActiveFlow& f : coflow.flows) {
      const double r = input.clairvoyant->remaining_bits(f.id) / g;
      alloc.set_rate(f.id, r);
      const auto u = static_cast<std::size_t>(fabric.uplink(f.src));
      const auto d = static_cast<std::size_t>(fabric.downlink(f.dst));
      residual[u] = std::max(residual[u] - r, 0.0);
      residual[d] = std::max(residual[d] - r, 0.0);
    }
  }

  if (options_.work_conserving) max_min_backfill(input, alloc);
  return alloc;
}

}  // namespace ncdrf
