#include "sched/varys.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "common/check.h"

namespace ncdrf {

Allocation VarysScheduler::allocate(const ScheduleInput& input) {
  NCDRF_CHECK(input.clairvoyant != nullptr,
              "Varys requires clairvoyant remaining-size information");
  const auto start = std::chrono::steady_clock::now();
  perf_.allocate_calls += 1;
  const Fabric& fabric = *input.fabric;
  const auto num_links = static_cast<std::size_t>(fabric.num_links());

  capacities_.resize(num_links);
  for (LinkId i = 0; i < fabric.num_links(); ++i) {
    capacities_[static_cast<std::size_t>(i)] = fabric.capacity(i);
  }

  // Effective bottleneck completion time of each coflow at full capacity.
  // Only the cache's touched links are scanned — untouched links hold
  // exactly 0.0 demand and cannot raise the max, so the sparse scan equals
  // the dense one bit for bit. Each coflow's Γ reads only its own cached
  // vectors, so the scans parallelize over coflow blocks with per-k
  // results unchanged.
  cache_.refresh(input, runtime_.get());
  gamma_.assign(input.coflows.size(), 0.0);
  const auto gamma_of = [&](std::size_t k) {
    const DemandVectors& d = cache_.demand(k);
    double g = 0.0;
    for (const LinkId i : cache_.touched(k)) {
      const auto idx = static_cast<std::size_t>(i);
      g = std::max(g, d.demand[idx] / capacities_[idx]);
    }
    return g;
  };
  if (runtime_ != nullptr) {
    runtime_->parallel_blocks(input.coflows.size(),
                              [&](int, std::size_t begin, std::size_t end) {
                                for (std::size_t k = begin; k < end; ++k) {
                                  gamma_[k] = gamma_of(k);
                                }
                              });
  } else {
    for (std::size_t k = 0; k < input.coflows.size(); ++k) {
      gamma_[k] = gamma_of(k);
    }
  }

  // SEBF order: smallest Γ first, id as a deterministic tiebreak.
  order_.resize(input.coflows.size());
  std::iota(order_.begin(), order_.end(), std::size_t{0});
  std::sort(order_.begin(), order_.end(),
            [&](std::size_t a, std::size_t b) {
              if (gamma_[a] != gamma_[b]) return gamma_[a] < gamma_[b];
              return input.coflows[a].id < input.coflows[b].id;
            });

  residual_.resize(num_links);
  for (std::size_t i = 0; i < num_links; ++i) residual_[i] = capacities_[i];

  const FlowTable& table =
      scratch_.gather(input, /*state=*/nullptr, GatherCounts::kNone);

  for (const std::size_t k : order_) {
    if (gamma_[k] <= 0.0) continue;  // rows keep the gather's zero rate
    // MADD against *residual* capacity: the coflow finishes as fast as the
    // bandwidth left by smaller coflows allows. Blocked means some
    // demanded link has no residual — an order-independent ∃-check, so
    // walking the touched list instead of ascending links changes nothing.
    const DemandVectors& d = cache_.demand(k);
    double g = 0.0;
    bool blocked = false;
    for (const LinkId i : cache_.touched(k)) {
      const auto idx = static_cast<std::size_t>(i);
      if (d.demand[idx] <= 0.0) continue;
      if (residual_[idx] <= 0.0) {
        blocked = true;
        break;
      }
      g = std::max(g, d.demand[idx] / residual_[idx]);
    }
    if (blocked || g <= 0.0) continue;
    const double* remaining = cache_.remaining(k);
    const std::size_t begin = table.begin_of(k);
    const std::size_t end = table.end_of(k);
    for (std::size_t j = begin; j < end; ++j) {
      const double r = remaining[j - begin] / g;
      table.rate[j] = r;
      const auto u = static_cast<std::size_t>(table.up[j]);
      const auto d2 = static_cast<std::size_t>(table.dn[j]);
      residual_[u] = std::max(residual_[u] - r, 0.0);
      residual_[d2] = std::max(residual_[d2] - r, 0.0);
    }
  }

  Allocation alloc;
  if (options_.work_conserving) {
    perf_.backfill_rounds += 1;
    if (runtime_ != nullptr && runtime_->bind(fabric).num_shards() > 1) {
      KernelScratch::commit(table, alloc);
      sharded_backfill_.run(input, *runtime_, alloc);
      runtime_->drain_timers(perf_);
      perf_.allocate_seconds +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      return alloc;
    }
    backfill_.run(fabric, table);
  }
  KernelScratch::commit(table, alloc);
  if (runtime_ != nullptr) runtime_->drain_timers(perf_);
  perf_.allocate_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return alloc;
}

}  // namespace ncdrf
