#include "sched/aalo.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "common/check.h"

namespace ncdrf {

AaloScheduler::AaloScheduler(AaloOptions options,
                             SchedulerOptions sched_options)
    : KernelScheduler(/*count_finished_flows=*/false),
      options_(options),
      runtime_(ShardRuntime::create(sched_options)) {
  NCDRF_CHECK(options_.initial_queue_limit_bits > 0.0,
              "Q0 must be positive");
  NCDRF_CHECK(options_.exchange_rate > 1.0, "exchange rate must exceed 1");
  NCDRF_CHECK(options_.num_queues >= 1, "need at least one queue");
}

int AaloScheduler::queue_of(double attained_bits) const {
  NCDRF_CHECK(attained_bits >= 0.0, "attained service must be non-negative");
  double limit = options_.initial_queue_limit_bits;
  for (int q = 0; q < options_.num_queues - 1; ++q) {
    if (attained_bits < limit) return q;
    limit *= options_.exchange_rate;
  }
  return options_.num_queues - 1;
}

double AaloScheduler::queue_upper_bound(int queue) const {
  NCDRF_CHECK(queue >= 0 && queue < options_.num_queues,
              "queue index out of range");
  if (queue == options_.num_queues - 1) {
    return std::numeric_limits<double>::infinity();
  }
  double limit = options_.initial_queue_limit_bits;
  for (int q = 0; q < queue; ++q) limit *= options_.exchange_rate;
  return limit;
}

Allocation AaloScheduler::allocate(const ScheduleInput& input) {
  AllocScope scope(perf_);
  const Fabric& fabric = *input.fabric;
  const auto num_links = static_cast<std::size_t>(fabric.num_links());
  sync(input);

  // Priority order: (queue, arrival time, id) — strict priority across
  // queues, FIFO within a queue.
  order_.resize(input.coflows.size());
  std::iota(order_.begin(), order_.end(), std::size_t{0});
  queue_.resize(input.coflows.size());
  for (std::size_t k = 0; k < input.coflows.size(); ++k) {
    queue_[k] = queue_of(input.coflows[k].attained_bits);
  }
  std::sort(order_.begin(), order_.end(),
            [&](std::size_t a, std::size_t b) {
              if (queue_[a] != queue_[b]) return queue_[a] < queue_[b];
              if (input.coflows[a].arrival_time !=
                  input.coflows[b].arrival_time) {
                return input.coflows[a].arrival_time <
                       input.coflows[b].arrival_time;
              }
              return input.coflows[a].id < input.coflows[b].id;
            });

  Allocation alloc;
  alloc.reserve(static_cast<std::size_t>(live_flows_hint(input)));

  if (runtime_ != nullptr && runtime_->bind(fabric).num_shards() > 1) {
    sharded_fill_.run(input, state_, order_, *runtime_, alloc);
    if (options_.work_conserving) {
      perf_.backfill_rounds += 1;
      sharded_backfill_.run(input, *runtime_, alloc);
    }
    runtime_->drain_timers(perf_);
    return alloc;
  }

  residual_.resize(num_links);
  for (LinkId i = 0; i < fabric.num_links(); ++i) {
    residual_[static_cast<std::size_t>(i)] = fabric.capacity(i);
  }

  for (const std::size_t k : order_) {
    const ActiveCoflow& coflow = input.coflows[k];
    // The head coflow takes what is left of each link, split evenly among
    // its own flows there; a flow realizes the min of its two shares. The
    // per-link flow counts come from LinkLoadState.
    const LinkLoadState::CoflowLoad& load = *state_.find(coflow.id);
    for (const ActiveFlow& f : coflow.flows) {
      const auto u = static_cast<std::size_t>(fabric.uplink(f.src));
      const auto d = static_cast<std::size_t>(fabric.downlink(f.dst));
      const double r =
          std::min(residual_[u] / load.live[u], residual_[d] / load.live[d]);
      alloc.set_rate(f.id, std::max(r, 0.0));
    }
    // Subtract actual usage after the whole coflow is assigned so flows of
    // the same coflow see the same residual snapshot (even split).
    for (const ActiveFlow& f : coflow.flows) {
      const auto u = static_cast<std::size_t>(fabric.uplink(f.src));
      const auto d = static_cast<std::size_t>(fabric.downlink(f.dst));
      const double r = alloc.rate(f.id);
      residual_[u] = std::max(residual_[u] - r, 0.0);
      residual_[d] = std::max(residual_[d] - r, 0.0);
    }
  }

  if (options_.work_conserving) {
    perf_.backfill_rounds += 1;
    backfill_.run(input, alloc);
  }
  return alloc;
}

std::optional<double> AaloScheduler::next_internal_event(
    const ScheduleInput& input, const Allocation& current) const {
  double soonest = std::numeric_limits<double>::infinity();
  for (const ActiveCoflow& coflow : input.coflows) {
    const int q = queue_of(coflow.attained_bits);
    const double bound = queue_upper_bound(q);
    if (!std::isfinite(bound)) continue;  // already in the last queue
    double rate = 0.0;
    for (const ActiveFlow& f : coflow.flows) rate += current.rate(f.id);
    if (rate <= 0.0) continue;
    soonest = std::min(soonest, (bound - coflow.attained_bits) / rate);
  }
  if (!std::isfinite(soonest)) return std::nullopt;
  // Guard against a zero-length event loop when attained sits exactly on a
  // boundary after integration.
  return std::max(soonest, 1e-9);
}

}  // namespace ncdrf
