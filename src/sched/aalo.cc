#include "sched/aalo.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"

namespace ncdrf {

AaloScheduler::AaloScheduler(AaloOptions options,
                             SchedulerOptions sched_options)
    : KernelScheduler(/*count_finished_flows=*/false),
      options_(options),
      runtime_(ShardRuntime::create(sched_options)) {
  NCDRF_CHECK(options_.initial_queue_limit_bits > 0.0,
              "Q0 must be positive");
  NCDRF_CHECK(options_.exchange_rate > 1.0, "exchange rate must exceed 1");
  NCDRF_CHECK(options_.num_queues >= 1, "need at least one queue");
  queue_upper_.resize(static_cast<std::size_t>(options_.num_queues));
  double limit = options_.initial_queue_limit_bits;
  for (int q = 0; q < options_.num_queues - 1; ++q) {
    queue_upper_[static_cast<std::size_t>(q)] = limit;
    limit *= options_.exchange_rate;
  }
  queue_upper_.back() = std::numeric_limits<double>::infinity();
}

int AaloScheduler::queue_of(double attained_bits) const {
  NCDRF_CHECK(attained_bits >= 0.0, "attained service must be non-negative");
  double limit = options_.initial_queue_limit_bits;
  for (int q = 0; q < options_.num_queues - 1; ++q) {
    if (attained_bits < limit) return q;
    limit *= options_.exchange_rate;
  }
  return options_.num_queues - 1;
}

double AaloScheduler::queue_upper_bound(int queue) const {
  NCDRF_CHECK(queue >= 0 && queue < options_.num_queues,
              "queue index out of range");
  return queue_upper_[static_cast<std::size_t>(queue)];
}

Allocation AaloScheduler::allocate(const ScheduleInput& input) {
  AllocScope scope(perf_);
  const Fabric& fabric = *input.fabric;
  const auto num_links = static_cast<std::size_t>(fabric.num_links());
  sync(input);

  // Priority order — (queue, arrival time, id): strict priority across
  // queues, FIFO within a queue — served from the persistent state.
  // resolve() repositions coflows whose attained service crossed a D-CLAS
  // boundary since the last call; membership mismatches (no events
  // delivered) fall back to one fresh sort.
  if (!order_state_.resolve(input, queue_upper_, order_)) {
    order_state_.rebuild(input, [this](const ActiveCoflow& c) {
      return queue_of(c.attained_bits);
    });
    const bool ok = order_state_.resolve(input, queue_upper_, order_);
    NCDRF_CHECK(ok, "Aalo: rebuilt priority order must cover the snapshot");
  }

  Allocation alloc;

  if (runtime_ != nullptr && runtime_->bind(fabric).num_shards() > 1) {
    alloc.reserve(static_cast<std::size_t>(live_flows_hint(input)));
    sharded_fill_.run(input, state_, order_, *runtime_, alloc);
    if (options_.work_conserving) {
      perf_.backfill_rounds += 1;
      sharded_backfill_.run(input, *runtime_, alloc);
    }
    runtime_->drain_timers(perf_);
    return alloc;
  }

  const FlowTable& table =
      scratch_.gather(input, &state_, GatherCounts::kLive);

  residual_.resize(num_links);
  for (LinkId i = 0; i < fabric.num_links(); ++i) {
    residual_[static_cast<std::size_t>(i)] = fabric.capacity(i);
  }

  for (const std::size_t k : order_) {
    const std::size_t begin = table.begin_of(k);
    const std::size_t end = table.end_of(k);
    // The head coflow takes what is left of each link, split evenly among
    // its own flows there; a flow realizes the min of its two shares. The
    // per-link flow counts were gathered from LinkLoadState.
    for (std::size_t j = begin; j < end; ++j) {
      const auto u = static_cast<std::size_t>(table.up[j]);
      const auto d = static_cast<std::size_t>(table.dn[j]);
      table.rate[j] = std::max(std::min(residual_[u] / table.cnt_up[j],
                                        residual_[d] / table.cnt_dn[j]),
                               0.0);
    }
    // Subtract actual usage after the whole coflow is assigned so flows of
    // the same coflow see the same residual snapshot (even split).
    for (std::size_t j = begin; j < end; ++j) {
      const auto u = static_cast<std::size_t>(table.up[j]);
      const auto d = static_cast<std::size_t>(table.dn[j]);
      residual_[u] = std::max(residual_[u] - table.rate[j], 0.0);
      residual_[d] = std::max(residual_[d] - table.rate[j], 0.0);
    }
  }

  if (options_.work_conserving) {
    perf_.backfill_rounds += 1;
    backfill_.run(fabric, table);
  }
  KernelScratch::commit(table, alloc);
  return alloc;
}

std::optional<double> AaloScheduler::next_internal_event(
    const ScheduleInput& input, const Allocation& current) const {
  double soonest = std::numeric_limits<double>::infinity();
  for (const ActiveCoflow& coflow : input.coflows) {
    const int q = queue_of(coflow.attained_bits);
    const double bound = queue_upper_bound(q);
    if (!std::isfinite(bound)) continue;  // already in the last queue
    double rate = 0.0;
    for (const ActiveFlow& f : coflow.flows) rate += current.rate(f.id);
    if (rate <= 0.0) continue;
    soonest = std::min(soonest, (bound - coflow.attained_bits) / rate);
  }
  if (!std::isfinite(soonest)) return std::nullopt;
  // Guard against a zero-length event loop when attained sits exactly on a
  // boundary after integration.
  return std::max(soonest, 1e-9);
}

}  // namespace ncdrf
