#include "sched/scheduler.h"

namespace ncdrf {

int count_active_flows(const ScheduleInput& input) {
  int count = 0;
  for (const ActiveCoflow& coflow : input.coflows) {
    count += static_cast<int>(coflow.flows.size());
  }
  return count;
}

int live_flows_hint(const ScheduleInput& input) {
  return input.total_live_flows >= 0 ? input.total_live_flows
                                     : count_active_flows(input);
}

std::vector<int> link_flow_counts(const ScheduleInput& input) {
  const Fabric& fabric = *input.fabric;
  std::vector<int> counts(static_cast<std::size_t>(fabric.num_links()), 0);
  for (const ActiveCoflow& coflow : input.coflows) {
    for (const ActiveFlow& flow : coflow.flows) {
      counts[static_cast<std::size_t>(fabric.uplink(flow.src))] += 1;
      counts[static_cast<std::size_t>(fabric.downlink(flow.dst))] += 1;
    }
  }
  return counts;
}

}  // namespace ncdrf
