#include "sched/fifo.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "sched/maxmin.h"

namespace ncdrf {

Allocation FifoScheduler::allocate(const ScheduleInput& input) {
  const Fabric& fabric = *input.fabric;
  const auto num_links = static_cast<std::size_t>(fabric.num_links());

  std::vector<std::size_t> order(input.coflows.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (input.coflows[a].arrival_time != input.coflows[b].arrival_time) {
      return input.coflows[a].arrival_time < input.coflows[b].arrival_time;
    }
    return input.coflows[a].id < input.coflows[b].id;
  });

  std::vector<double> residual(num_links);
  for (LinkId i = 0; i < fabric.num_links(); ++i) {
    residual[static_cast<std::size_t>(i)] = fabric.capacity(i);
  }

  Allocation alloc;
  for (const std::size_t k : order) {
    const ActiveCoflow& coflow = input.coflows[k];
    std::vector<int> counts(num_links, 0);
    for (const ActiveFlow& f : coflow.flows) {
      counts[static_cast<std::size_t>(fabric.uplink(f.src))] += 1;
      counts[static_cast<std::size_t>(fabric.downlink(f.dst))] += 1;
    }
    for (const ActiveFlow& f : coflow.flows) {
      const auto u = static_cast<std::size_t>(fabric.uplink(f.src));
      const auto d = static_cast<std::size_t>(fabric.downlink(f.dst));
      alloc.set_rate(f.id, std::max(std::min(residual[u] / counts[u],
                                             residual[d] / counts[d]),
                                    0.0));
    }
    for (const ActiveFlow& f : coflow.flows) {
      const auto u = static_cast<std::size_t>(fabric.uplink(f.src));
      const auto d = static_cast<std::size_t>(fabric.downlink(f.dst));
      residual[u] = std::max(residual[u] - alloc.rate(f.id), 0.0);
      residual[d] = std::max(residual[d] - alloc.rate(f.id), 0.0);
    }
  }

  if (options_.work_conserving) max_min_backfill(input, alloc);
  return alloc;
}

}  // namespace ncdrf
