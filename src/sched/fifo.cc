#include "sched/fifo.h"

#include <algorithm>
#include <numeric>
#include <vector>

namespace ncdrf {

Allocation FifoScheduler::allocate(const ScheduleInput& input) {
  AllocScope scope(perf_);
  const Fabric& fabric = *input.fabric;
  const auto num_links = static_cast<std::size_t>(fabric.num_links());
  sync(input);

  order_.resize(input.coflows.size());
  std::iota(order_.begin(), order_.end(), std::size_t{0});
  std::sort(order_.begin(), order_.end(),
            [&](std::size_t a, std::size_t b) {
              if (input.coflows[a].arrival_time !=
                  input.coflows[b].arrival_time) {
                return input.coflows[a].arrival_time <
                       input.coflows[b].arrival_time;
              }
              return input.coflows[a].id < input.coflows[b].id;
            });

  Allocation alloc;
  alloc.reserve(static_cast<std::size_t>(live_flows_hint(input)));

  if (runtime_ != nullptr && runtime_->bind(fabric).num_shards() > 1) {
    sharded_fill_.run(input, state_, order_, *runtime_, alloc);
    if (options_.work_conserving) {
      perf_.backfill_rounds += 1;
      sharded_backfill_.run(input, *runtime_, alloc);
    }
    runtime_->drain_timers(perf_);
    return alloc;
  }

  residual_.resize(num_links);
  for (LinkId i = 0; i < fabric.num_links(); ++i) {
    residual_[static_cast<std::size_t>(i)] = fabric.capacity(i);
  }

  for (const std::size_t k : order_) {
    const ActiveCoflow& coflow = input.coflows[k];
    const LinkLoadState::CoflowLoad& load = *state_.find(coflow.id);
    for (const ActiveFlow& f : coflow.flows) {
      const auto u = static_cast<std::size_t>(fabric.uplink(f.src));
      const auto d = static_cast<std::size_t>(fabric.downlink(f.dst));
      alloc.set_rate(f.id, std::max(std::min(residual_[u] / load.live[u],
                                             residual_[d] / load.live[d]),
                                    0.0));
    }
    for (const ActiveFlow& f : coflow.flows) {
      const auto u = static_cast<std::size_t>(fabric.uplink(f.src));
      const auto d = static_cast<std::size_t>(fabric.downlink(f.dst));
      residual_[u] = std::max(residual_[u] - alloc.rate(f.id), 0.0);
      residual_[d] = std::max(residual_[d] - alloc.rate(f.id), 0.0);
    }
  }

  if (options_.work_conserving) {
    perf_.backfill_rounds += 1;
    backfill_.run(input, alloc);
  }
  return alloc;
}

}  // namespace ncdrf
