#include "sched/fifo.h"

#include <algorithm>
#include <vector>

#include "common/check.h"

namespace ncdrf {
namespace {

const std::vector<double> kNoBucketBounds;  // arrival order never changes

}  // namespace

Allocation FifoScheduler::allocate(const ScheduleInput& input) {
  AllocScope scope(perf_);
  const Fabric& fabric = *input.fabric;
  const auto num_links = static_cast<std::size_t>(fabric.num_links());
  sync(input);

  // Arrival order from the persistent state; a driver that never delivered
  // events (or a snapshot the tracked set does not cover) falls back to
  // one fresh sort, exactly like LinkLoadState's rebuild.
  if (!order_state_.resolve(input, kNoBucketBounds, order_)) {
    order_state_.rebuild(input, [](const ActiveCoflow&) { return 0; });
    const bool ok = order_state_.resolve(input, kNoBucketBounds, order_);
    NCDRF_CHECK(ok, "FIFO: rebuilt priority order must cover the snapshot");
  }

  Allocation alloc;

  if (runtime_ != nullptr && runtime_->bind(fabric).num_shards() > 1) {
    alloc.reserve(static_cast<std::size_t>(live_flows_hint(input)));
    sharded_fill_.run(input, state_, order_, *runtime_, alloc);
    if (options_.work_conserving) {
      perf_.backfill_rounds += 1;
      sharded_backfill_.run(input, *runtime_, alloc);
    }
    runtime_->drain_timers(perf_);
    return alloc;
  }

  const FlowTable& table =
      scratch_.gather(input, &state_, GatherCounts::kLive);

  residual_.resize(num_links);
  for (LinkId i = 0; i < fabric.num_links(); ++i) {
    residual_[static_cast<std::size_t>(i)] = fabric.capacity(i);
  }

  for (const std::size_t k : order_) {
    const std::size_t begin = table.begin_of(k);
    const std::size_t end = table.end_of(k);
    // The head coflow takes what is left of each link, split evenly among
    // its own flows there; a flow realizes the min of its two shares.
    for (std::size_t j = begin; j < end; ++j) {
      const auto u = static_cast<std::size_t>(table.up[j]);
      const auto d = static_cast<std::size_t>(table.dn[j]);
      table.rate[j] = std::max(std::min(residual_[u] / table.cnt_up[j],
                                        residual_[d] / table.cnt_dn[j]),
                               0.0);
    }
    // Subtract actual usage after the whole coflow is assigned so flows of
    // the same coflow see the same residual snapshot (even split).
    for (std::size_t j = begin; j < end; ++j) {
      const auto u = static_cast<std::size_t>(table.up[j]);
      const auto d = static_cast<std::size_t>(table.dn[j]);
      residual_[u] = std::max(residual_[u] - table.rate[j], 0.0);
      residual_[d] = std::max(residual_[d] - table.rate[j], 0.0);
    }
  }

  if (options_.work_conserving) {
    perf_.backfill_rounds += 1;
    backfill_.run(fabric, table);
  }
  KernelScratch::commit(table, alloc);
  return alloc;
}

}  // namespace ncdrf
