#include "sched/hug.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "sched/drf.h"

namespace ncdrf {

Allocation HugScheduler::allocate(const ScheduleInput& input) {
  NCDRF_CHECK(input.clairvoyant != nullptr,
              "HUG requires clairvoyant remaining-size information");
  NCDRF_CHECK(options_.spare_rounds >= 0, "spare rounds must be >= 0");

  // Stage 1: DRF allocation at the optimal isolation guarantee.
  DrfScheduler drf(DrfOptions{.work_conserving = false});
  Allocation alloc = drf.allocate(input);
  const double p_star = DrfScheduler::optimal_progress(input);
  if (p_star <= 0.0) return alloc;

  const Fabric& fabric = *input.fabric;
  const auto num_links = static_cast<std::size_t>(fabric.num_links());
  const std::size_t num_coflows = input.coflows.size();

  // Per-coflow active-flow counts per link (fixed across rounds).
  std::vector<std::vector<int>> coflow_counts(
      num_coflows, std::vector<int>(num_links, 0));
  for (std::size_t k = 0; k < num_coflows; ++k) {
    for (const ActiveFlow& f : input.coflows[k].flows) {
      coflow_counts[k][static_cast<std::size_t>(fabric.uplink(f.src))] += 1;
      coflow_counts[k][static_cast<std::size_t>(fabric.downlink(f.dst))] += 1;
    }
  }

  for (int round = 0; round < options_.spare_rounds; ++round) {
    // Per-coflow usage per link under the current allocation.
    std::vector<std::vector<double>> coflow_usage(
        num_coflows, std::vector<double>(num_links, 0.0));
    std::vector<double> total_usage(num_links, 0.0);
    for (std::size_t k = 0; k < num_coflows; ++k) {
      for (const ActiveFlow& f : input.coflows[k].flows) {
        const double r = alloc.rate(f.id);
        const auto u = static_cast<std::size_t>(fabric.uplink(f.src));
        const auto d = static_cast<std::size_t>(fabric.downlink(f.dst));
        coflow_usage[k][u] += r;
        coflow_usage[k][d] += r;
        total_usage[u] += r;
        total_usage[d] += r;
      }
    }

    // Per-coflow extra budget per link: an even split of the link's spare,
    // clipped by the coflow's remaining headroom below the P* cap.
    std::vector<std::vector<double>> extra_budget(
        num_coflows, std::vector<double>(num_links, 0.0));
    bool any_spare = false;
    for (LinkId i = 0; i < fabric.num_links(); ++i) {
      const auto idx = static_cast<std::size_t>(i);
      const double spare =
          std::max(fabric.capacity(i) - total_usage[idx], 0.0);
      if (spare <= 0.0) continue;
      const double cap = p_star * fabric.capacity(i);
      int eligible = 0;
      for (std::size_t k = 0; k < num_coflows; ++k) {
        if (coflow_counts[k][idx] > 0 && coflow_usage[k][idx] < cap) {
          ++eligible;
        }
      }
      if (eligible == 0) continue;
      const double per_coflow = spare / eligible;
      for (std::size_t k = 0; k < num_coflows; ++k) {
        if (coflow_counts[k][idx] > 0 && coflow_usage[k][idx] < cap) {
          extra_budget[k][idx] =
              std::min(per_coflow, cap - coflow_usage[k][idx]);
          any_spare = true;
        }
      }
    }
    if (!any_spare) break;

    // Realize each flow's extra as the min of its two per-flow shares.
    for (std::size_t k = 0; k < num_coflows; ++k) {
      for (const ActiveFlow& f : input.coflows[k].flows) {
        const auto u = static_cast<std::size_t>(fabric.uplink(f.src));
        const auto d = static_cast<std::size_t>(fabric.downlink(f.dst));
        const double up_share = extra_budget[k][u] / coflow_counts[k][u];
        const double down_share = extra_budget[k][d] / coflow_counts[k][d];
        const double w = std::min(up_share, down_share);
        if (w > 0.0) alloc.add_rate(f.id, w);
      }
    }
  }
  return alloc;
}

}  // namespace ncdrf
