#include "sched/hug.h"

#include <algorithm>
#include <vector>

#include "common/check.h"

namespace ncdrf {

Allocation HugScheduler::allocate(const ScheduleInput& input) {
  AllocScope scope(perf_);
  NCDRF_CHECK(input.clairvoyant != nullptr,
              "HUG requires clairvoyant remaining-size information");
  NCDRF_CHECK(options_.spare_rounds >= 0, "spare rounds must be >= 0");

  // Stage 1: DRF allocation at the optimal isolation guarantee. The
  // sharded runtime parallelizes the demand refresh and the P* reduction;
  // stage 2's slot arena stays serial (it is already O(slots + flows)).
  Allocation alloc;
  cache_.refresh(input, runtime_.get());
  const double p_star = drf_allocate(input, cache_, runtime_.get(), alloc);
  if (runtime_ != nullptr) runtime_->drain_timers(perf_);
  if (p_star <= 0.0) return alloc;

  const Fabric& fabric = *input.fabric;
  const auto num_links = static_cast<std::size_t>(fabric.num_links());
  const std::size_t num_coflows = input.coflows.size();
  sync(input);

  // Build the sparse (coflow, link) slot arena for this snapshot: the
  // per-coflow active-flow counts per link are fixed across rounds and
  // live in LinkLoadState; only links a coflow actually uses get a slot.
  slot_offset_.assign(num_coflows + 1, 0);
  for (std::size_t k = 0; k < num_coflows; ++k) {
    const LinkLoadState::CoflowLoad& load = *state_.find(input.coflows[k].id);
    std::int32_t active = 0;
    for (const LinkId i : load.touched) {
      if (load.live[static_cast<std::size_t>(i)] > 0) ++active;
    }
    slot_offset_[k + 1] = slot_offset_[k] + active;
  }
  const auto num_slots = static_cast<std::size_t>(slot_offset_[num_coflows]);
  slot_links_.resize(num_slots);
  slot_live_.resize(num_slots);
  link_slot_scratch_.resize(num_links);
  flow_slots_.clear();
  flow_slots_.reserve(2 * static_cast<std::size_t>(live_flows_hint(input)));
  for (std::size_t k = 0; k < num_coflows; ++k) {
    const ActiveCoflow& coflow = input.coflows[k];
    const LinkLoadState::CoflowLoad& load = *state_.find(coflow.id);
    std::int32_t slot = slot_offset_[k];
    for (const LinkId i : load.touched) {
      const auto idx = static_cast<std::size_t>(i);
      if (load.live[idx] == 0) continue;
      slot_links_[static_cast<std::size_t>(slot)] = i;
      slot_live_[static_cast<std::size_t>(slot)] = load.live[idx];
      link_slot_scratch_[idx] = slot;
      ++slot;
    }
    // Stale scratch entries from other coflows are never read: a flow's
    // endpoints always carry this coflow's live flows, so their slots were
    // just written above.
    for (const ActiveFlow& f : coflow.flows) {
      flow_slots_.push_back(
          link_slot_scratch_[static_cast<std::size_t>(fabric.uplink(f.src))]);
      flow_slots_.push_back(link_slot_scratch_[static_cast<std::size_t>(
          fabric.downlink(f.dst))]);
    }
  }

  // CSR link -> slots. Slots are grouped by ascending coflow index, so a
  // single ascending-slot fill keeps each link's entry list in the same
  // coflow order the legacy dense scans used.
  link_offsets_.assign(num_links + 1, 0);
  for (std::size_t s = 0; s < num_slots; ++s) {
    link_offsets_[static_cast<std::size_t>(slot_links_[s]) + 1] += 1;
  }
  for (std::size_t i = 0; i < num_links; ++i) {
    link_offsets_[i + 1] += link_offsets_[i];
  }
  link_entries_.resize(num_slots);
  link_cursor_.assign(link_offsets_.begin(), link_offsets_.end() - 1);
  for (std::size_t s = 0; s < num_slots; ++s) {
    const auto i = static_cast<std::size_t>(slot_links_[s]);
    link_entries_[static_cast<std::size_t>(link_cursor_[i]++)] =
        static_cast<std::int32_t>(s);
  }

  for (int round = 0; round < options_.spare_rounds; ++round) {
    // Per-coflow usage per link under the current allocation.
    usage_.assign(num_slots, 0.0);
    total_usage_.assign(num_links, 0.0);
    std::size_t pos = 0;
    for (std::size_t k = 0; k < num_coflows; ++k) {
      for (const ActiveFlow& f : input.coflows[k].flows) {
        const double r = alloc.rate(f.id);
        const auto us = static_cast<std::size_t>(flow_slots_[pos]);
        const auto ds = static_cast<std::size_t>(flow_slots_[pos + 1]);
        pos += 2;
        usage_[us] += r;
        usage_[ds] += r;
        total_usage_[static_cast<std::size_t>(slot_links_[us])] += r;
        total_usage_[static_cast<std::size_t>(slot_links_[ds])] += r;
      }
    }

    // Per-coflow extra budget per link: an even split of the link's spare,
    // clipped by the coflow's remaining headroom below the P* cap.
    budget_.assign(num_slots, 0.0);
    bool any_spare = false;
    for (LinkId i = 0; i < fabric.num_links(); ++i) {
      const auto idx = static_cast<std::size_t>(i);
      const double spare =
          std::max(fabric.capacity(i) - total_usage_[idx], 0.0);
      if (spare <= 0.0) continue;
      const double cap = p_star * fabric.capacity(i);
      int eligible = 0;
      for (std::int32_t e = link_offsets_[idx]; e < link_offsets_[idx + 1];
           ++e) {
        const auto s =
            static_cast<std::size_t>(link_entries_[static_cast<std::size_t>(e)]);
        if (usage_[s] < cap) ++eligible;
      }
      if (eligible == 0) continue;
      const double per_coflow = spare / eligible;
      for (std::int32_t e = link_offsets_[idx]; e < link_offsets_[idx + 1];
           ++e) {
        const auto s =
            static_cast<std::size_t>(link_entries_[static_cast<std::size_t>(e)]);
        if (usage_[s] < cap) {
          budget_[s] = std::min(per_coflow, cap - usage_[s]);
          any_spare = true;
        }
      }
    }
    if (!any_spare) break;

    // Realize each flow's extra as the min of its two per-flow shares.
    pos = 0;
    for (std::size_t k = 0; k < num_coflows; ++k) {
      for (const ActiveFlow& f : input.coflows[k].flows) {
        const auto us = static_cast<std::size_t>(flow_slots_[pos]);
        const auto ds = static_cast<std::size_t>(flow_slots_[pos + 1]);
        pos += 2;
        const double up_share = budget_[us] / slot_live_[us];
        const double down_share = budget_[ds] / slot_live_[ds];
        const double w = std::min(up_share, down_share);
        if (w > 0.0) alloc.add_rate(f.id, w);
      }
    }
    perf_.backfill_rounds += 1;
  }
  return alloc;
}

}  // namespace ncdrf
