// FairCloud's flow-level alternatives to per-flow fairness (Popa et al.,
// SIGCOMM'12), cited by the paper's Sec. III-B as policies that provide no
// application-level isolation: fairness among *sources* and among
// *source-destination pairs*.
//
// Modelled as weighted network-wide max-min where each flow's weight is
// 1 / (number of flows sharing its entity): per-source fairness gives each
// sending machine an equal aggregate claim; per-pair fairness gives each
// (src, dst) pair one. Like TCP, both are coflow-agnostic — a coflow
// spreading over more sources or pairs grabs more bandwidth, which is
// precisely the gaming channel the paper criticizes.
//
// Entity sizes are maintained incrementally under an event-driven driver
// (KernelScheduler detects stale state and falls back to a snapshot
// rebuild otherwise), and rates come from the shared water-filling kernel.
#pragma once

#include <map>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "alloc/kernel_scheduler.h"
#include "alloc/kernel_scratch.h"
#include "alloc/shard.h"
#include "alloc/waterfill.h"

namespace ncdrf {

enum class FairnessEntity { kSource, kSourceDestinationPair };

class EndpointFairScheduler : public KernelScheduler {
 public:
  explicit EndpointFairScheduler(FairnessEntity entity,
                                 SchedulerOptions options = {})
      : KernelScheduler(/*count_finished_flows=*/false),
        entity_(entity),
        runtime_(ShardRuntime::create(options)) {}

  std::string name() const override {
    return entity_ == FairnessEntity::kSource ? "PerSource" : "PerPair";
  }
  bool clairvoyant() const override { return false; }
  Allocation allocate(const ScheduleInput& input) override;

  void on_reset(const Fabric& fabric) override;
  void on_coflow_arrival(const ActiveCoflow& coflow) override;
  void on_flow_finish(const ActiveFlow& flow) override;
  void on_coflow_departure(CoflowId id) override;

 private:
  using EntityKey = std::pair<MachineId, MachineId>;

  EntityKey key(const ActiveFlow& f) const {
    return entity_ == FairnessEntity::kSource
               ? std::make_pair(f.src, MachineId{-1})
               : std::make_pair(f.src, f.dst);
  }
  void rebuild_entities(const ScheduleInput& input);

  FairnessEntity entity_;
  // Live flows per fairness entity, and each coflow's live entity keys
  // (multiset, one entry per live flow) so departures can release them.
  std::map<EntityKey, int> entity_size_;
  std::unordered_map<CoflowId, std::vector<EntityKey>> coflow_keys_;

  WaterfillKernel kernel_;
  KernelScratch scratch_;  // serial path solves over the gathered columns
  std::unique_ptr<ShardRuntime> runtime_;  // null on the serial path
  ShardedWaterfill sharded_;
  std::vector<WaterfillFlow> flows_;  // sharded-solver AoS build only
  std::vector<double> capacities_;
  std::vector<double> rates_;
};

}  // namespace ncdrf
