// FairCloud's flow-level alternatives to per-flow fairness (Popa et al.,
// SIGCOMM'12), cited by the paper's Sec. III-B as policies that provide no
// application-level isolation: fairness among *sources* and among
// *source-destination pairs*.
//
// Modelled as weighted network-wide max-min where each flow's weight is
// 1 / (number of flows sharing its entity): per-source fairness gives each
// sending machine an equal aggregate claim; per-pair fairness gives each
// (src, dst) pair one. Like TCP, both are coflow-agnostic — a coflow
// spreading over more sources or pairs grabs more bandwidth, which is
// precisely the gaming channel the paper criticizes.
#pragma once

#include "sched/scheduler.h"

namespace ncdrf {

enum class FairnessEntity { kSource, kSourceDestinationPair };

class EndpointFairScheduler : public Scheduler {
 public:
  explicit EndpointFairScheduler(FairnessEntity entity) : entity_(entity) {}

  std::string name() const override {
    return entity_ == FairnessEntity::kSource ? "PerSource" : "PerPair";
  }
  bool clairvoyant() const override { return false; }
  Allocation allocate(const ScheduleInput& input) override;

 private:
  FairnessEntity entity_;
};

}  // namespace ncdrf
