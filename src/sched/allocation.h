// Allocation: the result of one scheduling decision — a rate (bps) for each
// active flow — plus the validation helpers every policy's output must pass
// (capacity feasibility on all 2m links).
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "coflow/flow.h"
#include "common/check.h"
#include "fabric/fabric.h"

namespace ncdrf {

struct ActiveFlow;
struct ScheduleInput;

// Rates are stored densely, indexed by FlowId: traces assign flow ids as a
// contiguous 0-based range, so a flat array beats a hash map on the
// allocate() hot path (one store per flow instead of one hash insert).
// Sparse or out-of-range ids still work — the table grows on demand — and
// "never mentioned" stays distinct from "explicitly rate 0".
//
// The accessors are defined inline: every policy's allocate(), the
// backfilling stages and the simulator engine each make one call per flow
// per event, so out-of-line call overhead here is measurable at trace
// scale (it showed up as ~20% of the engine replay profile).
class Allocation {
 public:
  // Sets the rate for a flow (replacing any previous value). Rates must be
  // non-negative and finite.
  void set_rate(FlowId flow, double rate_bps) {
    NCDRF_CHECK(std::isfinite(rate_bps) && rate_bps >= 0.0,
                "flow rate must be finite and non-negative");
    double& entry = slot(flow);
    if (entry == kAbsent) ++num_flows_;
    entry = rate_bps;
  }

  // Adds to the flow's current rate (used by backfilling stages).
  void add_rate(FlowId flow, double rate_bps) {
    NCDRF_CHECK(std::isfinite(rate_bps) && rate_bps >= 0.0,
                "flow rate increment must be finite and non-negative");
    double& entry = slot(flow);
    if (entry == kAbsent) {
      entry = rate_bps;
      ++num_flows_;
    } else {
      entry += rate_bps;
    }
  }

  // Pre-sizes the table for flow ids in [0, num_flows) so the bulk
  // set_rate pass in allocate() never reallocates mid-flight.
  void reserve(std::size_t num_flows) { rates_.reserve(num_flows); }

  // Rate for a flow; 0 for flows never mentioned.
  double rate(FlowId flow) const {
    if (flow < 0) return 0.0;
    const auto idx = static_cast<std::size_t>(flow);
    if (idx >= rates_.size() || rates_[idx] == kAbsent) return 0.0;
    return rates_[idx];
  }

  // True once set_rate/add_rate has been called for the flow, even with 0.
  bool has_rate(FlowId flow) const {
    if (flow < 0) return false;
    const auto idx = static_cast<std::size_t>(flow);
    return idx < rates_.size() && rates_[idx] != kAbsent;
  }

  // Number of flows with an assigned rate.
  std::size_t num_flows() const { return num_flows_; }
  bool empty() const { return num_flows_ == 0; }

  // Sum of all flow rates (total fabric throughput contribution; each flow
  // counted once, so total link usage is twice this).
  double total_rate() const;

 private:
  static constexpr double kAbsent = -1.0;

  // Grows the table (filled with kAbsent) to cover `flow`; returns its slot.
  double& slot(FlowId flow) {
    NCDRF_CHECK(flow >= 0, "flow ids must be non-negative");
    const auto idx = static_cast<std::size_t>(flow);
    if (idx >= rates_.size()) rates_.resize(idx + 1, kAbsent);
    return rates_[idx];
  }

  std::vector<double> rates_;  // indexed by FlowId; kAbsent = unassigned
  std::size_t num_flows_ = 0;
};

// Aggregate usage per link implied by `alloc` over the snapshot's flows,
// indexed by LinkId.
std::vector<double> link_usage(const ScheduleInput& input,
                               const Allocation& alloc);

// As above but accumulates into `out` (resized/zeroed), so per-event
// callers can reuse one buffer instead of allocating per call.
void link_usage(const ScheduleInput& input, const Allocation& alloc,
                std::vector<double>& out);

// Throws CheckError if any link's usage exceeds its capacity beyond a
// relative tolerance. Call after every allocate() in debug paths and tests.
void check_capacity(const ScheduleInput& input, const Allocation& alloc,
                    double relative_tolerance = 1e-6);

// Scales rates down (never up) so that no link exceeds capacity: each flow
// rate is multiplied by min over its two links of (capacity / usage, 1).
// Used to make numerically borderline allocations exactly feasible.
void clamp_to_capacity(const ScheduleInput& input, Allocation& alloc);

// As above with a caller-owned scratch buffer for the usage/scale vector.
// When every link is within capacity (the common case for well-behaved
// policies) this is one accumulation pass and an O(links) check — the
// per-flow rescale pass is skipped entirely.
void clamp_to_capacity(const ScheduleInput& input, Allocation& alloc,
                       std::vector<double>& scratch);

}  // namespace ncdrf
