// Allocation: the result of one scheduling decision — a rate (bps) for each
// active flow — plus the validation helpers every policy's output must pass
// (capacity feasibility on all 2m links).
#pragma once

#include <cstddef>
#include <vector>

#include "coflow/flow.h"
#include "fabric/fabric.h"

namespace ncdrf {

struct ActiveFlow;
struct ScheduleInput;

// Rates are stored densely, indexed by FlowId: traces assign flow ids as a
// contiguous 0-based range, so a flat array beats a hash map on the
// allocate() hot path (one store per flow instead of one hash insert).
// Sparse or out-of-range ids still work — the table grows on demand — and
// "never mentioned" stays distinct from "explicitly rate 0".
class Allocation {
 public:
  // Sets the rate for a flow (replacing any previous value). Rates must be
  // non-negative and finite.
  void set_rate(FlowId flow, double rate_bps);

  // Adds to the flow's current rate (used by backfilling stages).
  void add_rate(FlowId flow, double rate_bps);

  // Pre-sizes the table for flow ids in [0, num_flows) so the bulk
  // set_rate pass in allocate() never reallocates mid-flight.
  void reserve(std::size_t num_flows) { rates_.reserve(num_flows); }

  // Rate for a flow; 0 for flows never mentioned.
  double rate(FlowId flow) const;

  // True once set_rate/add_rate has been called for the flow, even with 0.
  bool has_rate(FlowId flow) const;

  // Number of flows with an assigned rate.
  std::size_t num_flows() const { return num_flows_; }
  bool empty() const { return num_flows_ == 0; }

  // Sum of all flow rates (total fabric throughput contribution; each flow
  // counted once, so total link usage is twice this).
  double total_rate() const;

 private:
  static constexpr double kAbsent = -1.0;

  // Grows the table (filled with kAbsent) to cover `flow`; returns its slot.
  double& slot(FlowId flow);

  std::vector<double> rates_;  // indexed by FlowId; kAbsent = unassigned
  std::size_t num_flows_ = 0;
};

// Aggregate usage per link implied by `alloc` over the snapshot's flows,
// indexed by LinkId.
std::vector<double> link_usage(const ScheduleInput& input,
                               const Allocation& alloc);

// Throws CheckError if any link's usage exceeds its capacity beyond a
// relative tolerance. Call after every allocate() in debug paths and tests.
void check_capacity(const ScheduleInput& input, const Allocation& alloc,
                    double relative_tolerance = 1e-6);

// Scales rates down (never up) so that no link exceeds capacity: each flow
// rate is multiplied by min over its two links of (capacity / usage, 1).
// Used to make numerically borderline allocations exactly feasible.
void clamp_to_capacity(const ScheduleInput& input, Allocation& alloc);

}  // namespace ncdrf
