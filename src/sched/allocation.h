// Allocation: the result of one scheduling decision — a rate (bps) for each
// active flow — plus the validation helpers every policy's output must pass
// (capacity feasibility on all 2m links).
#pragma once

#include <unordered_map>
#include <vector>

#include "coflow/flow.h"
#include "fabric/fabric.h"

namespace ncdrf {

struct ActiveFlow;
struct ScheduleInput;

class Allocation {
 public:
  // Sets the rate for a flow (replacing any previous value). Rates must be
  // non-negative and finite.
  void set_rate(FlowId flow, double rate_bps);

  // Adds to the flow's current rate (used by backfilling stages).
  void add_rate(FlowId flow, double rate_bps);

  // Rate for a flow; 0 for flows never mentioned.
  double rate(FlowId flow) const;

  const std::unordered_map<FlowId, double>& rates() const { return rates_; }

  // Sum of all flow rates (total fabric throughput contribution; each flow
  // counted once, so total link usage is twice this).
  double total_rate() const;

 private:
  std::unordered_map<FlowId, double> rates_;
};

// Aggregate usage per link implied by `alloc` over the snapshot's flows,
// indexed by LinkId.
std::vector<double> link_usage(const ScheduleInput& input,
                               const Allocation& alloc);

// Throws CheckError if any link's usage exceeds its capacity beyond a
// relative tolerance. Call after every allocate() in debug paths and tests.
void check_capacity(const ScheduleInput& input, const Allocation& alloc,
                    double relative_tolerance = 1e-6);

// Scales rates down (never up) so that no link exceeds capacity: each flow
// rate is multiplied by min over its two links of (capacity / usage, 1).
// Used to make numerically borderline allocations exactly feasible.
void clamp_to_capacity(const ScheduleInput& input, Allocation& alloc);

}  // namespace ncdrf
