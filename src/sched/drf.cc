#include "sched/drf.h"

#include <chrono>

#include "common/check.h"
#include "sched/backfill.h"

namespace ncdrf {

double DrfScheduler::optimal_progress(const ScheduleInput& input) {
  NCDRF_CHECK(input.clairvoyant != nullptr,
              "DRF requires clairvoyant remaining-size information");
  DemandCache cache;
  cache.refresh(input);
  return cache.drf_progress(input);
}

Allocation DrfScheduler::allocate(const ScheduleInput& input) {
  NCDRF_CHECK(input.clairvoyant != nullptr,
              "DRF requires clairvoyant remaining-size information");
  const auto start = std::chrono::steady_clock::now();
  perf_.allocate_calls += 1;
  Allocation alloc;
  cache_.refresh(input, runtime_.get());
  const double p_star = drf_allocate(input, cache_, runtime_.get(), alloc);
  if (p_star > 0.0 && options_.work_conserving) {
    perf_.backfill_rounds += options_.backfill_rounds;
    even_backfill(input, alloc, options_.backfill_rounds);
  }
  if (runtime_ != nullptr) runtime_->drain_timers(perf_);
  perf_.allocate_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return alloc;
}

}  // namespace ncdrf
