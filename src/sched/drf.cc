#include <cmath>
#include "sched/drf.h"

#include <algorithm>
#include <limits>

#include "coflow/coflow.h"
#include "sched/backfill.h"

namespace ncdrf {
namespace {

// Remaining demand vectors of one active coflow.
DemandVectors remaining_demand(const Fabric& fabric,
                               const ActiveCoflow& coflow,
                               const ClairvoyantInfo& info) {
  std::vector<Flow> flows;
  std::vector<double> sizes;
  flows.reserve(coflow.flows.size());
  sizes.reserve(coflow.flows.size());
  for (const ActiveFlow& f : coflow.flows) {
    flows.push_back(Flow{f.id, f.coflow, f.src, f.dst, 0.0});
    sizes.push_back(info.remaining_bits(f.id));
  }
  return compute_demand(fabric, flows, sizes);
}

}  // namespace

double DrfScheduler::optimal_progress(const ScheduleInput& input) {
  NCDRF_CHECK(input.clairvoyant != nullptr,
              "DRF requires clairvoyant remaining-size information");
  const Fabric& fabric = *input.fabric;
  // Σ_k c_k^i per link, then P* = min_i C_i / Σ_k c_k^i.
  std::vector<double> load(static_cast<std::size_t>(fabric.num_links()), 0.0);
  for (const ActiveCoflow& coflow : input.coflows) {
    NCDRF_CHECK(coflow.weight > 0.0, "coflow weights must be positive");
    const DemandVectors d = remaining_demand(fabric, coflow,
                                             *input.clairvoyant);
    if (d.bottleneck_demand <= 0.0) continue;
    const std::vector<double> c = d.correlation();
    for (std::size_t i = 0; i < c.size(); ++i) {
      load[i] += coflow.weight * c[i];
    }
  }
  double p_star = std::numeric_limits<double>::infinity();
  for (LinkId i = 0; i < fabric.num_links(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (load[idx] > 0.0) {
      p_star = std::min(p_star, fabric.capacity(i) / load[idx]);
    }
  }
  return std::isfinite(p_star) ? p_star : 0.0;
}

Allocation DrfScheduler::allocate(const ScheduleInput& input) {
  NCDRF_CHECK(input.clairvoyant != nullptr,
              "DRF requires clairvoyant remaining-size information");
  Allocation alloc;
  const double p_star = optimal_progress(input);
  if (p_star <= 0.0) return alloc;

  for (const ActiveCoflow& coflow : input.coflows) {
    const DemandVectors d =
        remaining_demand(*input.fabric, coflow, *input.clairvoyant);
    if (d.bottleneck_demand <= 0.0) {
      // Nothing left to send; flows will be retired by the driver.
      for (const ActiveFlow& f : coflow.flows) alloc.set_rate(f.id, 0.0);
      continue;
    }
    // rate_f = w_k · remaining_f · P* / d̄_k — flows (and links) finish
    // together; weights default to 1.
    for (const ActiveFlow& f : coflow.flows) {
      const double remaining = input.clairvoyant->remaining_bits(f.id);
      alloc.set_rate(f.id, coflow.weight * remaining * p_star /
                               d.bottleneck_demand);
    }
  }
  if (options_.work_conserving) {
    even_backfill(input, alloc, options_.backfill_rounds);
  }
  return alloc;
}

}  // namespace ncdrf
