// Aalo baseline (Chowdhury & Stoica, SIGCOMM'15): non-clairvoyant,
// performance-optimal coflow scheduling via Discretized Coflow-Aware
// Least-Attained Service (D-CLAS).
//
// Coflows are placed into K priority queues by *attained service* (total
// bits already sent): queue q holds coflows with attained in
// [Q0·E^(q-1), Q0·E^q) (queue 0 is [0, Q0)), with Aalo's defaults
// Q0 = 10 MB, E = 10, K = 10. Lower queues have strict priority; FIFO by
// arrival within a queue. Per-link bandwidth is handed to coflows in that
// order (even split among a coflow's flows on a link, min across the two
// endpoints), and leftover capacity is water-filled max-min across all
// flows (Aalo is work-conserving).
//
// D-CLAS mimics shortest-first without size knowledge, which minimizes
// average CCT but provides *no isolation*: large coflows can be delayed
// unboundedly (the >100 normalized-CCT tail in Fig. 6a).
//
// Kernel-layer backing: queue membership is maintained across calls by
// PriorityOrder (event-hook insert/erase plus per-call promotion checks
// against the D-CLAS thresholds — two comparisons per coflow — instead of
// a per-call sort), per-coflow per-link flow counts come from
// LinkLoadState, and the fill + work-conserving pass run over the
// KernelScratch flow table.
#pragma once

#include <memory>
#include <vector>

#include "alloc/kernel_scheduler.h"
#include "alloc/kernel_scratch.h"
#include "alloc/priority_state.h"
#include "alloc/shard.h"
#include "alloc/waterfill.h"

namespace ncdrf {

struct AaloOptions {
  double initial_queue_limit_bits = 8e7;  // Q0 = 10 MB
  double exchange_rate = 10.0;            // E
  int num_queues = 10;                    // K
  bool work_conserving = true;
};

class AaloScheduler : public KernelScheduler {
 public:
  explicit AaloScheduler(AaloOptions options = {},
                         SchedulerOptions sched_options = {});

  std::string name() const override { return "Aalo"; }
  bool clairvoyant() const override { return false; }
  Allocation allocate(const ScheduleInput& input) override;

  // Aalo's allocation changes when a coflow's attained service crosses a
  // queue boundary; report the soonest such crossing so the driver can
  // re-invoke allocate() then.
  std::optional<double> next_internal_event(
      const ScheduleInput& input, const Allocation& current) const override;

  // Queue index for a given attained service (exposed for tests).
  int queue_of(double attained_bits) const;

  // Upper threshold of the given queue (infinity for the last queue).
  double queue_upper_bound(int queue) const;

  void on_reset(const Fabric& fabric) override {
    KernelScheduler::on_reset(fabric);
    order_state_.reset();
  }
  void on_coflow_arrival(const ActiveCoflow& coflow) override {
    KernelScheduler::on_coflow_arrival(coflow);
    if (!event_driven_) return;
    order_state_.add_coflow(coflow.id, queue_of(coflow.attained_bits),
                            coflow.arrival_time);
  }
  void on_coflow_departure(CoflowId id) override {
    KernelScheduler::on_coflow_departure(id);
    if (!event_driven_) return;
    order_state_.remove_coflow(id);
  }

  // Exposed for the golden event-churn suite's Debug consistency checks.
  const PriorityOrder& priority_order() const { return order_state_; }

 private:
  AaloOptions options_;
  std::vector<double> queue_upper_;  // D-CLAS thresholds; last = infinity
  PriorityOrder order_state_;
  KernelScratch scratch_;
  std::vector<std::size_t> order_;
  std::vector<double> residual_;
  ResidualBackfill backfill_;
  std::unique_ptr<ShardRuntime> runtime_;  // null on the serial path
  ShardedPriorityFill sharded_fill_;
  ShardedBackfill sharded_backfill_;
};

}  // namespace ncdrf
