// Aalo baseline (Chowdhury & Stoica, SIGCOMM'15): non-clairvoyant,
// performance-optimal coflow scheduling via Discretized Coflow-Aware
// Least-Attained Service (D-CLAS).
//
// Coflows are placed into K priority queues by *attained service* (total
// bits already sent): queue q holds coflows with attained in
// [Q0·E^(q-1), Q0·E^q) (queue 0 is [0, Q0)), with Aalo's defaults
// Q0 = 10 MB, E = 10, K = 10. Lower queues have strict priority; FIFO by
// arrival within a queue. Per-link bandwidth is handed to coflows in that
// order (even split among a coflow's flows on a link, min across the two
// endpoints), and leftover capacity is water-filled max-min across all
// flows (Aalo is work-conserving).
//
// D-CLAS mimics shortest-first without size knowledge, which minimizes
// average CCT but provides *no isolation*: large coflows can be delayed
// unboundedly (the >100 normalized-CCT tail in Fig. 6a).
//
// Per-coflow per-link flow counts come from the kernel layer's
// LinkLoadState instead of a per-coflow dense count rebuild each call, and
// the work-conserving pass is the shared residual water-filling kernel.
#pragma once

#include <memory>
#include <vector>

#include "alloc/kernel_scheduler.h"
#include "alloc/shard.h"
#include "alloc/waterfill.h"

namespace ncdrf {

struct AaloOptions {
  double initial_queue_limit_bits = 8e7;  // Q0 = 10 MB
  double exchange_rate = 10.0;            // E
  int num_queues = 10;                    // K
  bool work_conserving = true;
};

class AaloScheduler : public KernelScheduler {
 public:
  explicit AaloScheduler(AaloOptions options = {},
                         SchedulerOptions sched_options = {});

  std::string name() const override { return "Aalo"; }
  bool clairvoyant() const override { return false; }
  Allocation allocate(const ScheduleInput& input) override;

  // Aalo's allocation changes when a coflow's attained service crosses a
  // queue boundary; report the soonest such crossing so the driver can
  // re-invoke allocate() then.
  std::optional<double> next_internal_event(
      const ScheduleInput& input, const Allocation& current) const override;

  // Queue index for a given attained service (exposed for tests).
  int queue_of(double attained_bits) const;

  // Upper threshold of the given queue (infinity for the last queue).
  double queue_upper_bound(int queue) const;

 private:
  AaloOptions options_;
  std::vector<std::size_t> order_;
  std::vector<int> queue_;
  std::vector<double> residual_;
  ResidualBackfill backfill_;
  std::unique_ptr<ShardRuntime> runtime_;  // null on the serial path
  ShardedPriorityFill sharded_fill_;
  ShardedBackfill sharded_backfill_;
};

}  // namespace ncdrf
