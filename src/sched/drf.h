// DRF baseline (Ghodsi et al., NSDI'11), as used for coflows by HUG:
// clairvoyant, isolation-optimal fair sharing (paper Sec. II-B, Eq. 2).
//
// At every event the correlation vector c_k is recomputed from each
// coflow's *remaining* demand and every coflow's progress is raised to the
// common maximum P* = min_i C_i / Σ_k c_k^i (Eq. 2 with unit capacities).
// Intra-coflow, each flow is given rate ∝ its remaining size so that all
// of a coflow's flows — and all links it uses — finish simultaneously;
// this keeps the instantaneous progress of every coflow exactly equal
// (disparity 1, the Fig. 5a reference line).
//
// Demand vectors come from the kernel layer's DemandCache: one
// remaining-demand computation per coflow per call instead of the two the
// legacy implementation paid (P* pass + rate pass).
#pragma once

#include <memory>

#include "alloc/demand_cache.h"
#include "alloc/shard.h"
#include "obs/perf.h"
#include "sched/scheduler.h"

namespace ncdrf {

struct DrfOptions {
  // The paper's DRF baseline is the non-work-conserving first stage of
  // HUG; enable backfilling only for ablations.
  bool work_conserving = false;
  int backfill_rounds = 1;
};

class DrfScheduler : public Scheduler {
 public:
  explicit DrfScheduler(DrfOptions options = {},
                        SchedulerOptions sched_options = {})
      : options_(options), runtime_(ShardRuntime::create(sched_options)) {}

  std::string name() const override { return "DRF"; }
  bool clairvoyant() const override { return true; }
  Allocation allocate(const ScheduleInput& input) override;
  const SchedPerf* perf_counters() const override { return &perf_; }

  // The optimal isolation guarantee P* (Eq. 2) for the snapshot, in
  // progress units (bps on the bottleneck of a unit-correlation coflow).
  // Exposed for tests and for HUG's second stage.
  static double optimal_progress(const ScheduleInput& input);

 private:
  DrfOptions options_;
  DemandCache cache_;
  std::unique_ptr<ShardRuntime> runtime_;  // null on the serial path
  SchedPerf perf_;
};

}  // namespace ncdrf
