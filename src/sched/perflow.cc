#include "sched/perflow.h"

#include <chrono>

namespace ncdrf {

Allocation PerFlowScheduler::allocate(const ScheduleInput& input) {
  const auto start = std::chrono::steady_clock::now();
  perf_.allocate_calls += 1;
  const Fabric& fabric = *input.fabric;

  capacities_.resize(static_cast<std::size_t>(fabric.num_links()));
  for (LinkId i = 0; i < fabric.num_links(); ++i) {
    capacities_[static_cast<std::size_t>(i)] = fabric.capacity(i);
  }

  flows_.clear();
  flows_.reserve(static_cast<std::size_t>(live_flows_hint(input)));
  for (const ActiveCoflow& coflow : input.coflows) {
    for (const ActiveFlow& flow : coflow.flows) {
      flows_.push_back({flow.id, flow.src, flow.dst, 1.0});
    }
  }

  if (runtime_ != nullptr && runtime_->bind(fabric).num_shards() > 1) {
    sharded_.solve(fabric, *runtime_, flows_, capacities_, input.reconcile,
                   rates_);
    runtime_->drain_timers(perf_);
  } else {
    kernel_.solve(fabric, flows_, capacities_, rates_);
  }
  Allocation alloc;
  alloc.reserve(flows_.size());
  for (std::size_t k = 0; k < flows_.size(); ++k) {
    alloc.set_rate(flows_[k].id, rates_[k]);
  }
  perf_.allocate_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return alloc;
}

}  // namespace ncdrf
