#include "sched/perflow.h"

#include "sched/maxmin.h"

namespace ncdrf {

Allocation PerFlowScheduler::allocate(const ScheduleInput& input) {
  const Fabric& fabric = *input.fabric;
  std::vector<double> capacities(
      static_cast<std::size_t>(fabric.num_links()));
  for (LinkId i = 0; i < fabric.num_links(); ++i) {
    capacities[static_cast<std::size_t>(i)] = fabric.capacity(i);
  }

  std::vector<MaxMinFlow> flows;
  for (const ActiveCoflow& coflow : input.coflows) {
    for (const ActiveFlow& flow : coflow.flows) {
      flows.push_back({flow.id, flow.src, flow.dst, 1.0});
    }
  }

  const std::vector<double> rates =
      weighted_max_min(fabric, flows, capacities);
  Allocation alloc;
  for (std::size_t k = 0; k < flows.size(); ++k) {
    alloc.set_rate(flows[k].id, rates[k]);
  }
  return alloc;
}

}  // namespace ncdrf
