#include "sched/perflow.h"

#include <chrono>

namespace ncdrf {

Allocation PerFlowScheduler::allocate(const ScheduleInput& input) {
  const auto start = std::chrono::steady_clock::now();
  perf_.allocate_calls += 1;
  const Fabric& fabric = *input.fabric;

  capacities_.resize(static_cast<std::size_t>(fabric.num_links()));
  for (LinkId i = 0; i < fabric.num_links(); ++i) {
    capacities_[static_cast<std::size_t>(i)] = fabric.capacity(i);
  }

  Allocation alloc;
  if (runtime_ != nullptr && runtime_->bind(fabric).num_shards() > 1) {
    // The sharded solver reconciles per-shard AoS problems; only this
    // branch still builds WaterfillFlow records.
    flows_.clear();
    flows_.reserve(static_cast<std::size_t>(live_flows_hint(input)));
    for (const ActiveCoflow& coflow : input.coflows) {
      for (const ActiveFlow& flow : coflow.flows) {
        flows_.push_back({flow.id, flow.src, flow.dst, 1.0});
      }
    }
    sharded_.solve(fabric, *runtime_, flows_, capacities_, input.reconcile,
                   rates_);
    runtime_->drain_timers(perf_);
    alloc.reserve(flows_.size());
    for (std::size_t k = 0; k < flows_.size(); ++k) {
      alloc.set_rate(flows_[k].id, rates_[k]);
    }
  } else {
    // Serial path: solve straight over the gathered columns — no per-flow
    // record build, no second endpoint resolution.
    const FlowTable& table =
        scratch_.gather(input, /*state=*/nullptr, GatherCounts::kNone);
    const WaterfillProblem problem{table.num_flows, table.up, table.dn,
                                   /*weight=*/nullptr};
    kernel_.solve(fabric, problem, capacities_, /*link_mask=*/nullptr,
                  table.rate);
    KernelScratch::commit(table, alloc);
  }
  perf_.allocate_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return alloc;
}

}  // namespace ncdrf
