// PS-P baseline: FairCloud's "Proportional Sharing on Proximate Links"
// (Popa et al., SIGCOMM'12), the per-link-fairness alternative the paper
// argues against (Sec. III-B, Figs. 3-4).
//
// Inter-coflow: every link's capacity is divided *equally* among the
// coflows present on it. Intra-coflow: a coflow's share of a link is
// divided evenly among its flows on that link (it cannot do better — it
// does not know flow sizes). A flow can only run at the minimum of its
// uplink and downlink shares; the difference is the "wasted" bandwidth the
// paper attributes to PS-P's unawareness of coflow demand correlation.
// PS-P is work-conserving in FairCloud, so the same even backfilling used
// by NC-DRF is applied afterwards — any waste left is structural.
//
// Per-link presence counts come from the allocation-kernel layer's
// LinkLoadState, maintained incrementally under event-driven drivers
// instead of rebuilt as a dense coflows × links matrix every call. The
// redistribution rounds accumulate into the KernelScratch rate column —
// one flat sweep per round, serial and sharded paths sharing the same
// arithmetic — and positive totals are committed once at the end.
#pragma once

#include <memory>
#include <vector>

#include "alloc/kernel_scheduler.h"
#include "alloc/kernel_scratch.h"
#include "alloc/shard.h"

namespace ncdrf {

struct PspOptions {
  bool work_conserving = true;
  int backfill_rounds = 1;
  // Mirror of NcDrfOptions::count_finished_flows, kept symmetric with
  // NC-DRF so the comparison isolates the *inter-coflow* policy. Default
  // (true, "stale"): finished flows keep defining a coflow's per-link
  // presence and intra-coflow split until the coflow departs, and their
  // share idles apart from redistribution. The adaptive variant is
  // "psp-live" in the registry.
  bool count_finished_flows = true;
};

class PspScheduler : public KernelScheduler {
 public:
  explicit PspScheduler(PspOptions options = {},
                        SchedulerOptions sched_options = {})
      : KernelScheduler(options.count_finished_flows),
        options_(options),
        runtime_(ShardRuntime::create(sched_options)) {}

  std::string name() const override { return "PS-P"; }
  bool clairvoyant() const override { return false; }
  Allocation allocate(const ScheduleInput& input) override;

 private:
  PspOptions options_;
  KernelScratch scratch_;
  std::vector<double> residual_;
  std::vector<double> coflow_share_;  // residual_[i] / coflows_on_link[i]
  // Sharded path: per-flow shares accumulate into disjoint rate-column
  // rows in parallel (each flow's rate depends only on the round's hoisted
  // shares), so the sharded PS-P is bit-identical to the serial one for
  // every trace.
  std::unique_ptr<ShardRuntime> runtime_;  // null on the serial path
  std::vector<char> block_any_;  // per-block "assigned anything" flags
};

}  // namespace ncdrf
