#include "sched/endpoint_fair.h"

#include <map>
#include <utility>
#include <vector>

#include "sched/maxmin.h"

namespace ncdrf {

Allocation EndpointFairScheduler::allocate(const ScheduleInput& input) {
  const Fabric& fabric = *input.fabric;

  // Count flows per entity, then weight each flow by 1 / |entity|.
  std::map<std::pair<MachineId, MachineId>, int> entity_size;
  auto key = [&](const ActiveFlow& f) {
    return entity_ == FairnessEntity::kSource
               ? std::make_pair(f.src, MachineId{-1})
               : std::make_pair(f.src, f.dst);
  };
  for (const ActiveCoflow& coflow : input.coflows) {
    for (const ActiveFlow& f : coflow.flows) entity_size[key(f)] += 1;
  }

  std::vector<MaxMinFlow> flows;
  for (const ActiveCoflow& coflow : input.coflows) {
    for (const ActiveFlow& f : coflow.flows) {
      flows.push_back(
          {f.id, f.src, f.dst, 1.0 / entity_size.at(key(f))});
    }
  }

  std::vector<double> capacities(
      static_cast<std::size_t>(fabric.num_links()));
  for (LinkId i = 0; i < fabric.num_links(); ++i) {
    capacities[static_cast<std::size_t>(i)] = fabric.capacity(i);
  }
  const std::vector<double> rates =
      weighted_max_min(fabric, flows, capacities);

  Allocation alloc;
  for (std::size_t k = 0; k < flows.size(); ++k) {
    alloc.set_rate(flows[k].id, rates[k]);
  }
  return alloc;
}

}  // namespace ncdrf
