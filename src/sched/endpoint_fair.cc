#include "sched/endpoint_fair.h"

#include "common/check.h"

namespace ncdrf {

void EndpointFairScheduler::on_reset(const Fabric& fabric) {
  KernelScheduler::on_reset(fabric);
  entity_size_.clear();
  coflow_keys_.clear();
}

void EndpointFairScheduler::on_coflow_arrival(const ActiveCoflow& coflow) {
  KernelScheduler::on_coflow_arrival(coflow);
  if (!event_driven_) return;
  std::vector<EntityKey>& keys = coflow_keys_[coflow.id];
  keys.reserve(coflow.flows.size());
  for (const ActiveFlow& f : coflow.flows) {
    const EntityKey k = key(f);
    entity_size_[k] += 1;
    keys.push_back(k);
  }
}

void EndpointFairScheduler::on_flow_finish(const ActiveFlow& flow) {
  KernelScheduler::on_flow_finish(flow);
  if (!event_driven_) return;
  const EntityKey k = key(flow);
  auto it = entity_size_.find(k);
  NCDRF_CHECK(it != entity_size_.end() && it->second > 0,
              "flow finish for untracked fairness entity");
  if (--it->second == 0) entity_size_.erase(it);
  std::vector<EntityKey>& keys = coflow_keys_.at(flow.coflow);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (keys[i] == k) {
      keys[i] = keys.back();
      keys.pop_back();
      return;
    }
  }
  NCDRF_CHECK(false, "finished flow not among its coflow's tracked keys");
}

void EndpointFairScheduler::on_coflow_departure(CoflowId id) {
  KernelScheduler::on_coflow_departure(id);
  if (!event_driven_) return;
  auto it = coflow_keys_.find(id);
  if (it == coflow_keys_.end()) return;
  for (const EntityKey& k : it->second) {
    auto sit = entity_size_.find(k);
    NCDRF_CHECK(sit != entity_size_.end() && sit->second > 0,
                "departure releases untracked fairness entity");
    if (--sit->second == 0) entity_size_.erase(sit);
  }
  coflow_keys_.erase(it);
}

void EndpointFairScheduler::rebuild_entities(const ScheduleInput& input) {
  entity_size_.clear();
  coflow_keys_.clear();
  for (const ActiveCoflow& coflow : input.coflows) {
    std::vector<EntityKey>& keys = coflow_keys_[coflow.id];
    keys.reserve(coflow.flows.size());
    for (const ActiveFlow& f : coflow.flows) {
      const EntityKey k = key(f);
      entity_size_[k] += 1;
      keys.push_back(k);
    }
  }
}

Allocation EndpointFairScheduler::allocate(const ScheduleInput& input) {
  AllocScope scope(perf_);
  const Fabric& fabric = *input.fabric;
  if (sync(input)) rebuild_entities(input);

  capacities_.resize(static_cast<std::size_t>(fabric.num_links()));
  for (LinkId i = 0; i < fabric.num_links(); ++i) {
    capacities_[static_cast<std::size_t>(i)] = fabric.capacity(i);
  }

  Allocation alloc;
  if (runtime_ != nullptr && runtime_->bind(fabric).num_shards() > 1) {
    // The sharded solver reconciles per-shard AoS problems; only this
    // branch still builds WaterfillFlow records.
    flows_.clear();
    flows_.reserve(static_cast<std::size_t>(live_flows_hint(input)));
    for (const ActiveCoflow& coflow : input.coflows) {
      for (const ActiveFlow& f : coflow.flows) {
        flows_.push_back({f.id, f.src, f.dst, 1.0 / entity_size_.at(key(f))});
      }
    }
    sharded_.solve(fabric, *runtime_, flows_, capacities_, input.reconcile,
                   rates_);
    runtime_->drain_timers(perf_);
    alloc.reserve(flows_.size());
    for (std::size_t k = 0; k < flows_.size(); ++k) {
      alloc.set_rate(flows_[k].id, rates_[k]);
    }
    return alloc;
  }

  // Serial path: gather the SoA columns, fill a weight column from the
  // entity sizes (same flow order as the gather), and solve in place.
  const FlowTable& table =
      scratch_.gather(input, /*state=*/nullptr, GatherCounts::kNone);
  double* weight = scratch_.arena().alloc<double>(table.num_flows);
  std::size_t row = 0;
  for (const ActiveCoflow& coflow : input.coflows) {
    for (const ActiveFlow& f : coflow.flows) {
      weight[row++] = 1.0 / entity_size_.at(key(f));
    }
  }
  const WaterfillProblem problem{table.num_flows, table.up, table.dn,
                                 weight};
  kernel_.solve(fabric, problem, capacities_, /*link_mask=*/nullptr,
                table.rate);
  KernelScratch::commit(table, alloc);
  return alloc;
}

}  // namespace ncdrf
