// HUG baseline (Chowdhury et al., NSDI'16), as described in paper Sec. II-B:
// a two-stage clairvoyant allocator.
//
//   Stage 1 — DRF: raise every coflow's progress to the optimal isolation
//   guarantee P* (Eq. 2).
//   Stage 2 — utilization: hand out the spare bandwidth on each link,
//   "under the constraint that no coflow is allocated more bandwidth in a
//   link than its progress", i.e. each coflow's total on any link is capped
//   at P* · C_i. Spare is split evenly among capped coflows per link, and a
//   flow only realizes the minimum of its uplink/downlink extra shares
//   (flow conservation).
#pragma once

#include "sched/scheduler.h"

namespace ncdrf {

struct HugOptions {
  // Rounds of the stage-2 spare distribution. One round matches the
  // description; more rounds push utilization closer to the cap.
  int spare_rounds = 2;
};

class HugScheduler : public Scheduler {
 public:
  explicit HugScheduler(HugOptions options = {}) : options_(options) {}

  std::string name() const override { return "HUG"; }
  bool clairvoyant() const override { return true; }
  Allocation allocate(const ScheduleInput& input) override;

 private:
  HugOptions options_;
};

}  // namespace ncdrf
