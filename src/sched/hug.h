// HUG baseline (Chowdhury et al., NSDI'16), as described in paper Sec. II-B:
// a two-stage clairvoyant allocator.
//
//   Stage 1 — DRF: raise every coflow's progress to the optimal isolation
//   guarantee P* (Eq. 2).
//   Stage 2 — utilization: hand out the spare bandwidth on each link,
//   "under the constraint that no coflow is allocated more bandwidth in a
//   link than its progress", i.e. each coflow's total on any link is capped
//   at P* · C_i. Spare is split evenly among capped coflows per link, and a
//   flow only realizes the minimum of its uplink/downlink extra shares
//   (flow conservation).
//
// Kernel-layer backing: stage 1 shares the DemandCache with DRF (one
// remaining-demand pass instead of the three the legacy implementation
// paid), and stage 2 runs on a sparse (coflow, link) slot arena sized by
// LinkLoadState's touched-links lists instead of dense coflows × links
// usage/budget matrices rebuilt every round.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "alloc/demand_cache.h"
#include "alloc/kernel_scheduler.h"
#include "alloc/shard.h"

namespace ncdrf {

struct HugOptions {
  // Rounds of the stage-2 spare distribution. One round matches the
  // description; more rounds push utilization closer to the cap.
  int spare_rounds = 2;
};

class HugScheduler : public KernelScheduler {
 public:
  explicit HugScheduler(HugOptions options = {},
                        SchedulerOptions sched_options = {})
      : KernelScheduler(/*count_finished_flows=*/false),
        options_(options),
        runtime_(ShardRuntime::create(sched_options)) {}

  std::string name() const override { return "HUG"; }
  bool clairvoyant() const override { return true; }
  Allocation allocate(const ScheduleInput& input) override;

 private:
  HugOptions options_;
  DemandCache cache_;
  std::unique_ptr<ShardRuntime> runtime_;  // null on the serial path

  // Stage-2 arena: one slot per (coflow, link the coflow has live flows
  // on). Rebuilt each allocate() in O(Σ touched links + flows); rounds
  // then cost O(slots + flows) instead of O(coflows · links).
  std::vector<std::int32_t> slot_offset_;   // per coflow index, size K+1
  std::vector<LinkId> slot_links_;          // slot -> link id
  std::vector<int> slot_live_;              // slot -> coflow's live count
  std::vector<std::int32_t> flow_slots_;    // 2 per flow: up slot, down slot
  std::vector<std::int32_t> link_offsets_;  // CSR link -> slots, size L+1
  std::vector<std::int32_t> link_entries_;  // slots, coflow-ascending
  std::vector<std::int32_t> link_cursor_;
  std::vector<std::int32_t> link_slot_scratch_;
  std::vector<double> usage_;        // slot -> coflow usage on link
  std::vector<double> budget_;       // slot -> extra budget on link
  std::vector<double> total_usage_;  // per link
};

}  // namespace ncdrf
