#include <cmath>
#include "sched/maxmin.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace ncdrf {

std::vector<double> weighted_max_min(
    const Fabric& fabric, const std::vector<MaxMinFlow>& flows,
    const std::vector<double>& available_bps) {
  NCDRF_CHECK(available_bps.size() ==
                  static_cast<std::size_t>(fabric.num_links()),
              "available-capacity vector must cover all links");
  const std::size_t n = flows.size();
  std::vector<double> rates(n, 0.0);
  if (n == 0) return rates;

  std::vector<double> residual = available_bps;
  for (double& r : residual) r = std::max(r, 0.0);
  std::vector<bool> frozen(n, false);

  // Unfrozen weight crossing each link.
  std::vector<double> link_weight(
      static_cast<std::size_t>(fabric.num_links()), 0.0);
  auto up = [&](const MaxMinFlow& f) {
    return static_cast<std::size_t>(fabric.uplink(f.src));
  };
  auto down = [&](const MaxMinFlow& f) {
    return static_cast<std::size_t>(fabric.downlink(f.dst));
  };
  for (const MaxMinFlow& f : flows) {
    NCDRF_CHECK(f.weight > 0.0, "max-min weights must be positive");
    link_weight[up(f)] += f.weight;
    link_weight[down(f)] += f.weight;
  }

  std::size_t remaining = n;
  // Each round saturates at least one link and freezes its flows, so the
  // loop runs at most num_links() times.
  for (int round = 0; round <= fabric.num_links() && remaining > 0; ++round) {
    // Fill rate theta: smallest residual/weight over loaded links.
    double theta = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < residual.size(); ++i) {
      if (link_weight[i] > 0.0) {
        theta = std::min(theta, residual[i] / link_weight[i]);
      }
    }
    if (!std::isfinite(theta)) break;  // no unfrozen flow crosses any link
    theta = std::max(theta, 0.0);

    for (std::size_t k = 0; k < n; ++k) {
      if (!frozen[k]) rates[k] += theta * flows[k].weight;
    }
    for (std::size_t i = 0; i < residual.size(); ++i) {
      if (link_weight[i] > 0.0) {
        residual[i] = std::max(residual[i] - theta * link_weight[i], 0.0);
      }
    }

    // Freeze flows on saturated links.
    for (std::size_t k = 0; k < n; ++k) {
      if (frozen[k]) continue;
      const std::size_t u = up(flows[k]);
      const std::size_t d = down(flows[k]);
      const double tol_u = 1e-9 * std::max(available_bps[u], 1.0);
      const double tol_d = 1e-9 * std::max(available_bps[d], 1.0);
      if (residual[u] <= tol_u || residual[d] <= tol_d) {
        frozen[k] = true;
        --remaining;
        link_weight[u] -= flows[k].weight;
        link_weight[d] -= flows[k].weight;
      }
    }
  }
  return rates;
}

void max_min_backfill(const ScheduleInput& input, Allocation& alloc) {
  const Fabric& fabric = *input.fabric;
  std::vector<double> residual(static_cast<std::size_t>(fabric.num_links()));
  const std::vector<double> usage = link_usage(input, alloc);
  for (LinkId i = 0; i < fabric.num_links(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    residual[idx] = std::max(fabric.capacity(i) - usage[idx], 0.0);
  }

  std::vector<MaxMinFlow> flows;
  for (const ActiveCoflow& coflow : input.coflows) {
    for (const ActiveFlow& flow : coflow.flows) {
      flows.push_back({flow.id, flow.src, flow.dst, 1.0});
    }
  }
  const std::vector<double> extra = weighted_max_min(fabric, flows, residual);
  for (std::size_t k = 0; k < flows.size(); ++k) {
    if (extra[k] > 0.0) alloc.add_rate(flows[k].id, extra[k]);
  }
}

}  // namespace ncdrf
