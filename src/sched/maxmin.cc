#include "sched/maxmin.h"

#include "common/check.h"

namespace ncdrf {

std::vector<double> weighted_max_min(
    const Fabric& fabric, const std::vector<MaxMinFlow>& flows,
    const std::vector<double>& available_bps) {
  NCDRF_CHECK(available_bps.size() ==
                  static_cast<std::size_t>(fabric.num_links()),
              "available-capacity vector must cover all links");
  WaterfillKernel kernel;
  std::vector<double> rates;
  kernel.solve(fabric, flows, available_bps, rates);
  return rates;
}

void max_min_backfill(const ScheduleInput& input, Allocation& alloc) {
  ResidualBackfill backfill;
  backfill.run(input, alloc);
}

}  // namespace ncdrf
