#include "sched/allocation.h"

#include <cmath>
#include <sstream>

#include "common/check.h"
#include "sched/scheduler.h"

namespace ncdrf {

double& Allocation::slot(FlowId flow) {
  NCDRF_CHECK(flow >= 0, "flow ids must be non-negative");
  const auto idx = static_cast<std::size_t>(flow);
  if (idx >= rates_.size()) rates_.resize(idx + 1, kAbsent);
  return rates_[idx];
}

void Allocation::set_rate(FlowId flow, double rate_bps) {
  NCDRF_CHECK(std::isfinite(rate_bps) && rate_bps >= 0.0,
              "flow rate must be finite and non-negative");
  double& entry = slot(flow);
  if (entry == kAbsent) ++num_flows_;
  entry = rate_bps;
}

void Allocation::add_rate(FlowId flow, double rate_bps) {
  NCDRF_CHECK(std::isfinite(rate_bps) && rate_bps >= 0.0,
              "flow rate increment must be finite and non-negative");
  double& entry = slot(flow);
  if (entry == kAbsent) {
    entry = rate_bps;
    ++num_flows_;
  } else {
    entry += rate_bps;
  }
}

double Allocation::rate(FlowId flow) const {
  if (flow < 0) return 0.0;
  const auto idx = static_cast<std::size_t>(flow);
  if (idx >= rates_.size() || rates_[idx] == kAbsent) return 0.0;
  return rates_[idx];
}

bool Allocation::has_rate(FlowId flow) const {
  if (flow < 0) return false;
  const auto idx = static_cast<std::size_t>(flow);
  return idx < rates_.size() && rates_[idx] != kAbsent;
}

double Allocation::total_rate() const {
  double total = 0.0;
  for (const double rate : rates_) {
    if (rate != kAbsent) total += rate;
  }
  return total;
}

std::vector<double> link_usage(const ScheduleInput& input,
                               const Allocation& alloc) {
  const Fabric& fabric = *input.fabric;
  std::vector<double> usage(static_cast<std::size_t>(fabric.num_links()),
                            0.0);
  for (const ActiveCoflow& coflow : input.coflows) {
    for (const ActiveFlow& flow : coflow.flows) {
      const double r = alloc.rate(flow.id);
      usage[static_cast<std::size_t>(fabric.uplink(flow.src))] += r;
      usage[static_cast<std::size_t>(fabric.downlink(flow.dst))] += r;
    }
  }
  return usage;
}

void check_capacity(const ScheduleInput& input, const Allocation& alloc,
                    double relative_tolerance) {
  const Fabric& fabric = *input.fabric;
  const std::vector<double> usage = link_usage(input, alloc);
  for (LinkId i = 0; i < fabric.num_links(); ++i) {
    const double cap = fabric.capacity(i);
    if (usage[static_cast<std::size_t>(i)] >
        cap * (1.0 + relative_tolerance)) {
      std::ostringstream os;
      os << "link " << i << " oversubscribed: usage "
         << usage[static_cast<std::size_t>(i)] << " > capacity " << cap;
      NCDRF_CHECK(false, os.str());
    }
  }
}

void clamp_to_capacity(const ScheduleInput& input, Allocation& alloc) {
  const Fabric& fabric = *input.fabric;
  std::vector<double> usage = link_usage(input, alloc);
  std::vector<double> scale(static_cast<std::size_t>(fabric.num_links()),
                            1.0);
  for (LinkId i = 0; i < fabric.num_links(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (usage[idx] > fabric.capacity(i)) {
      scale[idx] = fabric.capacity(i) / usage[idx];
    }
  }
  for (const ActiveCoflow& coflow : input.coflows) {
    for (const ActiveFlow& flow : coflow.flows) {
      const double r = alloc.rate(flow.id);
      if (r <= 0.0) continue;
      const double s = std::min(
          scale[static_cast<std::size_t>(fabric.uplink(flow.src))],
          scale[static_cast<std::size_t>(fabric.downlink(flow.dst))]);
      if (s < 1.0) alloc.set_rate(flow.id, r * s);
    }
  }
}

}  // namespace ncdrf
