#include "sched/allocation.h"

#include <cmath>
#include <sstream>

#include "common/check.h"
#include "sched/scheduler.h"

namespace ncdrf {

void Allocation::set_rate(FlowId flow, double rate_bps) {
  NCDRF_CHECK(std::isfinite(rate_bps) && rate_bps >= 0.0,
              "flow rate must be finite and non-negative");
  rates_[flow] = rate_bps;
}

void Allocation::add_rate(FlowId flow, double rate_bps) {
  NCDRF_CHECK(std::isfinite(rate_bps) && rate_bps >= 0.0,
              "flow rate increment must be finite and non-negative");
  rates_[flow] += rate_bps;
}

double Allocation::rate(FlowId flow) const {
  const auto it = rates_.find(flow);
  return it == rates_.end() ? 0.0 : it->second;
}

double Allocation::total_rate() const {
  double total = 0.0;
  for (const auto& [flow, rate] : rates_) total += rate;
  return total;
}

std::vector<double> link_usage(const ScheduleInput& input,
                               const Allocation& alloc) {
  const Fabric& fabric = *input.fabric;
  std::vector<double> usage(static_cast<std::size_t>(fabric.num_links()),
                            0.0);
  for (const ActiveCoflow& coflow : input.coflows) {
    for (const ActiveFlow& flow : coflow.flows) {
      const double r = alloc.rate(flow.id);
      usage[static_cast<std::size_t>(fabric.uplink(flow.src))] += r;
      usage[static_cast<std::size_t>(fabric.downlink(flow.dst))] += r;
    }
  }
  return usage;
}

void check_capacity(const ScheduleInput& input, const Allocation& alloc,
                    double relative_tolerance) {
  const Fabric& fabric = *input.fabric;
  const std::vector<double> usage = link_usage(input, alloc);
  for (LinkId i = 0; i < fabric.num_links(); ++i) {
    const double cap = fabric.capacity(i);
    if (usage[static_cast<std::size_t>(i)] >
        cap * (1.0 + relative_tolerance)) {
      std::ostringstream os;
      os << "link " << i << " oversubscribed: usage "
         << usage[static_cast<std::size_t>(i)] << " > capacity " << cap;
      NCDRF_CHECK(false, os.str());
    }
  }
}

void clamp_to_capacity(const ScheduleInput& input, Allocation& alloc) {
  const Fabric& fabric = *input.fabric;
  std::vector<double> usage = link_usage(input, alloc);
  std::vector<double> scale(static_cast<std::size_t>(fabric.num_links()),
                            1.0);
  for (LinkId i = 0; i < fabric.num_links(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (usage[idx] > fabric.capacity(i)) {
      scale[idx] = fabric.capacity(i) / usage[idx];
    }
  }
  for (const ActiveCoflow& coflow : input.coflows) {
    for (const ActiveFlow& flow : coflow.flows) {
      const double r = alloc.rate(flow.id);
      if (r <= 0.0) continue;
      const double s = std::min(
          scale[static_cast<std::size_t>(fabric.uplink(flow.src))],
          scale[static_cast<std::size_t>(fabric.downlink(flow.dst))]);
      if (s < 1.0) alloc.set_rate(flow.id, r * s);
    }
  }
}

}  // namespace ncdrf
