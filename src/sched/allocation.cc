#include "sched/allocation.h"

#include <cmath>
#include <sstream>

#include "common/check.h"
#include "sched/scheduler.h"

namespace ncdrf {

double Allocation::total_rate() const {
  double total = 0.0;
  for (const double rate : rates_) {
    if (rate != kAbsent) total += rate;
  }
  return total;
}

void link_usage(const ScheduleInput& input, const Allocation& alloc,
                std::vector<double>& out) {
  const Fabric& fabric = *input.fabric;
  out.assign(static_cast<std::size_t>(fabric.num_links()), 0.0);
  for (const ActiveCoflow& coflow : input.coflows) {
    for (const ActiveFlow& flow : coflow.flows) {
      const double r = alloc.rate(flow.id);
      out[static_cast<std::size_t>(fabric.uplink(flow.src))] += r;
      out[static_cast<std::size_t>(fabric.downlink(flow.dst))] += r;
    }
  }
}

std::vector<double> link_usage(const ScheduleInput& input,
                               const Allocation& alloc) {
  std::vector<double> usage;
  link_usage(input, alloc, usage);
  return usage;
}

void check_capacity(const ScheduleInput& input, const Allocation& alloc,
                    double relative_tolerance) {
  const Fabric& fabric = *input.fabric;
  const std::vector<double> usage = link_usage(input, alloc);
  for (LinkId i = 0; i < fabric.num_links(); ++i) {
    const double cap = fabric.capacity(i);
    if (usage[static_cast<std::size_t>(i)] >
        cap * (1.0 + relative_tolerance)) {
      std::ostringstream os;
      os << "link " << i << " oversubscribed: usage "
         << usage[static_cast<std::size_t>(i)] << " > capacity " << cap;
      NCDRF_CHECK(false, os.str());
    }
  }
}

void clamp_to_capacity(const ScheduleInput& input, Allocation& alloc,
                       std::vector<double>& scratch) {
  const Fabric& fabric = *input.fabric;
  link_usage(input, alloc, scratch);
  // Turn the usage vector into a scale vector in place; skip the per-flow
  // rescale pass when every link is already feasible.
  bool any_over = false;
  for (LinkId i = 0; i < fabric.num_links(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (scratch[idx] > fabric.capacity(i)) {
      scratch[idx] = fabric.capacity(i) / scratch[idx];
      any_over = true;
    } else {
      scratch[idx] = 1.0;
    }
  }
  if (!any_over) return;
  for (const ActiveCoflow& coflow : input.coflows) {
    for (const ActiveFlow& flow : coflow.flows) {
      const double r = alloc.rate(flow.id);
      if (r <= 0.0) continue;
      const double s = std::min(
          scratch[static_cast<std::size_t>(fabric.uplink(flow.src))],
          scratch[static_cast<std::size_t>(fabric.downlink(flow.dst))]);
      if (s < 1.0) alloc.set_rate(flow.id, r * s);
    }
  }
}

void clamp_to_capacity(const ScheduleInput& input, Allocation& alloc) {
  std::vector<double> scratch;
  clamp_to_capacity(input, alloc, scratch);
}

}  // namespace ncdrf
