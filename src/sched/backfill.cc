#include "sched/backfill.h"

#include <algorithm>

#include "common/check.h"

namespace ncdrf {

void even_backfill(const ScheduleInput& input, Allocation& alloc,
                   int rounds) {
  NCDRF_CHECK(rounds >= 0, "backfill rounds must be non-negative");
  const Fabric& fabric = *input.fabric;
  const std::vector<int> counts = link_flow_counts(input);

  for (int round = 0; round < rounds; ++round) {
    const std::vector<double> usage = link_usage(input, alloc);
    std::vector<double> share(static_cast<std::size_t>(fabric.num_links()),
                              0.0);
    bool any_spare = false;
    for (LinkId i = 0; i < fabric.num_links(); ++i) {
      const auto idx = static_cast<std::size_t>(i);
      const double unused = std::max(fabric.capacity(i) - usage[idx], 0.0);
      if (counts[idx] > 0 && unused > 0.0) {
        share[idx] = unused / counts[idx];
        any_spare = true;
      }
    }
    if (!any_spare) return;

    for (const ActiveCoflow& coflow : input.coflows) {
      for (const ActiveFlow& flow : coflow.flows) {
        const auto u = static_cast<std::size_t>(fabric.uplink(flow.src));
        const auto d = static_cast<std::size_t>(fabric.downlink(flow.dst));
        const double w = std::min(share[u], share[d]);
        if (w > 0.0) alloc.add_rate(flow.id, w);
      }
    }
  }
}

}  // namespace ncdrf
