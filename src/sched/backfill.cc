#include "sched/backfill.h"

#include <algorithm>

#include "alloc/waterfill.h"
#include "common/check.h"

namespace ncdrf {
namespace {

// One even-share round: share_i = max(residual_i, 0) / counts_i, each flow
// gaining min(share_up, share_down). Returns false when no link had both
// spare capacity and flows to give it to (callers stop iterating). `share`
// holds per-link residuals on entry and is converted to shares in place —
// no allocation on the per-event path.
bool backfill_round(const ScheduleInput& input, Allocation& alloc,
                    const std::vector<int>& counts,
                    std::vector<double>& share) {
  const Fabric& fabric = *input.fabric;
  bool any_spare = false;
  for (LinkId i = 0; i < fabric.num_links(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const double unused = std::max(share[idx], 0.0);
    if (counts[idx] > 0 && unused > 0.0) {
      share[idx] = unused / counts[idx];
      any_spare = true;
    } else {
      share[idx] = 0.0;
    }
  }
  if (!any_spare) return false;

  for (const ActiveCoflow& coflow : input.coflows) {
    for (const ActiveFlow& flow : coflow.flows) {
      const auto u = static_cast<std::size_t>(fabric.uplink(flow.src));
      const auto d = static_cast<std::size_t>(fabric.downlink(flow.dst));
      const double w = std::min(share[u], share[d]);
      if (w > 0.0) alloc.add_rate(flow.id, w);
    }
  }
  return true;
}

// capacity − usage per link, from a full scan of the allocation (shared
// with the kernel layer's residual water-filling pass).
std::vector<double> residual_from_usage(const ScheduleInput& input,
                                        const Allocation& alloc) {
  std::vector<double> residual;
  residual_capacity(input, alloc, residual);
  return residual;
}

}  // namespace

int even_backfill(const ScheduleInput& input, Allocation& alloc,
                  int rounds) {
  NCDRF_CHECK(rounds >= 0, "backfill rounds must be non-negative");
  if (rounds == 0) return 0;
  const std::vector<int> counts = link_flow_counts(input);
  std::vector<double> scratch;
  for (int round = 0; round < rounds; ++round) {
    scratch = residual_from_usage(input, alloc);
    if (!backfill_round(input, alloc, counts, scratch)) return round;
  }
  return rounds;
}

int even_backfill_cached(const ScheduleInput& input, Allocation& alloc,
                         int rounds, const std::vector<int>& live_counts,
                         std::vector<double>& residual) {
  NCDRF_CHECK(rounds >= 0, "backfill rounds must be non-negative");
  if (rounds == 0) return 0;
  const auto links =
      static_cast<std::size_t>(input.fabric->num_links());
  NCDRF_CHECK(live_counts.size() == links && residual.size() == links,
              "cached backfill vectors must cover all links");
  if (!backfill_round(input, alloc, live_counts, residual)) return 0;
  for (int round = 1; round < rounds; ++round) {
    residual = residual_from_usage(input, alloc);
    if (!backfill_round(input, alloc, live_counts, residual)) return round;
  }
  return rounds;
}

}  // namespace ncdrf
