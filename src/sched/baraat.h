// Baraat baseline (Dogar et al., SIGCOMM'14): decentralized task-aware
// scheduling with FIFO-LM — FIFO with Limited Multiplexing.
//
// Pure FIFO suffers head-of-line blocking behind heavy tasks. Baraat keeps
// FIFO order but detects *heavy* tasks on-line (attained service beyond a
// threshold) and lets the tasks behind a heavy one share the network with
// it instead of waiting. Non-clairvoyant: uses only arrival order and
// attained bytes.
//
// Adaptation to the fabric model (DESIGN.md substitutions): walk coflows
// in FIFO order, adding each to the served set; stop after the first
// coflow that is not heavy (a light head serves alone — exactly FIFO —
// while heavy heads multiplex with everything behind them up to the next
// light coflow). Served coflows split each link's remaining capacity
// evenly (per coflow, then per flow, min across endpoints); leftover
// capacity is max-min backfilled.
//
// Per-link flow counts come from the kernel layer's LinkLoadState; the
// served-coflow-per-link tally only walks the served coflows' touched
// links instead of rebuilding a dense served × links count matrix.
#pragma once

#include <memory>
#include <vector>

#include "alloc/kernel_scheduler.h"
#include "alloc/shard.h"
#include "alloc/waterfill.h"

namespace ncdrf {

struct BaraatOptions {
  // A coflow is "heavy" once it has attained more than this many bits
  // (Baraat's elephant detection threshold; 80 Mb ~ 10 MB).
  double heavy_threshold_bits = 8e7;
  bool work_conserving = true;
};

class BaraatScheduler : public KernelScheduler {
 public:
  explicit BaraatScheduler(BaraatOptions options = {},
                           SchedulerOptions sched_options = {});

  std::string name() const override { return "Baraat"; }
  bool clairvoyant() const override { return false; }
  Allocation allocate(const ScheduleInput& input) override;

  // Allocation changes when a light serving coflow turns heavy.
  std::optional<double> next_internal_event(
      const ScheduleInput& input, const Allocation& current) const override;

 private:
  BaraatOptions options_;
  std::vector<std::size_t> order_;
  std::vector<int> served_on_link_;
  ResidualBackfill backfill_;
  // The FIFO-LM fill itself is a small served prefix and stays serial;
  // only the work-conserving residual pass — the bulk of the per-call
  // work at scale — runs sharded.
  std::unique_ptr<ShardRuntime> runtime_;  // null on the serial path
  ShardedBackfill sharded_backfill_;
};

}  // namespace ncdrf
