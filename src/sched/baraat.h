// Baraat baseline (Dogar et al., SIGCOMM'14): decentralized task-aware
// scheduling with FIFO-LM — FIFO with Limited Multiplexing.
//
// Pure FIFO suffers head-of-line blocking behind heavy tasks. Baraat keeps
// FIFO order but detects *heavy* tasks on-line (attained service beyond a
// threshold) and lets the tasks behind a heavy one share the network with
// it instead of waiting. Non-clairvoyant: uses only arrival order and
// attained bytes.
//
// Adaptation to the fabric model (DESIGN.md substitutions): walk coflows
// in FIFO order, adding each to the served set; stop after the first
// coflow that is not heavy (a light head serves alone — exactly FIFO —
// while heavy heads multiplex with everything behind them up to the next
// light coflow). Served coflows split each link's remaining capacity
// evenly (per coflow, then per flow, min across endpoints); leftover
// capacity is max-min backfilled.
//
// Kernel-layer backing: arrival order is maintained across calls by
// PriorityOrder (event-hook insert/erase instead of a per-call sort), the
// per-link flow counts come from LinkLoadState, and the fill + backfill
// run over the KernelScratch flow table. The served-coflow-per-link tally
// walks only the served coflows' touched links.
#pragma once

#include <memory>
#include <vector>

#include "alloc/kernel_scheduler.h"
#include "alloc/kernel_scratch.h"
#include "alloc/priority_state.h"
#include "alloc/shard.h"
#include "alloc/waterfill.h"

namespace ncdrf {

struct BaraatOptions {
  // A coflow is "heavy" once it has attained more than this many bits
  // (Baraat's elephant detection threshold; 80 Mb ~ 10 MB).
  double heavy_threshold_bits = 8e7;
  bool work_conserving = true;
};

class BaraatScheduler : public KernelScheduler {
 public:
  explicit BaraatScheduler(BaraatOptions options = {},
                           SchedulerOptions sched_options = {});

  std::string name() const override { return "Baraat"; }
  bool clairvoyant() const override { return false; }
  Allocation allocate(const ScheduleInput& input) override;

  // Allocation changes when a light serving coflow turns heavy.
  std::optional<double> next_internal_event(
      const ScheduleInput& input, const Allocation& current) const override;

  void on_reset(const Fabric& fabric) override {
    KernelScheduler::on_reset(fabric);
    order_state_.reset();
  }
  void on_coflow_arrival(const ActiveCoflow& coflow) override {
    KernelScheduler::on_coflow_arrival(coflow);
    if (!event_driven_) return;
    order_state_.add_coflow(coflow.id, /*bucket=*/0, coflow.arrival_time);
  }
  void on_coflow_departure(CoflowId id) override {
    KernelScheduler::on_coflow_departure(id);
    if (!event_driven_) return;
    order_state_.remove_coflow(id);
  }

  // Exposed for the golden event-churn suite's Debug consistency checks.
  const PriorityOrder& priority_order() const { return order_state_; }

 private:
  BaraatOptions options_;
  PriorityOrder order_state_;
  KernelScratch scratch_;
  std::vector<std::size_t> order_;
  std::vector<std::size_t> served_;
  std::vector<int> served_on_link_;
  std::vector<double> capacities_;
  ResidualBackfill backfill_;
  // The FIFO-LM fill itself is a small served prefix and stays serial;
  // only the work-conserving residual pass — the bulk of the per-call
  // work at scale — runs sharded.
  std::unique_ptr<ShardRuntime> runtime_;  // null on the serial path
  ShardedBackfill sharded_backfill_;
};

}  // namespace ncdrf
